package refer_test

import (
	"fmt"
	"time"

	"refer"
)

// kilobyteCost is a custom energy model: any type with TxCost and RxCost
// methods prices every packet the radio layer moves. It charges per
// kilobyte plus a flat surcharge on long links — all exact binary
// fractions, so the printed prices are exact on every architecture.
type kilobyteCost struct{}

// TxCost charges 1 J per kilobyte (8192 bits), plus 0.25 J past 50 m.
func (kilobyteCost) TxCost(bits int, dist float64) float64 {
	cost := float64(bits) / 8192
	if dist > 50 {
		cost += 0.25
	}
	return cost
}

// RxCost charges half the per-kilobyte transmit price.
func (kilobyteCost) RxCost(bits int, dist float64) float64 {
	return float64(bits) / 16384
}

// A custom CostModel plugs into a run through ScenarioParams.Energy; the
// built-in models (paper, radio, harvesting) are also selectable by name
// through RunConfig.Energy, which canonicalizes into the run's cache key.
func ExampleCostModel() {
	var m refer.CostModel = kilobyteCost{}
	fmt.Println("tx(8192 bits, 80 m):", m.TxCost(8192, 80))
	fmt.Println("rx(8192 bits, 80 m):", m.RxCost(8192, 80))

	cfg := refer.RunConfig{
		Scenario:         refer.ScenarioParams{Seed: 1, Sensors: 140},
		Warmup:           time.Second,
		Duration:         3 * time.Second,
		BurstInterval:    time.Second, // default 10 s would outlast this window
		Sources:          2,
		PacketsPerSource: 2,
	}
	flat, err := refer.Run(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Scenario.Energy = kilobyteCost{}
	custom, err := refer.Run(cfg)
	if err != nil {
		panic(err)
	}
	// Same deployment, same packets — only the pricing changed.
	fmt.Println("packets delivered:", flat.Delivered > 0)
	fmt.Println("same deliveries:", custom.Delivered == flat.Delivered)
	fmt.Println("cheaper than the paper's 2 J/packet:", custom.CommEnergy < flat.CommEnergy)
	// Output:
	// tx(8192 bits, 80 m): 1.25
	// rx(8192 bits, 80 m): 0.5
	// packets delivered: true
	// same deliveries: true
	// cheaper than the paper's 2 J/packet: true
}
