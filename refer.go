// Package refer is a Go implementation of REFER — the Kautz-based
// REal-time, Fault-tolerant and EneRgy-efficient Wireless Sensor and
// Actuator Network of Li & Shen (ICDCS 2012) — together with the three
// systems the paper evaluates it against (DaTree, D-DEAR and an
// application-layer Kautz overlay), a discrete-event WSAN simulator to run
// them on, and the full evaluation harness that regenerates the paper's
// Figures 4–11.
//
// The package is a facade: the implementation lives under internal/ and the
// most useful types are re-exported here.
//
//	Kautz graph theory     — ID, Graph, Routes (Theorem 3.8), GreedyNext
//	WSAN simulation        — World, ScenarioParams, BuildWorld
//	Systems under test     — System, NewSystem, NewREFER, NewDaTree, …
//	Evaluation             — RunConfig, Run, Options, Fig4 … Fig11
//
// Quick start:
//
//	w := refer.BuildWorld(refer.ScenarioParams{Seed: 1, Sensors: 200})
//	sys := refer.NewREFER(w)
//	if err := sys.Build(); err != nil { … }
//	sys.Inject(srcID, func(ok bool) { … })
//	w.Sched.RunUntil(10 * time.Second)
package refer

import (
	"context"

	"refer/internal/chaos"
	"refer/internal/core"
	"refer/internal/datree"
	"refer/internal/ddear"
	"refer/internal/energy"
	"refer/internal/experiment"
	"refer/internal/kautz"
	"refer/internal/kautzoverlay"
	"refer/internal/recovery"
	"refer/internal/scenario"
	"refer/internal/trace"
	"refer/internal/world"
)

// ---- Kautz graph theory (Section III of the paper) ----

// ID is a Kautz node identifier (digits over {0..d}, no adjacent repeats).
type ID = kautz.ID

// Graph is a fully enumerated Kautz digraph K(d, k).
type Graph = kautz.Graph

// Route is one of the d disjoint U→V paths of Theorem 3.8.
type Route = kautz.Route

// PathClass classifies a Theorem 3.8 route.
type PathClass = kautz.PathClass

// Path classes of Theorem 3.8.
const (
	ClassShortest = kautz.ClassShortest
	ClassConflict = kautz.ClassConflict
	ClassViaV1    = kautz.ClassViaV1
	ClassDetour   = kautz.ClassDetour
)

// NewGraph enumerates K(d, k).
func NewGraph(d, k int) (*Graph, error) { return kautz.New(d, k) }

// ParseID validates a Kautz identifier.
func ParseID(s string) (ID, error) { return kautz.ParseID(s) }

// Routes computes the d disjoint U→V routes of Theorem 3.8 from the IDs
// alone, sorted by path length — REFER's fault-tolerant routing table.
func Routes(d int, u, v ID) ([]Route, error) { return kautz.Routes(d, u, v) }

// GreedyNext returns the next hop of the greedy shortest protocol.
func GreedyNext(u, v ID) (ID, error) { return kautz.GreedyNext(u, v) }

// KautzDistance returns the shortest-path distance k − L(U, V).
func KautzDistance(u, v ID) int { return kautz.Distance(u, v) }

// ---- WSAN simulation substrate ----

// World is the discrete-event WSAN: nodes, radios, mobility, failures.
type World = world.World

// NodeID identifies a node in a World.
type NodeID = world.NodeID

// Node kinds.
const (
	Sensor   = world.Sensor
	Actuator = world.Actuator
)

// ScenarioParams configures the paper's deployment (Section IV): five
// actuators forming four Kautz cells on a 500 m field, N mobile sensors.
type ScenarioParams = scenario.Params

// BuildWorld constructs the evaluation deployment.
func BuildWorld(p ScenarioParams) *World { return scenario.Build(p) }

// SensorIDs lists the sensors of a world built by BuildWorld.
func SensorIDs(w *World) []NodeID { return scenario.SensorIDs(w) }

// ---- The four systems under test ----

// System is the contract shared by REFER and the three baselines.
type System = experiment.System

// Evaluated system names.
const (
	SystemREFER        = experiment.SystemREFER
	SystemDaTree       = experiment.SystemDaTree
	SystemDDEAR        = experiment.SystemDDEAR
	SystemKautzOverlay = experiment.SystemKautzOverlay

	// SystemREFERLinearScan is REFER with every cell lookup reverted to the
	// pre-index linear scans — the scale study's ablation arm. Results are
	// identical to SystemREFER; only the maintenance work differs.
	SystemREFERLinearScan = experiment.SystemREFERLinearScan

	// SystemREFERRecovery is REFER with the self-healing recovery protocols
	// (corner re-election, cell merge, CAN zone takeover) attached — the R
	// figure family's subject arm.
	SystemREFERRecovery = experiment.SystemREFERRecovery
)

// AllSystems lists the four evaluated systems.
func AllSystems() []string { return experiment.AllSystems() }

// NewSystem constructs a named system on w (see the System* constants).
func NewSystem(name string, w *World) (System, error) {
	return experiment.NewSystem(name, w)
}

// REFER is the paper's system, exposing cell and addressing introspection
// beyond the System interface.
type REFER = core.System

// Address is a REFER (CID, KID) node address.
type Address = core.Address

// NewREFER constructs an unbuilt REFER system with the paper's defaults.
func NewREFER(w *World) *REFER { return core.New(w, core.DefaultConfig()) }

// NewREFERWithConfig constructs REFER with an explicit configuration.
func NewREFERWithConfig(w *World, cfg core.Config) *REFER { return core.New(w, cfg) }

// REFERConfig parameterizes a REFER deployment.
type REFERConfig = core.Config

// NewDaTree constructs the tree-based baseline.
func NewDaTree(w *World) *datree.System { return datree.New(w, datree.DefaultConfig()) }

// NewDDEAR constructs the mesh/cluster baseline.
func NewDDEAR(w *World) *ddear.System { return ddear.New(w, ddear.DefaultConfig()) }

// NewKautzOverlay constructs the application-layer Kautz overlay baseline.
func NewKautzOverlay(w *World) *kautzoverlay.System {
	return kautzoverlay.New(w, kautzoverlay.DefaultConfig())
}

// ---- Evaluation harness (Section IV) ----

// RunConfig describes one simulation run (system, scenario, traffic,
// faults, QoS deadline, optional packet tracing).
type RunConfig = experiment.RunConfig

// Result holds one run's measurements and its RunStats block.
type Result = experiment.Result

// RunStats is the per-run observability block (wall clock, DES events,
// route-table and failover counters, energy ledgers, trace counts).
type RunStats = experiment.RunStats

// Run executes one simulation.
func Run(cfg RunConfig) (Result, error) { return experiment.Run(cfg) }

// RunContext is Run with cancellation: the simulation checks ctx between
// event batches and aborts promptly with ctx.Err().
func RunContext(ctx context.Context, cfg RunConfig) (Result, error) {
	return experiment.RunContext(ctx, cfg)
}

// KnownSystem reports whether name is a constructible system (the four
// evaluated systems plus the registered ablation variants).
func KnownSystem(name string) bool { return experiment.KnownSystem(name) }

// KnownSystems lists every constructible system name, sorted.
func KnownSystems() []string { return experiment.KnownSystems() }

// RunHandle is a simulation started with StartRun: cancellable, with live
// progress snapshots and a blocking Result accessor.
type RunHandle = experiment.RunHandle

// RunProgress is a virtual-clock progress snapshot of a running simulation.
type RunProgress = experiment.RunProgress

// StartRun launches a simulation asynchronously, invoking onProgress (when
// non-nil) after every DES event batch. This is the primitive the
// refer-simd daemon serves runs with.
func StartRun(ctx context.Context, cfg RunConfig, onProgress func(RunProgress)) *RunHandle {
	return experiment.StartRun(ctx, cfg, onProgress)
}

// ConfigKey returns the content address of a run configuration: the hex
// SHA-256 of its fully-defaulted canonical form. Replay determinism makes
// the key a cache address for the run's wall-clock-stripped Result.
func ConfigKey(cfg RunConfig) (string, error) { return experiment.ConfigKey(cfg) }

// OptionsKey is ConfigKey for a figure build: the content address of
// (figure ID, sweep options), excluding fields that cannot change the
// output (parallelism, progress callbacks).
func OptionsKey(figureID string, o Options) (string, error) {
	return experiment.OptionsKey(figureID, o)
}

// Options scales the figure sweeps (seeds, duration, systems, progress
// reporting, trace sampling).
type Options = experiment.Options

// ProgressEvent reports one finished simulation run of a sweep to
// Options.Progress.
type ProgressEvent = experiment.ProgressEvent

// Figure is a reproduced evaluation figure.
type Figure = experiment.Figure

// SweepStats aggregates the per-run stats of a figure's sweep.
type SweepStats = experiment.SweepStats

// FigureSpec is a registered figure: ID, title, kind and a context-aware
// builder.
type FigureSpec = experiment.FigureSpec

// FigureKind classifies registry entries.
type FigureKind = experiment.FigureKind

// Figure kinds.
const (
	KindPaper     = experiment.KindPaper
	KindAblation  = experiment.KindAblation
	KindExtension = experiment.KindExtension
	KindScale     = experiment.KindScale
	KindRecovery  = experiment.KindRecovery
)

// Figures returns every registered figure in presentation order.
func Figures() []FigureSpec { return experiment.Figures() }

// FigureByID looks up a registered figure ("4"…"11", "A1"…"A3", "E1"…"E3",
// "L1"…"L3", "S1"…"S4").
func FigureByID(id string) (FigureSpec, bool) { return experiment.FigureByID(id) }

// Figure generators for the paper's evaluation.
var (
	Fig4  = experiment.Fig4
	Fig5  = experiment.Fig5
	Fig6  = experiment.Fig6
	Fig7  = experiment.Fig7
	Fig8  = experiment.Fig8
	Fig9  = experiment.Fig9
	Fig10 = experiment.Fig10
	Fig11 = experiment.Fig11

	// Network-growth study (indexed vs linear-scan REFER at scale).
	FigS1 = experiment.FigS1
	FigS2 = experiment.FigS2
	FigS3 = experiment.FigS3

	// Growth frontier (20k–100k sensors, maintenance sharded per run).
	FigS4 = experiment.FigS4

	// Self-healing recovery study (delivery ratio and repair latency under
	// actuator-kill campaigns).
	FigR1 = experiment.FigR1
	FigR2 = experiment.FigR2
)

// MaxParallelism bounds both parallelism knobs (Options.Parallelism /
// Options.RunParallelism / RunConfig.RunParallelism); out-of-range values
// are configuration errors, never silent fallbacks.
const MaxParallelism = experiment.MaxParallelism

// AllFigures regenerates every evaluation figure.
func AllFigures(o Options) ([]Figure, error) { return experiment.AllFigures(o) }

// AllFiguresContext is AllFigures with cancellation.
func AllFiguresContext(ctx context.Context, o Options) ([]Figure, error) {
	return experiment.AllFiguresContext(ctx, o)
}

// ---- Pluggable energy models ----

// CostModel prices every radio operation: the Joules to transmit or
// receive a packet of the given size over a link of the given length.
// Implementations must be pure functions of their arguments — the replay
// determinism guarantee (and the result cache built on it) depends on
// charges being reproducible. Plug a custom model into a single run via
// ScenarioParams.Energy; the built-in models are also selectable by name
// through RunConfig.Energy / Options.Energy, which canonicalize into
// cache keys.
type CostModel = energy.CostModel

// PaperModel charges the paper's flat per-packet constants (2 J transmit,
// 0.75 J receive), ignoring packet size and link distance. The default.
type PaperModel = energy.PaperModel

// RadioModel is the first-order radio model: electronics cost per bit
// plus amplifier cost growing with d² (free space) or d⁴ (multipath)
// past the crossover distance D0.
type RadioModel = energy.RadioModel

// HarvestingModel wraps any cost model with periodic energy-harvesting
// income and duty-cycled sleep, both driven by DES events.
type HarvestingModel = energy.HarvestingModel

// EnergySpec is the serializable selection of a built-in cost model; the
// zero value means "the paper's flat constants". Set it on
// RunConfig.Energy (one run) or Options.Energy (a whole sweep).
type EnergySpec = energy.Spec

// Built-in cost-model names for EnergySpec.Model.
const (
	EnergyModelPaper      = energy.ModelPaper
	EnergyModelRadio      = energy.ModelRadio
	EnergyModelHarvesting = energy.ModelHarvesting
)

// DefaultEnergyModel returns the paper's flat-cost model.
func DefaultEnergyModel() PaperModel { return energy.DefaultModel() }

// DefaultRadioModel returns the first-order radio model with the
// standard constants (50 nJ/bit electronics, 10 pJ/bit/m² free-space and
// 0.0013 pJ/bit/m⁴ multipath amplifiers).
func DefaultRadioModel() RadioModel { return energy.DefaultRadioModel() }

// Lifetime figure generators (the energy-model extension study).
var (
	FigL1 = experiment.FigL1
	FigL2 = experiment.FigL2
	FigL3 = experiment.FigL3
)

// ---- Self-healing actuator recovery ----

// RecoverySpec is the serializable recovery configuration: the zero value
// means "recovery disabled" and canonicalizes to nothing, so pre-existing
// config keys are unchanged. Set it on RunConfig.Recovery (one run) or
// Options.Recovery (a whole sweep); SystemREFERRecovery enables it with
// defaults even when the spec is zero.
type RecoverySpec = recovery.Spec

// RecoveryStats counts the recovery actions a run applied (detection
// sweeps, corner re-elections, cell merges, CAN zone takeovers) plus the
// accumulated virtual detection→repair latency. Deterministic per seed.
type RecoveryStats = recovery.Stats

// RecoveryAction records one completed repair.
type RecoveryAction = recovery.Action

// ---- Deterministic fault injection ----

// ChaosSchedule is a deterministic fault campaign: DES-scheduled crash,
// blackout, churn, brownout and link-loss events replayed identically for
// a given seed. Attach one via RunConfig.Chaos (per run) or Options.Chaos
// (sweep-wide).
type ChaosSchedule = chaos.Schedule

// ChaosEvent is one scheduled fault event.
type ChaosEvent = chaos.Event

// ChaosStats counts the fault actions a campaign actually applied.
type ChaosStats = chaos.Stats

// Chaos event kinds.
const (
	ChaosCrash        = chaos.Crash
	ChaosRecover      = chaos.Recover
	ChaosBlackout     = chaos.Blackout
	ChaosActuatorKill = chaos.ActuatorKill
	ChaosChurn        = chaos.Churn
	ChaosBrownout     = chaos.Brownout
	ChaosLinkLoss     = chaos.LinkLoss
)

// ParseChaosSchedule parses and validates a JSON fault schedule (see
// EXPERIMENTS.md for the schema).
func ParseChaosSchedule(data []byte) (*ChaosSchedule, error) { return chaos.Parse(data) }

// LoadChaosSchedule reads a JSON fault schedule from a file.
func LoadChaosSchedule(path string) (*ChaosSchedule, error) { return chaos.Load(path) }

// ---- Packet tracing ----

// TraceRecorder records one run's packet lifecycle and radio events; attach
// it via RunConfig.Trace or sweep-wide via Options.TraceSample.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded packet event.
type TraceEvent = trace.Event

// TraceCounts are the exact (unsampled) trace counters of a run.
type TraceCounts = trace.Counts

// NewTraceRecorder creates a recorder keeping every sampleEvery-th packet's
// event stream; counts are always exact.
func NewTraceRecorder(sampleEvery int) *TraceRecorder { return trace.NewRecorder(sampleEvery) }
