package mobility

import (
	"math/rand"
	"testing"
	"time"

	"refer/internal/geo"
)

func TestStatic(t *testing.T) {
	p := geo.Point{X: 10, Y: 20}
	s := Static{P: p}
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := s.At(at); got != p {
			t.Fatalf("Static.At(%v) = %v, want %v", at, got, p)
		}
	}
}

func TestWaypointStartsAtStart(t *testing.T) {
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(1))
	start := geo.Point{X: 100, Y: 100}
	w := NewWaypoint(region, start, 3, rng)
	if got := w.At(0); got != start {
		t.Fatalf("At(0) = %v, want %v", got, start)
	}
}

func TestWaypointStaysInRegion(t *testing.T) {
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(region, region.RandomPoint(rng), 5, rng)
	for s := 0; s <= 2000; s++ {
		p := w.At(time.Duration(s) * 500 * time.Millisecond)
		if !region.Contains(p) {
			t.Fatalf("position %v at t=%ds outside region", p, s/2)
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(3))
	const maxSpeed = 3.0
	w := NewWaypoint(region, region.RandomPoint(rng), maxSpeed, rng)
	const dt = 100 * time.Millisecond
	prev := w.At(0)
	for i := 1; i < 20000; i++ {
		now := w.At(time.Duration(i) * dt)
		moved := prev.Dist(now)
		if moved > maxSpeed*dt.Seconds()+1e-6 {
			t.Fatalf("step %d: moved %.4f m in %v (max %.4f)", i, moved, dt, maxSpeed*dt.Seconds())
		}
		prev = now
	}
}

func TestWaypointDeterministic(t *testing.T) {
	region := geo.Square(500)
	mk := func() *Waypoint {
		rng := rand.New(rand.NewSource(42))
		return NewWaypoint(region, geo.Point{X: 250, Y: 250}, 2, rng)
	}
	w1, w2 := mk(), mk()
	for s := 0; s < 500; s++ {
		at := time.Duration(s) * time.Second
		if p1, p2 := w1.At(at), w2.At(at); p1 != p2 {
			t.Fatalf("t=%v: %v != %v", at, p1, p2)
		}
	}
}

func TestWaypointZeroSpeedIsStatic(t *testing.T) {
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(4))
	start := geo.Point{X: 50, Y: 60}
	w := NewWaypoint(region, start, 0, rng)
	for s := 0; s < 100; s++ {
		if got := w.At(time.Duration(s) * time.Second); got != start {
			t.Fatalf("zero-speed node moved to %v", got)
		}
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(5))
	start := geo.Point{X: 250, Y: 250}
	w := NewWaypoint(region, start, 3, rng)
	moved := false
	for s := 1; s < 300; s++ {
		if w.At(time.Duration(s)*time.Second) != start {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("waypoint node never moved in 300 s at up to 3 m/s")
	}
}

func TestWaypointLongHorizonTrimming(t *testing.T) {
	// Exercise itinerary trimming on a long run; positions must remain
	// in-region and the model must not panic.
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(6))
	w := NewWaypoint(region, region.RandomPoint(rng), 5, rng)
	for s := 0; s < 100000; s += 7 {
		p := w.At(time.Duration(s) * time.Second)
		if !region.Contains(p) {
			t.Fatalf("t=%ds: %v outside region", s, p)
		}
	}
}

func TestWaypointContinuityAcrossLegs(t *testing.T) {
	// Positions sampled densely must be continuous: no teleporting at
	// waypoint boundaries.
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(7))
	const maxSpeed = 4.0
	w := NewWaypoint(region, region.RandomPoint(rng), maxSpeed, rng)
	const dt = 10 * time.Millisecond
	prev := w.At(0)
	for i := 1; i < 50000; i++ {
		now := w.At(time.Duration(i) * dt)
		if prev.Dist(now) > maxSpeed*dt.Seconds()+1e-6 {
			t.Fatalf("discontinuity at step %d: %v → %v", i, prev, now)
		}
		prev = now
	}
}

func TestWaypointNearZeroSpeedDwells(t *testing.T) {
	// A cap below the minimum leg speed degenerates to dwelling in place.
	region := geo.Square(500)
	rng := rand.New(rand.NewSource(8))
	start := geo.Point{X: 100, Y: 100}
	w := NewWaypoint(region, start, 1e-4, rng)
	for s := 0; s < 120; s += 7 {
		if got := w.At(time.Duration(s) * time.Second); got != start {
			t.Fatalf("near-zero-speed node moved to %v", got)
		}
	}
}

func TestWaypointBoundedBacktracking(t *testing.T) {
	// The Model contract allows the clock to step backwards by up to
	// RetentionHorizon (the DES drain's prepares sample slightly ahead of
	// the commit loop). Positions re-queried inside that window must match
	// a forward-only replay exactly, even across itinerary trimming.
	region := geo.Square(500)
	ref := NewWaypoint(region, geo.Point{X: 250, Y: 250}, 5, rand.New(rand.NewSource(9)))
	bt := NewWaypoint(region, geo.Point{X: 250, Y: 250}, 5, rand.New(rand.NewSource(9)))
	for s := 0; s < 50000; s += 5 {
		now := time.Duration(s) * time.Second
		want := ref.At(now)
		// Jump ahead (a prepare's lookahead), then back to the present.
		bt.At(now + 800*time.Millisecond)
		if got := bt.At(now); got != want {
			t.Fatalf("t=%v: backtracked position %v, forward-only %v", now, got, want)
		}
	}
	if len(bt.legs) > 256 {
		t.Fatalf("itinerary not trimmed: %d legs retained", len(bt.legs))
	}
}
