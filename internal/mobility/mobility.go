// Package mobility implements the node movement models of the evaluation:
// the random-waypoint model for sensors ("each sensor randomly selects a
// destination point and moves to that point with a speed randomly selected
// from [0,v] m/s", Section IV) and a static model for actuators.
//
// Positions are closed-form functions of the virtual clock, so the
// simulator never has to step positions: a Model answers At(t) exactly for
// any time, and the discrete-event core samples it on demand.
package mobility

import (
	"math/rand"
	"time"

	"refer/internal/geo"
)

// Model yields a node's position at any virtual time.
type Model interface {
	// At returns the node's position at time t. The clock may advance
	// freely and step backwards by a bounded amount: after a call At(t),
	// later calls must satisfy t' >= t - RetentionHorizon. The
	// random-waypoint model lazily extends its itinerary as the clock
	// advances and retains at least that much history. The batched DES
	// drain relies on the backtracking allowance — prepares sample
	// positions up to its lookahead window (a few milliseconds) ahead of
	// events the commit loop then executes at the earlier present.
	At(t time.Duration) geo.Point
}

// RetentionHorizon is how far behind the latest sampled time a Model must
// keep answering At exactly. It is orders of magnitude larger than the DES
// drain's lookahead window, the only source of backwards time steps.
const RetentionHorizon = time.Second

// SpeedBounded is implemented by models that can bound how fast they move.
// The simulator uses the bound to quantize spatial-index rebuilds: a world
// whose models all report 0 never rebuilds its index, and a finite bound
// turns "rebuild on every clock advance" into "rebuild once per staleness
// epoch" (see the world package). Models that do not implement it are
// treated as unboundedly fast — always correct, never faster.
type SpeedBounded interface {
	// MaxSpeed returns an upper bound on the model's speed in m/s.
	MaxSpeed() float64
}

// Static is an immobile node (actuators, or sensors with MaxSpeed 0).
type Static struct {
	P geo.Point
}

// At implements Model.
func (s Static) At(time.Duration) geo.Point { return s.P }

// MaxSpeed implements SpeedBounded: a static node never moves.
func (s Static) MaxSpeed() float64 { return 0 }

// leg is one waypoint segment of a random-waypoint itinerary.
type leg struct {
	start    time.Duration
	from     geo.Point
	to       geo.Point
	duration time.Duration
}

// Waypoint is a random-waypoint mover: pick a uniform destination in the
// region, move there at a uniform speed in [0, MaxSpeed], repeat.
// The itinerary is generated lazily and deterministically from the model's
// own RNG, so two runs with the same seed produce identical motion.
type Waypoint struct {
	region   geo.Rect
	maxSpeed float64 // m/s
	rng      *rand.Rand
	legs     []leg
}

// NewWaypoint creates a random-waypoint model starting at start.
// maxSpeed <= 0 degenerates to a static node at start.
func NewWaypoint(region geo.Rect, start geo.Point, maxSpeed float64, rng *rand.Rand) *Waypoint {
	w := &Waypoint{region: region, maxSpeed: maxSpeed, rng: rng}
	w.legs = append(w.legs, leg{start: 0, from: start, to: start, duration: 0})
	return w
}

// minLegSpeed avoids division blow-ups for the near-zero speed draws the
// uniform [0, max] distribution produces: a node that draws ~0 m/s simply
// pauses (the leg is re-rolled as a dwell).
const minLegSpeed = 1e-3

// dwellTime is how long a node pauses when it draws a (near-)zero speed.
const dwellTime = 5 * time.Second

// MaxSpeed implements SpeedBounded: leg speeds are drawn uniformly from
// [0, maxSpeed], so maxSpeed bounds the mover's displacement rate.
func (w *Waypoint) MaxSpeed() float64 {
	if w.maxSpeed < 0 {
		return 0
	}
	return w.maxSpeed
}

// At implements Model.
func (w *Waypoint) At(t time.Duration) geo.Point {
	last := &w.legs[len(w.legs)-1]
	for t >= last.start+last.duration {
		w.extend()
		last = &w.legs[len(w.legs)-1]
	}
	// Find the active leg; in the common case it is the last or near-last,
	// so scan backwards.
	for i := len(w.legs) - 1; i >= 0; i-- {
		l := w.legs[i]
		if t >= l.start {
			if l.duration == 0 {
				return l.to
			}
			frac := float64(t-l.start) / float64(l.duration)
			return l.from.Lerp(l.to, frac)
		}
	}
	return w.legs[0].from
}

// extend appends the next itinerary leg.
func (w *Waypoint) extend() {
	last := w.legs[len(w.legs)-1]
	at := last.to
	begin := last.start + last.duration
	if w.maxSpeed <= 0 {
		w.legs = append(w.legs, leg{start: begin, from: at, to: at, duration: dwellTime})
		return
	}
	dest := w.region.RandomPoint(w.rng)
	speed := w.rng.Float64() * w.maxSpeed
	if speed < minLegSpeed {
		w.legs = append(w.legs, leg{start: begin, from: at, to: at, duration: dwellTime})
		return
	}
	dist := at.Dist(dest)
	dur := time.Duration(dist / speed * float64(time.Second))
	if dur <= 0 {
		dur = time.Millisecond
	}
	w.legs = append(w.legs, leg{start: begin, from: at, to: dest, duration: dur})
	// Bound memory for very long runs, but honor the Model contract's
	// bounded backtracking: only drop legs that ended more than
	// RetentionHorizon before the itinerary head, so At stays exact for
	// any t the DES drain's lookahead can revisit.
	if len(w.legs) > 64 {
		cut := 0
		for cut < len(w.legs)-1 && w.legs[cut].start+w.legs[cut].duration+RetentionHorizon < begin {
			cut++
		}
		if cut > 0 {
			w.legs = append(w.legs[:0], w.legs[cut:]...)
		}
	}
}
