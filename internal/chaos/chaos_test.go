package chaos

import (
	"encoding/json"
	"testing"
	"time"

	"refer/internal/scenario"
	"refer/internal/world"
)

// TestScheduleParse pins the JSON schema: durations parse from both Go
// duration strings and bare numbers of seconds, and a parsed schedule
// marshals back to an equivalent one.
func TestScheduleParse(t *testing.T) {
	src := `{
		"seed": 42,
		"events": [
			{"kind": "churn", "at": "100s", "duration": "10m", "rate": 0.05, "downtime": 30},
			{"kind": "blackout", "at": 300, "x": 250, "y": 250, "radius": 100, "duration": "60s"},
			{"kind": "link-loss", "at": "200s", "probability": 0.1, "duration": "100s"},
			{"kind": "brownout", "at": "400s", "fraction": 0.5},
			{"kind": "actuator-kill", "at": "250s", "node": 2, "duration": "120s"},
			{"kind": "crash", "at": "50s", "node": 7},
			{"kind": "recover", "at": "80s", "node": 7}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || len(s.Events) != 7 {
		t.Fatalf("parsed seed=%d events=%d", s.Seed, len(s.Events))
	}
	if got := s.Events[0].Downtime.D(); got != 30*time.Second {
		t.Fatalf("numeric downtime = %v, want 30s", got)
	}
	if got := s.Events[1].At.D(); got != 300*time.Second {
		t.Fatalf("numeric at = %v, want 300s", got)
	}
	if got := s.Events[0].Duration.D(); got != 10*time.Minute {
		t.Fatalf("string duration = %v, want 10m", got)
	}
	// Round-trip: marshal and re-parse must preserve every event.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if back.Seed != s.Seed || len(back.Events) != len(s.Events) {
		t.Fatalf("round-trip lost events: %+v", back)
	}
	for i := range s.Events {
		if back.Events[i] != s.Events[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, back.Events[i], s.Events[i])
		}
	}
}

// TestScheduleValidate pins the rejection of malformed events.
func TestScheduleValidate(t *testing.T) {
	bad := []Event{
		{Kind: "meteor", At: 0},
		{Kind: Churn, At: 0, Rate: 0, Duration: Duration(time.Minute), Downtime: Duration(time.Second)},
		{Kind: Churn, At: 0, Rate: 1, Duration: 0, Downtime: Duration(time.Second)},
		{Kind: Churn, At: 0, Rate: 1, Duration: Duration(time.Minute), Downtime: 0},
		{Kind: Blackout, At: 0, Radius: 0},
		{Kind: Brownout, At: 0, Fraction: 0},
		{Kind: Brownout, At: 0, Fraction: 1.5},
		{Kind: LinkLoss, At: 0, Probability: 1.2},
		{Kind: Crash, At: Duration(-time.Second)},
	}
	for i, ev := range bad {
		s := &Schedule{Events: []Event{ev}}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%s): invalid event accepted", i, ev.Kind)
		}
	}
	ok := &Schedule{Events: []Event{
		{Kind: Crash, At: 0, Node: -3},
		{Kind: LinkLoss, At: 0, Probability: 0},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// chaosWorld builds a small deterministic deployment for injector tests.
func chaosWorld(seed int64) *world.World {
	return scenario.Build(scenario.Params{Seed: seed, Sensors: 60})
}

// torture is a schedule exercising every event kind.
func torture() *Schedule {
	return &Schedule{
		Seed: 99,
		Events: []Event{
			{Kind: Crash, At: Duration(5 * time.Second), Node: 3, Duration: Duration(20 * time.Second)},
			{Kind: Crash, At: Duration(6 * time.Second), Node: 11},
			{Kind: Recover, At: Duration(40 * time.Second), Node: 11},
			{Kind: ActuatorKill, At: Duration(10 * time.Second), Node: 1, Duration: Duration(15 * time.Second)},
			{Kind: Blackout, At: Duration(20 * time.Second), X: 250, Y: 250, Radius: 150, Duration: Duration(30 * time.Second)},
			{Kind: Churn, At: Duration(15 * time.Second), Rate: 0.5, Duration: Duration(60 * time.Second), Downtime: Duration(10 * time.Second)},
			{Kind: Brownout, At: Duration(50 * time.Second), Fraction: 0.4},
			{Kind: LinkLoss, At: Duration(30 * time.Second), Probability: 0.2, Duration: Duration(25 * time.Second)},
		},
	}
}

// TestAttachDeterminism pins the core guarantee: the same world seed and
// the same schedule replay to identical fault campaigns — same applied
// counters, same world transition counts — with the injector drawing only
// from its own stream.
func TestAttachDeterminism(t *testing.T) {
	run := func() (Stats, world.Stats, time.Duration) {
		w := chaosWorld(7)
		inj, err := Attach(w, torture())
		if err != nil {
			t.Fatal(err)
		}
		w.Sched.RunUntil(120 * time.Second)
		return inj.Stats(), w.Stats(), w.Now()
	}
	s1, w1, now1 := run()
	s2, w2, now2 := run()
	if s1 != s2 {
		t.Fatalf("injector stats diverged:\n first = %+v\nsecond = %+v", s1, s2)
	}
	if w1 != w2 {
		t.Fatalf("world stats diverged:\n first = %+v\nsecond = %+v", w1, w2)
	}
	if now1 != now2 {
		t.Fatalf("clocks diverged: %v vs %v", now1, now2)
	}
	if s1.Crashes == 0 || s1.ChurnCrashes == 0 || s1.ActuatorKills == 0 ||
		s1.BlackoutNodes == 0 || s1.Brownouts == 0 || s1.LossWindows == 0 {
		t.Fatalf("degenerate campaign, some kinds never applied: %+v", s1)
	}
	if s1.Recoveries == 0 {
		t.Fatalf("no recoveries applied: %+v", s1)
	}
}

// TestInjectorLeavesWorldStreamAlone pins the isolation property that
// keeps non-chaos replays byte-identical: attaching and running a fault
// campaign must not consume a single value from the world's own RNG.
func TestInjectorLeavesWorldStreamAlone(t *testing.T) {
	quiet := chaosWorld(7)
	quiet.Sched.RunUntil(120 * time.Second)
	wantNext := quiet.Rand().Int63()

	noisy := chaosWorld(7)
	if _, err := Attach(noisy, torture()); err != nil {
		t.Fatal(err)
	}
	noisy.Sched.RunUntil(120 * time.Second)
	if got := noisy.Rand().Int63(); got != wantNext {
		t.Fatalf("fault campaign perturbed the world's random stream: next draw %d, want %d", got, wantNext)
	}
}

// TestDrainAccounting pins the brownout energy ledger: drained Joules land
// in the meters' drain ledgers, the world's counter matches their sum, and
// the exact-accounting invariant holds afterwards.
func TestDrainAccounting(t *testing.T) {
	// Constrained batteries: the evaluation default is unconstrained
	// (energy as metric), under which Drain is a documented no-op.
	w := scenario.Build(scenario.Params{Seed: 3, Sensors: 60, SensorBattery: 1000})
	s := &Schedule{Events: []Event{
		{Kind: Brownout, At: Duration(time.Second), Fraction: 0.25},
		{Kind: Brownout, At: Duration(2 * time.Second), Fraction: 0.5, X: 250, Y: 250, Radius: 200},
	}}
	inj, err := Attach(w, s)
	if err != nil {
		t.Fatal(err)
	}
	w.Sched.RunUntil(5 * time.Second)
	st := inj.Stats()
	if st.Brownouts != 2 || st.DrainedJoules <= 0 {
		t.Fatalf("brownouts not applied: %+v", st)
	}
	var metered float64
	for _, n := range w.Nodes() {
		metered += n.Meter.Drained()
	}
	if metered != st.DrainedJoules {
		t.Fatalf("meters drained %v J, injector counted %v J", metered, st.DrainedJoules)
	}
	if ws := w.Stats().EnergyDrained; ws != st.DrainedJoules {
		t.Fatalf("world counted %v J, injector %v J", ws, st.DrainedJoules)
	}
	h := NewHarness(w, nil)
	h.Check("post-brownout")
	if v := h.Violations(); len(v) != 0 {
		t.Fatalf("energy invariants violated after brownout: %v", v)
	}
}

// TestOverlapRefcount pins the downed refcount: a node covered by two
// fault sources stays down until the last one clears.
func TestOverlapRefcount(t *testing.T) {
	w := chaosWorld(5)
	inj := &Injector{w: w, downed: map[world.NodeID]int{}}
	for _, n := range w.Nodes() {
		if n.Kind != world.Actuator {
			inj.sensors = append(inj.sensors, n.ID)
		}
	}
	id := inj.sensors[0]
	inj.down(id)
	inj.down(id)
	if w.Node(id).Alive() {
		t.Fatal("node alive while downed")
	}
	inj.up(id)
	if w.Node(id).Alive() {
		t.Fatal("node recovered with a fault source still covering it")
	}
	inj.up(id)
	if !w.Node(id).Alive() {
		t.Fatal("node failed to recover after the last source cleared")
	}
	if got := inj.Stats(); got.Crashes != 1 || got.Recoveries != 1 {
		t.Fatalf("refcount stats: %+v, want 1 crash / 1 recovery", got)
	}
	// A recovery without a matching source is a no-op, not an underflow.
	inj.up(id)
	if got := inj.Stats().Recoveries; got != 1 {
		t.Fatalf("spurious recovery counted: %d", got)
	}
}

// TestLinkLossWindowRestores pins the transient degradation: the loss
// probability applies at the window start and clears at its end.
func TestLinkLossWindowRestores(t *testing.T) {
	w := chaosWorld(1)
	s := &Schedule{Events: []Event{
		{Kind: LinkLoss, At: Duration(10 * time.Second), Probability: 0.3, Duration: Duration(20 * time.Second)},
	}}
	if _, err := Attach(w, s); err != nil {
		t.Fatal(err)
	}
	w.Sched.RunUntil(15 * time.Second)
	if got := w.LinkLoss(); got != 0.3 {
		t.Fatalf("mid-window loss = %v, want 0.3", got)
	}
	w.Sched.RunUntil(40 * time.Second)
	if got := w.LinkLoss(); got != 0 {
		t.Fatalf("post-window loss = %v, want 0", got)
	}
}
