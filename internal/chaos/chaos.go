// Package chaos is the simulator's deterministic fault-injection
// subsystem: a declarative schedule of typed fault events — node crashes
// and recoveries, correlated regional blackouts, actuator kills, churn
// bursts, energy brownouts, transient link degradation — compiled onto the
// discrete-event queue of a world.
//
// Determinism is the design constraint everything else bends around. The
// injector draws every random decision (churn inter-arrival times, churn
// victim selection) from its own rand.Rand seeded by the schedule, never
// from the world's stream, so attaching a schedule perturbs the simulation
// only through the faults themselves: two runs of the same seed and the
// same schedule replay byte-identically, and a run with no schedule is
// byte-identical to a build without this package.
//
// On top of the injector, Harness (see invariants.go) turns any of the
// evaluated systems into a conformance subject: it re-checks the
// simulator-wide invariants (packet conservation, exact energy accounting)
// and the system's own structural invariants after every fault event and
// at run end.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"refer/internal/geo"
	"refer/internal/world"
)

// EventKind names a fault type.
type EventKind string

const (
	// Crash fails one sensor (Node indexes the world's sensors). A positive
	// Duration schedules the matching recovery; zero is permanent.
	Crash EventKind = "crash"
	// Recover clears one sensor's crash (one source; crashes refcount).
	Recover EventKind = "recover"
	// Blackout fails every node — sensors and actuators — within Radius
	// meters of (X, Y) at the event time, recovering them after Duration
	// (zero: permanent). Models a correlated regional failure.
	Blackout EventKind = "blackout"
	// ActuatorKill fails one actuator (Node indexes the world's actuators).
	// A positive Duration schedules the recovery; zero is permanent.
	ActuatorKill EventKind = "actuator-kill"
	// Churn runs a crash burst: for Duration, sensors crash at Poisson rate
	// Rate (crashes per second), each recovering Downtime later.
	Churn EventKind = "churn"
	// Brownout drains Fraction of each sensor's remaining battery through
	// the meter's drain ledger; with Radius > 0 only sensors within Radius
	// of (X, Y) are hit.
	Brownout EventKind = "brownout"
	// LinkLoss sets the world's transient link-degradation probability to
	// Probability for Duration (zero: for the rest of the run).
	LinkLoss EventKind = "link-loss"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("90s", "2m30s") or a bare JSON number of seconds.
type Duration time.Duration

// D returns the value as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("chaos: bad duration %s: %w", b, err)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Event is one declarative fault. Only the fields its Kind documents are
// meaningful; Validate rejects events whose required fields are missing.
type Event struct {
	Kind EventKind `json:"kind"`
	// At is the virtual time the fault fires.
	At Duration `json:"at"`
	// Node indexes the world's sensor list (crash, recover) or actuator
	// list (actuator-kill), taken modulo the list length so schedules are
	// portable across deployment sizes.
	Node int `json:"node,omitempty"`
	// X, Y, Radius delimit a region (blackout; optional for brownout).
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Duration is the fault's length: blackout/crash/actuator-kill/link-loss
	// recovery delay, or the churn window.
	Duration Duration `json:"duration,omitempty"`
	// Rate is the churn crash rate in crashes per second.
	Rate float64 `json:"rate,omitempty"`
	// Downtime is the per-victim churn recovery delay.
	Downtime Duration `json:"downtime,omitempty"`
	// Fraction is the brownout drain fraction of remaining charge in (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
	// Probability is the link-loss probability in [0, 1].
	Probability float64 `json:"probability,omitempty"`
}

// Schedule is a full fault campaign: a seed for the injector's private
// random stream plus the event list. Events firing at the same virtual
// time apply in list order.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Validate checks every event's required fields.
func (s *Schedule) Validate() error {
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative time %v", i, ev.Kind, ev.At.D())
		}
		switch ev.Kind {
		case Crash, Recover, ActuatorKill:
			// Node is taken modulo the population; any value is legal.
		case Blackout:
			if ev.Radius <= 0 {
				return fmt.Errorf("chaos: event %d (blackout): radius must be positive", i)
			}
		case Churn:
			if ev.Rate <= 0 {
				return fmt.Errorf("chaos: event %d (churn): rate must be positive", i)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("chaos: event %d (churn): duration must be positive", i)
			}
			if ev.Downtime <= 0 {
				return fmt.Errorf("chaos: event %d (churn): downtime must be positive", i)
			}
		case Brownout:
			if ev.Fraction <= 0 || ev.Fraction > 1 {
				return fmt.Errorf("chaos: event %d (brownout): fraction %v outside (0, 1]", i, ev.Fraction)
			}
		case LinkLoss:
			if ev.Probability < 0 || ev.Probability > 1 {
				return fmt.Errorf("chaos: event %d (link-loss): probability %v outside [0, 1]", i, ev.Probability)
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Parse decodes and validates a JSON schedule.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: parsing schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return Parse(data)
}

// Stats counts the faults an injector actually applied. It is comparable,
// so replay tests assert equality across runs.
type Stats struct {
	// Events counts top-level schedule events fired.
	Events int `json:"events"`
	// Crashes and Recoveries count node down/up transitions from any
	// source (crash, blackout, actuator-kill, churn); overlapping sources
	// are refcounted, so a node crashes once no matter how many faults
	// cover it.
	Crashes    int `json:"crashes"`
	Recoveries int `json:"recoveries"`
	// ChurnCrashes counts churn victims (a subset of Crashes).
	ChurnCrashes int `json:"churn_crashes"`
	// ActuatorKills counts actuator-kill events that downed their target.
	ActuatorKills int `json:"actuator_kills"`
	// BlackoutNodes counts nodes caught in blackout regions.
	BlackoutNodes int `json:"blackout_nodes"`
	// Brownouts counts brownout events; DrainedJoules sums their yield.
	Brownouts     int     `json:"brownouts"`
	DrainedJoules float64 `json:"drained_joules"`
	// LossWindows counts link-loss events applied.
	LossWindows int `json:"loss_windows"`
}

// Add accumulates other into s, so sweeps aggregate stats across runs.
func (s *Stats) Add(other Stats) {
	s.Events += other.Events
	s.Crashes += other.Crashes
	s.Recoveries += other.Recoveries
	s.ChurnCrashes += other.ChurnCrashes
	s.ActuatorKills += other.ActuatorKills
	s.BlackoutNodes += other.BlackoutNodes
	s.Brownouts += other.Brownouts
	s.DrainedJoules += other.DrainedJoules
	s.LossWindows += other.LossWindows
}

// Injector applies a schedule's events to one world. Create with Attach.
type Injector struct {
	w         *world.World
	rng       *rand.Rand
	sensors   []world.NodeID
	actuators []world.NodeID
	// downed refcounts this injector's crash sources per node, so
	// overlapping faults (a churn victim inside a blackout) recover the
	// node only when the last source clears.
	downed   map[world.NodeID]int
	observer func(kind EventKind)
	stats    Stats
}

// Attach validates the schedule and compiles its events onto w's event
// queue. It must be called before the run starts (events in the past are
// rejected by the scheduler). The injector is inert afterwards — all work
// happens inside scheduled callbacks.
func Attach(w *world.World, s *Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		w:      w,
		rng:    rand.New(rand.NewSource(s.Seed)),
		downed: make(map[world.NodeID]int),
	}
	for _, n := range w.Nodes() {
		if n.Kind == world.Actuator {
			inj.actuators = append(inj.actuators, n.ID)
		} else {
			inj.sensors = append(inj.sensors, n.ID)
		}
	}
	// Chaos events are untagged (Sched.At): fault flips touch global alive
	// state, so they must serial-step through the batched drain and bump the
	// read generation (world.SetFailed → InvalidateReads) for staged events.
	for _, ev := range s.Events {
		ev := ev
		if _, err := w.Sched.At(ev.At.D(), func() { inj.apply(ev) }); err != nil {
			return nil, fmt.Errorf("chaos: scheduling %s at %v: %w", ev.Kind, ev.At.D(), err)
		}
	}
	return inj, nil
}

// Stats returns the applied-fault counters. Safe on a nil injector (runs
// without chaos report zeros).
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}

// Downed returns how many nodes this injector currently holds down.
func (inj *Injector) Downed() int {
	if inj == nil {
		return 0
	}
	n := 0
	for _, c := range inj.downed {
		if c > 0 {
			n++
		}
	}
	return n
}

// SetObserver registers a callback fired after every applied fault action
// — each schedule event, each churn crash, and each delayed recovery. The
// conformance harness hooks it to check invariants at exactly the moments
// the world changes underneath the system.
func (inj *Injector) SetObserver(fn func(kind EventKind)) {
	if inj != nil {
		inj.observer = fn
	}
}

func (inj *Injector) notify(kind EventKind) {
	if inj.observer != nil {
		inj.observer(kind)
	}
}

func (inj *Injector) apply(ev Event) {
	switch ev.Kind {
	case Crash:
		id := inj.sensor(ev.Node)
		if id != world.NoNode {
			inj.down(id)
			inj.delayedRecovery([]world.NodeID{id}, ev.Duration)
		}
	case Recover:
		if id := inj.sensor(ev.Node); id != world.NoNode {
			inj.up(id)
		}
	case ActuatorKill:
		id := inj.actuator(ev.Node)
		if id != world.NoNode {
			inj.down(id)
			inj.stats.ActuatorKills++
			inj.delayedRecovery([]world.NodeID{id}, ev.Duration)
		}
	case Blackout:
		center := geo.Point{X: ev.X, Y: ev.Y}
		var hit []world.NodeID
		for _, n := range inj.w.Nodes() {
			if inj.w.Position(n.ID).Dist(center) <= ev.Radius {
				hit = append(hit, n.ID)
				inj.down(n.ID)
			}
		}
		inj.stats.BlackoutNodes += len(hit)
		inj.delayedRecovery(hit, ev.Duration)
	case Churn:
		inj.churnArrival(ev, inj.w.Now()+ev.Duration.D())
	case Brownout:
		center := geo.Point{X: ev.X, Y: ev.Y}
		for _, id := range inj.sensors {
			if ev.Radius > 0 && inj.w.Position(id).Dist(center) > ev.Radius {
				continue
			}
			inj.stats.DrainedJoules += inj.w.DrainBattery(id, ev.Fraction)
		}
		inj.stats.Brownouts++
	case LinkLoss:
		inj.w.SetLinkLoss(ev.Probability)
		inj.stats.LossWindows++
		if ev.Duration > 0 {
			inj.mustAfter(ev.Duration.D(), func() {
				inj.w.SetLinkLoss(0)
				inj.notify(LinkLoss)
			})
		}
	}
	inj.stats.Events++
	inj.notify(ev.Kind)
}

// churnArrival crashes one Poisson-drawn victim and schedules the next
// arrival; arrivals past the window end stop the burst. The victim draw
// always consumes exactly one rng value, hit or miss, so the stream stays
// aligned regardless of which nodes happen to be down.
func (inj *Injector) churnArrival(ev Event, windowEnd time.Duration) {
	gap := time.Duration(inj.rng.ExpFloat64() / ev.Rate * float64(time.Second))
	next := inj.w.Now() + gap
	if next > windowEnd || len(inj.sensors) == 0 {
		return
	}
	inj.mustAfter(gap, func() {
		victim := inj.sensors[inj.rng.Intn(len(inj.sensors))]
		if inj.downed[victim] == 0 && inj.w.Node(victim).Alive() {
			inj.down(victim)
			inj.stats.ChurnCrashes++
			inj.delayedRecovery([]world.NodeID{victim}, ev.Downtime)
			inj.notify(Churn)
		}
		inj.churnArrival(ev, windowEnd)
	})
}

// down fails a node on its first covering fault source.
func (inj *Injector) down(id world.NodeID) {
	inj.downed[id]++
	if inj.downed[id] == 1 {
		inj.w.SetFailed(id, true)
		inj.stats.Crashes++
	}
}

// up clears one fault source; the node recovers when the last one clears.
func (inj *Injector) up(id world.NodeID) {
	if inj.downed[id] == 0 {
		return
	}
	inj.downed[id]--
	if inj.downed[id] == 0 {
		inj.w.SetFailed(id, false)
		inj.stats.Recoveries++
	}
}

// delayedRecovery schedules the group's recovery after d; zero means the
// fault is permanent.
func (inj *Injector) delayedRecovery(ids []world.NodeID, d Duration) {
	if d <= 0 || len(ids) == 0 {
		return
	}
	inj.mustAfter(d.D(), func() {
		for _, id := range ids {
			inj.up(id)
		}
		inj.notify(Recover)
	})
}

// mustAfter schedules on the world's queue, untagged — chaos follow-ups
// (recoveries, brownout releases) mutate global state, so they drain
// serially. A failure here is a programming error (negative delays are
// coerced by the scheduler).
func (inj *Injector) mustAfter(d time.Duration, fn func()) {
	if _, err := inj.w.Sched.After(d, fn); err != nil {
		panic(err)
	}
}

// sensor resolves a schedule's sensor index (modulo the population).
func (inj *Injector) sensor(i int) world.NodeID {
	if len(inj.sensors) == 0 {
		return world.NoNode
	}
	return inj.sensors[((i%len(inj.sensors))+len(inj.sensors))%len(inj.sensors)]
}

// actuator resolves a schedule's actuator index (modulo the population).
func (inj *Injector) actuator(i int) world.NodeID {
	if len(inj.actuators) == 0 {
		return world.NoNode
	}
	return inj.actuators[((i%len(inj.actuators))+len(inj.actuators))%len(inj.actuators)]
}
