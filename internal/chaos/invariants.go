package chaos

import (
	"fmt"
	"math"
	"time"

	"refer/internal/energy"
	"refer/internal/world"
)

// Checker is the structural self-audit every evaluated system exposes:
// CheckInvariants returns the first violated invariant, or nil. REFER,
// DaTree, D-DEAR, and the Kautz overlay all implement it.
type Checker interface {
	CheckInvariants() error
}

// Violation is one failed invariant check: when it fired, which probe
// phase triggered it (a fault kind, or "final"), and the error.
type Violation struct {
	At    time.Duration
	Phase string
	Err   error
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %v", v.At, v.Phase, v.Err)
}

// Harness runs the conformance invariants against one system on one world.
// Hook it to an Injector with Observe so the checks fire after every fault
// action, then call Final once the run has quiesced.
//
// The harness's checks are pure reads: they never query the world's
// neighbor caches or draw randomness, so an instrumented run replays
// byte-identically to an uninstrumented one.
type Harness struct {
	w          *world.World
	sys        Checker
	violations []Violation
}

// NewHarness creates a harness for sys running on w. sys may be nil to
// check only the simulator-wide invariants.
func NewHarness(w *world.World, sys Checker) *Harness {
	return &Harness{w: w, sys: sys}
}

// Observe hooks the harness to an injector: every applied fault action
// triggers a mid-run Check.
func (h *Harness) Observe(inj *Injector) {
	inj.SetObserver(func(kind EventKind) { h.Check(string(kind)) })
}

// ProbeAfter runs the mid-run invariants after a named non-fault event —
// a recovery action, a maintenance round, any moment a subsystem mutated
// the structures the invariants govern. It is Check under a caller-chosen
// phase label ("recovery:reelect", …), so the violation log reads as a
// timeline of *which* mutation broke the structure, not just when.
// Like every harness check it is a pure read: probing never perturbs a
// replay.
func (h *Harness) ProbeAfter(event string) { h.Check(event) }

// Check runs the mid-run invariants and records any violations under the
// given phase label:
//
//   - exact energy accounting: per meter, spent == construction + comm +
//     drained and — for distance-independent cost models —
//     construction + comm + clipped == tx·TxCost + rx·RxCost (no phantom
//     energy, no unmetered drain), a constrained battery is never
//     overdrawn net of harvesting income, harvesting never exceeds what
//     was consumed, and a depleted node is never alive;
//   - the drain ledgers reconcile globally against the world's counter;
//   - packet conservation (when a trace recorder is attached): delivered +
//     dropped never exceeds injected — mid-run the difference is the
//     in-flight population.
//   - the system's own structural invariants (Checker).
func (h *Harness) Check(phase string) {
	h.report(phase, h.checkEnergy())
	h.report(phase, h.checkConservation(false))
	if h.sys != nil {
		h.report(phase, h.sys.CheckInvariants())
	}
}

// Final runs the end-of-run invariants — everything Check covers, plus
// liveness: with the run quiesced there is no in-flight population left,
// so packet conservation must hold with equality (every injected packet
// resolved exactly once). It returns all recorded violations.
func (h *Harness) Final() []Violation {
	h.report("final", h.checkEnergy())
	h.report("final", h.checkConservation(true))
	if h.sys != nil {
		h.report("final", h.sys.CheckInvariants())
	}
	return h.violations
}

// Violations returns everything recorded so far.
func (h *Harness) Violations() []Violation { return h.violations }

func (h *Harness) report(phase string, err error) {
	if err != nil {
		h.violations = append(h.violations, Violation{At: h.w.Now(), Phase: phase, Err: err})
	}
}

// energyEps returns the float tolerance for reconciling sums accumulated
// in different orders: relative to the magnitude, floored for near-zero
// ledgers.
func energyEps(magnitude float64) float64 {
	return 1e-6 * math.Max(1, magnitude)
}

func (h *Harness) checkEnergy() error {
	cfg := h.w.Config()
	// Packet-count repricing is only exact for distance-independent models;
	// for distance-dependent ones (the first-order radio model) the
	// per-packet price varies per link and the check does not apply.
	var flatTx, flatRx float64
	flat := false
	if fm, ok := cfg.Energy.(energy.FlatModel); ok {
		flatTx, flatRx, flat = fm.FlatCosts(cfg.PacketBits)
	}
	var totalDrained, totalHarvested float64
	for _, n := range h.w.Nodes() {
		m := n.Meter
		spent, constr, comm, drained := m.Spent(), m.SpentOn(energy.Construction), m.SpentOn(energy.Communication), m.Drained()
		harvested := m.Harvested()
		totalDrained += drained
		totalHarvested += harvested
		if diff := spent - (constr + comm + drained); math.Abs(diff) > energyEps(spent) {
			return fmt.Errorf("chaos: node %d: phantom energy: spent %.6f J but ledgers sum to %.6f J",
				n.ID, spent, constr+comm+drained)
		}
		if flat {
			tx, rx := m.Packets()
			radio := float64(tx)*flatTx + float64(rx)*flatRx
			if diff := (constr + comm + m.Clipped()) - radio; math.Abs(diff) > energyEps(radio) {
				return fmt.Errorf("chaos: node %d: ledgers hold %.6f J (+%.6f J clipped) but %d tx + %d rx cost %.6f J",
					n.ID, constr+comm, m.Clipped(), tx, rx, radio)
			}
		}
		if m.Budget() > 0 && spent-harvested > m.Budget()+energyEps(m.Budget()) {
			return fmt.Errorf("chaos: node %d: overdrawn battery: spent %.6f J net of %.6f J harvested, budget %.6f J",
				n.ID, spent, harvested, m.Budget())
		}
		if harvested > spent+energyEps(spent) {
			return fmt.Errorf("chaos: node %d: harvested %.6f J above battery capacity (spent %.6f J)",
				n.ID, harvested, spent)
		}
		if m.Depleted() && n.Alive() {
			return fmt.Errorf("chaos: node %d is alive with a depleted battery", n.ID)
		}
	}
	if counted := h.w.Stats().EnergyDrained; math.Abs(totalDrained-counted) > energyEps(counted) {
		return fmt.Errorf("chaos: meters drained %.6f J but the world counted %.6f J", totalDrained, counted)
	}
	if counted := h.w.Stats().EnergyHarvested; math.Abs(totalHarvested-counted) > energyEps(counted) {
		return fmt.Errorf("chaos: meters harvested %.6f J but the world counted %.6f J", totalHarvested, counted)
	}
	return nil
}

func (h *Harness) checkConservation(final bool) error {
	rec := h.w.Tracer()
	if rec == nil {
		return nil
	}
	c := rec.Counts()
	resolved := c.Delivered + c.Dropped
	if resolved > c.Injected {
		return fmt.Errorf("chaos: packet conservation: %d delivered + %d dropped exceeds %d injected",
			c.Delivered, c.Dropped, c.Injected)
	}
	if final && resolved != c.Injected {
		return fmt.Errorf("chaos: liveness: %d of %d injected packets never resolved",
			c.Injected-resolved, c.Injected)
	}
	return nil
}
