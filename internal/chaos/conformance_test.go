// Conformance suite: every evaluated system is run under every fault
// campaign with the invariant harness attached, checking after each fault
// action and at run end. The test lives in package chaos_test so it can
// build systems through the experiment registry without an import cycle
// (experiment imports chaos for the RunConfig knob).
package chaos_test

import (
	"sort"
	"testing"
	"time"

	"refer/internal/chaos"
	"refer/internal/experiment"
	"refer/internal/recovery"
	"refer/internal/scenario"
	"refer/internal/trace"
)

// Conformance run windows: traffic stops well before the run end so every
// injected packet resolves (retransmit budgets bound packet lifetimes) and
// the final liveness equality is meaningful.
const (
	confTrafficEnd = 150 * time.Second
	confRunEnd     = 220 * time.Second
)

// conformanceSchedules returns the fault campaigns of the matrix. All
// events complete (including delayed recoveries) before confRunEnd.
func conformanceSchedules() map[string]*chaos.Schedule {
	sec := func(s int) chaos.Duration { return chaos.Duration(time.Duration(s) * time.Second) }
	return map[string]*chaos.Schedule{
		// Sustained random churn with a lossy-link window on top.
		"churn": {
			Seed: 1001,
			Events: []chaos.Event{
				{Kind: chaos.Churn, At: sec(20), Rate: 0.3, Duration: sec(100), Downtime: sec(15)},
				{Kind: chaos.LinkLoss, At: sec(60), Probability: 0.15, Duration: sec(40)},
			},
		},
		// Correlated regional failures plus an energy brownout.
		"blackout": {
			Seed: 1002,
			Events: []chaos.Event{
				{Kind: chaos.Blackout, At: sec(40), X: 250, Y: 250, Radius: 120, Duration: sec(30)},
				{Kind: chaos.Brownout, At: sec(80), Fraction: 0.3},
				{Kind: chaos.Blackout, At: sec(90), X: 150, Y: 350, Radius: 100, Duration: sec(30)},
			},
		},
		// Targeted kills: an actuator outage, a permanent sensor crash
		// later recovered by hand, and a transient crash.
		"kill": {
			Seed: 1003,
			Events: []chaos.Event{
				{Kind: chaos.Crash, At: sec(20), Node: 5},
				{Kind: chaos.Crash, At: sec(25), Node: 9, Duration: sec(50)},
				{Kind: chaos.ActuatorKill, At: sec(30), Node: 1, Duration: sec(60)},
				{Kind: chaos.LinkLoss, At: sec(100), Probability: 0.05, Duration: sec(30)},
				{Kind: chaos.Recover, At: sec(120), Node: 5},
			},
		},
	}
}

// TestConformance is the matrix: four systems × three fault campaigns,
// zero invariant violations each. Run under -race in CI.
func TestConformance(t *testing.T) {
	schedules := conformanceSchedules()
	names := make([]string, 0, len(schedules))
	for name := range schedules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, sysName := range experiment.AllSystems() {
		for _, schedName := range names {
			sysName, sched := sysName, schedules[schedName]
			t.Run(sysName+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				runConformance(t, sysName, sched)
			})
		}
	}
}

func runConformance(t *testing.T, sysName string, sched *chaos.Schedule) {
	t.Helper()
	// Constrained batteries so brownouts and depletion paths are real, and
	// borrow checks on so any system caught retaining a cache-owned
	// neighbor slice panics inside the run.
	w := scenario.Build(scenario.Params{Seed: 11, Sensors: 150, MaxSpeed: 1.5, SensorBattery: 10000})
	w.EnableBorrowChecks()
	rec := trace.NewRecorder(64)
	w.SetTracer(rec)

	sys, err := experiment.NewSystem(sysName, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	checker, ok := sys.(chaos.Checker)
	if !ok {
		t.Fatalf("%s does not implement chaos.Checker", sysName)
	}

	inj, err := chaos.Attach(w, sched)
	if err != nil {
		t.Fatal(err)
	}
	h := chaos.NewHarness(w, checker)
	h.Observe(inj)

	// The paper's traffic shape: periodic bursts from random alive sensors.
	sensors := scenario.SensorIDs(w)
	var burst func()
	burst = func() {
		if w.Now() > confTrafficEnd {
			return
		}
		for i := 0; i < 5; i++ {
			src := sensors[w.Rand().Intn(len(sensors))]
			if !w.Node(src).Alive() {
				continue
			}
			sys.Inject(src, nil)
		}
		if _, err := w.Sched.After(10*time.Second, burst); err != nil {
			panic(err)
		}
	}
	if _, err := w.Sched.After(10*time.Second, burst); err != nil {
		t.Fatal(err)
	}

	w.Sched.RunUntil(confRunEnd)

	if violations := h.Final(); len(violations) != 0 {
		for i, v := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("violation: %v", v)
		}
		t.FailNow()
	}
	if c := rec.Counts(); c.Injected == 0 {
		t.Fatal("degenerate run: no packets injected")
	}
	if st := inj.Stats(); st.Crashes == 0 || st.Recoveries == 0 {
		t.Fatalf("degenerate campaign: %+v", st)
	}
}

// recoverySchedules returns the recovery-enabled fault campaigns: sustained
// churn plus *permanent* actuator kills — the structural damage only the
// recovery protocols can repair. All transient events complete before
// confRunEnd; the kills never do, which is the point.
func recoverySchedules() map[string]*chaos.Schedule {
	sec := func(s int) chaos.Duration { return chaos.Duration(time.Duration(s) * time.Second) }
	return map[string]*chaos.Schedule{
		// Staggered kills under churn: each kill should resolve by corner
		// re-election while surviving actuators are in range.
		"kill-churn": {
			Seed: 2001,
			Events: []chaos.Event{
				{Kind: chaos.Churn, At: sec(20), Rate: 0.3, Duration: sec(100), Downtime: sec(15)},
				{Kind: chaos.ActuatorKill, At: sec(30), Node: 1},
				{Kind: chaos.ActuatorKill, At: sec(50), Node: 3},
				{Kind: chaos.ActuatorKill, At: sec(70), Node: 5},
			},
		},
		// Concentrated kills: enough dead corners that some cell finds no
		// eligible successor and must merge into a neighbor (CAN takeover).
		"kill-merge": {
			Seed: 2002,
			Events: []chaos.Event{
				{Kind: chaos.ActuatorKill, At: sec(30), Node: 1},
				{Kind: chaos.ActuatorKill, At: sec(35), Node: 2},
				{Kind: chaos.ActuatorKill, At: sec(40), Node: 4},
				{Kind: chaos.ActuatorKill, At: sec(45), Node: 5},
				{Kind: chaos.Churn, At: sec(60), Rate: 0.2, Duration: sec(60), Downtime: sec(15)},
			},
		},
	}
}

// TestConformanceRecovery grows the matrix with the recovery campaigns:
// every evaluated system runs each campaign on the lattice deployment, and
// systems implementing the recovery protocols (REFER) additionally run them
// with a recovery manager attached, the harness probing CheckInvariants
// after every individual recovery action. Run under -race in CI.
func TestConformanceRecovery(t *testing.T) {
	schedules := recoverySchedules()
	names := make([]string, 0, len(schedules))
	for name := range schedules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, sysName := range experiment.AllSystems() {
		for _, schedName := range names {
			sysName, sched := sysName, schedules[schedName]
			wantMerge := schedName == "kill-merge"
			t.Run(sysName+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				runRecoveryConformance(t, sysName, sched, wantMerge)
			})
		}
	}
}

func runRecoveryConformance(t *testing.T, sysName string, sched *chaos.Schedule, wantMerge bool) {
	t.Helper()
	// The 3×3 actuator lattice gives the kills surviving peers to promote
	// and neighbor cells to merge into; 400 sensors keep per-cell density at
	// paper level on the larger field.
	w := scenario.Build(scenario.Params{
		Seed: 11, Sensors: 400, MaxSpeed: 1.5, SensorBattery: 10000, ActuatorGrid: 3,
	})
	w.EnableBorrowChecks()
	rec := trace.NewRecorder(64)
	w.SetTracer(rec)

	sys, err := experiment.NewSystem(sysName, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	checker, ok := sys.(chaos.Checker)
	if !ok {
		t.Fatalf("%s does not implement chaos.Checker", sysName)
	}

	inj, err := chaos.Attach(w, sched)
	if err != nil {
		t.Fatal(err)
	}
	h := chaos.NewHarness(w, checker)
	h.Observe(inj)

	// Systems that implement the repair protocols get a recovery manager;
	// the observer probes the full invariant set after every individual
	// recovery action — not just after injected faults.
	var mgr *recovery.Manager
	if rep, ok := sys.(recovery.Repairer); ok {
		mgr, err = recovery.Attach(w, rep, recovery.Spec{Enabled: true})
		if err != nil {
			t.Fatal(err)
		}
		mgr.SetObserver(func(a recovery.Action) {
			h.ProbeAfter("recovery:" + string(a.Kind))
		})
	}

	sensors := scenario.SensorIDs(w)
	var burst func()
	burst = func() {
		if w.Now() > confTrafficEnd {
			return
		}
		for i := 0; i < 5; i++ {
			src := sensors[w.Rand().Intn(len(sensors))]
			if !w.Node(src).Alive() {
				continue
			}
			sys.Inject(src, nil)
		}
		if _, err := w.Sched.After(10*time.Second, burst); err != nil {
			panic(err)
		}
	}
	if _, err := w.Sched.After(10*time.Second, burst); err != nil {
		t.Fatal(err)
	}

	w.Sched.RunUntil(confRunEnd)

	if violations := h.Final(); len(violations) != 0 {
		for i, v := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("violation: %v", v)
		}
		t.FailNow()
	}
	if c := rec.Counts(); c.Injected == 0 {
		t.Fatal("degenerate run: no packets injected")
	}
	if st := inj.Stats(); st.ActuatorKills == 0 {
		t.Fatalf("degenerate campaign: %+v", st)
	}
	if mgr != nil {
		st := mgr.Stats()
		if st.Repairs() == 0 {
			t.Fatalf("recovery manager attached but no repairs fired: %+v", st)
		}
		if wantMerge && (st.Merges == 0 || st.Takeovers == 0) {
			t.Fatalf("concentrated-kill campaign never exercised merge/takeover: %+v", st)
		}
	}
}
