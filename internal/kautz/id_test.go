package kautz

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseID(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		wantErr bool
	}{
		{name: "paper example", in: "201", wantErr: false},
		{name: "single digit", in: "7", wantErr: false},
		{name: "figure 2 node", in: "0123", wantErr: false},
		{name: "empty", in: "", wantErr: true},
		{name: "adjacent repeat", in: "1223", wantErr: true},
		{name: "leading repeat", in: "001", wantErr: true},
		{name: "non digit", in: "12a", wantErr: true},
		{name: "unicode", in: "1²3", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseID(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseID(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && string(got) != tt.in {
				t.Fatalf("ParseID(%q) = %q", tt.in, got)
			}
		})
	}
}

func TestMakeID(t *testing.T) {
	tests := []struct {
		name    string
		digits  []int
		want    ID
		wantErr bool
	}{
		{name: "ok", digits: []int{2, 0, 1}, want: "201"},
		{name: "empty", digits: nil, wantErr: true},
		{name: "repeat", digits: []int{1, 1, 2}, wantErr: true},
		{name: "negative", digits: []int{-1, 0}, wantErr: true},
		{name: "too large", digits: []int{10, 0}, wantErr: true},
		{name: "max degree digit", digits: []int{9, 0, 9}, want: "909"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MakeID(tt.digits...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("MakeID(%v) error = %v, wantErr %v", tt.digits, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Fatalf("MakeID(%v) = %q, want %q", tt.digits, got, tt.want)
			}
		})
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustID(1,1) did not panic")
		}
	}()
	MustID(1, 1)
}

func TestIDAccessors(t *testing.T) {
	id := MustID(2, 0, 1)
	if got := id.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if got := id.First(); got != 2 {
		t.Errorf("First() = %d, want 2", got)
	}
	if got := id.Last(); got != 1 {
		t.Errorf("Last() = %d, want 1", got)
	}
	for i, want := range []int{2, 0, 1} {
		if got := id.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
	if got := id.String(); got != "201" {
		t.Errorf("String() = %q, want 201", got)
	}
}

func TestIDValid(t *testing.T) {
	tests := []struct {
		name string
		id   ID
		d, k int
		want bool
	}{
		{name: "K(2,3) member", id: "201", d: 2, k: 3, want: true},
		{name: "digit above d", id: "301", d: 2, k: 3, want: false},
		{name: "wrong length", id: "20", d: 2, k: 3, want: false},
		{name: "adjacent repeat", id: "200", d: 2, k: 3, want: false},
		{name: "empty", id: "", d: 2, k: 3, want: false},
		{name: "K(4,4) member", id: "0123", d: 4, k: 4, want: true},
		{name: "garbage bytes", id: ID("2\x001"), d: 2, k: 3, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.Valid(tt.d, tt.k); got != tt.want {
				t.Fatalf("%q.Valid(%d,%d) = %v, want %v", tt.id, tt.d, tt.k, got, tt.want)
			}
		})
	}
}

func TestShift(t *testing.T) {
	id := MustID(0, 1, 2, 3)
	got, err := id.Shift(0)
	if err != nil {
		t.Fatalf("Shift(0): %v", err)
	}
	if got != "1230" {
		t.Fatalf("Shift(0) = %q, want 1230", got)
	}
	if _, err := id.Shift(3); err == nil {
		t.Fatal("Shift(last digit) should fail")
	}
	if _, err := id.Shift(-1); err == nil {
		t.Fatal("Shift(-1) should fail")
	}
	if _, err := id.Shift(10); err == nil {
		t.Fatal("Shift(10) should fail")
	}
}

func TestIsSuccessor(t *testing.T) {
	tests := []struct {
		u, v ID
		want bool
	}{
		{"0123", "1230", true},
		{"0123", "1234", true},
		{"0123", "1233", false}, // not even a valid ID
		{"0123", "2301", false},
		{"012", "1230", false}, // length mismatch
		{"", "", false},
		{"01", "12", true},
		{"01", "10", true},
	}
	for _, tt := range tests {
		if got := IsSuccessor(tt.u, tt.v); got != tt.want {
			t.Errorf("IsSuccessor(%q, %q) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestOverlapAndDistance(t *testing.T) {
	tests := []struct {
		u, v    ID
		overlap int
	}{
		{"0123", "2301", 2}, // Figure 2(a): shares "23"
		{"120", "201", 2},   // paper Section III-B: distance 1
		{"0123", "0123", 4},
		{"0123", "1230", 3},
		{"0123", "4321", 0},
		{"012", "120", 2},
		{"201", "012", 2},
		{"210", "102", 2},
	}
	for _, tt := range tests {
		if got := Overlap(tt.u, tt.v); got != tt.overlap {
			t.Errorf("Overlap(%q, %q) = %d, want %d", tt.u, tt.v, got, tt.overlap)
		}
		want := len(tt.u) - tt.overlap
		if got := Distance(tt.u, tt.v); got != want {
			t.Errorf("Distance(%q, %q) = %d, want %d", tt.u, tt.v, got, want)
		}
	}
}

func TestOverlapLengthMismatch(t *testing.T) {
	if got := Overlap("012", "0123"); got != 0 {
		t.Fatalf("Overlap on length mismatch = %d, want 0", got)
	}
}

// randomKautzID derives a valid Kautz ID for K(d, k) from arbitrary fuzz
// bytes, so quick.Check can drive property tests.
func randomKautzID(d, k int, seed []byte) ID {
	digits := make([]int, k)
	prev := -1
	for i := 0; i < k; i++ {
		var b byte
		if len(seed) > 0 {
			b = seed[i%len(seed)] + byte(i*7)
		} else {
			b = byte(i * 13)
		}
		v := int(b) % (d + 1)
		if v == prev {
			v = (v + 1) % (d + 1)
		}
		digits[i] = v
		prev = v
	}
	return MustID(digits...)
}

func TestQuickShiftPreservesValidity(t *testing.T) {
	f := func(seed []byte, x uint8) bool {
		const d, k = 4, 5
		u := randomKautzID(d, k, seed)
		digit := int(x) % (d + 1)
		if digit == u.Last() {
			digit = (digit + 1) % (d + 1)
		}
		v, err := u.Shift(digit)
		if err != nil {
			return false
		}
		return v.Valid(d, k) && IsSuccessor(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapDefinition(t *testing.T) {
	// Overlap must return the length of the LONGEST suffix of u that
	// prefixes v; verify against a naive re-computation.
	naive := func(u, v ID) int {
		for l := len(u); l > 0; l-- {
			if strings.HasPrefix(string(v), string(u[len(u)-l:])) {
				return l
			}
		}
		return 0
	}
	f := func(s1, s2 []byte) bool {
		const d, k = 3, 4
		u := randomKautzID(d, k, s1)
		v := randomKautzID(d, k, s2)
		return Overlap(u, v) == naive(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
