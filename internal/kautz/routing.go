package kautz

import (
	"fmt"
	"sort"
)

// PathClass classifies one of the d disjoint U-V paths of Theorem 3.8 by the
// role of its out-digit α (the last digit of U's successor on the path).
type PathClass int

const (
	// ClassShortest is the unique greedy shortest path (α = v_{l+1}),
	// nominal length k−l.
	ClassShortest PathClass = iota + 1
	// ClassConflict is the path through the conflict node (α = u_{k−l},
	// only when u_{k−l} ≠ v_{l+1}); the conflict node must divert to
	// in-digit v_{l+1} (Prop. 3.7), nominal length k+2.
	ClassConflict
	// ClassViaV1 is the path whose out-digit is v1 (when it is neither the
	// shortest nor the conflict out-digit), nominal length k.
	ClassViaV1
	// ClassDetour covers every remaining out-digit, nominal length k+1.
	ClassDetour
)

// String implements fmt.Stringer.
func (c PathClass) String() string {
	switch c {
	case ClassShortest:
		return "shortest"
	case ClassConflict:
		return "conflict"
	case ClassViaV1:
		return "via-v1"
	case ClassDetour:
		return "detour"
	default:
		return fmt.Sprintf("PathClass(%d)", int(c))
	}
}

// Route describes one of the d disjoint U→V paths computable from the two
// IDs alone (Theorem 3.8).
type Route struct {
	// Successor is U's next hop on this path.
	Successor ID
	// OutDigit is α, the digit appended to form Successor.
	OutDigit int
	// Class tells which clause of Theorem 3.8 produced the route.
	Class PathClass
	// NominalLen is the path length stated by Theorem 3.8:
	// k−l, k, k+1 or k+2 depending on Class.
	NominalLen int
	// Path is the concrete node sequence from U to V inclusive: the sliding
	// window walk over the route's script string (suffix of U, out-digit,
	// in-digit, digits of V), truncated at the first window equal to V.
	// Its true length is len(Path)−1, which can undercut NominalLen when
	// digit coincidences make V appear early in the script.
	Path []ID
}

// Len returns the number of hops of the concrete path.
func (r Route) Len() int { return len(r.Path) - 1 }

// GreedyNext returns U's successor on the unique shortest path to V under
// the greedy shortest protocol: shift left and append v_{l+1} where
// l = L(U, V). It returns an error when u == v.
func GreedyNext(u, v ID) (ID, error) {
	if u == v {
		return "", fmt.Errorf("kautz: GreedyNext(%s, %s): source equals destination", u, v)
	}
	if len(u) != len(v) {
		return "", fmt.Errorf("kautz: GreedyNext: length mismatch %q vs %q", u, v)
	}
	l := Overlap(u, v)
	return u.Shift(v.At(l))
}

// ShortestPath returns the unique greedy shortest path from u to v,
// inclusive of both endpoints. Its length is Distance(u, v).
func ShortestPath(u, v ID) ([]ID, error) {
	if len(u) != len(v) {
		return nil, fmt.Errorf("kautz: ShortestPath: length mismatch %q vs %q", u, v)
	}
	path := []ID{u}
	cur := u
	for cur != v {
		next, err := GreedyNext(cur, v)
		if err != nil {
			return nil, err
		}
		path = append(path, next)
		cur = next
		if len(path) > len(u)+2 {
			return nil, fmt.Errorf("kautz: ShortestPath(%s, %s): no convergence", u, v)
		}
	}
	return path, nil
}

// Routes computes, purely from the IDs, the d disjoint U→V routes of
// Theorem 3.8 for a Kautz graph of degree d, sorted by concrete path length
// (shortest first; ties broken by out-digit). u and v must be distinct nodes
// of the same length with digits within [0, d].
//
// This is the heart of REFER's fault-tolerant routing: a relay node that
// sees its preferred successor fail ranks the remaining routes by length and
// retries, with no route discovery, flooding or per-destination state.
func Routes(d int, u, v ID) ([]Route, error) {
	if u == v {
		return nil, fmt.Errorf("kautz: Routes(%s, %s): source equals destination", u, v)
	}
	if len(u) != len(v) {
		return nil, fmt.Errorf("kautz: Routes: length mismatch %q vs %q", u, v)
	}
	if !u.Valid(d, len(u)) || !v.Valid(d, len(v)) {
		return nil, fmt.Errorf("kautz: Routes: %q or %q not valid for degree %d", u, v, d)
	}
	k := len(u)
	l := Overlap(u, v)
	vl1 := v.At(l) // v_{l+1} in the paper's 1-based notation
	ukl := -1      // u_{k−l}; undefined (never matches) when l == 0
	if l > 0 {
		ukl = u.At(k - l - 1)
	}
	routes := make([]Route, 0, d)
	for alpha := 0; alpha <= d; alpha++ {
		if alpha == u.Last() {
			continue
		}
		succ := u.MustShift(alpha)
		var (
			class   PathClass
			nominal int
			script  string
		)
		// Each path is the sliding window walk over a "script" string whose
		// tail fixes the path's in-digit (the first digit of V's
		// predecessor, Prop. 3.3). The assignment below keeps all d
		// in-digits pairwise distinct in every corner case, which by
		// Props. 3.4–3.5 keeps the paths internally disjoint; two cases the
		// paper's analysis misses get explicitly reassigned in-digits (see
		// DESIGN.md).
		switch {
		case alpha == vl1:
			// Shortest path: overlap the script, in-digit u_{k−l}.
			class, nominal = ClassShortest, k-l
			script = string(u) + string(v[l:])
		case alpha == ukl: // implies alpha != vl1 by the previous case
			// Conflict node (Def. 4): divert per Prop. 3.7 to in-digit
			// v_{l+1} — unless v_{l+1} == v1 makes that in-digit illegal
			// (missed by the paper); then take the free in-digit u_k.
			class, nominal = ClassConflict, k+2
			if v[l] == v[0] {
				script = string(u) + string(u[k-l-1]) + string(u[k-1]) + string(v)
			} else {
				script = string(u) + string(u[k-l-1]) + string(v[l]) + string(v)
			}
		case alpha == v.First():
			class, nominal = ClassViaV1, k
			if ukl == u.Last() {
				// Second corner case the paper misses: u_{k−l} == u_k makes
				// the via-v1 path's natural in-digit u_k collide with the
				// shortest path's in-digit u_{k−l}. The conflict out-digit
				// is unavailable then (it equals the forbidden u_k), so the
				// in-digit v_{l+1} is free; divert to it.
				nominal = k + 2
				script = string(u) + string(v[0]) + string(v[l]) + string(v)
			} else {
				// Natural via-v1 path: windows of U·V, in-digit u_k.
				script = string(u) + string(v)
			}
		default:
			class, nominal = ClassDetour, k+1
			script = string(u) + string(byte('0'+alpha)) + string(v)
		}
		path, err := windowWalk(script, k, v)
		if err != nil {
			return nil, fmt.Errorf("kautz: route %s→%s via %s: %w", u, v, succ, err)
		}
		routes = append(routes, Route{
			Successor:  succ,
			OutDigit:   alpha,
			Class:      class,
			NominalLen: nominal,
			Path:       path,
		})
	}
	sort.SliceStable(routes, func(i, j int) bool {
		li, lj := routes[i].Len(), routes[j].Len()
		if li != lj {
			return li < lj
		}
		return routes[i].OutDigit < routes[j].OutDigit
	})
	return routes, nil
}

// windowWalk converts a script string into its length-k sliding-window node
// sequence, truncating at the first window equal to v (windows after the
// destination is reached would be wasted hops). It rejects scripts whose
// windows are not valid Kautz IDs or that never reach v.
func windowWalk(script string, k int, v ID) ([]ID, error) {
	for i := 1; i < len(script); i++ {
		if script[i] == script[i-1] {
			return nil, fmt.Errorf("script %q has adjacent repeat at %d", script, i)
		}
	}
	n := len(script) - k + 1
	if n < 1 {
		return nil, fmt.Errorf("script %q shorter than window %d", script, k)
	}
	// Periodic scripts (e.g. …2121…) can make the raw window walk revisit a
	// node; loop-erase as we go so the result is a simple path. Erasing a
	// cycle only removes nodes, so cross-path disjointness is preserved.
	path := make([]ID, 0, n)
	at := make(map[ID]int, n)
	for i := 0; i < n; i++ {
		w := ID(script[i : i+k])
		if j, seen := at[w]; seen {
			for _, dropped := range path[j+1:] {
				delete(at, dropped)
			}
			path = path[:j+1]
		} else {
			at[w] = len(path)
			path = append(path, w)
		}
		if w == v && len(path) > 1 {
			return path, nil
		}
	}
	if path[len(path)-1] != v {
		return nil, fmt.Errorf("script %q does not end at %s", script, v)
	}
	return path, nil
}

// NextHops returns U's successors toward V ranked by the concrete length of
// the Theorem 3.8 route through each (shortest first). It is the lookup a
// REFER relay performs on every forwarding decision and failover.
func NextHops(d int, u, v ID) ([]ID, error) {
	routes, err := Routes(d, u, v)
	if err != nil {
		return nil, err
	}
	hops := make([]ID, len(routes))
	for i, r := range routes {
		hops[i] = r.Successor
	}
	return hops, nil
}

// InternallyDisjoint reports whether the given paths share no nodes other
// than their common first and last elements. Paths of length 1 (direct arcs)
// have no internal nodes.
func InternallyDisjoint(paths [][]ID) bool {
	seen := make(map[ID]struct{})
	for _, p := range paths {
		for _, node := range p[1 : len(p)-1] {
			if _, dup := seen[node]; dup {
				return false
			}
			seen[node] = struct{}{}
		}
	}
	return true
}

// ValidWalk reports whether path is a sequence of consecutive Kautz arcs.
func ValidWalk(path []ID) bool {
	for i := 0; i+1 < len(path); i++ {
		if !IsSuccessor(path[i], path[i+1]) {
			return false
		}
	}
	return true
}
