package kautz

import (
	"fmt"
	"sort"
)

// Graph is a fully enumerated Kautz digraph K(d, k). It is immutable after
// construction and safe for concurrent use.
type Graph struct {
	d     int
	k     int
	nodes []ID
	index map[ID]int
}

// New enumerates K(d, k). It returns an error for d < 1, k < 1, or
// d > MaxDegree.
func New(d, k int) (*Graph, error) {
	if d < 1 || d > MaxDegree {
		return nil, fmt.Errorf("kautz: degree d=%d out of range [1,%d]", d, MaxDegree)
	}
	if k < 1 {
		return nil, fmt.Errorf("kautz: diameter k=%d must be >= 1", k)
	}
	n := NumNodes(d, k)
	g := &Graph{
		d:     d,
		k:     k,
		nodes: make([]ID, 0, n),
		index: make(map[ID]int, n),
	}
	buf := make([]byte, k)
	g.enumerate(buf, 0)
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
	for i, id := range g.nodes {
		g.index[id] = i
	}
	return g, nil
}

func (g *Graph) enumerate(buf []byte, pos int) {
	if pos == g.k {
		id := ID(buf)
		g.nodes = append(g.nodes, ID(string(id))) // copy out of buf
		return
	}
	for v := 0; v <= g.d; v++ {
		c := byte('0' + v)
		if pos > 0 && buf[pos-1] == c {
			continue
		}
		buf[pos] = c
		g.enumerate(buf, pos+1)
	}
}

// NumNodes returns (d+1)·d^(k-1), the order of K(d, k).
func NumNodes(d, k int) int {
	n := d + 1
	for i := 1; i < k; i++ {
		n *= d
	}
	return n
}

// NumEdges returns (d+1)·d^k, the number of arcs of K(d, k).
func NumEdges(d, k int) int { return NumNodes(d, k) * d }

// MooreBound returns the directed Moore bound 1 + d + d² + … + d^k on the
// order of a digraph with maximum out-degree d and diameter k. K(d, k)
// approaches this bound as k decreases (Section III-B of the paper).
func MooreBound(d, k int) int {
	sum, pow := 1, 1
	for i := 1; i <= k; i++ {
		pow *= d
		sum += pow
	}
	return sum
}

// Degree returns d.
func (g *Graph) Degree() int { return g.d }

// Diameter returns k.
func (g *Graph) Diameter() int { return g.k }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// Nodes returns a copy of the node set in lexicographic order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Contains reports whether id is a node of the graph.
func (g *Graph) Contains(id ID) bool {
	_, ok := g.index[id]
	return ok
}

// Index returns the position of id in the sorted node list, or -1.
func (g *Graph) Index(id ID) int {
	i, ok := g.index[id]
	if !ok {
		return -1
	}
	return i
}

// Successors returns the d out-neighbors u2…uk x (x ≠ uk) of u, in
// increasing order of x.
func (g *Graph) Successors(u ID) []ID {
	out := make([]ID, 0, g.d)
	for x := 0; x <= g.d; x++ {
		if x == u.Last() {
			continue
		}
		out = append(out, u.MustShift(x))
	}
	return out
}

// Predecessors returns the d in-neighbors y u1…u(k-1) (y ≠ u1) of u, in
// increasing order of y.
func (g *Graph) Predecessors(u ID) []ID {
	out := make([]ID, 0, g.d)
	prefix := string(u[:len(u)-1])
	for y := 0; y <= g.d; y++ {
		if y == u.First() {
			continue
		}
		out = append(out, ID(fmt.Sprintf("%d%s", y, prefix)))
	}
	return out
}

// HasArc reports whether (u, v) is an arc of the graph.
func (g *Graph) HasArc(u, v ID) bool {
	return g.Contains(u) && g.Contains(v) && IsSuccessor(u, v)
}

// IsStronglyConnected reports whether every node can reach every other node
// following arc directions. Kautz graphs are strongly connected; the check
// exists so tests can verify the enumeration.
func (g *Graph) IsStronglyConnected() bool {
	if len(g.nodes) == 0 {
		return false
	}
	if !g.reachesAll(g.nodes[0], g.Successors) {
		return false
	}
	return g.reachesAll(g.nodes[0], g.Predecessors)
}

func (g *Graph) reachesAll(start ID, next func(ID) []ID) bool {
	seen := make(map[ID]bool, len(g.nodes))
	queue := []ID{start}
	seen[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range next(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// BFSDistance returns the true directed hop distance from u to v computed by
// breadth-first search, or -1 if unreachable. It is the ground truth the
// routing tests compare ID-based distances against.
func (g *Graph) BFSDistance(u, v ID) int {
	if !g.Contains(u) || !g.Contains(v) {
		return -1
	}
	if u == v {
		return 0
	}
	dist := map[ID]int{u: 0}
	queue := []ID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Successors(x) {
			if _, ok := dist[y]; ok {
				continue
			}
			dist[y] = dist[x] + 1
			if y == v {
				return dist[y]
			}
			queue = append(queue, y)
		}
	}
	return -1
}

// HamiltonianCycle returns a Hamiltonian cycle of K(d, k) as a sequence of
// all N nodes; the arc from the last element back to the first closes the
// cycle. It exploits the line-digraph property: K(d, k) is the line digraph
// of K(d, k-1), so an Eulerian circuit of K(d, k-1) visits every arc —
// i.e. every node of K(d, k) — exactly once. For k == 1, K(d, 1) is the
// complete digraph on d+1 vertices and the cycle is 0,1,…,d.
//
// The existence of this cycle is what lets REFER embed a Kautz graph into a
// physical topology that itself admits a Hamiltonian cycle (Prop. 3.2).
func (g *Graph) HamiltonianCycle() ([]ID, error) {
	if g.k == 1 {
		cycle := make([]ID, 0, g.d+1)
		for v := 0; v <= g.d; v++ {
			cycle = append(cycle, ID([]byte{byte('0' + v)}))
		}
		return cycle, nil
	}
	base, err := New(g.d, g.k-1)
	if err != nil {
		return nil, err
	}
	circuit := base.eulerianCircuit()
	if circuit == nil {
		return nil, fmt.Errorf("kautz: no Eulerian circuit in K(%d,%d)", g.d, g.k-1)
	}
	// Each consecutive pair (circuit[i], circuit[i+1]) is an arc of
	// K(d, k-1), i.e. a node of K(d, k): the (k-1)-string of circuit[i]
	// extended by the last digit of circuit[i+1].
	cycle := make([]ID, 0, g.N())
	for i := 0; i < len(circuit)-1; i++ {
		u := circuit[i]
		v := circuit[i+1]
		cycle = append(cycle, ID(string(u)+string(v[len(v)-1])))
	}
	return cycle, nil
}

// eulerianCircuit returns a closed walk using every arc exactly once
// (Hierholzer's algorithm). Kautz digraphs are Eulerian: in-degree equals
// out-degree at every vertex and the graph is strongly connected.
// The returned slice has NumEdges+1 elements, first == last.
func (g *Graph) eulerianCircuit() []ID {
	next := make(map[ID][]ID, g.N())
	for _, u := range g.nodes {
		next[u] = g.Successors(u)
	}
	var circuit []ID
	stack := []ID{g.nodes[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if outs := next[u]; len(outs) > 0 {
			v := outs[len(outs)-1]
			next[u] = outs[:len(outs)-1]
			stack = append(stack, v)
		} else {
			circuit = append(circuit, u)
			stack = stack[:len(stack)-1]
		}
	}
	// Hierholzer emits the circuit in reverse; reverse in place.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	if len(circuit) != NumEdges(g.d, g.k)+1 {
		return nil
	}
	return circuit
}

// MinVertexCut returns the minimum number of internal vertices whose removal
// disconnects u from v (u ≠ v, no arc check), computed by max-flow on the
// split-vertex graph. By Menger's theorem this equals the maximum number of
// internally vertex-disjoint u→v paths. Lemma 3.1 asserts this is d for any
// pair of distinct vertices of K(d, k).
func (g *Graph) MinVertexCut(u, v ID) int {
	if u == v || !g.Contains(u) || !g.Contains(v) {
		return -1
	}
	// Split each vertex w into w_in and w_out with a capacity-1 arc, except
	// the source u (use u_out only) and sink v (use v_in only). Original
	// arcs get infinite capacity. Run BFS-based augmenting paths (capacity
	// values are 0/1 on vertex arcs so Edmonds-Karp terminates after at
	// most d+1 augmentations).
	type edge struct {
		to  int
		cap int
		rev int
	}
	n := g.N()
	idIn := func(i int) int { return 2 * i }
	idOut := func(i int) int { return 2*i + 1 }
	graph := make([][]edge, 2*n)
	addEdge := func(a, b, c int) {
		graph[a] = append(graph[a], edge{to: b, cap: c, rev: len(graph[b])})
		graph[b] = append(graph[b], edge{to: a, cap: 0, rev: len(graph[a]) - 1})
	}
	const inf = 1 << 30
	for i, w := range g.nodes {
		capw := 1
		if w == u || w == v {
			capw = inf
		}
		addEdge(idIn(i), idOut(i), capw)
		for _, s := range g.Successors(w) {
			capArc := inf
			if w == u && s == v {
				// A direct u→v arc has no internal vertex; it contributes
				// exactly one internally disjoint path.
				capArc = 1
			}
			addEdge(idOut(i), idIn(g.index[s]), capArc)
		}
	}
	src := idOut(g.index[u])
	dst := idIn(g.index[v])
	flow := 0
	for {
		// BFS for an augmenting path.
		prevNode := make([]int, 2*n)
		prevEdge := make([]int, 2*n)
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[src] = src
		queue := []int{src}
		for len(queue) > 0 && prevNode[dst] == -1 {
			a := queue[0]
			queue = queue[1:]
			for ei, e := range graph[a] {
				if e.cap > 0 && prevNode[e.to] == -1 {
					prevNode[e.to] = a
					prevEdge[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if prevNode[dst] == -1 {
			return flow
		}
		// All augmenting paths here have bottleneck 1 (vertex arcs).
		for a := dst; a != src; {
			p := prevNode[a]
			e := &graph[p][prevEdge[a]]
			e.cap--
			graph[a][e.rev].cap++
			a = p
		}
		flow++
	}
}
