package kautz

import (
	"testing"
	"testing/quick"
)

func TestGreedyNext(t *testing.T) {
	tests := []struct {
		u, v    ID
		want    ID
		wantErr bool
	}{
		{u: "0123", v: "2301", want: "1230"},           // Figure 2(a) shortest hop
		{u: "12345", v: "34501", want: "23450"},        // Section III-C-1 example
		{u: "23450", v: "34501", want: "34501"},        // next step of the same example
		{u: "102", v: "201", want: "020"},              // Figure 1 intra-cell hop
		{u: "012", v: "012", want: "", wantErr: true},  // self
		{u: "012", v: "0123", want: "", wantErr: true}, // length mismatch
	}
	for _, tt := range tests {
		got, err := GreedyNext(tt.u, tt.v)
		if (err != nil) != tt.wantErr {
			t.Fatalf("GreedyNext(%s,%s) error = %v, wantErr %v", tt.u, tt.v, err, tt.wantErr)
		}
		if err == nil && got != tt.want {
			t.Errorf("GreedyNext(%s,%s) = %s, want %s", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	path, err := ShortestPath("12345", "34501")
	if err != nil {
		t.Fatal(err)
	}
	want := []ID{"12345", "23450", "34501"}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %s, want %s", i, path[i], want[i])
		}
	}
	self, err := ShortestPath("012", "012")
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 1 || self[0] != "012" {
		t.Fatalf("ShortestPath(u,u) = %v, want [u]", self)
	}
	if _, err := ShortestPath("012", "0123"); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// TestRoutesFigure2a reproduces the worked example of Section III-C-2:
// in K(4,4), node 0123 routes to 2301; the four disjoint paths have
// successors 1230 (shortest, len 2), 1232 (len k=4), 1234 (len k+1=5) and
// 1231 (conflict, len k+2=6).
func TestRoutesFigure2a(t *testing.T) {
	routes, err := Routes(4, "0123", "2301")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 4 {
		t.Fatalf("got %d routes, want 4", len(routes))
	}
	want := []struct {
		succ   ID
		class  PathClass
		length int
	}{
		{succ: "1230", class: ClassShortest, length: 2},
		{succ: "1232", class: ClassViaV1, length: 4},
		{succ: "1234", class: ClassDetour, length: 5},
		{succ: "1231", class: ClassConflict, length: 6},
	}
	for i, w := range want {
		r := routes[i]
		if r.Successor != w.succ || r.Class != w.class || r.Len() != w.length {
			t.Errorf("routes[%d] = {succ %s class %s len %d}, want {%s %s %d}",
				i, r.Successor, r.Class, r.Len(), w.succ, w.class, w.length)
		}
		if r.NominalLen != w.length {
			t.Errorf("routes[%d].NominalLen = %d, want %d", i, r.NominalLen, w.length)
		}
		if !ValidWalk(r.Path) {
			t.Errorf("routes[%d].Path %v is not a valid Kautz walk", i, r.Path)
		}
		if r.Path[0] != "0123" || r.Path[len(r.Path)-1] != "2301" {
			t.Errorf("routes[%d].Path endpoints wrong: %v", i, r.Path)
		}
	}
	paths := make([][]ID, len(routes))
	for i, r := range routes {
		paths[i] = r.Path
	}
	if !InternallyDisjoint(paths) {
		t.Errorf("Figure 2(a) paths are not internally disjoint: %v", paths)
	}
	// The conflict path must honor Prop. 3.7: 1231 forwards to 2310
	// (in-digit v_{l+1} = 0), not greedily.
	conflict := routes[3]
	if conflict.Path[2] != "2310" {
		t.Errorf("conflict path divert hop = %s, want 2310 (Prop. 3.7)", conflict.Path[2])
	}
}

// TestRoutesFigure2b covers the U-V1 pair of Figure 2(b) where
// u_{k−l} == v_{l+1} (no conflict node): 0123 → 2310. Here l = 2 via suffix
// "23"; v_{l+1} = 1 = u_2, so the shortest out-digit is 1 and the remaining
// paths need no divert.
func TestRoutesFigure2b(t *testing.T) {
	routes, err := Routes(4, "0123", "2310")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 4 {
		t.Fatalf("got %d routes, want 4", len(routes))
	}
	if routes[0].Class != ClassShortest || routes[0].Successor != "1231" {
		t.Fatalf("shortest route = %+v, want successor 1231", routes[0])
	}
	for _, r := range routes {
		if r.Class == ClassConflict {
			t.Errorf("no conflict route should exist when u_{k-l} == v_{l+1}, got %+v", r)
		}
	}
	paths := make([][]ID, len(routes))
	for i, r := range routes {
		paths[i] = r.Path
	}
	if !InternallyDisjoint(paths) {
		t.Errorf("Figure 2(b) paths are not internally disjoint: %v", paths)
	}
}

// TestRoutesViaV1InDigitCollision exercises the corner case missed by the
// paper (see DESIGN.md): u_{k−l} == u_k makes the via-v1 path's natural
// in-digit collide with the shortest path's. Our implementation diverts the
// via-v1 successor like a conflict node, restoring disjointness.
func TestRoutesViaV1InDigitCollision(t *testing.T) {
	// U = 0121, V = 2130 in K(4,4): l = 2 ("21"), u_{k−l} = u_2 = 1 = u_4.
	routes, err := Routes(4, "0121", "2130")
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]ID, len(routes))
	for i, r := range routes {
		paths[i] = r.Path
	}
	if !InternallyDisjoint(paths) {
		t.Fatalf("collision corner case yields intersecting paths: %v", paths)
	}
	var viaV1 *Route
	for i := range routes {
		if routes[i].Class == ClassViaV1 {
			viaV1 = &routes[i]
		}
	}
	if viaV1 == nil {
		t.Fatal("expected a via-v1 route")
	}
	if viaV1.NominalLen != 4+2 {
		t.Errorf("diverted via-v1 nominal length = %d, want k+2 = 6", viaV1.NominalLen)
	}
}

func TestRoutesErrors(t *testing.T) {
	if _, err := Routes(4, "0123", "0123"); err == nil {
		t.Error("Routes(u,u) should error")
	}
	if _, err := Routes(4, "0123", "012"); err == nil {
		t.Error("Routes with length mismatch should error")
	}
	if _, err := Routes(2, "0123", "2301"); err == nil {
		t.Error("Routes with digits above degree should error")
	}
	if _, err := Routes(2, "011", "201"); err == nil {
		t.Error("Routes with malformed ID should error")
	}
}

func TestNextHops(t *testing.T) {
	hops, err := NextHops(4, "0123", "2301")
	if err != nil {
		t.Fatal(err)
	}
	want := []ID{"1230", "1232", "1234", "1231"}
	if len(hops) != len(want) {
		t.Fatalf("NextHops = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("NextHops[%d] = %s, want %s", i, hops[i], want[i])
		}
	}
}

// TestRoutesExhaustive verifies, for every ordered pair of distinct nodes in
// several graphs, the full Theorem 3.8 contract:
//   - exactly d routes with d distinct successors,
//   - every concrete path is a valid walk from U to V,
//   - paths are internally vertex-disjoint,
//   - exactly one shortest route of length k − l,
//   - concrete lengths never exceed the nominal Theorem 3.8 lengths and the
//     non-shortest ones are ≤ k+2.
func TestRoutesExhaustive(t *testing.T) {
	configs := []struct{ d, k int }{{2, 2}, {2, 3}, {3, 3}, {4, 4}, {2, 4}, {3, 4}}
	if testing.Short() {
		configs = configs[:3]
	}
	for _, cfg := range configs {
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		nodes := g.Nodes()
		pairs, disjointPairs := 0, 0
		for _, u := range nodes {
			for _, v := range nodes {
				if u == v {
					continue
				}
				pairs++
				routes, err := Routes(cfg.d, u, v)
				if err != nil {
					t.Fatalf("Routes(%d,%s,%s): %v", cfg.d, u, v, err)
				}
				if len(routes) != cfg.d {
					t.Fatalf("K(%d,%d) %s→%s: %d routes, want %d", cfg.d, cfg.k, u, v, len(routes), cfg.d)
				}
				succs := make(map[ID]bool, cfg.d)
				shortest := 0
				paths := make([][]ID, 0, cfg.d)
				for _, r := range routes {
					if succs[r.Successor] {
						t.Fatalf("K(%d,%d) %s→%s: duplicate successor %s", cfg.d, cfg.k, u, v, r.Successor)
					}
					succs[r.Successor] = true
					if !ValidWalk(r.Path) {
						t.Fatalf("K(%d,%d) %s→%s: invalid walk %v", cfg.d, cfg.k, u, v, r.Path)
					}
					if r.Path[0] != u || r.Path[len(r.Path)-1] != v {
						t.Fatalf("K(%d,%d) %s→%s: wrong endpoints %v", cfg.d, cfg.k, u, v, r.Path)
					}
					if r.Class == ClassShortest {
						shortest++
						if r.Len() != Distance(u, v) {
							t.Fatalf("K(%d,%d) %s→%s: shortest len %d, want %d",
								cfg.d, cfg.k, u, v, r.Len(), Distance(u, v))
						}
					} else {
						if r.Len() > cfg.k+2 {
							t.Fatalf("K(%d,%d) %s→%s: route len %d exceeds k+2", cfg.d, cfg.k, u, v, r.Len())
						}
					}
					if r.Len() > r.NominalLen {
						t.Fatalf("K(%d,%d) %s→%s via %s: concrete len %d exceeds nominal %d",
							cfg.d, cfg.k, u, v, r.Successor, r.Len(), r.NominalLen)
					}
					paths = append(paths, r.Path)
				}
				if shortest != 1 {
					t.Fatalf("K(%d,%d) %s→%s: %d shortest routes, want 1", cfg.d, cfg.k, u, v, shortest)
				}
				if InternallyDisjoint(paths) {
					disjointPairs++
				}
			}
		}
		if disjointPairs != pairs {
			t.Errorf("K(%d,%d): only %d/%d pairs have fully disjoint route sets",
				cfg.d, cfg.k, disjointPairs, pairs)
		}
	}
}

// TestRoutesNominalLengthAccuracy records how often the concrete greedy path
// length equals the nominal Theorem 3.8 length. Digit coincidences can only
// shorten paths, never lengthen them; the shortest route is always exact.
func TestRoutesNominalLengthAccuracy(t *testing.T) {
	g, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	total, exact := 0, 0
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			routes, err := Routes(3, u, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range routes {
				total++
				if r.Len() == r.NominalLen {
					exact++
				}
				if r.Class == ClassShortest && r.Len() != r.NominalLen {
					t.Fatalf("shortest route %s→%s has len %d != nominal %d", u, v, r.Len(), r.NominalLen)
				}
			}
		}
	}
	if exact < total*9/10 {
		t.Errorf("only %d/%d routes match nominal lengths; expected the vast majority", exact, total)
	}
	t.Logf("nominal length exact for %d/%d routes (%.1f%%)", exact, total, 100*float64(exact)/float64(total))
}

func TestQuickRoutesContract(t *testing.T) {
	// Property test over random pairs in K(4,5): every route set has d
	// valid, endpoint-correct, internally disjoint walks.
	f := func(s1, s2 []byte) bool {
		const d, k = 4, 5
		u := randomKautzID(d, k, s1)
		v := randomKautzID(d, k, s2)
		if u == v {
			return true
		}
		routes, err := Routes(d, u, v)
		if err != nil || len(routes) != d {
			return false
		}
		paths := make([][]ID, len(routes))
		for i, r := range routes {
			if !ValidWalk(r.Path) || r.Path[0] != u || r.Path[len(r.Path)-1] != v {
				return false
			}
			paths[i] = r.Path
		}
		return InternallyDisjoint(paths)
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInternallyDisjoint(t *testing.T) {
	tests := []struct {
		name  string
		paths [][]ID
		want  bool
	}{
		{
			name:  "disjoint",
			paths: [][]ID{{"a", "b", "c"}, {"a", "d", "c"}},
			want:  true,
		},
		{
			name:  "shared internal",
			paths: [][]ID{{"a", "b", "c"}, {"a", "b", "c"}},
			want:  false,
		},
		{
			name:  "direct arcs only",
			paths: [][]ID{{"a", "c"}, {"a", "c"}},
			want:  true,
		},
		{
			name:  "empty",
			paths: nil,
			want:  true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InternallyDisjoint(tt.paths); got != tt.want {
				t.Fatalf("InternallyDisjoint = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPathClassString(t *testing.T) {
	tests := []struct {
		c    PathClass
		want string
	}{
		{ClassShortest, "shortest"},
		{ClassConflict, "conflict"},
		{ClassViaV1, "via-v1"},
		{ClassDetour, "detour"},
		{PathClass(99), "PathClass(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestValidWalk(t *testing.T) {
	if !ValidWalk([]ID{"0123", "1230", "2301"}) {
		t.Error("valid walk rejected")
	}
	if ValidWalk([]ID{"0123", "2301"}) {
		t.Error("invalid walk accepted")
	}
	if !ValidWalk([]ID{"0123"}) {
		t.Error("single-node walk rejected")
	}
	if !ValidWalk(nil) {
		t.Error("empty walk rejected")
	}
}
