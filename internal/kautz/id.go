// Package kautz implements Kautz digraphs K(d, k) and the ID-only routing
// theory of the REFER system (Li & Shen, ICDCS 2012): greedy shortest
// routing, the d disjoint U-V paths of Theorem 3.8, and the supporting
// graph-theoretic machinery (Hamiltonian cycles via line-digraph Eulerian
// circuits, vertex connectivity, Moore-bound helpers).
//
// A Kautz graph K(d, k) has degree d and diameter k. Its nodes are strings
// u1…uk over the alphabet {0, …, d} (d+1 letters) in which no two adjacent
// letters are equal. Node U has an arc to node V exactly when V is U shifted
// left by one position with one new letter appended, i.e.
// V = u2…uk x, x ≠ uk.
package kautz

import (
	"errors"
	"fmt"
)

// MaxDegree is the largest supported Kautz degree d. IDs are stored as
// strings of ASCII decimal digits, so the alphabet {0..d} must fit in '0'-'9'.
const MaxDegree = 9

// ID is a Kautz node identifier: a string of ASCII digits over the alphabet
// {0..d} with no two equal adjacent digits. The zero value is the empty ID,
// which is not a valid node of any graph.
//
// IDs are ordinary strings so they are comparable, usable as map keys and
// cheap to copy.
type ID string

// ErrInvalidID reports a malformed Kautz identifier.
var ErrInvalidID = errors.New("kautz: invalid ID")

// ParseID validates s as a Kautz identifier: non-empty, ASCII digits only,
// and no two equal adjacent digits. It does not check the digits against a
// particular degree; use Valid for that.
func ParseID(s string) (ID, error) {
	if s == "" {
		return "", fmt.Errorf("%w: empty", ErrInvalidID)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return "", fmt.Errorf("%w: %q has non-digit at position %d", ErrInvalidID, s, i)
		}
		if i > 0 && s[i] == s[i-1] {
			return "", fmt.Errorf("%w: %q repeats digit at position %d", ErrInvalidID, s, i)
		}
	}
	return ID(s), nil
}

// MakeID builds an ID from digit values. It returns an error if any digit is
// outside [0, MaxDegree] or two adjacent digits are equal.
func MakeID(digits ...int) (ID, error) {
	if len(digits) == 0 {
		return "", fmt.Errorf("%w: empty", ErrInvalidID)
	}
	buf := make([]byte, len(digits))
	for i, v := range digits {
		if v < 0 || v > MaxDegree {
			return "", fmt.Errorf("%w: digit %d out of range", ErrInvalidID, v)
		}
		if i > 0 && digits[i-1] == v {
			return "", fmt.Errorf("%w: adjacent repeat at position %d", ErrInvalidID, i)
		}
		buf[i] = byte('0' + v)
	}
	return ID(buf), nil
}

// MustID is MakeID that panics on error. It is intended for constants in
// tests and examples.
func MustID(digits ...int) ID {
	id, err := MakeID(digits...)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns k, the number of digits of the ID.
func (id ID) Len() int { return len(id) }

// At returns the 0-based i-th digit value. The paper indexes digits from 1;
// paper digit u_j is At(j-1).
func (id ID) At(i int) int { return int(id[i] - '0') }

// First returns the first digit value (paper u1).
func (id ID) First() int { return id.At(0) }

// Last returns the last digit value (paper uk).
func (id ID) Last() int { return id.At(len(id) - 1) }

// Valid reports whether the ID is a well-formed node of K(d, k): length k,
// all digits in [0, d], no two equal adjacent digits.
func (id ID) Valid(d, k int) bool {
	if len(id) != k {
		return false
	}
	for i := 0; i < len(id); i++ {
		v := id[i] - '0'
		if v > byte(d) || id[i] < '0' || id[i] > '9' {
			return false
		}
		if i > 0 && id[i] == id[i-1] {
			return false
		}
	}
	return true
}

// Shift returns the successor of id obtained by shifting left one position
// and appending digit x (paper: u1…uk → u2…uk x). It returns an error when
// x equals the current last digit, which would produce an invalid ID.
func (id ID) Shift(x int) (ID, error) {
	if x < 0 || x > MaxDegree {
		return "", fmt.Errorf("%w: shift digit %d out of range", ErrInvalidID, x)
	}
	if id.Last() == x {
		return "", fmt.Errorf("%w: shifting %q by %d repeats last digit", ErrInvalidID, string(id), x)
	}
	buf := make([]byte, len(id))
	copy(buf, id[1:])
	buf[len(buf)-1] = byte('0' + x)
	return ID(buf), nil
}

// MustShift is Shift that panics on error; use only when x ≠ Last is known.
func (id ID) MustShift(x int) ID {
	out, err := id.Shift(x)
	if err != nil {
		panic(err)
	}
	return out
}

// IsSuccessor reports whether v is a successor of u in a Kautz graph, i.e.
// v = u2…uk x for some x ≠ uk. Both the window condition and v's own Kautz
// validity at the appended digit are checked.
func IsSuccessor(u, v ID) bool {
	if len(u) != len(v) || len(u) == 0 {
		return false
	}
	if len(v) > 1 && v[len(v)-1] == v[len(v)-2] {
		return false
	}
	return string(u[1:]) == string(v[:len(v)-1])
}

// Overlap returns l = L(U, V): the length of the longest proper-or-full
// suffix of u that is a prefix of v. For u == v it returns k.
func Overlap(u, v ID) int {
	if len(u) != len(v) {
		return 0
	}
	k := len(u)
	for l := k; l > 0; l-- {
		if string(u[k-l:]) == string(v[:l]) {
			return l
		}
	}
	return 0
}

// Distance returns the greedy shortest-path hop distance k - L(U, V)
// between two nodes of the same length. Distance(u, u) == 0.
func Distance(u, v ID) int {
	return len(u) - Overlap(u, v)
}

// String implements fmt.Stringer.
func (id ID) String() string { return string(id) }
