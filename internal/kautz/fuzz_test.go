package kautz

import (
	"strings"
	"testing"
)

// FuzzParseID pins the parse/format round-trip: every accepted string
// formats back to itself and re-parses, and every rejection is re-derivable
// from the documented grammar (non-empty ASCII digits, no adjacent
// repeats), so ParseID never silently normalizes or over-rejects.
func FuzzParseID(f *testing.F) {
	for _, seed := range []string{
		"", "0", "9", "00", "012", "0120", "01210", "121212",
		"0123456789", "a", "01a", "-12", "1 2", "０１２", "012\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseID(s)
		malformed := s == ""
		for i := 0; i < len(s) && !malformed; i++ {
			if s[i] < '0' || s[i] > '9' || (i > 0 && s[i] == s[i-1]) {
				malformed = true
			}
		}
		if err != nil {
			if !malformed {
				t.Fatalf("ParseID(%q) rejected a well-formed ID: %v", s, err)
			}
			return
		}
		if malformed {
			t.Fatalf("ParseID(%q) accepted a malformed ID", s)
		}
		if id.String() != s {
			t.Fatalf("round-trip: ParseID(%q).String() = %q", s, id.String())
		}
		if _, err := ParseID(id.String()); err != nil {
			t.Fatalf("re-parse of %q failed: %v", id.String(), err)
		}
		// The digit-wise constructor agrees with the string parser.
		digits := make([]int, id.Len())
		for i := range digits {
			digits[i] = id.At(i)
		}
		made, err := MakeID(digits...)
		if err != nil {
			t.Fatalf("MakeID(%v) rejected digits of accepted %q: %v", digits, s, err)
		}
		if made != id {
			t.Fatalf("MakeID(%v) = %q, want %q", digits, made, id)
		}
		if !id.Valid(MaxDegree, id.Len()) {
			t.Fatalf("accepted %q is not Valid(%d, %d)", s, MaxDegree, id.Len())
		}
	})
}

// FuzzDisjointPaths pins Theorem 3.8 over arbitrary (d, u, v): the route
// set must contain exactly d routes whose concrete paths are simple, valid
// Kautz walks from u to v, with distinct successors and internal
// disjointness — VerifyRoutes is the shared oracle.
func FuzzDisjointPaths(f *testing.F) {
	f.Add(2, "012", "201")   // the paper's K(2,3) cell graph
	f.Add(2, "010", "101")   // periodic IDs exercise the loop-erasure
	f.Add(2, "012", "120")   // maximal overlap (shortest path length 1)
	f.Add(3, "0123", "2301") // conflict-node clause
	f.Add(4, "0123", "2301") // the paper's Figure 2(a) example
	f.Add(4, "0404", "4040") // u_{k−l} == u_k corner case
	f.Add(9, "090909", "909090")
	f.Add(3, "01", "12") // k=2, minimal length
	f.Fuzz(func(t *testing.T, d int, us, vs string) {
		if d < 2 || d > MaxDegree {
			t.Skip()
		}
		u, err := ParseID(us)
		if err != nil {
			t.Skip()
		}
		v, err := ParseID(vs)
		if err != nil {
			t.Skip()
		}
		k := u.Len()
		// Bound k so the fuzzer spends its budget on structure, not size.
		if k < 2 || k > 6 || v.Len() != k || u == v {
			t.Skip()
		}
		if !u.Valid(d, k) || !v.Valid(d, k) {
			t.Skip()
		}
		routes, err := Routes(d, u, v)
		if err != nil {
			t.Fatalf("Routes(%d, %s, %s): %v", d, u, v, err)
		}
		if err := VerifyRoutes(d, u, v, routes); err != nil {
			t.Fatal(err)
		}
		// The sort contract: concrete lengths are non-decreasing.
		for i := 1; i < len(routes); i++ {
			if routes[i-1].Len() > routes[i].Len() {
				t.Fatalf("routes not sorted by length: %v", routes)
			}
		}
	})
}

// TestVerifyRoutesRejects gives the oracle itself coverage: corrupted route
// sets must be caught.
func TestVerifyRoutesRejects(t *testing.T) {
	routes, err := Routes(2, "012", "201")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRoutes(2, "012", "201", routes); err != nil {
		t.Fatalf("sound set rejected: %v", err)
	}
	corrupt := func(name string, mutate func([]Route) []Route) {
		t.Run(name, func(t *testing.T) {
			cp := make([]Route, len(routes))
			for i, r := range routes {
				cp[i] = r
				cp[i].Path = append([]ID(nil), r.Path...)
			}
			cp = mutate(cp)
			if err := VerifyRoutes(2, "012", "201", cp); err == nil {
				t.Fatal("corrupted route set passed verification")
			} else if !strings.HasPrefix(err.Error(), "kautz:") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		})
	}
	corrupt("missing-route", func(rs []Route) []Route { return rs[:1] })
	corrupt("wrong-terminus", func(rs []Route) []Route {
		rs[0].Path[len(rs[0].Path)-1] = "120"
		return rs
	})
	corrupt("broken-walk", func(rs []Route) []Route {
		longest := 0
		for i, r := range rs {
			if r.Len() > rs[longest].Len() {
				longest = i
			}
		}
		rs[longest].Path[1], rs[longest].Path[0] = rs[longest].Path[0], rs[longest].Path[1]
		return rs
	})
	corrupt("duplicate-successor", func(rs []Route) []Route {
		rs[1] = rs[0]
		return rs
	})
}
