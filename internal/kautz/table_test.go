package kautz

import (
	"reflect"
	"sync"
	"testing"
)

// TestTableEquivalence checks that the precomputed table returns exactly
// what the direct Theorem 3.8 computation returns for every ordered node
// pair of K(2,3) and K(3,3).
func TestTableEquivalence(t *testing.T) {
	for _, cfg := range []struct{ d, k int }{{2, 3}, {3, 3}} {
		table, err := TableFor(cfg.d, cfg.k)
		if err != nil {
			t.Fatalf("TableFor(%d,%d): %v", cfg.d, cfg.k, err)
		}
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		nodes := g.Nodes()
		wantPairs := len(nodes) * (len(nodes) - 1)
		if table.Size() != wantPairs {
			t.Fatalf("K(%d,%d) table size = %d, want %d", cfg.d, cfg.k, table.Size(), wantPairs)
		}
		for _, u := range nodes {
			for _, v := range nodes {
				if u == v {
					continue
				}
				direct, err := Routes(cfg.d, u, v)
				if err != nil {
					t.Fatalf("Routes(%d, %s, %s): %v", cfg.d, u, v, err)
				}
				cached, ok := table.Routes(u, v)
				if !ok {
					t.Fatalf("K(%d,%d) table misses pair %s→%s", cfg.d, cfg.k, u, v)
				}
				if !reflect.DeepEqual(direct, cached) {
					t.Fatalf("K(%d,%d) %s→%s: table %v != direct %v", cfg.d, cfg.k, u, v, cached, direct)
				}
			}
		}
	}
}

// TestTableCopyOnRead checks that permuting a returned route slice (what
// shuffleEqualLength does on every relay decision) does not corrupt the
// shared cache.
func TestTableCopyOnRead(t *testing.T) {
	table, err := TableFor(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	u, v := ID("021"), ID("201")
	first, ok := table.Routes(u, v)
	if !ok {
		t.Fatalf("pair %s→%s not in table", u, v)
	}
	want := append([]Route(nil), first...)
	// Reverse the caller's copy in place.
	for i, j := 0, len(first)-1; i < j; i, j = i+1, j-1 {
		first[i], first[j] = first[j], first[i]
	}
	second, ok := table.Routes(u, v)
	if !ok {
		t.Fatalf("pair %s→%s vanished", u, v)
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatalf("cache corrupted by caller permutation: %v != %v", second, want)
	}
}

// TestTableSharedPerDegree checks the process-wide sharing contract: two
// TableFor calls for the same K(d,k) return the same table.
func TestTableSharedPerDegree(t *testing.T) {
	a, err := TableFor(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableFor(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("TableFor(2,3) returned two distinct tables")
	}
}

// TestTableCounters checks hit/miss accounting and the snapshot API.
func TestTableCounters(t *testing.T) {
	table, err := TableFor(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := table.Counters()
	if _, ok := table.Routes("012", "120"); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := table.Routes("012", "012"); ok {
		t.Fatal("u == v should miss")
	}
	if _, ok := table.Routes("0123", "1230"); ok {
		t.Fatal("foreign IDs should miss")
	}
	after := table.Counters()
	if after.Hits != before.Hits+1 {
		t.Fatalf("hits = %d, want %d", after.Hits, before.Hits+1)
	}
	if after.Misses != before.Misses+2 {
		t.Fatalf("misses = %d, want %d", after.Misses, before.Misses+2)
	}
	if after.Pairs != 132 {
		t.Fatalf("K(2,3) pairs = %d, want 132", after.Pairs)
	}
	found := false
	for _, c := range AllTableCounters() {
		if c.Degree == 2 && c.Diameter == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("AllTableCounters does not list the built K(2,3) table")
	}
}

// TestTableInvalid checks the rejection paths: bad parameters and graphs
// above the precompute bound.
func TestTableInvalid(t *testing.T) {
	if _, err := TableFor(0, 3); err == nil {
		t.Fatal("degree 0 should fail")
	}
	if _, err := TableFor(2, 0); err == nil {
		t.Fatal("diameter 0 should fail")
	}
	if _, err := TableFor(4, 4); err == nil {
		t.Fatal("K(4,4) (102,080 pairs) should be above the precompute bound")
	}
}

// TestTableConcurrentAccess hammers one shared table from many goroutines;
// the race detector (CI runs go test -race) verifies the concurrency
// contract.
func TestTableConcurrentAccess(t *testing.T) {
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			table, err := TableFor(2, 3)
			if err != nil {
				t.Error(err)
				return
			}
			for _, u := range nodes {
				for _, v := range nodes {
					if u == v {
						continue
					}
					routes, ok := table.Routes(u, v)
					if !ok || len(routes) != 2 {
						t.Errorf("%s→%s: ok=%v routes=%d", u, v, ok, len(routes))
						return
					}
					// Permute the private copy, as relays do.
					routes[0], routes[1] = routes[1], routes[0]
				}
			}
			_ = AllTableCounters()
		}()
	}
	wg.Wait()
}
