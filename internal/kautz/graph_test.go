package kautz

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		d, k    int
		wantErr bool
	}{
		{name: "K(2,3)", d: 2, k: 3, wantErr: false},
		{name: "K(1,1)", d: 1, k: 1, wantErr: false},
		{name: "zero degree", d: 0, k: 3, wantErr: true},
		{name: "zero diameter", d: 2, k: 0, wantErr: true},
		{name: "degree too large", d: 10, k: 2, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.d, tt.k)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d,%d) error = %v, wantErr %v", tt.d, tt.k, err, tt.wantErr)
			}
		})
	}
}

func TestGraphOrderAndSize(t *testing.T) {
	// N = (d+1)·d^(k−1), |E| = (d+1)·d^k (Lemma 3.1 prerequisites).
	tests := []struct {
		d, k      int
		wantNodes int
	}{
		{1, 1, 2},
		{2, 1, 3},
		{2, 2, 6},
		{2, 3, 12},
		{3, 3, 36},
		{4, 4, 320},
		{2, 5, 48},
	}
	for _, tt := range tests {
		g, err := New(tt.d, tt.k)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", tt.d, tt.k, err)
		}
		if g.N() != tt.wantNodes {
			t.Errorf("K(%d,%d).N() = %d, want %d", tt.d, tt.k, g.N(), tt.wantNodes)
		}
		if NumNodes(tt.d, tt.k) != tt.wantNodes {
			t.Errorf("NumNodes(%d,%d) = %d, want %d", tt.d, tt.k, NumNodes(tt.d, tt.k), tt.wantNodes)
		}
		if got, want := NumEdges(tt.d, tt.k), tt.wantNodes*tt.d; got != want {
			t.Errorf("NumEdges(%d,%d) = %d, want %d", tt.d, tt.k, got, want)
		}
		// Euler degree-sum equality |E| = N·d from the Lemma 3.1 proof.
		edges := 0
		for _, u := range g.Nodes() {
			edges += len(g.Successors(u))
		}
		if edges != NumEdges(tt.d, tt.k) {
			t.Errorf("K(%d,%d) enumerated %d arcs, want %d", tt.d, tt.k, edges, NumEdges(tt.d, tt.k))
		}
	}
}

func TestGraphK23NodeSet(t *testing.T) {
	// The full K(2,3) node set used throughout Section III-B of the paper.
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []ID{
		"010", "012", "020", "021", "101", "102",
		"120", "121", "201", "202", "210", "212",
	}
	got := g.Nodes()
	if len(got) != len(want) {
		t.Fatalf("K(2,3) has %d nodes, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i] != id {
			t.Errorf("node[%d] = %q, want %q", i, got[i], id)
		}
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		u     ID
		succs []ID
		preds []ID
	}{
		{u: "012", succs: []ID{"120", "121"}, preds: []ID{"101", "201"}},
		{u: "201", succs: []ID{"010", "012"}, preds: []ID{"020", "120"}},
		{u: "121", succs: []ID{"210", "212"}, preds: []ID{"012", "212"}},
	}
	for _, tt := range tests {
		gotS := g.Successors(tt.u)
		if len(gotS) != len(tt.succs) {
			t.Fatalf("Successors(%s) = %v, want %v", tt.u, gotS, tt.succs)
		}
		for i := range tt.succs {
			if gotS[i] != tt.succs[i] {
				t.Errorf("Successors(%s)[%d] = %s, want %s", tt.u, i, gotS[i], tt.succs[i])
			}
		}
		gotP := g.Predecessors(tt.u)
		if len(gotP) != len(tt.preds) {
			t.Fatalf("Predecessors(%s) = %v, want %v", tt.u, gotP, tt.preds)
		}
		for i := range tt.preds {
			if gotP[i] != tt.preds[i] {
				t.Errorf("Predecessors(%s)[%d] = %s, want %s", tt.u, i, gotP[i], tt.preds[i])
			}
		}
	}
}

func TestSuccessorPredecessorDuality(t *testing.T) {
	g, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Nodes() {
		for _, v := range g.Successors(u) {
			if !g.Contains(v) {
				t.Fatalf("successor %s of %s not in graph", v, u)
			}
			found := false
			for _, p := range g.Predecessors(v) {
				if p == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s not among predecessors of its successor %s", u, v)
			}
			if !g.HasArc(u, v) {
				t.Fatalf("HasArc(%s,%s) = false", u, v)
			}
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	for _, cfg := range []struct{ d, k int }{{1, 2}, {2, 3}, {3, 3}, {4, 4}, {2, 5}} {
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsStronglyConnected() {
			t.Errorf("K(%d,%d) not strongly connected", cfg.d, cfg.k)
		}
	}
}

func TestBFSDistanceMatchesIDDistance(t *testing.T) {
	// The greedy ID distance k − L(U,V) must equal the true shortest-path
	// distance in the digraph ("For any pair of nodes U-V, there exists
	// only a single shortest path, and its length is k − l").
	for _, cfg := range []struct{ d, k int }{{2, 3}, {3, 3}, {2, 4}} {
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		nodes := g.Nodes()
		for _, u := range nodes {
			for _, v := range nodes {
				bfs := g.BFSDistance(u, v)
				idDist := Distance(u, v)
				if bfs != idDist {
					t.Fatalf("K(%d,%d) %s→%s: BFS %d, ID distance %d",
						cfg.d, cfg.k, u, v, bfs, idDist)
				}
			}
		}
	}
}

func TestDiameterIsK(t *testing.T) {
	for _, cfg := range []struct{ d, k int }{{2, 3}, {3, 2}, {2, 4}} {
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		maxDist := 0
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if d := g.BFSDistance(u, v); d > maxDist {
					maxDist = d
				}
			}
		}
		if maxDist != cfg.k {
			t.Errorf("K(%d,%d) diameter = %d, want %d", cfg.d, cfg.k, maxDist, cfg.k)
		}
	}
}

func TestHamiltonianCycle(t *testing.T) {
	for _, cfg := range []struct{ d, k int }{{1, 1}, {2, 1}, {2, 2}, {2, 3}, {3, 3}, {4, 3}, {2, 5}} {
		t.Run("", func(t *testing.T) {
			g, err := New(cfg.d, cfg.k)
			if err != nil {
				t.Fatal(err)
			}
			cycle, err := g.HamiltonianCycle()
			if err != nil {
				t.Fatalf("K(%d,%d): %v", cfg.d, cfg.k, err)
			}
			if len(cycle) != g.N() {
				t.Fatalf("K(%d,%d) cycle visits %d nodes, want %d", cfg.d, cfg.k, len(cycle), g.N())
			}
			seen := make(map[ID]bool, len(cycle))
			for i, u := range cycle {
				if seen[u] {
					t.Fatalf("K(%d,%d) cycle repeats %s", cfg.d, cfg.k, u)
				}
				seen[u] = true
				if !g.Contains(u) {
					t.Fatalf("K(%d,%d) cycle contains foreign node %s", cfg.d, cfg.k, u)
				}
				next := cycle[(i+1)%len(cycle)]
				if cfg.k > 1 && !IsSuccessor(u, next) {
					t.Fatalf("K(%d,%d) cycle edge %s→%s is not an arc", cfg.d, cfg.k, u, next)
				}
			}
		})
	}
}

func TestMinVertexCutEqualsDegree(t *testing.T) {
	// Lemma 3.1 / the d-disjoint-paths property [31]: between any two
	// distinct vertices of K(d, k) there are exactly d internally
	// vertex-disjoint paths, so the minimum vertex cut is d.
	for _, cfg := range []struct{ d, k int }{{2, 2}, {2, 3}, {3, 2}} {
		g, err := New(cfg.d, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		nodes := g.Nodes()
		for i, u := range nodes {
			for j, v := range nodes {
				if i == j {
					continue
				}
				if cut := g.MinVertexCut(u, v); cut != cfg.d {
					t.Fatalf("K(%d,%d) MinVertexCut(%s,%s) = %d, want %d",
						cfg.d, cfg.k, u, v, cut, cfg.d)
				}
			}
		}
	}
}

func TestMinVertexCutDegenerate(t *testing.T) {
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MinVertexCut("012", "012"); got != -1 {
		t.Errorf("MinVertexCut(u,u) = %d, want -1", got)
	}
	if got := g.MinVertexCut("012", "999"); got != -1 {
		t.Errorf("MinVertexCut to foreign node = %d, want -1", got)
	}
}

func TestMooreBound(t *testing.T) {
	tests := []struct {
		d, k int
		want int
	}{
		{2, 1, 3},
		{2, 2, 7},
		{2, 3, 15},
		{3, 2, 13},
	}
	for _, tt := range tests {
		if got := MooreBound(tt.d, tt.k); got != tt.want {
			t.Errorf("MooreBound(%d,%d) = %d, want %d", tt.d, tt.k, got, tt.want)
		}
	}
	// K(d,k) approaches the Moore bound as k decreases (Section III-B):
	// the node-count deficit ratio shrinks with smaller k.
	ratio := func(d, k int) float64 {
		return float64(NumNodes(d, k)) / float64(MooreBound(d, k))
	}
	if ratio(2, 2) <= ratio(2, 4) {
		t.Errorf("density ratio should grow as k shrinks: k=2 %f, k=4 %f", ratio(2, 2), ratio(2, 4))
	}
}

func TestGraphIndexAndContains(t *testing.T) {
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Index("010") != 0 {
		t.Errorf("Index(010) = %d, want 0", g.Index("010"))
	}
	if g.Index("999") != -1 {
		t.Errorf("Index(foreign) = %d, want -1", g.Index("999"))
	}
	if g.Contains("300") {
		t.Error("Contains(300) = true for d=2")
	}
	// Nodes() must return a copy: mutating it must not corrupt the graph.
	nodes := g.Nodes()
	nodes[0] = "999"
	if g.Nodes()[0] != "010" {
		t.Error("Nodes() does not return a defensive copy")
	}
}
