package kautz

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// maxTablePairs bounds the size of a precomputed route table: K(2,3) has
// 132 ordered pairs, K(3,3) 1,260, K(4,3) 6,320. Graphs whose ordered-pair
// count exceeds the bound (e.g. K(4,4) with 102,080 pairs) are not
// precomputed; callers fall back to the direct Routes computation.
const maxTablePairs = 50_000

// RouteTable is an immutable precomputed map from every ordered node pair
// (U, V) of a complete Kautz graph K(d, k) to its Theorem 3.8 route set —
// exactly what Routes(d, u, v) returns, computed once per process instead
// of on every forwarding decision.
//
// Faber & Streib observe that Kautz routing is regular enough to tabulate
// outright; a K(d,3) cell has at most a few dozen nodes, so the whole table
// is tiny while the per-relay saving (script building, window walking,
// sorting, ~20 allocations) is paid on REFER's hottest path.
//
// The table is immutable after construction and safe for concurrent use;
// the hit/miss counters are atomic.
type RouteTable struct {
	d, k    int
	entries map[pairKey][]Route
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type pairKey struct{ u, v ID }

// tableKey identifies a process-wide shared table.
type tableKey struct{ d, k int }

// tableSlot holds one lazily built shared table. The table pointer is
// atomic so AllTableCounters can snapshot concurrently with a first build;
// err is only read after once.Do returns, which orders it.
type tableSlot struct {
	once  sync.Once
	table atomic.Pointer[RouteTable]
	err   error
}

var (
	tableMu  sync.Mutex
	tableReg = make(map[tableKey]*tableSlot)
)

// TableFor returns the process-wide shared route table of K(d, k), building
// it on first use (behind a per-graph sync.Once, so concurrent callers and
// parallel simulation runs share one table and one construction). It
// returns an error when the graph is invalid or too large to precompute
// (more than maxTablePairs ordered pairs).
func TableFor(d, k int) (*RouteTable, error) {
	if d < 1 || d > MaxDegree {
		return nil, fmt.Errorf("kautz: table degree d=%d out of range [1,%d]", d, MaxDegree)
	}
	if k < 1 {
		return nil, fmt.Errorf("kautz: table diameter k=%d must be >= 1", k)
	}
	if n := NumNodes(d, k); n*(n-1) > maxTablePairs {
		return nil, fmt.Errorf("kautz: K(%d,%d) has %d ordered pairs, above the %d precompute bound",
			d, k, n*(n-1), maxTablePairs)
	}
	key := tableKey{d: d, k: k}
	tableMu.Lock()
	slot, ok := tableReg[key]
	if !ok {
		slot = &tableSlot{}
		tableReg[key] = slot
	}
	tableMu.Unlock()
	slot.once.Do(func() {
		t, err := buildTable(d, k)
		if err != nil {
			slot.err = err
			return
		}
		slot.table.Store(t)
	})
	if t := slot.table.Load(); t != nil {
		return t, nil
	}
	return nil, slot.err
}

// buildTable precomputes Routes(d, u, v) for every ordered node pair.
func buildTable(d, k int) (*RouteTable, error) {
	g, err := New(d, k)
	if err != nil {
		return nil, err
	}
	nodes := g.Nodes()
	t := &RouteTable{
		d:       d,
		k:       k,
		entries: make(map[pairKey][]Route, len(nodes)*(len(nodes)-1)),
	}
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			routes, err := Routes(d, u, v)
			if err != nil {
				return nil, fmt.Errorf("kautz: table K(%d,%d): %w", d, k, err)
			}
			t.entries[pairKey{u: u, v: v}] = routes
		}
	}
	return t, nil
}

// Degree returns d.
func (t *RouteTable) Degree() int { return t.d }

// Diameter returns k.
func (t *RouteTable) Diameter() int { return t.k }

// Size returns the number of precomputed ordered pairs.
func (t *RouteTable) Size() int { return len(t.entries) }

// Routes returns the Theorem 3.8 route set for the ordered pair (u, v) and
// whether the table covers the pair (u == v and foreign IDs report false).
// The returned slice is a fresh copy — callers such as shuffleEqualLength
// may reorder it freely without corrupting the shared cache. The Route
// structs still share their Path slices with the table; treat Path contents
// as read-only.
func (t *RouteTable) Routes(u, v ID) ([]Route, bool) {
	routes, ok := t.entries[pairKey{u: u, v: v}]
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	t.hits.Add(1)
	out := make([]Route, len(routes))
	copy(out, routes)
	return out, true
}

// TableCounters is a snapshot of one shared table's effectiveness counters.
type TableCounters struct {
	// Degree and Diameter identify the graph K(d, k).
	Degree, Diameter int
	// Hits and Misses count lookups served from / not covered by the table
	// since process start.
	Hits, Misses uint64
	// Pairs is the number of precomputed ordered pairs.
	Pairs int
}

// String renders the counters as a one-line report.
func (c TableCounters) String() string {
	total := c.Hits + c.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(c.Hits) / float64(total)
	}
	return fmt.Sprintf("K(%d,%d): %d pairs, %d hits / %d misses (%.1f%% hit rate)",
		c.Degree, c.Diameter, c.Pairs, c.Hits, c.Misses, pct)
}

// Counters returns a snapshot of the table's lookup counters.
func (t *RouteTable) Counters() TableCounters {
	return TableCounters{
		Degree:   t.d,
		Diameter: t.k,
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Pairs:    len(t.entries),
	}
}

// AllTableCounters snapshots the counters of every table built so far in
// this process, ordered by (degree, diameter).
func AllTableCounters() []TableCounters {
	tableMu.Lock()
	keys := make([]tableKey, 0, len(tableReg))
	slots := make(map[tableKey]*tableSlot, len(tableReg))
	for k, s := range tableReg {
		keys = append(keys, k)
		slots[k] = s
	}
	tableMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return keys[i].k < keys[j].k
	})
	out := make([]TableCounters, 0, len(keys))
	for _, k := range keys {
		// A slot whose build has not completed yet (or failed) has no table.
		if t := slots[k].table.Load(); t != nil {
			out = append(out, t.Counters())
		}
	}
	return out
}
