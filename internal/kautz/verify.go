package kautz

import "fmt"

// VerifyRoutes audits a Theorem 3.8 route set for u → v in K(d, k) and
// returns the first violation found, or nil when the set is sound:
//
//   - exactly d routes, one per legal out-digit (pairwise distinct, none
//     equal to u's last digit);
//   - every route's Successor is a Kautz successor of u, equal to the
//     second node of its concrete path;
//   - every concrete path starts at u, ends at v, is a walk of consecutive
//     Kautz arcs over valid K(d, k) nodes, and is simple;
//   - the paths are internally disjoint (Theorem 3.8's core claim).
//
// It is shared by the fuzz targets and the conformance harness's failover
// soundness probe: a failover that switches to routes[i+1] of a verified
// set by construction lands on a valid disjoint-path successor.
func VerifyRoutes(d int, u, v ID, routes []Route) error {
	if len(routes) != d {
		return fmt.Errorf("kautz: %s→%s: %d routes, want d=%d", u, v, len(routes), d)
	}
	k := len(u)
	outDigits := make(map[int]bool, d)
	succs := make(map[ID]bool, d)
	paths := make([][]ID, 0, d)
	for _, r := range routes {
		if r.OutDigit == u.Last() {
			return fmt.Errorf("kautz: %s→%s: out-digit %d repeats u's last digit", u, v, r.OutDigit)
		}
		if outDigits[r.OutDigit] {
			return fmt.Errorf("kautz: %s→%s: duplicate out-digit %d", u, v, r.OutDigit)
		}
		outDigits[r.OutDigit] = true
		if succs[r.Successor] {
			return fmt.Errorf("kautz: %s→%s: duplicate successor %s", u, v, r.Successor)
		}
		succs[r.Successor] = true
		if !IsSuccessor(u, r.Successor) {
			return fmt.Errorf("kautz: %s→%s: %s is not a successor of %s", u, v, r.Successor, u)
		}
		if len(r.Path) < 2 {
			return fmt.Errorf("kautz: %s→%s via %s: path too short: %v", u, v, r.Successor, r.Path)
		}
		if r.Path[0] != u {
			return fmt.Errorf("kautz: %s→%s via %s: path starts at %s", u, v, r.Successor, r.Path[0])
		}
		if r.Path[len(r.Path)-1] != v {
			return fmt.Errorf("kautz: %s→%s via %s: path ends at %s", u, v, r.Successor, r.Path[len(r.Path)-1])
		}
		if r.Path[1] != r.Successor {
			return fmt.Errorf("kautz: %s→%s: path's first hop %s disagrees with Successor %s", u, v, r.Path[1], r.Successor)
		}
		seen := make(map[ID]bool, len(r.Path))
		for _, node := range r.Path {
			if !node.Valid(d, k) {
				return fmt.Errorf("kautz: %s→%s via %s: node %s invalid for K(%d,%d)", u, v, r.Successor, node, d, k)
			}
			if seen[node] {
				return fmt.Errorf("kautz: %s→%s via %s: path revisits %s", u, v, r.Successor, node)
			}
			seen[node] = true
		}
		if !ValidWalk(r.Path) {
			return fmt.Errorf("kautz: %s→%s via %s: path %v is not a Kautz walk", u, v, r.Successor, r.Path)
		}
		paths = append(paths, r.Path)
	}
	if !InternallyDisjoint(paths) {
		return fmt.Errorf("kautz: %s→%s: paths are not internally disjoint", u, v)
	}
	return nil
}
