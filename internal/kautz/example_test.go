package kautz_test

import (
	"fmt"

	"refer/internal/kautz"
)

// The paper's Figure 2(a): node 0123 of K(4,4) computes its four disjoint
// paths to 2301 from the IDs alone.
func ExampleRoutes() {
	routes, err := kautz.Routes(4, "0123", "2301")
	if err != nil {
		panic(err)
	}
	for _, r := range routes {
		fmt.Printf("%s via %s, length %d\n", r.Class, r.Successor, r.Len())
	}
	// Output:
	// shortest via 1230, length 2
	// via-v1 via 1232, length 4
	// detour via 1234, length 5
	// conflict via 1231, length 6
}

// The greedy shortest protocol of Section III-C-1.
func ExampleGreedyNext() {
	next, err := kautz.GreedyNext("12345", "34501")
	if err != nil {
		panic(err)
	}
	fmt.Println(next)
	// Output: 23450
}

// Distance is k − L(U,V): the suffix-prefix overlap rule.
func ExampleDistance() {
	fmt.Println(kautz.Distance("120", "201"))
	fmt.Println(kautz.Distance("0123", "2301"))
	// Output:
	// 1
	// 2
}

// Enumerating the paper's cell graph K(2,3).
func ExampleNew() {
	g, err := kautz.New(2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), "nodes, degree", g.Degree(), "diameter", g.Diameter())
	fmt.Println("successors of 012:", g.Successors("012"))
	// Output:
	// 12 nodes, degree 2 diameter 3
	// successors of 012: [120 121]
}
