// Package trace is the simulator's per-run observability layer: a
// low-overhead recorder of packet lifecycle events (inject → hop →
// failover-switch → drop/deliver) plus aggregate radio counters.
//
// The paper's claims live on per-packet behaviour — Theorem 3.8 failover
// under faults, QoS-deadline delivery, energy per route — but a figure only
// shows the aggregate. A trace explains *why* a figure moved: which relay
// switched paths, where a packet died, how many overlay hops a delivery
// took.
//
// Tracing is strictly opt-in. Every method is safe on a nil *Recorder and
// on the zero Packet, compiling down to a single pointer check, so the
// forwarding hot path pays nothing when tracing is disabled — a guarantee
// pinned by TestDisabledTraceNoAllocs and the trace benchmarks.
//
// A Recorder belongs to one simulation run. The discrete-event simulator is
// single-threaded, so the Recorder is deliberately unsynchronized; parallel
// sweeps attach one Recorder per run.
package trace

import (
	"fmt"
	"time"
)

// Kind classifies a packet lifecycle event.
type Kind uint8

const (
	// Inject is the packet's creation at its source sensor.
	Inject Kind = iota + 1
	// Hop is one successful overlay-level forwarding step (the attachment
	// hop from a plain sensor to its overlay entry is a Hop with Class 0).
	Hop
	// FailoverSwitch is one Theorem 3.8 decision: a relay abandons the
	// recorded path class and switches to the next disjoint alternative.
	FailoverSwitch
	// Drop is the packet's abandonment after exhausting all alternatives.
	Drop
	// Deliver is the packet's arrival at an actuator. The delivering node
	// is the last Hop's destination.
	Deliver
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case Hop:
		return "hop"
	case FailoverSwitch:
		return "failover-switch"
	case Drop:
		return "drop"
	case Deliver:
		return "deliver"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NoNode marks an unused node field of an Event.
const NoNode int32 = -1

// Event is one recorded packet lifecycle event. Node IDs are the world's
// dense identifiers, narrowed to int32 to keep the struct at 32 bytes.
type Event struct {
	// At is the virtual (simulation) time of the event.
	At time.Duration
	// Packet identifies the packet; IDs are dense per Recorder, starting
	// at 1 in injection order.
	Packet uint64
	// Node is the event's primary node: the source for Inject, the relay
	// for Hop and FailoverSwitch, NoNode when unknown (Drop/Deliver record
	// the outcome; the position is implied by the preceding Hop).
	Node int32
	// Peer is the hop destination for Hop events, NoNode otherwise.
	Peer int32
	// Kind classifies the event.
	Kind Kind
	// Class is the Theorem 3.8 path class (kautz.PathClass) of the route
	// being taken (Hop) or abandoned (FailoverSwitch); 0 when not
	// applicable (attachment hops, inter-cell CAN hops).
	Class int8
}

// String renders the event as a one-line log entry.
func (e Event) String() string {
	switch e.Kind {
	case Hop:
		return fmt.Sprintf("%12v pkt %-6d hop %d -> %d (class %d)", e.At, e.Packet, e.Node, e.Peer, e.Class)
	case FailoverSwitch:
		return fmt.Sprintf("%12v pkt %-6d failover-switch at %d (abandoning class %d)", e.At, e.Packet, e.Node, e.Class)
	case Inject:
		return fmt.Sprintf("%12v pkt %-6d inject at %d", e.At, e.Packet, e.Node)
	default:
		return fmt.Sprintf("%12v pkt %-6d %s", e.At, e.Packet, e.Kind)
	}
}

// Counts aggregates a run's event and radio counters. Unlike the event
// buffer, counts are exact regardless of sampling: every packet increments
// them, only sampled packets also store Events. Counts is comparable and
// addable, so sweeps aggregate it across runs.
type Counts struct {
	// Packet lifecycle counters. Every injected packet resolves exactly
	// once: Injected == Delivered + Dropped when the run has quiesced.
	Injected         uint64 `json:"injected"`
	Hops             uint64 `json:"hops"`
	FailoverSwitches uint64 `json:"failover_switches"`
	Delivered        uint64 `json:"delivered"`
	Dropped          uint64 `json:"dropped"`

	// Radio-layer counters, fed by the world: unicast transmissions and
	// their outcomes, plus broadcast/flood transmissions.
	RadioSends     uint64 `json:"radio_sends"`
	RadioDelivered uint64 `json:"radio_delivered"`
	RadioFailed    uint64 `json:"radio_failed"`
	Broadcasts     uint64 `json:"broadcasts"`
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Injected += other.Injected
	c.Hops += other.Hops
	c.FailoverSwitches += other.FailoverSwitches
	c.Delivered += other.Delivered
	c.Dropped += other.Dropped
	c.RadioSends += other.RadioSends
	c.RadioDelivered += other.RadioDelivered
	c.RadioFailed += other.RadioFailed
	c.Broadcasts += other.Broadcasts
}

// Recorder collects one run's trace. The zero value is not useful; use
// NewRecorder. All methods are no-ops on a nil receiver, so systems hold a
// possibly-nil *Recorder and call unconditionally.
//
// Recorder is not safe for concurrent use: it belongs to one run of the
// single-threaded discrete-event simulator.
type Recorder struct {
	sampleEvery uint64
	nextPacket  uint64
	events      []Event
	counts      Counts
}

// NewRecorder creates a recorder storing the events of every sampleEvery-th
// packet (1 records every packet; values below 1 are coerced to 1). Counts
// are exact regardless of sampling.
func NewRecorder(sampleEvery int) *Recorder {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Recorder{sampleEvery: uint64(sampleEvery)}
}

// Packet is a per-packet tracing handle threaded through a system's
// forwarding path. The zero Packet (and any Packet from a nil Recorder) is
// inert: every method is a single nil check.
type Packet struct {
	r    *Recorder
	id   uint64
	keep bool
}

// Traced reports whether this packet's events are stored (it was sampled).
func (p Packet) Traced() bool { return p.r != nil && p.keep }

// PacketInject registers a new packet injected at src and returns its
// handle. On a nil recorder it returns the inert zero Packet.
func (r *Recorder) PacketInject(at time.Duration, src int32) Packet {
	if r == nil {
		return Packet{}
	}
	r.nextPacket++
	r.counts.Injected++
	p := Packet{r: r, id: r.nextPacket, keep: (r.nextPacket-1)%r.sampleEvery == 0}
	if p.keep {
		r.events = append(r.events, Event{At: at, Packet: p.id, Kind: Inject, Node: src, Peer: NoNode})
	}
	return p
}

// Hop records one successful overlay forwarding step from from to to on a
// Theorem 3.8 route of the given path class (0 for hops outside the Kautz
// routing protocol, e.g. attachment or inter-cell CAN hops).
func (p Packet) Hop(at time.Duration, from, to int32, class int8) {
	if p.r == nil {
		return
	}
	p.r.counts.Hops++
	if p.keep {
		p.r.events = append(p.r.events, Event{At: at, Packet: p.id, Kind: Hop, Node: from, Peer: to, Class: class})
	}
}

// FailoverSwitch records one Theorem 3.8 failover decision at node: the
// relay abandons the path of the given class and switches to the next
// disjoint alternative.
func (p Packet) FailoverSwitch(at time.Duration, node int32, class int8) {
	if p.r == nil {
		return
	}
	p.r.counts.FailoverSwitches++
	if p.keep {
		p.r.events = append(p.r.events, Event{At: at, Packet: p.id, Kind: FailoverSwitch, Node: node, Peer: NoNode, Class: class})
	}
}

// Deliver records the packet's arrival at an actuator.
func (p Packet) Deliver(at time.Duration) {
	if p.r == nil {
		return
	}
	p.r.counts.Delivered++
	if p.keep {
		p.r.events = append(p.r.events, Event{At: at, Packet: p.id, Kind: Deliver, Node: NoNode, Peer: NoNode})
	}
}

// Drop records the packet's abandonment.
func (p Packet) Drop(at time.Duration) {
	if p.r == nil {
		return
	}
	p.r.counts.Dropped++
	if p.keep {
		p.r.events = append(p.r.events, Event{At: at, Packet: p.id, Kind: Drop, Node: NoNode, Peer: NoNode})
	}
}

// RadioSend counts one unicast radio transmission and its outcome. Called
// by the world on every Send, so it must stay allocation-free.
func (r *Recorder) RadioSend(delivered bool) {
	if r == nil {
		return
	}
	r.counts.RadioSends++
	if delivered {
		r.counts.RadioDelivered++
	} else {
		r.counts.RadioFailed++
	}
}

// RadioBroadcast counts one broadcast (or flood rebroadcast) transmission.
func (r *Recorder) RadioBroadcast() {
	if r == nil {
		return
	}
	r.counts.Broadcasts++
}

// Counts returns a snapshot of the exact aggregate counters.
func (r *Recorder) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	return r.counts
}

// Events returns the stored event log in record order (shared slice;
// callers must not mutate).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Packets returns the number of packets registered so far (sampled or not).
func (r *Recorder) Packets() uint64 {
	if r == nil {
		return 0
	}
	return r.nextPacket
}
