package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder(1)
	p1 := r.PacketInject(10*time.Millisecond, 3)
	p1.Hop(12*time.Millisecond, 3, 7, 1)
	p1.FailoverSwitch(14*time.Millisecond, 7, 1)
	p1.Hop(16*time.Millisecond, 7, 9, 2)
	p1.Deliver(18 * time.Millisecond)

	p2 := r.PacketInject(20*time.Millisecond, 4)
	p2.Drop(25 * time.Millisecond)

	c := r.Counts()
	want := Counts{Injected: 2, Hops: 2, FailoverSwitches: 1, Delivered: 1, Dropped: 1}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
	if c.Injected != c.Delivered+c.Dropped {
		t.Fatalf("unresolved packets: %+v", c)
	}

	evs := r.Events()
	if len(evs) != 7 {
		t.Fatalf("events = %d, want 7", len(evs))
	}
	if evs[0].Kind != Inject || evs[0].Packet != 1 || evs[0].Node != 3 {
		t.Fatalf("first event: %+v", evs[0])
	}
	if evs[3].Kind != Hop || evs[3].Class != 2 || evs[3].Peer != 9 {
		t.Fatalf("second hop: %+v", evs[3])
	}
	if evs[5].Kind != Inject || evs[5].Packet != 2 {
		t.Fatalf("second packet inject: %+v", evs[5])
	}
	if r.Packets() != 2 {
		t.Fatalf("packets = %d", r.Packets())
	}
}

func TestSamplingKeepsCountsExact(t *testing.T) {
	r := NewRecorder(3) // store packets 1, 4, 7, ...
	const n = 10
	for i := 0; i < n; i++ {
		p := r.PacketInject(time.Duration(i), int32(i))
		p.Hop(time.Duration(i), int32(i), int32(i+1), 1)
		if i%2 == 0 {
			p.Deliver(time.Duration(i))
		} else {
			p.Drop(time.Duration(i))
		}
	}
	c := r.Counts()
	if c.Injected != n || c.Hops != n || c.Delivered != 5 || c.Dropped != 5 {
		t.Fatalf("sampled counts drifted: %+v", c)
	}
	// Packets 1, 4, 7, 10 are stored: 4 packets × 3 events each.
	if got := len(r.Events()); got != 12 {
		t.Fatalf("stored events = %d, want 12", got)
	}
	for _, ev := range r.Events() {
		if (ev.Packet-1)%3 != 0 {
			t.Fatalf("unsampled packet %d stored", ev.Packet)
		}
	}
}

func TestSampleEveryCoercion(t *testing.T) {
	r := NewRecorder(0)
	r.PacketInject(0, 1)
	r.PacketInject(0, 2)
	if len(r.Events()) != 2 {
		t.Fatalf("sampleEvery 0 should record everything, got %d events", len(r.Events()))
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	p := r.PacketInject(time.Second, 1)
	if p.Traced() {
		t.Fatal("nil recorder produced a traced packet")
	}
	p.Hop(0, 1, 2, 1)
	p.FailoverSwitch(0, 1, 1)
	p.Deliver(0)
	p.Drop(0)
	r.RadioSend(true)
	r.RadioBroadcast()
	if r.Counts() != (Counts{}) || r.Events() != nil || r.Packets() != 0 {
		t.Fatal("nil recorder accumulated state")
	}

	var zero Packet
	zero.Hop(0, 1, 2, 1)
	zero.Deliver(0)
}

// TestDisabledTraceNoAllocs pins the disabled-trace guarantee: with no
// recorder attached, every tracing call on the forwarding path is a nil
// check and must not allocate.
func TestDisabledTraceNoAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		p := r.PacketInject(time.Second, 5)
		p.Hop(time.Second, 5, 6, 1)
		p.FailoverSwitch(time.Second, 6, 1)
		p.Drop(time.Second)
		p.Deliver(time.Second)
		r.RadioSend(true)
		r.RadioBroadcast()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f times per op, want 0", allocs)
	}
}

func TestRadioCounters(t *testing.T) {
	r := NewRecorder(1)
	r.RadioSend(true)
	r.RadioSend(true)
	r.RadioSend(false)
	r.RadioBroadcast()
	c := r.Counts()
	if c.RadioSends != 3 || c.RadioDelivered != 2 || c.RadioFailed != 1 || c.Broadcasts != 1 {
		t.Fatalf("radio counts: %+v", c)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Injected: 1, Hops: 2, FailoverSwitches: 3, Delivered: 4, Dropped: 5, RadioSends: 6, RadioDelivered: 7, RadioFailed: 8, Broadcasts: 9}
	b := a
	b.Add(a)
	want := Counts{Injected: 2, Hops: 4, FailoverSwitches: 6, Delivered: 8, Dropped: 10, RadioSends: 12, RadioDelivered: 14, RadioFailed: 16, Broadcasts: 18}
	if b != want {
		t.Fatalf("Add: %+v, want %+v", b, want)
	}
}

func TestKindAndEventStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Inject: "inject", Hop: "hop", FailoverSwitch: "failover-switch",
		Drop: "drop", Deliver: "deliver", Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
	hop := Event{At: time.Second, Packet: 7, Kind: Hop, Node: 1, Peer: 2, Class: 3}
	if s := hop.String(); !strings.Contains(s, "hop 1 -> 2") || !strings.Contains(s, "class 3") {
		t.Fatalf("hop string: %q", s)
	}
	fo := Event{Kind: FailoverSwitch, Node: 4, Class: 1}
	if s := fo.String(); !strings.Contains(s, "failover-switch at 4") {
		t.Fatalf("failover string: %q", s)
	}
	inj := Event{Kind: Inject, Node: 9}
	if s := inj.String(); !strings.Contains(s, "inject at 9") {
		t.Fatalf("inject string: %q", s)
	}
	drop := Event{Kind: Drop}
	if s := drop.String(); !strings.Contains(s, "drop") {
		t.Fatalf("drop string: %q", s)
	}
}

func TestPacketIDsDense(t *testing.T) {
	r := NewRecorder(2)
	for i := 1; i <= 5; i++ {
		p := r.PacketInject(0, 0)
		if p.r == nil {
			t.Fatal("live recorder returned inert packet")
		}
		wantKeep := (i-1)%2 == 0
		if p.Traced() != wantKeep {
			t.Fatalf("packet %d sampled = %v, want %v", i, p.Traced(), wantKeep)
		}
	}
	if r.Packets() != 5 {
		t.Fatalf("packets = %d", r.Packets())
	}
}
