// Package can implements the CAN-style DHT upper tier of REFER
// (Section III-B-3): actuators own zones identified by cell IDs (CIDs),
// keep neighbor sets, and route inter-cell messages greedily to the
// neighbor whose CID coordinate is closest to the destination cell.
//
// The paper measures cell distance as "the Euclidean distance between their
// CIDs" and assigns closer CIDs to closer cells; we realize that by using
// the cell centroid as the CID coordinate (a scalar index is kept for
// display, mirroring Figure 1's numbering).
package can

import (
	"fmt"
	"math"
	"sort"

	"refer/internal/geo"
)

// Zone is one cell's entry in the DHT: its scalar CID and its coordinate.
type Zone struct {
	CID   int
	Coord geo.Point
}

// Table is the CAN routing state: the zone set and the zone adjacency
// derived from which actuators can talk to each other. Tables are immutable
// after construction.
type Table struct {
	zones     []Zone
	neighbors map[int][]int
	// centroids indexes zone coordinates by position (item i = zones[i]), so
	// NearestZone is local-density work instead of a scan over every zone.
	// Grid queries are read-only, keeping the table safe for concurrent use.
	centroids *geo.Grid
}

// New builds a table. adjacency[i] lists the CIDs adjacent to zones[i].CID
// (must be symmetric for greedy routing to behave; Validate checks this).
func New(zones []Zone, adjacency map[int][]int) (*Table, error) {
	if len(zones) == 0 {
		return nil, fmt.Errorf("can: no zones")
	}
	byCID := make(map[int]bool, len(zones))
	for _, z := range zones {
		if byCID[z.CID] {
			return nil, fmt.Errorf("can: duplicate CID %d", z.CID)
		}
		byCID[z.CID] = true
	}
	t := &Table{
		zones:     append([]Zone(nil), zones...),
		neighbors: make(map[int][]int, len(adjacency)),
	}
	sort.Slice(t.zones, func(i, j int) bool { return t.zones[i].CID < t.zones[j].CID })
	for cid, nbs := range adjacency {
		if !byCID[cid] {
			return nil, fmt.Errorf("can: adjacency for unknown CID %d", cid)
		}
		for _, nb := range nbs {
			if !byCID[nb] {
				return nil, fmt.Errorf("can: CID %d adjacent to unknown CID %d", cid, nb)
			}
			if nb == cid {
				continue
			}
			t.neighbors[cid] = append(t.neighbors[cid], nb)
		}
		sort.Ints(t.neighbors[cid])
	}
	t.centroids = buildCentroidGrid(t.zones)
	return t, nil
}

// buildCentroidGrid indexes the (CID-sorted) zone coordinates. The cell size
// targets ~one zone per bucket on a uniform spread; any skew only costs scan
// length, never correctness.
func buildCentroidGrid(zones []Zone) *geo.Grid {
	min, max := zones[0].Coord, zones[0].Coord
	for _, z := range zones[1:] {
		if z.Coord.X < min.X {
			min.X = z.Coord.X
		}
		if z.Coord.Y < min.Y {
			min.Y = z.Coord.Y
		}
		if z.Coord.X > max.X {
			max.X = z.Coord.X
		}
		if z.Coord.Y > max.Y {
			max.Y = z.Coord.Y
		}
	}
	extent := max.X - min.X
	if e := max.Y - min.Y; e > extent {
		extent = e
	}
	cell := extent / math.Sqrt(float64(len(zones)))
	if cell <= 0 {
		cell = 1
	}
	g := geo.NewGrid(geo.Rect{Min: min, Max: max}, cell)
	for i, z := range zones {
		g.Insert(i, z.Coord)
	}
	return g
}

// Zones returns the zone set sorted by CID.
func (t *Table) Zones() []Zone {
	return append([]Zone(nil), t.zones...)
}

// Zone returns the zone with the given CID.
func (t *Table) Zone(cid int) (Zone, bool) {
	i := sort.Search(len(t.zones), func(i int) bool { return t.zones[i].CID >= cid })
	if i < len(t.zones) && t.zones[i].CID == cid {
		return t.zones[i], true
	}
	return Zone{}, false
}

// Neighbors returns the CIDs adjacent to cid.
func (t *Table) Neighbors(cid int) []int {
	return append([]int(nil), t.neighbors[cid]...)
}

// NextHop returns the neighbor of from whose coordinate is closest to the
// destination zone's coordinate, provided it improves on from's own
// distance (greedy CAN forwarding). ok is false at the destination or at a
// local minimum (no neighbor makes progress).
func (t *Table) NextHop(from, dest int) (next int, ok bool) {
	if from == dest {
		return 0, false
	}
	dz, found := t.Zone(dest)
	if !found {
		return 0, false
	}
	fz, found := t.Zone(from)
	if !found {
		return 0, false
	}
	best, bestDist := -1, fz.Coord.Dist(dz.Coord)
	for _, nb := range t.neighbors[from] {
		nz, _ := t.Zone(nb)
		if d := nz.Coord.Dist(dz.Coord); d < bestDist {
			best, bestDist = nb, d
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Route returns the full greedy CID route from from to dest, inclusive.
// ok is false when greedy forwarding reaches a local minimum first; Route
// then falls back to BFS over the zone adjacency (RouteBFS) so inter-cell
// delivery still succeeds, and ok reports whether pure greedy sufficed.
func (t *Table) Route(from, dest int) (route []int, greedyOK bool) {
	route = []int{from}
	cur := from
	for cur != dest {
		next, ok := t.NextHop(cur, dest)
		if !ok {
			bfs := t.RouteBFS(cur, dest)
			if bfs == nil {
				return nil, false
			}
			return append(route, bfs[1:]...), false
		}
		route = append(route, next)
		cur = next
		if len(route) > len(t.zones)+1 {
			return nil, false
		}
	}
	return route, true
}

// RouteBFS returns the hop-shortest CID route over the zone adjacency, or
// nil if disconnected.
func (t *Table) RouteBFS(from, dest int) []int {
	if from == dest {
		return []int{from}
	}
	prev := map[int]int{from: from}
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dest {
				var route []int
				for at := dest; ; at = prev[at] {
					route = append(route, at)
					if at == from {
						break
					}
				}
				for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
					route[i], route[j] = route[j], route[i]
				}
				return route
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// NearestZone returns the CID whose coordinate is closest to p. Ties on
// distance resolve to the lowest CID — the answer a strict-< scan over the
// CID-sorted zone slice gives — which the grid reproduces exactly: zones are
// inserted in CID order, and Grid.Nearest breaks exact ties to the lowest
// item index.
func (t *Table) NearestZone(p geo.Point) int {
	return t.zones[t.centroids.Nearest(p, -1)].CID
}

// nearestZoneScan is NearestZone's pre-index linear form, kept as the oracle
// the equivalence property tests compare the grid against.
func (t *Table) nearestZoneScan(p geo.Point) int {
	best, bestDist := t.zones[0].CID, t.zones[0].Coord.Dist(p)
	for _, z := range t.zones[1:] {
		if d := z.Coord.Dist(p); d < bestDist {
			best, bestDist = z.CID, d
		}
	}
	return best
}
