package can

import (
	"math"
	"math/rand"
	"testing"

	"refer/internal/geo"
)

// grid3x3 builds a 3×3 zone lattice with 4-adjacency, CIDs 0..8 laid out
//
//	6 7 8
//	3 4 5
//	0 1 2
func grid3x3(t *testing.T) *Table {
	t.Helper()
	var zones []Zone
	adj := make(map[int][]int)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			cid := y*3 + x
			zones = append(zones, Zone{CID: cid, Coord: geo.Point{X: float64(x) * 100, Y: float64(y) * 100}})
			if x > 0 {
				adj[cid] = append(adj[cid], cid-1)
				adj[cid-1] = append(adj[cid-1], cid)
			}
			if y > 0 {
				adj[cid] = append(adj[cid], cid-3)
				adj[cid-3] = append(adj[cid-3], cid)
			}
		}
	}
	table, err := New(zones, adj)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty zone set should fail")
	}
	zones := []Zone{{CID: 1}, {CID: 1}}
	if _, err := New(zones, nil); err == nil {
		t.Error("duplicate CID should fail")
	}
	if _, err := New([]Zone{{CID: 1}}, map[int][]int{2: {1}}); err == nil {
		t.Error("adjacency for unknown CID should fail")
	}
	if _, err := New([]Zone{{CID: 1}}, map[int][]int{1: {9}}); err == nil {
		t.Error("adjacency to unknown CID should fail")
	}
}

func TestZoneLookup(t *testing.T) {
	table := grid3x3(t)
	z, ok := table.Zone(4)
	if !ok || z.Coord != (geo.Point{X: 100, Y: 100}) {
		t.Fatalf("Zone(4) = %+v ok=%v", z, ok)
	}
	if _, ok := table.Zone(99); ok {
		t.Fatal("Zone(99) should not exist")
	}
	if got := len(table.Zones()); got != 9 {
		t.Fatalf("Zones len = %d", got)
	}
}

func TestNeighbors(t *testing.T) {
	table := grid3x3(t)
	got := table.Neighbors(4)
	want := []int{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(4) = %v, want %v", got, want)
		}
	}
	// Corner zone.
	if got := table.Neighbors(0); len(got) != 2 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
}

func TestNextHopGreedy(t *testing.T) {
	table := grid3x3(t)
	next, ok := table.NextHop(0, 8)
	if !ok {
		t.Fatal("NextHop(0,8) should make progress")
	}
	if next != 1 && next != 3 {
		t.Fatalf("NextHop(0,8) = %d, want 1 or 3", next)
	}
	if _, ok := table.NextHop(8, 8); ok {
		t.Fatal("NextHop at destination should report no hop")
	}
	if _, ok := table.NextHop(0, 99); ok {
		t.Fatal("NextHop to unknown zone should report no hop")
	}
	if _, ok := table.NextHop(99, 0); ok {
		t.Fatal("NextHop from unknown zone should report no hop")
	}
}

func TestRouteGreedy(t *testing.T) {
	table := grid3x3(t)
	route, greedy := table.Route(0, 8)
	if !greedy {
		t.Fatal("lattice route should be purely greedy")
	}
	if len(route) != 5 || route[0] != 0 || route[len(route)-1] != 8 {
		t.Fatalf("route = %v, want 5 zones from 0 to 8", route)
	}
	// Every consecutive pair must be adjacent.
	for i := 0; i+1 < len(route); i++ {
		adjacent := false
		for _, nb := range table.Neighbors(route[i]) {
			if nb == route[i+1] {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("route %v has non-adjacent hop %d→%d", route, route[i], route[i+1])
		}
	}
}

func TestRouteSelf(t *testing.T) {
	table := grid3x3(t)
	route, greedy := table.Route(4, 4)
	if !greedy || len(route) != 1 || route[0] != 4 {
		t.Fatalf("Route(4,4) = %v, %v", route, greedy)
	}
}

func TestRouteFallsBackToBFS(t *testing.T) {
	// A concave layout where greedy gets stuck: target is geographically
	// closest to a zone that is not connected toward it.
	zones := []Zone{
		{CID: 0, Coord: geo.Point{X: 0, Y: 0}},
		{CID: 1, Coord: geo.Point{X: 100, Y: 0}},  // geographically nearest to 3
		{CID: 2, Coord: geo.Point{X: 0, Y: 300}},  // detour
		{CID: 3, Coord: geo.Point{X: 120, Y: 10}}, // destination
	}
	adj := map[int][]int{
		0: {1, 2},
		1: {0},
		2: {0, 3},
		3: {2},
	}
	table, err := New(zones, adj)
	if err != nil {
		t.Fatal(err)
	}
	route, greedy := table.Route(1, 3)
	if greedy {
		t.Fatal("greedy should have hit a local minimum")
	}
	want := []int{1, 0, 2, 3}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestRouteDisconnected(t *testing.T) {
	zones := []Zone{{CID: 0}, {CID: 1, Coord: geo.Point{X: 100}}}
	table, err := New(zones, map[int][]int{})
	if err != nil {
		t.Fatal(err)
	}
	if route, _ := table.Route(0, 1); route != nil {
		t.Fatalf("route across disconnected zones = %v, want nil", route)
	}
	if got := table.RouteBFS(0, 1); got != nil {
		t.Fatalf("RouteBFS = %v, want nil", got)
	}
}

func TestRouteBFSSelf(t *testing.T) {
	table := grid3x3(t)
	if got := table.RouteBFS(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("RouteBFS(2,2) = %v", got)
	}
}

func TestNearestZone(t *testing.T) {
	table := grid3x3(t)
	if got := table.NearestZone(geo.Point{X: 95, Y: 105}); got != 4 {
		t.Fatalf("NearestZone = %d, want 4", got)
	}
	if got := table.NearestZone(geo.Point{X: -50, Y: -50}); got != 0 {
		t.Fatalf("NearestZone = %d, want 0", got)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	zones := []Zone{{CID: 0}, {CID: 1, Coord: geo.Point{X: 10}}}
	table, err := New(zones, map[int][]int{0: {0, 1}, 1: {0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors(0) = %v, self-loop not ignored", got)
	}
}

// TestNearestZoneMatchesScan pins the centroid grid to the linear strict-<
// scan it replaced, including exact-distance ties (which resolve to the
// lowest CID) and far-outside query points.
func TestNearestZoneMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		side := 50 + rng.Float64()*950
		zones := make([]Zone, n)
		adjacency := map[int][]int{}
		for i := range zones {
			// Snapped coordinates manufacture frequent exact ties; CIDs are
			// assigned descending so sorted order differs from input order.
			zones[i] = Zone{
				CID: n - i,
				Coord: geo.Point{
					X: math.Round(rng.Float64()*side/25) * 25,
					Y: math.Round(rng.Float64()*side/25) * 25,
				},
			}
		}
		table, err := New(zones, adjacency)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 200; q++ {
			p := geo.Point{
				X: (rng.Float64()*1.6 - 0.3) * side,
				Y: (rng.Float64()*1.6 - 0.3) * side,
			}
			if rng.Intn(2) == 0 {
				// Exactly on a lattice point: maximally tie-prone.
				p = geo.Point{
					X: math.Round(p.X/25) * 25,
					Y: math.Round(p.Y/25) * 25,
				}
			}
			if got, want := table.NearestZone(p), table.nearestZoneScan(p); got != want {
				t.Fatalf("trial %d: NearestZone(%v) = %d, scan = %d", trial, p, got, want)
			}
		}
	}
}
