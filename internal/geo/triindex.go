package geo

import "math"

// PointInTriangle reports whether p lies inside triangle abc, boundary
// inclusive (the sign test the REFER cells use for membership; contrast
// pointInTriangleStrict, which the triangulation's overlap test uses).
func PointInTriangle(p, a, b, c Point) bool {
	d1 := cross(a, b, p)
	d2 := cross(b, c, p)
	d3 := cross(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

// DistToSegment returns the Euclidean distance from p to segment ab.
func DistToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	proj := a.Add(ab.X*t, ab.Y*t)
	return p.Dist(proj)
}

// DistToTriangle returns how far p lies outside triangle abc (0 if inside,
// boundary inclusive).
func DistToTriangle(p, a, b, c Point) float64 {
	if PointInTriangle(p, a, b, c) {
		return 0
	}
	dist := DistToSegment(p, a, b)
	if e := DistToSegment(p, b, c); e < dist {
		dist = e
	}
	if e := DistToSegment(p, c, a); e < dist {
		dist = e
	}
	return dist
}

// TriIndex answers point-location queries over a fixed set of triangles (the
// REFER cells) in time proportional to the local triangle density rather
// than the triangle count: which triangle contains a point, and which
// triangle is nearest within a margin. Triangles never move after
// construction — REFER cell vertices are fixed at build time — so the index
// is built once and read forever.
//
// Both queries are drop-in replacements for a linear scan in ascending
// triangle order: Containing returns the FIRST containing triangle and
// NearestWithin keeps the LAST triangle at equal minimal distance (the
// `d <= best` update rule), exactly matching the loops they replace, so an
// indexed caller is byte-identical to a scanning one. Queries share scratch
// buffers; a TriIndex must not be used from multiple goroutines. Concurrent
// readers each take a Cursor instead: the triangle and bucket data are
// immutable after construction, so any number of cursors may query in
// parallel, each over its own scratch.
type TriIndex struct {
	tris   [][3]Point
	region Rect
	cell   float64
	cols   int
	rows   int
	// buckets[row*cols+col] holds, in ascending order, every triangle whose
	// bounding box overlaps the bucket.
	buckets [][]int32

	// The index's own query state, used by the Containing/NearestWithin
	// methods (the single-goroutine interface).
	triQueryState
}

// triQueryState is the mutable per-querier part of a TriIndex: scratch
// buffers and the work counter. The TriIndex embeds one for its own methods;
// every Cursor carries another, which is what makes cursor queries safe to
// run concurrently over the shared immutable buckets.
type triQueryState struct {
	// stamp[i] == gen marks triangle i as already collected in the current
	// NearestWithin query.
	stamp   []uint32
	gen     uint32
	scratch []int32
	// checks counts triangle predicate evaluations across all queries — the
	// index's work, comparable against a linear scan's cells-per-query.
	checks uint64
}

// NewTriIndex builds an index over tris. The bucket size is derived from
// the mean triangle bounding-box extent, so a query for a point touches a
// handful of triangles regardless of how many the region holds.
func NewTriIndex(tris [][3]Point) *TriIndex {
	idx := &TriIndex{tris: tris}
	if len(tris) == 0 {
		idx.cols, idx.rows = 1, 1
		idx.cell = 1
		idx.buckets = make([][]int32, 1)
		return idx
	}
	min := tris[0][0]
	max := tris[0][0]
	meanExtent := 0.0
	for _, t := range tris {
		lo, hi := triBounds(t)
		if lo.X < min.X {
			min.X = lo.X
		}
		if lo.Y < min.Y {
			min.Y = lo.Y
		}
		if hi.X > max.X {
			max.X = hi.X
		}
		if hi.Y > max.Y {
			max.Y = hi.Y
		}
		meanExtent += math.Max(hi.X-lo.X, hi.Y-lo.Y)
	}
	meanExtent /= float64(len(tris))
	if meanExtent <= 0 {
		meanExtent = 1
	}
	idx.region = Rect{Min: min, Max: max}
	idx.cell = meanExtent
	idx.cols = int(math.Ceil(idx.region.Width()/idx.cell)) + 1
	idx.rows = int(math.Ceil(idx.region.Height()/idx.cell)) + 1
	idx.buckets = make([][]int32, idx.cols*idx.rows)
	for i, t := range tris {
		lo, hi := triBounds(t)
		minCol, minRow := idx.cellCoords(lo)
		maxCol, maxRow := idx.cellCoords(hi)
		for row := minRow; row <= maxRow; row++ {
			for col := minCol; col <= maxCol; col++ {
				b := row*idx.cols + col
				idx.buckets[b] = append(idx.buckets[b], int32(i))
			}
		}
	}
	idx.stamp = make([]uint32, len(tris))
	return idx
}

func triBounds(t [3]Point) (lo, hi Point) {
	lo, hi = t[0], t[0]
	for _, v := range t[1:] {
		if v.X < lo.X {
			lo.X = v.X
		}
		if v.Y < lo.Y {
			lo.Y = v.Y
		}
		if v.X > hi.X {
			hi.X = v.X
		}
		if v.Y > hi.Y {
			hi.Y = v.Y
		}
	}
	return lo, hi
}

// cellCoords returns p's bucket coordinates clamped into the grid.
func (idx *TriIndex) cellCoords(p Point) (col, row int) {
	col = int((p.X - idx.region.Min.X) / idx.cell)
	row = int((p.Y - idx.region.Min.Y) / idx.cell)
	if col < 0 {
		col = 0
	}
	if col >= idx.cols {
		col = idx.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= idx.rows {
		row = idx.rows - 1
	}
	return col, row
}

// Containing returns the lowest index of a triangle containing p (boundary
// inclusive), or -1 — the same answer as scanning all triangles in order
// and stopping at the first hit. Any containing triangle's bounding box
// covers p, so only p's bucket needs scanning; bucket contents are kept in
// ascending index order, preserving the first-hit tie-break.
func (idx *TriIndex) Containing(p Point) int {
	return idx.containing(p, &idx.triQueryState)
}

func (idx *TriIndex) containing(p Point, st *triQueryState) int {
	if len(idx.tris) == 0 || !idx.region.Contains(p) {
		return -1
	}
	col, row := idx.cellCoords(p)
	for _, ti := range idx.buckets[row*idx.cols+col] {
		st.checks++
		t := idx.tris[ti]
		if PointInTriangle(p, t[0], t[1], t[2]) {
			return int(ti)
		}
	}
	return -1
}

// NearestWithin returns the index of the triangle nearest to p among those
// within margin of it, or -1. Ties on the minimal distance resolve to the
// HIGHEST triangle index — the result of scanning all triangles in order
// with a `d <= best` update — because that is the rule the linear membership
// scan it replaces used. A triangle within margin of p has its bounding box
// intersecting the margin-square around p, so the candidate set drawn from
// those buckets is exhaustive; candidates are deduplicated, sorted
// ascending, and then judged by exactly the linear scan's comparison.
func (idx *TriIndex) NearestWithin(p Point, margin float64) int {
	return idx.nearestWithin(p, margin, &idx.triQueryState)
}

func (idx *TriIndex) nearestWithin(p Point, margin float64, st *triQueryState) int {
	if len(idx.tris) == 0 {
		return -1
	}
	lo := Point{X: p.X - margin, Y: p.Y - margin}
	hi := Point{X: p.X + margin, Y: p.Y + margin}
	if hi.X < idx.region.Min.X || lo.X > idx.region.Max.X ||
		hi.Y < idx.region.Min.Y || lo.Y > idx.region.Max.Y {
		return -1
	}
	minCol, minRow := idx.cellCoords(lo)
	maxCol, maxRow := idx.cellCoords(hi)
	st.gen++
	cand := st.scratch[:0]
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			for _, ti := range idx.buckets[row*idx.cols+col] {
				if st.stamp[ti] == st.gen {
					continue
				}
				st.stamp[ti] = st.gen
				cand = append(cand, ti)
			}
		}
	}
	// Ascending index order replays the linear scan exactly; insertion sort
	// keeps the query allocation-free (candidate sets are small).
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	st.scratch = cand
	best := -1
	bestDist := margin
	for _, ti := range cand {
		st.checks++
		t := idx.tris[ti]
		if d := DistToTriangle(p, t[0], t[1], t[2]); d <= bestDist {
			best, bestDist = int(ti), d
		}
	}
	return best
}

// Len returns the number of indexed triangles.
func (idx *TriIndex) Len() int { return len(idx.tris) }

// Checks returns the total triangle predicate evaluations performed across
// all queries since construction through the index's own methods (monotone;
// the index's work counter). Queries made through cursors count into each
// cursor instead — see TriCursor.TakeChecks.
func (idx *TriIndex) Checks() uint64 { return idx.checks }

// TriCursor is a private query handle over a shared TriIndex. The index's
// triangle and bucket data are immutable after construction; all query-time
// mutation (dedup stamps, candidate scratch, the work counter) lives in the
// cursor, so any number of goroutines may query the same index concurrently
// as long as each uses its own cursor. A cursor itself is single-goroutine,
// and answers are bit-identical to the index's own methods.
type TriCursor struct {
	idx *TriIndex
	st  triQueryState
}

// Cursor returns a new private query handle over the index.
func (idx *TriIndex) Cursor() *TriCursor {
	return &TriCursor{idx: idx, st: triQueryState{stamp: make([]uint32, len(idx.tris))}}
}

// Containing is TriIndex.Containing over the cursor's private scratch.
func (c *TriCursor) Containing(p Point) int { return c.idx.containing(p, &c.st) }

// NearestWithin is TriIndex.NearestWithin over the cursor's private scratch.
func (c *TriCursor) NearestWithin(p Point, margin float64) int {
	return c.idx.nearestWithin(p, margin, &c.st)
}

// TakeChecks returns the predicate evaluations counted by this cursor since
// the last call and resets the counter, so a coordinator can fold per-worker
// work into a global counter between parallel phases.
func (c *TriCursor) TakeChecks() uint64 {
	n := c.st.checks
	c.st.checks = 0
	return n
}
