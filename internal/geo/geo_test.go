package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{X: 3, Y: 4}
	q := Point{}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %f, want 5", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %f, want 5", got)
	}
	if got := p.Add(1, -1); got != (Point{X: 4, Y: 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Point{X: 1, Y: 1}); got != (Point{X: 2, Y: 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{X: 6, Y: 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.String(); got != "(3.0,4.0)" {
		t.Errorf("String = %q", got)
	}
}

func TestLerp(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 10, Y: 20}
	tests := []struct {
		t    float64
		want Point
	}{
		{t: 0, want: a},
		{t: 1, want: b},
		{t: 0.5, want: Point{X: 5, Y: 10}},
		{t: -0.5, want: a}, // clamped
		{t: 1.5, want: b},  // clamped
	}
	for _, tt := range tests {
		if got := a.Lerp(b, tt.t); got != tt.want {
			t.Errorf("Lerp(%f) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestRect(t *testing.T) {
	r := Square(500)
	if r.Width() != 500 || r.Height() != 500 {
		t.Fatalf("Square(500) = %+v", r)
	}
	if !r.Contains(Point{X: 250, Y: 250}) {
		t.Error("center not contained")
	}
	if r.Contains(Point{X: -1, Y: 0}) {
		t.Error("outside point contained")
	}
	if got := r.Clamp(Point{X: -10, Y: 600}); got != (Point{X: 0, Y: 500}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Center(); got != (Point{X: 250, Y: 250}) {
		t.Errorf("Center = %v", got)
	}
}

func TestRandomPointStaysInside(t *testing.T) {
	r := Square(500)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := r.RandomPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("RandomPoint %v outside region", p)
		}
	}
}

func TestRandomPointNear(t *testing.T) {
	r := Square(500)
	rng := rand.New(rand.NewSource(2))
	center := Point{X: 100, Y: 100}
	const radius = 50.0
	for i := 0; i < 1000; i++ {
		p := r.RandomPointNear(rng, center, radius)
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
		if d := p.Dist(center); d > radius+1e-9 {
			t.Fatalf("point %v at distance %f > radius", p, d)
		}
	}
	// Center in a corner: rejection sampling must still return in-region points.
	corner := Point{X: 0, Y: 0}
	for i := 0; i < 100; i++ {
		p := r.RandomPointNear(rng, corner, 10)
		if !r.Contains(p) {
			t.Fatalf("corner sample %v outside region", p)
		}
	}
	// Degenerate: center far outside with tiny radius falls back to clamp.
	p := r.RandomPointNear(rng, Point{X: -1000, Y: -1000}, 1)
	if !r.Contains(p) {
		t.Fatalf("fallback %v outside region", p)
	}
}

func TestHamiltonianPrecondition(t *testing.T) {
	// Proposition 3.2: r ≥ 0.8·b.
	if !SatisfiesHamiltonianPrecondition(100, 120) {
		t.Error("r=100 b=120 should satisfy (0.8·120 = 96)")
	}
	if SatisfiesHamiltonianPrecondition(100, 130) {
		t.Error("r=100 b=130 should fail (0.8·130 = 104)")
	}
	if got := MaxCellSide(100); math.Abs(got-125) > 1e-9 {
		t.Errorf("MaxCellSide(100) = %f, want 125", got)
	}
	// The 0.8 constant approximates b ≤ (√(2π)/2)·r from Eq. (1), i.e.
	// r ≥ b/(√(2π)/2) ≈ 0.7979·b.
	exact := 2 / math.Sqrt(2*math.Pi)
	if math.Abs(HamiltonianRangeFactor-exact) > 0.005 {
		t.Errorf("0.8 should approximate %f", exact)
	}
}

func TestGridWithin(t *testing.T) {
	r := Square(100)
	g := NewGrid(r, 10)
	pts := []Point{
		{X: 5, Y: 5},
		{X: 8, Y: 5},
		{X: 50, Y: 50},
		{X: 95, Y: 95},
		{X: 5, Y: 9},
	}
	for i, p := range pts {
		g.Insert(i, p)
	}
	if g.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(pts))
	}
	got := g.Within(nil, Point{X: 5, Y: 5}, 5, -1)
	want := map[int]bool{0: true, 1: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want indices %v", got, want)
	}
	for _, idx := range got {
		if !want[idx] {
			t.Errorf("unexpected index %d in result", idx)
		}
	}
	// Exclusion.
	got = g.Within(nil, Point{X: 5, Y: 5}, 5, 0)
	for _, idx := range got {
		if idx == 0 {
			t.Error("excluded index returned")
		}
	}
	// Radius 0 returns only exact matches.
	got = g.Within(nil, Point{X: 50, Y: 50}, 0, -1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("radius-0 query = %v, want [2]", got)
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	r := Square(500)
	rng := rand.New(rand.NewSource(7))
	g := NewGrid(r, 50)
	const n = 300
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = r.RandomPoint(rng)
		g.Insert(i, pts[i])
	}
	for trial := 0; trial < 50; trial++ {
		q := r.RandomPoint(rng)
		radius := rng.Float64() * 150
		got := g.Within(nil, q, radius, -1)
		gotSet := make(map[int]bool, len(got))
		for _, idx := range got {
			gotSet[idx] = true
		}
		for i, p := range pts {
			inRange := p.Dist(q) <= radius
			if inRange != gotSet[i] {
				t.Fatalf("trial %d: index %d inRange=%v gridHit=%v", trial, i, inRange, gotSet[i])
			}
		}
	}
}

func TestGridNearest(t *testing.T) {
	r := Square(100)
	g := NewGrid(r, 10)
	g.Insert(0, Point{X: 10, Y: 10})
	g.Insert(1, Point{X: 90, Y: 90})
	if got := g.Nearest(Point{X: 0, Y: 0}, -1); got != 0 {
		t.Errorf("Nearest = %d, want 0", got)
	}
	if got := g.Nearest(Point{X: 0, Y: 0}, 0); got != 1 {
		t.Errorf("Nearest excluding 0 = %d, want 1", got)
	}
	empty := NewGrid(r, 10)
	if got := empty.Nearest(Point{}, -1); got != -1 {
		t.Errorf("Nearest on empty = %d, want -1", got)
	}
}

func TestGridPositionRoundTrip(t *testing.T) {
	g := NewGrid(Square(10), 1)
	p := Point{X: 3.5, Y: 7.25}
	g.Insert(0, p)
	if got := g.Position(0); got != p {
		t.Errorf("Position = %v, want %v", got, p)
	}
}

func TestGridDegenerateCellSize(t *testing.T) {
	g := NewGrid(Square(10), -5) // coerced to a sane default
	g.Insert(0, Point{X: 5, Y: 5})
	if got := g.Within(nil, Point{X: 5, Y: 5}, 1, -1); len(got) != 1 {
		t.Fatalf("degenerate grid Within = %v", got)
	}
}

func TestQuickLerpBounded(t *testing.T) {
	f := func(ax, ay, bx, by, tt float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) || math.IsNaN(tt) {
			return true
		}
		a := Point{X: math.Mod(ax, 1000), Y: math.Mod(ay, 1000)}
		b := Point{X: math.Mod(bx, 1000), Y: math.Mod(by, 1000)}
		frac := math.Abs(math.Mod(tt, 1))
		p := a.Lerp(b, frac)
		// The interpolated point can be no farther from a than b is, and no
		// farther from b than a is (within float tolerance).
		return p.Dist(a) <= a.Dist(b)+1e-6 && p.Dist(b) <= a.Dist(b)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulateSquareLayout(t *testing.T) {
	// Four corners + center, everyone adjacent: classic 4-cell layout of
	// the paper's default scenario (5 actuators → 4 cells).
	pts := []Point{
		{X: 0, Y: 0},
		{X: 500, Y: 0},
		{X: 500, Y: 500},
		{X: 0, Y: 500},
		{X: 250, Y: 250},
	}
	adj := completeAdjacency(len(pts))
	tris, err := Triangulate(pts, adj)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 4 {
		t.Fatalf("got %d triangles, want 4: %v", len(tris), tris)
	}
	// Every triangle should include the center (index 4) in this layout.
	for _, tri := range tris {
		vs := tri.Vertices()
		if vs[0] != 4 && vs[1] != 4 && vs[2] != 4 {
			t.Errorf("triangle %v does not include the center actuator", tri)
		}
	}
}

func TestTriangulateRespectsAdjacency(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 80}}
	// No edges at all → no triangles.
	adj := make([][]int, 3)
	if _, err := Triangulate(pts, adj); err == nil {
		t.Fatal("expected error with empty adjacency")
	}
	adj = completeAdjacency(3)
	tris, err := Triangulate(pts, adj)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 {
		t.Fatalf("got %v, want single triangle", tris)
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate([]Point{{X: 0, Y: 0}}, [][]int{{}}); err == nil {
		t.Error("expected error for < 3 points")
	}
	// Collinear triple: no valid triangle.
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, err := Triangulate(pts, completeAdjacency(3)); err == nil {
		t.Error("expected error for collinear points")
	}
}

func TestTriangulateNonOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := Square(500)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(5)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = r.RandomPoint(rng)
		}
		tris, err := Triangulate(pts, completeAdjacency(n))
		if err != nil {
			continue // fully collinear layouts are acceptable failures
		}
		for i := 0; i < len(tris); i++ {
			for j := i + 1; j < len(tris); j++ {
				if trianglesOverlap(tris[i], tris[j], pts) {
					t.Fatalf("trial %d: triangles %v and %v overlap", trial, tris[i], tris[j])
				}
			}
		}
	}
}

func TestTriangleCentroid(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}}
	tri := Triangle{A: 0, B: 1, C: 2}
	if got := tri.Centroid(pts); got != (Point{X: 1, Y: 1}) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func completeAdjacency(n int) [][]int {
	adj := make([][]int, n)
	for i := range adj {
		for j := 0; j < n; j++ {
			if j != i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}
