package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// TestGridNearestExactTie pins the documented tie rule: an exact distance
// tie resolves to the lowest index, even when the spiral visits the
// higher-index item first. The two points are 10 m on either side of the
// query, in different buckets, and the higher index sits in the bucket the
// ring scan reaches first.
func TestGridNearestExactTie(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(0, Point{X: 65, Y: 55}) // visited second by the ring scan
	g.Insert(1, Point{X: 45, Y: 55}) // visited first
	if got := g.Nearest(Point{X: 55, Y: 55}, -1); got != 0 {
		t.Fatalf("Nearest tie = %d, want lowest index 0", got)
	}
	// Excluding the winner hands the tie to the other point.
	if got := g.Nearest(Point{X: 55, Y: 55}, 0); got != 1 {
		t.Fatalf("Nearest tie with 0 excluded = %d, want 1", got)
	}
}

// TestGridNearestMatchesBruteForce checks the spiral search against a
// linear scan (with the same lowest-index tie rule) over random point sets,
// including query points outside the region.
func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	region := Square(300)
	for trial := 0; trial < 50; trial++ {
		g := NewGrid(region, 25)
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = region.RandomPoint(rng)
			g.Insert(i, pts[i])
		}
		for q := 0; q < 20; q++ {
			p := Point{X: rng.Float64()*400 - 50, Y: rng.Float64()*400 - 50}
			exclude := -1
			if q%3 == 0 {
				exclude = rng.Intn(n)
			}
			want, wantDist := -1, 0.0
			for i, pt := range pts {
				if i == exclude {
					continue
				}
				if d := p.Dist(pt); want == -1 || d < wantDist {
					want, wantDist = i, d
				}
			}
			if got := g.Nearest(p, exclude); got != want {
				t.Fatalf("trial %d: Nearest(%v, %d) = %d, want %d", trial, p, exclude, got, want)
			}
		}
	}
}

// TestGridResetReuseMatchesFresh is the reuse property test: Reset+Insert
// on a recycled grid must produce identical Within results — membership and
// order — to a freshly allocated grid, across random point sets.
func TestGridResetReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	region := Square(500)
	reused := NewGrid(region, 50)
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = region.RandomPoint(rng)
		}
		fresh := NewGrid(region, 50)
		reused.Reset()
		for i, p := range pts {
			fresh.Insert(i, p)
			reused.Insert(i, p)
		}
		if fresh.Len() != reused.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, fresh.Len(), reused.Len())
		}
		for q := 0; q < 10; q++ {
			p := region.RandomPoint(rng)
			radius := 20 + rng.Float64()*150
			a := fresh.Within(nil, p, radius, -1)
			b := reused.Within(nil, p, radius, -1)
			if len(a) != len(b) {
				t.Fatalf("trial %d: Within lengths %d vs %d", trial, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: Within[%d] = %d (fresh) vs %d (reused)", trial, i, a[i], b[i])
				}
			}
		}
	}
}

// TestGridMoveMatchesRebuild checks incremental Move against a full rebuild:
// after a burst of random moves, Within must return the same membership as
// a grid freshly built from the final positions (order may legitimately
// differ, so sets are compared sorted), and Position must track the moves.
func TestGridMoveMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	region := Square(400)
	g := NewGrid(region, 40)
	n := 80
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = region.RandomPoint(rng)
		g.Insert(i, pts[i])
	}
	for round := 0; round < 30; round++ {
		for m := 0; m < 10; m++ {
			i := rng.Intn(n)
			pts[i] = region.RandomPoint(rng)
			g.Move(i, pts[i])
		}
		fresh := NewGrid(region, 40)
		for i, p := range pts {
			fresh.Insert(i, p)
		}
		p := region.RandomPoint(rng)
		radius := 30 + rng.Float64()*120
		a := fresh.Within(nil, p, radius, -1)
		b := g.Within(nil, p, radius, -1)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("round %d: memberships %v vs %v", round, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: memberships %v vs %v", round, a, b)
			}
		}
		i := rng.Intn(n)
		if g.Position(i) != pts[i] {
			t.Fatalf("round %d: Position(%d) = %v, want %v", round, i, g.Position(i), pts[i])
		}
	}
}

// TestGridCellKeyOrdersLikeWithin checks the CellKey contract: sorting the
// items of a Within result by (CellKey, index) leaves it unchanged, because
// Within already returns bucket-major, insertion-ordered results.
func TestGridCellKeyOrdersLikeWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	region := Square(500)
	g := NewGrid(region, 50)
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = region.RandomPoint(rng)
		g.Insert(i, pts[i])
	}
	for q := 0; q < 25; q++ {
		p := region.RandomPoint(rng)
		got := g.Within(nil, p, 120, -1)
		resorted := append([]int(nil), got...)
		sort.SliceStable(resorted, func(a, b int) bool {
			ka, kb := g.CellKey(pts[resorted[a]]), g.CellKey(pts[resorted[b]])
			if ka != kb {
				return ka < kb
			}
			return resorted[a] < resorted[b]
		})
		for i := range got {
			if got[i] != resorted[i] {
				t.Fatalf("query %d: Within order %v != (CellKey, index) order %v", q, got, resorted)
			}
		}
	}
}
