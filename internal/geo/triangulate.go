package geo

import (
	"fmt"
	"sort"
)

// Triangle is an actuator triple that bounds one REFER cell, identified by
// the indices of its three corner actuators.
type Triangle struct {
	A, B, C int
}

// canon returns the triangle with sorted vertex indices.
func (t Triangle) canon() Triangle {
	a, b, c := t.A, t.B, t.C
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{A: a, B: b, C: c}
}

// Vertices returns the three corner indices.
func (t Triangle) Vertices() [3]int { return [3]int{t.A, t.B, t.C} }

// Centroid returns the triangle centroid given the vertex positions.
func (t Triangle) Centroid(pts []Point) Point {
	a, b, c := pts[t.A], pts[t.B], pts[t.C]
	return Point{X: (a.X + b.X + c.X) / 3, Y: (a.Y + b.Y + c.Y) / 3}
}

// Triangulate partitions the actuator layer into triangles (REFER cells,
// Section III-B-1: the starting server "locally partitions the global
// topology to a series of triangles"). Input is the actuator positions and
// the communication graph adjacency (adj[i] lists the indices of actuators
// within radio range of i). Only triangles whose three corners are mutually
// adjacent qualify — the cell's actuators must talk directly.
//
// The partition greedily accepts non-overlapping triangles (no two kept
// triangles' interiors intersect), preferring small-perimeter (physically
// tight) ones, which yields the planar-subdivision-like cell layout the
// paper sketches in Figure 1. Results are deterministic for a given input.
func Triangulate(pts []Point, adj [][]int) ([]Triangle, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("geo: need at least 3 actuators, have %d", n)
	}
	neighbor := make([]map[int]bool, n)
	for i := range neighbor {
		neighbor[i] = make(map[int]bool, len(adj[i]))
		for _, j := range adj[i] {
			neighbor[i][j] = true
		}
	}
	var candidates []Triangle
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !neighbor[a][b] {
				continue
			}
			for c := b + 1; c < n; c++ {
				if neighbor[a][c] && neighbor[b][c] && !collinear(pts[a], pts[b], pts[c]) {
					candidates = append(candidates, Triangle{A: a, B: b, C: c})
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("geo: actuator graph contains no triangle")
	}
	sort.Slice(candidates, func(i, j int) bool {
		pi, pj := perimeter(candidates[i], pts), perimeter(candidates[j], pts)
		if pi != pj {
			return pi < pj
		}
		return less3(candidates[i], candidates[j])
	})
	var kept []Triangle
	for _, cand := range candidates {
		ok := true
		for _, k := range kept {
			if trianglesOverlap(cand, k, pts) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, cand.canon())
		}
	}
	sort.Slice(kept, func(i, j int) bool { return less3(kept[i], kept[j]) })
	return kept, nil
}

func less3(a, b Triangle) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.C < b.C
}

func perimeter(t Triangle, pts []Point) float64 {
	return pts[t.A].Dist(pts[t.B]) + pts[t.B].Dist(pts[t.C]) + pts[t.C].Dist(pts[t.A])
}

func collinear(a, b, c Point) bool {
	return cross(a, b, c) == 0
}

func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// trianglesOverlap reports whether the interiors of two triangles intersect.
// Sharing an edge or vertex does not count as overlap.
func trianglesOverlap(t1, t2 Triangle, pts []Point) bool {
	a := [3]Point{pts[t1.A], pts[t1.B], pts[t1.C]}
	b := [3]Point{pts[t2.A], pts[t2.B], pts[t2.C]}
	// Interior point containment.
	if pointInTriangleStrict(a[0], b) || pointInTriangleStrict(a[1], b) || pointInTriangleStrict(a[2], b) {
		return true
	}
	if pointInTriangleStrict(b[0], a) || pointInTriangleStrict(b[1], a) || pointInTriangleStrict(b[2], a) {
		return true
	}
	if pointInTriangleStrict(centroid(a), b) || pointInTriangleStrict(centroid(b), a) {
		return true
	}
	// Proper edge crossings.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if segmentsCrossStrict(a[i], a[(i+1)%3], b[j], b[(j+1)%3]) {
				return true
			}
		}
	}
	return false
}

func centroid(t [3]Point) Point {
	return Point{X: (t[0].X + t[1].X + t[2].X) / 3, Y: (t[0].Y + t[1].Y + t[2].Y) / 3}
}

// pointInTriangleStrict reports whether p lies strictly inside triangle t.
func pointInTriangleStrict(p Point, t [3]Point) bool {
	d1 := cross(t[0], t[1], p)
	d2 := cross(t[1], t[2], p)
	d3 := cross(t[2], t[0], p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	if hasNeg && hasPos {
		return false
	}
	// On an edge (some cross product zero) does not count as inside.
	return d1 != 0 && d2 != 0 && d3 != 0
}

// segmentsCrossStrict reports whether segments ab and cd cross at a point
// interior to both.
func segmentsCrossStrict(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}
