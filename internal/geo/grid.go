package geo

import "math"

// Grid is a spatial hash over a rectangular region that answers "which
// items lie within range ρ of point p" in time proportional to the local
// density rather than the population. The simulator rebuilds it whenever
// node positions advance, so construction is allocation-conscious.
type Grid struct {
	region Rect
	cell   float64
	cols   int
	rows   int
	// buckets[row*cols+col] holds item indices.
	buckets [][]int
	points  []Point
}

// NewGrid builds a grid over region with the given cell size. Items are
// registered with Insert. Cell size should be on the order of the query
// radius for best performance.
func NewGrid(region Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(math.Ceil(region.Width()/cellSize)) + 1
	rows := int(math.Ceil(region.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		region:  region,
		cell:    cellSize,
		cols:    cols,
		rows:    rows,
		buckets: make([][]int, cols*rows),
	}
}

func (g *Grid) bucketIndex(p Point) int {
	col := int((p.X - g.region.Min.X) / g.cell)
	row := int((p.Y - g.region.Min.Y) / g.cell)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// Insert registers an item by index at position p. Indices are expected to
// be assigned densely (0, 1, 2, …) by the caller.
func (g *Grid) Insert(index int, p Point) {
	for len(g.points) <= index {
		g.points = append(g.points, Point{})
	}
	g.points[index] = p
	b := g.bucketIndex(p)
	g.buckets[b] = append(g.buckets[b], index)
}

// Len returns the number of registered items.
func (g *Grid) Len() int { return len(g.points) }

// Position returns the registered position of an item.
func (g *Grid) Position(index int) Point { return g.points[index] }

// Within appends to dst the indices of all items within radius of p
// (inclusive), excluding the item with index == exclude (pass -1 to keep
// all). The result ordering is deterministic (bucket-major, insertion
// order within buckets).
func (g *Grid) Within(dst []int, p Point, radius float64, exclude int) []int {
	minCol := int((p.X - radius - g.region.Min.X) / g.cell)
	maxCol := int((p.X + radius - g.region.Min.X) / g.cell)
	minRow := int((p.Y - radius - g.region.Min.Y) / g.cell)
	maxRow := int((p.Y + radius - g.region.Min.Y) / g.cell)
	if minCol < 0 {
		minCol = 0
	}
	if minRow < 0 {
		minRow = 0
	}
	if maxCol >= g.cols {
		maxCol = g.cols - 1
	}
	if maxRow >= g.rows {
		maxRow = g.rows - 1
	}
	r2 := radius * radius
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			for _, idx := range g.buckets[row*g.cols+col] {
				if idx == exclude {
					continue
				}
				q := g.points[idx]
				dx, dy := q.X-p.X, q.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the registered item closest to p, excluding
// exclude (pass -1 to keep all), or -1 when the grid is empty. Ties resolve
// to the lowest index.
func (g *Grid) Nearest(p Point, exclude int) int {
	best, bestDist := -1, math.Inf(1)
	for idx, q := range g.points {
		if idx == exclude {
			continue
		}
		if d := p.Dist(q); d < bestDist || (d == bestDist && best == -1) {
			best, bestDist = idx, d
		}
	}
	return best
}
