package geo

import "math"

// Grid is a spatial hash over a rectangular region that answers "which
// items lie within range ρ of point p" in time proportional to the local
// density rather than the population.
//
// The grid is designed to be reused across rebuilds: Reset clears every
// bucket in place (keeping their capacity), Insert re-registers items, and
// Move relocates a single item, so a simulator that refreshes positions on
// an epoch never reallocates bucket storage after the first build.
type Grid struct {
	region Rect
	cell   float64
	cols   int
	rows   int
	// buckets[row*cols+col] holds item indices.
	buckets [][]int
	points  []Point
	// home[i] is the bucket currently holding item i (-1 when unset),
	// maintained so Move can evict an item without a full scan.
	home []int
}

// NewGrid builds a grid over region with the given cell size. Items are
// registered with Insert. Cell size should be on the order of the query
// radius for best performance.
func NewGrid(region Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(math.Ceil(region.Width()/cellSize)) + 1
	rows := int(math.Ceil(region.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		region:  region,
		cell:    cellSize,
		cols:    cols,
		rows:    rows,
		buckets: make([][]int, cols*rows),
	}
}

func (g *Grid) bucketIndex(p Point) int {
	col := int((p.X - g.region.Min.X) / g.cell)
	row := int((p.Y - g.region.Min.Y) / g.cell)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// CellKey returns the bucket a position hashes to, as a row-major integer.
// Sorting items by (CellKey, index) reproduces exactly the bucket-major
// order a freshly built grid's Within would return them in — which is how
// the simulator keeps query results byte-identical while serving them from
// an epoch-stale index.
func (g *Grid) CellKey(p Point) int { return g.bucketIndex(p) }

// Reset empties the grid in place: every bucket is truncated to length
// zero but keeps its storage, so a following round of Inserts allocates
// nothing once the grid has reached its steady-state occupancy.
func (g *Grid) Reset() {
	for i := range g.buckets {
		if len(g.buckets[i]) > 0 {
			g.buckets[i] = g.buckets[i][:0]
		}
	}
	g.points = g.points[:0]
	g.home = g.home[:0]
}

// Insert registers an item by index at position p. Indices are expected to
// be assigned densely (0, 1, 2, …) by the caller.
func (g *Grid) Insert(index int, p Point) {
	for len(g.points) <= index {
		g.points = append(g.points, Point{})
		g.home = append(g.home, -1)
	}
	g.points[index] = p
	b := g.bucketIndex(p)
	g.buckets[b] = append(g.buckets[b], index)
	g.home[index] = b
}

// Move relocates a registered item to position p, updating its bucket
// incrementally. Within-bucket order is preserved for the items that stay
// put; the moved item re-enters its (possibly new) bucket at the tail, as
// if it had just been inserted.
func (g *Grid) Move(index int, p Point) {
	g.points[index] = p
	old := g.home[index]
	b := g.bucketIndex(p)
	if b == old {
		return
	}
	if old >= 0 {
		bucket := g.buckets[old]
		for i, idx := range bucket {
			if idx == index {
				g.buckets[old] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
	}
	g.buckets[b] = append(g.buckets[b], index)
	g.home[index] = b
}

// Len returns the number of registered items.
func (g *Grid) Len() int { return len(g.points) }

// Position returns the registered position of an item.
func (g *Grid) Position(index int) Point { return g.points[index] }

// Within appends to dst the indices of all items within radius of p
// (inclusive), excluding the item with index == exclude (pass -1 to keep
// all). The result ordering is deterministic (bucket-major, insertion
// order within buckets).
func (g *Grid) Within(dst []int, p Point, radius float64, exclude int) []int {
	minCol := int((p.X - radius - g.region.Min.X) / g.cell)
	maxCol := int((p.X + radius - g.region.Min.X) / g.cell)
	minRow := int((p.Y - radius - g.region.Min.Y) / g.cell)
	maxRow := int((p.Y + radius - g.region.Min.Y) / g.cell)
	if minCol < 0 {
		minCol = 0
	}
	if minRow < 0 {
		minRow = 0
	}
	if maxCol >= g.cols {
		maxCol = g.cols - 1
	}
	if maxRow >= g.rows {
		maxRow = g.rows - 1
	}
	r2 := radius * radius
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			for _, idx := range g.buckets[row*g.cols+col] {
				if idx == exclude {
					continue
				}
				q := g.points[idx]
				dx, dy := q.X-p.X, q.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, idx)
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the registered item closest to p, excluding
// exclude (pass -1 to keep all), or -1 when the grid is empty. Ties resolve
// to the lowest index.
//
// The search spirals outward bucket ring by bucket ring from p's cell and
// stops as soon as no unvisited ring can hold a closer item, so the cost is
// proportional to the local density rather than the population.
func (g *Grid) Nearest(p Point, exclude int) int {
	if len(g.points) == 0 {
		return -1
	}
	// Unclamped cell coordinates: p may lie outside the region, in which
	// case the spiral starts from the out-of-range cell and the in-bounds
	// window below does the clamping.
	c0 := int(math.Floor((p.X - g.region.Min.X) / g.cell))
	r0 := int(math.Floor((p.Y - g.region.Min.Y) / g.cell))
	maxRing := c0
	if v := g.cols - 1 - c0; v > maxRing {
		maxRing = v
	}
	if r0 > maxRing {
		maxRing = r0
	}
	if v := g.rows - 1 - r0; v > maxRing {
		maxRing = v
	}
	best, bestDist := -1, math.Inf(1)
	scan := func(row, col int) {
		if row < 0 || row >= g.rows || col < 0 || col >= g.cols {
			return
		}
		for _, idx := range g.buckets[row*g.cols+col] {
			if idx == exclude {
				continue
			}
			// Lowest index wins exact ties: buckets are visited in ring
			// order, not index order, so the tie must be broken explicitly.
			if d := p.Dist(g.points[idx]); d < bestDist || (d == bestDist && idx < best) {
				best, bestDist = idx, d
			}
		}
	}
	for ring := 0; ring <= maxRing; ring++ {
		// A cell at Chebyshev ring distance `ring` from p's cell cannot hold
		// a point closer than (ring-1)·cell, so once the best found beats
		// that bound the spiral is done.
		if best != -1 && float64(ring-1)*g.cell > bestDist {
			break
		}
		if ring == 0 {
			scan(r0, c0)
			continue
		}
		for col := c0 - ring; col <= c0+ring; col++ {
			scan(r0-ring, col)
			scan(r0+ring, col)
		}
		for row := r0 - ring + 1; row <= r0+ring-1; row++ {
			scan(row, c0-ring)
			scan(row, c0+ring)
		}
	}
	return best
}
