// Package geo provides the planar geometry substrate of the WSAN simulator:
// points and distances, rectangular deployment regions, deterministic
// uniform node placement, a spatial hash grid for O(1) neighborhood queries,
// and the triangle partitioning of the actuator layer that defines REFER's
// cells (Section III-B-1 of the paper).
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters on the deployment plane.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{X: p.X * s, Y: p.Y * s} }

// Norm returns the vector length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q.
// t is clamped to [0, 1].
func (p Point) Lerp(q Point, t float64) Point {
	if t <= 0 {
		return p
	}
	if t >= 1 {
		return q
	}
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle, the deployment region.
type Rect struct {
	Min Point
	Max Point
}

// Square returns a side×side region anchored at the origin.
func Square(side float64) Rect {
	return Rect{Max: Point{X: side, Y: side}}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies within the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p constrained to lie within the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// RandomPoint draws a uniform point inside the rectangle using rng.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// RandomPointNear draws a uniform point inside the intersection of the
// rectangle and the disc of the given radius around center. It retries by
// rejection sampling; the fallback after many misses is the clamped center,
// which keeps the function total for degenerate radii.
func (r Rect) RandomPointNear(rng *rand.Rand, center Point, radius float64) Point {
	for i := 0; i < 64; i++ {
		angle := rng.Float64() * 2 * math.Pi
		// sqrt for uniform density over the disc area.
		rho := radius * math.Sqrt(rng.Float64())
		p := center.Add(rho*math.Cos(angle), rho*math.Sin(angle))
		if r.Contains(p) {
			return p
		}
	}
	return r.Clamp(center)
}

// HamiltonianRangeFactor is the 0.8 constant of Proposition 3.2: nodes
// uniformly deployed in a square of side b can be formed into a Hamiltonian
// cycle when their transmission range r satisfies r ≥ 0.8·b.
const HamiltonianRangeFactor = 0.8

// SatisfiesHamiltonianPrecondition reports whether a square cell of side b
// and node transmission range r meets Proposition 3.2's Dirac-condition
// bound r ≥ 0.8·b.
func SatisfiesHamiltonianPrecondition(r, b float64) bool {
	return r >= HamiltonianRangeFactor*b
}

// MaxCellSide returns the largest square cell side b a transmission range r
// supports under Proposition 3.2 (b ≤ r/0.8 = √(2π)/2·r approximately).
func MaxCellSide(r float64) float64 { return r / HamiltonianRangeFactor }
