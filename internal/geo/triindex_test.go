package geo

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTris builds n random triangles inside a side×side square, mixing
// tiny and large ones so bucket occupancy varies.
func randomTris(rng *rand.Rand, n int, side float64) [][3]Point {
	tris := make([][3]Point, n)
	for i := range tris {
		base := Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		extent := 5 + rng.Float64()*side/4
		for v := 0; v < 3; v++ {
			tris[i][v] = Point{
				X: base.X + (rng.Float64()-0.5)*extent,
				Y: base.Y + (rng.Float64()-0.5)*extent,
			}
		}
	}
	return tris
}

// containingScan is the linear first-hit oracle Containing must reproduce.
func containingScan(tris [][3]Point, p Point) int {
	for i, t := range tris {
		if PointInTriangle(p, t[0], t[1], t[2]) {
			return i
		}
	}
	return -1
}

// nearestScan is the linear `d <= best` oracle NearestWithin must reproduce:
// the LAST triangle at the minimal distance within margin wins.
func nearestScan(tris [][3]Point, p Point, margin float64) int {
	best, bestDist := -1, margin
	for i, t := range tris {
		if d := DistToTriangle(p, t[0], t[1], t[2]); d <= bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func TestTriIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(120)
		side := 100 + rng.Float64()*900
		tris := randomTris(rng, n, side)
		idx := NewTriIndex(tris)
		margin := rng.Float64() * side / 8
		for q := 0; q < 200; q++ {
			// Sample inside, around, and far outside the region.
			p := Point{
				X: (rng.Float64()*1.4 - 0.2) * side,
				Y: (rng.Float64()*1.4 - 0.2) * side,
			}
			if got, want := idx.Containing(p), containingScan(tris, p); got != want {
				t.Fatalf("trial %d: Containing(%v) = %d, scan = %d", trial, p, got, want)
			}
			if got, want := idx.NearestWithin(p, margin), nearestScan(tris, p, margin); got != want {
				t.Fatalf("trial %d: NearestWithin(%v, %g) = %d, scan = %d", trial, p, margin, got, want)
			}
		}
	}
}

// Vertices and edges are exact-distance ties between adjacent triangles —
// the tie-break cases the index must resolve identically to the scans.
func TestTriIndexTieBreaks(t *testing.T) {
	// Two triangles sharing edge (50,0)-(50,100), plus a duplicate of the
	// second: a boundary point is inside all, an outside point is equidistant.
	tris := [][3]Point{
		{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 50, Y: 100}},
		{{X: 50, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 100}},
		{{X: 50, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 100}},
	}
	idx := NewTriIndex(tris)
	onEdge := Point{X: 50, Y: 50}
	if got := idx.Containing(onEdge); got != containingScan(tris, onEdge) || got != 0 {
		t.Fatalf("Containing on shared edge = %d, want first hit 0", got)
	}
	// Equidistant from triangles 1 and 2 (identical), outside all three:
	// the `d <= best` rule keeps the LAST.
	out := Point{X: 120, Y: 50}
	if got := idx.NearestWithin(out, 200); got != nearestScan(tris, out, 200) || got != 2 {
		t.Fatalf("NearestWithin tie = %d, want last-at-min 2", got)
	}
	if got := idx.NearestWithin(Point{X: 500, Y: 500}, 10); got != -1 {
		t.Fatalf("NearestWithin far outside = %d, want -1", got)
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d, want 3", idx.Len())
	}
	if idx.Checks() == 0 {
		t.Fatal("Checks did not count predicate evaluations")
	}
}

func TestTriIndexEmpty(t *testing.T) {
	idx := NewTriIndex(nil)
	if got := idx.Containing(Point{X: 1, Y: 1}); got != -1 {
		t.Fatalf("Containing on empty index = %d, want -1", got)
	}
	if got := idx.NearestWithin(Point{X: 1, Y: 1}, 10); got != -1 {
		t.Fatalf("NearestWithin on empty index = %d, want -1", got)
	}
}

// TestTriCursorMatchesIndex checks that cursor queries are bit-identical to
// the index's own methods and count the same work, since the sharded
// maintenance path answers through cursors while the sequential path uses
// the index directly — their MaintainChecks totals must agree.
func TestTriCursorMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		tris := randomTris(rng, 1+rng.Intn(80), 400)
		idx := NewTriIndex(tris)
		cur := idx.Cursor()
		margin := rng.Float64() * 50
		before := idx.Checks()
		for q := 0; q < 150; q++ {
			p := Point{X: (rng.Float64()*1.4 - 0.2) * 400, Y: (rng.Float64()*1.4 - 0.2) * 400}
			if got, want := cur.Containing(p), idx.Containing(p); got != want {
				t.Fatalf("trial %d: cursor Containing(%v) = %d, index = %d", trial, p, got, want)
			}
			if got, want := cur.NearestWithin(p, margin), idx.NearestWithin(p, margin); got != want {
				t.Fatalf("trial %d: cursor NearestWithin(%v) = %d, index = %d", trial, p, got, want)
			}
		}
		if cw, iw := cur.TakeChecks(), idx.Checks()-before; cw != iw {
			t.Fatalf("trial %d: cursor counted %d checks, index %d", trial, cw, iw)
		}
		if cur.TakeChecks() != 0 {
			t.Fatal("TakeChecks did not reset the counter")
		}
	}
}

// TestTriCursorConcurrent hammers one index from many cursors at once; run
// under -race this pins the immutability contract the shard workers rely on.
func TestTriCursorConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tris := randomTris(rng, 60, 300)
	idx := NewTriIndex(tris)
	type query struct {
		p          Point
		containing int
		nearest    int
	}
	queries := make([]query, 400)
	for i := range queries {
		p := Point{X: (rng.Float64()*1.4 - 0.2) * 300, Y: (rng.Float64()*1.4 - 0.2) * 300}
		queries[i] = query{p: p, containing: containingScan(tris, p), nearest: nearestScan(tris, p, 30)}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			cur := idx.Cursor()
			for _, q := range queries {
				if got := cur.Containing(q.p); got != q.containing {
					done <- fmt.Errorf("Containing(%v) = %d, want %d", q.p, got, q.containing)
					return
				}
				if got := cur.NearestWithin(q.p, 30); got != q.nearest {
					done <- fmt.Errorf("NearestWithin(%v) = %d, want %d", q.p, got, q.nearest)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
