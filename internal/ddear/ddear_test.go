package ddear

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/scenario"
	"refer/internal/world"
)

func buildSystem(t *testing.T, seed int64, sensors int, speed float64) (*world.World, *System) {
	t.Helper()
	w := scenario.Build(scenario.Params{Seed: seed, Sensors: sensors, MaxSpeed: speed})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Sched.Run() // drain construction floods
	return w, s
}

func TestBuildElectsHeadsAndAttachesMembers(t *testing.T) {
	w, s := buildSystem(t, 1, 200, 0)
	heads := s.Heads()
	if len(heads) == 0 {
		t.Fatal("no cluster heads elected")
	}
	headSet := make(map[world.NodeID]bool)
	for _, h := range heads {
		if w.Node(h).Kind != world.Sensor {
			t.Fatalf("head %d is not a sensor", h)
		}
		headSet[h] = true
	}
	attached := 0
	for _, id := range scenario.SensorIDs(w) {
		h, ok := s.HeadOf(id)
		if !ok {
			continue
		}
		attached++
		if !headSet[h] {
			t.Fatalf("sensor %d attached to non-head %d", id, h)
		}
	}
	if attached < len(scenario.SensorIDs(w))*8/10 {
		t.Fatalf("only %d sensors attached to clusters", attached)
	}
	// Heads are sparse: the 2-hop separation rule keeps them well below
	// the population.
	if len(heads) > len(scenario.SensorIDs(w))/3 {
		t.Fatalf("%d heads for %d sensors — separation rule broken", len(heads), len(scenario.SensorIDs(w)))
	}
}

func TestBuildBackbonePaths(t *testing.T) {
	w, s := buildSystem(t, 2, 200, 0)
	withPath := 0
	for _, h := range s.Heads() {
		path := s.backbone[h]
		if len(path) == 0 {
			continue
		}
		withPath++
		if path[0] != h {
			t.Fatalf("backbone of %d starts at %d", h, path[0])
		}
		last := path[len(path)-1]
		if w.Node(last).Kind != world.Actuator {
			t.Fatalf("backbone of %d ends at non-actuator %d", h, last)
		}
	}
	if withPath < len(s.Heads())*8/10 {
		t.Fatalf("only %d/%d heads found an actuator path", withPath, len(s.Heads()))
	}
}

func TestConstructionLedger(t *testing.T) {
	w, _ := buildSystem(t, 3, 200, 0)
	if w.TotalEnergy(energy.Construction) <= 0 {
		t.Fatal("no construction energy")
	}
	if w.TotalEnergy(energy.Communication) != 0 {
		t.Fatal("communication ledger charged during build")
	}
}

func TestInjectDelivers(t *testing.T) {
	w, s := buildSystem(t, 4, 200, 0)
	delivered, attempts := 0, 0
	for _, id := range scenario.SensorIDs(w)[:50] {
		attempts++
		s.Inject(id, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.Run()
	if delivered < attempts*8/10 {
		t.Fatalf("delivered %d/%d on a static fault-free network", delivered, attempts)
	}
}

func TestRepairOnBrokenBackbone(t *testing.T) {
	w, s := buildSystem(t, 5, 200, 0)
	// Break a head's backbone by failing its first relay.
	var head world.NodeID = world.NoNode
	var victim world.NodeID
	for _, h := range s.Heads() {
		path := s.backbone[h]
		if len(path) >= 3 && w.Node(path[1]).Kind == world.Sensor {
			head, victim = h, path[1]
			break
		}
	}
	if head == world.NoNode {
		t.Skip("no multi-hop backbone in this deployment")
	}
	w.SetFailed(victim, true)
	ok := false
	s.Inject(head, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("head packet not delivered despite repair")
	}
	if s.Stats().Repairs == 0 || s.Stats().Retransmits == 0 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestOrphanReattachesOnDemand(t *testing.T) {
	w, s := buildSystem(t, 6, 200, 0)
	// Fabricate an orphan: remove a member's attachment.
	var orphan world.NodeID = world.NoNode
	for _, id := range scenario.SensorIDs(w) {
		if h, ok := s.HeadOf(id); ok && h != id {
			orphan = id
			break
		}
	}
	if orphan == world.NoNode {
		t.Skip("no member found")
	}
	delete(s.headOf, orphan)
	delete(s.relayTo, orphan)
	ok := false
	s.Inject(orphan, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("orphan could not reattach and deliver")
	}
	if _, attached := s.HeadOf(orphan); !attached {
		t.Fatal("orphan not re-attached")
	}
}

func TestInjectFromActuator(t *testing.T) {
	w, s := buildSystem(t, 7, 100, 0)
	ok := false
	s.Inject(0, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("actuator self-inject should succeed")
	}
}

func TestInjectFailedSourceDrops(t *testing.T) {
	w, s := buildSystem(t, 8, 100, 0)
	src := scenario.SensorIDs(w)[0]
	w.SetFailed(src, true)
	var got *bool
	s.Inject(src, func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("failed source should drop")
	}
	if s.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestDeliveryUnderMobility(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 9, Sensors: 200, MaxSpeed: 2})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	delivered, attempts := 0, 0
	var round func()
	round = func() {
		if w.Now() > 150*time.Second {
			return
		}
		ids := scenario.SensorIDs(w)
		for i := 0; i < 5; i++ {
			src := ids[w.Rand().Intn(len(ids))]
			attempts++
			s.Inject(src, func(ok bool) {
				if ok {
					delivered++
				}
			})
		}
		if _, err := w.Sched.After(10*time.Second, round); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	round()
	w.Sched.RunUntil(200 * time.Second)
	if attempts == 0 || delivered < attempts/2 {
		t.Fatalf("delivered %d/%d under mobility", delivered, attempts)
	}
}
