package ddear

import (
	"fmt"

	"refer/internal/world"
)

// CheckInvariants audits the cluster structure and returns the first
// violation, or nil. It is the conformance harness's probe point (see
// internal/chaos), so every check is something election, attachment, and
// backbone repair guarantee unconditionally:
//
//  1. Heads: every elected head is a sensor clustered to itself, and every
//     member's head is an elected head.
//  2. Relays: a two-hop member's relay is a third sensor — never the member
//     itself and never the head it bridges to.
//  3. Backbone: every stored path belongs to an elected head, starts at
//     that head, ends at an actuator, and is loop-free.
//
// Head and backbone liveness are deliberately not invariants: a crashed
// head simply fails its members' packets until they re-attach, and a stale
// backbone is rebuilt on first use — both are protocol behaviour under
// faults, not corruption.
func (s *System) CheckInvariants() error {
	if !s.built {
		return nil
	}
	isHead := make(map[world.NodeID]bool, len(s.heads))
	for _, h := range s.heads {
		if s.w.Node(h).Kind != world.Sensor {
			return fmt.Errorf("ddear: head %d is not a sensor", h)
		}
		if got, ok := s.headOf[h]; !ok || got != h {
			return fmt.Errorf("ddear: head %d is clustered to %d, want itself", h, got)
		}
		isHead[h] = true
	}
	for id, h := range s.headOf {
		if !isHead[h] {
			return fmt.Errorf("ddear: member %d attached to non-head %d", id, h)
		}
		if s.w.Node(id).Kind != world.Sensor {
			return fmt.Errorf("ddear: non-sensor %d joined a cluster", id)
		}
	}
	for id, relay := range s.relayTo {
		h, ok := s.headOf[id]
		if !ok {
			return fmt.Errorf("ddear: member %d has relay %d but no head", id, relay)
		}
		if relay == id || relay == h {
			return fmt.Errorf("ddear: member %d's relay %d collapses its two-hop path to head %d", id, relay, h)
		}
	}
	for h, path := range s.backbone {
		if !isHead[h] {
			return fmt.Errorf("ddear: backbone path stored for non-head %d", h)
		}
		if len(path) < 2 {
			return fmt.Errorf("ddear: head %d's backbone path too short: %v", h, path)
		}
		if path[0] != h {
			return fmt.Errorf("ddear: head %d's backbone path starts at %d", h, path[0])
		}
		last := path[len(path)-1]
		if s.w.Node(last).Kind != world.Actuator {
			return fmt.Errorf("ddear: head %d's backbone path ends at non-actuator %d", h, last)
		}
		seen := make(map[world.NodeID]bool, len(path))
		for _, id := range path {
			if seen[id] {
				return fmt.Errorf("ddear: head %d's backbone path revisits %d", h, id)
			}
			seen[id] = true
		}
	}
	return nil
}
