// Package ddear implements the D-DEAR baseline (Shah et al., NEW2AN'06, as
// modeled in Section IV of the REFER paper): physically close sensors form
// clusters; the highest-energy sensor in each neighborhood becomes the
// cluster head; heads maintain multi-hop paths to their closest actuator
// and form the routing backbone.
//
// Members reach their head in at most two hops, so only the head-to-actuator
// paths lengthen as the network grows — D-DEAR sits between DaTree and REFER
// on most of the paper's metrics. Repair is head-initiated: when a backbone
// path breaks, the head floods to rebuild it and retransmits, which costs
// energy and delay but affects fewer nodes than DaTree's per-sensor repair.
package ddear

import (
	"sort"

	"refer/internal/energy"
	"refer/internal/manet"
	"refer/internal/trace"
	"refer/internal/world"
)

// Config parameterizes D-DEAR.
type Config struct {
	// FloodTTL bounds discovery and repair floods.
	FloodTTL int
	// MaxRetransmits bounds per-packet retransmissions after a repair.
	MaxRetransmits int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{FloodTTL: manet.DefaultTTL, MaxRetransmits: 3}
}

// System is a built D-DEAR network.
type System struct {
	w   *world.World
	cfg Config

	heads    []world.NodeID
	headOf   map[world.NodeID]world.NodeID   // member → head
	relayTo  map[world.NodeID]world.NodeID   // member → relay (2-hop members)
	backbone map[world.NodeID][]world.NodeID // head → path to actuator
	// rebuilding coalesces concurrent backbone repairs per head.
	rebuilding map[world.NodeID][]func(ok bool)
	built      bool

	stats Stats
}

// Stats counts protocol activity.
type Stats struct {
	// Repairs counts backbone path rebuild floods.
	Repairs int
	// Retransmits counts head retransmissions.
	Retransmits int
	// Drops counts abandoned packets.
	Drops int
}

// New creates an unbuilt D-DEAR system on w.
func New(w *world.World, cfg Config) *System {
	if cfg.FloodTTL <= 0 {
		cfg.FloodTTL = manet.DefaultTTL
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	return &System{
		w:          w,
		cfg:        cfg,
		headOf:     make(map[world.NodeID]world.NodeID),
		relayTo:    make(map[world.NodeID]world.NodeID),
		backbone:   make(map[world.NodeID][]world.NodeID),
		rebuilding: make(map[world.NodeID][]func(ok bool)),
	}
}

// Name implements the System interface.
func (s *System) Name() string { return "D-DEAR" }

// Stats returns a snapshot of the protocol counters.
func (s *System) Stats() Stats { return s.stats }

// Heads returns the elected cluster heads.
func (s *System) Heads() []world.NodeID {
	return append([]world.NodeID(nil), s.heads...)
}

// HeadOf returns a member's cluster head.
func (s *System) HeadOf(id world.NodeID) (world.NodeID, bool) {
	h, ok := s.headOf[id]
	return h, ok
}

// Build elects cluster heads (highest residual energy within a 2-hop
// neighborhood), attaches members, and discovers each head's multi-hop path
// to its nearest actuator.
func (s *System) Build() error {
	// Every sensor advertises itself to its 2-hop neighborhood: one local
	// broadcast each ("every node locally contacts neighbors within 2
	// hops", Section IV).
	var sensors []world.NodeID
	for _, n := range s.w.Nodes() {
		if n.Kind == world.Sensor {
			sensors = append(sensors, n.ID)
			s.w.Broadcast(n.ID, energy.Construction, nil)
		}
	}
	// Head election: process by residual energy (ID tie-break); a sensor
	// becomes a head unless a head already exists within 2 hops.
	sorted := append([]world.NodeID(nil), sensors...)
	sort.Slice(sorted, func(i, j int) bool {
		fi := s.w.Node(sorted[i]).Meter.Fraction()
		fj := s.w.Node(sorted[j]).Meter.Fraction()
		if fi != fj {
			return fi > fj
		}
		return sorted[i] < sorted[j]
	})
	isHead := make(map[world.NodeID]bool)
	for _, id := range sorted {
		if !s.w.Node(id).Alive() {
			continue
		}
		if s.headWithinTwoHops(id, isHead) {
			continue
		}
		isHead[id] = true
		s.heads = append(s.heads, id)
		// Head announcement broadcast.
		s.w.Broadcast(id, energy.Construction, nil)
	}
	// Member attachment: direct neighbor head, else a head two hops away
	// through a relay member.
	for _, id := range sensors {
		if isHead[id] {
			s.headOf[id] = id
			continue
		}
		if h := s.directHead(id, isHead); h != world.NoNode {
			s.headOf[id] = h
			continue
		}
		if h, relay := s.twoHopHead(id, isHead); h != world.NoNode {
			s.headOf[id] = h
			s.relayTo[id] = relay
		}
	}
	// Backbone: actuators flood one beacon each; every head records the
	// reverse path of the first beacon it hears as its multi-hop path to a
	// close actuator. (Head-initiated full floods are reserved for repair.)
	headIsSet := make(map[world.NodeID]bool, len(s.heads))
	for _, h := range s.heads {
		headIsSet[h] = true
	}
	heard := make(map[world.NodeID]bool, len(sensors))
	for _, n := range s.w.Nodes() {
		if n.Kind != world.Actuator {
			continue
		}
		s.w.Flood(n.ID, s.cfg.FloodTTL, energy.Construction,
			func(at world.NodeID, hops int, path []world.NodeID) bool {
				if s.w.Node(at).Kind == world.Actuator {
					return false
				}
				if heard[at] {
					return false // relay only the first beacon heard
				}
				heard[at] = true
				if headIsSet[at] {
					rev := make([]world.NodeID, len(path))
					for i, id := range path {
						rev[len(path)-1-i] = id
					}
					s.backbone[at] = rev
				}
				return true
			}, nil)
	}
	s.built = true
	return nil
}

func (s *System) headWithinTwoHops(id world.NodeID, isHead map[world.NodeID]bool) bool {
	for _, nb := range s.w.Neighbors(nil, id) {
		if isHead[nb] {
			return true
		}
		for _, nb2 := range s.w.Neighbors(nil, nb) {
			if isHead[nb2] {
				return true
			}
		}
	}
	return false
}

func (s *System) directHead(id world.NodeID, isHead map[world.NodeID]bool) world.NodeID {
	best, bestDist := world.NoNode, 0.0
	pid := s.w.Position(id)
	for _, nb := range s.w.Neighbors(nil, id) {
		if !isHead[nb] {
			continue
		}
		d := pid.Dist(s.w.Position(nb))
		if best == world.NoNode || d < bestDist {
			best, bestDist = nb, d
		}
	}
	return best
}

func (s *System) twoHopHead(id world.NodeID, isHead map[world.NodeID]bool) (head, relay world.NodeID) {
	head, relay = world.NoNode, world.NoNode
	bestDist := 0.0
	pid := s.w.Position(id)
	// The nested Neighbors queries borrow different nodes' cache slices
	// (id's and nb's), so the outer iteration is never invalidated.
	for _, nb := range s.w.Neighbors(nil, id) {
		pnb := s.w.Position(nb)
		dToNb := pid.Dist(pnb)
		for _, nb2 := range s.w.Neighbors(nil, nb) {
			if !isHead[nb2] || nb2 == id {
				continue
			}
			d := dToNb + pnb.Dist(s.w.Position(nb2))
			if head == world.NoNode || d < bestDist {
				head, relay, bestDist = nb2, nb, d
			}
		}
	}
	return head, relay
}

// Inject routes one packet: member → (relay →) head → backbone → actuator.
func (s *System) Inject(src world.NodeID, done func(ok bool)) {
	pkt := s.w.Tracer().PacketInject(s.w.Now(), int32(src))
	finish := func(ok bool) {
		if ok {
			pkt.Deliver(s.w.Now())
		} else {
			pkt.Drop(s.w.Now())
			s.stats.Drops++
		}
		if done != nil {
			done(ok)
		}
	}
	if !s.built || !s.w.Node(src).Alive() {
		finish(false)
		return
	}
	if s.w.Node(src).Kind == world.Actuator {
		finish(true)
		return
	}
	head, ok := s.headOf[src]
	if !ok {
		// Orphan sensor: attach on demand to the nearest head (local
		// broadcast cost), mirroring cluster upkeep.
		s.w.Broadcast(src, energy.Communication, nil)
		if h := s.directHead(src, s.headSet()); h != world.NoNode {
			s.headOf[src] = h
			head = h
		} else if h, relay := s.twoHopHead(src, s.headSet()); h != world.NoNode {
			s.headOf[src], s.relayTo[src] = h, relay
			head = h
		} else {
			finish(false)
			return
		}
	}
	s.toHead(src, head, pkt, func(ok bool) {
		if ok {
			s.alongBackbone(head, s.cfg.MaxRetransmits, pkt, finish)
			return
		}
		// Mobility carried the member away from its head: re-attach to a
		// reachable head (local broadcast) and retry once.
		s.reattach(src)
		newHead, ok := s.headOf[src]
		if !ok || newHead == head {
			finish(false)
			return
		}
		s.toHead(src, newHead, pkt, func(ok bool) {
			if !ok {
				finish(false)
				return
			}
			s.alongBackbone(newHead, s.cfg.MaxRetransmits, pkt, finish)
		})
	})
}

// reattach re-runs member attachment for one sensor against the current
// topology, paying the local advertisement broadcast.
func (s *System) reattach(src world.NodeID) {
	s.w.Broadcast(src, energy.Communication, nil)
	delete(s.headOf, src)
	delete(s.relayTo, src)
	heads := s.headSet()
	if h := s.directHead(src, heads); h != world.NoNode {
		s.headOf[src] = h
		return
	}
	if h, relay := s.twoHopHead(src, heads); h != world.NoNode {
		s.headOf[src], s.relayTo[src] = h, relay
	}
}

func (s *System) headSet() map[world.NodeID]bool {
	set := make(map[world.NodeID]bool, len(s.heads))
	for _, h := range s.heads {
		set[h] = true
	}
	return set
}

// toHead delivers the packet from a member to its cluster head (≤ 2 hops).
func (s *System) toHead(src, head world.NodeID, pkt trace.Packet, done func(ok bool)) {
	if src == head {
		done(true)
		return
	}
	forward := func(via world.NodeID) {
		s.w.Send(src, via, energy.Communication, func(o world.Outcome) {
			if o != world.Delivered {
				done(false)
				return
			}
			pkt.Hop(s.w.Now(), int32(src), int32(via), 0)
			if via == head {
				done(true)
				return
			}
			s.w.Send(via, head, energy.Communication, func(o world.Outcome) {
				if o == world.Delivered {
					pkt.Hop(s.w.Now(), int32(via), int32(head), 0)
				}
				done(o == world.Delivered)
			})
		})
	}
	if relay, ok := s.relayTo[src]; ok {
		forward(relay)
		return
	}
	forward(head)
}

// alongBackbone forwards from a head along its stored multi-hop path; on a
// break, the head floods to rebuild the path and retransmits.
func (s *System) alongBackbone(head world.NodeID, budget int, pkt trace.Packet, done func(ok bool)) {
	path := s.backbone[head]
	if len(path) == 0 {
		s.rebuildAndRetry(head, budget, pkt, done)
		return
	}
	manet.SendAlongPathHops(s.w, path, energy.Communication,
		func(i int) { pkt.Hop(s.w.Now(), int32(path[i]), int32(path[i+1]), 0) },
		func() { done(true) },
		func(int) { s.rebuildAndRetry(head, budget, pkt, done) })
}

func (s *System) rebuildAndRetry(head world.NodeID, budget int, pkt trace.Packet, done func(ok bool)) {
	if budget <= 0 || !s.w.Node(head).Alive() {
		done(false)
		return
	}
	cont := func(rebuilt bool) {
		if !rebuilt {
			done(false)
			return
		}
		s.stats.Retransmits++
		s.alongBackbone(head, budget-1, pkt, done)
	}
	if waiting, inFlight := s.rebuilding[head]; inFlight {
		s.rebuilding[head] = append(waiting, cont)
		return
	}
	s.rebuilding[head] = []func(bool){cont}
	s.stats.Repairs++
	manet.DiscoverNearest(s.w, head, s.cfg.FloodTTL, energy.Communication,
		func(id world.NodeID) bool { return s.w.Node(id).Kind == world.Actuator },
		func(path []world.NodeID) {
			if path != nil {
				s.backbone[head] = path
			}
			waiting := s.rebuilding[head]
			delete(s.rebuilding, head)
			for _, w := range waiting {
				w(path != nil)
			}
		})
}
