// Package viz renders a built REFER network as an SVG — the repository's
// analogue of the paper's Figure 1: the deployment field, the cell
// triangles, actuators, the embedded Kautz sensors with their KIDs, the
// overlay arcs, and the sleeping sensor population.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"refer/internal/core"
	"refer/internal/kautz"
	"refer/internal/world"
)

// palette for the cells (cycled when there are more cells than colors).
var cellColors = []string{"#e8f1fa", "#fae8e8", "#e8fae9", "#faf6e8", "#f1e8fa", "#e8fafa"}

// SVG renders the current state of a REFER system and its world. The
// drawing is scaled to the given pixel width (height follows the region's
// aspect ratio).
func SVG(w *world.World, sys *core.System, widthPx float64) string {
	region := w.Config().Region
	if widthPx <= 0 {
		widthPx = 800
	}
	scale := widthPx / region.Width()
	heightPx := region.Height() * scale
	// SVG's y axis grows downward; flip so the plot reads like the plane.
	tx := func(x float64) float64 { return (x - region.Min.X) * scale }
	ty := func(y float64) float64 { return heightPx - (y-region.Min.Y)*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		widthPx, heightPx, widthPx, heightPx)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	// Cell triangles.
	cells := sys.Cells()
	for i, c := range cells {
		color := cellColors[i%len(cellColors)]
		fmt.Fprintf(&sb,
			`<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s" stroke="#888" stroke-width="1"/>`,
			tx(c.Vertices[0].X), ty(c.Vertices[0].Y),
			tx(c.Vertices[1].X), ty(c.Vertices[1].Y),
			tx(c.Vertices[2].X), ty(c.Vertices[2].Y), color)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="%.0f" fill="#666" text-anchor="middle">cell %d</text>`,
			tx(c.Centroid.X), ty(c.Centroid.Y), 12*scale/1.6, c.CID)
	}

	// Overlay arcs (drawn under the nodes). Sort KIDs for determinism.
	g := sys.Graph()
	for _, c := range cells {
		kids := make([]kautz.ID, 0, len(c.NodeByKID))
		for kid := range c.NodeByKID {
			kids = append(kids, kid)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, kid := range kids {
			from := c.NodeByKID[kid]
			for _, succ := range g.Successors(kid) {
				to, ok := c.NodeByKID[succ]
				if !ok {
					continue
				}
				p, q := w.Position(from), w.Position(to)
				fmt.Fprintf(&sb,
					`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="0.7"/>`,
					tx(p.X), ty(p.Y), tx(q.X), ty(q.Y))
			}
		}
	}

	// Sleeping sensors (small gray dots), overlay sensors (blue, labeled),
	// actuators (red squares, labeled).
	for _, n := range w.Nodes() {
		p := w.Position(n.ID)
		x, y := tx(p.X), ty(p.Y)
		switch {
		case n.Kind == world.Actuator:
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="#c0392b"/>`, x-5, y-5)
			if addr, ok := sys.AddressOf(n.ID); ok {
				fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" fill="#c0392b">%s</text>`, x+7, y+4, addr.KID)
			}
		case isOverlay(sys, n.ID):
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4.5" fill="#2471a3"/>`, x, y)
			if addr, ok := sys.AddressOf(n.ID); ok {
				fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="9" fill="#2471a3">%s</text>`, x+6, y+3, addr.KID)
			}
		default:
			var fill string
			if n.Alive() {
				fill = "#cccccc"
			} else {
				fill = "#f5b7b1"
			}
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s"/>`, x, y, fill)
		}
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

func isOverlay(sys *core.System, id world.NodeID) bool {
	_, ok := sys.AddressOf(id)
	return ok
}
