package viz

import (
	"strings"
	"testing"

	"refer/internal/core"
	"refer/internal/scenario"
)

func TestSVGRendersAllLayers(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 1, Sensors: 200})
	sys := core.New(w, core.DefaultConfig())
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	svg := SVG(w, sys, 800)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"polygon", "cell 0", "cell 3", "rect", "circle", "012", "201"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// 5 actuator squares plus the background rect.
	if got := strings.Count(svg, "<rect"); got != 6 {
		t.Fatalf("rect count = %d, want 6", got)
	}
	// Four cell triangles.
	if got := strings.Count(svg, "<polygon"); got != 4 {
		t.Fatalf("polygon count = %d, want 4", got)
	}
	// Overlay arcs drawn as lines: 4 cells × up to 24 arcs of K(2,3).
	if got := strings.Count(svg, "<line"); got < 40 {
		t.Fatalf("line count = %d, want >= 40", got)
	}
}

func TestSVGDefaultWidth(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 2, Sensors: 200})
	sys := core.New(w, core.DefaultConfig())
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	svg := SVG(w, sys, 0)
	if !strings.Contains(svg, `width="800"`) {
		t.Fatal("default width not applied")
	}
}

func TestSVGMarksFailedSensors(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 3, Sensors: 200})
	sys := core.New(w, core.DefaultConfig())
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	// Fail a plain (non-overlay) sensor and check the failure tint shows.
	for _, id := range scenario.SensorIDs(w) {
		if _, overlay := sys.AddressOf(id); !overlay {
			w.SetFailed(id, true)
			break
		}
	}
	if !strings.Contains(SVG(w, sys, 400), "#f5b7b1") {
		t.Fatal("failed sensor tint missing")
	}
}
