package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	if Hash("actuator-1") != Hash("actuator-1") {
		t.Fatal("hash not deterministic")
	}
	if Hash("actuator-1") == Hash("actuator-2") {
		t.Fatal("distinct keys should (practically) never collide")
	}
}

func TestMinKey(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	leader, err := MinKey(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if Hash(k) < Hash(leader) {
			t.Fatalf("leader %q has hash %d but %q has smaller %d", leader, Hash(leader), k, Hash(k))
		}
	}
	// Order independence.
	rev := []string{"e", "d", "c", "b", "a"}
	leader2, err := MinKey(rev)
	if err != nil {
		t.Fatal(err)
	}
	if leader2 != leader {
		t.Fatalf("leader depends on order: %q vs %q", leader, leader2)
	}
	if _, err := MinKey(nil); err == nil {
		t.Fatal("MinKey(nil) should error")
	}
}

func TestRingOwnerStability(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	owners := make(map[string]string)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		o, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		owners[key] = o
	}
	// Removing one member must only remap keys that it owned.
	r.Remove("node-3")
	for key, prev := range owners {
		now, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		if prev != "node-3" && now != prev {
			t.Fatalf("key %q moved from %q to %q although %q stayed", key, prev, now, prev)
		}
		if now == "node-3" {
			t.Fatalf("key %q still owned by removed member", key)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0) // coerced to 1 replica
	if _, err := r.Owner("x"); err == nil {
		t.Fatal("Owner on empty ring should error")
	}
	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	o, err := r.Owner("anything")
	if err != nil {
		t.Fatal(err)
	}
	if o != "only" {
		t.Fatalf("Owner = %q, want only member", o)
	}
	r.Remove("ghost") // removing a non-member is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len after ghost removal = %d", r.Len())
	}
	r.Remove("only")
	if r.Len() != 0 {
		t.Fatalf("Len after removal = %d", r.Len())
	}
	if _, err := r.Owner("x"); err == nil {
		t.Fatal("Owner after draining ring should error")
	}
}

func TestRingMembersSorted(t *testing.T) {
	r := NewRing(4)
	r.Add("charlie")
	r.Add("alice")
	r.Add("bob")
	got := r.Members()
	want := []string{"alice", "bob", "charlie"}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	const members = 5
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("m%d", i))
	}
	counts := make(map[string]int)
	const keys = 5000
	for i := 0; i < keys; i++ {
		o, err := r.Owner(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[o]++
	}
	for m, c := range counts {
		if c < keys/members/4 || c > keys*4/members {
			t.Errorf("member %s owns %d of %d keys — badly balanced", m, c, keys)
		}
	}
	if len(counts) != members {
		t.Errorf("only %d members own keys, want %d", len(counts), members)
	}
}

func TestQuickOwnerConsistency(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	f := func(key string) bool {
		o1, err1 := r.Owner(key)
		o2, err2 := r.Owner(key)
		return err1 == nil && err2 == nil && o1 == o2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
