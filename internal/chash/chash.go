// Package chash implements the consistent hashing [Karger et al., STOC'97]
// REFER uses during actuator ID assignment: each actuator hashes its address
// onto a ring, and the actuator with the minimum hash acts as the starting
// server that partitions the topology and assigns cell IDs
// (Section III-B-1 of the paper).
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash returns the consistent hash value H(A) of a key: a 64-bit FNV-1a
// digest. Any uniform hash works for leader election; FNV keeps the module
// dependency-free and deterministic across runs.
func Hash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv.Write never fails
	return h.Sum64()
}

// MinKey returns the key with the smallest hash value — the "starting
// server" election rule. Hash ties break lexicographically so the election
// is total. It returns an error for an empty candidate set.
func MinKey(keys []string) (string, error) {
	if len(keys) == 0 {
		return "", fmt.Errorf("chash: no candidates")
	}
	best := keys[0]
	bestH := Hash(best)
	for _, k := range keys[1:] {
		h := Hash(k)
		if h < bestH || (h == bestH && k < best) {
			best, bestH = k, h
		}
	}
	return best, nil
}

// Ring is a consistent hash ring with virtual nodes. REFER itself only
// needs leader election, but the ring backs the DHT-style coordination
// between actuators and is reused by tests that exercise churn.
type Ring struct {
	replicas int
	keys     []uint64
	owners   map[uint64]string
	members  map[string]bool
}

// NewRing creates a ring placing each member at the given number of virtual
// positions. replicas < 1 is coerced to 1.
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{
		replicas: replicas,
		owners:   make(map[uint64]string),
		members:  make(map[string]bool),
	}
}

// Add inserts a member into the ring. Adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		h := Hash(fmt.Sprintf("%s#%d", member, i))
		// On the (vanishingly rare) collision the earlier owner keeps the
		// slot; correctness only needs a consistent owner per position.
		if _, taken := r.owners[h]; !taken {
			r.owners[h] = member
			r.keys = append(r.keys, h)
		}
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
}

// Remove deletes a member and its virtual positions.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.keys[:0]
	for _, h := range r.keys {
		if r.owners[h] == member {
			delete(r.owners, h)
			continue
		}
		kept = append(kept, h)
	}
	r.keys = kept
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member responsible for key: the first virtual position
// clockwise from the key's hash. It returns an error on an empty ring.
func (r *Ring) Owner(key string) (string, error) {
	if len(r.keys) == 0 {
		return "", fmt.Errorf("chash: empty ring")
	}
	h := Hash(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	if i == len(r.keys) {
		i = 0
	}
	return r.owners[r.keys[i]], nil
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
