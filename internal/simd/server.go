// Package simd implements refer-simd, the simulation-as-a-service daemon:
// a long-lived HTTP/JSON front end over the experiment API. Clients POST a
// run configuration (or a registered figure build) and get a run ID back;
// they poll or stream status, fetch the Result/RunStats/figure CSV, and can
// cancel mid-run. The serving layer exploits the repo's determinism
// guarantees end to end:
//
//   - a bounded worker-pool queue applies backpressure (429 + Retry-After)
//     instead of accepting unbounded work;
//   - a content-addressed LRU cache keyed on the canonicalized config+seed
//     (experiment.ConfigKey) serves identical submissions without re-running
//     — replay determinism makes the cached Result byte-identical to a
//     fresh run once host timing is stripped;
//   - identical in-flight submissions are coalesced onto one execution;
//   - all concurrent runs share the process-wide immutable Kautz route
//     tables (kautz.TableFor), prewarmed at startup;
//   - GET /metrics exposes queue depth, cache hit rate, runs in flight and
//     aggregate DES throughput.
package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"refer/internal/experiment"
	"refer/internal/kautz"
)

// Run states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Run kinds.
const (
	KindRun    = "run"
	KindFigure = "figure"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of concurrent simulation executions
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-run queue; a full queue rejects
	// submissions with 429 (default 64).
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (default 512).
	CacheSize int
	// RetainRuns bounds how many terminal run records are kept for status
	// queries; the oldest are pruned beyond it (default 16384).
	RetainRuns int
	// FigureParallelism is the per-figure sweep parallelism when a
	// FigureRequest does not name its own (default 1: a figure build
	// occupies one worker slot, so its internal fan-out multiplies).
	FigureParallelism int
	// Log receives request and lifecycle lines; nil is silent.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 512
	}
	if c.RetainRuns <= 0 {
		c.RetainRuns = 16384
	}
	if c.FigureParallelism <= 0 {
		c.FigureParallelism = 1
	}
	return c
}

// run is one tracked submission.
type run struct {
	id       string
	kind     string
	key      string
	figureID string

	cfg     experiment.RunConfig
	figOpts experiment.Options

	mu          sync.Mutex
	state       string
	cached      bool
	cancelled   bool // cancellation requested
	cancel      context.CancelFunc
	progress    experiment.RunProgress
	hasProgress bool
	sweep       experiment.ProgressEvent
	hasSweep    bool
	result      *experiment.Result
	figure      *experiment.Figure
	errMsg      string
	submitted   time.Time
	finished    time.Time
	lastPush    time.Time
	subs        map[chan []byte]struct{}
	done        chan struct{}
}

// terminalLocked reports whether the run reached a final state.
func (r *run) terminalLocked() bool {
	return r.state == StateDone || r.state == StateFailed || r.state == StateCancelled
}

// Server is the refer-simd daemon core; it implements http.Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	ctx       context.Context
	cancelAll context.CancelFunc
	queue     chan *run
	workers   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   int
	runs     map[string]*run
	order    []string        // submission order, for listing and pruning
	inflight map[string]*run // canonical key → queued/running run

	cache *resultCache

	inFlight  atomic.Int64
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64
	deduped   atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	desEvents atomic.Uint64
	busyNanos atomic.Int64
	// Shard counters accumulated from every executed run before result
	// stripping (StripWallClock zeroes them in the stored/cached stats, so
	// the /metrics endpoint is the only place the server-side totals live).
	shardRounds       atomic.Uint64
	shardMembershipNs atomic.Int64
	shardCellNs       atomic.Int64
	shardMergeNs      atomic.Int64
	// Batched-drain counters, accumulated like the shard counters: host-
	// execution detail stripped from stored results, totalled here for
	// /metrics.
	drainBatches       atomic.Uint64
	drainBatchedEvents atomic.Uint64
	drainSerialEvents  atomic.Uint64
	drainReexecs       atomic.Uint64
	drainPrepNs        atomic.Int64
	drainWarms         atomic.Uint64
	drainWarmHits      atomic.Uint64
	// Recovery counters accumulated from every executed run. Unlike the
	// shard counters these are deterministic virtual-time results, so they
	// survive result stripping; /metrics still aggregates them for fleet
	// visibility.
	recoveryReelections atomic.Uint64
	recoveryMerges      atomic.Uint64
	recoveryTakeovers   atomic.Uint64
	recoveryLatencyNs   atomic.Int64

	// runSingle executes one simulation; indirected so tests can install
	// deterministic blocking or failing runs.
	runSingle func(ctx context.Context, cfg experiment.RunConfig, onProgress func(experiment.RunProgress)) (experiment.Result, error)
	// buildFigure builds one registered figure; indirected for tests.
	buildFigure func(ctx context.Context, id string, o experiment.Options) (experiment.Figure, error)
}

// New starts a server: Config.Workers executor goroutines draining the
// bounded run queue. Call Close to stop them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		ctx:       ctx,
		cancelAll: cancel,
		queue:     make(chan *run, cfg.QueueDepth),
		runs:      make(map[string]*run),
		inflight:  make(map[string]*run),
		cache:     newResultCache(cfg.CacheSize),
		runSingle: func(ctx context.Context, cfg experiment.RunConfig, onProgress func(experiment.RunProgress)) (experiment.Result, error) {
			return experiment.StartRun(ctx, cfg, onProgress).Result()
		},
		buildFigure: func(ctx context.Context, id string, o experiment.Options) (experiment.Figure, error) {
			spec, ok := experiment.FigureByID(id)
			if !ok {
				return experiment.Figure{}, fmt.Errorf("unknown figure %q", id)
			}
			return spec.Build(ctx, o)
		},
	}
	s.routes()
	// Prewarm the shared immutable route tables so the first wave of
	// concurrent runs reads instead of racing to build.
	for _, d := range []int{2, 3} {
		if _, err := kautz.TableFor(d, 3); err != nil {
			s.logf("prewarm K(%d,3) route table: %v", d, err)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, cancels queued and running work, and
// waits for the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.workers.Wait()
	// Finish anything still queued (workers are gone).
	s.mu.Lock()
	pending := make([]*run, 0)
	for _, r := range s.runs {
		pending = append(pending, r)
	}
	s.mu.Unlock()
	for _, r := range pending {
		s.finish(r, StateCancelled, nil, nil, context.Canceled)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) { s.mux.ServeHTTP(w, req) }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /systems", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, experiment.KnownSystems())
	})
	s.mux.HandleFunc("GET /figures", s.handleFigureList)
	s.mux.HandleFunc("POST /runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /figures/{fig}/runs", s.handleSubmitFigure)
	s.mux.HandleFunc("GET /runs", s.handleRunList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("DELETE /runs/{id}", s.handleRunCancel)
	s.mux.HandleFunc("GET /runs/{id}/result", s.handleRunResult)
	s.mux.HandleFunc("GET /runs/{id}/stats", s.handleRunStats)
	s.mux.HandleFunc("GET /runs/{id}/csv", s.handleRunCSV)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleRunEvents)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ---- submission ----

func (s *Server) handleSubmitRun(w http.ResponseWriter, req *http.Request) {
	var rr RunRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	cfg, err := rr.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid run request: %v", err)
		return
	}
	key, err := experiment.ConfigKey(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "canonicalizing config: %v", err)
		return
	}
	s.submit(w, &run{kind: KindRun, key: key, cfg: cfg})
}

func (s *Server) handleSubmitFigure(w http.ResponseWriter, req *http.Request) {
	figID := req.PathValue("fig")
	if _, ok := experiment.FigureByID(figID); !ok {
		writeError(w, http.StatusNotFound, "unknown figure %q", figID)
		return
	}
	var fr FigureRequest
	// An empty body is a valid figure submission (all fields defaulted).
	if err := json.NewDecoder(req.Body).Decode(&fr); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "decoding figure request: %v", err)
		return
	}
	opts, err := fr.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid figure request: %v", err)
		return
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = s.cfg.FigureParallelism
	}
	key, err := experiment.OptionsKey(figID, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "canonicalizing options: %v", err)
		return
	}
	s.submit(w, &run{kind: KindFigure, key: key, figureID: figID, figOpts: opts})
}

// submit routes one run: cache hit → immediate done record; identical
// in-flight submission → join it; otherwise a queue slot or 429.
func (s *Server) submit(w http.ResponseWriter, r *run) {
	s.submitted.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if ent, ok := s.cache.get(r.key); ok {
		s.hits.Add(1)
		r.mu.Lock()
		r.id = s.registerLocked(r)
		r.state = StateDone
		r.cached = true
		r.result, r.figure = ent.result, ent.figure
		r.submitted = time.Now()
		r.finished = r.submitted
		r.done = closedChan
		r.mu.Unlock()
		s.mu.Unlock()
		s.logf("%s %s cache hit (%s)", r.id, r.kind, shortKey(r.key))
		writeJSON(w, http.StatusOK, SubmitResponse{ID: r.id, Key: r.key, State: StateDone, Cached: true})
		return
	}
	if ex, ok := s.inflight[r.key]; ok {
		s.deduped.Add(1)
		ex.mu.Lock()
		state := ex.state
		ex.mu.Unlock()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, SubmitResponse{ID: ex.id, Key: r.key, State: state, Deduped: true})
		return
	}
	// Initialize under r.mu before the run lands on the queue: a worker may
	// pop it (and lock r.mu) the instant the send succeeds.
	r.mu.Lock()
	select {
	case s.queue <- r:
		s.misses.Add(1)
		r.id = s.registerLocked(r)
		r.state = StateQueued
		r.submitted = time.Now()
		r.done = make(chan struct{})
		s.inflight[r.key] = r
		r.mu.Unlock()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: r.id, Key: r.key, State: StateQueued})
	default:
		r.mu.Unlock()
		s.rejected.Add(1)
		retry := s.retryAfterLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"run queue full (%d pending); retry after ~%ds", s.cfg.QueueDepth, retry)
	}
}

// closedChan is a pre-closed done channel for cache-hit records.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// registerLocked assigns the next run ID, tracks the record, and prunes the
// oldest terminal records beyond the retention bound. Caller holds s.mu.
func (s *Server) registerLocked(r *run) string {
	s.nextID++
	id := fmt.Sprintf("r-%06d", s.nextID)
	s.runs[id] = r
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.RetainRuns {
		oldest := s.runs[s.order[0]]
		if oldest != nil {
			oldest.mu.Lock()
			terminal := oldest.terminalLocked()
			oldest.mu.Unlock()
			if !terminal {
				break // never evict live work
			}
			delete(s.runs, s.order[0])
		}
		s.order = s.order[1:]
	}
	return id
}

// retryAfterLocked estimates seconds until a queue slot frees: pending work
// over worker throughput, from the observed mean run time.
func (s *Server) retryAfterLocked() int {
	completed := s.completed.Load()
	avg := 2.0 // optimistic default before any completion
	if completed > 0 {
		avg = time.Duration(s.busyNanos.Load() / int64(completed)).Seconds()
	}
	est := avg * float64(len(s.queue)+1) / float64(s.cfg.Workers)
	switch {
	case est < 1:
		return 1
	case est > 600:
		return 600
	default:
		return int(est + 0.5)
	}
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// ---- execution ----

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case r := <-s.queue:
			s.execute(r)
		}
	}
}

func (s *Server) execute(r *run) {
	r.mu.Lock()
	if r.cancelled || r.terminalLocked() {
		terminal := r.terminalLocked()
		r.mu.Unlock()
		if !terminal {
			s.finish(r, StateCancelled, nil, nil, context.Canceled)
		}
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	r.cancel = cancel
	r.state = StateRunning
	r.mu.Unlock()
	defer cancel()

	s.inFlight.Add(1)
	started := time.Now()
	defer func() {
		s.inFlight.Add(-1)
		s.busyNanos.Add(int64(time.Since(started)))
	}()

	var (
		res experiment.Result
		fig experiment.Figure
		err error
	)
	switch r.kind {
	case KindRun:
		res, err = s.runSingle(ctx, r.cfg, func(p experiment.RunProgress) { s.noteProgress(r, p) })
	case KindFigure:
		opts := r.figOpts
		opts.Progress = func(ev experiment.ProgressEvent) { s.noteSweep(r, ev) }
		fig, err = s.buildFigure(ctx, r.figureID, opts)
	}

	r.mu.Lock()
	cancelled := r.cancelled
	r.mu.Unlock()
	switch {
	case err == nil && r.kind == KindRun:
		// Fold the shard counters into /metrics before stripping: the strip
		// zeroes them (host-execution detail, and they differ across
		// run_parallelism settings of one cache key).
		s.shardRounds.Add(uint64(res.Stats.ShardRounds))
		s.shardMembershipNs.Add(res.Stats.MembershipPhaseNs)
		s.shardCellNs.Add(res.Stats.CellPhaseNs)
		s.shardMergeNs.Add(res.Stats.MergeNs)
		s.drainBatches.Add(res.Stats.DrainBatches)
		s.drainBatchedEvents.Add(res.Stats.DrainBatchedEvents)
		s.drainSerialEvents.Add(res.Stats.DrainSerialEvents)
		s.drainReexecs.Add(res.Stats.DrainReexecs)
		s.drainPrepNs.Add(res.Stats.DrainPrepNs)
		s.drainWarms.Add(res.Stats.DrainWarms)
		s.drainWarmHits.Add(res.Stats.DrainWarmHits)
		s.recoveryReelections.Add(uint64(res.Stats.Recovery.Reelections))
		s.recoveryMerges.Add(uint64(res.Stats.Recovery.Merges))
		s.recoveryTakeovers.Add(uint64(res.Stats.Recovery.Takeovers))
		s.recoveryLatencyNs.Add(res.Stats.Recovery.LatencyNs)
		// Strip host timing so the cached bytes equal any replay's bytes.
		res.Stats = res.Stats.StripWallClock()
		s.desEvents.Add(res.Stats.DESEvents)
		s.finish(r, StateDone, &res, nil, nil)
	case err == nil:
		s.shardRounds.Add(fig.Stats.ShardRounds)
		s.shardMembershipNs.Add(fig.Stats.MembershipPhaseNs)
		s.shardCellNs.Add(fig.Stats.CellPhaseNs)
		s.shardMergeNs.Add(fig.Stats.MergeNs)
		s.drainBatches.Add(fig.Stats.DrainBatches)
		s.drainBatchedEvents.Add(fig.Stats.DrainBatchedEvents)
		s.drainSerialEvents.Add(fig.Stats.DrainSerialEvents)
		s.drainReexecs.Add(fig.Stats.DrainReexecs)
		s.drainPrepNs.Add(fig.Stats.DrainPrepNs)
		s.drainWarms.Add(fig.Stats.DrainWarms)
		s.drainWarmHits.Add(fig.Stats.DrainWarmHits)
		s.recoveryReelections.Add(uint64(fig.Stats.Recovery.Reelections))
		s.recoveryMerges.Add(uint64(fig.Stats.Recovery.Merges))
		s.recoveryTakeovers.Add(uint64(fig.Stats.Recovery.Takeovers))
		s.recoveryLatencyNs.Add(fig.Stats.Recovery.LatencyNs)
		fig.Stats.WallClock = 0
		fig.Stats.RunWallClock = 0
		fig.Stats.EventsPerSec = 0
		fig.Stats.ShardRounds = 0
		fig.Stats.MembershipPhaseNs = 0
		fig.Stats.CellPhaseNs = 0
		fig.Stats.MergeNs = 0
		// The drain totals differ across drain_parallelism settings of one
		// figure cache key, so they are stripped like the shard counters.
		fig.Stats.DrainBatches = 0
		fig.Stats.DrainBatchedEvents = 0
		fig.Stats.DrainSerialEvents = 0
		fig.Stats.DrainReexecs = 0
		fig.Stats.DrainPrepNs = 0
		fig.Stats.DrainWarms = 0
		fig.Stats.DrainWarmHits = 0
		s.desEvents.Add(fig.Stats.DESEvents)
		s.finish(r, StateDone, nil, &fig, nil)
	case cancelled || errors.Is(err, context.Canceled):
		s.finish(r, StateCancelled, nil, nil, err)
	default:
		s.finish(r, StateFailed, nil, nil, err)
	}
}

// finish moves a run to a terminal state, updates the cache and inflight
// index, publishes the terminal event and releases subscribers. Idempotent:
// the first caller wins. Lock order is s.mu → r.mu throughout the server;
// callers must hold neither.
func (s *Server) finish(r *run, state string, res *experiment.Result, fig *experiment.Figure, err error) {
	s.mu.Lock()
	r.mu.Lock()
	if r.terminalLocked() {
		r.mu.Unlock()
		s.mu.Unlock()
		return
	}
	r.state = state
	r.result, r.figure = res, fig
	r.finished = time.Now()
	if err != nil {
		r.errMsg = err.Error()
	}
	if s.inflight[r.key] == r {
		delete(s.inflight, r.key)
	}
	if state == StateDone {
		s.cache.put(&cacheEntry{key: r.key, result: res, figure: fig})
	}
	line, lineErr := json.Marshal(r.statusLocked())
	subs := r.subs
	r.subs = nil
	done := r.done
	r.mu.Unlock()
	s.mu.Unlock()

	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateCancelled:
		s.cancelled.Add(1)
	}
	for ch := range subs {
		if lineErr == nil {
			// Best effort: a gone subscriber re-reads the final status after
			// the channel close below.
			select {
			case ch <- line:
			default:
			}
		}
		close(ch)
	}
	if done != nil {
		select {
		case <-done:
		default:
			close(done)
		}
	}
	s.logf("%s %s %s (%s)", r.id, r.kind, state, shortKey(r.key))
}

// noteProgress records a single run's progress and pushes a throttled
// status event to stream subscribers.
func (s *Server) noteProgress(r *run, p experiment.RunProgress) {
	r.mu.Lock()
	r.progress = p
	r.hasProgress = true
	if time.Since(r.lastPush) >= 100*time.Millisecond {
		r.lastPush = time.Now()
		pushLocked(r)
	}
	r.mu.Unlock()
}

// noteSweep records a figure run's sweep progress (one event per completed
// simulation; the sweep's progress pump serializes calls).
func (s *Server) noteSweep(r *run, ev experiment.ProgressEvent) {
	r.mu.Lock()
	r.sweep = ev
	r.hasSweep = true
	if ev.Done == ev.Total || time.Since(r.lastPush) >= 100*time.Millisecond {
		r.lastPush = time.Now()
		pushLocked(r)
	}
	r.mu.Unlock()
}

// pushLocked sends the current status snapshot to every subscriber without
// blocking (slow consumers drop intermediate events; the terminal status is
// re-read by the handler after channel close). Caller holds r.mu.
func pushLocked(r *run) {
	if len(r.subs) == 0 {
		return
	}
	line, err := json.Marshal(r.statusLocked())
	if err != nil {
		return
	}
	for ch := range r.subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// statusLocked snapshots the run as its wire status. Caller holds r.mu.
func (r *run) statusLocked() RunStatus {
	st := RunStatus{
		ID:          r.id,
		Kind:        r.kind,
		Key:         r.key,
		State:       r.state,
		Figure:      r.figureID,
		Cached:      r.cached,
		Error:       r.errMsg,
		SubmittedAt: r.submitted.UTC().Format(time.RFC3339Nano),
	}
	if r.terminalLocked() {
		st.WallSeconds = r.finished.Sub(r.submitted).Seconds()
	}
	if r.hasProgress {
		st.Progress = &ProgressStatus{
			SimTimeS:  r.progress.SimTime.Seconds(),
			SimEndS:   r.progress.SimEnd.Seconds(),
			Fraction:  r.progress.Fraction(),
			DESEvents: r.progress.DESEvents,
		}
	}
	if r.hasSweep {
		st.Sweep = &SweepStatus{
			Done:    r.sweep.Done,
			Total:   r.sweep.Total,
			Aborted: r.sweep.Aborted,
			System:  r.sweep.System,
			Seed:    r.sweep.Seed,
			X:       r.sweep.X,
		}
		if r.sweep.Err != nil {
			st.Sweep.Error = r.sweep.Err.Error()
		}
	}
	return st
}

// ---- queries ----

func (s *Server) lookup(w http.ResponseWriter, req *http.Request) *run {
	s.mu.Lock()
	r := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	if r == nil {
		writeError(w, http.StatusNotFound, "unknown run %q", req.PathValue("id"))
	}
	return r
}

func (s *Server) handleRunStatus(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.statusLocked()
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRunList(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	out := make([]RunStatus, 0, len(s.order))
	for _, id := range s.order {
		if r := s.runs[id]; r != nil {
			r.mu.Lock()
			out = append(out, r.statusLocked())
			r.mu.Unlock()
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRunCancel(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	queued := false
	var cancel context.CancelFunc
	switch {
	case r.terminalLocked():
		// Nothing to do.
	case r.state == StateQueued:
		r.cancelled = true
		queued = true
	default:
		r.cancelled = true
		cancel = r.cancel
	}
	r.mu.Unlock()
	if queued {
		// The worker that eventually pops this run observes cancelled and
		// finishes it too, but finish is idempotent so racing is fine.
		s.finish(r, StateCancelled, nil, nil, context.Canceled)
	}
	if cancel != nil {
		cancel()
	}
	r.mu.Lock()
	st := r.statusLocked()
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// requireDone returns the run if it completed successfully, else writes the
// appropriate status: 404 unknown, 409 not finished / failed.
func (s *Server) requireDone(w http.ResponseWriter, req *http.Request) *run {
	r := s.lookup(w, req)
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateDone {
		writeError(w, http.StatusConflict, "run %s is %s", r.id, r.state)
		return nil
	}
	return r
}

func (s *Server) handleRunResult(w http.ResponseWriter, req *http.Request) {
	r := s.requireDone(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	res := r.result
	r.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, "run %s is a figure build; fetch /runs/%s/csv", r.id, r.id)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRunStats(w http.ResponseWriter, req *http.Request) {
	r := s.requireDone(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.result != nil:
		writeJSON(w, http.StatusOK, r.result.Stats)
	case r.figure != nil:
		writeJSON(w, http.StatusOK, r.figure.Stats)
	}
}

func (s *Server) handleRunCSV(w http.ResponseWriter, req *http.Request) {
	r := s.requireDone(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	fig := r.figure
	r.mu.Unlock()
	if fig == nil {
		writeError(w, http.StatusConflict, "run %s is a single run; fetch /runs/%s/result", r.id, r.id)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(fig.CSV()))
}

func (s *Server) handleRunEvents(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	r.mu.Lock()
	first, err := json.Marshal(r.statusLocked())
	terminal := r.terminalLocked()
	var ch chan []byte
	if !terminal {
		ch = make(chan []byte, 32)
		if r.subs == nil {
			r.subs = make(map[chan []byte]struct{})
		}
		r.subs[ch] = struct{}{}
	}
	r.mu.Unlock()
	if err != nil {
		return
	}
	writeLine := func(line []byte) bool {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !writeLine(first) || terminal {
		return
	}
	defer func() {
		r.mu.Lock()
		delete(r.subs, ch)
		r.mu.Unlock()
	}()
	for {
		select {
		case <-req.Context().Done():
			return
		case line, ok := <-ch:
			if !ok {
				// Stream closed on terminal transition: emit final status.
				r.mu.Lock()
				last, err := json.Marshal(r.statusLocked())
				r.mu.Unlock()
				if err == nil {
					writeLine(last)
				}
				return
			}
			if !writeLine(line) {
				return
			}
		}
	}
}

func (s *Server) handleFigureList(w http.ResponseWriter, _ *http.Request) {
	type figJSON struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Kind  string `json:"kind"`
	}
	specs := experiment.Figures()
	out := make([]figJSON, 0, len(specs))
	for _, spec := range specs {
		out = append(out, figJSON{ID: spec.ID, Title: spec.Title, Kind: spec.Kind.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

// MetricsSnapshot assembles the current serving metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	entries := s.cache.len()
	tracked := len(s.runs)
	s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	m := Metrics{
		UptimeSeconds: up,
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		RunsInFlight:  int(s.inFlight.Load()),
		Submitted:     s.submitted.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Cancelled:     s.cancelled.Load(),
		Rejected:      s.rejected.Load(),
		Deduped:       s.deduped.Load(),
		CacheEntries:  entries,
		CacheHits:     s.hits.Load(),
		CacheMisses:   s.misses.Load(),
		DESEvents:     s.desEvents.Load(),
		RunsTracked:   tracked,

		ShardRounds:            s.shardRounds.Load(),
		ShardMembershipPhaseNs: s.shardMembershipNs.Load(),
		ShardCellPhaseNs:       s.shardCellNs.Load(),
		ShardMergeNs:           s.shardMergeNs.Load(),
		DrainBatches:           s.drainBatches.Load(),
		DrainBatchedEvents:     s.drainBatchedEvents.Load(),
		DrainSerialEvents:      s.drainSerialEvents.Load(),
		DrainReexecs:           s.drainReexecs.Load(),
		DrainPrepNs:            s.drainPrepNs.Load(),
		DrainWarms:             s.drainWarms.Load(),
		DrainWarmHits:          s.drainWarmHits.Load(),
		RecoveryReelections:    s.recoveryReelections.Load(),
		RecoveryMerges:         s.recoveryMerges.Load(),
		RecoveryTakeovers:      s.recoveryTakeovers.Load(),
		RecoveryLatencyNs:      s.recoveryLatencyNs.Load(),
	}
	if total := m.CacheHits + m.CacheMisses; total > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(total)
	}
	if up > 0 {
		m.DESEventsPerSec = float64(m.DESEvents) / up
	}
	counters := kautz.AllTableCounters()
	sort.Slice(counters, func(i, j int) bool {
		if counters[i].Degree != counters[j].Degree {
			return counters[i].Degree < counters[j].Degree
		}
		return counters[i].Diameter < counters[j].Diameter
	})
	for _, c := range counters {
		m.RouteTables = append(m.RouteTables, RouteTableMetrics{
			Degree: c.Degree, Diameter: c.Diameter, Pairs: c.Pairs,
			Hits: c.Hits, Misses: c.Misses,
		})
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
