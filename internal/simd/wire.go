package simd

import (
	"fmt"
	"time"

	"refer/internal/chaos"
	"refer/internal/energy"
	"refer/internal/experiment"
	"refer/internal/recovery"
	"refer/internal/scenario"
)

// Wire format of the refer-simd HTTP API (schema in EXPERIMENTS.md).
// Durations travel as seconds so clients never deal in nanosecond integers;
// zero fields take the experiment package's paper defaults, and the
// canonicalized (fully defaulted) config is what the result cache hashes.

// RunRequest is the JSON body of POST /runs: one simulation run. Every
// field is optional except that a meaningful submission names at least a
// seed; zero values default to the paper's parameters (200 sensors, 100 s
// warmup, 1000 s window, …).
type RunRequest struct {
	// System is the protocol under test (GET /systems lists the accepted
	// names); empty selects REFER.
	System string `json:"system,omitempty"`
	// Seed drives deployment and all in-world randomness.
	Seed int64 `json:"seed"`
	// Deployment parameters (scenario.Params).
	Sensors       int     `json:"sensors,omitempty"`
	MaxSpeed      float64 `json:"max_speed,omitempty"`
	SideM         float64 `json:"side_m,omitempty"`
	SensorRangeM  float64 `json:"sensor_range_m,omitempty"`
	ActuatorRange float64 `json:"actuator_range_m,omitempty"`
	AnchorRadiusM float64 `json:"anchor_radius_m,omitempty"`
	ActuatorGrid  int     `json:"actuator_grid,omitempty"`
	GridSpacingM  float64 `json:"grid_spacing_m,omitempty"`
	// SensorBatteryJ constrains every sensor to a battery budget in Joules
	// (0: unconstrained, the paper's setting). Pair with an energy spec for
	// lifetime studies.
	SensorBatteryJ float64 `json:"sensor_battery_j,omitempty"`
	// Run windows and traffic pattern.
	WarmupS          float64 `json:"warmup_s,omitempty"`
	DurationS        float64 `json:"duration_s,omitempty"`
	BurstIntervalS   float64 `json:"burst_interval_s,omitempty"`
	Sources          int     `json:"sources,omitempty"`
	PacketsPerSource int     `json:"packets_per_source,omitempty"`
	PacketSpacingS   float64 `json:"packet_spacing_s,omitempty"`
	// Fault rotation and QoS deadline.
	FaultCount     int     `json:"fault_count,omitempty"`
	FaultRotationS float64 `json:"fault_rotation_s,omitempty"`
	QoSDeadlineS   float64 `json:"qos_deadline_s,omitempty"`
	// Chaos optionally attaches a deterministic fault schedule (same JSON
	// schema as refer-bench -chaos; see EXPERIMENTS.md).
	Chaos *chaos.Schedule `json:"chaos,omitempty"`
	// Energy optionally selects a per-packet cost model (same schema as
	// RunConfig.Energy; see EXPERIMENTS.md). Absent keeps the paper's flat
	// constants and the run's cache key unchanged.
	Energy *energy.Spec `json:"energy,omitempty"`
	// Recovery optionally enables the self-healing recovery protocols (same
	// schema as RunConfig.Recovery; see EXPERIMENTS.md). Absent keeps
	// recovery off and the run's cache key unchanged.
	Recovery *recovery.Spec `json:"recovery,omitempty"`
	// RunParallelism shards the run's bulk maintenance phases across this
	// many worker goroutines (RunConfig.RunParallelism). Results are
	// byte-identical at any setting, so the field is excluded from the
	// cache key — a latency knob, not a result knob. Must lie in
	// [0, MaxParallelism].
	RunParallelism int `json:"run_parallelism,omitempty"`
	// DrainParallelism sets the run's DES batched-drain worker count
	// (RunConfig.DrainParallelism): conflict-free radio events prepare in
	// parallel while every decision commits serially in canonical order.
	// Byte-identical output at any setting; excluded from the cache key
	// like RunParallelism. Must lie in [0, MaxParallelism].
	DrainParallelism int `json:"drain_parallelism,omitempty"`
}

// secs converts a seconds field, rejecting negatives.
func secs(name string, v float64) (time.Duration, error) {
	if v < 0 {
		return 0, fmt.Errorf("%s must be >= 0, got %g", name, v)
	}
	return time.Duration(v * float64(time.Second)), nil
}

// Config converts the wire request into an experiment.RunConfig, validating
// the system name, durations and chaos schedule.
func (r RunRequest) Config() (experiment.RunConfig, error) {
	if r.System != "" && !experiment.KnownSystem(r.System) {
		return experiment.RunConfig{}, fmt.Errorf("unknown system %q (known: %v)",
			r.System, experiment.KnownSystems())
	}
	if r.Sensors < 0 || r.Sources < 0 || r.PacketsPerSource < 0 || r.FaultCount < 0 {
		return experiment.RunConfig{}, fmt.Errorf("counts must be >= 0")
	}
	if r.MaxSpeed < 0 {
		return experiment.RunConfig{}, fmt.Errorf("max_speed must be >= 0, got %g", r.MaxSpeed)
	}
	if r.SensorBatteryJ < 0 {
		return experiment.RunConfig{}, fmt.Errorf("sensor_battery_j must be >= 0, got %g", r.SensorBatteryJ)
	}
	if r.RunParallelism < 0 || r.RunParallelism > experiment.MaxParallelism {
		return experiment.RunConfig{}, fmt.Errorf("run_parallelism must be in [0, %d], got %d",
			experiment.MaxParallelism, r.RunParallelism)
	}
	if r.DrainParallelism < 0 || r.DrainParallelism > experiment.MaxParallelism {
		return experiment.RunConfig{}, fmt.Errorf("drain_parallelism must be in [0, %d], got %d",
			experiment.MaxParallelism, r.DrainParallelism)
	}
	cfg := experiment.RunConfig{
		System: r.System,
		Scenario: scenario.Params{
			Seed:          r.Seed,
			Sensors:       r.Sensors,
			MaxSpeed:      r.MaxSpeed,
			Side:          r.SideM,
			SensorRange:   r.SensorRangeM,
			ActuatorRange: r.ActuatorRange,
			AnchorRadius:  r.AnchorRadiusM,
			ActuatorGrid:  r.ActuatorGrid,
			GridSpacing:   r.GridSpacingM,
			SensorBattery: r.SensorBatteryJ,
		},
		Sources:          r.Sources,
		PacketsPerSource: r.PacketsPerSource,
		FaultCount:       r.FaultCount,
		RunParallelism:   r.RunParallelism,
		DrainParallelism: r.DrainParallelism,
	}
	var err error
	if cfg.Warmup, err = secs("warmup_s", r.WarmupS); err != nil {
		return experiment.RunConfig{}, err
	}
	if cfg.Duration, err = secs("duration_s", r.DurationS); err != nil {
		return experiment.RunConfig{}, err
	}
	if cfg.BurstInterval, err = secs("burst_interval_s", r.BurstIntervalS); err != nil {
		return experiment.RunConfig{}, err
	}
	if cfg.PacketSpacing, err = secs("packet_spacing_s", r.PacketSpacingS); err != nil {
		return experiment.RunConfig{}, err
	}
	if cfg.FaultRotation, err = secs("fault_rotation_s", r.FaultRotationS); err != nil {
		return experiment.RunConfig{}, err
	}
	if cfg.QoSDeadline, err = secs("qos_deadline_s", r.QoSDeadlineS); err != nil {
		return experiment.RunConfig{}, err
	}
	if r.Chaos != nil {
		if err := r.Chaos.Validate(); err != nil {
			return experiment.RunConfig{}, fmt.Errorf("chaos schedule: %w", err)
		}
		cfg.Chaos = r.Chaos
	}
	if r.Energy != nil {
		if err := r.Energy.Validate(); err != nil {
			return experiment.RunConfig{}, fmt.Errorf("energy spec: %w", err)
		}
		cfg.Energy = *r.Energy
	}
	if r.Recovery != nil {
		if err := r.Recovery.Validate(); err != nil {
			return experiment.RunConfig{}, fmt.Errorf("recovery spec: %w", err)
		}
		cfg.Recovery = *r.Recovery
	}
	return cfg, nil
}

// FigureRequest is the JSON body of POST /figures/{id}/runs: build one
// registered figure (a full sweep) on the server. Zero fields take the
// sweep defaults (5 seeds, paper windows, all four systems).
type FigureRequest struct {
	Seeds            []int64  `json:"seeds,omitempty"`
	WarmupS          float64  `json:"warmup_s,omitempty"`
	DurationS        float64  `json:"duration_s,omitempty"`
	Sensors          int      `json:"sensors,omitempty"`
	Systems          []string `json:"systems,omitempty"`
	PacketsPerSource int      `json:"packets_per_source,omitempty"`
	// Parallelism bounds the sweep's concurrent runs; zero uses the
	// server's figure-parallelism setting. Figure output is byte-identical
	// at any worker count, so this is a latency knob, not a result knob.
	Parallelism int `json:"parallelism,omitempty"`
	// RunParallelism shards the bulk maintenance phases inside each run of
	// the sweep (Options.RunParallelism). Byte-identical output at any
	// setting; excluded from the cache key like Parallelism. Must lie in
	// [0, MaxParallelism].
	RunParallelism int `json:"run_parallelism,omitempty"`
	// DrainParallelism sets the DES batched-drain worker count inside each
	// run of the sweep (Options.DrainParallelism). Byte-identical output at
	// any setting; excluded from the cache key like Parallelism. Must lie
	// in [0, MaxParallelism].
	DrainParallelism int             `json:"drain_parallelism,omitempty"`
	Chaos            *chaos.Schedule `json:"chaos,omitempty"`
	// Energy optionally prices every run of the sweep with a cost model
	// (same schema as RunConfig.Energy; see EXPERIMENTS.md).
	Energy *energy.Spec `json:"energy,omitempty"`
	// Recovery optionally enables the self-healing recovery protocols on
	// every run of the sweep (Options.Recovery).
	Recovery *recovery.Spec `json:"recovery,omitempty"`
}

// Options converts the wire request into sweep options.
func (r FigureRequest) Options() (experiment.Options, error) {
	for _, sys := range r.Systems {
		if !experiment.KnownSystem(sys) {
			return experiment.Options{}, fmt.Errorf("unknown system %q (known: %v)",
				sys, experiment.KnownSystems())
		}
	}
	if r.Sensors < 0 || r.PacketsPerSource < 0 || r.Parallelism < 0 {
		return experiment.Options{}, fmt.Errorf("counts must be >= 0")
	}
	if r.Parallelism > experiment.MaxParallelism {
		return experiment.Options{}, fmt.Errorf("parallelism must be in [0, %d], got %d",
			experiment.MaxParallelism, r.Parallelism)
	}
	if r.RunParallelism < 0 || r.RunParallelism > experiment.MaxParallelism {
		return experiment.Options{}, fmt.Errorf("run_parallelism must be in [0, %d], got %d",
			experiment.MaxParallelism, r.RunParallelism)
	}
	if r.DrainParallelism < 0 || r.DrainParallelism > experiment.MaxParallelism {
		return experiment.Options{}, fmt.Errorf("drain_parallelism must be in [0, %d], got %d",
			experiment.MaxParallelism, r.DrainParallelism)
	}
	o := experiment.Options{
		Seeds:            r.Seeds,
		Sensors:          r.Sensors,
		Systems:          r.Systems,
		PacketsPerSource: r.PacketsPerSource,
		Parallelism:      r.Parallelism,
		RunParallelism:   r.RunParallelism,
		DrainParallelism: r.DrainParallelism,
	}
	var err error
	if o.Warmup, err = secs("warmup_s", r.WarmupS); err != nil {
		return experiment.Options{}, err
	}
	if o.Duration, err = secs("duration_s", r.DurationS); err != nil {
		return experiment.Options{}, err
	}
	if r.Chaos != nil {
		if err := r.Chaos.Validate(); err != nil {
			return experiment.Options{}, fmt.Errorf("chaos schedule: %w", err)
		}
		o.Chaos = r.Chaos
	}
	if r.Energy != nil {
		if err := r.Energy.Validate(); err != nil {
			return experiment.Options{}, fmt.Errorf("energy spec: %w", err)
		}
		o.Energy = *r.Energy
	}
	if r.Recovery != nil {
		if err := r.Recovery.Validate(); err != nil {
			return experiment.Options{}, fmt.Errorf("recovery spec: %w", err)
		}
		o.Recovery = *r.Recovery
	}
	return o, nil
}

// SubmitResponse is the JSON body returned by POST /runs and
// POST /figures/{id}/runs.
type SubmitResponse struct {
	// ID addresses the run in every other endpoint.
	ID string `json:"id"`
	// Key is the content address of the canonicalized submission.
	Key string `json:"key"`
	// State is the run's state at submission time: "queued", or "done"
	// when served from the result cache.
	State string `json:"state"`
	// Cached reports that the result was served from the cache without a
	// queue slot; Deduped that an identical submission was already queued
	// or running and this response addresses that run.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
}

// RunStatus is the JSON body of GET /runs/{id} (and each line of the
// GET /runs/{id}/events stream).
type RunStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "run" or "figure"
	Key   string `json:"key"`
	State string `json:"state"`
	// Figure is the registry ID for figure runs.
	Figure string `json:"figure,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// SubmittedAt is RFC 3339; WallSeconds is queue-to-finish host time
	// for terminal runs.
	SubmittedAt string  `json:"submitted_at"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Progress reports a single run's virtual-clock advance while running.
	Progress *ProgressStatus `json:"progress,omitempty"`
	// Sweep reports a figure run's per-run sweep progress while running.
	Sweep *SweepStatus `json:"sweep,omitempty"`
}

// ProgressStatus is the wire form of experiment.RunProgress.
type ProgressStatus struct {
	SimTimeS  float64 `json:"sim_time_s"`
	SimEndS   float64 `json:"sim_end_s"`
	Fraction  float64 `json:"fraction"`
	DESEvents uint64  `json:"des_events"`
}

// SweepStatus is the wire form of experiment.ProgressEvent.
type SweepStatus struct {
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	Aborted bool    `json:"aborted,omitempty"`
	System  string  `json:"system,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	X       float64 `json:"x,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Metrics is the JSON body of GET /metrics.
type Metrics struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Workers         int     `json:"workers"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCapacity   int     `json:"queue_capacity"`
	RunsInFlight    int     `json:"runs_in_flight"`
	Submitted       uint64  `json:"submitted"`
	Completed       uint64  `json:"completed"`
	Failed          uint64  `json:"failed"`
	Cancelled       uint64  `json:"cancelled"`
	Rejected        uint64  `json:"rejected"`
	Deduped         uint64  `json:"deduped"`
	CacheEntries    int     `json:"cache_entries"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	DESEvents       uint64  `json:"des_events"`
	DESEventsPerSec float64 `json:"des_events_per_sec"`
	RunsTracked     int     `json:"runs_tracked"`
	// Shard counters, accumulated across every executed run (before result
	// stripping): maintenance rounds that ran the sharded path and the
	// cumulative host nanoseconds per phase. All zero unless submissions
	// set run_parallelism > 1.
	ShardRounds            uint64 `json:"shard_rounds"`
	ShardMembershipPhaseNs int64  `json:"shard_membership_phase_ns"`
	ShardCellPhaseNs       int64  `json:"shard_cell_phase_ns"`
	ShardMergeNs           int64  `json:"shard_merge_ns"`
	// Batched-drain counters, accumulated across every executed run (before
	// result stripping): prepared batches, events prepared in them, events
	// the drain committed serially, prepares re-executed by the snapshot
	// guard, cumulative host nanoseconds in parallel prepare phases, and
	// neighbor-cache warms performed/consumed. All zero unless submissions
	// set drain_parallelism > 1.
	DrainBatches       uint64 `json:"drain_batches"`
	DrainBatchedEvents uint64 `json:"drain_batched_events"`
	DrainSerialEvents  uint64 `json:"drain_serial_events"`
	DrainReexecs       uint64 `json:"drain_reexecs"`
	DrainPrepNs        int64  `json:"drain_prep_ns"`
	DrainWarms         uint64 `json:"drain_warms"`
	DrainWarmHits      uint64 `json:"drain_warm_hits"`
	// Recovery counters, accumulated across every executed run: completed
	// corner re-elections, cell merges and CAN zone takeovers, plus the
	// cumulative virtual detection→repair latency. All zero unless
	// submissions enable a recovery spec (or run REFER/recovery).
	RecoveryReelections uint64 `json:"recovery_reelections"`
	RecoveryMerges      uint64 `json:"recovery_merges"`
	RecoveryTakeovers   uint64 `json:"recovery_takeovers"`
	RecoveryLatencyNs   int64  `json:"recovery_latency_ns"`
	// RouteTables snapshots the process-wide shared Kautz route tables
	// every concurrent run reads from.
	RouteTables []RouteTableMetrics `json:"route_tables"`
}

// RouteTableMetrics is one shared route table's counters.
type RouteTableMetrics struct {
	Degree   int    `json:"degree"`
	Diameter int    `json:"diameter"`
	Pairs    int    `json:"pairs"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}
