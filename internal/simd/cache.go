package simd

import (
	"container/list"

	"refer/internal/experiment"
)

// cacheEntry is one cached outcome: a run's Result or a figure build. The
// stored stats are wall-clock-stripped at insertion, so a cached entry is
// byte-identical to what a fresh run of the same canonical config would
// serve (replay determinism makes everything else a function of the key).
type cacheEntry struct {
	key    string
	result *experiment.Result
	figure *experiment.Figure
}

// resultCache is a bounded LRU over canonical config keys. It is not
// self-locking: the server guards it with its own mutex.
type resultCache struct {
	max   int
	ll    *list.List
	items map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

func (c *resultCache) put(ent *cacheEntry) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.items[ent.key]; ok {
		c.ll.MoveToFront(el)
		el.Value = ent
		return
	}
	c.items[ent.key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
