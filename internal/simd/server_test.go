package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"refer/internal/chaos"
	"refer/internal/experiment"
	"refer/internal/recovery"
	"refer/internal/scenario"
)

// smallRun is a cheap but REFER-buildable run request (sparse deployments
// can fail core embedding; 140 sensors builds for every seed in 1..16).
func smallRun(seed int64) RunRequest {
	return RunRequest{
		Seed:             seed,
		Sensors:          140,
		WarmupS:          1,
		DurationS:        3,
		Sources:          2,
		PacketsPerSource: 2,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitTerminal polls a run until it reaches a terminal state.
func waitTerminal(t *testing.T, client *http.Client, base, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, data := getBody(t, client, base+"/runs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /runs/%s: %d %s", id, resp.StatusCode, data)
		}
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerLoadSmoke is the issue's load criterion in-process: >=1000
// concurrent short-run submissions over a small set of distinct configs.
// Exactly one execution per distinct config happens; every other
// submission is served by the in-flight dedup or the result cache, the
// bounded queue never overflows, and per-key results are byte-identical
// across submissions.
func TestServerLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	const (
		distinct    = 16
		submissions = 1200
		clients     = 48
	)
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	ids := make([]string, submissions)
	var wg sync.WaitGroup
	errs := make(chan error, submissions)
	sem := make(chan struct{}, clients)
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, data := postJSON(t, client, ts.URL+"/runs", smallRun(int64(1+i%distinct)))
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("submission %d: %d %s", i, resp.StatusCode, data)
				return
			}
			var sub SubmitResponse
			if err := json.Unmarshal(data, &sub); err != nil {
				errs <- fmt.Errorf("submission %d: %v", i, err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every submission resolved to a run that finishes successfully.
	states := make(map[string]RunStatus)
	for _, id := range ids {
		if _, ok := states[id]; ok {
			continue
		}
		st := waitTerminal(t, client, ts.URL, id)
		if st.State != StateDone {
			t.Fatalf("run %s finished %s: %s", id, st.State, st.Error)
		}
		states[id] = st
	}

	// Per canonical key, all runs serve byte-identical results.
	byKey := make(map[string][]string)
	for id, st := range states {
		byKey[st.Key] = append(byKey[st.Key], id)
	}
	if len(byKey) != distinct {
		t.Fatalf("got %d distinct keys, want %d", len(byKey), distinct)
	}
	for key, keyIDs := range byKey {
		var first []byte
		for _, id := range keyIDs[:min(len(keyIDs), 3)] {
			resp, data := getBody(t, client, ts.URL+"/runs/"+id+"/result")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET result %s: %d %s", id, resp.StatusCode, data)
			}
			if first == nil {
				first = data
			} else if !bytes.Equal(first, data) {
				t.Fatalf("key %s: results diverge across submissions", key)
			}
		}
	}

	resp, data := getBody(t, client, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != submissions {
		t.Errorf("submitted = %d, want %d", m.Submitted, submissions)
	}
	if m.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 (dedup should keep the queue bounded)", m.Rejected)
	}
	if m.CacheMisses != distinct {
		t.Errorf("cache_misses = %d, want %d (one execution per distinct config)", m.CacheMisses, distinct)
	}
	if m.CacheHits+m.Deduped != submissions-distinct {
		t.Errorf("cache_hits(%d) + deduped(%d) != %d", m.CacheHits, m.Deduped, submissions-distinct)
	}
	if m.Completed != distinct {
		t.Errorf("completed = %d, want %d", m.Completed, distinct)
	}
	if m.DESEvents == 0 || m.DESEventsPerSec <= 0 {
		t.Errorf("DES throughput not reported: %+v", m)
	}
	if len(m.RouteTables) == 0 {
		t.Error("no shared route tables reported")
	}
}

// TestServerCacheByteIdentical pins the cache contract directly: the cached
// response is byte-identical both to the fresh run's response and to an
// in-process RunContext of the same config with host timing stripped.
func TestServerCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	client := ts.Client()
	req := smallRun(3)

	resp, data := postJSON(t, client, ts.URL+"/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d %s", resp.StatusCode, data)
	}
	var first SubmitResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, client, ts.URL, first.ID); st.State != StateDone {
		t.Fatalf("first run finished %s: %s", st.State, st.Error)
	}
	_, freshBody := getBody(t, client, ts.URL+"/runs/"+first.ID+"/result")

	resp, data = postJSON(t, client, ts.URL+"/runs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submission: %d %s", resp.StatusCode, data)
	}
	var second SubmitResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	_, cachedBody := getBody(t, client, ts.URL+"/runs/"+second.ID+"/result")
	if !bytes.Equal(freshBody, cachedBody) {
		t.Fatal("cached result is not byte-identical to the fresh run's result")
	}

	// The served bytes equal a local replay of the same config.
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	local, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	local.Stats = local.Stats.StripWallClock()
	want, err := json.MarshalIndent(local, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(want, freshBody) {
		t.Fatalf("served result diverges from local replay:\n%s\nvs\n%s", freshBody, want)
	}
}

// TestServerBackpressure fills the one-deep queue with a blocked worker and
// checks the next submission is rejected 429 with a Retry-After hint.
func TestServerBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.runSingle = func(ctx context.Context, cfg experiment.RunConfig, _ func(experiment.RunProgress)) (experiment.Result, error) {
		select {
		case <-release:
			return experiment.Result{System: cfg.System, Created: int(cfg.Scenario.Seed)}, nil
		case <-ctx.Done():
			return experiment.Result{}, ctx.Err()
		}
	}
	client := ts.Client()

	// First run occupies the worker, second the queue slot.
	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		resp, data := postJSON(t, client, ts.URL+"/runs", smallRun(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: %d %s", seed, resp.StatusCode, data)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}
	// Wait for the worker to pick up run 1 so run 2 owns the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, data := getBody(t, client, ts.URL+"/runs/"+ids[0])
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never started", ids[0])
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, data := postJSON(t, client, ts.URL+"/runs", smallRun(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if m := s.MetricsSnapshot(); m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}

	close(release)
	for _, id := range ids {
		if st := waitTerminal(t, client, ts.URL, id); st.State != StateDone {
			t.Fatalf("run %s finished %s", id, st.State)
		}
	}
}

// TestServerCancel cancels both a running run (context propagation) and a
// queued run (finished without ever starting).
func TestServerCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.runSingle = func(ctx context.Context, _ experiment.RunConfig, _ func(experiment.RunProgress)) (experiment.Result, error) {
		<-ctx.Done()
		return experiment.Result{}, ctx.Err()
	}
	client := ts.Client()

	submit := func(seed int64) string {
		resp, data := postJSON(t, client, ts.URL+"/runs", smallRun(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission: %d %s", resp.StatusCode, data)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		return sub.ID
	}
	running := submit(1)
	queued := submit(2)

	del := func(id string) RunStatus {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s: %d %s", id, resp.StatusCode, data)
		}
		var st RunStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Queued run: cancelled immediately, never starts.
	if st := del(queued); st.State != StateCancelled {
		t.Fatalf("queued run state after DELETE = %s, want cancelled", st.State)
	}
	// Running run: context cancellation propagates, terminal shortly after.
	del(running)
	if st := waitTerminal(t, client, ts.URL, running); st.State != StateCancelled {
		t.Fatalf("running run finished %s, want cancelled", st.State)
	}
	if m := s.MetricsSnapshot(); m.Cancelled != 2 {
		t.Errorf("cancelled = %d, want 2", m.Cancelled)
	}
}

// TestServerFigure builds a registered figure through the HTTP API and
// checks the served CSV is byte-identical to a local build of the same
// options (parallelism is a latency knob, not a result knob).
func TestServerFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure build is not a -short test")
	}
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, FigureParallelism: 2})
	client := ts.Client()
	req := FigureRequest{
		Seeds:            []int64{1},
		WarmupS:          2,
		DurationS:        5,
		Sensors:          120,
		Systems:          []string{experiment.SystemREFER},
		PacketsPerSource: 2,
	}
	resp, data := postJSON(t, client, ts.URL+"/figures/4/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("figure submission: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, client, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("figure run finished %s: %s", st.State, st.Error)
	}
	if st.Sweep == nil || st.Sweep.Done != st.Sweep.Total || st.Sweep.Aborted {
		t.Fatalf("terminal sweep status: %+v", st.Sweep)
	}
	respCSV, csv := getBody(t, client, ts.URL+"/runs/"+sub.ID+"/csv")
	if respCSV.StatusCode != http.StatusOK {
		t.Fatalf("GET csv: %d %s", respCSV.StatusCode, csv)
	}

	opts, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 1
	spec, ok := experiment.FigureByID("4")
	if !ok {
		t.Fatal("figure 4 not registered")
	}
	fig, err := spec.Build(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := fig.CSV(); string(csv) != want {
		t.Fatalf("served CSV diverges from local build:\n%s\nvs\n%s", csv, want)
	}

	// Unknown figure IDs are a 404 at submission time.
	resp, _ = postJSON(t, client, ts.URL+"/figures/nope/runs", FigureRequest{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown figure returned %d, want 404", resp.StatusCode)
	}
}

// TestServerEventsStream reads the NDJSON status stream of a stubbed run
// and checks it ends with the terminal status.
func TestServerEventsStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	s.runSingle = func(ctx context.Context, _ experiment.RunConfig, onProgress func(experiment.RunProgress)) (experiment.Result, error) {
		close(started)
		<-release
		onProgress(experiment.RunProgress{SimTime: time.Second, SimEnd: 2 * time.Second, DESEvents: 42})
		return experiment.Result{}, nil
	}
	client := ts.Client()
	resp, data := postJSON(t, client, ts.URL+"/runs", smallRun(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission: %d %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	<-started

	streamResp, err := client.Get(ts.URL + "/runs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", streamResp.StatusCode)
	}
	close(release)
	body, err := io.ReadAll(streamResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream had %d lines, want at least initial + terminal:\n%s", len(lines), body)
	}
	var last RunStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last line: %v", err)
	}
	if last.State != StateDone {
		t.Fatalf("stream ended in state %s, want done", last.State)
	}
	var firstLine RunStatus
	if err := json.Unmarshal([]byte(lines[0]), &firstLine); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if firstLine.State != StateRunning {
		t.Fatalf("stream opened in state %s, want running", firstLine.State)
	}
}

// TestServerValidation covers the 4xx surface.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	client := ts.Client()

	resp, data := postJSON(t, client, ts.URL+"/runs", RunRequest{System: "not-a-system"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown system returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/runs", RunRequest{WarmupS: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative warmup returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/runs", RunRequest{RunParallelism: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative run_parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/runs", RunRequest{RunParallelism: 1 << 20})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("absurd run_parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/figures/4/runs", FigureRequest{RunParallelism: -2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative figure run_parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/runs", RunRequest{DrainParallelism: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative drain_parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/figures/4/runs", FigureRequest{DrainParallelism: 1 << 20})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("absurd figure drain_parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, client, ts.URL+"/figures/4/runs", FigureRequest{Parallelism: 1 << 20})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("absurd figure parallelism returned %d, want 400: %s", resp.StatusCode, data)
	}
	resp, _ = getBody(t, client, ts.URL+"/runs/r-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run returned %d, want 404", resp.StatusCode)
	}
	resp, _ = getBody(t, client, ts.URL+"/runs/r-999999/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run result returned %d, want 404", resp.StatusCode)
	}

	// Sanity of discovery endpoints.
	resp, data = getBody(t, client, ts.URL+"/systems")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /systems: %d", resp.StatusCode)
	}
	var systems []string
	if err := json.Unmarshal(data, &systems); err != nil {
		t.Fatal(err)
	}
	if len(systems) == 0 || systems[0] == "" {
		t.Errorf("systems list: %v", systems)
	}
	resp, data = getBody(t, client, ts.URL+"/figures")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /figures: %d", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte(`"id"`)) {
		t.Errorf("figures list: %s", data)
	}
}

// Config conversion sanity: the wire request round-trips into the same
// canonical key as a hand-built RunConfig.
func TestRunRequestConfigKey(t *testing.T) {
	wire := smallRun(9)
	cfg, err := wire.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct := experiment.RunConfig{
		Scenario:         scenario.Params{Seed: 9, Sensors: 140},
		Warmup:           time.Second,
		Duration:         3 * time.Second,
		Sources:          2,
		PacketsPerSource: 2,
	}
	k1, err := experiment.ConfigKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := experiment.ConfigKey(direct)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("wire and direct configs hash differently:\n%s\n%s", k1, k2)
	}
}

// TestRunParallelismCacheAndMetrics pins the sharding contract at the
// serving layer: run_parallelism does not enter the cache key (a sharded
// run's result serves a sequential resubmission), the stored result is
// stripped of shard bookkeeping, and the server-side totals surface in
// /metrics instead.
func TestRunParallelismCacheAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	sharded := smallRun(21)
	sharded.RunParallelism = 4
	resp, data := postJSON(t, client, ts.URL+"/runs", sharded)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit sharded: %d: %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, client, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("sharded run ended %s", st.State)
	}

	// The cached stats must be stripped: byte-identical to a sequential
	// replay of the same key.
	_, body := getBody(t, client, ts.URL+"/runs/"+sub.ID+"/result")
	var res experiment.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardRounds != 0 || res.Stats.MergeNs != 0 {
		t.Fatalf("stored result kept shard bookkeeping: %+v", res.Stats)
	}

	// Same submission without sharding hits the cache.
	resp, data = postJSON(t, client, ts.URL+"/runs", smallRun(21))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d: %s", resp.StatusCode, data)
	}
	var again SubmitResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != sub.Key {
		t.Fatalf("sequential resubmission missed the cache: %+v vs key %s", again, sub.Key)
	}

	m := s.MetricsSnapshot()
	if m.ShardRounds == 0 {
		t.Fatal("metrics shard_rounds = 0 after a sharded run")
	}
	if m.ShardMembershipPhaseNs < 0 || m.ShardCellPhaseNs <= 0 || m.ShardMergeNs <= 0 {
		t.Fatalf("metrics phase timers not accumulated: %+v", m)
	}
}

// TestDrainParallelismCacheAndMetrics pins the batched-drain contract at
// the serving layer: drain_parallelism does not enter the cache key (a
// batched run's result serves a serial resubmission), the stored result is
// stripped of drain bookkeeping, and the server-side totals surface in
// /metrics instead.
func TestDrainParallelismCacheAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	// A mobile bursty workload dense enough for the drain to actually form
	// batches (the same shape TestDrainBatchedWorkloadInvariance pins).
	batched := RunRequest{
		Seed:           7,
		Sensors:        2500,
		MaxSpeed:       5,
		ActuatorGrid:   6,
		WarmupS:        2,
		DurationS:      4,
		Sources:        32,
		BurstIntervalS: 0.5,
	}
	serial := batched
	batched.DrainParallelism = 4
	resp, data := postJSON(t, client, ts.URL+"/runs", batched)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit batched: %d: %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, client, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("batched run ended %s", st.State)
	}

	// The cached stats must be stripped: byte-identical to a serial replay
	// of the same key.
	_, body := getBody(t, client, ts.URL+"/runs/"+sub.ID+"/result")
	var res experiment.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.DrainBatches != 0 || res.Stats.DrainWarms != 0 || res.Stats.DrainPrepNs != 0 {
		t.Fatalf("stored result kept drain bookkeeping: %+v", res.Stats)
	}

	// Same submission without the drain knob hits the cache.
	resp, data = postJSON(t, client, ts.URL+"/runs", serial)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d: %s", resp.StatusCode, data)
	}
	var again SubmitResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != sub.Key {
		t.Fatalf("serial resubmission missed the cache: %+v vs key %s", again, sub.Key)
	}

	m := s.MetricsSnapshot()
	if m.DrainBatches == 0 || m.DrainBatchedEvents == 0 {
		t.Fatalf("metrics drain counters not accumulated after a batched run: %+v", m)
	}
	if m.DrainWarms == 0 || m.DrainPrepNs <= 0 {
		t.Fatalf("metrics drain warm/prep gauges not accumulated: %+v", m)
	}
}

// TestRecoveryWireCacheAndMetrics pins the serving-layer contract of the
// recovery field: an enabled spec is part of the content address (unlike
// run_parallelism it changes the result), the stored result keeps its
// recovery counters (virtual-time deterministic, so they survive
// stripping), and the server-side totals accumulate on /metrics.
func TestRecoveryWireCacheAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	// The R-family lattice campaign at unit-test scale: churn plus two
	// permanent actuator kills that only the recovery protocols repair.
	sec := func(n int) chaos.Duration { return chaos.Duration(time.Duration(n) * time.Second) }
	req := RunRequest{
		Seed:         3,
		Sensors:      400,
		MaxSpeed:     1,
		ActuatorGrid: 3,
		WarmupS:      20,
		DurationS:    100,
		Chaos: &chaos.Schedule{
			Seed: 3,
			Events: []chaos.Event{
				{Kind: chaos.Churn, At: sec(10), Rate: 0.1, Duration: sec(120), Downtime: sec(30)},
				{Kind: chaos.ActuatorKill, At: sec(30), Node: 1},
				{Kind: chaos.ActuatorKill, At: sec(45), Node: 2},
			},
		},
		Recovery: &recovery.Spec{Enabled: true},
	}
	resp, data := postJSON(t, client, ts.URL+"/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, client, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("recovery run ended %s", st.State)
	}

	// The stored result keeps the deterministic recovery counters.
	_, body := getBody(t, client, ts.URL+"/runs/"+sub.ID+"/result")
	var res experiment.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Recovery.Repairs() == 0 {
		t.Fatalf("stored result has no repairs: %+v", res.Stats.Recovery)
	}

	// The same campaign without the spec is a different experiment: its key
	// must differ (recovery is in the content address, not a latency knob).
	plain := req
	plain.Recovery = nil
	resp, data = postJSON(t, client, ts.URL+"/runs", plain)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit plain: %d: %s", resp.StatusCode, data)
	}
	var plainSub SubmitResponse
	if err := json.Unmarshal(data, &plainSub); err != nil {
		t.Fatal(err)
	}
	if plainSub.Key == sub.Key {
		t.Fatalf("recovery-enabled and recovery-off submissions share key %s", sub.Key)
	}
	if plainSub.Cached {
		t.Fatal("recovery-off submission served from the recovery-enabled cache entry")
	}

	// A malformed spec is a 400 at the wire, never keyed or queued.
	bad := req
	bad.Recovery = &recovery.Spec{Enabled: true, GraceS: -1}
	resp, data = postJSON(t, client, ts.URL+"/runs", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed recovery spec: %d: %s", resp.StatusCode, data)
	}

	m := s.MetricsSnapshot()
	if m.RecoveryReelections == 0 {
		t.Fatalf("metrics recovery_reelections = 0 after a recovery run: %+v", m)
	}
	if m.RecoveryLatencyNs <= 0 {
		t.Fatalf("metrics recovery_latency_ns not accumulated: %+v", m)
	}
	if got := res.Stats.Recovery.Reelections; uint64(got) != m.RecoveryReelections {
		t.Fatalf("metrics (%d) disagree with the run's counters (%d)", m.RecoveryReelections, got)
	}
}
