package world

import "fmt"

// The Neighbors/AliveNeighbors nil-dst contract hands callers a slice owned
// by the world's per-node cache: it must be read-only and must not be
// retained across epochs, because the cache rewrites it in place on the
// next recomputation. The contract used to be documentation-only; this file
// is the runtime guard. With checks enabled the world keeps a private copy
// of every slice it hands out and, immediately before rewriting a cache
// entry, compares the live slice against the copy. The world itself never
// writes between those two points, so any difference is a caller writing
// into borrowed memory — and the guard panics at the first recomputation
// after the violation, naming the node whose cache was corrupted.
//
// The guard is for tests (the conformance suite runs with it on); when off
// the cost is one nil check per cache *rebuild* — the per-query hot path is
// untouched and stays allocation-free.

// borrowShadow holds the private copies for one node's cache entry.
type borrowShadow struct {
	nb, carrier, alive  []NodeID
	nbValid, aliveValid bool
}

// EnableBorrowChecks turns on the borrowed-slice guard. Intended for tests;
// enabling mid-run is fine (existing hand-outs are unshadowed and only
// checked from their next recomputation on).
func (w *World) EnableBorrowChecks() {
	if w.borrowShadows == nil {
		w.borrowShadows = make([]borrowShadow, len(w.nodes))
	}
}

func (w *World) borrowShadow(id NodeID) *borrowShadow {
	// AddNode after enabling grows the shadow table lazily.
	for int(id) >= len(w.borrowShadows) {
		w.borrowShadows = append(w.borrowShadows, borrowShadow{})
	}
	return &w.borrowShadows[id]
}

func mismatch(live, shadow []NodeID) bool {
	if len(live) != len(shadow) {
		return true
	}
	for i := range live {
		if live[i] != shadow[i] {
			return true
		}
	}
	return false
}

func (w *World) verifyBorrowedNeighbors(id NodeID, c *nodeCache) {
	s := w.borrowShadow(id)
	if !s.nbValid {
		return
	}
	if mismatch(c.nb, s.nb) || mismatch(c.carrier, s.carrier) {
		panic(fmt.Sprintf(
			"world: borrowed Neighbors slice for node %d was mutated by a caller (have %v, handed out %v): "+
				"nil-dst results are cache-owned and read-only; pass a non-nil dst for a private copy",
			id, c.nb, s.nb))
	}
}

func (w *World) verifyBorrowedAlive(id NodeID, c *nodeCache) {
	s := w.borrowShadow(id)
	if !s.aliveValid {
		return
	}
	if mismatch(c.alive, s.alive) {
		panic(fmt.Sprintf(
			"world: borrowed AliveNeighbors slice for node %d was mutated by a caller (have %v, handed out %v): "+
				"nil-dst results are cache-owned and read-only; pass a non-nil dst for a private copy",
			id, c.alive, s.alive))
	}
}

func (w *World) snapshotBorrowedNeighbors(id NodeID, c *nodeCache) {
	s := w.borrowShadow(id)
	s.nb = append(s.nb[:0], c.nb...)
	s.carrier = append(s.carrier[:0], c.carrier...)
	s.nbValid = true
	// The alive subset is about to be refilled lazily; its old shadow keeps
	// guarding the old contents until then.
}

func (w *World) snapshotBorrowedAlive(id NodeID, c *nodeCache) {
	s := w.borrowShadow(id)
	s.alive = append(s.alive[:0], c.alive...)
	s.aliveValid = true
}
