package world

import (
	"strings"
	"testing"

	"refer/internal/geo"
	"refer/internal/mobility"
)

// borrowWorld is a line of four nodes where node 0 sees 1 and 2.
func borrowWorld(t *testing.T) *World {
	t.Helper()
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 90, Y: 0}, {X: 300, Y: 0}}, 100)
	w.EnableBorrowChecks()
	return w
}

// mustPanicWith runs f and requires a panic whose message contains want.
func mustPanicWith(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; guard missed the violation")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	f()
}

// TestBorrowGuardDetectsNeighborMutation pins the enforcement of the nil-dst
// contract: a caller writing into a cache-owned Neighbors slice is caught at
// the entry's next recomputation, naming the corrupted node.
func TestBorrowGuardDetectsNeighborMutation(t *testing.T) {
	w := borrowWorld(t)
	nb := w.Neighbors(nil, 0)
	if len(nb) == 0 {
		t.Fatal("degenerate topology")
	}
	nb[0] = 99 // contract violation
	// Static nodes never expire by clock; adding a node bumps the topology
	// generation and forces the recomputation that runs the guard.
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 400, Y: 0}}, 100, 0)
	mustPanicWith(t, "borrowed Neighbors slice for node 0 was mutated", func() {
		w.Neighbors(nil, 0)
	})
}

// TestBorrowGuardDetectsAliveMutation covers the separately cached alive
// subset, whose extra invalidation trigger is fault injection.
func TestBorrowGuardDetectsAliveMutation(t *testing.T) {
	w := borrowWorld(t)
	alive := w.AliveNeighbors(nil, 0)
	if len(alive) != 2 {
		t.Fatalf("alive neighbors = %v", alive)
	}
	alive[1] = alive[0] // contract violation
	w.SetFailed(1, true)
	mustPanicWith(t, "borrowed AliveNeighbors slice for node 0 was mutated", func() {
		w.AliveNeighbors(nil, 0)
	})
}

// TestBorrowGuardAcceptsWellBehavedCallers is the other half of the
// contract: read-only nil-dst borrowing and mutation of a non-nil-dst
// private copy both survive recomputations silently.
func TestBorrowGuardAcceptsWellBehavedCallers(t *testing.T) {
	w := borrowWorld(t)
	if nb := w.Neighbors(nil, 0); len(nb) != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	own := w.Neighbors(make([]NodeID, 0, 4), 0)
	own[0] = 42 // private copy: mutation is the caller's business
	alive := w.AliveNeighbors(make([]NodeID, 0, 4), 0)
	alive[0] = 42

	w.SetFailed(1, true)
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 400, Y: 0}}, 100, 0)
	if nb := w.Neighbors(nil, 0); len(nb) != 2 {
		t.Fatalf("post-recompute neighbors = %v", nb)
	}
	if alive := w.AliveNeighbors(nil, 0); len(alive) != 1 {
		t.Fatalf("post-fault alive neighbors = %v", alive)
	}
	// A second round of recomputation re-verifies the fresh hand-outs.
	w.SetFailed(1, false)
	if alive := w.AliveNeighbors(nil, 0); len(alive) != 2 {
		t.Fatalf("post-recovery alive neighbors = %v", alive)
	}
}
