package world

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
)

// noJitterWorld builds a deterministic-delay world for timing assertions.
func noJitterWorld(positions []geo.Point, sensorRange float64) *World {
	w := New(Config{
		Region:    geo.Square(500),
		Seed:      1,
		HopDelay:  2 * time.Millisecond,
		HopJitter: 0,
	})
	for _, p := range positions {
		w.AddNode(Sensor, mobility.Static{P: p}, sensorRange, 0)
	}
	return w
}

func TestCarrierSenseDefersNeighbors(t *testing.T) {
	// Nodes 0 and 1 are neighbors; node 0's transmission to 2 must defer
	// node 1's own transmission to 3.
	w := noJitterWorld([]geo.Point{
		{X: 0, Y: 0},
		{X: 50, Y: 0},
		{X: 0, Y: 50},
		{X: 50, Y: 50},
	}, 100)
	var at0, at1 time.Duration
	w.Send(0, 2, energy.Communication, func(Outcome) { at0 = w.Now() })
	w.Send(1, 3, energy.Communication, func(Outcome) { at1 = w.Now() })
	w.Sched.Run()
	if at0 != 2*time.Millisecond {
		t.Fatalf("first delivery at %v", at0)
	}
	if at1 != 4*time.Millisecond {
		t.Fatalf("deferred delivery at %v, want 4ms (carrier sense)", at1)
	}
}

func TestCarrierSenseDoesNotDeferFarNodes(t *testing.T) {
	// Nodes far outside the sender's range transmit concurrently.
	w := noJitterWorld([]geo.Point{
		{X: 0, Y: 0},
		{X: 50, Y: 0},
		{X: 400, Y: 400},
		{X: 450, Y: 400},
	}, 100)
	var atNear, atFar time.Duration
	w.Send(0, 1, energy.Communication, func(Outcome) { atNear = w.Now() })
	w.Send(2, 3, energy.Communication, func(Outcome) { atFar = w.Now() })
	w.Sched.Run()
	if atNear != 2*time.Millisecond || atFar != 2*time.Millisecond {
		t.Fatalf("deliveries at %v and %v, want both at 2ms (spatial reuse)", atNear, atFar)
	}
}

func TestSymmetricLinks(t *testing.T) {
	// An actuator (range 250) and a sensor (range 100) at 150 m share no
	// usable link in either direction — unicast needs the ack path.
	w := New(Config{Region: geo.Square(500), Seed: 1, HopJitter: 0})
	w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 250, 0)
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 150, Y: 0}}, 100, 0)
	if w.LinkRange(0, 1) != 100 {
		t.Fatalf("LinkRange = %f, want 100", w.LinkRange(0, 1))
	}
	if w.InRange(0, 1) || w.InRange(1, 0) {
		t.Fatal("150 m actuator-sensor pair should be out of link range")
	}
	var out Outcome
	w.Send(0, 1, energy.Communication, func(o Outcome) { out = o })
	w.Sched.Run()
	if out != OutOfRange {
		t.Fatalf("outcome = %v, want out-of-range", out)
	}
	// Two actuators at 200 m do have a link.
	w2 := New(Config{Region: geo.Square(500), Seed: 1})
	w2.AddNode(Actuator, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 250, 0)
	w2.AddNode(Actuator, mobility.Static{P: geo.Point{X: 200, Y: 0}}, 250, 0)
	if !w2.InRange(0, 1) {
		t.Fatal("200 m actuator pair should be in range")
	}
}

func TestNeighborsRespectReceiverRange(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 1})
	w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 250, 0)
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 150, Y: 0}}, 100, 0)   // too far for its own range
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 80, Y: 0}}, 100, 0)    // linked
	w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 240, Y: 0}}, 250, 0) // linked (both 250)
	got := w.Neighbors(nil, 0)
	want := map[NodeID]bool{2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want nodes 2 and 3", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected neighbor %d", id)
		}
	}
}

func TestFloodAirtimeSerializesInNeighborhood(t *testing.T) {
	// A flood across a clique occupies the shared medium for at least one
	// hop-delay per rebroadcast: a packet sent right after the flood must
	// queue behind all that airtime.
	positions := make([]geo.Point, 10)
	for i := range positions {
		positions[i] = geo.Point{X: float64(i) * 5, Y: 0} // all within 100 m
	}
	w := noJitterWorld(positions, 100)
	w.Flood(0, 3, energy.Communication, nil, nil)
	var deliveredAt time.Duration
	// Send once the flood's rebroadcasts have claimed the medium.
	if _, err := w.Sched.At(3*time.Millisecond, func() {
		w.Send(1, 2, energy.Communication, func(Outcome) { deliveredAt = w.Now() })
	}); err != nil {
		t.Fatal(err)
	}
	w.Sched.Run()
	// 10 rebroadcasts × 2 ms serialized, then the unicast.
	if deliveredAt < 20*time.Millisecond {
		t.Fatalf("post-flood unicast delivered at %v, want ≥ 20ms (medium busy)", deliveredAt)
	}
}
