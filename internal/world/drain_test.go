package world

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
)

// buildDrainWorld assembles the shared scenario for the drain tests: a
// mobile sensor field dense enough for neighbor-directed traffic, sized so
// the claim-tile grid has enough tiles for conflict-free batches to form
// (tileSize ≈ 428 m over 1600 m ⇒ ~14 tiles).
func buildDrainWorld(parallelism int) (*World, int) {
	w := New(Config{Region: geo.Square(1600), Seed: 42, HopJitter: time.Millisecond})
	rng := w.Rand()
	const sensors = 490
	for i := 0; i < sensors; i++ {
		start := w.Config().Region.RandomPoint(rng)
		w.AddNode(Sensor, mobility.NewWaypoint(w.Config().Region, start, 4.0, rng), 100, 0)
	}
	for i := 0; i < 4; i++ {
		w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 400 + 266*float64(i), Y: 800}}, 250, 0)
	}
	w.SetDrainParallelism(parallelism)
	return w, sensors
}

// drainRun drives a mobile, fault-churned traffic mix at the given drain
// parallelism and returns every observable the serial contract covers: an
// ordered trace of all commit-time callbacks, the final clock and fired
// count, the total energy, and the full Stats snapshot with the two
// parallelism-dependent drain counters zeroed.
func drainRun(parallelism int) (trace string, fired uint64, clock time.Duration, joules float64, st Stats) {
	w, sensors := buildDrainWorld(parallelism)
	rng := w.Rand()
	w.SetLinkLoss(0.05)

	var log strings.Builder
	note := func(format string, args ...any) {
		fmt.Fprintf(&log, format, args...)
		log.WriteByte('\n')
	}

	// Bursty neighbor-directed traffic — the shape real routing produces,
	// and the one that actually batches: same-window completions from
	// senders far enough apart to claim disjoint tiles. Continuations
	// query the receiver's neighborhood like a forwarding step would.
	var tick func()
	tick = func() {
		for k := 0; k < 16; k++ {
			from := NodeID(rng.Intn(sensors))
			nbs := w.Neighbors(nil, from)
			if len(nbs) == 0 {
				continue
			}
			to := nbs[rng.Intn(len(nbs))]
			w.Send(from, to, energy.Communication, func(o Outcome) {
				next := w.AliveNeighbors(nil, to)
				note("send %d->%d %v @%v next=%d", from, to, o, w.Now(), len(next))
			})
		}
		if w.Now() < 4*time.Second {
			w.AfterNode(50*time.Millisecond, NodeID(rng.Intn(sensors)), tick)
		}
	}
	w.AfterNode(0, 0, tick)

	// Periodic broadcasts and a flood mix multi-receiver tagged deliveries
	// into the same windows.
	var gossip func()
	gossip = func() {
		src := NodeID(rng.Intn(sensors))
		n := w.Broadcast(src, energy.Communication, func(to NodeID) {
			note("bcast %d->%d @%v", src, to, w.Now())
		})
		note("bcast %d reached %d", src, n)
		if w.Now() < 4*time.Second {
			w.Sched.After(300*time.Millisecond, gossip)
		}
	}
	w.Sched.After(100*time.Millisecond, gossip)
	w.Sched.After(2*time.Second, func() {
		w.Flood(NodeID(rng.Intn(sensors)), 3, energy.Communication, func(id NodeID, hops int, _ []NodeID) bool {
			note("flood visit %d hops=%d @%v", id, hops, w.Now())
			return true
		}, func() { note("flood done @%v", w.Now()) })
	})

	// Fault churn: untagged global events that invalidate alive read sets
	// mid-run, forcing batch breaks and prep re-execution.
	var churn func()
	churn = func() {
		id := NodeID(rng.Intn(sensors))
		w.SetFailed(id, true)
		note("fail %d @%v", id, w.Now())
		func(id NodeID) {
			w.Sched.After(400*time.Millisecond, func() {
				w.SetFailed(id, false)
				note("recover %d @%v", id, w.Now())
			})
		}(id)
		if w.Now() < 3500*time.Millisecond {
			w.Sched.After(250*time.Millisecond, churn)
		}
	}
	w.Sched.After(500*time.Millisecond, churn)

	// Drive with the limit-batched entry point the experiment layer uses.
	for w.Sched.RunUntilLimit(5*time.Second, 512) {
	}
	st = w.Stats()
	st.DrainWarms, st.DrainWarmHits = 0, 0
	return log.String(), w.Sched.Fired(), w.Sched.Now(), w.TotalEnergy(energy.Communication), st
}

// TestDrainParallelEquivalence is the world-level determinism contract:
// byte-identical traces, clocks, energy and stats at any drain parallelism.
func TestDrainParallelEquivalence(t *testing.T) {
	refTrace, refFired, refClock, refJoules, refStats := drainRun(1)
	if refFired == 0 || !strings.Contains(refTrace, "delivered") {
		t.Fatalf("reference run too quiet: fired=%d", refFired)
	}
	for _, p := range []int{2, 8} {
		gotTrace, gotFired, gotClock, gotJoules, gotStats := drainRun(p)
		if gotTrace != refTrace {
			t.Fatalf("parallelism %d: trace diverged (ref %d bytes, got %d bytes):\n%s",
				p, len(refTrace), len(gotTrace), firstDiff(refTrace, gotTrace))
		}
		if gotFired != refFired || gotClock != refClock {
			t.Fatalf("parallelism %d: fired/clock %d/%v, want %d/%v", p, gotFired, gotClock, refFired, refClock)
		}
		if gotJoules != refJoules {
			t.Fatalf("parallelism %d: energy %f, want %f", p, gotJoules, refJoules)
		}
		if gotStats != refStats {
			t.Fatalf("parallelism %d: stats %+v, want %+v", p, gotStats, refStats)
		}
	}
}

// TestDrainWarmsActuallyHappen guards against the parallel path silently
// degenerating to serial: the mobile traffic mix must form batches, warm
// caches in parallel, and consume some of those warms at commit time.
func TestDrainWarmsActuallyHappen(t *testing.T) {
	w, sensors := buildDrainWorld(4)
	rng := w.Rand()
	var tick func()
	tick = func() {
		for k := 0; k < 16; k++ {
			from := NodeID(rng.Intn(sensors))
			nbs := w.Neighbors(nil, from)
			if len(nbs) == 0 {
				continue
			}
			to := nbs[rng.Intn(len(nbs))]
			w.Send(from, to, energy.Communication, func(o Outcome) {
				if o == Delivered {
					w.AliveNeighbors(nil, to)
				}
			})
		}
		if w.Now() < 3*time.Second {
			w.Sched.After(50*time.Millisecond, tick)
		}
	}
	w.Sched.After(0, tick)
	w.Sched.RunUntil(4 * time.Second)
	st := w.Stats()
	if st.DrainWarms == 0 {
		t.Fatal("no cache warms: parallel drain path not exercised")
	}
	if st.DrainWarmHits == 0 {
		t.Fatal("no warm consumed at commit time")
	}
	if ds := w.Sched.DrainStats(); ds.Batches == 0 || ds.BatchedEvents == 0 {
		t.Fatalf("no parallel batches formed: %+v", ds)
	}
}

// TestAfterNode pins the tagged single-node timer helper: same semantics as
// Sched.After, cancellable, negative delays coerced.
func TestAfterNode(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.SetDrainParallelism(2)
	var at time.Duration = -1
	if _, err := w.AfterNode(10*time.Millisecond, 0, func() { at = w.Now() }); err != nil {
		t.Fatal(err)
	}
	h, err := w.AfterNode(-5*time.Millisecond, 1, func() { t.Error("cancelled timer fired") })
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("cancel reported not pending")
	}
	w.Sched.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("timer fired at %v, want 10ms", at)
	}
}

// TestAddNodeDisablesTagging pins the SetDrainParallelism ordering contract:
// a later AddNode invalidates the claim geometry and turns tagging off.
func TestAddNodeDisablesTagging(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.SetDrainParallelism(4)
	if !w.drainTag {
		t.Fatal("tagging not enabled")
	}
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 100, Y: 0}}, 100, 0)
	if w.drainTag {
		t.Fatal("AddNode after SetDrainParallelism must disable tagging")
	}
	if w.DrainParallelism() != 4 {
		t.Fatalf("drain parallelism = %d, want 4", w.DrainParallelism())
	}
}

// firstDiff returns a context window around the first differing line.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(la), len(lb))
}
