// Batched-drain integration: conflict claims and cache-warming prepares for
// the des scheduler's parallel drain (see internal/des/drain.go and
// DESIGN.md §13).
//
// The world's events decide at commit time — routing continuations draw
// RNG, charge energy and mutate radio state when they fire — so the only
// work a parallel prepare can safely do is semantics-free: warming the
// per-node neighbor caches the committed event is about to query. Claims
// are spatial tiles sized so that any unicast pair's read discs fit in at
// most the four tiles of one 2×2 block. Claim discs are centered on the
// endpoints' positions at the event's own timestamp — mobility models are
// deterministic, so the execution-time position is known exactly at
// scheduling time, and the only cap is the models' bounded-backtracking
// horizon (mobility.RetentionHorizon) on how far ahead a position memo may
// be advanced. Two events whose tile sets are disjoint provably touch
// disjoint position memos and cache entries during the parallel phase:
//
//   - a prepare re-verifies, against the event's claims, the bounding box
//     of the exact disc it will query — center at the endpoint's position
//     at the event timestamp, radius range + index staleness slack — and
//     skips the warm entirely on any miss, so candidate reads never
//     escape the claimed tiles;
//   - the slack itself is capped (maxWarmSlack < claimMargin), which keeps
//     every candidate's *indexed* position inside the claimed region too,
//     closing the endpoint-of-A/candidate-of-B overlap case.
//
// Skipped warms cost nothing but speed: the commit path recomputes the
// neighborhood serially, exactly as without the drain.
package world

import (
	"math"
	"time"

	"refer/internal/des"
	"refer/internal/mobility"
)

const (
	// claimMargin pads every claim disc so spatial-index staleness
	// (maxWarmSlack) stays inside the claimed tiles. Kept tight: the margin
	// inflates both the claim footprint (more tiles per claim → more
	// conflicts → fewer events per batch) and the tile size itself, so
	// padding beyond slack + headroom only costs concurrency.
	claimMargin = 16.0
	// maxWarmSlack caps the index staleness a prepare works under; beyond
	// it the claims no longer provably cover the candidate read set, so
	// the warm is skipped. Slightly above gridStaleTol (10 m) — the grid
	// refreshes on the commit path once staleness passes that, so larger
	// slack occurs only on long query gaps, where skipping the warm costs
	// nothing. maxWarmSlack < claimMargin.
	maxWarmSlack = 12.0
)

// SetDrainParallelism sets the DES drain worker count and, at 2 or more
// workers, enables conflict tagging of the world's radio completion and
// delivery events. Call it after every AddNode: the claim tile geometry is
// derived from the modal radio range, and a later AddNode turns tagging
// back off (the run then simply drains serially from that point on).
// Values below 2 select the classic serial drain with zero overhead.
func (w *World) SetDrainParallelism(n int) {
	if n < 1 {
		n = 1
	}
	w.Sched.SetDrainParallelism(n)
	w.drainTag = false
	if n < 2 {
		return
	}
	// Tile size is a concurrency/coverage trade-off, not a correctness
	// knob: claimBBox refuses any claim that does not fit a 2×2 tile block,
	// and unfitting events simply drain serially. Sizing from the modal
	// radio range — sensors, which dominate both population and traffic —
	// makes every same-class in-range pair's union bbox fit one block
	// unconditionally (width ≤ sep + 2·(r+claimMargin) ≤ 3r + 2·claimMargin
	// = tileSize, and a bbox no wider than a tile crosses at most one
	// boundary per axis) while keeping the tile grid fine enough for
	// disjoint claims; pairs involving the rare longer-range nodes
	// (actuators) fit only when geometry allows.
	modalRange := 0.0
	best := 0
	counts := make(map[float64]int, 4)
	for _, node := range w.nodes {
		if node.Range <= 0 {
			continue
		}
		counts[node.Range]++
		c := counts[node.Range]
		if c > best || (c == best && node.Range < modalRange) {
			best, modalRange = c, node.Range
		}
	}
	if modalRange <= 0 {
		return
	}
	w.tileSize = 3*modalRange + 2*claimMargin
	if len(w.warmScratch) < n {
		w.warmScratch = make([][]int, n)
	}
	if w.prepFn == nil {
		w.prepFn = w.warmPrep
	}
	w.drainTag = true
}

// DrainParallelism returns the configured drain worker count (minimum 1).
func (w *World) DrainParallelism() int { return w.Sched.DrainParallelism() }

// AfterNode schedules fn like Sched.After, additionally declaring that fn
// only reads node id's neighborhood — the contract of traffic injection and
// other single-node protocol timers. When drain tagging is on and the
// declaration can be honored (delay within the mobility retention horizon,
// claims fit one tile block), the event joins conflict-free batches;
// otherwise this is exactly Sched.After.
func (w *World) AfterNode(delay time.Duration, id NodeID, fn func()) (des.Handle, error) {
	if delay < 0 {
		delay = 0
	}
	at := w.Sched.Now() + delay
	if w.drainTag {
		if claims, ok := w.nodeClaims(id, at); ok {
			return w.Sched.AtTagged(at, claims, w.prepFn, int32(id), -1, fn)
		}
	}
	return w.Sched.At(at, fn)
}

// tileDomain packs a claim tile coordinate into a non-zero des.Domain: a
// marker bit plus 31 bits per axis (tile coordinates are tiny — regions are
// a few kilometers, tiles ~330 m).
func tileDomain(tx, ty int) des.Domain {
	return des.Domain(1)<<63 |
		des.Domain(uint64(uint32(tx))&0x7FFFFFFF)<<31 |
		des.Domain(uint64(uint32(ty))&0x7FFFFFFF)
}

// claimBBox returns the tiles overlapping the bbox as a claim set, or
// ok=false when the bbox spans more than a 2×2 tile block.
func (w *World) claimBBox(x0, y0, x1, y1 float64) (des.Claims, bool) {
	t := w.tileSize
	tx0 := int(math.Floor(x0 / t))
	ty0 := int(math.Floor(y0 / t))
	tx1 := int(math.Floor(x1 / t))
	ty1 := int(math.Floor(y1 / t))
	if tx1-tx0 > 1 || ty1-ty0 > 1 {
		return des.Claims{}, false
	}
	var c des.Claims
	i := 0
	for tx := tx0; tx <= tx1; tx++ {
		for ty := ty0; ty <= ty1; ty++ {
			c[i] = tileDomain(tx, ty)
			i++
		}
	}
	return c, true
}

// claimable reports whether an event at virtual time at may carry claims at
// all: tagging prerequisites present and the timestamp close enough that
// advancing position memos to it now keeps every later query (at the
// current clock and after) inside the models' bounded-backtracking window.
// Carrier-sense queuing pushes completions well past the clock, so the
// horizon — not event geometry — is the binding cap under congestion.
func (w *World) claimable(at time.Duration) bool {
	if !w.gridOK || w.borrowShadows != nil || w.tileSize <= 0 {
		return false
	}
	return at-w.Sched.Now() <= mobility.RetentionHorizon
}

// sendClaims computes the claim set for a unicast completion event between
// from and to at virtual time at: the tiles covering both endpoints'
// padded radio discs at their execution-time positions (mobility is
// deterministic, so those are exact). ok=false (untagged) when the event
// runs further ahead than the memo retention horizon, the pair's bbox
// exceeds one tile block, or tagging prerequisites are missing.
func (w *World) sendClaims(from, to NodeID, at time.Duration) (des.Claims, bool) {
	if !w.claimable(at) {
		return des.Claims{}, false
	}
	nf, nt := w.nodes[from], w.nodes[to]
	pf, pt := nf.Mob.At(at), nt.Mob.At(at)
	rf, rt := nf.Range+claimMargin, nt.Range+claimMargin
	return w.claimBBox(
		math.Min(pf.X-rf, pt.X-rt), math.Min(pf.Y-rf, pt.Y-rt),
		math.Max(pf.X+rf, pt.X+rt), math.Max(pf.Y+rf, pt.Y+rt),
	)
}

// nodeClaims is sendClaims for a single-endpoint event (broadcast/flood
// delivery, single-node timer).
func (w *World) nodeClaims(id NodeID, at time.Duration) (des.Claims, bool) {
	if !w.claimable(at) {
		return des.Claims{}, false
	}
	n := w.nodes[id]
	p := n.Mob.At(at)
	r := n.Range + claimMargin
	return w.claimBBox(p.X-r, p.Y-r, p.X+r, p.Y+r)
}

// warmPrep is the world's des.PrepFunc: warm the neighbor caches of the
// event's declared endpoints (arg1 < 0 means single-endpoint). One shared
// func value serves every tagged event.
func (w *World) warmPrep(worker int, at time.Duration, claims des.Claims, a0, a1 int32) {
	w.warmNode(worker, at, claims, NodeID(a0))
	if a1 >= 0 {
		w.warmNode(worker, at, claims, NodeID(a1))
	}
}

// warmNode precomputes node id's neighborhood for virtual time at into its
// cache entry, marked warmed rather than valid: the commit-time query
// consumes it only when it matches exactly, and counts that consumption as
// the rebuild the serial run would have performed — so the hit/rebuild
// counters stay byte-identical at any drain parallelism.
//
// Everything read here is frozen during the parallel phase (grid, flags,
// generations) or exclusively claimed (position memos, the cache entry);
// the read-disc verification against claims is what makes the exclusivity
// airtight. The warmed content is a pure function of (at, topology), so a
// consume is byte-equivalent to a rebuild even if the grid epoch advanced
// in between.
func (w *World) warmNode(worker int, at time.Duration, claims des.Claims, id NodeID) {
	if !w.gridOK || w.borrowShadows != nil {
		return
	}
	c := &w.caches[id]
	if c.valid && c.gen == w.topoGen && (c.at == at || w.maxSpeed == 0) {
		// The commit-time query will hit this entry as-is; leave it
		// untouched so the hit counter matches the serial run.
		return
	}
	slack := 0.0
	if at != w.gridAt {
		slack = w.maxSpeed * (at - w.gridAt).Seconds()
	}
	if !(slack <= maxWarmSlack) { // NaN-safe: unbounded models never warm
		return
	}
	n := w.nodes[id]
	p := n.Mob.At(at)
	r := n.Range + slack
	cover, ok := w.claimBBox(p.X-r, p.Y-r, p.X+r, p.Y+r)
	if !ok || !claims.Contains(cover) {
		// Staleness pushed the actual read disc outside the schedule-time
		// claims: skip, the commit path rebuilds serially.
		return
	}
	sc := w.grid.Within(w.warmScratch[worker][:0], p, r, int(id))
	w.warmScratch[worker] = sc
	// From here this is exactly neighborCache's rebuild, against per-worker
	// scratch and the entry's own buffers.
	c.carrier = c.carrier[:0]
	c.nb = c.nb[:0]
	c.key = c.key[:0]
	maxR2 := n.Range * n.Range
	for _, i := range sc {
		q := w.nodes[i].Mob.At(at)
		dx, dy := q.X-p.X, q.Y-p.Y
		if dx*dx+dy*dy > maxR2 {
			continue
		}
		c.carrier = append(c.carrier, NodeID(i))
		if p.Dist(q) > w.nodes[i].Range {
			continue
		}
		k := w.grid.CellKey(q)
		j := len(c.nb)
		c.nb = append(c.nb, NodeID(i))
		c.key = append(c.key, k)
		for j > 0 && (c.key[j-1] > k || (c.key[j-1] == k && c.nb[j-1] > NodeID(i))) {
			c.nb[j], c.key[j] = c.nb[j-1], c.key[j-1]
			j--
		}
		c.nb[j], c.key[j] = NodeID(i), k
	}
	c.alive = c.alive[:0]
	for _, nb := range c.nb {
		if w.nodes[nb].Alive() {
			c.alive = append(c.alive, nb)
		}
	}
	c.aliveGen = w.aliveGen
	c.aliveValid = true
	c.gen = w.topoGen
	c.warmAt = at
	c.warmed = true
	c.valid = false
	w.drainWarms.Add(1)
}
