package world

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
)

// testWorld builds a world with nodes at fixed positions.
func testWorld(t *testing.T, positions []geo.Point, sensorRange float64) *World {
	t.Helper()
	w := New(Config{Region: geo.Square(500), Seed: 1})
	for _, p := range positions {
		w.AddNode(Sensor, mobility.Static{P: p}, sensorRange, 0)
	}
	return w
}

func TestKindAndOutcomeStrings(t *testing.T) {
	if Sensor.String() != "sensor" || Actuator.String() != "actuator" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind string wrong")
	}
	for o, want := range map[Outcome]string{
		Delivered:      "delivered",
		OutOfRange:     "out-of-range",
		ReceiverFailed: "receiver-failed",
		SenderFailed:   "sender-failed",
		Outcome(9):     "Outcome(9)",
	} {
		if o.String() != want {
			t.Errorf("Outcome %d = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestNewAppliesDefaults(t *testing.T) {
	w := New(Config{})
	cfg := w.Config()
	if cfg.HopDelay <= 0 || cfg.AckTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Region.Width() != 500 {
		t.Fatalf("default region = %+v", cfg.Region)
	}
	if m, ok := cfg.Energy.(energy.PaperModel); !ok || m.TxJ != energy.DefaultTxCost {
		t.Fatalf("default energy = %+v", cfg.Energy)
	}
	if cfg.PacketBits != energy.DefaultPacketBits {
		t.Fatalf("default packet bits = %d", cfg.PacketBits)
	}
}

func TestPositionsAndRange(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 200, Y: 0}}, 100)
	if !w.InRange(0, 1) {
		t.Error("nodes 0,1 at 50 m should be in range 100")
	}
	if w.InRange(0, 2) {
		t.Error("nodes 0,2 at 200 m should be out of range 100")
	}
	if got := w.Distance(0, 2); got != 200 {
		t.Errorf("Distance = %f", got)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestNeighbors(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 90, Y: 0}, {X: 300, Y: 0}}, 100)
	got := w.Neighbors(nil, 0)
	want := map[NodeID]bool{1: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected neighbor %d", id)
		}
	}
	// Failed nodes still appear in Neighbors but not AliveNeighbors.
	w.SetFailed(1, true)
	if got := w.Neighbors(nil, 0); len(got) != 2 {
		t.Errorf("Neighbors after failure = %v, want both", got)
	}
	alive := w.AliveNeighbors(nil, 0)
	if len(alive) != 1 || alive[0] != 2 {
		t.Errorf("AliveNeighbors = %v, want [2]", alive)
	}
}

func TestSendDelivers(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	var outcome Outcome
	var at time.Duration
	w.Send(0, 1, energy.Communication, func(o Outcome) {
		outcome = o
		at = w.Now()
	})
	w.Sched.Run()
	if outcome != Delivered {
		t.Fatalf("outcome = %v", outcome)
	}
	if at < w.Config().HopDelay {
		t.Fatalf("delivery at %v, want >= hop delay %v", at, w.Config().HopDelay)
	}
	if at > w.Config().HopDelay+w.Config().HopJitter {
		t.Fatalf("delivery at %v, want <= hop+jitter", at)
	}
	// Energy: sender paid Tx, receiver paid Rx, on the right ledger.
	if got := w.Node(0).Meter.SpentOn(energy.Communication); got != energy.DefaultTxCost {
		t.Errorf("sender energy = %f", got)
	}
	if got := w.Node(1).Meter.SpentOn(energy.Communication); got != energy.DefaultRxCost {
		t.Errorf("receiver energy = %f", got)
	}
	if got := w.TotalEnergy(energy.Construction); got != 0 {
		t.Errorf("construction ledger = %f, want 0", got)
	}
}

func TestSendOutOfRange(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 400, Y: 0}}, 100)
	var outcome Outcome
	var at time.Duration
	w.Send(0, 1, energy.Communication, func(o Outcome) { outcome, at = o, w.Now() })
	w.Sched.Run()
	if outcome != OutOfRange {
		t.Fatalf("outcome = %v", outcome)
	}
	if at < w.Config().AckTimeout {
		t.Fatalf("failure detected at %v, want >= ack timeout", at)
	}
	// The wasted attempt still cost Tx energy; no Rx anywhere.
	if got := w.Node(0).Meter.Spent(); got != energy.DefaultTxCost {
		t.Errorf("sender energy = %f", got)
	}
	if got := w.Node(1).Meter.Spent(); got != 0 {
		t.Errorf("receiver energy = %f, want 0", got)
	}
}

func TestSendToFailedNode(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.SetFailed(1, true)
	var outcome Outcome
	w.Send(0, 1, energy.Communication, func(o Outcome) { outcome = o })
	w.Sched.Run()
	if outcome != ReceiverFailed {
		t.Fatalf("outcome = %v", outcome)
	}
}

func TestSendFromFailedNode(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.SetFailed(0, true)
	var outcome Outcome
	w.Send(0, 1, energy.Communication, func(o Outcome) { outcome = o })
	w.Sched.Run()
	if outcome != SenderFailed {
		t.Fatalf("outcome = %v", outcome)
	}
	if got := w.Node(0).Meter.Spent(); got != 0 {
		t.Errorf("failed sender spent %f", got)
	}
}

func TestSendNilCallback(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.Send(0, 1, energy.Communication, nil) // must not panic
	w.Sched.Run()
}

func TestRadioQueueing(t *testing.T) {
	// Two back-to-back sends from the same node must serialize: the second
	// delivery happens at least one hop delay after the first.
	w := New(Config{Region: geo.Square(500), Seed: 1, HopJitter: 0, HopDelay: 4 * time.Millisecond})
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 100, 0)
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 50, Y: 0}}, 100, 0)
	var first, second time.Duration
	w.Send(0, 1, energy.Communication, func(Outcome) { first = w.Now() })
	w.Send(0, 1, energy.Communication, func(Outcome) { second = w.Now() })
	w.Sched.Run()
	if first != 4*time.Millisecond {
		t.Fatalf("first delivery at %v", first)
	}
	if second != 8*time.Millisecond {
		t.Fatalf("second delivery at %v, want 8ms (queued)", second)
	}
}

func TestBroadcast(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 90, Y: 0}, {X: 400, Y: 0}}, 100)
	w.SetFailed(2, true)
	var received []NodeID
	n := w.Broadcast(0, energy.Communication, func(to NodeID) { received = append(received, to) })
	w.Sched.Run()
	if n != 1 {
		t.Fatalf("Broadcast reported %d receivers, want 1 (one alive in range)", n)
	}
	if len(received) != 1 || received[0] != 1 {
		t.Fatalf("received = %v, want [1]", received)
	}
	// One Tx on sender, one Rx on the alive receiver.
	if got := w.Node(0).Meter.Spent(); got != energy.DefaultTxCost {
		t.Errorf("sender spent %f", got)
	}
	if got := w.Node(3).Meter.Spent(); got != 0 {
		t.Errorf("out-of-range node spent %f", got)
	}
}

func TestBroadcastFromFailedNode(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}, 100)
	w.SetFailed(0, true)
	if n := w.Broadcast(0, energy.Communication, nil); n != 0 {
		t.Fatalf("failed node broadcast reached %d", n)
	}
}

func TestFloodReachesConnectedComponent(t *testing.T) {
	// A chain of nodes 80 m apart with 100 m range: flood from one end.
	positions := make([]geo.Point, 6)
	for i := range positions {
		positions[i] = geo.Point{X: float64(i) * 80, Y: 0}
	}
	w := testWorld(t, positions, 100)
	visited := make(map[NodeID]int)
	var pathTo5 []NodeID
	done := false
	w.Flood(0, 10, energy.Communication, func(at NodeID, hops int, path []NodeID) bool {
		visited[at] = hops
		if at == 5 {
			pathTo5 = append([]NodeID(nil), path...)
		}
		return true
	}, func() { done = true })
	w.Sched.Run()
	if !done {
		t.Fatal("flood did not quiesce")
	}
	if len(visited) != 5 {
		t.Fatalf("visited %v, want all 5 other nodes", visited)
	}
	for id, hops := range visited {
		if hops != int(id) {
			t.Errorf("node %d reached in %d hops, want %d (chain)", id, hops, id)
		}
	}
	if len(pathTo5) != 6 || pathTo5[0] != 0 || pathTo5[5] != 5 {
		t.Fatalf("path to node 5 = %v", pathTo5)
	}
}

func TestFloodTTLBound(t *testing.T) {
	positions := make([]geo.Point, 6)
	for i := range positions {
		positions[i] = geo.Point{X: float64(i) * 80, Y: 0}
	}
	w := testWorld(t, positions, 100)
	visited := make(map[NodeID]bool)
	w.Flood(0, 2, energy.Communication, func(at NodeID, hops int, _ []NodeID) bool {
		visited[at] = true
		return true
	}, nil)
	w.Sched.Run()
	if len(visited) != 2 {
		t.Fatalf("TTL=2 flood visited %v, want nodes 1 and 2", visited)
	}
	if !visited[1] || !visited[2] {
		t.Fatalf("TTL=2 flood visited %v", visited)
	}
}

func TestFloodVisitCanStop(t *testing.T) {
	positions := make([]geo.Point, 6)
	for i := range positions {
		positions[i] = geo.Point{X: float64(i) * 80, Y: 0}
	}
	w := testWorld(t, positions, 10)
	// Wider range world for this test.
	w = testWorld(t, positions, 100)
	visited := make(map[NodeID]bool)
	w.Flood(0, 10, energy.Communication, func(at NodeID, hops int, _ []NodeID) bool {
		visited[at] = true
		return at != 2 // stop the wave at node 2
	}, nil)
	w.Sched.Run()
	if visited[3] || visited[4] || visited[5] {
		t.Fatalf("flood passed a stopping node: %v", visited)
	}
}

func TestFloodSkipsFailedNodes(t *testing.T) {
	positions := make([]geo.Point, 5)
	for i := range positions {
		positions[i] = geo.Point{X: float64(i) * 80, Y: 0}
	}
	w := testWorld(t, positions, 100)
	w.SetFailed(2, true) // break the chain
	visited := make(map[NodeID]bool)
	done := false
	w.Flood(0, 10, energy.Communication, func(at NodeID, _ int, _ []NodeID) bool {
		visited[at] = true
		return true
	}, func() { done = true })
	w.Sched.Run()
	if !done {
		t.Fatal("flood did not quiesce")
	}
	if visited[2] || visited[3] || visited[4] {
		t.Fatalf("flood crossed the failed node: %v", visited)
	}
	if !visited[1] {
		t.Fatal("node 1 not visited")
	}
}

func TestFloodIsolatedOriginQuiesces(t *testing.T) {
	w := testWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 400, Y: 400}}, 50)
	done := false
	w.Flood(0, 5, energy.Communication, nil, func() { done = true })
	w.Sched.Run()
	if !done {
		t.Fatal("isolated flood never quiesced")
	}
}

func TestFloodEnergyGrowsWithPopulation(t *testing.T) {
	// Flooding a dense network must cost far more than a single unicast —
	// the effect the baselines suffer from.
	build := func(n int) *World {
		positions := make([]geo.Point, n)
		for i := range positions {
			positions[i] = geo.Point{X: float64(i%10) * 40, Y: float64(i/10) * 40}
		}
		return testWorld(t, positions, 100)
	}
	small := build(10)
	small.Flood(0, 20, energy.Communication, nil, nil)
	small.Sched.Run()
	big := build(100)
	big.Flood(0, 20, energy.Communication, nil, nil)
	big.Sched.Run()
	se := small.TotalEnergy(energy.Communication)
	be := big.TotalEnergy(energy.Communication)
	if be <= se*4 {
		t.Fatalf("flood energy: %d nodes %.1f J vs %d nodes %.1f J — should grow superlinearly",
			10, se, 100, be)
	}
}

func TestNearestActuator(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 1})
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 100, 0)
	w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 100, Y: 0}}, 250, 0)
	w.AddNode(Actuator, mobility.Static{P: geo.Point{X: 300, Y: 0}}, 250, 0)
	if got := w.NearestActuator(0); got != 1 {
		t.Fatalf("NearestActuator = %d, want 1", got)
	}
	w.SetFailed(1, true)
	if got := w.NearestActuator(0); got != 2 {
		t.Fatalf("NearestActuator with failure = %d, want 2", got)
	}
	w.SetFailed(2, true)
	if got := w.NearestActuator(0); got != NoNode {
		t.Fatalf("NearestActuator with all failed = %d, want NoNode", got)
	}
}

func TestMobilityIntegration(t *testing.T) {
	// A mobile node moving away breaks the link over time.
	w := New(Config{Region: geo.Square(500), Seed: 3})
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 100, 0)
	// Deterministic "mobility": a one-leg model built by hand.
	w.AddNode(Sensor, linear{from: geo.Point{X: 50, Y: 0}, to: geo.Point{X: 450, Y: 0}, dur: 100 * time.Second}, 100, 0)
	if !w.InRange(0, 1) {
		t.Fatal("initially in range")
	}
	w.Sched.RunUntil(60 * time.Second)
	if w.InRange(0, 1) {
		t.Fatalf("node at %v should be out of range", w.Position(1))
	}
}

// linear is a minimal test mobility model.
type linear struct {
	from, to geo.Point
	dur      time.Duration
}

func (l linear) At(t time.Duration) geo.Point {
	if l.dur == 0 {
		return l.to
	}
	return l.from.Lerp(l.to, float64(t)/float64(l.dur))
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, time.Duration) {
		w := New(Config{Region: geo.Square(500), Seed: 42})
		for i := 0; i < 20; i++ {
			w.AddNode(Sensor, mobility.Static{P: geo.Point{X: float64(i) * 20, Y: 0}}, 100, 0)
		}
		var lastDelivery time.Duration
		for i := 0; i < 10; i++ {
			w.Send(0, 1, energy.Communication, func(Outcome) { lastDelivery = w.Now() })
		}
		w.Flood(0, 5, energy.Communication, nil, nil)
		w.Sched.Run()
		return w.TotalEnergy(energy.Communication), lastDelivery
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Fatalf("replay diverged: (%f,%v) vs (%f,%v)", e1, d1, e2, d2)
	}
}

// TestTallNarrowRegionNeighbors is the regression test for the grid cell
// heuristic: a 100 m × 2000 m region must size its cells from the thin
// axis, and neighbor queries must stay correct along the long one.
func TestTallNarrowRegionNeighbors(t *testing.T) {
	region := geo.Rect{Max: geo.Point{X: 100, Y: 2000}}
	w := New(Config{Region: region, Seed: 5})
	positions := []geo.Point{
		{X: 50, Y: 0}, {X: 50, Y: 90}, {X: 50, Y: 180},
		{X: 10, Y: 1000}, {X: 90, Y: 1040}, {X: 50, Y: 1900},
	}
	for _, p := range positions {
		w.AddNode(Sensor, mobility.Static{P: p}, 100, 0)
	}
	for from := range positions {
		got := w.Neighbors(nil, NodeID(from))
		want := make(map[NodeID]bool)
		for to := range positions {
			if to != from && positions[from].Dist(positions[to]) <= 100 {
				want[NodeID(to)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", from, got, want)
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("Neighbors(%d) = %v, want %v", from, got, want)
			}
		}
	}
}

// TestNeighborCacheMatchesUncached is the epoch-cache property test: over a
// mobility run with fault churn, every Neighbors/AliveNeighbors result must
// match — membership AND order — what the pre-cache implementation computed:
// a grid freshly rebuilt from exact positions at the event time, queried
// with the sender's range and filtered by the receiver's.
func TestNeighborCacheMatchesUncached(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 21})
	rng := w.Rand()
	const n = 60
	for i := 0; i < n; i++ {
		start := w.Config().Region.RandomPoint(rng)
		w.AddNode(Sensor, mobility.NewWaypoint(w.Config().Region, start, 4.0, rng), 100, 0)
	}
	uncached := func(from NodeID, at time.Duration) (all, alive []NodeID) {
		fresh := geo.NewGrid(w.Config().Region, 50)
		for id := 0; id < n; id++ {
			fresh.Insert(id, w.Node(NodeID(id)).Mob.At(at))
		}
		p := fresh.Position(int(from))
		for _, i := range fresh.Within(nil, p, w.Node(from).Range, int(from)) {
			if p.Dist(fresh.Position(i)) <= w.Node(NodeID(i)).Range {
				all = append(all, NodeID(i))
				if w.Node(NodeID(i)).Alive() {
					alive = append(alive, NodeID(i))
				}
			}
		}
		return all, alive
	}
	equal := func(a, b []NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for step := 0; step < 120; step++ {
		at := time.Duration(step) * 777 * time.Millisecond
		if _, err := w.Sched.At(at, func() {
			if step%7 == 3 {
				w.SetFailed(NodeID(step%n), true)
			}
			if step%11 == 6 {
				w.SetFailed(NodeID((step*3)%n), false)
			}
			from := NodeID(step % n)
			wantAll, wantAlive := uncached(from, w.Now())
			gotAll := w.Neighbors(nil, from)
			gotAlive := w.AliveNeighbors(nil, from)
			if !equal(gotAll, wantAll) {
				t.Errorf("t=%v Neighbors(%d) = %v, want %v", w.Now(), from, gotAll, wantAll)
			}
			if !equal(gotAlive, wantAlive) {
				t.Errorf("t=%v AliveNeighbors(%d) = %v, want %v", w.Now(), from, gotAlive, wantAlive)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.Sched.Run()
	// The epoch machinery must actually be engaging: far fewer index
	// rebuilds than queries, and some cache hits from the repeated lookups.
	st := w.Stats()
	if st.GridRebuilds == 0 || st.GridRebuilds >= 120 {
		t.Fatalf("GridRebuilds = %d, want quantized (0 < n < 120)", st.GridRebuilds)
	}
}

// TestNeighborQueriesAllocFree pins the zero-allocation contract of the
// steady-state neighbor path: once caches and the reusable grid have
// reached capacity, advancing the clock and re-querying allocates nothing —
// even under the worst-case regime of an unbounded mobility model that
// forces a full index rebuild every event.
func TestNeighborQueriesAllocFree(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 9})
	const n = 40
	for i := 0; i < n; i++ {
		from := geo.Point{X: float64(i%8) * 60, Y: float64(i/8) * 60}
		to := geo.Point{X: from.X + 20, Y: from.Y + 20}
		// linear does not implement SpeedBounded: every clock advance
		// invalidates the grid — the heaviest recompute path.
		w.AddNode(Sensor, linear{from: from, to: to, dur: time.Hour}, 100, 0)
	}
	i := 0
	query := func() {
		id := NodeID(i % n)
		i++
		w.Neighbors(nil, id)
		w.AliveNeighbors(nil, id)
	}
	tick := func() {
		if _, err := w.Sched.After(time.Nanosecond, query); err != nil {
			t.Fatal(err)
		}
		w.Sched.Step()
	}
	for k := 0; k < 2*n; k++ {
		tick() // warm caches, scratch, grid buckets, and the event pool
	}
	if avg := testing.AllocsPerRun(200, tick); avg != 0 {
		t.Fatalf("neighbor query allocated %.1f times per event, want 0", avg)
	}
}
