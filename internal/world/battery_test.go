package world

import (
	"testing"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
)

func TestBatteryDepletionStopsParticipation(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 1})
	// 10 J battery: enough for 5 transmissions at 2 J.
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 100, 10)
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 50, Y: 0}}, 100, 0)
	outcomes := make([]Outcome, 0, 8)
	for i := 0; i < 8; i++ {
		w.Send(0, 1, energy.Communication, func(o Outcome) { outcomes = append(outcomes, o) })
	}
	w.Sched.Run()
	delivered, failed := 0, 0
	for _, o := range outcomes {
		switch o {
		case Delivered:
			delivered++
		case SenderFailed:
			failed++
		}
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5 (battery budget)", delivered)
	}
	if failed != 3 {
		t.Fatalf("sender-failed = %d, want 3 (depleted)", failed)
	}
	if w.Node(0).Alive() {
		t.Fatal("depleted node still alive")
	}
	// Depleted nodes also vanish from the alive-neighbor view.
	if got := w.AliveNeighbors(nil, 1); len(got) != 0 {
		t.Fatalf("AliveNeighbors = %v, want none", got)
	}
}

func TestReceptionDrainsBattery(t *testing.T) {
	w := New(Config{Region: geo.Square(500), Seed: 1})
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 0, Y: 0}}, 100, 0)
	// 1.5 J battery: enough for exactly 2 receptions at 0.75 J.
	w.AddNode(Sensor, mobility.Static{P: geo.Point{X: 50, Y: 0}}, 100, 1.5)
	results := make([]Outcome, 0, 3)
	for i := 0; i < 3; i++ {
		w.Send(0, 1, energy.Communication, func(o Outcome) { results = append(results, o) })
	}
	w.Sched.Run()
	if results[0] != Delivered || results[1] != Delivered {
		t.Fatalf("first two sends: %v", results[:2])
	}
	if results[2] != ReceiverFailed {
		t.Fatalf("third send = %v, want receiver-failed (depleted)", results[2])
	}
}
