// Package world is the WSAN substrate the four evaluated systems run on: a
// discrete-event radio network of mobile sensors and actuators on a plane.
//
// It replaces the paper's ns-2/802.11 stack with a protocol-level model
// that preserves the effects the evaluation measures:
//
//   - unit-disk connectivity with per-node transmission ranges (100 m
//     sensors, 250 m actuators by default),
//   - per-hop transmission time plus random backoff, with sender-side
//     queueing so congested relays build delay,
//   - per-packet Tx/Rx energy charged to construction or communication
//     ledgers through a pluggable cost model (the paper's flat 2 / 0.75 J
//     by default; optionally the distance-dependent first-order radio
//     model, with or without harvesting income and duty-cycled sleep),
//   - broadcast and TTL-bounded flooding (the expensive repair primitive
//     of the baseline systems),
//   - node mobility via closed-form mobility models, and fault injection.
//
// The package is deliberately protocol-agnostic: systems drive it through
// Send/Broadcast/Flood callbacks and keep their own routing state.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"refer/internal/des"
	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
	"refer/internal/trace"
)

// NodeID identifies a node in the world. IDs are dense, starting at 0.
type NodeID int

// NoNode is the sentinel for "no node".
const NoNode NodeID = -1

// Kind distinguishes resource-poor sensors from resource-rich actuators.
type Kind int

const (
	// Sensor is a low-power sensing device with a short radio range.
	Sensor Kind = iota + 1
	// Actuator is a resource-rich device with a long radio range and an
	// unconstrained power supply.
	Actuator
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Sensor:
		return "sensor"
	case Actuator:
		return "actuator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Outcome reports why a transmission concluded.
type Outcome int

const (
	// Delivered means the packet reached the receiver.
	Delivered Outcome = iota + 1
	// OutOfRange means the receiver was beyond the sender's radio range.
	OutOfRange
	// ReceiverFailed means the receiver was injected as faulty.
	ReceiverFailed
	// SenderFailed means the sender itself was faulty or depleted.
	SenderFailed
	// Lost means the link dropped the packet in flight (transient
	// degradation injected via SetLinkLoss); the sender sees a lost ack.
	Lost
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case OutOfRange:
		return "out-of-range"
	case ReceiverFailed:
		return "receiver-failed"
	case SenderFailed:
		return "sender-failed"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes the radio and MAC model.
type Config struct {
	// Region is the deployment area (paper: 500 m × 500 m).
	Region geo.Rect
	// Seed drives all randomness in the world.
	Seed int64
	// Energy is the per-packet cost model; nil means the paper's flat
	// constants (energy.DefaultModel). An energy.HarvestingModel
	// additionally makes the world schedule its periodic harvest-credit and
	// duty-cycled sleep events on the DES.
	Energy energy.CostModel
	// PacketBits is the packet size charged per transmission/reception
	// (default energy.DefaultPacketBits). Flat models ignore it.
	PacketBits int
	// HopDelay is the packet transmission time at the radio bit rate.
	HopDelay time.Duration
	// HopJitter is the maximum random MAC backoff added per transmission.
	HopJitter time.Duration
	// AckTimeout is how long a sender waits before concluding a
	// transmission failed (lost ack, dead receiver, broken link).
	AckTimeout time.Duration
	// SensorBattery is the per-sensor energy budget in Joules; <= 0 means
	// unconstrained.
	SensorBattery float64
}

// DefaultConfig returns the model used throughout the evaluation: 2 ms hop
// transmission time (≈1 KB at 802.11 data rates plus MAC overhead), up to
// 1 ms backoff, 20 ms failure detection.
func DefaultConfig() Config {
	return Config{
		Region:     geo.Square(500),
		Energy:     energy.DefaultModel(),
		HopDelay:   2 * time.Millisecond,
		HopJitter:  time.Millisecond,
		AckTimeout: 20 * time.Millisecond,
	}
}

// Node is one radio device.
type Node struct {
	ID    NodeID
	Kind  Kind
	Range float64
	Meter *energy.Meter
	Mob   mobility.Model

	failed bool
	// drained mirrors Meter.Depleted(). Every charge flows through the
	// world's charge wrappers, which set it on the depletion transition (and
	// bump aliveGen), so Alive is three flag reads on the forwarding hot
	// path instead of a battery recomputation. Harvesting income can clear
	// it again (the world's energy cycle handles the revival transition).
	drained bool
	// asleep marks a duty-cycled sleep window scheduled by the world's
	// energy cycle; sleeping nodes are not Alive.
	asleep    bool
	busyUntil time.Duration
}

// Failed reports whether the node is currently injected as faulty.
func (n *Node) Failed() bool { return n.failed }

// Asleep reports whether the node is inside a duty-cycled sleep window.
func (n *Node) Asleep() bool { return n.asleep }

// Alive reports whether the node can participate in the protocol: not
// faulty, not battery-depleted and not duty-cycled asleep.
func (n *Node) Alive() bool { return !n.failed && !n.drained && !n.asleep }

// World is the simulated WSAN.
type World struct {
	// Sched is the discrete-event core; systems may schedule their own
	// protocol timers on it.
	Sched des.Scheduler

	cfg    Config
	rng    *rand.Rand
	nodes  []*Node
	tracer *trace.Recorder

	// Spatial index. The grid is allocated once and rebuilt in place
	// (Reset+Insert) only when accumulated mobility can have displaced some
	// node by more than gridStaleTol meters — the position-staleness epoch.
	// Queries stay exact regardless: the stale index is only a candidate
	// generator (radii get the staleness as slack) and every candidate is
	// re-checked against its exact position at the current virtual time.
	grid     *geo.Grid
	gridAt   time.Duration // virtual time the grid positions were sampled
	gridOK   bool
	maxSpeed float64 // max over node mobility bounds; +Inf for unknown models

	// actuators is the maintained actuator index NearestActuator scans
	// instead of the full node list.
	actuators []NodeID

	// Per-node neighbor caches, keyed by (virtual time, topoGen) with the
	// alive subset additionally keyed by aliveGen. The buffers are owned by
	// the world and reused, so the forwarding hot path allocates nothing.
	caches  []nodeCache
	topoGen uint64 // bumped by AddNode
	// aliveGen is bumped whenever any node's Alive() can have flipped:
	// fault injection/recovery and battery depletion through world charges.
	aliveGen uint64
	scratch  []int // Within candidate scratch shared across cache fills

	// linkLoss is the transient link degradation probability applied to
	// unicast sends. Zero (the default) draws no randomness, so runs
	// without chaos replay byte-identically to builds without the hook.
	linkLoss float64

	// borrowShadows, when non-nil, holds private copies of the cache-owned
	// slices handed out by Neighbors/AliveNeighbors, used to detect callers
	// violating the borrowed-slice contract. See EnableBorrowChecks.
	borrowShadows []borrowShadow

	// Lifetime bookkeeping: constrained counts battery-limited nodes,
	// depletedNow how many of them are currently dead, for the
	// FirstDeathAt/HalfDeadAt latches.
	constrained int
	depletedNow int

	// harvest is the harvesting interpretation of cfg.Energy, when it has
	// one; the periodic credit/sleep cycle is scheduled iff non-nil.
	harvest *energy.HarvestingModel

	// Batched-drain state (drain.go): drainTag gates conflict tagging of
	// radio events, tileSize is the claim tile geometry, prepFn the shared
	// prepare callback, warmScratch the per-worker Within scratch, and
	// drainWarms the warm counter — atomic because prepare workers bump it
	// off the commit goroutine (the only such counter in the world).
	drainTag    bool
	tileSize    float64
	prepFn      des.PrepFunc
	warmScratch [][]int
	drainWarms  atomic.Uint64

	stats Stats
}

// nodeCache holds one node's memoized neighborhood at a fixed virtual time.
type nodeCache struct {
	at    time.Duration
	gen   uint64 // topoGen the entry was computed under
	valid bool
	// nb is the usable-link neighborhood in exactly the order a freshly
	// rebuilt grid would return it (fresh-bucket-major, node ID within a
	// bucket), so epoch-stale index state never leaks into results.
	nb []NodeID
	// key holds nb's fresh-grid bucket keys during the insertion sort.
	key []int
	// carrier is the carrier-sense set: every node within the owner's own
	// transmission range, failed or not, in no particular order.
	carrier []NodeID
	// alive is the Alive() subset of nb, valid while aliveGen matches.
	alive      []NodeID
	aliveGen   uint64
	aliveValid bool
	// warmed marks content precomputed by a drain prepare for exactly
	// virtual time warmAt (drain.go); the commit-time query consumes it in
	// place of a rebuild when the times match, and any rebuild or consume
	// clears the mark so stale warm content can never be served.
	warmed bool
	warmAt time.Duration
}

// Stats counts the world's spatial-index work for observability: how often
// the grid was actually rebuilt and how the neighbor cache performed. All
// counters are deterministic per seed.
type Stats struct {
	// GridRebuilds is the number of full spatial-index rebuilds.
	GridRebuilds uint64
	// NeighborRebuilds counts per-node neighborhood recomputations;
	// NeighborHits counts queries served from the cache.
	NeighborRebuilds uint64
	NeighborHits     uint64
	// FaultInjections and FaultRecoveries count SetFailed transitions, so
	// a fault campaign's footprint is visible in run stats.
	FaultInjections uint64
	FaultRecoveries uint64
	// LostSends counts unicast packets dropped by the link-loss hook.
	LostSends uint64
	// EnergyDrained sums Joules removed through DrainBattery (brownouts).
	EnergyDrained float64
	// EnergyHarvested sums Joules banked by the harvesting cycle.
	EnergyHarvested float64
	// NodeDeaths counts battery-depletion transitions; NodeRevivals counts
	// harvesting-driven recoveries from depletion.
	NodeDeaths   uint64
	NodeRevivals uint64
	// FirstDeathAt and HalfDeadAt latch the virtual times the first
	// battery-constrained node died and at which half of them were dead at
	// once; -1 means the event never happened.
	FirstDeathAt time.Duration
	HalfDeadAt   time.Duration
	// DrainWarms and DrainWarmHits count the batched drain's cache
	// prepares and how many were consumed by commit-time queries. Unlike
	// every other counter they depend on the drain parallelism and batch
	// geometry — observability only, stripped from anything byte-compared
	// across parallelism levels (every other counter above stays
	// deterministic per seed at any setting).
	DrainWarms    uint64
	DrainWarmHits uint64
}

// Stats returns a snapshot of the world's spatial-index counters.
func (w *World) Stats() Stats {
	st := w.stats
	st.DrainWarms = w.drainWarms.Load()
	return st
}

// gridStaleTol is the position-staleness tolerance in meters: the spatial
// index is rebuilt only once any node can have moved this far since the
// grid's positions were sampled. Queries add the current staleness bound to
// their radius as slack and re-check candidates exactly, so the tolerance
// trades rebuild frequency against candidate-set width without ever
// changing results. 10 m is the measured sweet spot on the paper's default
// scenario (at its 5 m/s speed cap that is one rebuild per 2 virtual
// seconds instead of one per event); larger values save few rebuilds while
// widening every query's candidate ring.
const gridStaleTol = 10.0

// New creates an empty world.
func New(cfg Config) *World {
	if cfg.HopDelay <= 0 {
		cfg.HopDelay = DefaultConfig().HopDelay
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = DefaultConfig().AckTimeout
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		cfg.Region = DefaultConfig().Region
	}
	if cfg.Energy == nil {
		cfg.Energy = energy.DefaultModel()
	}
	if cfg.PacketBits <= 0 {
		cfg.PacketBits = energy.DefaultPacketBits
	}
	w := &World{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	w.stats.FirstDeathAt = -1
	w.stats.HalfDeadAt = -1
	if h, ok := cfg.Energy.(energy.HarvestingModel); ok {
		w.harvest = &h
		w.scheduleEnergyCycle()
	}
	return w
}

// scheduleEnergyCycle starts the harvesting model's periodic cycle: every
// period, bank the harvest income into each constrained meter (reviving
// nodes whose batteries climb back above empty) and lay out the coming
// period's duty-cycled sleep windows, staggered by node ID so the network
// never sleeps all at once. The cycle is pure DES bookkeeping driven by
// node IDs and the fixed period — no randomness — so replays stay
// byte-identical.
func (w *World) scheduleEnergyCycle() {
	period := w.harvest.EffectivePeriod()
	income := w.harvest.IncomePerPeriod()
	sleepDur := time.Duration(w.harvest.EffectiveSleepFraction() * float64(period))
	awake := period - sleepDur
	const sleepPhases = 8
	var cycle func()
	cycle = func() {
		now := w.Sched.Now()
		for _, n := range w.nodes {
			if n.Meter.Budget() <= 0 {
				continue
			}
			if income > 0 {
				banked := n.Meter.Harvest(income)
				w.stats.EnergyHarvested += banked
				if n.drained && !n.Meter.Depleted() {
					n.drained = false
					w.bumpAliveGen()
					w.depletedNow--
					w.stats.NodeRevivals++
				}
			}
			if sleepDur > 0 {
				id := n.ID
				phase := awake * time.Duration(int(id)%sleepPhases) / sleepPhases
				w.mustAt(now+phase, func() { w.setAsleep(id, true) })
				w.mustAt(now+phase+sleepDur, func() { w.setAsleep(id, false) })
			}
		}
		w.mustAt(now+period, cycle)
	}
	w.mustAt(period, cycle)
}

// mustAt schedules fn at a future virtual time; scheduling in the past is
// always a programming error here.
func (w *World) mustAt(at time.Duration, fn func()) {
	if _, err := w.Sched.At(at, fn); err != nil {
		panic(fmt.Sprintf("world: energy cycle: %v", err))
	}
}

// bumpAliveGen records that some node's Alive() can have flipped. Every
// liveness transition funnels through here so the batched drain's snapshot
// guard (des.InvalidateReads) sees exactly the aliveGen epochs.
func (w *World) bumpAliveGen() {
	w.aliveGen++
	w.Sched.InvalidateReads()
}

// setAsleep flips a node's duty-cycle sleep state, folding the Alive
// transition into aliveGen so cached alive subsets notice it.
func (w *World) setAsleep(id NodeID, asleep bool) {
	n := w.nodes[id]
	if n.asleep != asleep {
		n.asleep = asleep
		w.bumpAliveGen()
	}
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Rand returns the world's deterministic random source. Systems must draw
// all their randomness from it so runs replay identically per seed.
func (w *World) Rand() *rand.Rand { return w.rng }

// SetTracer attaches a per-run trace recorder. The world feeds it radio
// counters and systems feed it packet lifecycle events. A nil tracer (the
// default) disables tracing; every recording call then reduces to a nil
// check, leaving the forwarding hot path unchanged.
func (w *World) SetTracer(r *trace.Recorder) { w.tracer = r }

// Tracer returns the attached trace recorder, or nil when tracing is off.
// The nil value is directly usable: all trace methods no-op on it.
func (w *World) Tracer() *trace.Recorder { return w.tracer }

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.Sched.Now() }

// AddNode registers a node and returns it. Battery semantics follow
// energy.NewMeter (<= 0 means unconstrained; actuators conventionally pass 0).
func (w *World) AddNode(kind Kind, mob mobility.Model, radioRange, battery float64) *Node {
	n := &Node{
		ID:    NodeID(len(w.nodes)),
		Kind:  kind,
		Range: radioRange,
		Meter: energy.NewMeter(w.cfg.Energy, battery),
		Mob:   mob,
	}
	w.nodes = append(w.nodes, n)
	w.caches = append(w.caches, nodeCache{})
	if kind == Actuator {
		w.actuators = append(w.actuators, n.ID)
	}
	if battery > 0 {
		w.constrained++
	}
	// Fold the node's speed bound into the world bound. A model that cannot
	// bound itself forces the conservative regime: rebuild on every clock
	// advance, exactly the pre-epoch behavior.
	if sb, ok := mob.(mobility.SpeedBounded); ok {
		if s := sb.MaxSpeed(); s > w.maxSpeed {
			w.maxSpeed = s
		}
	} else {
		w.maxSpeed = math.Inf(1)
	}
	w.topoGen++
	w.gridOK = false
	// Claim tile geometry is derived from the maximum radio range at
	// SetDrainParallelism time; a later AddNode invalidates it, so tagging
	// turns off until the caller re-enables it (already-tagged events keep
	// their mutually consistent claims).
	w.drainTag = false
	return n
}

// Node returns the node with the given ID; it panics on an invalid ID,
// which is always a programming error in a system implementation.
func (w *World) Node(id NodeID) *Node { return w.nodes[id] }

// Len returns the number of nodes.
func (w *World) Len() int { return len(w.nodes) }

// MaxSpeed returns the maximum mobility speed bound over all nodes (+Inf
// when any node's model has no known bound). Zero means every node is
// static, which lets position-derived caches skip refreshing entirely.
func (w *World) MaxSpeed() float64 { return w.maxSpeed }

// AliveGen returns the liveness generation: a counter bumped whenever any
// node's Alive() can have flipped (fault injection/recovery, battery
// depletion through the charge sites, harvesting revival, duty-cycle sleep).
// A reader that snapshots the generation, derives state from Alive()/Meter
// reads, and later observes the same generation knows no liveness transition
// happened in between — the validity guard the intra-run maintenance shards
// use for their precomputed candidate pools.
//
// Concurrent-read contract: the World is single-owner for writes (every
// mutation happens inside one DES event), but between mutations any number
// of goroutines may concurrently call the pure query surface — AliveGen,
// Len, MaxSpeed, Nodes, Node, plus Node.Alive and Meter.Fraction on the
// returned nodes — as long as none of them triggers a charge, send, or node
// mutation while the readers run. Position is NOT part of that surface for
// arbitrary node sets: mobility models may memoize per node (waypoint legs),
// so each node's position may be read by at most one goroutine at a time.
// Neighbors/AliveNeighbors are excluded too (per-node caches share world
// scratch).
func (w *World) AliveGen() uint64 { return w.aliveGen }

// Nodes returns the node list (shared slice; callers must not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Position returns a node's position at the current virtual time.
func (w *World) Position(id NodeID) geo.Point {
	return w.nodes[id].Mob.At(w.Sched.Now())
}

// Distance returns the current distance between two nodes.
func (w *World) Distance(a, b NodeID) float64 {
	return w.Position(a).Dist(w.Position(b))
}

// LinkRange returns the usable link range between two nodes: the smaller of
// the two radio ranges. Links are symmetric — 802.11-style unicast needs the
// reverse direction for acknowledgements, so a 250 m actuator still cannot
// hold a link to a 100 m sensor beyond 100 m.
func (w *World) LinkRange(a, b NodeID) float64 {
	ra, rb := w.nodes[a].Range, w.nodes[b].Range
	if rb < ra {
		return rb
	}
	return ra
}

// InRange reports whether from and to currently share a usable link.
func (w *World) InRange(from, to NodeID) bool {
	return w.Distance(from, to) <= w.LinkRange(from, to)
}

// SetFailed injects or clears a fault on a node.
func (w *World) SetFailed(id NodeID, failed bool) {
	n := w.nodes[id]
	if n.failed != failed {
		n.failed = failed
		w.bumpAliveGen()
		if failed {
			w.stats.FaultInjections++
		} else {
			w.stats.FaultRecoveries++
		}
	}
}

// SetLinkLoss sets the probability in [0, 1] that a unicast send with an
// in-range, alive receiver is lost in flight (the sender times out as if
// the ack were lost). A rate of zero — the default — draws no randomness,
// so runs that never enable loss replay byte-identically. Broadcasts and
// floods are unaffected: loss models data-path degradation, and the
// baseline repair floods already pay their cost in energy and delay.
func (w *World) SetLinkLoss(p float64) {
	w.linkLoss = math.Max(0, math.Min(1, p))
}

// LinkLoss returns the current link-loss probability.
func (w *World) LinkLoss() float64 { return w.linkLoss }

// DrainBattery removes the given fraction of a node's *remaining* battery
// through the meter's drain ledger (fault-injection brownouts). Depletion
// is folded into aliveGen exactly like packet charges, so cached alive
// subsets notice a browned-out death. Unconstrained meters (actuators) are
// unaffected. Returns the Joules drained.
func (w *World) DrainBattery(id NodeID, fraction float64) float64 {
	n := w.nodes[id]
	if n.Meter.Budget() <= 0 || fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	j := n.Meter.Drain(fraction * n.Meter.Remaining())
	w.stats.EnergyDrained += j
	w.noteDepletion(n)
	return j
}

// noteDepletion folds a battery-depletion transition into aliveGen so the
// cached alive subsets notice the node's death, and latches the lifetime
// markers (first node death, half the constrained nodes dead). Called
// after every charge; the drained flag makes the transition fire exactly
// once per death (harvesting revivals re-arm it).
func (w *World) noteDepletion(n *Node) {
	if !n.drained && n.Meter.Depleted() {
		n.drained = true
		w.bumpAliveGen()
		w.depletedNow++
		w.stats.NodeDeaths++
		now := w.Sched.Now()
		if w.stats.FirstDeathAt < 0 {
			w.stats.FirstDeathAt = now
		}
		if w.stats.HalfDeadAt < 0 && 2*w.depletedNow >= w.constrained {
			w.stats.HalfDeadAt = now
		}
	}
}

// chargeTx and chargeRx are the only paths energy leaves a meter on, so
// depletion transitions are always observed. dist is the link distance the
// transmit amplifier must cover; receptions are distance-independent in
// every model, so chargeRx passes 0.
func (w *World) chargeTx(n *Node, l energy.Ledger, dist float64) {
	n.Meter.ChargeTx(l, w.cfg.PacketBits, dist)
	w.noteDepletion(n)
}

func (w *World) chargeRx(n *Node, l energy.Ledger) {
	n.Meter.ChargeRx(l, w.cfg.PacketBits, 0)
	w.noteDepletion(n)
}

// refreshGrid (re)builds the spatial index when node positions may have
// drifted more than gridStaleTol since the last build. Static worlds
// (maxSpeed 0) build exactly once; mobile worlds rebuild once per staleness
// epoch instead of once per event, reusing the grid's bucket storage.
func (w *World) refreshGrid() {
	now := w.Sched.Now()
	if w.gridOK {
		if now == w.gridAt {
			return
		}
		// Ordered after the equality check: with an unbounded (+Inf) speed
		// and zero elapsed time the product would be NaN, not zero.
		if w.maxSpeed*(now-w.gridAt).Seconds() <= gridStaleTol {
			return
		}
	}
	if w.grid == nil {
		// Cell size on the order of the sensor radio range, shrunk for small
		// regions — considering both dimensions, so a tall narrow region gets
		// cells matched to its thin axis instead of one degenerate column.
		cell := 50.0
		if m := math.Min(w.cfg.Region.Width(), w.cfg.Region.Height()); m < 200 {
			cell = m / 4
		}
		w.grid = geo.NewGrid(w.cfg.Region, cell)
	} else {
		w.grid.Reset()
	}
	for _, n := range w.nodes {
		w.grid.Insert(int(n.ID), n.Mob.At(now))
	}
	w.gridAt = now
	w.gridOK = true
	w.stats.GridRebuilds++
}

// querySlack bounds how far any node can have strayed from its indexed
// position. Queries widen their radius by this much and re-check candidates
// exactly, so results never depend on the staleness.
func (w *World) querySlack(now time.Duration) float64 {
	if now == w.gridAt {
		return 0
	}
	return w.maxSpeed * (now - w.gridAt).Seconds()
}

// neighborCache returns from's neighborhood memoized at the current virtual
// time, computing it if the clock or topology moved since the last query.
//
// The computation queries the (possibly stale) grid with slack, filters the
// candidates against exact current positions using the same float
// comparisons a direct query would make, and re-sorts survivors into the
// order a freshly rebuilt grid would list them (bucket-major by the exact
// position's cell, node ID within a cell — IDs because the rebuild inserts
// in ID order). Results are therefore bit-identical to rebuilding the index
// at every event, while the index is only rebuilt once per staleness epoch.
func (w *World) neighborCache(from NodeID) *nodeCache {
	w.refreshGrid()
	now := w.Sched.Now()
	c := &w.caches[from]
	// A fully static world (every model bounds its speed at 0) has
	// time-invariant positions, so entries never expire by clock.
	if c.valid && c.gen == w.topoGen && (c.at == now || w.maxSpeed == 0) {
		w.stats.NeighborHits++
		return c
	}
	if c.warmed && c.gen == w.topoGen && c.warmAt == now {
		// A drain prepare computed exactly this entry (warm content is a
		// pure function of time and topology, identical to the rebuild
		// below). Consuming it counts as the rebuild the serial run would
		// perform here, so the counters stay byte-identical.
		c.warmed = false
		c.at = now
		c.valid = true
		w.stats.NeighborRebuilds++
		w.stats.DrainWarmHits++
		return c
	}
	c.warmed = false
	w.stats.NeighborRebuilds++
	if w.borrowShadows != nil {
		w.verifyBorrowedNeighbors(from, c)
	}
	n := w.nodes[from]
	p := n.Mob.At(now)
	w.scratch = w.grid.Within(w.scratch[:0], p, n.Range+w.querySlack(now), int(from))
	c.carrier = c.carrier[:0]
	c.nb = c.nb[:0]
	c.key = c.key[:0]
	maxR2 := n.Range * n.Range
	for _, i := range w.scratch {
		q := w.nodes[i].Mob.At(now)
		dx, dy := q.X-p.X, q.Y-p.Y
		if dx*dx+dy*dy > maxR2 {
			continue
		}
		c.carrier = append(c.carrier, NodeID(i))
		if p.Dist(q) > w.nodes[i].Range {
			continue
		}
		// Insertion sort by (fresh cell key, ID); neighborhoods are small.
		k := w.grid.CellKey(q)
		j := len(c.nb)
		c.nb = append(c.nb, NodeID(i))
		c.key = append(c.key, k)
		for j > 0 && (c.key[j-1] > k || (c.key[j-1] == k && c.nb[j-1] > NodeID(i))) {
			c.nb[j], c.key[j] = c.nb[j-1], c.key[j-1]
			j--
		}
		c.nb[j], c.key[j] = NodeID(i), k
	}
	c.at = now
	c.gen = w.topoGen
	c.valid = true
	c.aliveValid = false
	if w.borrowShadows != nil {
		w.snapshotBorrowedNeighbors(from, c)
	}
	return c
}

// Neighbors returns the IDs of all nodes sharing a usable link with from
// (failed nodes included — radios cannot see remote faults, protocols
// discover them through failed sends).
//
// With a nil dst the returned slice is owned by the world's per-node cache:
// it is valid until the next same-node query at a later virtual time or
// changed topology, and must not be mutated or retained across events. Pass
// a non-nil dst to get an appended copy instead.
func (w *World) Neighbors(dst []NodeID, from NodeID) []NodeID {
	c := w.neighborCache(from)
	if dst == nil {
		return c.nb
	}
	return append(dst, c.nb...)
}

// AliveNeighbors returns the IDs of in-range nodes that are alive. The nil-
// dst borrowing contract of Neighbors applies, with one more invalidation
// trigger: any fault injection or battery depletion refreshes the subset.
func (w *World) AliveNeighbors(dst []NodeID, from NodeID) []NodeID {
	c := w.neighborCache(from)
	if !c.aliveValid || c.aliveGen != w.aliveGen {
		if w.borrowShadows != nil {
			w.verifyBorrowedAlive(from, c)
		}
		c.alive = c.alive[:0]
		for _, id := range c.nb {
			if w.nodes[id].Alive() {
				c.alive = append(c.alive, id)
			}
		}
		c.aliveGen = w.aliveGen
		c.aliveValid = true
		if w.borrowShadows != nil {
			w.snapshotBorrowedAlive(from, c)
		}
	}
	if dst == nil {
		return c.alive
	}
	return append(dst, c.alive...)
}

// NearestActuator returns the closest non-failed actuator to the node, or
// NoNode if none exists. It scans the maintained actuator index — a few
// dozen entries — rather than the full node list. Ties resolve to the
// lowest ID (the index is in insertion = ID order and the comparison is
// strict), matching the world's other tie rules.
func (w *World) NearestActuator(from NodeID) NodeID {
	now := w.Sched.Now()
	p := w.nodes[from].Mob.At(now)
	best := NoNode
	bestDist := 0.0
	for _, id := range w.actuators {
		n := w.nodes[id]
		if !n.Alive() {
			continue
		}
		d := p.Dist(n.Mob.At(now))
		if best == NoNode || d < bestDist {
			best, bestDist = id, d
		}
	}
	return best
}

// txDelay draws one transmission's air time (hop delay + random backoff).
func (w *World) txDelay() time.Duration {
	d := w.cfg.HopDelay
	if w.cfg.HopJitter > 0 {
		d += time.Duration(w.rng.Int63n(int64(w.cfg.HopJitter)))
	}
	return d
}

// acquireRadio serializes a node's transmissions and models carrier sense:
// a busy radio queues the packet, and while the packet is on the air every
// node within the sender's range defers its own transmissions — the shared
// medium that makes flooding storms slow as well as expensive. It returns
// the time the transmission completes.
func (w *World) acquireRadio(n *Node, txTime time.Duration) time.Duration {
	start := w.Sched.Now()
	if n.busyUntil > start {
		start = n.busyUntil
	}
	end := start + txTime
	n.busyUntil = end
	// The carrier-sense set (everything inside the sender's own range,
	// failed or not) comes from the same per-node cache as the neighbor
	// sets, so a busy forwarding node computes it once per event.
	for _, id := range w.neighborCache(n.ID).carrier {
		nb := w.nodes[id]
		if nb.busyUntil < end {
			nb.busyUntil = end
		}
	}
	return end
}

// Send transmits one packet from from to to. onDone is invoked exactly once
// with the outcome; for Delivered it runs at the reception time, for
// failures after the ack timeout (the sender pays the detection latency).
// Energy is charged to the given ledger: Tx on the sender for every
// attempt, Rx on the receiver only on delivery. A nil onDone is allowed.
func (w *World) Send(from, to NodeID, ledger energy.Ledger, onDone func(Outcome)) {
	sender := w.nodes[from]
	done := func(o Outcome, at time.Duration) {
		if onDone == nil {
			return
		}
		fn := func() { onDone(o) }
		if w.drainTag {
			// Tag the completion with both endpoints' claim tiles: the
			// continuation typically forwards from one of them, so the
			// drain prepare warms both neighbor caches.
			if claims, ok := w.sendClaims(from, to, at); ok {
				if _, err := w.Sched.AtTagged(at, claims, w.prepFn, int32(from), int32(to), fn); err != nil {
					panic(fmt.Sprintf("world: send completion: %v", err))
				}
				return
			}
		}
		if _, err := w.Sched.At(at, fn); err != nil {
			// Scheduling in the past cannot happen: at >= now by construction.
			panic(fmt.Sprintf("world: send completion: %v", err))
		}
	}
	if !sender.Alive() {
		w.tracer.RadioSend(false)
		done(SenderFailed, w.Sched.Now())
		return
	}
	end := w.acquireRadio(sender, w.txDelay())
	// The transmit amplifier covers the receiver's actual distance (power
	// control), capped at the sender's own range for out-of-range attempts
	// transmitted at full power.
	dist := w.Distance(from, to)
	txDist := dist
	if txDist > sender.Range {
		txDist = sender.Range
	}
	w.chargeTx(sender, ledger, txDist)
	receiver := w.nodes[to]
	switch {
	case dist > w.LinkRange(from, to):
		w.tracer.RadioSend(false)
		done(OutOfRange, end+w.cfg.AckTimeout)
	case !receiver.Alive():
		w.tracer.RadioSend(false)
		done(ReceiverFailed, end+w.cfg.AckTimeout)
	case w.linkLoss > 0 && w.rng.Float64() < w.linkLoss:
		// Guarded on linkLoss > 0 so the zero-loss path draws no RNG and
		// replays of non-chaos runs stay byte-identical.
		w.stats.LostSends++
		w.tracer.RadioSend(false)
		done(Lost, end+w.cfg.AckTimeout)
	default:
		w.tracer.RadioSend(true)
		w.chargeRx(receiver, ledger)
		done(Delivered, end)
	}
}

// Broadcast transmits one packet to every in-range alive neighbor. deliver
// runs once per receiver at its reception time. It returns the number of
// receivers. Failed neighbors silently miss the packet.
func (w *World) Broadcast(from NodeID, ledger energy.Ledger, deliver func(to NodeID)) int {
	sender := w.nodes[from]
	if !sender.Alive() {
		return 0
	}
	w.tracer.RadioBroadcast()
	end := w.acquireRadio(sender, w.txDelay())
	// Broadcasts transmit at full power: the amplifier covers the whole range.
	w.chargeTx(sender, ledger, sender.Range)
	targets := w.AliveNeighbors(nil, from)
	for _, id := range targets {
		id := id
		w.chargeRx(w.nodes[id], ledger)
		if deliver == nil {
			continue
		}
		fn := func() { deliver(id) }
		if w.drainTag {
			if claims, ok := w.nodeClaims(id, end); ok {
				if _, err := w.Sched.AtTagged(end, claims, w.prepFn, int32(id), -1, fn); err != nil {
					panic(fmt.Sprintf("world: broadcast delivery: %v", err))
				}
				continue
			}
		}
		if _, err := w.Sched.At(end, fn); err != nil {
			panic(fmt.Sprintf("world: broadcast delivery: %v", err))
		}
	}
	return len(targets)
}

// FloodVisit is called once per node reached by a flood, with the hop count
// and the reverse path (origin first, visited node last). Returning false
// stops the flood from rebroadcasting at that node.
type FloodVisit func(at NodeID, hops int, path []NodeID) bool

// Flood performs a TTL-bounded broadcast flood from origin — the route
// discovery / repair primitive of the baseline systems ("topological
// routing"). Every reached node receives the packet once (dedup by flood
// sequence) and rebroadcasts until the TTL is exhausted or visit returns
// false. onDone, if non-nil, runs when the flood has quiesced.
//
// The energy bill is what makes flooding expensive: one Tx per rebroadcast
// and one Rx per copy received — including duplicate copies, which real
// radios cannot avoid hearing.
func (w *World) Flood(origin NodeID, ttl int, ledger energy.Ledger, visit FloodVisit, onDone func()) {
	seen := make(map[NodeID]bool, 64)
	outstanding := 0
	finish := func() {
		if onDone != nil {
			onDone()
		}
	}
	var rebroadcast func(at NodeID, hops int, path []NodeID)
	rebroadcast = func(at NodeID, hops int, path []NodeID) {
		node := w.nodes[at]
		if !node.Alive() {
			return
		}
		w.tracer.RadioBroadcast()
		end := w.acquireRadio(node, w.txDelay())
		w.chargeTx(node, ledger, node.Range)
		for _, nb := range w.AliveNeighbors(nil, at) {
			nb := nb
			w.chargeRx(w.nodes[nb], ledger) // every copy is heard
			if seen[nb] {
				continue
			}
			seen[nb] = true
			nbPath := make([]NodeID, len(path)+1)
			copy(nbPath, path)
			nbPath[len(path)] = nb
			outstanding++
			fn := func() {
				outstanding--
				cont := true
				if visit != nil {
					cont = visit(nb, hops+1, nbPath)
				}
				if cont && hops+1 < ttl && w.nodes[nb].Alive() {
					rebroadcast(nb, hops+1, nbPath)
				}
				if outstanding == 0 {
					finish()
				}
			}
			scheduled := false
			if w.drainTag {
				// The visit and any rebroadcast read nb's neighborhood;
				// the shared flood state (seen, outstanding) is only
				// touched at commit, so tagging stays safe.
				if claims, ok := w.nodeClaims(nb, end); ok {
					if _, err := w.Sched.AtTagged(end, claims, w.prepFn, int32(nb), -1, fn); err != nil {
						panic(fmt.Sprintf("world: flood delivery: %v", err))
					}
					scheduled = true
				}
			}
			if !scheduled {
				if _, err := w.Sched.At(end, fn); err != nil {
					panic(fmt.Sprintf("world: flood delivery: %v", err))
				}
			}
		}
	}
	seen[origin] = true
	rebroadcast(origin, 0, []NodeID{origin})
	if outstanding == 0 {
		// Nobody in range: quiesce immediately (next tick).
		if _, err := w.Sched.After(0, finish); err != nil {
			panic(fmt.Sprintf("world: flood quiesce: %v", err))
		}
	}
}

// TotalEnergy sums the given ledger across all nodes.
func (w *World) TotalEnergy(l energy.Ledger) float64 {
	sum := 0.0
	for _, n := range w.nodes {
		sum += n.Meter.SpentOn(l)
	}
	return sum
}
