// Package world is the WSAN substrate the four evaluated systems run on: a
// discrete-event radio network of mobile sensors and actuators on a plane.
//
// It replaces the paper's ns-2/802.11 stack with a protocol-level model
// that preserves the effects the evaluation measures:
//
//   - unit-disk connectivity with per-node transmission ranges (100 m
//     sensors, 250 m actuators by default),
//   - per-hop transmission time plus random backoff, with sender-side
//     queueing so congested relays build delay,
//   - per-packet Tx/Rx energy charged to construction or communication
//     ledgers (2 / 0.75 J as in Section IV),
//   - broadcast and TTL-bounded flooding (the expensive repair primitive
//     of the baseline systems),
//   - node mobility via closed-form mobility models, and fault injection.
//
// The package is deliberately protocol-agnostic: systems drive it through
// Send/Broadcast/Flood callbacks and keep their own routing state.
package world

import (
	"fmt"
	"math/rand"
	"time"

	"refer/internal/des"
	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
	"refer/internal/trace"
)

// NodeID identifies a node in the world. IDs are dense, starting at 0.
type NodeID int

// NoNode is the sentinel for "no node".
const NoNode NodeID = -1

// Kind distinguishes resource-poor sensors from resource-rich actuators.
type Kind int

const (
	// Sensor is a low-power sensing device with a short radio range.
	Sensor Kind = iota + 1
	// Actuator is a resource-rich device with a long radio range and an
	// unconstrained power supply.
	Actuator
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Sensor:
		return "sensor"
	case Actuator:
		return "actuator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Outcome reports why a transmission concluded.
type Outcome int

const (
	// Delivered means the packet reached the receiver.
	Delivered Outcome = iota + 1
	// OutOfRange means the receiver was beyond the sender's radio range.
	OutOfRange
	// ReceiverFailed means the receiver was injected as faulty.
	ReceiverFailed
	// SenderFailed means the sender itself was faulty or depleted.
	SenderFailed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case OutOfRange:
		return "out-of-range"
	case ReceiverFailed:
		return "receiver-failed"
	case SenderFailed:
		return "sender-failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes the radio and MAC model.
type Config struct {
	// Region is the deployment area (paper: 500 m × 500 m).
	Region geo.Rect
	// Seed drives all randomness in the world.
	Seed int64
	// Energy is the per-packet cost model.
	Energy energy.Model
	// HopDelay is the packet transmission time at the radio bit rate.
	HopDelay time.Duration
	// HopJitter is the maximum random MAC backoff added per transmission.
	HopJitter time.Duration
	// AckTimeout is how long a sender waits before concluding a
	// transmission failed (lost ack, dead receiver, broken link).
	AckTimeout time.Duration
	// SensorBattery is the per-sensor energy budget in Joules; <= 0 means
	// unconstrained.
	SensorBattery float64
}

// DefaultConfig returns the model used throughout the evaluation: 2 ms hop
// transmission time (≈1 KB at 802.11 data rates plus MAC overhead), up to
// 1 ms backoff, 20 ms failure detection.
func DefaultConfig() Config {
	return Config{
		Region:     geo.Square(500),
		Energy:     energy.DefaultModel(),
		HopDelay:   2 * time.Millisecond,
		HopJitter:  time.Millisecond,
		AckTimeout: 20 * time.Millisecond,
	}
}

// Node is one radio device.
type Node struct {
	ID    NodeID
	Kind  Kind
	Range float64
	Meter *energy.Meter
	Mob   mobility.Model

	failed    bool
	busyUntil time.Duration
}

// Failed reports whether the node is currently injected as faulty.
func (n *Node) Failed() bool { return n.failed }

// Alive reports whether the node can participate in the protocol: not
// faulty and not battery-depleted.
func (n *Node) Alive() bool { return !n.failed && !n.Meter.Depleted() }

// World is the simulated WSAN.
type World struct {
	// Sched is the discrete-event core; systems may schedule their own
	// protocol timers on it.
	Sched des.Scheduler

	cfg    Config
	rng    *rand.Rand
	nodes  []*Node
	tracer *trace.Recorder

	grid   *geo.Grid
	gridAt time.Duration
	gridOK bool
}

// New creates an empty world.
func New(cfg Config) *World {
	if cfg.HopDelay <= 0 {
		cfg.HopDelay = DefaultConfig().HopDelay
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = DefaultConfig().AckTimeout
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		cfg.Region = DefaultConfig().Region
	}
	if cfg.Energy == (energy.Model{}) {
		cfg.Energy = energy.DefaultModel()
	}
	return &World{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Rand returns the world's deterministic random source. Systems must draw
// all their randomness from it so runs replay identically per seed.
func (w *World) Rand() *rand.Rand { return w.rng }

// SetTracer attaches a per-run trace recorder. The world feeds it radio
// counters and systems feed it packet lifecycle events. A nil tracer (the
// default) disables tracing; every recording call then reduces to a nil
// check, leaving the forwarding hot path unchanged.
func (w *World) SetTracer(r *trace.Recorder) { w.tracer = r }

// Tracer returns the attached trace recorder, or nil when tracing is off.
// The nil value is directly usable: all trace methods no-op on it.
func (w *World) Tracer() *trace.Recorder { return w.tracer }

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.Sched.Now() }

// AddNode registers a node and returns it. Battery semantics follow
// energy.NewMeter (<= 0 means unconstrained; actuators conventionally pass 0).
func (w *World) AddNode(kind Kind, mob mobility.Model, radioRange, battery float64) *Node {
	n := &Node{
		ID:    NodeID(len(w.nodes)),
		Kind:  kind,
		Range: radioRange,
		Meter: energy.NewMeter(w.cfg.Energy, battery),
		Mob:   mob,
	}
	w.nodes = append(w.nodes, n)
	w.gridOK = false
	return n
}

// Node returns the node with the given ID; it panics on an invalid ID,
// which is always a programming error in a system implementation.
func (w *World) Node(id NodeID) *Node { return w.nodes[id] }

// Len returns the number of nodes.
func (w *World) Len() int { return len(w.nodes) }

// Nodes returns the node list (shared slice; callers must not mutate).
func (w *World) Nodes() []*Node { return w.nodes }

// Position returns a node's position at the current virtual time.
func (w *World) Position(id NodeID) geo.Point {
	return w.nodes[id].Mob.At(w.Sched.Now())
}

// Distance returns the current distance between two nodes.
func (w *World) Distance(a, b NodeID) float64 {
	return w.Position(a).Dist(w.Position(b))
}

// LinkRange returns the usable link range between two nodes: the smaller of
// the two radio ranges. Links are symmetric — 802.11-style unicast needs the
// reverse direction for acknowledgements, so a 250 m actuator still cannot
// hold a link to a 100 m sensor beyond 100 m.
func (w *World) LinkRange(a, b NodeID) float64 {
	ra, rb := w.nodes[a].Range, w.nodes[b].Range
	if rb < ra {
		return rb
	}
	return ra
}

// InRange reports whether from and to currently share a usable link.
func (w *World) InRange(from, to NodeID) bool {
	return w.Distance(from, to) <= w.LinkRange(from, to)
}

// SetFailed injects or clears a fault on a node.
func (w *World) SetFailed(id NodeID, failed bool) {
	w.nodes[id].failed = failed
}

// refreshGrid rebuilds the spatial index if positions may have moved.
func (w *World) refreshGrid() {
	now := w.Sched.Now()
	if w.gridOK && w.gridAt == now {
		return
	}
	cell := 50.0
	if width := w.cfg.Region.Width(); width < 200 {
		cell = width / 4
	}
	w.grid = geo.NewGrid(w.cfg.Region, cell)
	for _, n := range w.nodes {
		w.grid.Insert(int(n.ID), n.Mob.At(now))
	}
	w.gridAt = now
	w.gridOK = true
}

// Neighbors appends to dst the IDs of all nodes sharing a usable link with
// from (failed nodes included — radios cannot see remote faults, protocols
// discover them through failed sends).
func (w *World) Neighbors(dst []NodeID, from NodeID) []NodeID {
	w.refreshGrid()
	p := w.grid.Position(int(from))
	idxs := w.grid.Within(nil, p, w.nodes[from].Range, int(from))
	for _, i := range idxs {
		if p.Dist(w.grid.Position(i)) <= w.nodes[i].Range {
			dst = append(dst, NodeID(i))
		}
	}
	return dst
}

// AliveNeighbors appends the IDs of in-range nodes that are alive.
func (w *World) AliveNeighbors(dst []NodeID, from NodeID) []NodeID {
	all := w.Neighbors(nil, from)
	for _, id := range all {
		if w.nodes[id].Alive() {
			dst = append(dst, id)
		}
	}
	return dst
}

// NearestActuator returns the closest non-failed actuator to the node, or
// NoNode if none exists.
func (w *World) NearestActuator(from NodeID) NodeID {
	best := NoNode
	bestDist := 0.0
	p := w.Position(from)
	for _, n := range w.nodes {
		if n.Kind != Actuator || !n.Alive() {
			continue
		}
		d := p.Dist(n.Mob.At(w.Sched.Now()))
		if best == NoNode || d < bestDist {
			best, bestDist = n.ID, d
		}
	}
	return best
}

// txDelay draws one transmission's air time (hop delay + random backoff).
func (w *World) txDelay() time.Duration {
	d := w.cfg.HopDelay
	if w.cfg.HopJitter > 0 {
		d += time.Duration(w.rng.Int63n(int64(w.cfg.HopJitter)))
	}
	return d
}

// acquireRadio serializes a node's transmissions and models carrier sense:
// a busy radio queues the packet, and while the packet is on the air every
// node within the sender's range defers its own transmissions — the shared
// medium that makes flooding storms slow as well as expensive. It returns
// the time the transmission completes.
func (w *World) acquireRadio(n *Node, txTime time.Duration) time.Duration {
	start := w.Sched.Now()
	if n.busyUntil > start {
		start = n.busyUntil
	}
	end := start + txTime
	n.busyUntil = end
	w.refreshGrid()
	p := w.grid.Position(int(n.ID))
	for _, i := range w.grid.Within(nil, p, n.Range, int(n.ID)) {
		nb := w.nodes[i]
		if nb.busyUntil < end {
			nb.busyUntil = end
		}
	}
	return end
}

// Send transmits one packet from from to to. onDone is invoked exactly once
// with the outcome; for Delivered it runs at the reception time, for
// failures after the ack timeout (the sender pays the detection latency).
// Energy is charged to the given ledger: Tx on the sender for every
// attempt, Rx on the receiver only on delivery. A nil onDone is allowed.
func (w *World) Send(from, to NodeID, ledger energy.Ledger, onDone func(Outcome)) {
	sender := w.nodes[from]
	done := func(o Outcome, at time.Duration) {
		if onDone == nil {
			return
		}
		if _, err := w.Sched.At(at, func() { onDone(o) }); err != nil {
			// Scheduling in the past cannot happen: at >= now by construction.
			panic(fmt.Sprintf("world: send completion: %v", err))
		}
	}
	if !sender.Alive() {
		w.tracer.RadioSend(false)
		done(SenderFailed, w.Sched.Now())
		return
	}
	end := w.acquireRadio(sender, w.txDelay())
	sender.Meter.ChargeTx(ledger)
	receiver := w.nodes[to]
	switch {
	case w.Distance(from, to) > w.LinkRange(from, to):
		w.tracer.RadioSend(false)
		done(OutOfRange, end+w.cfg.AckTimeout)
	case !receiver.Alive():
		w.tracer.RadioSend(false)
		done(ReceiverFailed, end+w.cfg.AckTimeout)
	default:
		w.tracer.RadioSend(true)
		receiver.Meter.ChargeRx(ledger)
		done(Delivered, end)
	}
}

// Broadcast transmits one packet to every in-range alive neighbor. deliver
// runs once per receiver at its reception time. It returns the number of
// receivers. Failed neighbors silently miss the packet.
func (w *World) Broadcast(from NodeID, ledger energy.Ledger, deliver func(to NodeID)) int {
	sender := w.nodes[from]
	if !sender.Alive() {
		return 0
	}
	w.tracer.RadioBroadcast()
	end := w.acquireRadio(sender, w.txDelay())
	sender.Meter.ChargeTx(ledger)
	targets := w.AliveNeighbors(nil, from)
	for _, id := range targets {
		id := id
		w.nodes[id].Meter.ChargeRx(ledger)
		if deliver != nil {
			if _, err := w.Sched.At(end, func() { deliver(id) }); err != nil {
				panic(fmt.Sprintf("world: broadcast delivery: %v", err))
			}
		}
	}
	return len(targets)
}

// FloodVisit is called once per node reached by a flood, with the hop count
// and the reverse path (origin first, visited node last). Returning false
// stops the flood from rebroadcasting at that node.
type FloodVisit func(at NodeID, hops int, path []NodeID) bool

// Flood performs a TTL-bounded broadcast flood from origin — the route
// discovery / repair primitive of the baseline systems ("topological
// routing"). Every reached node receives the packet once (dedup by flood
// sequence) and rebroadcasts until the TTL is exhausted or visit returns
// false. onDone, if non-nil, runs when the flood has quiesced.
//
// The energy bill is what makes flooding expensive: one Tx per rebroadcast
// and one Rx per copy received — including duplicate copies, which real
// radios cannot avoid hearing.
func (w *World) Flood(origin NodeID, ttl int, ledger energy.Ledger, visit FloodVisit, onDone func()) {
	seen := make(map[NodeID]bool, 64)
	outstanding := 0
	finish := func() {
		if onDone != nil {
			onDone()
		}
	}
	var rebroadcast func(at NodeID, hops int, path []NodeID)
	rebroadcast = func(at NodeID, hops int, path []NodeID) {
		node := w.nodes[at]
		if !node.Alive() {
			return
		}
		w.tracer.RadioBroadcast()
		end := w.acquireRadio(node, w.txDelay())
		node.Meter.ChargeTx(ledger)
		for _, nb := range w.AliveNeighbors(nil, at) {
			nb := nb
			w.nodes[nb].Meter.ChargeRx(ledger) // every copy is heard
			if seen[nb] {
				continue
			}
			seen[nb] = true
			nbPath := make([]NodeID, len(path)+1)
			copy(nbPath, path)
			nbPath[len(path)] = nb
			outstanding++
			if _, err := w.Sched.At(end, func() {
				outstanding--
				cont := true
				if visit != nil {
					cont = visit(nb, hops+1, nbPath)
				}
				if cont && hops+1 < ttl && w.nodes[nb].Alive() {
					rebroadcast(nb, hops+1, nbPath)
				}
				if outstanding == 0 {
					finish()
				}
			}); err != nil {
				panic(fmt.Sprintf("world: flood delivery: %v", err))
			}
		}
	}
	seen[origin] = true
	rebroadcast(origin, 0, []NodeID{origin})
	if outstanding == 0 {
		// Nobody in range: quiesce immediately (next tick).
		if _, err := w.Sched.After(0, finish); err != nil {
			panic(fmt.Sprintf("world: flood quiesce: %v", err))
		}
	}
}

// TotalEnergy sums the given ledger across all nodes.
func (w *World) TotalEnergy(l energy.Ledger) float64 {
	sum := 0.0
	for _, n := range w.nodes {
		sum += n.Meter.SpentOn(l)
	}
	return sum
}
