// Package recovery implements autonomous repair of actuator failures: the
// self-healing layer ROADMAP item 4 calls for, following the coordinated
// actuator-takeover blueprint of "Self-Recovering Sensor-Actor Networks"
// (PAPERS.md). The chaos subsystem injects faults and Theorem 3.8 failover
// routes around them; this package *repairs* the structural damage a
// permanently dead cell corner leaves behind.
//
// The split of responsibilities keeps the import graph acyclic: this package
// owns the serializable Spec, the Stats counters, the Action records and the
// DES-driven detection loop (the Manager); the protocol-specific repair —
// corner re-election, cell merge and CAN zone takeover — lives behind the
// Repairer interface, implemented by internal/core (recover.go).
//
// Determinism contract: an attached Manager draws nothing from the world's
// RNG stream and schedules one periodic DES tick. A run with a zero Spec
// never attaches a Manager at all, so recovery-disabled runs replay
// byte-identically to builds that predate this package (pinned by
// TestRecoveryDisabledMatchesBaseline and the canonicalization guards).
package recovery

import (
	"fmt"
	"time"

	"refer/internal/world"
)

// Default detection parameters when the Spec enables recovery without
// overriding them: a dead corner must stay dead for one full grace period
// before it is repaired (transient chaos faults heal themselves), and the
// detector sweeps at the same cadence as topology maintenance.
const (
	DefaultGrace         = 5 * time.Second
	DefaultCheckInterval = 5 * time.Second
)

// Spec is the serializable recovery configuration carried by
// experiment.RunConfig/Options. The zero Spec means "recovery disabled" and
// canonicalizes to nothing (append-only ConfigKey contract: every
// pre-existing content address is unchanged).
type Spec struct {
	// Enabled turns the recovery protocols on.
	Enabled bool `json:"enabled,omitempty"`
	// GraceS is how long (virtual seconds) a corner must be observed dead
	// before repair triggers; 0 selects DefaultGrace. Transient faults
	// shorter than the grace period recover on their own and are left alone.
	GraceS float64 `json:"grace_s,omitempty"`
	// CheckIntervalS is the detection sweep period in virtual seconds;
	// 0 selects DefaultCheckInterval.
	CheckIntervalS float64 `json:"check_interval_s,omitempty"`
}

// IsZero reports whether the spec is entirely defaulted (recovery off).
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	if s.GraceS < 0 {
		return fmt.Errorf("recovery: grace_s must be >= 0, got %g", s.GraceS)
	}
	if s.CheckIntervalS < 0 {
		return fmt.Errorf("recovery: check_interval_s must be >= 0, got %g", s.CheckIntervalS)
	}
	return nil
}

// Grace returns the effective failure-confirmation window.
func (s Spec) Grace() time.Duration {
	if s.GraceS > 0 {
		return time.Duration(s.GraceS * float64(time.Second))
	}
	return DefaultGrace
}

// CheckInterval returns the effective detection sweep period.
func (s Spec) CheckInterval() time.Duration {
	if s.CheckIntervalS > 0 {
		return time.Duration(s.CheckIntervalS * float64(time.Second))
	}
	return DefaultCheckInterval
}

// ActionKind labels one recovery action.
type ActionKind string

const (
	// Reelect promoted a surviving actuator into a vacant Kautz corner.
	Reelect ActionKind = "reelect"
	// Merge retired a cell with no eligible corner successor and moved its
	// members into an absorbing neighbor cell.
	Merge ActionKind = "merge"
	// Takeover remapped a retired cell's CAN zone onto its absorber so
	// hashed lookups keep resolving.
	Takeover ActionKind = "takeover"
)

// Action records one completed recovery action. DetectedAt is the virtual
// time the repaired failure was first observed; RepairedAt is the virtual
// time the repair completed — their difference is the recovery latency the
// R2 figure plots.
type Action struct {
	Kind ActionKind
	// CID is the repaired cell.
	CID int
	// Corner is the repaired corner slot (0–2) for re-elections.
	Corner int
	// NewCorner is the promoted actuator for re-elections.
	NewCorner world.NodeID
	// AbsorberCID is the absorbing cell for merges and takeovers.
	AbsorberCID int
	// DetectedAt and RepairedAt bracket the repair in virtual time.
	DetectedAt time.Duration
	RepairedAt time.Duration
}

// Latency is the virtual time between failure detection and repair.
func (a Action) Latency() time.Duration { return a.RepairedAt - a.DetectedAt }

// Stats counts recovery activity. All fields are deterministic per seeded
// config (latency is virtual time, not host time), so the counters ride
// RunStats without being stripped and replay comparisons may include them.
type Stats struct {
	// Sweeps counts detection sweeps run.
	Sweeps int `json:"sweeps,omitempty"`
	// Reelections, Merges and Takeovers count completed actions by kind.
	Reelections int `json:"reelections,omitempty"`
	Merges      int `json:"merges,omitempty"`
	Takeovers   int `json:"takeovers,omitempty"`
	// LatencyNs accumulates the virtual detection→repair latency of every
	// re-election and merge (takeovers complete in the same instant as
	// their merge and are not double-counted).
	LatencyNs int64 `json:"latency_ns,omitempty"`
}

// Add accumulates another stats block (sweep aggregation).
func (s *Stats) Add(o Stats) {
	s.Sweeps += o.Sweeps
	s.Reelections += o.Reelections
	s.Merges += o.Merges
	s.Takeovers += o.Takeovers
	s.LatencyNs += o.LatencyNs
}

// Repairs returns the number of structural repairs (re-elections + merges).
func (s Stats) Repairs() int { return s.Reelections + s.Merges }

// MeanLatency returns the mean detection→repair latency, or 0 without
// repairs.
func (s Stats) MeanLatency() time.Duration {
	if n := s.Repairs(); n > 0 {
		return time.Duration(s.LatencyNs / int64(n))
	}
	return 0
}

// Repairer is the protocol side of the recovery loop: one detection/repair
// pass over the system's cells. grace is the failure-confirmation window; a
// corner observed dead for at least that long is repaired. The returned
// actions are in the deterministic order they were applied.
type Repairer interface {
	RecoverSweep(grace time.Duration) []Action
}

// Manager drives a Repairer from the DES: a periodic detection tick, per-
// action observation (the conformance harness probes invariants after every
// action through this hook) and stats accumulation.
type Manager struct {
	w        *world.World
	rep      Repairer
	spec     Spec
	stats    Stats
	observer func(Action)
}

// Attach validates the spec and schedules the periodic detection tick on the
// world's scheduler. The spec must be Enabled — callers decide whether to
// attach at all, so a disabled spec here is a programming error.
func Attach(w *world.World, rep Repairer, spec Spec) (*Manager, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled {
		return nil, fmt.Errorf("recovery: attaching a disabled spec")
	}
	m := &Manager{w: w, rep: rep, spec: spec}
	m.schedule()
	return m, nil
}

// SetObserver installs fn to run after every completed recovery action, in
// action order, before the sweep's stats are visible. The conformance
// harness uses it to probe CheckInvariants after each individual action.
func (m *Manager) SetObserver(fn func(Action)) { m.observer = fn }

// Stats returns a snapshot of the accumulated counters.
func (m *Manager) Stats() Stats { return m.stats }

// schedule arms the next conformance check. Untagged on purpose: a check
// sweeps every cell's invariants and may trigger overlay-wide repair, so
// its conflict domain is global and the batched drain must serial-step it.
func (m *Manager) schedule() {
	if _, err := m.w.Sched.After(m.spec.CheckInterval(), m.tick); err != nil {
		// Scheduling after "now" can only fail on a programming error.
		panic(err)
	}
}

func (m *Manager) tick() {
	m.Sweep()
	m.schedule()
}

// Sweep runs one detection/repair pass immediately and returns the actions
// applied (tests drive this directly; the scheduled tick calls the same
// routine every CheckInterval).
func (m *Manager) Sweep() []Action {
	actions := m.rep.RecoverSweep(m.spec.Grace())
	m.stats.Sweeps++
	for _, a := range actions {
		switch a.Kind {
		case Reelect:
			m.stats.Reelections++
			m.stats.LatencyNs += int64(a.Latency())
		case Merge:
			m.stats.Merges++
			m.stats.LatencyNs += int64(a.Latency())
		case Takeover:
			m.stats.Takeovers++
		}
		if m.observer != nil {
			m.observer(a)
		}
	}
	return actions
}
