package datree

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/scenario"
	"refer/internal/world"
)

func buildSystem(t *testing.T, seed int64, sensors int, speed float64) (*world.World, *System) {
	t.Helper()
	w := scenario.Build(scenario.Params{Seed: seed, Sensors: sensors, MaxSpeed: speed})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Sched.Run() // drain construction floods
	return w, s
}

func TestBuildFormsForest(t *testing.T) {
	w, s := buildSystem(t, 1, 200, 0)
	joined := 0
	for _, id := range scenario.SensorIDs(w) {
		p, ok := s.Parent(id)
		if !ok {
			continue
		}
		joined++
		root, ok := s.Root(id)
		if !ok {
			t.Fatalf("sensor %d has parent but no root", id)
		}
		if w.Node(root).Kind != world.Actuator {
			t.Fatalf("sensor %d root %d is not an actuator", id, root)
		}
		// Walking up parents must terminate at the root.
		at, hops := id, 0
		for w.Node(at).Kind != world.Actuator {
			next, ok := s.Parent(at)
			if !ok {
				t.Fatalf("broken parent chain at %d (from %d)", at, id)
			}
			at = next
			hops++
			if hops > w.Len() {
				t.Fatalf("parent cycle from sensor %d", id)
			}
		}
		if at != root {
			t.Fatalf("sensor %d chain ends at %d, root says %d", id, at, root)
		}
		_ = p
	}
	if joined < len(scenario.SensorIDs(w))*9/10 {
		t.Fatalf("only %d sensors joined a tree", joined)
	}
}

func TestBuildEnergyOnConstructionLedger(t *testing.T) {
	w, _ := buildSystem(t, 2, 200, 0)
	if w.TotalEnergy(energy.Construction) <= 0 {
		t.Fatal("no construction energy")
	}
	if w.TotalEnergy(energy.Communication) != 0 {
		t.Fatal("communication ledger charged during build")
	}
}

func TestInjectDelivers(t *testing.T) {
	w, s := buildSystem(t, 3, 200, 0)
	delivered, attempts := 0, 0
	for _, id := range scenario.SensorIDs(w)[:50] {
		attempts++
		s.Inject(id, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.Run()
	if delivered < attempts*9/10 {
		t.Fatalf("delivered %d/%d on a static fault-free network", delivered, attempts)
	}
}

func TestInjectFromActuator(t *testing.T) {
	w, s := buildSystem(t, 4, 100, 0)
	ok := false
	s.Inject(0, func(o bool) { ok = o }) // node 0 is an actuator
	w.Sched.Run()
	if !ok {
		t.Fatal("actuator self-inject should trivially succeed")
	}
}

func TestRepairOnFailedParent(t *testing.T) {
	w, s := buildSystem(t, 5, 200, 0)
	// Find a sensor whose parent is a sensor; fail the parent.
	var src, parent world.NodeID = world.NoNode, world.NoNode
	for _, id := range scenario.SensorIDs(w) {
		p, ok := s.Parent(id)
		if ok && w.Node(p).Kind == world.Sensor {
			src, parent = id, p
			break
		}
	}
	if src == world.NoNode {
		t.Skip("no two-level chain in this deployment")
	}
	w.SetFailed(parent, true)
	ok := false
	s.Inject(src, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("packet not delivered despite repair")
	}
	if s.Stats().Repairs == 0 || s.Stats().Retransmits == 0 {
		t.Fatalf("stats = %+v, want repairs and retransmits", s.Stats())
	}
	// Repair must cost communication energy (the flood).
	if w.TotalEnergy(energy.Communication) <= 0 {
		t.Fatal("repair flood not charged")
	}
}

func TestRepairCostExceedsNormalDelivery(t *testing.T) {
	// The defining weakness: a delivery that triggers repair costs far more
	// than a clean delivery.
	w1, s1 := buildSystem(t, 6, 200, 0)
	var src world.NodeID = world.NoNode
	var parent world.NodeID
	for _, id := range scenario.SensorIDs(w1) {
		if p, ok := s1.Parent(id); ok && w1.Node(p).Kind == world.Sensor {
			src, parent = id, p
			break
		}
	}
	if src == world.NoNode {
		t.Skip("no two-level chain")
	}
	s1.Inject(src, nil)
	w1.Sched.Run()
	clean := w1.TotalEnergy(energy.Communication)

	w2, s2 := buildSystem(t, 6, 200, 0)
	w2.SetFailed(parent, true)
	s2.Inject(src, nil)
	w2.Sched.Run()
	withRepair := w2.TotalEnergy(energy.Communication)
	if withRepair < clean*3 {
		t.Fatalf("repair delivery cost %.1f J vs clean %.1f J — expected ≫", withRepair, clean)
	}
}

func TestInjectFromFailedSource(t *testing.T) {
	w, s := buildSystem(t, 7, 100, 0)
	src := scenario.SensorIDs(w)[0]
	w.SetFailed(src, true)
	var got *bool
	s.Inject(src, func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("failed source should not deliver")
	}
	if s.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestUnbuiltSystemRejectsInject(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 8, Sensors: 20})
	s := New(w, Config{})
	var got *bool
	s.Inject(scenario.SensorIDs(w)[0], func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("unbuilt system should drop")
	}
}

func TestDeliveryUnderMobility(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 9, Sensors: 200, MaxSpeed: 2})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	delivered, attempts := 0, 0
	var round func()
	round = func() {
		if w.Now() > 150*time.Second {
			return
		}
		ids := scenario.SensorIDs(w)
		for i := 0; i < 5; i++ {
			src := ids[w.Rand().Intn(len(ids))]
			attempts++
			s.Inject(src, func(ok bool) {
				if ok {
					delivered++
				}
			})
		}
		if _, err := w.Sched.After(10*time.Second, round); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	round()
	w.Sched.RunUntil(200 * time.Second)
	if attempts == 0 || delivered < attempts/2 {
		t.Fatalf("delivered %d/%d under mobility", delivered, attempts)
	}
}
