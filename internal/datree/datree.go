// Package datree implements the DaTree baseline (Melodia et al.,
// MobiCom'05, as modeled in Section IV of the REFER paper): every actuator
// roots a tree over its physically close sensors; sensors forward sensed
// events up the tree to the root.
//
// Construction is cheap — each actuator floods one tree-build message and
// every sensor adopts the first forwarder it hears as its parent ("it
// consumes the least energy in overlay construction"). The weakness is
// repair: when a sensor's link to its parent breaks, it must broadcast
// toward the root to re-attach and the message is retransmitted from the
// source, so faults and mobility cost both delay and energy.
package datree

import (
	"refer/internal/energy"
	"refer/internal/manet"
	"refer/internal/trace"
	"refer/internal/world"
)

// Config parameterizes DaTree.
type Config struct {
	// FloodTTL bounds construction and repair floods.
	FloodTTL int
	// MaxRetransmits bounds per-packet source retransmissions after repair.
	MaxRetransmits int
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{FloodTTL: manet.DefaultTTL, MaxRetransmits: 3}
}

// System is a built DaTree network.
type System struct {
	w   *world.World
	cfg Config

	parent map[world.NodeID]world.NodeID // tree edges (sensor → parent)
	root   map[world.NodeID]world.NodeID // sensor → its tree's actuator
	// repairing coalesces concurrent repairs at the same stuck node: one
	// flood fixes the tree for every packet waiting on it.
	repairing map[world.NodeID][]func(ok bool)
	built     bool

	stats Stats
}

// Stats counts protocol activity.
type Stats struct {
	// Repairs counts parent re-establishment floods.
	Repairs int
	// Retransmits counts source retransmissions.
	Retransmits int
	// Drops counts abandoned packets.
	Drops int
}

// New creates an unbuilt DaTree system on w.
func New(w *world.World, cfg Config) *System {
	if cfg.FloodTTL <= 0 {
		cfg.FloodTTL = manet.DefaultTTL
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultConfig().MaxRetransmits
	}
	return &System{
		w:         w,
		cfg:       cfg,
		parent:    make(map[world.NodeID]world.NodeID),
		root:      make(map[world.NodeID]world.NodeID),
		repairing: make(map[world.NodeID][]func(ok bool)),
	}
}

// Name implements the System interface.
func (s *System) Name() string { return "DaTree" }

// Stats returns a snapshot of the protocol counters.
func (s *System) Stats() Stats { return s.stats }

// Parent returns a sensor's tree parent.
func (s *System) Parent(id world.NodeID) (world.NodeID, bool) {
	p, ok := s.parent[id]
	return p, ok
}

// Root returns the actuator rooting a sensor's tree.
func (s *System) Root(id world.NodeID) (world.NodeID, bool) {
	r, ok := s.root[id]
	return r, ok
}

// Build floods one tree-construction message per actuator; each sensor
// adopts the first forwarder as its parent and joins only that tree. After
// the floods, parents are refined to prefer strong links (the tree-reply
// phase selects forwarders by signal strength, like repair does), which
// keeps the initial tree from disintegrating within seconds of mobility.
func (s *System) Build() error {
	pending := 0
	for _, n := range s.w.Nodes() {
		if n.Kind == world.Actuator {
			pending++
		}
	}
	for _, n := range s.w.Nodes() {
		if n.Kind != world.Actuator {
			continue
		}
		rootID := n.ID
		s.w.Flood(rootID, s.cfg.FloodTTL, energy.Construction,
			func(at world.NodeID, hops int, path []world.NodeID) bool {
				if s.w.Node(at).Kind == world.Actuator {
					return false // other actuators do not join
				}
				if _, joined := s.parent[at]; joined {
					return false // "each sensor belongs to only one tree"
				}
				s.parent[at] = path[len(path)-2]
				s.root[at] = rootID
				return true
			}, func() {
				pending--
				if pending == 0 {
					s.refineTrees() // all floods quiesced
				}
			})
	}
	s.built = true
	return nil
}

// refineTrees re-points each tree's parents along strong links: a BFS from
// every root over its members using links within manet.LinkMargin of range,
// keeping the flood parent for members the margin graph cannot reach.
func (s *System) refineTrees() {
	roots := make(map[world.NodeID][]world.NodeID) // root → members
	for member, root := range s.root {
		roots[root] = append(roots[root], member)
	}
	for root, members := range roots {
		inTree := make(map[world.NodeID]bool, len(members)+1)
		inTree[root] = true
		for _, m := range members {
			inTree[m] = true
		}
		// BFS from the root over margin links restricted to tree members.
		prev := map[world.NodeID]world.NodeID{root: root}
		queue := []world.NodeID{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Borrowed cache slice (see world.Neighbors): the body only
			// reads positions and maps, so cur's slice stays valid.
			for _, nb := range s.w.AliveNeighbors(nil, cur) {
				if !inTree[nb] {
					continue
				}
				if _, seen := prev[nb]; seen {
					continue
				}
				if s.w.Distance(cur, nb) > manet.LinkMargin*s.w.LinkRange(cur, nb) {
					continue
				}
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
		for member, parent := range prev {
			if member == root {
				continue
			}
			s.parent[member] = parent
		}
	}
}

// Inject routes one packet from src up its tree to the root actuator.
// done fires once with the outcome.
func (s *System) Inject(src world.NodeID, done func(ok bool)) {
	pkt := s.w.Tracer().PacketInject(s.w.Now(), int32(src))
	finish := func(ok bool) {
		if ok {
			pkt.Deliver(s.w.Now())
		} else {
			pkt.Drop(s.w.Now())
			s.stats.Drops++
		}
		if done != nil {
			done(ok)
		}
	}
	if !s.built || !s.w.Node(src).Alive() {
		finish(false)
		return
	}
	if s.w.Node(src).Kind == world.Actuator {
		finish(true) // the actuator already has the data
		return
	}
	s.transmit(src, src, s.cfg.MaxRetransmits, pkt, finish)
}

// transmit walks the packet up the tree from at. On a broken hop the stuck
// node repairs its parent link by flooding toward the root, then the packet
// is retransmitted from the source (budget permitting).
func (s *System) transmit(src, at world.NodeID, budget int, pkt trace.Packet, done func(ok bool)) {
	if s.w.Node(at).Kind == world.Actuator {
		done(true)
		return
	}
	p, ok := s.parent[at]
	if !ok || !s.w.Node(p).Alive() || !s.w.InRange(at, p) {
		s.repairAndRetransmit(src, at, budget, pkt, done)
		return
	}
	s.w.Send(at, p, energy.Communication, func(o world.Outcome) {
		if o == world.Delivered {
			pkt.Hop(s.w.Now(), int32(at), int32(p), 0)
			s.transmit(src, p, budget, pkt, done)
			return
		}
		s.repairAndRetransmit(src, at, budget, pkt, done)
	})
}

// repairAndRetransmit floods from the stuck node toward its root to
// re-establish parents along the discovered path, then retransmits the
// packet from the source. Concurrent packets stuck at the same node share a
// single repair flood.
func (s *System) repairAndRetransmit(src, stuck world.NodeID, budget int, pkt trace.Packet, done func(ok bool)) {
	if budget <= 0 {
		done(false)
		return
	}
	root, ok := s.root[stuck]
	if !ok || !s.w.Node(stuck).Alive() {
		done(false)
		return
	}
	cont := func(repaired bool) {
		if !repaired {
			done(false)
			return
		}
		s.stats.Retransmits++
		retryFrom := src
		if !s.w.Node(src).Alive() {
			retryFrom = stuck
		}
		s.transmit(retryFrom, retryFrom, budget-1, pkt, done)
	}
	if waiting, inFlight := s.repairing[stuck]; inFlight {
		s.repairing[stuck] = append(waiting, cont)
		return
	}
	s.repairing[stuck] = []func(bool){cont}
	s.stats.Repairs++
	// Expanding-ring search: the root is a known nearby actuator, so a
	// cheap local flood usually suffices.
	manet.DiscoverRouteRing(s.w, stuck, root, []int{4, s.cfg.FloodTTL}, energy.Communication,
		func(path []world.NodeID) {
			if path != nil {
				// Re-point parents along the found path.
				for i := 0; i+1 < len(path); i++ {
					if s.w.Node(path[i]).Kind == world.Sensor {
						s.parent[path[i]] = path[i+1]
						s.root[path[i]] = root
					}
				}
			}
			waiting := s.repairing[stuck]
			delete(s.repairing, stuck)
			for _, w := range waiting {
				w(path != nil)
			}
		})
}
