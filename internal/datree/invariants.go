package datree

import (
	"fmt"

	"refer/internal/world"
)

// CheckInvariants audits the tree structure and returns the first
// violation, or nil. It is the conformance harness's probe point (see
// internal/chaos), so every check is something construction, refinement,
// and repair guarantee unconditionally:
//
//  1. Registration: parent and root record exactly the same sensors, a
//     sensor never parents itself, and every recorded root is an actuator.
//  2. Well-foundedness: following parent links from any sensor reaches an
//     actuator without revisiting a node — repair re-points parents along a
//     loop-free discovered route, so no sequence of repairs may introduce a
//     cycle or an orphaned interior sensor.
//
// The chain's terminating actuator may differ from the sensor's recorded
// root: a repair flood re-roots the sensors on its route, and descendants
// hanging off them legitimately inherit the new terminus while keeping
// their old root record until their own next repair.
func (s *System) CheckInvariants() error {
	if !s.built {
		return nil
	}
	if len(s.parent) != len(s.root) {
		return fmt.Errorf("datree: %d sensors have parents but %d have roots", len(s.parent), len(s.root))
	}
	for id, r := range s.root {
		if _, ok := s.parent[id]; !ok {
			return fmt.Errorf("datree: sensor %d has root %d but no parent", id, r)
		}
		if s.w.Node(r).Kind != world.Actuator {
			return fmt.Errorf("datree: sensor %d's root %d is not an actuator", id, r)
		}
	}
	for id, p := range s.parent {
		if s.w.Node(id).Kind != world.Sensor {
			return fmt.Errorf("datree: non-sensor %d joined a tree", id)
		}
		if p == id {
			return fmt.Errorf("datree: sensor %d is its own parent", id)
		}
	}
	// Walk every chain; len(parent) sensor hops is the longest possible
	// simple chain, so one more step proves a cycle.
	for id := range s.parent {
		at := id
		for steps := 0; ; steps++ {
			if s.w.Node(at).Kind == world.Actuator {
				break
			}
			next, ok := s.parent[at]
			if !ok {
				return fmt.Errorf("datree: sensor %d's chain dead-ends at orphan sensor %d", id, at)
			}
			if steps > len(s.parent) {
				return fmt.Errorf("datree: sensor %d's parent chain cycles", id)
			}
			at = next
		}
	}
	return nil
}
