// Package manet provides the "topological routing" substrate of the
// baseline systems ([35] in the paper): broadcast-flood route discovery and
// hop-by-hop source-route forwarding. REFER never uses this package for
// data routing — that is the point of the paper — but DaTree, D-DEAR and
// Kautz-overlay depend on it for path construction and repair.
package manet

import (
	"refer/internal/energy"
	"refer/internal/world"
)

// DefaultTTL bounds route-discovery floods. Networks in the evaluation are
// at most ~20 hops across.
const DefaultTTL = 24

// LinkMargin is the link-quality threshold route selection prefers: a hop
// is "strong" when its length is at most this fraction of the link range.
// Destinations receive several route-request copies and pick a path of
// strong links when one exists (signal-strength-aware route selection);
// paths of full-stretch ~100 m hops break within seconds under mobility.
const LinkMargin = 0.8

// DiscoverRoute floods a route request from src toward dst. After the flood
// quiesces, onRoute receives the selected path (src first, dst last) or nil
// when dst was unreachable. The flood's full energy bill — every
// rebroadcast and every overheard copy — is charged to ledger. Among the
// request copies the destination hears, it prefers the hop-shortest path
// whose links all satisfy LinkMargin, falling back to any path.
func DiscoverRoute(w *world.World, src, dst world.NodeID, ttl int, ledger energy.Ledger, onRoute func(path []world.NodeID)) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	reached := false
	w.Flood(src, ttl, ledger, func(at world.NodeID, hops int, path []world.NodeID) bool {
		if at != dst {
			return !reached // stop expanding once a route is found
		}
		reached = true
		return false // the destination does not rebroadcast
	}, func() {
		if onRoute == nil {
			return
		}
		if !reached {
			onRoute(nil)
			return
		}
		onRoute(selectPath(w, src, ttl, func(id world.NodeID) bool { return id == dst }))
	})
}

// DiscoverNearest floods from src and returns (via onRoute) the path to the
// hop-nearest node satisfying accept, with the same strong-link preference
// as DiscoverRoute. Used by baselines that search for "any tree member" or
// "any actuator" rather than a specific node.
func DiscoverNearest(w *world.World, src world.NodeID, ttl int, ledger energy.Ledger, accept func(world.NodeID) bool, onRoute func(path []world.NodeID)) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	reached := false
	w.Flood(src, ttl, ledger, func(at world.NodeID, hops int, path []world.NodeID) bool {
		if !accept(at) {
			return !reached
		}
		reached = true
		return false
	}, func() {
		if onRoute == nil {
			return
		}
		if !reached {
			onRoute(nil)
			return
		}
		onRoute(selectPath(w, src, ttl, accept))
	})
}

// selectPath picks the route the destination's reply would establish: the
// hop-shortest path from src to an accepted node over strong links (length
// ≤ LinkMargin × link range), or over any usable link when no strong path
// exists, bounded by ttl hops. Returns nil when no accepted node is
// reachable at all.
func selectPath(w *world.World, src world.NodeID, ttl int, accept func(world.NodeID) bool) []world.NodeID {
	if path := bfsPath(w, src, ttl, accept, LinkMargin); path != nil {
		return path
	}
	return bfsPath(w, src, ttl, accept, 1.0)
}

// bfsPath runs a hop-bounded BFS from src over alive nodes whose links
// satisfy the margin, returning the first path to an accepted node.
func bfsPath(w *world.World, src world.NodeID, ttl int, accept func(world.NodeID) bool, margin float64) []world.NodeID {
	if !w.Node(src).Alive() {
		return nil
	}
	type entry struct {
		id   world.NodeID
		hops int
	}
	prev := map[world.NodeID]world.NodeID{src: src}
	queue := []entry{{id: src, hops: 0}}
	build := func(at world.NodeID) []world.NodeID {
		var rev []world.NodeID
		for cur := at; ; cur = prev[cur] {
			rev = append(rev, cur)
			if cur == src {
				break
			}
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops >= ttl {
			continue
		}
		// Borrowed cache slice: nothing in the loop body mutates the world
		// or re-queries cur.id, so the slice stays valid for the iteration.
		for _, nb := range w.AliveNeighbors(nil, cur.id) {
			if _, seen := prev[nb]; seen {
				continue
			}
			if w.Distance(cur.id, nb) > margin*w.LinkRange(cur.id, nb) {
				continue
			}
			prev[nb] = cur.id
			if accept(nb) {
				return build(nb)
			}
			queue = append(queue, entry{id: nb, hops: cur.hops + 1})
		}
	}
	return nil
}

// DiscoverRouteRing performs an expanding-ring search: DiscoverRoute with
// each TTL in turn, stopping at the first success. Protocols that know the
// destination is nearby (a tree node searching its root) use a small ring
// first, paying the full flood only when the cheap one fails.
func DiscoverRouteRing(w *world.World, src, dst world.NodeID, ttls []int, ledger energy.Ledger, onRoute func(path []world.NodeID)) {
	if len(ttls) == 0 {
		DiscoverRoute(w, src, dst, 0, ledger, onRoute)
		return
	}
	DiscoverRoute(w, src, dst, ttls[0], ledger, func(path []world.NodeID) {
		if path != nil || len(ttls) == 1 {
			if onRoute != nil {
				onRoute(path)
			}
			return
		}
		DiscoverRouteRing(w, src, dst, ttls[1:], ledger, onRoute)
	})
}

// SendAlongPath forwards a packet hop by hop along a source route.
// onDelivered fires when the final node receives the packet; onBroken fires
// on the first failed hop with the index of the node that could not forward
// (path[brokenAt] failed to reach path[brokenAt+1]). Exactly one of the two
// callbacks fires. A path of length < 2 delivers immediately.
func SendAlongPath(w *world.World, path []world.NodeID, ledger energy.Ledger, onDelivered func(), onBroken func(brokenAt int)) {
	SendAlongPathHops(w, path, ledger, nil, onDelivered, onBroken)
}

// SendAlongPathHops is SendAlongPath with a per-hop observer: onHop fires
// after each successful hop with the index of the forwarding node
// (path[hopAt] reached path[hopAt+1]). Systems use it to thread per-packet
// tracing through source-routed segments; onHop may be nil.
func SendAlongPathHops(w *world.World, path []world.NodeID, ledger energy.Ledger, onHop func(hopAt int), onDelivered func(), onBroken func(brokenAt int)) {
	if len(path) < 2 {
		if onDelivered != nil {
			onDelivered()
		}
		return
	}
	var hop func(i int)
	hop = func(i int) {
		if i == len(path)-1 {
			if onDelivered != nil {
				onDelivered()
			}
			return
		}
		w.Send(path[i], path[i+1], ledger, func(o world.Outcome) {
			if o == world.Delivered {
				if onHop != nil {
					onHop(i)
				}
				hop(i + 1)
				return
			}
			if onBroken != nil {
				onBroken(i)
			}
		})
	}
	hop(0)
}

// PathValid reports whether every consecutive pair of the path is currently
// within range and alive — a cheap admission check before transmitting.
func PathValid(w *world.World, path []world.NodeID) bool {
	for i := 0; i+1 < len(path); i++ {
		if !w.Node(path[i]).Alive() || !w.Node(path[i+1]).Alive() || !w.InRange(path[i], path[i+1]) {
			return false
		}
	}
	return true
}
