package manet

import (
	"testing"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
	"refer/internal/world"
)

// chainWorld builds n nodes in a line, spaced 80 m with 100 m range.
func chainWorld(t *testing.T, n int) *world.World {
	t.Helper()
	w := world.New(world.Config{Region: geo.Square(2000), Seed: 1})
	for i := 0; i < n; i++ {
		w.AddNode(world.Sensor, mobility.Static{P: geo.Point{X: float64(i) * 80, Y: 0}}, 100, 0)
	}
	return w
}

func TestDiscoverRouteChain(t *testing.T) {
	w := chainWorld(t, 6)
	var route []world.NodeID
	DiscoverRoute(w, 0, 5, 0, energy.Communication, func(p []world.NodeID) { route = p })
	w.Sched.Run()
	if len(route) != 6 {
		t.Fatalf("route = %v, want 6-node chain", route)
	}
	for i, id := range route {
		if id != world.NodeID(i) {
			t.Fatalf("route = %v", route)
		}
	}
}

func TestDiscoverRouteUnreachable(t *testing.T) {
	w := chainWorld(t, 3)
	w.SetFailed(1, true)
	called := false
	var route []world.NodeID
	DiscoverRoute(w, 0, 2, 10, energy.Communication, func(p []world.NodeID) {
		called = true
		route = p
	})
	w.Sched.Run()
	if !called {
		t.Fatal("callback never fired")
	}
	if route != nil {
		t.Fatalf("route = %v, want nil", route)
	}
}

func TestDiscoverRouteTTLTooSmall(t *testing.T) {
	w := chainWorld(t, 6)
	var route []world.NodeID
	called := false
	DiscoverRoute(w, 0, 5, 2, energy.Communication, func(p []world.NodeID) { called, route = true, p })
	w.Sched.Run()
	if !called || route != nil {
		t.Fatalf("called=%v route=%v, want nil route", called, route)
	}
}

func TestDiscoverNearest(t *testing.T) {
	w := chainWorld(t, 6)
	targets := map[world.NodeID]bool{4: true, 5: true}
	var route []world.NodeID
	DiscoverNearest(w, 0, 0, energy.Communication, func(id world.NodeID) bool { return targets[id] },
		func(p []world.NodeID) { route = p })
	w.Sched.Run()
	if len(route) == 0 || route[len(route)-1] != 4 {
		t.Fatalf("route = %v, want path ending at nearest target 4", route)
	}
}

func TestDiscoveryEnergyCharged(t *testing.T) {
	w := chainWorld(t, 6)
	DiscoverRoute(w, 0, 5, 0, energy.Construction, nil)
	w.Sched.Run()
	if got := w.TotalEnergy(energy.Construction); got <= 0 {
		t.Fatal("flood charged no construction energy")
	}
	if got := w.TotalEnergy(energy.Communication); got != 0 {
		t.Fatalf("flood charged %f to the wrong ledger", got)
	}
}

func TestSendAlongPathDelivers(t *testing.T) {
	w := chainWorld(t, 4)
	path := []world.NodeID{0, 1, 2, 3}
	delivered := false
	SendAlongPath(w, path, energy.Communication, func() { delivered = true }, func(int) {
		t.Error("unexpected break")
	})
	w.Sched.Run()
	if !delivered {
		t.Fatal("not delivered")
	}
	// 3 transmissions: Tx on 0,1,2 and Rx on 1,2,3.
	wantEnergy := 3*energy.DefaultTxCost + 3*energy.DefaultRxCost
	if got := w.TotalEnergy(energy.Communication); got != wantEnergy {
		t.Fatalf("energy = %f, want %f", got, wantEnergy)
	}
}

func TestSendAlongPathBreak(t *testing.T) {
	w := chainWorld(t, 4)
	w.SetFailed(2, true)
	brokenAt := -1
	SendAlongPath(w, []world.NodeID{0, 1, 2, 3}, energy.Communication,
		func() { t.Error("unexpected delivery") },
		func(i int) { brokenAt = i })
	w.Sched.Run()
	if brokenAt != 1 {
		t.Fatalf("brokenAt = %d, want 1 (node 1 cannot reach failed node 2)", brokenAt)
	}
}

func TestSendAlongPathTrivial(t *testing.T) {
	w := chainWorld(t, 2)
	delivered := false
	SendAlongPath(w, []world.NodeID{0}, energy.Communication, func() { delivered = true }, nil)
	if !delivered {
		t.Fatal("single-node path should deliver immediately")
	}
	delivered = false
	SendAlongPath(w, nil, energy.Communication, func() { delivered = true }, nil)
	if !delivered {
		t.Fatal("empty path should deliver immediately")
	}
}

func TestPathValid(t *testing.T) {
	w := chainWorld(t, 4)
	path := []world.NodeID{0, 1, 2, 3}
	if !PathValid(w, path) {
		t.Fatal("chain path should be valid")
	}
	w.SetFailed(2, true)
	if PathValid(w, path) {
		t.Fatal("path through failed node should be invalid")
	}
	w.SetFailed(2, false)
	if !PathValid(w, path) {
		t.Fatal("recovered path should be valid")
	}
	// Non-adjacent hop.
	if PathValid(w, []world.NodeID{0, 3}) {
		t.Fatal("0→3 is out of range and must be invalid")
	}
}

func TestDiscoverRouteStopsExpandingAfterFound(t *testing.T) {
	// Once a route is found, the flood should stop spreading: compare the
	// energy of a discovery on a long chain where the target is node 1.
	w := chainWorld(t, 20)
	DiscoverRoute(w, 0, 1, 0, energy.Communication, nil)
	w.Sched.Run()
	energyNear := w.TotalEnergy(energy.Communication)

	w2 := chainWorld(t, 20)
	DiscoverRoute(w2, 0, 19, 0, energy.Communication, nil)
	w2.Sched.Run()
	energyFar := w2.TotalEnergy(energy.Communication)
	if energyFar <= energyNear {
		t.Fatalf("far discovery (%f J) should cost more than near discovery (%f J)", energyFar, energyNear)
	}
}

func TestDiscoverRouteRingFallsBackToFullTTL(t *testing.T) {
	w := chainWorld(t, 10)
	var route []world.NodeID
	called := false
	// TTL 2 cannot reach node 9; the ring must fall back to the full TTL.
	DiscoverRouteRing(w, 0, 9, []int{2, 24}, energy.Communication, func(p []world.NodeID) {
		called, route = true, p
	})
	w.Sched.Run()
	if !called || len(route) != 10 {
		t.Fatalf("route = %v", route)
	}
	// Both floods were paid.
	if w.TotalEnergy(energy.Communication) <= 0 {
		t.Fatal("no energy charged")
	}
}

func TestDiscoverRouteRingFirstRingSucceeds(t *testing.T) {
	w := chainWorld(t, 5)
	var route []world.NodeID
	DiscoverRouteRing(w, 0, 2, []int{3, 24}, energy.Communication, func(p []world.NodeID) { route = p })
	w.Sched.Run()
	if len(route) != 3 {
		t.Fatalf("route = %v", route)
	}
}

func TestDiscoverRouteRingEmptyTTLs(t *testing.T) {
	w := chainWorld(t, 4)
	var route []world.NodeID
	DiscoverRouteRing(w, 0, 3, nil, energy.Communication, func(p []world.NodeID) { route = p })
	w.Sched.Run()
	if len(route) != 4 {
		t.Fatalf("route = %v", route)
	}
}

func TestDiscoverRouteRingUnreachable(t *testing.T) {
	w := chainWorld(t, 4)
	w.SetFailed(1, true)
	called := false
	var route []world.NodeID
	DiscoverRouteRing(w, 0, 3, []int{2, 24}, energy.Communication, func(p []world.NodeID) {
		called, route = true, p
	})
	w.Sched.Run()
	if !called || route != nil {
		t.Fatalf("called=%v route=%v", called, route)
	}
}

func TestDiscoverRouteNilCallback(t *testing.T) {
	w := chainWorld(t, 3)
	DiscoverRoute(w, 0, 2, 0, energy.Communication, nil) // must not panic
	DiscoverNearest(w, 0, 0, energy.Communication, func(world.NodeID) bool { return false }, nil)
	w.Sched.Run()
}

func TestDiscoverRouteToAdjacentNode(t *testing.T) {
	w := chainWorld(t, 3)
	var route []world.NodeID
	DiscoverRoute(w, 0, 1, 0, energy.Communication, func(p []world.NodeID) { route = p })
	w.Sched.Run()
	if len(route) != 2 || route[0] != 0 || route[1] != 1 {
		t.Fatalf("route = %v", route)
	}
}
