package kautzoverlay

import (
	"fmt"

	"refer/internal/kautz"
)

// CheckInvariants audits the overlay's structural invariants and returns
// the first violation, or nil. It is the conformance harness's probe point
// (see internal/chaos). The overlay never re-assigns IDs after Build, so
// the bijection is total and permanent; stored physical paths may go stale
// under mobility and faults (the protocol revalidates and rebuilds them on
// use), but their endpoints must always anchor the arc they serve.
func (s *System) CheckInvariants() error {
	if !s.built {
		return nil
	}
	if len(s.kidOf) != len(s.nodeOf) {
		return fmt.Errorf("kautzoverlay: %d members but %d overlay IDs", len(s.kidOf), len(s.nodeOf))
	}
	if len(s.nodeOf) != s.graph.N() {
		return fmt.Errorf("kautzoverlay: %d overlay IDs assigned, want the full K(%d,%d) = %d",
			len(s.nodeOf), s.cfg.Degree, s.diameter, s.graph.N())
	}
	for id, kid := range s.kidOf {
		if !kid.Valid(s.cfg.Degree, s.diameter) {
			return fmt.Errorf("kautzoverlay: node %d holds invalid KID %s", id, kid)
		}
		if got, ok := s.nodeOf[kid]; !ok || got != id {
			return fmt.Errorf("kautzoverlay: kidOf[%d]=%s but nodeOf[%s]=%d", id, kid, kid, got)
		}
	}
	for key, path := range s.links {
		if !kautz.IsSuccessor(key.from, key.to) {
			return fmt.Errorf("kautzoverlay: stored path for non-arc %s→%s", key.from, key.to)
		}
		if len(path) < 2 {
			return fmt.Errorf("kautzoverlay: stored path for %s→%s too short: %v", key.from, key.to, path)
		}
		if path[0] != s.nodeOf[key.from] || path[len(path)-1] != s.nodeOf[key.to] {
			return fmt.Errorf("kautzoverlay: stored path for %s→%s runs %d→%d, want %d→%d",
				key.from, key.to, path[0], path[len(path)-1], s.nodeOf[key.from], s.nodeOf[key.to])
		}
	}
	return s.checkRouteSoundness()
}

// checkRouteSoundness verifies the Theorem 3.8 route sets served to the
// overlay router for every ordered pair of the overlay graph.
func (s *System) checkRouteSoundness() error {
	nodes := s.graph.Nodes()
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			var routes []kautz.Route
			if s.routes != nil {
				if tabled, ok := s.routes.Routes(u, v); ok {
					routes = tabled
				}
			}
			if routes == nil {
				computed, err := kautz.Routes(s.cfg.Degree, u, v)
				if err != nil {
					return fmt.Errorf("kautzoverlay: route set %s→%s: %w", u, v, err)
				}
				routes = computed
			}
			if err := kautz.VerifyRoutes(s.cfg.Degree, u, v, routes); err != nil {
				return fmt.Errorf("kautzoverlay: failover soundness: %w", err)
			}
		}
	}
	return nil
}

// Members returns the overlay member count (for tests).
func (s *System) Members() int { return len(s.kidOf) }
