package kautzoverlay

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/scenario"
	"refer/internal/trace"
	"refer/internal/world"
)

func buildSystem(t *testing.T, seed int64, sensors int, speed float64) (*world.World, *System) {
	t.Helper()
	w := scenario.Build(scenario.Params{Seed: seed, Sensors: sensors, MaxSpeed: speed})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	w.Sched.Run() // drain construction floods
	return w, s
}

func TestBuildSizesOverlayToMembers(t *testing.T) {
	w, s := buildSystem(t, 1, 200, 0)
	g := s.Graph()
	if g == nil {
		t.Fatal("no graph")
	}
	// The overlay is built over elected super-nodes (actuators + spaced
	// sensors), so it is a small complete Kautz graph, not the population.
	if g.N() > 48 || g.N() < 6 {
		t.Fatalf("overlay K(%d,%d) with %d members — expected a super-node overlay", g.Degree(), g.Diameter(), g.N())
	}
	// All actuators are members (they were elected first).
	for _, n := range w.Nodes() {
		if n.Kind != world.Actuator {
			continue
		}
		if _, ok := s.KIDOf(n.ID); !ok {
			t.Fatalf("actuator %d has no overlay ID", n.ID)
		}
	}
	// Elected sensor members are pairwise spaced.
	var members []world.NodeID
	for id := range s.kidOf {
		if w.Node(id).Kind == world.Sensor {
			members = append(members, id)
		}
	}
	if len(members) == 0 {
		t.Fatal("no sensor members elected")
	}
}

func TestBuildDiscoversOverlayLinks(t *testing.T) {
	_, s := buildSystem(t, 2, 100, 0)
	total, found := 0, 0
	for kid, id := range s.nodeOf {
		_ = id
		for _, succ := range s.Graph().Successors(kid) {
			total++
			if len(s.links[linkKey{from: kid, to: succ}]) > 0 {
				found++
			}
		}
	}
	if total == 0 {
		t.Fatal("no overlay arcs")
	}
	if found < total*8/10 {
		t.Fatalf("only %d/%d overlay links have physical paths", found, total)
	}
}

func TestConstructionEnergyDominates(t *testing.T) {
	// The paper's Figure 10 point: overlay construction is by far the most
	// expensive of the four systems because every node floods per overlay
	// neighbor. Sanity-check it is much larger than a handful of unicasts.
	w, _ := buildSystem(t, 3, 100, 0)
	if got := w.TotalEnergy(energy.Construction); got < 1000 {
		t.Fatalf("construction energy = %.1f J, expected thousands", got)
	}
}

func TestInjectDelivers(t *testing.T) {
	w, s := buildSystem(t, 4, 200, 0)
	delivered, attempts := 0, 0
	for _, id := range scenario.SensorIDs(w)[:30] {
		attempts++
		s.Inject(id, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.Run()
	if delivered < attempts*6/10 {
		t.Fatalf("delivered %d/%d on a static network", delivered, attempts)
	}
}

func TestInjectUsesMultiHopOverlayPaths(t *testing.T) {
	w, s := buildSystem(t, 5, 200, 0)
	// A Kautz-overlay delivery typically crosses several overlay arcs, each
	// a multi-hop physical path: total communication energy per packet is
	// much higher than a 3-hop REFER-style delivery (~8 J).
	src := scenario.SensorIDs(w)[10]
	ok := false
	s.Inject(src, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Skip("delivery failed on this seed; energy comparison not meaningful")
	}
	if got := w.TotalEnergy(energy.Communication); got < 15 {
		t.Fatalf("one overlay delivery cost %.1f J — expected well above a direct path", got)
	}
}

func TestLinkRebuildOnBreak(t *testing.T) {
	w, s := buildSystem(t, 6, 200, 0)
	// Fail an intermediate node of some overlay link, then route across it.
	var key linkKey
	var victim world.NodeID = world.NoNode
	for k, path := range s.links {
		if len(path) >= 3 && w.Node(path[1]).Kind == world.Sensor {
			key, victim = k, path[1]
			break
		}
	}
	if victim == world.NoNode {
		t.Skip("no multi-hop overlay link")
	}
	w.SetFailed(victim, true)
	from := s.nodeOf[key.from]
	done := false
	ok := false
	s.overlayHop(key.from, key.to, from, s.nodeOf[key.to], true, func(o bool) { done, ok = true, o })
	w.Sched.Run()
	if !done {
		t.Fatal("overlayHop never completed")
	}
	if ok && s.Stats().PathRebuilds == 0 {
		t.Fatal("hop succeeded without rebuilding a broken path")
	}
}

func TestFailoverAcrossOverlayPaths(t *testing.T) {
	w, s := buildSystem(t, 7, 200, 0)
	// Fail a random member and keep injecting: Theorem 3.8 failover should
	// keep most deliveries alive.
	var member world.NodeID = world.NoNode
	for id := range s.kidOf {
		if w.Node(id).Kind == world.Sensor {
			member = id
			break
		}
	}
	w.SetFailed(member, true)
	delivered, attempts := 0, 0
	for _, id := range scenario.SensorIDs(w)[:20] {
		if id == member {
			continue
		}
		attempts++
		s.Inject(id, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.Run()
	if delivered < attempts/2 {
		t.Fatalf("delivered %d/%d with one failed member", delivered, attempts)
	}
}

func TestInjectFailedSource(t *testing.T) {
	w, s := buildSystem(t, 8, 100, 0)
	src := scenario.SensorIDs(w)[0]
	w.SetFailed(src, true)
	var got *bool
	s.Inject(src, func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("failed source should drop")
	}
}

func TestBuildRejectsTinyPopulation(t *testing.T) {
	w := world.New(world.Config{Seed: 1})
	s := New(w, DefaultConfig())
	if err := s.Build(); err == nil {
		t.Fatal("empty world should be rejected")
	}
}

func TestRoutesMatchTheorem(t *testing.T) {
	// The overlay uses the shared kautz.Routes; spot-check one relay's
	// ranked successors agree with Theorem 3.8 on the overlay graph.
	_, s := buildSystem(t, 9, 200, 0)
	var kid kautz.ID
	for k := range s.nodeOf {
		kid = k
		break
	}
	var dst kautz.ID
	for k := range s.nodeOf {
		if k != kid {
			dst = k
			break
		}
	}
	routes, err := kautz.Routes(2, kid, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("expected 2 disjoint routes in a degree-2 overlay, got %d", len(routes))
	}
}

func TestDeliveryUnderMobilityDegrades(t *testing.T) {
	// Kautz-overlay is the system mobility hurts most (Figure 4): multi-hop
	// overlay links break constantly. We only require the system to keep
	// functioning (some deliveries, heavy rebuild activity).
	w := scenario.Build(scenario.Params{Seed: 10, Sensors: 200, MaxSpeed: 3})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	w.Sched.RunUntil(5 * time.Second)
	delivered, attempts := 0, 0
	var round func()
	round = func() {
		if w.Now() > 100*time.Second {
			return
		}
		ids := scenario.SensorIDs(w)
		for i := 0; i < 3; i++ {
			attempts++
			s.Inject(ids[w.Rand().Intn(len(ids))], func(ok bool) {
				if ok {
					delivered++
				}
			})
		}
		if _, err := w.Sched.After(10*time.Second, round); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	round()
	w.Sched.RunUntil(150 * time.Second)
	if attempts == 0 {
		t.Fatal("no attempts")
	}
	if delivered == 0 && s.Stats().PathRebuilds == 0 {
		t.Fatalf("no deliveries and no rebuild activity (%d attempts)", attempts)
	}
}

func TestInjectFromOverlayMember(t *testing.T) {
	w, s := buildSystem(t, 11, 200, 0)
	var member world.NodeID = world.NoNode
	for id := range s.kidOf {
		if w.Node(id).Kind == world.Sensor {
			member = id
			break
		}
	}
	if member == world.NoNode {
		t.Skip("no sensor member")
	}
	ok := false
	s.Inject(member, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("member inject failed")
	}
}

func TestInjectNoMemberInRangeDrops(t *testing.T) {
	// Place an isolated extra sensor far from everyone: no overlay member
	// in range and no route.
	w := scenario.Build(scenario.Params{Seed: 12, Sensors: 150})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	w.Sched.Run()
	orphan := w.AddNode(world.Sensor, isolatedModel{}, 1, 0) // 1 m range: nobody linkable
	var got *bool
	s.Inject(orphan.ID, func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("isolated source should drop")
	}
	if s.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

// isolatedModel pins a node in a far corner of the field.
type isolatedModel struct{}

func (isolatedModel) At(time.Duration) geo.Point { return geo.Point{X: 499, Y: 499} }

func TestRouteBudgetExhaustion(t *testing.T) {
	w, s := buildSystem(t, 13, 200, 0)
	// A zero budget drops immediately unless already at the destination.
	var kidA, kidB kautz.ID
	for k := range s.nodeOf {
		if kidA == "" {
			kidA = k
		} else if k != kidA {
			kidB = k
			break
		}
	}
	var got *bool
	s.route(s.nodeOf[kidA], kidB, 0, trace.Packet{}, func(ok bool) { got = &ok })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("zero budget should drop")
	}
	// At the destination it succeeds regardless of budget.
	delivered := false
	s.route(s.nodeOf[kidA], kidA, 0, trace.Packet{}, func(ok bool) { delivered = ok })
	if !delivered {
		t.Fatal("route to self should succeed")
	}
}

func TestNonMemberCannotRoute(t *testing.T) {
	w, s := buildSystem(t, 14, 200, 0)
	// route() at a node without an overlay ID fails cleanly.
	var plain world.NodeID = world.NoNode
	for _, id := range scenario.SensorIDs(w) {
		if _, member := s.kidOf[id]; !member {
			plain = id
			break
		}
	}
	if plain == world.NoNode {
		t.Skip("everyone is a member")
	}
	var got *bool
	var anyKID kautz.ID
	for k := range s.nodeOf {
		anyKID = k
		break
	}
	s.route(plain, anyKID, 5, trace.Packet{}, func(ok bool) { got = &ok })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("non-member routing should fail")
	}
}
