// Package kautzoverlay implements the Kautz-overlay baseline (Zuo et al.,
// ICOIN'08, as modeled in Section IV of the REFER paper): a Kautz graph
// built on the application layer of a MANET with no topology consistency.
//
// Overlay IDs are assigned without regard to physical position, so overlay
// neighbors are usually physically distant and every overlay arc is a
// multi-hop MANET path discovered by flooding — the dominant construction
// cost the paper's Figure 10 shows. Routing uses REFER's Theorem 3.8
// protocol on the overlay (the paper equalizes the routing rule "to have a
// fair comparison"), but every overlay hop rides a stored physical path;
// when one breaks, the node floods to re-establish it.
package kautzoverlay

import (
	"fmt"
	"sort"

	"refer/internal/energy"
	"refer/internal/kautz"
	"refer/internal/manet"
	"refer/internal/trace"
	"refer/internal/world"
)

// Config parameterizes the overlay.
type Config struct {
	// Degree is the Kautz degree d (default 2).
	Degree int
	// FloodTTL bounds path discovery floods.
	FloodTTL int
	// HopBudget bounds overlay hops per packet (loop protection);
	// 0 derives it from the overlay diameter.
	HopBudget int
	// MemberSpacing is the minimum spacing between elected overlay
	// members in meters; the overlay is built over spread-out super-nodes
	// (the ICOIN'08 scheme elects cluster heads), not every sensor.
	MemberSpacing float64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{Degree: 2, FloodTTL: manet.DefaultTTL, MemberSpacing: 100}
}

// System is a built Kautz-overlay network.
type System struct {
	w   *world.World
	cfg Config

	graph    *kautz.Graph
	routes   *kautz.RouteTable // shared precomputed Theorem 3.8 routes; nil = compute directly
	kidOf    map[world.NodeID]kautz.ID
	nodeOf   map[kautz.ID]world.NodeID
	links    map[linkKey][]world.NodeID // physical path per overlay arc
	diameter int
	built    bool
	// rebuilding coalesces concurrent rebuilds of the same overlay link.
	rebuilding map[linkKey][]func(ok bool)

	stats Stats
}

type linkKey struct {
	from kautz.ID
	to   kautz.ID
}

// Stats counts protocol activity.
type Stats struct {
	// PathRebuilds counts overlay-link re-discovery floods.
	PathRebuilds int
	// FailoverSwitches counts Theorem 3.8 alternate-successor decisions.
	FailoverSwitches int
	// Drops counts abandoned packets.
	Drops int
	// RouteCacheHits and RouteCacheMisses count forwarding decisions whose
	// Theorem 3.8 route set was served from the precomputed route table vs
	// computed directly from the IDs.
	RouteCacheHits   int
	RouteCacheMisses int
}

// New creates an unbuilt overlay on w.
func New(w *world.World, cfg Config) *System {
	if cfg.Degree <= 0 {
		cfg.Degree = 2
	}
	if cfg.FloodTTL <= 0 {
		cfg.FloodTTL = manet.DefaultTTL
	}
	if cfg.MemberSpacing <= 0 {
		cfg.MemberSpacing = DefaultConfig().MemberSpacing
	}
	return &System{
		w:          w,
		cfg:        cfg,
		kidOf:      make(map[world.NodeID]kautz.ID),
		nodeOf:     make(map[kautz.ID]world.NodeID),
		links:      make(map[linkKey][]world.NodeID),
		rebuilding: make(map[linkKey][]func(ok bool)),
	}
}

// Name implements the System interface.
func (s *System) Name() string { return "Kautz-overlay" }

// Stats returns a snapshot of the protocol counters.
func (s *System) Stats() Stats { return s.stats }

// Graph returns the overlay's Kautz graph.
func (s *System) Graph() *kautz.Graph { return s.graph }

// KIDOf returns a node's overlay ID.
func (s *System) KIDOf(id world.NodeID) (kautz.ID, bool) {
	kid, ok := s.kidOf[id]
	return kid, ok
}

// Build chooses the largest complete K(d,k) that fits the population,
// assigns overlay IDs (actuators first, then sensors in ID order — i.e.
// with no topology awareness), and flood-discovers a physical path for
// every overlay arc.
func (s *System) Build() error {
	var actuators, sensors []world.NodeID
	for _, n := range s.w.Nodes() {
		if n.Kind == world.Actuator {
			actuators = append(actuators, n.ID)
		} else {
			sensors = append(sensors, n.ID)
		}
	}
	// Member election (the ICOIN'08 clustering step): actuators plus
	// sensors spaced at least MemberSpacing apart, greedily by node ID.
	// Each elected member announces itself with one broadcast.
	members := append([]world.NodeID(nil), actuators...)
	for _, id := range sensors {
		p := s.w.Position(id)
		spaced := true
		for _, m := range members {
			if p.Dist(s.w.Position(m)) < s.cfg.MemberSpacing {
				spaced = false
				break
			}
		}
		if spaced {
			members = append(members, id)
			s.w.Broadcast(id, energy.Construction, nil)
		}
	}
	total := len(members)
	k := 1
	for kautz.NumNodes(s.cfg.Degree, k+1) <= total {
		k++
	}
	if kautz.NumNodes(s.cfg.Degree, k) > total {
		return fmt.Errorf("kautzoverlay: %d members cannot host K(%d,%d)", total, s.cfg.Degree, k)
	}
	g, err := kautz.New(s.cfg.Degree, k)
	if err != nil {
		return fmt.Errorf("kautzoverlay: %w", err)
	}
	s.graph = g
	s.diameter = k
	// Share the process-wide precomputed route table when the chosen K(d,k)
	// is small enough to tabulate; larger overlays fall back to the direct
	// per-decision computation.
	if table, err := kautz.TableFor(s.cfg.Degree, k); err == nil {
		s.routes = table
	}
	if s.cfg.HopBudget <= 0 {
		s.cfg.HopBudget = 3*k + 4
	}

	// ID assignment ignores physical topology (the defining flaw): KIDs go
	// to the first N members in node-ID order, blind to position.
	members = members[:g.N()]
	kids := g.Nodes()
	for i, id := range members {
		s.kidOf[id] = kids[i]
		s.nodeOf[kids[i]] = id
	}

	// Every overlay node floods to discover a physical path to each of its
	// d overlay successors — the expensive construction step.
	sortedKIDs := append([]kautz.ID(nil), kids...)
	sort.Slice(sortedKIDs, func(i, j int) bool { return sortedKIDs[i] < sortedKIDs[j] })
	for _, kid := range sortedKIDs {
		from := s.nodeOf[kid]
		for _, succ := range g.Successors(kid) {
			to := s.nodeOf[succ]
			key := linkKey{from: kid, to: succ}
			manet.DiscoverRoute(s.w, from, to, s.cfg.FloodTTL, energy.Construction,
				func(path []world.NodeID) {
					if path != nil {
						s.links[key] = path
					}
				})
		}
	}
	s.built = true
	return nil
}

// Inject routes one packet from src to the overlay ID of its physically
// nearest actuator using the Theorem 3.8 protocol over multi-hop links.
func (s *System) Inject(src world.NodeID, done func(ok bool)) {
	p := s.w.Tracer().PacketInject(s.w.Now(), int32(src))
	finish := func(ok bool) {
		if ok {
			p.Deliver(s.w.Now())
		} else {
			p.Drop(s.w.Now())
			s.stats.Drops++
		}
		if done != nil {
			done(ok)
		}
	}
	if !s.built || !s.w.Node(src).Alive() {
		finish(false)
		return
	}
	dstActuator := s.w.NearestActuator(src)
	if dstActuator == world.NoNode {
		finish(false)
		return
	}
	dstKID, ok := s.kidOf[dstActuator]
	if !ok {
		finish(false)
		return
	}
	// Every hop below goes through world.Send, so the overlay inherits the
	// batched drain's conflict tagging for free: per-hop completions carry
	// both endpoints' claim tiles and their neighbor caches are warmed in
	// parallel, while the routing decisions themselves stay on the serial
	// commit path (they draw RNG and charge energy).
	entry := src
	if _, member := s.kidOf[src]; !member {
		entry = s.nearestMember(src)
		if entry == world.NoNode {
			finish(false)
			return
		}
		s.w.Send(src, entry, energy.Communication, func(o world.Outcome) {
			if o != world.Delivered {
				finish(false)
				return
			}
			p.Hop(s.w.Now(), int32(src), int32(entry), 0)
			s.route(entry, dstKID, s.cfg.HopBudget, p, finish)
		})
		return
	}
	s.route(entry, dstKID, s.cfg.HopBudget, p, finish)
}

// nearestMember returns the nearest alive overlay member in radio range.
// Candidates come from the world's cached alive-neighbor set rather than a
// scan over the whole kidOf map; distance ties break on the smaller node ID
// to keep seeded replay exact.
func (s *System) nearestMember(src world.NodeID) world.NodeID {
	best, bestDist := world.NoNode, 0.0
	p := s.w.Position(src)
	for _, id := range s.w.AliveNeighbors(nil, src) {
		if _, member := s.kidOf[id]; !member {
			continue
		}
		d := p.Dist(s.w.Position(id))
		if best == world.NoNode || d < bestDist || (d == bestDist && id < best) {
			best, bestDist = id, d
		}
	}
	return best
}

// route performs one overlay routing step at node at toward dstKID.
func (s *System) route(at world.NodeID, dstKID kautz.ID, budget int, p trace.Packet, done func(ok bool)) {
	atKID, ok := s.kidOf[at]
	if !ok {
		done(false)
		return
	}
	if atKID == dstKID {
		done(true)
		return
	}
	if budget <= 0 {
		done(false)
		return
	}
	routes, err := s.routesFor(atKID, dstKID)
	if err != nil {
		done(false)
		return
	}
	s.tryRoutes(at, dstKID, routes, 0, budget, p, done)
}

// routesFor returns the Theorem 3.8 route set for the ordered pair, served
// from the shared precomputed table (copy-on-read) with a fallback to the
// direct computation when the overlay graph was too large to tabulate.
func (s *System) routesFor(u, v kautz.ID) ([]kautz.Route, error) {
	if s.routes != nil {
		if routes, ok := s.routes.Routes(u, v); ok {
			s.stats.RouteCacheHits++
			return routes, nil
		}
	}
	s.stats.RouteCacheMisses++
	return kautz.Routes(s.cfg.Degree, u, v)
}

// countFailoverSwitch records one Theorem 3.8 failover decision, counted
// exactly once per abandoned path and only when an alternate disjoint path
// actually remains — the same invariant REFER's intra-cell router keeps.
// The decision is also emitted as a trace event when the run is traced.
func (s *System) countFailoverSwitch(p trace.Packet, at world.NodeID, routes []kautz.Route, idx int) {
	if idx+1 < len(routes) {
		s.stats.FailoverSwitches++
		p.FailoverSwitch(s.w.Now(), int32(at), int8(routes[idx].Class))
	}
}

// tryRoutes walks the ranked Theorem 3.8 successors; each overlay hop rides
// the stored physical path, rebuilt by flooding when broken.
func (s *System) tryRoutes(at world.NodeID, dstKID kautz.ID, routes []kautz.Route, idx, budget int, p trace.Packet, done func(ok bool)) {
	if idx >= len(routes) {
		done(false)
		return
	}
	atKID := s.kidOf[at]
	succ := routes[idx].Successor
	next, ok := s.nodeOf[succ]
	if !ok || !s.w.Node(next).Alive() {
		s.countFailoverSwitch(p, at, routes, idx)
		s.tryRoutes(at, dstKID, routes, idx+1, budget, p, done)
		return
	}
	s.overlayHop(atKID, succ, at, next, true, func(delivered bool) {
		if delivered {
			p.Hop(s.w.Now(), int32(at), int32(next), int8(routes[idx].Class))
			s.route(next, dstKID, budget-1, p, done)
			return
		}
		s.countFailoverSwitch(p, at, routes, idx)
		s.tryRoutes(at, dstKID, routes, idx+1, budget, p, done)
	})
}

// overlayHop sends across one overlay arc along its stored physical path;
// on a break it floods once to re-establish the path and retries.
func (s *System) overlayHop(fromKID, toKID kautz.ID, from, to world.NodeID, mayRebuild bool, done func(ok bool)) {
	key := linkKey{from: fromKID, to: toKID}
	path := s.links[key]
	if len(path) == 0 || !manet.PathValid(s.w, path) {
		if !mayRebuild {
			done(false)
			return
		}
		s.rebuildLink(key, from, to, func(ok bool) {
			if !ok {
				done(false)
				return
			}
			s.overlayHop(fromKID, toKID, from, to, false, done)
		})
		return
	}
	manet.SendAlongPath(s.w, path, energy.Communication,
		func() { done(true) },
		func(int) {
			if !mayRebuild {
				done(false)
				return
			}
			s.rebuildLink(key, from, to, func(ok bool) {
				if !ok {
					done(false)
					return
				}
				s.overlayHop(fromKID, toKID, from, to, false, done)
			})
		})
}

// rebuildLink floods to re-discover the physical path of an overlay arc
// ("it uses broadcasting to re-establish a path to the node"). Concurrent
// packets crossing the same broken arc share one discovery flood.
func (s *System) rebuildLink(key linkKey, from, to world.NodeID, done func(ok bool)) {
	if !s.w.Node(from).Alive() {
		done(false)
		return
	}
	if waiting, inFlight := s.rebuilding[key]; inFlight {
		s.rebuilding[key] = append(waiting, done)
		return
	}
	s.rebuilding[key] = []func(bool){done}
	s.stats.PathRebuilds++
	manet.DiscoverRoute(s.w, from, to, s.cfg.FloodTTL, energy.Communication,
		func(path []world.NodeID) {
			if path != nil {
				s.links[key] = path
			}
			waiting := s.rebuilding[key]
			delete(s.rebuilding, key)
			for _, w := range waiting {
				w(path != nil)
			}
		})
}
