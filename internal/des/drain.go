// Batched drain: the parallel counterpart of the classic one-event-at-a-time
// scheduler loop. Events may declare conflict domains (Claims) and a
// side-effect-free prepare callback; RunUntilLimit then stages a maximal
// pairwise conflict-free set of tagged events from a bounded lookahead
// window, executes the prepares in parallel on a per-batch worker set, and
// commits the events serially in canonical (timestamp, sequence) order. All
// RNG draws, energy charges and world mutations stay on the commit
// goroutine — the prepare phase may only warm caches whose reads the claims
// cover — so results are byte-identical at any drain parallelism.
//
// Determinism argument, in full:
//
//   - Batch formation pops events in heap order; events it passes over
//     (untagged, or conflicting with an already-staged claim) go straight
//     back on the heap with their sequence numbers intact, so the staged
//     slice is an in-order subsequence of the canonical (at, seq) order.
//   - The commit loop walks that subsequence in order, and before committing
//     each staged event it interleaves any heap event with an earlier
//     (at, seq) — including the passed-over ones — so the global commit
//     order is the same total order the serial loop produces.
//   - The prepare phase mutates nothing the commit phase reads for its
//     decisions. Claim disjointness makes concurrently-running prepares
//     race-free; an interleaved commit inside a staged event's claim region
//     can only make its warmed state stale, and the producer-side
//     exact-match consume plus the generation-snapshot guard
//     (InvalidateReads) turn staleness into a skipped or re-executed warm,
//     never a wrong result.
package des

import (
	"sync"
	"sync/atomic"
	"time"
)

// Domain identifies a conflict domain: an opaque key naming a piece of
// shared state an event's prepare callback may read. The zero Domain is a
// non-domain (an unused Claims slot). Producers pick the granularity — the
// WSAN world uses spatial tiles; "global" events simply stay untagged.
type Domain uint64

// Claims is an event's fixed-size conflict-domain set. Events whose claim
// sets are pairwise disjoint may prepare concurrently. The all-zero Claims
// means untagged: the event never joins a batch and always executes on the
// classic serial path, which is also the correct declaration for events that
// touch global state (maintenance ticks, fault injection, recovery probes).
type Claims [4]Domain

// zero reports whether no domain is claimed.
func (c Claims) zero() bool { return c == Claims{} }

// Contains reports whether every non-zero domain of sub is claimed by c.
// Prepare callbacks use it to verify, against the actual read set they are
// about to touch, that the schedule-time claims still cover it; on a miss
// they must skip their work (the commit path then simply computes it
// serially, so verification failures cost performance, never correctness).
func (c Claims) Contains(sub Claims) bool {
	for _, d := range sub {
		if d == 0 {
			continue
		}
		if c[0] != d && c[1] != d && c[2] != d && c[3] != d {
			return false
		}
	}
	return true
}

// PrepFunc is an event's parallel prepare callback. It runs on an arbitrary
// worker goroutine with the scheduler paused: it must not schedule, cancel,
// draw randomness, or mutate anything outside state its event's Claims
// cover plus the per-worker scratch indexed by worker. at is the event's
// timestamp; arg0/arg1 are the two packed arguments given to AtTagged, and
// claims echoes the event's claim set for read-set verification. One shared
// PrepFunc value serves every event of a producer, so tagging adds no
// per-event closure allocation.
type PrepFunc func(worker int, at time.Duration, claims Claims, arg0, arg1 int32)

// DrainStats counts the batched drain's work. The counters depend on the
// drain parallelism and batch geometry, so — like wall-clock — they are
// observability, not simulation results, and must be stripped from anything
// byte-compared across parallelism levels.
type DrainStats struct {
	// Batches is the number of prepared batches; BatchedEvents the events
	// prepared in them (an event pushed back by a halt or batch limit and
	// re-prepared later counts once per preparation).
	Batches       uint64
	BatchedEvents uint64
	// SerialEvents counts events the drain executed without preparation:
	// untagged events, deferred conflicting events committed through the
	// interleave path, and batches below the minimum prepare size.
	SerialEvents uint64
	// Reexecs counts staged events whose prepare was re-run serially at
	// commit because an earlier commit bumped the read generation.
	Reexecs uint64
	// PrepNs is wall-clock nanoseconds spent in parallel prepare phases.
	PrepNs int64
}

const (
	// stagedIdx marks an event popped from the heap into the staged batch.
	stagedIdx = -2
	// drainWindow is the batch lookahead: events within this much virtual
	// time of the batch head may join it. Bounded so prepares never read
	// state far ahead of the committed clock (mobility models guarantee
	// bounded position backtracking well beyond this window).
	drainWindow = 2 * time.Millisecond
	// drainScanLimit caps how many events one batch formation pops while
	// collecting its conflict-free set; events it passes over go back on
	// the heap, so the cap bounds that wasted heap traffic on windows
	// dominated by untagged events.
	drainScanLimit = 64
	// minPrepBatch is the smallest batch worth spawning workers for;
	// singletons commit serially with zero prepare overhead. Even a pair
	// pays: a prepare costs microseconds (a spatial query plus a sorted
	// rebuild) against ~1 µs of goroutine handoff.
	minPrepBatch = 2
)

// SetDrainParallelism sets the worker count for the batched drain. Values
// below 2 (including the default 0) select the classic serial loop, whose
// cost and allocation profile are completely unchanged. The setting only
// takes effect between RunUntilLimit calls.
func (s *Scheduler) SetDrainParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// DrainParallelism returns the configured drain worker count (minimum 1).
func (s *Scheduler) DrainParallelism() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// InvalidateReads bumps the read generation consulted by the batched
// drain's snapshot guard. Producers call it whenever serially-committed
// state that prepare callbacks read (beyond what Claims disjointness
// already isolates) may have changed — the WSAN world calls it on every
// liveness transition. Serial runs may call it freely; it is a counter
// increment and nothing else.
func (s *Scheduler) InvalidateReads() { s.readGen++ }

// DrainStats returns a snapshot of the batched-drain counters.
func (s *Scheduler) DrainStats() DrainStats { return s.dstats }

// AtTagged schedules fn like At, additionally declaring the conflict
// domains fn's decision inputs live in and a prepare callback that may warm
// them from a worker goroutine. With drain parallelism below 2, a nil prep
// or zero claims, it is exactly At — same cost, same allocation profile —
// so producers can tag unconditionally.
func (s *Scheduler) AtTagged(at time.Duration, claims Claims, prep PrepFunc, arg0, arg1 int32, fn func()) (Handle, error) {
	h, err := s.At(at, fn)
	if err != nil {
		return h, err
	}
	if s.workers < 2 || prep == nil || claims.zero() {
		return h, nil
	}
	ev := h.ev
	ev.claims = claims
	ev.prep = prep
	ev.p0, ev.p1 = arg0, arg1
	return h, nil
}

// drainUntilLimit is RunUntilLimit's batched path, active when
// SetDrainParallelism enabled two or more workers. Untagged events step
// through the classic serial path one at a time; runs of conflict-free
// tagged events stage, prepare in parallel, and commit in canonical order.
func (s *Scheduler) drainUntilLimit(deadline time.Duration, limit int) bool {
	s.halted = false
	executed := 0
	for !s.halted && (limit <= 0 || executed < limit) {
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			if s.now < deadline {
				s.now = deadline
			}
			return false
		}
		if s.heap[0].prep == nil {
			s.Step()
			s.dstats.SerialEvents++
			executed++
			continue
		}
		executed = s.drainBatch(deadline, limit, executed)
	}
	if s.halted {
		return false
	}
	return len(s.heap) > 0 && s.heap[0].at <= deadline
}

// drainBatch stages a maximal conflict-free set of tagged events from the
// head of the queue's lookahead window, prepares it in parallel, and
// commits it serially. The staged set need not be a prefix of the queue:
// untagged and conflicting events formation passes over go back on the
// heap, and the commit loop interleaves them at their canonical (at, seq)
// positions — so the global commit order is still the serial loop's total
// order, and the warm-consumption guards (exact-match consume, read-
// generation re-execution) make an intervening commit inside a staged
// event's claim region a lost warm, never a wrong one. It returns the
// updated executed count; on a halt or batch limit it pushes the
// uncommitted remainder back onto the heap (sequence numbers are
// preserved, so the canonical order is unaffected).
func (s *Scheduler) drainBatch(deadline time.Duration, limit int, executed int) int {
	// ---- formation (serial): collect a disjoint set from the window ----
	window := s.heap[0].at + drainWindow
	if window > deadline {
		window = deadline
	}
	if s.claimed == nil {
		s.claimed = make(map[Domain]struct{}, 4*minPrepBatch)
	}
	clear(s.claimed)
	s.staged = s.staged[:0]
	s.stagedNext = 0
	scanned := 0
	for len(s.heap) > 0 && scanned < drainScanLimit {
		top := s.heap[0]
		if top.at > window {
			break
		}
		if limit > 0 && executed+len(s.staged) >= limit {
			break
		}
		scanned++
		conflict := top.prep == nil // untagged: conflicts with everything
		for _, d := range top.claims {
			if d == 0 || conflict {
				continue
			}
			if _, dup := s.claimed[d]; dup {
				conflict = true
			}
		}
		s.remove(0)
		if conflict {
			s.deferred = append(s.deferred, top)
			continue
		}
		top.idx = stagedIdx
		s.staged = append(s.staged, top)
		s.stagedLive++
		for _, d := range top.claims {
			if d != 0 {
				s.claimed[d] = struct{}{}
			}
		}
	}
	// Passed-over events return to the heap before any prepare runs: their
	// sequence numbers are untouched, so they re-enter at their canonical
	// positions and the commit loop below interleaves them correctly.
	for _, ev := range s.deferred {
		s.push(ev)
	}
	s.deferred = s.deferred[:0]

	// ---- prepare (parallel): warm each staged event's read set ----
	genSnap := s.readGen
	if len(s.staged) >= minPrepBatch {
		t0 := time.Now()
		nw := s.workers
		if nw > len(s.staged) {
			nw = len(s.staged)
		}
		// The drain goroutine is worker 0 and only nw-1 goroutines spawn:
		// on the small batches real workloads form, parking the committer in
		// a WaitGroup just to schedule one more goroutine would cost more
		// than the prepares themselves.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		work := func(worker int) {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(s.staged) {
					return
				}
				ev := s.staged[i]
				ev.prep(worker, ev.at, ev.claims, ev.p0, ev.p1)
				ev.prepped = true
			}
		}
		wg.Add(nw - 1)
		for w := 1; w < nw; w++ {
			go func(worker int) {
				defer wg.Done()
				work(worker)
			}(w)
		}
		work(0)
		wg.Wait()
		s.dstats.PrepNs += time.Since(t0).Nanoseconds()
		s.dstats.Batches++
		s.dstats.BatchedEvents += uint64(len(s.staged))
	} else {
		s.dstats.SerialEvents += uint64(len(s.staged))
	}

	// ---- commit (serial, canonical order) ----
	for s.stagedNext < len(s.staged) {
		ev := s.staged[s.stagedNext]
		if ev.fn == nil {
			// Cancelled while staged: release without firing, like a
			// cancelled heap event.
			s.stagedNext++
			s.release(ev)
			continue
		}
		if s.halted || (limit > 0 && executed >= limit) {
			s.pushBackStaged()
			return executed
		}
		// Interleave events that committed prefixes scheduled strictly
		// earlier in the canonical order than the next staged event.
		for len(s.heap) > 0 && eventLess(s.heap[0], ev) {
			s.Step()
			s.dstats.SerialEvents++
			executed++
			if s.halted || (limit > 0 && executed >= limit) {
				s.pushBackStaged()
				return executed
			}
		}
		if ev.fn == nil { // cancelled by an interleaved event
			s.stagedNext++
			s.release(ev)
			continue
		}
		if ev.prepped && s.readGen != genSnap {
			// An earlier commit invalidated reads the prepare made under the
			// snapshot: re-execute it serially (worker 0 scratch) so the
			// warmed state reflects the committed present.
			ev.prep(0, ev.at, ev.claims, ev.p0, ev.p1)
			s.dstats.Reexecs++
		}
		s.stagedNext++
		s.stagedLive--
		s.now = ev.at
		fn := ev.fn
		s.release(ev)
		s.fired++
		executed++
		fn()
	}
	s.staged = s.staged[:0]
	s.stagedNext = 0
	return executed
}

// pushBackStaged returns uncommitted staged events to the heap (halt or
// batch limit mid-commit). Their sequence numbers were never touched, so
// they re-enter the queue at their canonical positions.
func (s *Scheduler) pushBackStaged() {
	for i := s.stagedNext; i < len(s.staged); i++ {
		ev := s.staged[i]
		if ev.fn == nil {
			s.release(ev)
			continue
		}
		s.stagedLive--
		ev.prepped = false
		s.push(ev)
	}
	s.staged = s.staged[:0]
	s.stagedNext = 0
}

// stagedPendingAt reports the earliest live staged event's timestamp.
// Staged events are in canonical order, so the first live one is the
// earliest.
func (s *Scheduler) stagedPendingAt() (time.Duration, bool) {
	for i := s.stagedNext; i < len(s.staged); i++ {
		if s.staged[i].fn != nil {
			return s.staged[i].at, true
		}
	}
	return 0, false
}
