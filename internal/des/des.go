// Package des is a deterministic discrete-event scheduler: a virtual clock
// and a priority queue of timestamped callbacks. Everything in the WSAN
// simulator — packet receptions, MAC backoffs, mobility-driven maintenance
// probes, failure injection, traffic generation — is an event on this
// queue. Determinism is guaranteed by breaking timestamp ties with a
// monotone sequence number, so runs with the same seed replay identically.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Handle lets a scheduled event be cancelled before it fires.
type Handle struct {
	s  *Scheduler
	ev *event
}

// Cancel prevents the event from running and removes it from the queue
// immediately (O(log n) via the heap index), so Pending() stays accurate
// and long runs with many cancelled maintenance timers do not retain dead
// events until their timestamps drain. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	h.ev.fn = nil
	if h.s != nil && h.ev.idx >= 0 {
		heap.Remove(&h.s.queue, h.ev.idx)
	}
	return true
}

// Scheduler owns the virtual clock and event queue. The zero value is
// ready to use. Scheduler is not safe for concurrent use; the simulator is
// single-threaded by design.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued. Cancelled events are
// removed from the queue eagerly, so they never inflate the count.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is an error — a simulation bug worth failing loudly on.
func (s *Scheduler) At(at time.Duration, fn func()) (Handle, error) {
	if at < s.now {
		return Handle{}, fmt.Errorf("des: schedule at %v before now %v", at, s.now)
	}
	if fn == nil {
		return Handle{}, fmt.Errorf("des: nil event function")
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{s: s, ev: ev}, nil
}

// After schedules fn to run delay after the current time. Negative delays
// are coerced to zero (run "immediately", after already-queued events at
// the same timestamp).
func (s *Scheduler) After(delay time.Duration, fn func()) (Handle, error) {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// Halt stops Run/RunUntil after the current event completes.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is empty, the
// scheduler is halted, or the next event lies beyond deadline. The clock
// finishes at min(deadline, last event time); if the queue drains early the
// clock is advanced to the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.RunUntilLimit(deadline, 0)
}

// RunUntilLimit is RunUntil with a batch bound: at most limit events are
// executed (limit <= 0 means unbounded). It reports whether events at or
// before deadline remain — i.e. whether another batch is needed. Callers use
// it to interleave simulation with host-side work such as context
// cancellation checks; looping until it returns false is exactly
// RunUntil(deadline), including advancing the clock to the deadline once the
// window's events are exhausted.
func (s *Scheduler) RunUntilLimit(deadline time.Duration, limit int) bool {
	s.halted = false
	executed := 0
	for !s.halted && (limit <= 0 || executed < limit) {
		next, ok := s.peek()
		if !ok || next > deadline {
			// The window is done: finish the clock like RunUntil.
			if s.now < deadline {
				s.now = deadline
			}
			return false
		}
		s.Step()
		executed++
	}
	if s.halted {
		return false
	}
	next, ok := s.peek()
	return ok && next <= deadline
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// peek returns the timestamp of the next live event.
func (s *Scheduler) peek() (time.Duration, bool) {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// eventQueue is a binary min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1 // no longer in the heap; guards double-removal in Cancel
	*q = old[:n-1]
	return ev
}
