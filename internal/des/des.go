// Package des is a deterministic discrete-event scheduler: a virtual clock
// and a priority queue of timestamped callbacks. Everything in the WSAN
// simulator — packet receptions, MAC backoffs, mobility-driven maintenance
// probes, failure injection, traffic generation — is an event on this
// queue. Determinism is guaranteed by breaking timestamp ties with a
// monotone sequence number, so runs with the same seed replay identically.
//
// Ordering contract: events execute in strictly ascending (timestamp,
// sequence) order. Same-timestamp events run in insertion order — the
// sequence number is assigned at scheduling time and never reused — so a
// producer that schedules A then B at the same instant always observes A
// before B. This is a load-bearing guarantee: the batched drain
// (drain.go) stages events by popping the heap and commits them in exactly
// that canonical order, and FuzzDESOrdering pins the heap's pop order
// against a reference sort.
//
// The queue is a concrete 4-ary min-heap over pooled event structs rather
// than container/heap over an interface: no per-event boxing, no interface
// method dispatch in the sift loops, and fired or cancelled events return
// to a free list, so the steady-state schedule/fire cycle allocates
// nothing. Execution order is a pure function of (timestamp, sequence) —
// the heap arity, the pooling and the batched drain are invisible to
// replay.
package des

import (
	"fmt"
	"time"
)

// event is a scheduled callback. Events are pooled: when one fires or is
// cancelled it returns to the scheduler's free list and its generation is
// bumped, which invalidates any Handle still pointing at it.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	gen uint32
	idx int32 // position in the heap; -1 when not queued, stagedIdx when staged

	// Batched-drain tagging (drain.go). claims is the event's conflict-
	// domain set, prep its parallel prepare callback with two packed
	// arguments — a shared func value plus scalars, so tagging allocates
	// nothing. prepped records that prep ran under the current batch's read
	// snapshot.
	claims  Claims
	prep    PrepFunc
	p0, p1  int32
	prepped bool
}

// Handle lets a scheduled event be cancelled before it fires. The handle
// captures the event's generation, so a handle kept past its event's firing
// can never cancel the pooled struct's next occupant.
type Handle struct {
	s   *Scheduler
	ev  *event
	gen uint32
}

// Cancel prevents the event from running and removes it from the queue
// immediately (O(log n) via the heap index), so Pending() stays accurate
// and long runs with many cancelled maintenance timers do not retain dead
// events until their timestamps drain. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.s == nil || h.ev == nil || h.ev.gen != h.gen {
		return false
	}
	ev := h.ev
	if ev.idx == stagedIdx {
		// Staged in a drain batch: not in the heap, so it cannot be removed
		// here. Nil the callback instead; the commit loop releases it
		// without firing, exactly like a cancelled heap event.
		if ev.fn == nil {
			return false
		}
		ev.fn = nil
		ev.prep = nil
		h.s.stagedLive--
		return true
	}
	h.s.remove(int(ev.idx))
	h.s.release(ev)
	return true
}

// Scheduler owns the virtual clock and event queue. The zero value is
// ready to use. Scheduler is not safe for concurrent use; the simulator is
// single-threaded by design.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	heap   []*event
	free   []*event
	fired  uint64
	halted bool

	// Batched-drain state (drain.go). workers < 2 selects the classic
	// serial loop; staged holds the current batch (stagedNext is the commit
	// cursor, stagedLive the count of uncommitted, uncancelled entries so
	// Pending stays exact mid-batch); deferred is formation's scratch for
	// passed-over events (always drained back to the heap before a batch
	// prepares); claimed is the reused conflict set; readGen is the
	// InvalidateReads generation the snapshot guard checks.
	workers    int
	staged     []*event
	stagedNext int
	stagedLive int
	deferred   []*event
	claimed    map[Domain]struct{}
	readGen    uint64
	dstats     DrainStats
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued, including events
// staged in an in-flight drain batch but not yet committed — so callbacks
// observing the queue mid-batch see exactly the serial loop's count.
// Cancelled events are removed eagerly, so they never inflate the count.
func (s *Scheduler) Pending() int { return len(s.heap) + s.stagedLive }

// NextAt peeks at the earliest pending event's timestamp without executing
// it, considering both the heap and any in-flight drain batch. ok is false
// when nothing is pending. Fault-injection and conformance tooling use it
// to tell self-rescheduling protocol timers (the queue never drains) apart
// from genuinely outstanding work within a window.
func (s *Scheduler) NextAt() (at time.Duration, ok bool) {
	if len(s.heap) > 0 {
		at, ok = s.heap[0].at, true
	}
	if st, sok := s.stagedPendingAt(); sok && (!ok || st < at) {
		at, ok = st, true
	}
	return at, ok
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is an error — a simulation bug worth failing loudly on.
func (s *Scheduler) At(at time.Duration, fn func()) (Handle, error) {
	if at < s.now {
		return Handle{}, fmt.Errorf("des: schedule at %v before now %v", at, s.now)
	}
	if fn == nil {
		return Handle{}, fmt.Errorf("des: nil event function")
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.push(ev)
	return Handle{s: s, ev: ev, gen: ev.gen}, nil
}

// After schedules fn to run delay after the current time. Negative delays
// are coerced to zero (run "immediately", after already-queued events at
// the same timestamp).
func (s *Scheduler) After(delay time.Duration, fn func()) (Handle, error) {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// Halt stops Run/RunUntil after the current event completes.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := s.heap[0]
	s.remove(0)
	s.now = ev.at
	fn := ev.fn
	// Release before running: fn may schedule new events, and the freshest
	// pool entry is the one most likely to be cache-hot.
	s.release(ev)
	s.fired++
	fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is empty, the
// scheduler is halted, or the next event lies beyond deadline. The clock
// finishes at min(deadline, last event time); if the queue drains early the
// clock is advanced to the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.RunUntilLimit(deadline, 0)
}

// RunUntilLimit is RunUntil with a batch bound: at most limit events are
// executed (limit <= 0 means unbounded). It reports whether events at or
// before deadline remain — i.e. whether another batch is needed. Callers use
// it to interleave simulation with host-side work such as context
// cancellation checks; looping until it returns false is exactly
// RunUntil(deadline), including advancing the clock to the deadline once the
// window's events are exhausted.
//
// With SetDrainParallelism at 2 or more workers it dispatches to the
// batched drain (drain.go), which executes the same events in the same
// canonical order with identical observable results.
func (s *Scheduler) RunUntilLimit(deadline time.Duration, limit int) bool {
	if s.workers >= 2 {
		return s.drainUntilLimit(deadline, limit)
	}
	s.halted = false
	executed := 0
	for !s.halted && (limit <= 0 || executed < limit) {
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			// The window is done: finish the clock like RunUntil.
			if s.now < deadline {
				s.now = deadline
			}
			return false
		}
		s.Step()
		executed++
	}
	if s.halted {
		return false
	}
	return len(s.heap) > 0 && s.heap[0].at <= deadline
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// ---- event pool ----

// alloc takes an event struct from the free list, or mints a new one when
// the pool is dry. The pool never shrinks; its high-water mark is the
// scheduler's peak pending count.
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{idx: -1}
}

// release returns a fired or cancelled event to the pool. Bumping the
// generation invalidates every outstanding Handle to it. Drain tagging is
// cleared here so a recycled struct never carries stale claims into an
// untagged At.
func (s *Scheduler) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.idx = -1
	ev.claims = Claims{}
	ev.prep = nil
	ev.p0, ev.p1 = 0, 0
	ev.prepped = false
	s.free = append(s.free, ev)
}

// ---- concrete 4-ary min-heap on (at, seq) ----
//
// A 4-ary layout halves the tree height of a binary heap; the extra
// sibling comparisons happen on one cache line of *event pointers, which
// is a good trade for the pop-heavy workload of a DES.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property.
func (s *Scheduler) push(ev *event) {
	s.heap = append(s.heap, ev)
	ev.idx = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
}

// remove deletes the event at heap position i.
func (s *Scheduler) remove(i int) {
	n := len(s.heap) - 1
	ev := s.heap[i]
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if i < n {
		s.heap[i] = last
		last.idx = int32(i)
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	ev.idx = -1
}

// siftUp moves the event at i toward the root until its parent is not
// larger.
func (s *Scheduler) siftUp(i int) {
	ev := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(ev, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heap[i].idx = int32(i)
		i = parent
	}
	s.heap[i] = ev
	ev.idx = int32(i)
}

// siftDown moves the event at i toward the leaves until no child is
// smaller, reporting whether it moved.
func (s *Scheduler) siftDown(i int) bool {
	ev := s.heap[i]
	n := len(s.heap)
	moved := false
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !eventLess(s.heap[min], ev) {
			break
		}
		s.heap[i] = s.heap[min]
		s.heap[i].idx = int32(i)
		i = min
		moved = true
	}
	s.heap[i] = ev
	ev.idx = int32(i)
	return moved
}
