package des

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// harness is a miniature producer driving one Scheduler: events carry
// conflict domains, draw commit-time RNG, read a shared "world" counter and
// append to a trace. Prepares write only per-worker and per-domain scratch,
// so the harness exercises exactly the contract real producers follow.
type harness struct {
	s     *Scheduler
	rng   *rand.Rand
	trace []string
	// state is the per-domain committed state prepares may warm.
	state [64]int
	// warm is the per-domain warmed snapshot written by prepares; domain
	// disjointness within a batch makes the writes race-free.
	warm       [64]int
	warmAt     [64]time.Duration
	aliveFlips int
}

func (h *harness) prep(worker int, at time.Duration, claims Claims, a0, a1 int32) {
	// Warm every claimed domain: read committed state, stash a snapshot.
	// Reads are covered by the claims, writes go to claim-owned slots.
	for _, d := range claims {
		if d == 0 {
			continue
		}
		i := int(d % 64)
		h.warm[i] = h.state[i]
		h.warmAt[i] = at
	}
	_ = worker
	_ = a0
	_ = a1
}

// domainClaims builds a Claims set from up to 4 small domain indices
// (offset so index 0 is a usable domain, since Domain 0 means unused).
func domainClaims(ds ...int) Claims {
	var c Claims
	for i, d := range ds {
		if i >= len(c) {
			break
		}
		c[i] = Domain(d + 1)
	}
	return c
}

// schedule one tagged event that mutates its domains and logs a trace line
// with an RNG draw, exactly the decide-at-commit discipline.
func (h *harness) tagged(t *testing.T, at time.Duration, label string, ds ...int) {
	t.Helper()
	claims := domainClaims(ds...)
	_, err := h.s.AtTagged(at, claims, h.prep, int32(len(ds)), -1, func() {
		draw := h.rng.Intn(1000)
		sum := 0
		for _, d := range claims {
			if d == 0 {
				continue
			}
			i := int(d % 64)
			h.state[i]++
			sum += h.state[i]
		}
		h.trace = append(h.trace, fmt.Sprintf("%s@%v draw=%d sum=%d pend=%d", label, h.s.Now(), draw, sum, h.s.Pending()))
	})
	if err != nil {
		t.Fatalf("tagged %s: %v", label, err)
	}
}

// global schedules an untagged event touching every domain.
func (h *harness) global(t *testing.T, at time.Duration, label string) {
	t.Helper()
	_, err := h.s.At(at, func() {
		draw := h.rng.Intn(1000)
		for i := range h.state {
			h.state[i] += 2
		}
		h.s.InvalidateReads()
		h.aliveFlips++
		h.trace = append(h.trace, fmt.Sprintf("%s@%v draw=%d flips=%d", label, h.s.Now(), draw, h.aliveFlips))
	})
	if err != nil {
		t.Fatalf("global %s: %v", label, err)
	}
}

// buildSchedule loads a deterministic mixed workload driven by seed:
// same-timestamp pileups, bounded-lookahead clusters, overlapping and
// disjoint domains, untagged "chaos/recovery" events that invalidate reads
// mid-batch, cancellations, and events scheduling follow-on events.
func buildSchedule(t *testing.T, h *harness, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var handles []Handle
	for i := 0; i < 400; i++ {
		at := time.Duration(rng.Intn(50)) * time.Millisecond
		// Cluster a third of the events inside sub-window offsets so
		// batches span the lookahead, not just exact ties.
		if rng.Intn(3) == 0 {
			at += time.Duration(rng.Intn(1500)) * time.Microsecond
		}
		switch rng.Intn(10) {
		case 0, 1:
			h.global(t, at, fmt.Sprintf("g%d", i))
		case 2:
			// Cancellable tagged event.
			claims := domainClaims(rng.Intn(60), rng.Intn(60))
			label := fmt.Sprintf("c%d", i)
			hd, err := h.s.AtTagged(at, claims, h.prep, 0, -1, func() {
				h.trace = append(h.trace, fmt.Sprintf("%s@%v draw=%d", label, h.s.Now(), h.rng.Intn(1000)))
			})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, hd)
		case 3:
			// Tagged event that schedules an earlier-than-batch-tail
			// follow-on, exercising commit interleaving.
			d0 := rng.Intn(60)
			follow := at + time.Duration(rng.Intn(500))*time.Microsecond
			h.tagged(t, at, fmt.Sprintf("t%d", i), d0)
			h.global(t, follow, fmt.Sprintf("f%d", i))
		default:
			n := 1 + rng.Intn(3)
			ds := make([]int, n)
			for j := range ds {
				ds[j] = rng.Intn(60)
			}
			h.tagged(t, at, fmt.Sprintf("t%d", i), ds...)
		}
	}
	// Cancel a deterministic subset: some up front, some from inside
	// events so the cancel can land while the victim is staged mid-batch.
	for i, hd := range handles {
		switch i % 3 {
		case 0:
			hd.Cancel()
		case 1:
			victim := hd
			if _, err := h.s.At(time.Duration(rng.Intn(50))*time.Millisecond, func() { victim.Cancel() }); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// runSchedule executes a seeded workload at the given drain parallelism and
// returns the trace plus final observable state.
func runSchedule(t *testing.T, seed int64, workers int, drive func(*Scheduler)) ([]string, [64]int, uint64, time.Duration) {
	var s Scheduler
	s.SetDrainParallelism(workers)
	h := &harness{s: &s, rng: rand.New(rand.NewSource(seed * 7))}
	buildSchedule(t, h, seed)
	drive(&s)
	return h.trace, h.state, s.Fired(), s.Now()
}

// drives for runSchedule: a plain window run and a batched-limit loop.
func driveWindow(s *Scheduler) { s.RunUntil(60 * time.Millisecond) }
func driveLimit(s *Scheduler) {
	for s.RunUntilLimit(60*time.Millisecond, 7) {
	}
}

// TestDrainEquivalence is the batched≡serial property test: fuzzed event
// schedules with mixed domains, same-timestamp pileups, mid-batch
// invalidations and staged cancels must produce byte-identical traces,
// state, fired counts and clocks at drain parallelism 1, 2 and 8 — under
// both an unbounded window drive and a small-limit batch drive.
func TestDrainEquivalence(t *testing.T) {
	drives := []struct {
		name string
		fn   func(*Scheduler)
	}{{"window", driveWindow}, {"limit", driveLimit}}
	for _, drive := range drives {
		drive := drive
		t.Run(drive.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				refTrace, refState, refFired, refNow := runSchedule(t, seed, 1, drive.fn)
				for _, workers := range []int{2, 8} {
					trace, state, fired, now := runSchedule(t, seed, workers, drive.fn)
					if fired != refFired {
						t.Fatalf("seed %d workers %d: fired %d, want %d", seed, workers, fired, refFired)
					}
					if now != refNow {
						t.Fatalf("seed %d workers %d: clock %v, want %v", seed, workers, now, refNow)
					}
					if state != refState {
						t.Fatalf("seed %d workers %d: state diverged", seed, workers)
					}
					if len(trace) != len(refTrace) {
						t.Fatalf("seed %d workers %d: trace length %d, want %d", seed, workers, len(trace), len(refTrace))
					}
					for i := range trace {
						if trace[i] != refTrace[i] {
							t.Fatalf("seed %d workers %d: trace[%d] = %q, want %q", seed, workers, i, trace[i], refTrace[i])
						}
					}
				}
			}
		})
	}
}

// TestDrainHaltEquivalence checks a Halt fired from inside a batch leaves
// the scheduler in exactly the serial state: same clock, same pending set,
// and an identical continuation when resumed.
func TestDrainHaltEquivalence(t *testing.T) {
	build := func(workers int) (*Scheduler, *[]string) {
		var s Scheduler
		s.SetDrainParallelism(workers)
		h := &harness{s: &s, rng: rand.New(rand.NewSource(11))}
		var log []string
		prep := h.prep
		for i := 0; i < 20; i++ {
			i := i
			at := time.Duration(i/5) * time.Millisecond // pileups of 5
			if _, err := s.AtTagged(at, domainClaims(i), prep, 0, -1, func() {
				log = append(log, fmt.Sprintf("e%d@%v", i, s.Now()))
				if i == 7 {
					s.Halt()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		return &s, &log
	}
	ref, refLog := build(1)
	ref.RunUntil(time.Second)
	refHaltLen, refHaltPend, refHaltNow := len(*refLog), ref.Pending(), ref.Now()
	ref.RunUntil(time.Second)

	for _, workers := range []int{2, 8} {
		s, log := build(workers)
		s.RunUntil(time.Second)
		if len(*log) != refHaltLen || s.Pending() != refHaltPend || s.Now() != refHaltNow {
			t.Fatalf("workers %d halt state: log %d pend %d now %v, want %d %d %v",
				workers, len(*log), s.Pending(), s.Now(), refHaltLen, refHaltPend, refHaltNow)
		}
		s.RunUntil(time.Second)
		if len(*log) != len(*refLog) {
			t.Fatalf("workers %d resumed log %d, want %d", workers, len(*log), len(*refLog))
		}
		for i := range *log {
			if (*log)[i] != (*refLog)[i] {
				t.Fatalf("workers %d log[%d] = %q, want %q", workers, i, (*log)[i], (*refLog)[i])
			}
		}
	}
}

// TestDrainStagedCancel pins the staged-cancel semantics directly: an event
// cancelled while staged in a batch never fires, is not counted as fired,
// and double-cancel of a staged event reports not-pending.
func TestDrainStagedCancel(t *testing.T) {
	var s Scheduler
	s.SetDrainParallelism(2)
	prep := func(int, time.Duration, Claims, int32, int32) {}
	ran := false
	var victim Handle
	// The canceller is scheduled first (lowest seq), so it commits while
	// the victim sits staged behind it in the same batch.
	if _, err := s.AtTagged(time.Millisecond, domainClaims(1), prep, 0, -1, func() {
		before := s.Pending()
		if !victim.Cancel() {
			t.Error("staged victim should be cancellable")
		}
		if got := s.Pending(); got != before-1 {
			t.Errorf("Pending after staged cancel = %d, want %d", got, before-1)
		}
		if victim.Cancel() {
			t.Error("second staged cancel should report not pending")
		}
	}); err != nil {
		t.Fatal(err)
	}
	var err error
	victim, err = s.AtTagged(time.Millisecond, domainClaims(2), prep, 0, -1, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	for d := 3; d <= 5; d++ {
		if _, err := s.AtTagged(time.Millisecond, domainClaims(d), prep, 0, -1, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(time.Second)
	if ran {
		t.Fatal("victim cancelled while staged still fired")
	}
	if got, want := s.Fired(), uint64(4); got != want {
		t.Fatalf("Fired = %d, want %d (cancelled staged event must not count)", got, want)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0 (staged-cancel accounting leak)", got)
	}
}

// TestDrainReexecOnInvalidation checks the generation-snapshot guard: a
// commit that calls InvalidateReads forces later staged events' prepares to
// re-execute serially, observable via DrainStats.Reexecs.
func TestDrainReexecOnInvalidation(t *testing.T) {
	var s Scheduler
	s.SetDrainParallelism(4)
	prep := func(int, time.Duration, Claims, int32, int32) {}
	for i := 0; i < 8; i++ {
		i := i
		if _, err := s.AtTagged(time.Millisecond, domainClaims(i), prep, 0, -1, func() {
			if i == 0 {
				s.InvalidateReads()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(time.Second)
	st := s.DrainStats()
	if st.Batches == 0 || st.BatchedEvents != 8 {
		t.Fatalf("expected one 8-event batch, got %+v", st)
	}
	if st.Reexecs != 7 {
		t.Fatalf("Reexecs = %d, want 7 (every staged event after the invalidating commit)", st.Reexecs)
	}
}

// TestDrainConflictBreaksBatch checks overlapping claims split batches: the
// conflicting event executes in a later batch, still in canonical order.
func TestDrainConflictDefersEvent(t *testing.T) {
	var s Scheduler
	s.SetDrainParallelism(2)
	prep := func(int, time.Duration, Claims, int32, int32) {}
	var order []int
	add := func(i int, ds ...int) {
		if _, err := s.AtTagged(time.Millisecond, domainClaims(ds...), prep, 0, -1, func() {
			order = append(order, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1)
	add(1, 2)
	add(2, 3)
	add(3, 4)
	add(4, 2, 5) // conflicts with event 1: deferred, commits serially in place
	add(5, 6)
	s.RunUntil(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (canonical order must survive deferral)", i, got, i)
		}
	}
	// Formation passes over the conflicting event and keeps collecting, so
	// the five disjoint events prepare as one batch and the conflicting one
	// commits serially between its neighbors via the interleave path.
	st := s.DrainStats()
	if st.Batches != 1 || st.BatchedEvents != 5 {
		t.Fatalf("expected one batch of the 5 disjoint events, got %+v", st)
	}
	if st.SerialEvents != 1 {
		t.Fatalf("expected the conflicting event to commit serially, got %+v", st)
	}
}

// TestDrainSerialZeroAlloc is the satellite guard: with DrainParallelism 1
// the drain machinery must cost nothing — the schedule/fire churn through
// AtTagged stays 0 allocs/op, identical to plain At.
func TestDrainSerialZeroAlloc(t *testing.T) {
	var s Scheduler
	s.SetDrainParallelism(1)
	prep := func(int, time.Duration, Claims, int32, int32) {}
	fn := func() {}
	claims := domainClaims(1, 2)
	// Warm the pool and the heap slice.
	for i := 0; i < 256; i++ {
		if _, err := s.AtTagged(time.Duration(i)*time.Microsecond, claims, prep, 1, 2, fn); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.AtTagged(s.Now()+time.Duration(i%7)*time.Microsecond, claims, prep, 1, 2, fn); err != nil {
			t.Fatal(err)
		}
		s.RunUntilLimit(s.Now()+10*time.Microsecond, 4)
		i++
	})
	if allocs != 0 {
		t.Fatalf("serial tagged drain allocates %.1f objects per op, want 0", allocs)
	}
}

// TestDrainPendingNextAtMidBatch checks the queue-introspection surface
// stays exact while a batch is in flight: an event observing the scheduler
// mid-commit sees the same Pending count and NextAt as the serial run.
func TestDrainPendingNextAtMidBatch(t *testing.T) {
	type obs struct {
		pend int
		at   time.Duration
		ok   bool
	}
	run := func(workers int) []obs {
		var s Scheduler
		s.SetDrainParallelism(workers)
		prep := func(int, time.Duration, Claims, int32, int32) {}
		var seen []obs
		for i := 0; i < 6; i++ {
			if _, err := s.AtTagged(time.Millisecond, domainClaims(i), prep, 0, -1, func() {
				at, ok := s.NextAt()
				seen = append(seen, obs{pend: s.Pending(), at: at, ok: ok})
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.At(2*time.Millisecond, func() {}); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(time.Second)
		return seen
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers %d: %d observations, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers %d obs[%d] = %+v, want %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// FuzzDESOrdering pins the heap's pop order against a reference sort: for
// any fuzzed schedule, events pop in strictly ascending (timestamp,
// sequence) order and same-timestamp events preserve insertion order. The
// batched drain's canonical commit order is built on exactly this
// guarantee.
func FuzzDESOrdering(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(3))
	f.Add([]byte{255, 1, 255, 1, 128, 7, 9}, uint8(5))
	f.Fuzz(func(t *testing.T, ats []byte, cancelMask uint8) {
		if len(ats) > 256 {
			ats = ats[:256]
		}
		var s Scheduler
		type rec struct {
			at  time.Duration
			seq int
		}
		var want []rec
		var got []rec
		var handles []Handle
		for i, b := range ats {
			i, at := i, time.Duration(b)*time.Millisecond
			h, err := s.At(at, func() { got = append(got, rec{at: at, seq: i}) })
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
			want = append(want, rec{at: at, seq: i})
		}
		// Cancel a mask-selected subset to fuzz heap removals too.
		cancelled := make(map[int]bool)
		for i := range handles {
			if cancelMask&(1<<(i%8)) != 0 && i%3 == 0 {
				cancelled[i] = true
				handles[i].Cancel()
			}
		}
		// Reference: stable sort by timestamp keeps insertion (seq) order
		// within ties.
		kept := want[:0]
		for _, r := range want {
			if !cancelled[r.seq] {
				kept = append(kept, r)
			}
		}
		for i := 1; i < len(kept); i++ {
			for j := i; j > 0 && kept[j].at < kept[j-1].at; j-- {
				kept[j], kept[j-1] = kept[j-1], kept[j]
			}
		}
		s.Run()
		if len(got) != len(kept) {
			t.Fatalf("popped %d events, want %d", len(got), len(kept))
		}
		for i := range kept {
			if got[i] != kept[i] {
				t.Fatalf("pop[%d] = %+v, want %+v (heap order must match the reference sort)", i, got[i], kept[i])
			}
		}
	})
}
