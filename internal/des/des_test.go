package des

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	mustAt := func(at time.Duration, fn func()) {
		t.Helper()
		if _, err := s.At(at, fn); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(3*time.Second, func() { got = append(got, 3) })
	mustAt(1*time.Second, func() { got = append(got, 1) })
	mustAt(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", s.Fired())
	}
}

func TestSchedulerFIFOAtSameTimestamp(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(time.Second, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-timestamp events out of FIFO order: %v", got)
	}
}

func TestSchedulePastFails(t *testing.T) {
	var s Scheduler
	if _, err := s.At(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, err := s.At(500*time.Millisecond, func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
	if _, err := s.At(time.Second, func() {}); err != nil {
		t.Fatalf("scheduling at exactly now should succeed: %v", err)
	}
}

func TestNilEventFails(t *testing.T) {
	var s Scheduler
	if _, err := s.At(0, nil); err == nil {
		t.Fatal("nil event should fail")
	}
}

func TestAfterNegativeDelayCoerced(t *testing.T) {
	var s Scheduler
	ran := false
	if _, err := s.After(-time.Second, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	ran := false
	h, err := s.After(time.Second, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report pending")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report not pending")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", s.Fired())
	}
}

func TestCancelAfterFire(t *testing.T) {
	var s Scheduler
	h, err := s.After(0, func() {})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if h.Cancel() {
		t.Fatal("cancelling a fired event should report not pending")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var s Scheduler
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			if _, err := s.After(time.Second, recurse); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	if _, err := s.After(time.Second, recurse); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var fired []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		at := at
		if _, err := s.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want deadline 3s", s.Now())
	}
	if s.Pending() == 0 {
		t.Fatal("event beyond deadline should still be pending")
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %v after second run", fired)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s (advanced to deadline)", s.Now())
	}
}

func TestHalt(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (halted)", count)
	}
	// Run resumes after a halt.
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resume", count)
	}
}

func TestStepOnEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var s Scheduler
		rng := rand.New(rand.NewSource(seed))
		var log []time.Duration
		var spawn func()
		spawn = func() {
			log = append(log, s.Now())
			if len(log) < 200 {
				delay := time.Duration(rng.Intn(1000)) * time.Millisecond
				if _, err := s.After(delay, spawn); err != nil {
					t.Fatalf("spawn: %v", err)
				}
				if rng.Intn(3) == 0 {
					if _, err := s.After(delay/2, func() { log = append(log, s.Now()) }); err != nil {
						t.Fatalf("spawn extra: %v", err)
					}
				}
			}
		}
		if _, err := s.After(0, spawn); err != nil {
			t.Fatal(err)
		}
		s.Run()
		return log
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManyEventsStress(t *testing.T) {
	var s Scheduler
	rng := rand.New(rand.NewSource(5))
	const n = 50000
	fired := 0
	var last time.Duration
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(time.Hour)))
		if _, err := s.At(at, func() {
			if s.Now() < last {
				t.Error("clock went backwards")
			}
			last = s.Now()
			fired++
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if fired != n {
		t.Fatalf("fired = %d, want %d", fired, n)
	}
}

// TestCancelRemovesFromQueue checks that Cancel removes the event from the
// heap immediately: Pending() drops right away instead of retaining dead
// events until their timestamps drain.
func TestCancelRemovesFromQueue(t *testing.T) {
	var s Scheduler
	handles := make([]Handle, 0, 100)
	for i := 0; i < 100; i++ {
		h, err := s.At(time.Duration(i+1)*time.Second, func() {})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", s.Pending())
	}
	// Cancel a mix of head, middle and tail events.
	for _, i := range []int{0, 1, 13, 50, 98, 99} {
		if !handles[i].Cancel() {
			t.Fatalf("Cancel(%d) reported not pending", i)
		}
	}
	if s.Pending() != 94 {
		t.Fatalf("Pending after cancels = %d, want 94", s.Pending())
	}
	// Double cancel stays a no-op and does not disturb the queue.
	if handles[50].Cancel() {
		t.Fatal("second Cancel should report not pending")
	}
	if s.Pending() != 94 {
		t.Fatalf("Pending after double cancel = %d, want 94", s.Pending())
	}
	s.Run()
	if s.Fired() != 94 {
		t.Fatalf("Fired = %d, want 94", s.Fired())
	}
	if s.Now() != 98*time.Second {
		t.Fatalf("Now = %v, want 98s (last live event)", s.Now())
	}
}

// TestCancelPreservesOrdering cancels interleaved events and checks the
// survivors still fire in (timestamp, seq) order.
func TestCancelPreservesOrdering(t *testing.T) {
	var s Scheduler
	rng := rand.New(rand.NewSource(42))
	type rec struct {
		at  time.Duration
		seq int
	}
	var fired []rec
	var handles []Handle
	var want []rec
	for i := 0; i < 500; i++ {
		i := i
		at := time.Duration(rng.Intn(50)) * time.Second
		h, err := s.At(at, func() { fired = append(fired, rec{at: at, seq: i}) })
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		want = append(want, rec{at: at, seq: i})
	}
	cancelled := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx := rng.Intn(len(handles))
		if !cancelled[idx] {
			cancelled[idx] = true
			handles[idx].Cancel()
		}
	}
	kept := want[:0]
	for _, r := range want {
		if !cancelled[r.seq] {
			kept = append(kept, r)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].at < kept[j].at })
	s.Run()
	if len(fired) != len(kept) {
		t.Fatalf("fired %d events, want %d", len(fired), len(kept))
	}
	for i := range kept {
		if fired[i] != kept[i] {
			t.Fatalf("event %d = %+v, want %+v", i, fired[i], kept[i])
		}
	}
}

// TestCancelDuringRun cancels a pending event from inside an earlier event.
func TestCancelDuringRun(t *testing.T) {
	var s Scheduler
	ran := false
	victim, err := s.At(2*time.Second, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(time.Second, func() {
		if !victim.Cancel() {
			t.Error("victim should still be pending")
		}
		if s.Pending() != 0 {
			t.Errorf("Pending inside event = %d, want 0", s.Pending())
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

// TestRunUntilLimitBatches drives a window in bounded batches and checks
// the loop is exactly equivalent to one RunUntil call.
func TestRunUntilLimitBatches(t *testing.T) {
	var batched, straight Scheduler
	load := func(s *Scheduler) *[]time.Duration {
		var fired []time.Duration
		for i := 1; i <= 10; i++ {
			at := time.Duration(i) * time.Second
			if _, err := s.At(at, func() { fired = append(fired, s.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		return &fired
	}
	bf := load(&batched)
	sf := load(&straight)

	batches := 0
	for batched.RunUntilLimit(7*time.Second, 3) {
		batches++
	}
	batches++
	straight.RunUntil(7 * time.Second)

	if batches != 3 { // 3 + 3 + 1 events
		t.Fatalf("batches = %d, want 3", batches)
	}
	if len(*bf) != len(*sf) || len(*bf) != 7 {
		t.Fatalf("fired %d batched vs %d straight, want 7", len(*bf), len(*sf))
	}
	if batched.Now() != straight.Now() || batched.Now() != 7*time.Second {
		t.Fatalf("clocks: batched %v, straight %v, want 7s", batched.Now(), straight.Now())
	}
	if batched.Pending() != 3 || straight.Pending() != 3 {
		t.Fatalf("pending: batched %d, straight %d, want 3", batched.Pending(), straight.Pending())
	}
}

// TestRunUntilLimitMidBatchClock checks the clock is not prematurely
// advanced to the deadline while events remain in the window.
func TestRunUntilLimitMidBatchClock(t *testing.T) {
	var s Scheduler
	for i := 1; i <= 4; i++ {
		at := time.Duration(i) * time.Second
		if _, err := s.At(at, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if more := s.RunUntilLimit(10*time.Second, 2); !more {
		t.Fatal("events remain but RunUntilLimit reported done")
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("mid-batch clock = %v, want 2s", s.Now())
	}
	if more := s.RunUntilLimit(10*time.Second, 0); more {
		t.Fatal("unbounded batch should finish the window")
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("final clock = %v, want 10s", s.Now())
	}
}

// TestRunUntilLimitHalt checks Halt inside a batch stops it without
// advancing the clock to the deadline, like RunUntil.
func TestRunUntilLimitHalt(t *testing.T) {
	var s Scheduler
	if _, err := s.At(time.Second, func() { s.Halt() }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(2*time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	if more := s.RunUntilLimit(5*time.Second, 0); more {
		t.Fatal("halted batch reported more work")
	}
	if s.Now() != time.Second {
		t.Fatalf("halted clock = %v, want 1s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

// TestStaleHandleCannotCancelRecycledEvent pins the pool-safety guarantee:
// after an event fires, its struct returns to the free list and may back a
// brand-new event. A handle kept from the fired event must not cancel the
// recycled struct's new occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	var s Scheduler
	stale, err := s.After(0, func() {})
	if err != nil {
		t.Fatal(err)
	}
	s.Run() // fires and releases the event struct

	ran := false
	fresh, err := s.After(time.Second, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if stale.ev != fresh.ev {
		t.Skip("pool did not recycle the struct; nothing to guard against")
	}
	if stale.Cancel() {
		t.Fatal("stale handle cancelled the recycled event")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled event did not run")
	}
}

// TestEventPoolReuse checks the free list actually recycles: a long
// schedule/fire churn keeps the live event population bounded by the peak
// pending count instead of growing with the number of events.
func TestEventPoolReuse(t *testing.T) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < 1000; i++ {
		if _, err := s.After(time.Duration(i)*time.Millisecond, fn); err != nil {
			t.Fatal(err)
		}
		if s.Pending() > 8 {
			if !s.Step() {
				t.Fatal("Step with pending events")
			}
		}
	}
	s.Run()
	if got := len(s.free); got > 16 {
		t.Fatalf("free list grew to %d structs; churn is not recycling", got)
	}
	if s.Fired() != 1000 {
		t.Fatalf("Fired = %d, want 1000", s.Fired())
	}
}

// TestSchedulerChurnAllocFree is the pooled-event allocation guard: a
// steady-state schedule/cancel/fire mix must allocate nothing once the pool
// and heap have warmed up.
func TestSchedulerChurnAllocFree(t *testing.T) {
	var s Scheduler
	fn := func() {}
	// Warm the pool and the heap slice.
	for i := 0; i < 256; i++ {
		if _, err := s.After(time.Duration(i)*time.Microsecond, fn); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		keep, err := s.After(time.Duration(i%7)*time.Microsecond, fn)
		if err != nil {
			t.Fatal(err)
		}
		drop, err := s.After(time.Duration(i%13)*time.Microsecond, fn)
		if err != nil {
			t.Fatal(err)
		}
		drop.Cancel()
		_ = keep
		s.Step()
		i++
	})
	s.Run()
	if allocs != 0 {
		t.Fatalf("schedule/cancel/fire churn allocates %.1f objects per op, want 0", allocs)
	}
}
