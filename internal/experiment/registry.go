package experiment

import (
	"context"
	"fmt"
)

// FigureKind classifies a registry entry.
type FigureKind int

const (
	// KindPaper marks Figures 4–11, the paper's own evaluation.
	KindPaper FigureKind = iota + 1
	// KindAblation marks the REFER component ablations (A1, A2).
	KindAblation
	// KindExtension marks the future-work extension studies (E1–E3).
	KindExtension
	// KindScale marks the network-growth study (S1–S3): multi-thousand-node
	// deployments comparing indexed vs linear-scan cell lookups. Excluded
	// from the default and -extras CLI selections — the 10,000-node points
	// dwarf every other figure's cost — and run explicitly via -fig.
	KindScale
	// KindRecovery marks the self-healing study (R1–R2): actuator-kill
	// campaigns comparing REFER with the recovery protocols against REFER
	// without and the baselines. Excluded from the default and -extras CLI
	// selections like KindScale — run explicitly via -fig or the
	// recovery-conformance CI job.
	KindRecovery
)

// String returns the kind's lower-case name.
func (k FigureKind) String() string {
	switch k {
	case KindPaper:
		return "paper"
	case KindAblation:
		return "ablation"
	case KindExtension:
		return "extension"
	case KindScale:
		return "scale"
	case KindRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("FigureKind(%d)", int(k))
	}
}

// FigureSpec is one registered figure: a stable ID, a display title, a
// kind, and a context-aware builder. Build stamps the figure's ID and
// Title, labels progress events with the ID, and honors ctx cancellation.
type FigureSpec struct {
	ID    string
	Title string
	Kind  FigureKind
	Build func(ctx context.Context, o Options) (Figure, error)
}

// registry lists every figure in presentation order: the paper's Figures
// 4–11, then ablations, then extensions.
var registry = []FigureSpec{
	newSpec("4", "QoS throughput vs node mobility", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := mobilitySweep(ctx, o, func(r Result) float64 { return r.Throughput })
			fig.YLabel = "throughput (pkt/s)"
			return fig, err
		}),
	newSpec("5", "Energy consumed in communication vs node mobility", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := mobilitySweep(ctx, o, func(r Result) float64 { return r.CommEnergy })
			fig.YLabel = "energy (J)"
			return fig, err
		}),
	newSpec("6", "Transmission delay vs number of faulty nodes", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := faultSweep(ctx, o, func(r Result) float64 { return r.MeanQoSDelay.Seconds() * 1000 })
			fig.YLabel = "delay (ms)"
			return fig, err
		}),
	newSpec("7", "QoS throughput vs number of faulty nodes", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := faultSweep(ctx, o, func(r Result) float64 { return r.Throughput })
			fig.YLabel = "throughput (pkt/s)"
			return fig, err
		}),
	newSpec("8", "Transmission delay vs network size", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := scaleSweep(ctx, o, func(r Result) float64 { return r.MeanQoSDelay.Seconds() * 1000 })
			fig.YLabel = "delay (ms)"
			return fig, err
		}),
	newSpec("9", "Energy consumed in communication vs network size", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := scaleSweep(ctx, o, func(r Result) float64 { return r.CommEnergy })
			fig.YLabel = "energy (J)"
			return fig, err
		}),
	newSpec("10", "Energy consumed in topology construction vs network size", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := scaleSweep(ctx, o, func(r Result) float64 { return r.ConstructionEnergy })
			fig.YLabel = "energy (J)"
			return fig, err
		}),
	newSpec("11", "Total energy consumption vs network size", KindPaper,
		func(ctx context.Context, o Options) (Figure, error) {
			fig, err := scaleSweep(ctx, o, func(r Result) float64 { return r.TotalEnergy() })
			fig.YLabel = "energy (J)"
			return fig, err
		}),
	newSpec("A1", "Ablation: Theorem 3.8 failover under faults", KindAblation, ablationFailover),
	newSpec("A2", "Ablation: topology maintenance under mobility", KindAblation, ablationMaintenance),
	newSpec("A3", "Ablation: delivery ratio vs churn fault rate", KindAblation, ablationChurn),
	newSpec("E1", "Extension: QoS throughput in sparse deployments", KindExtension, extSparse),
	newSpec("E2", "Extension: delivery ratio in sparse deployments", KindExtension, extSparseDeliveryRatio),
	newSpec("E3", "Extension: K(2,3) vs K(3,3) cells under faults", KindExtension, extDegree),
	newSpec("L1", "Lifetime: time to first node death vs battery budget", KindExtension, lifetimeFirstDeath),
	newSpec("L2", "Lifetime: time to half nodes dead vs battery budget", KindExtension, lifetimeHalfDead),
	newSpec("L3", "Lifetime: delivery ratio over network lifetime vs battery budget", KindExtension, lifetimeDelivery),
	newSpec("S1", "Scale: delivery ratio vs network growth", KindScale, growthDelivery),
	newSpec("S2", "Scale: transmission delay vs network growth", KindScale, growthDelay),
	newSpec("S3", "Scale: membership-maintenance cost vs network growth", KindScale, growthMaintainCost),
	newSpec("S4", "Scale: delivery ratio at the 100k-sensor frontier (sharded runs)", KindScale, frontierDelivery),
	newSpec("S5", "Scale: delivery ratio under heavy mobile traffic (batched-drain runs)", KindScale, drainDelivery),
	newSpec("R1", "Recovery: delivery ratio vs fault intensity", KindRecovery, recoveryDelivery),
	newSpec("R2", "Recovery: repair latency vs fault intensity", KindRecovery, recoveryLatency),
}

// newSpec wraps a builder so the spec's ID labels progress events and the
// returned figure carries the registered ID and title.
func newSpec(id, title string, kind FigureKind, build func(context.Context, Options) (Figure, error)) FigureSpec {
	return FigureSpec{
		ID:    id,
		Title: title,
		Kind:  kind,
		Build: func(ctx context.Context, o Options) (Figure, error) {
			o.figureID = id
			fig, err := build(ctx, o)
			fig.ID, fig.Title = id, title
			return fig, err
		},
	}
}

// Figures returns every registered figure in presentation order. The slice
// is a copy; callers may reorder or filter it freely.
func Figures() []FigureSpec {
	return append([]FigureSpec(nil), registry...)
}

// FigureByID looks up a registered figure by its ID (e.g. "7", "A1", "E2").
func FigureByID(id string) (FigureSpec, bool) {
	for _, spec := range registry {
		if spec.ID == id {
			return spec, true
		}
	}
	return FigureSpec{}, false
}

// buildByID runs a registered figure's builder; the exported FigN-style
// wrappers delegate here.
func buildByID(ctx context.Context, id string, o Options) (Figure, error) {
	spec, ok := FigureByID(id)
	if !ok {
		return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
	}
	return spec.Build(ctx, o)
}

// Fig4 reproduces Figure 4: QoS throughput vs node mobility.
func Fig4(o Options) (Figure, error) { return buildByID(context.Background(), "4", o) }

// Fig5 reproduces Figure 5: communication energy vs node mobility.
func Fig5(o Options) (Figure, error) { return buildByID(context.Background(), "5", o) }

// Fig6 reproduces Figure 6: transmission delay vs number of faulty nodes.
func Fig6(o Options) (Figure, error) { return buildByID(context.Background(), "6", o) }

// Fig7 reproduces Figure 7: QoS throughput vs number of faulty nodes.
func Fig7(o Options) (Figure, error) { return buildByID(context.Background(), "7", o) }

// Fig8 reproduces Figure 8: transmission delay vs network size.
func Fig8(o Options) (Figure, error) { return buildByID(context.Background(), "8", o) }

// Fig9 reproduces Figure 9: communication energy vs network size.
func Fig9(o Options) (Figure, error) { return buildByID(context.Background(), "9", o) }

// Fig10 reproduces Figure 10: topology-construction energy vs network size.
func Fig10(o Options) (Figure, error) { return buildByID(context.Background(), "10", o) }

// Fig11 reproduces Figure 11: total (construction + communication) energy
// vs network size.
func Fig11(o Options) (Figure, error) { return buildByID(context.Background(), "11", o) }
