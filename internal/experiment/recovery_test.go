package experiment

import (
	"testing"
	"time"

	"refer/internal/chaos"
	"refer/internal/recovery"
	"refer/internal/scenario"
)

// latticeCampaign is the recovery test deployment: the R-family 3×3 lattice
// with permanent actuator kills under churn.
func latticeCampaign(seed int64, killAt ...int) RunConfig {
	sched := &chaos.Schedule{
		Seed: seed,
		Events: []chaos.Event{{
			Kind:     chaos.Churn,
			At:       chaos.Duration(10 * time.Second),
			Rate:     0.1,
			Duration: chaos.Duration(24 * time.Hour),
			Downtime: chaos.Duration(30 * time.Second),
		}},
	}
	for i, at := range killAt {
		sched.Events = append(sched.Events, chaos.Event{
			Kind: chaos.ActuatorKill,
			At:   chaos.Duration(time.Duration(at) * time.Second),
			Node: 1 + i,
		})
	}
	return RunConfig{
		System:   SystemREFERRecovery,
		Scenario: scenario.Params{Seed: seed, Sensors: 400, MaxSpeed: 1, ActuatorGrid: 3},
		Warmup:   20 * time.Second,
		Duration: 100 * time.Second,
		Chaos:    sched,
	}
}

// TestRecoveryKillDuringMaintenance kills actuators at exact multiples of
// the maintenance cadence, so the kill, the maintenance round and the
// recovery sweep all contend at the same virtual timestamps — the DES tie
// order must be deterministic and the whole run must replay byte-identically.
func TestRecoveryKillDuringMaintenance(t *testing.T) {
	// 30 s and 45 s are multiples of both the 5 s maintenance tick and the
	// 5 s recovery check interval.
	cfg := latticeCampaign(3, 30, 45)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("replay diverged:\n first = %+v\nsecond = %+v", r1, r2)
	}
	if r1.Stats.Recovery.Repairs() == 0 {
		t.Fatalf("no repairs fired: %+v", r1.Stats.Recovery)
	}
}

// TestRecoveryDisabledAddsNothing pins the zero-cost contract of a zero
// spec: a plain REFER run under the same campaign attaches no manager, so
// its recovery counters are exactly zero and the run replays byte-identically
// (the golden figure CSVs extend this to pre-change baselines).
func TestRecoveryDisabledAddsNothing(t *testing.T) {
	cfg := latticeCampaign(3, 30, 45)
	cfg.System = SystemREFER
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Recovery != (recovery.Stats{}) {
		t.Fatalf("recovery-disabled run accumulated recovery stats: %+v", r1.Stats.Recovery)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("replay diverged:\n first = %+v\nsecond = %+v", r1, r2)
	}
}

// TestRecoverySpecEnablesPlainREFER checks the two spellings of "REFER with
// recovery" agree: SystemREFER plus an enabled spec runs the same protocols
// the REFER/recovery system arm enables implicitly.
func TestRecoverySpecEnablesPlainREFER(t *testing.T) {
	implicit := latticeCampaign(3, 30, 45)
	explicit := implicit
	explicit.System = SystemREFER
	explicit.Recovery = recovery.Spec{Enabled: true}
	ri, err := Run(implicit)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Stats.Recovery.Repairs() == 0 {
		t.Fatalf("implicit arm repaired nothing: %+v", ri.Stats.Recovery)
	}
	if ri.Stats.Recovery != re.Stats.Recovery {
		t.Fatalf("recovery stats diverged between spellings:\nimplicit = %+v\nexplicit = %+v",
			ri.Stats.Recovery, re.Stats.Recovery)
	}
}

// TestRecoveryParallelismInvariance pins the R figures' shard-count
// equivalence: the R1 and R2 CSVs are byte-identical whether each run's
// maintenance rounds execute sequentially or across four shards.
func TestRecoveryParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep comparison")
	}
	base := Options{
		Seeds:    []int64{1},
		Warmup:   20 * time.Second,
		Duration: 80 * time.Second,
	}
	for _, id := range []string{"R1", "R2"} {
		seq, par := base, base
		seq.RunParallelism = 1
		par.RunParallelism = 4
		figSeq, err := buildByID(t.Context(), id, seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		figPar, err := buildByID(t.Context(), id, par)
		if err != nil {
			t.Fatalf("%s sharded: %v", id, err)
		}
		if figSeq.CSV() != figPar.CSV() {
			t.Errorf("figure %s CSV differs between RunParallelism 1 and 4:\n--- rp=1\n%s\n--- rp=4\n%s",
				id, figSeq.CSV(), figPar.CSV())
		}
	}
}
