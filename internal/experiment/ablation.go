package experiment

import "refer/internal/scenario"

// AblationFailover quantifies Theorem 3.8's contribution: REFER with and
// without the alternate-path failover, swept over the faulty-node counts of
// Figure 7, measuring QoS throughput. Without failover a relay drops the
// packet the moment its greedy shortest successor fails.
func AblationFailover(o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoFailover}
	fig, err := sweep(o, faultXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario:   scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1},
			FaultCount: int(x),
		}
	}, func(r Result) float64 { return r.Throughput })
	fig.ID, fig.Title = "A1", "Ablation: Theorem 3.8 failover under faults"
	fig.XLabel, fig.YLabel = "faulty nodes", "throughput (pkt/s)"
	return fig, err
}

// AblationMaintenance quantifies the awake/wait/sleep replacement scheme:
// REFER with and without topology maintenance, swept over node mobility,
// measuring QoS throughput. Without maintenance the embedding decays as
// overlay sensors drift out of their cells.
func AblationMaintenance(o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoMaintenance}
	fig, err := sweep(o, mobilityXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 2 * x}}
	}, func(r Result) float64 { return r.Throughput })
	fig.ID, fig.Title = "A2", "Ablation: topology maintenance under mobility"
	fig.XLabel, fig.YLabel = "mean speed (m/s)", "throughput (pkt/s)"
	return fig, err
}
