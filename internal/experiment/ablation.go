package experiment

import (
	"context"
	"time"

	"refer/internal/chaos"
	"refer/internal/scenario"
)

// AblationFailover quantifies Theorem 3.8's contribution: REFER with and
// without the alternate-path failover, swept over the faulty-node counts of
// Figure 7, measuring QoS throughput. Without failover a relay drops the
// packet the moment its greedy shortest successor fails.
func AblationFailover(o Options) (Figure, error) {
	return buildByID(context.Background(), "A1", o)
}

func ablationFailover(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoFailover}
	fig, err := faultSweep(ctx, o, func(r Result) float64 { return r.Throughput })
	fig.YLabel = "throughput (pkt/s)"
	return fig, err
}

// AblationMaintenance quantifies the awake/wait/sleep replacement scheme:
// REFER with and without topology maintenance, swept over node mobility,
// measuring QoS throughput. Without maintenance the embedding decays as
// overlay sensors drift out of their cells.
func AblationMaintenance(o Options) (Figure, error) {
	return buildByID(context.Background(), "A2", o)
}

func ablationMaintenance(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoMaintenance}
	fig, err := mobilitySweep(ctx, o, func(r Result) float64 { return r.Throughput })
	fig.YLabel = "throughput (pkt/s)"
	return fig, err
}

// churnXs are the churn crash rates in crashes per second; at the paper's
// 200-sensor deployment the top rate cycles the whole population roughly
// every 17 virtual minutes.
var churnXs = []float64{0.02, 0.05, 0.1, 0.2}

// AblationChurn compares all four systems' delivery ratio under sustained
// Poisson churn (random sensors crashing at the swept rate, each down for
// 30 s), driven by the deterministic fault-injection subsystem instead of
// the paper's rotated faulty-node sets.
func AblationChurn(o Options) (Figure, error) {
	return buildByID(context.Background(), "A3", o)
}

func ablationChurn(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(ctx, o, churnXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario: scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1},
			// One churn window spanning any run length; the injector's
			// stream is seeded per run so repetitions vary the victims.
			Chaos: &chaos.Schedule{
				Seed: seed,
				Events: []chaos.Event{{
					Kind:     chaos.Churn,
					Rate:     x,
					Duration: chaos.Duration(24 * time.Hour),
					Downtime: chaos.Duration(30 * time.Second),
				}},
			},
		}
	}, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.XLabel = "churn rate (crashes/s)"
	fig.YLabel = "delivery ratio"
	return fig, err
}
