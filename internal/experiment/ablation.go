package experiment

import "context"

// AblationFailover quantifies Theorem 3.8's contribution: REFER with and
// without the alternate-path failover, swept over the faulty-node counts of
// Figure 7, measuring QoS throughput. Without failover a relay drops the
// packet the moment its greedy shortest successor fails.
func AblationFailover(o Options) (Figure, error) {
	return buildByID(context.Background(), "A1", o)
}

func ablationFailover(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoFailover}
	fig, err := faultSweep(ctx, o, func(r Result) float64 { return r.Throughput })
	fig.YLabel = "throughput (pkt/s)"
	return fig, err
}

// AblationMaintenance quantifies the awake/wait/sleep replacement scheme:
// REFER with and without topology maintenance, swept over node mobility,
// measuring QoS throughput. Without maintenance the embedding decays as
// overlay sensors drift out of their cells.
func AblationMaintenance(o Options) (Figure, error) {
	return buildByID(context.Background(), "A2", o)
}

func ablationMaintenance(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERNoMaintenance}
	fig, err := mobilitySweep(ctx, o, func(r Result) float64 { return r.Throughput })
	fig.YLabel = "throughput (pkt/s)"
	return fig, err
}
