package experiment

import (
	"context"
	"testing"
	"time"
)

// TestParallelismInvariance pins the determinism contract the refer-simd
// server and the -parallel flag rely on: every registered figure produces
// byte-identical CSV output whether its sweep runs one simulation at a time
// or four concurrently. Each run is seeded independently and accumulation
// is keyed by (system, x, seed), so completion order must not leak into the
// output. The network-growth studies (KindScale) are excluded only for
// cost — their 10,000-sensor points dwarf the rest of the suite — not
// because they are exempt from the contract.
func TestParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are not -short tests")
	}
	base := Options{
		Seeds:            []int64{1},
		Warmup:           2 * time.Second,
		Duration:         5 * time.Second,
		Sensors:          140,
		PacketsPerSource: 2,
	}
	for _, spec := range Figures() {
		if spec.Kind == KindScale {
			continue
		}
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			seq, par := base, base
			seq.Parallelism = 1
			par.Parallelism = 4
			f1, err := spec.Build(context.Background(), seq)
			if err != nil {
				t.Fatalf("parallelism 1: %v", err)
			}
			f4, err := spec.Build(context.Background(), par)
			if err != nil {
				t.Fatalf("parallelism 4: %v", err)
			}
			if f1.CSV() != f4.CSV() {
				t.Errorf("figure %s CSV differs between parallelism 1 and 4:\n%s\nvs\n%s",
					spec.ID, f1.CSV(), f4.CSV())
			}
		})
	}
}
