package experiment

import (
	"context"
	"testing"
	"time"

	"refer/internal/chaos"
	"refer/internal/scenario"
)

// replayConfig is a figure-scale run: fast mobility, fault rotation and
// enough traffic that any hidden source of nondeterminism (map iteration
// order feeding an argmax or ordering lazy draws from a shared RNG,
// shared-state mutation by a cached route slice) has many chances to
// surface. The speed/duration match the sweep point where a shared
// waypoint RNG made the Kautz overlay's results flip between two outcomes
// depending on map iteration order; gentler configs masked it.
func replayConfig(system string) RunConfig {
	return RunConfig{
		System: system,
		Scenario: scenario.Params{
			Seed:     7,
			Sensors:  150,
			MaxSpeed: 2.5,
		},
		Warmup:     100 * time.Second,
		Duration:   300 * time.Second,
		FaultCount: 4,
	}
}

// testReplay runs the same seeded configuration twice and requires bitwise
// identical results. Result is a comparable struct, so != compares every
// counter, energy ledger and latency moment at once; only the host-timing
// fields of the stats block are stripped, since wall clock is the one thing
// a replay legitimately changes.
func testReplay(t *testing.T, system string) {
	t.Helper()
	cfg := replayConfig(system)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("replay diverged for %s:\n first = %+v\nsecond = %+v", system, r1, r2)
	}
	if r1.Created == 0 {
		t.Fatalf("degenerate run for %s: no packets created", system)
	}
}

// TestReplayDeterminismREFER pins the determinism guarantee: a RunConfig
// fully determines the Result. Run under -race -count=2 in CI so both the
// in-process route-table sharing and cross-process stability are exercised.
func TestReplayDeterminismREFER(t *testing.T) {
	testReplay(t, SystemREFER)
}

// TestReplayDeterminismKautzOverlay covers the baseline that shares the
// route table and the nearestMember selection fixed for map-order
// nondeterminism.
func TestReplayDeterminismKautzOverlay(t *testing.T) {
	testReplay(t, SystemKautzOverlay)
}

// chaosReplaySchedule is a campaign covering every fault kind, sized for
// the replayConfig window: recoveries, churn arrivals, loss windows and
// brownouts all land inside the run, so replay equality covers the full
// injector state machine, not just the easy events.
func chaosReplaySchedule() *chaos.Schedule {
	sec := func(s int) chaos.Duration { return chaos.Duration(time.Duration(s) * time.Second) }
	return &chaos.Schedule{
		Seed: 4242,
		Events: []chaos.Event{
			{Kind: chaos.Crash, At: sec(30), Node: 17, Duration: sec(60)},
			{Kind: chaos.Churn, At: sec(50), Rate: 0.2, Duration: sec(200), Downtime: sec(20)},
			{Kind: chaos.Blackout, At: sec(120), X: 250, Y: 250, Radius: 120, Duration: sec(40)},
			{Kind: chaos.ActuatorKill, At: sec(150), Node: 3, Duration: sec(50)},
			{Kind: chaos.Brownout, At: sec(220), Fraction: 0.3},
			{Kind: chaos.LinkLoss, At: sec(250), Probability: 0.1, Duration: sec(60)},
		},
	}
}

// testReplayChaos is testReplay with the full fault campaign attached: the
// same seeded configuration plus the same chaos schedule must replay to a
// bitwise identical Result, and the campaign must actually have fired.
func testReplayChaos(t *testing.T, system string) {
	t.Helper()
	cfg := replayConfig(system)
	cfg.Chaos = chaosReplaySchedule()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("chaos replay diverged for %s:\n first = %+v\nsecond = %+v", system, r1, r2)
	}
	ch := r1.Stats.Chaos
	if ch.Crashes == 0 || ch.ChurnCrashes == 0 || ch.Recoveries == 0 || ch.LossWindows == 0 {
		t.Fatalf("degenerate campaign for %s: %+v", system, ch)
	}
	if r1.Created == 0 {
		t.Fatalf("degenerate run for %s: no packets created", system)
	}
}

// TestReplayChaosREFER pins chaos-run determinism for REFER: the injector
// draws only from its own stream, so schedule plus seed fully determine
// the Result. Run under -race -count=2 in CI like the other Replay tests.
func TestReplayChaosREFER(t *testing.T) { testReplayChaos(t, SystemREFER) }

// TestReplayChaosDaTree covers the DaTree baseline's repair path under
// the same campaign.
func TestReplayChaosDaTree(t *testing.T) { testReplayChaos(t, SystemDaTree) }

// TestReplayChaosDDEAR covers D-DEAR's head re-attachment and backbone
// rebuilds under the same campaign.
func TestReplayChaosDDEAR(t *testing.T) { testReplayChaos(t, SystemDDEAR) }

// TestReplayChaosKautzOverlay covers the Kautz overlay's link rebuild
// machinery under the same campaign.
func TestReplayChaosKautzOverlay(t *testing.T) { testReplayChaos(t, SystemKautzOverlay) }

// TestReplayChaosFigureCSV pins sweep-level chaos determinism at the
// artifact boundary: two builds of the churn ablation figure (quick
// options) must render byte-identical CSV.
func TestReplayChaosFigureCSV(t *testing.T) {
	build := func() string {
		fig, err := AblationChurn(Options{
			Seeds:    []int64{1},
			Warmup:   50 * time.Second,
			Duration: 100 * time.Second,
			Sensors:  100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fig.CSV()
	}
	first, second := build(), build()
	if first != second {
		t.Fatalf("A3 CSV diverged:\n first:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("empty CSV")
	}
}

// TestChaosOffMatchesBaseline pins the no-chaos guarantee at the run
// level: a RunConfig with a nil schedule must produce exactly the Result
// of the identical config built before the chaos subsystem existed — the
// injector and the loss hook are unreachable when disabled. (The paper
// figures' byte-identity is additionally checked against committed
// baselines out of band; this is the in-tree guard.)
func TestChaosOffMatchesBaseline(t *testing.T) {
	cfg := replayConfig(SystemREFER)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Chaos != (chaos.Stats{}) || plain.Stats.LostSends != 0 || plain.Stats.EnergyDrained != 0 {
		t.Fatalf("chaos counters nonzero without a schedule: %+v", plain.Stats)
	}
	// An empty schedule attaches the machinery but applies nothing; the
	// measured Result must not move.
	cfg.Chaos = &chaos.Schedule{Seed: 1}
	attached, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain.Stats = plain.Stats.StripWallClock()
	attached.Stats = attached.Stats.StripWallClock()
	if plain != attached {
		t.Fatalf("empty chaos schedule perturbed the run:\n plain = %+v\nattached = %+v", plain, attached)
	}
}

// TestReplayTableMatchesDirect checks the route table is a pure cache:
// the same seeded run with and without the table yields identical results
// apart from the System label and the stats block's cache counters (hits
// become misses) and host timing.
func TestReplayTableMatchesDirect(t *testing.T) {
	cached, err := Run(replayConfig(SystemREFER))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(replayConfig(SystemREFERDirectRoutes))
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.RouteTableHits == 0 || direct.Stats.RouteTableMisses == 0 {
		t.Fatalf("cache counters not exercised: cached hits=%d direct misses=%d",
			cached.Stats.RouteTableHits, direct.Stats.RouteTableMisses)
	}
	if cached.Stats.RouteTableHits+cached.Stats.RouteTableMisses !=
		direct.Stats.RouteTableHits+direct.Stats.RouteTableMisses {
		t.Fatalf("route-set lookups differ: cached %d+%d vs direct %d+%d",
			cached.Stats.RouteTableHits, cached.Stats.RouteTableMisses,
			direct.Stats.RouteTableHits, direct.Stats.RouteTableMisses)
	}
	direct.System = cached.System
	cached.Stats = cached.Stats.StripWallClock()
	direct.Stats = direct.Stats.StripWallClock()
	direct.Stats.RouteTableHits, direct.Stats.RouteTableMisses =
		cached.Stats.RouteTableHits, cached.Stats.RouteTableMisses
	if cached != direct {
		t.Fatalf("route table changed routing behavior:\ncached = %+v\ndirect = %+v", cached, direct)
	}
}

// TestReplayLinearScanMatchesIndexed checks the cell index is a pure
// accelerator: the same seeded run with and without it yields identical
// results apart from the System label, the MaintainChecks work counter
// (fewer predicate evaluations is the index's entire effect) and host
// timing. Uses a lattice deployment so the index has many cells to get
// wrong.
func TestReplayLinearScanMatchesIndexed(t *testing.T) {
	cfg := RunConfig{
		Scenario: scenario.Params{
			Seed:         7,
			Sensors:      900,
			MaxSpeed:     2,
			ActuatorGrid: 4,
		},
		Warmup:     50 * time.Second,
		Duration:   150 * time.Second,
		FaultCount: 4,
	}
	cfg.System = SystemREFER
	indexed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.System = SystemREFERLinearScan
	linear, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Stats.MaintainChecks >= linear.Stats.MaintainChecks {
		t.Fatalf("index did not reduce maintenance work: %d vs %d checks",
			indexed.Stats.MaintainChecks, linear.Stats.MaintainChecks)
	}
	if indexed.Stats.Rehomes != linear.Stats.Rehomes {
		t.Fatalf("Rehomes diverged: %d vs %d", indexed.Stats.Rehomes, linear.Stats.Rehomes)
	}
	linear.System = indexed.System
	indexed.Stats = indexed.Stats.StripWallClock()
	linear.Stats = linear.Stats.StripWallClock()
	linear.Stats.MaintainChecks = indexed.Stats.MaintainChecks
	if indexed != linear {
		t.Fatalf("cell index changed behavior:\nindexed = %+v\nlinear  = %+v", indexed, linear)
	}
}
