package experiment

import (
	"testing"
	"time"

	"refer/internal/scenario"
)

// replayConfig is a figure-scale run: fast mobility, fault rotation and
// enough traffic that any hidden source of nondeterminism (map iteration
// order feeding an argmax or ordering lazy draws from a shared RNG,
// shared-state mutation by a cached route slice) has many chances to
// surface. The speed/duration match the sweep point where a shared
// waypoint RNG made the Kautz overlay's results flip between two outcomes
// depending on map iteration order; gentler configs masked it.
func replayConfig(system string) RunConfig {
	return RunConfig{
		System: system,
		Scenario: scenario.Params{
			Seed:     7,
			Sensors:  150,
			MaxSpeed: 2.5,
		},
		Warmup:     100 * time.Second,
		Duration:   300 * time.Second,
		FaultCount: 4,
	}
}

// testReplay runs the same seeded configuration twice and requires bitwise
// identical results. Result is a comparable struct, so != compares every
// counter, energy ledger and latency moment at once; only the host-timing
// fields of the stats block are stripped, since wall clock is the one thing
// a replay legitimately changes.
func testReplay(t *testing.T, system string) {
	t.Helper()
	cfg := replayConfig(system)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("replay diverged for %s:\n first = %+v\nsecond = %+v", system, r1, r2)
	}
	if r1.Created == 0 {
		t.Fatalf("degenerate run for %s: no packets created", system)
	}
}

// TestReplayDeterminismREFER pins the determinism guarantee: a RunConfig
// fully determines the Result. Run under -race -count=2 in CI so both the
// in-process route-table sharing and cross-process stability are exercised.
func TestReplayDeterminismREFER(t *testing.T) {
	testReplay(t, SystemREFER)
}

// TestReplayDeterminismKautzOverlay covers the baseline that shares the
// route table and the nearestMember selection fixed for map-order
// nondeterminism.
func TestReplayDeterminismKautzOverlay(t *testing.T) {
	testReplay(t, SystemKautzOverlay)
}

// TestReplayTableMatchesDirect checks the route table is a pure cache:
// the same seeded run with and without the table yields identical results
// apart from the System label and the stats block's cache counters (hits
// become misses) and host timing.
func TestReplayTableMatchesDirect(t *testing.T) {
	cached, err := Run(replayConfig(SystemREFER))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(replayConfig(SystemREFERDirectRoutes))
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.RouteTableHits == 0 || direct.Stats.RouteTableMisses == 0 {
		t.Fatalf("cache counters not exercised: cached hits=%d direct misses=%d",
			cached.Stats.RouteTableHits, direct.Stats.RouteTableMisses)
	}
	if cached.Stats.RouteTableHits+cached.Stats.RouteTableMisses !=
		direct.Stats.RouteTableHits+direct.Stats.RouteTableMisses {
		t.Fatalf("route-set lookups differ: cached %d+%d vs direct %d+%d",
			cached.Stats.RouteTableHits, cached.Stats.RouteTableMisses,
			direct.Stats.RouteTableHits, direct.Stats.RouteTableMisses)
	}
	direct.System = cached.System
	cached.Stats = cached.Stats.StripWallClock()
	direct.Stats = direct.Stats.StripWallClock()
	direct.Stats.RouteTableHits, direct.Stats.RouteTableMisses =
		cached.Stats.RouteTableHits, cached.Stats.RouteTableMisses
	if cached != direct {
		t.Fatalf("route table changed routing behavior:\ncached = %+v\ndirect = %+v", cached, direct)
	}
}
