package experiment

import (
	"testing"
	"time"
)

func TestExtSparseHandlesInfeasibleDeployments(t *testing.T) {
	o := Options{
		Seeds:    []int64{1, 2},
		Warmup:   15 * time.Second,
		Duration: 40 * time.Second,
		Systems:  []string{SystemREFER},
	}
	fig, err := ExtSparse(o)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "E1" || len(fig.Series) != 1 {
		t.Fatalf("figure: %+v", fig)
	}
	series := fig.Series[0]
	if len(series.Points) != len(sparseXs) {
		t.Fatalf("points = %d", len(series.Points))
	}
	// The densest point must outperform the sparsest: REFER needs density
	// (Prop. 3.2) and 60-sensor deployments often cannot form cells.
	first, last := series.Points[0], series.Points[len(series.Points)-1]
	if last.Y.Mean <= first.Y.Mean {
		t.Fatalf("throughput should grow with density: %f at %g vs %f at %g",
			first.Y.Mean, first.X, last.Y.Mean, last.X)
	}
}

func TestExtSparseDeliveryRatioBounded(t *testing.T) {
	o := Options{
		Seeds:    []int64{3},
		Warmup:   15 * time.Second,
		Duration: 40 * time.Second,
		Systems:  []string{SystemDaTree},
	}
	fig, err := ExtSparseDeliveryRatio(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y.Mean < 0 || p.Y.Mean > 1 {
				t.Fatalf("delivery ratio %f out of [0,1] at x=%g", p.Y.Mean, p.X)
			}
		}
	}
}

func TestExtInterCell(t *testing.T) {
	res, err := ExtInterCell(Options{Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells → 12 ordered pairs per seed.
	if res.Attempts != 24 {
		t.Fatalf("attempts = %d, want 24", res.Attempts)
	}
	if res.Delivered < res.Attempts*8/10 {
		t.Fatalf("delivered %d/%d inter-cell packets", res.Delivered, res.Attempts)
	}
	if res.MeanDelay <= 0 || res.MeanDelay > 500*time.Millisecond {
		t.Fatalf("mean delay = %v", res.MeanDelay)
	}
	if res.MeanCellHops < 1 {
		t.Fatalf("mean cell hops = %f", res.MeanCellHops)
	}
}
