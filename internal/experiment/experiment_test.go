package experiment

import (
	"testing"
	"time"

	"refer/internal/scenario"
)

// quickCfg is a short run configuration for tests.
func quickCfg(system string, seed int64) RunConfig {
	return RunConfig{
		System:   system,
		Scenario: scenario.Params{Seed: seed, Sensors: 150, MaxSpeed: 1},
		Warmup:   20 * time.Second,
		Duration: 60 * time.Second,
	}
}

func TestRunEachSystem(t *testing.T) {
	for _, sys := range AllSystems() {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			t.Parallel()
			res, err := Run(quickCfg(sys, 1))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.System != sys {
				t.Errorf("System = %q", res.System)
			}
			if res.Created == 0 || res.Delivered == 0 {
				t.Fatalf("counters: %+v", res)
			}
			if res.Delivered > res.Created {
				t.Fatalf("delivered %d > created %d", res.Delivered, res.Created)
			}
			if res.QoS > res.Delivered {
				t.Fatalf("qos %d > delivered %d", res.QoS, res.Delivered)
			}
			if res.ConstructionEnergy <= 0 || res.CommEnergy <= 0 {
				t.Fatalf("energy: %+v", res)
			}
			if res.MeanQoSDelay <= 0 && res.QoS > 0 {
				t.Fatal("QoS deliveries but zero delay")
			}
		})
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if _, err := Run(quickCfg("bogus", 1)); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	for _, sys := range AllSystems() {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			t.Parallel()
			a, err := Run(quickCfg(sys, 7))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(quickCfg(sys, 7))
			if err != nil {
				t.Fatal(err)
			}
			a.Stats = a.Stats.StripWallClock()
			b.Stats = b.Stats.StripWallClock()
			if a != b {
				t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
			}
		})
	}
	a, err := Run(quickCfg(SystemREFER, 7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(quickCfg(SystemREFER, 8))
	if err != nil {
		t.Fatal(err)
	}
	a.Stats, c.Stats = a.Stats.StripWallClock(), c.Stats.StripWallClock()
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestRunFaultInjectionHurts(t *testing.T) {
	clean, err := Run(quickCfg(SystemREFERNoFailover, 3))
	if err != nil {
		t.Fatal(err)
	}
	faulty := quickCfg(SystemREFERNoFailover, 3)
	faulty.FaultCount = 20
	hurt, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if hurt.Delivered >= clean.Delivered {
		t.Fatalf("20 faults did not reduce deliveries: %d vs %d", hurt.Delivered, clean.Delivered)
	}
}

func TestFailoverAblationShowsBenefit(t *testing.T) {
	// Static deployment so faults are the only drop source; aggregate the
	// delivery ratio over seeds to suppress per-run traffic randomness.
	ratio := func(system string) float64 {
		created, delivered := 0, 0
		for seed := int64(1); seed <= 3; seed++ {
			cfg := RunConfig{
				System:     system,
				Scenario:   scenario.Params{Seed: seed, Sensors: 150},
				Warmup:     20 * time.Second,
				Duration:   120 * time.Second,
				FaultCount: 20,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			created += res.Created
			delivered += res.Delivered
		}
		return float64(delivered) / float64(created)
	}
	full := ratio(SystemREFER)
	ablated := ratio(SystemREFERNoFailover)
	if full <= ablated {
		t.Fatalf("failover shows no benefit under faults: full %.3f vs ablated %.3f", full, ablated)
	}
	t.Logf("delivery ratio: full %.3f vs no-failover %.3f", full, ablated)
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.System != SystemREFER || c.Warmup != 100*time.Second || c.Duration != 1000*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Sources != 5 || c.BurstInterval != 10*time.Second {
		t.Fatalf("traffic defaults: %+v", c)
	}
	if c.QoSDeadline != 600*time.Millisecond {
		t.Fatalf("deadline default: %v", c.QoSDeadline)
	}
}

func TestSweepStructure(t *testing.T) {
	o := Options{
		Seeds:    []int64{1, 2},
		Warmup:   15 * time.Second,
		Duration: 30 * time.Second,
		Systems:  []string{SystemREFER},
		Sensors:  120,
	}
	fig, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	series := fig.Series[0]
	if series.System != SystemREFER {
		t.Fatalf("series system = %q", series.System)
	}
	if len(series.Points) != 5 {
		t.Fatalf("points = %d", len(series.Points))
	}
	for i, p := range series.Points {
		if len(p.Y.Samples) != 2 {
			t.Fatalf("point %d has %d samples, want 2", i, len(p.Y.Samples))
		}
	}
	if _, ok := fig.SeriesFor(SystemREFER); !ok {
		t.Fatal("SeriesFor missed the series")
	}
	if _, ok := fig.SeriesFor("nope"); ok {
		t.Fatal("SeriesFor invented a series")
	}
	if len(series.Means()) != 5 {
		t.Fatal("Means length")
	}
	if fig.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	o := Options{
		Seeds:    []int64{1},
		Warmup:   10 * time.Second,
		Duration: 10 * time.Second,
		Systems:  []string{"not-a-system"},
	}
	if _, err := Fig4(o); err == nil {
		t.Fatal("sweep swallowed the error")
	}
}

func TestAblationFigures(t *testing.T) {
	o := Options{
		Seeds:    []int64{1},
		Warmup:   15 * time.Second,
		Duration: 40 * time.Second,
		Sensors:  120,
	}
	fig, err := AblationFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || fig.ID != "A1" {
		t.Fatalf("ablation figure: %+v", fig)
	}
	fig2, err := AblationMaintenance(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Series) != 2 || fig2.ID != "A2" {
		t.Fatalf("ablation figure: %+v", fig2)
	}
}

func TestResultTotalEnergy(t *testing.T) {
	r := Result{CommEnergy: 3, ConstructionEnergy: 4}
	if r.TotalEnergy() != 7 {
		t.Fatal("TotalEnergy")
	}
}

func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("8 figure sweeps")
	}
	figs, err := AllFigures(Options{
		Seeds:    []int64{1},
		Warmup:   15 * time.Second,
		Duration: 30 * time.Second,
		Systems:  []string{SystemREFER, SystemDDEAR},
		Sensors:  120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("figures = %d", len(figs))
	}
	wantIDs := []string{"4", "5", "6", "7", "8", "9", "10", "11"}
	for i, fig := range figs {
		if fig.ID != wantIDs[i] {
			t.Fatalf("figure %d has ID %s", i, fig.ID)
		}
		if len(fig.Series) != 2 {
			t.Fatalf("figure %s series = %d", fig.ID, len(fig.Series))
		}
	}
}

func TestExtDegreeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("400-sensor runs")
	}
	fig, err := ExtDegree(Options{
		Seeds:    []int64{1},
		Warmup:   20 * time.Second,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "E3" || len(fig.Series) != 2 {
		t.Fatalf("figure: %+v", fig)
	}
	if _, ok := fig.SeriesFor(SystemREFERK33); !ok {
		t.Fatal("missing K(3,3) series")
	}
}
