package experiment

import (
	"context"
	"math"
	"time"

	"refer/internal/scenario"
)

// The network-growth study (Figures S1–S3) pushes REFER far past the
// paper's 400-sensor evaluation ceiling: thousands of sensors over an
// actuator lattice whose triangulation yields hundreds of cells, comparing
// the indexed cell lookups against the pre-index linear scans
// (SystemREFERLinearScan). The two arms produce identical delivery and
// delay curves by construction — the index preserves every tie-break — so
// S1/S2 double as a conformance check, while S3 plots the maintenance work
// (cell predicate evaluations) the index removes.

// growthXs are the growth-study network sizes (sensor population).
var growthXs = []float64{1000, 2000, 5000, 10000}

// frontierXs extend the growth study toward the 100,000-sensor frontier that
// intra-run sharding (RunConfig.RunParallelism) makes tractable: a run this
// size is one giant single-seed simulation, so sweep-level parallelism can
// no longer soak the machine and the per-round shards have to.
var frontierXs = []float64{20000, 50000, 100000}

// gridFor returns the actuator lattice side n for a sensor population,
// keeping the density near the paper's 200 sensors / 4 cells: n×n actuators
// triangulate into 2(n-1)² cells, so sensors-per-cell stays around 50.
func gridFor(sensors float64) int {
	return int(math.Round(math.Sqrt(sensors/100))) + 1
}

// growthSweep runs the S1–S3 grid: REFER vs its linear-scan ablation over
// growing deployments at 1 m/s. The full-length paper windows would make a
// 10,000-node sweep take hours, so unset windows default to a short
// measured slice (the growth curves compare configurations, not absolute
// paper numbers).
func growthSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	if len(o.Systems) == 0 {
		o.Systems = []string{SystemREFER, SystemREFERLinearScan}
	}
	if o.Warmup == 0 {
		o.Warmup = 20 * time.Second
	}
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	o = o.withDefaults()
	fig, err := sweep(ctx, o, growthXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario: scenario.Params{
				Seed:         seed,
				Sensors:      int(x),
				MaxSpeed:     1,
				ActuatorGrid: gridFor(x),
			},
		}
	}, pick)
	fig.XLabel = "sensors"
	return fig, err
}

// frontierSweep runs the S4 grid: REFER alone (the linear-scan ablation is
// quadratic in this regime and the two arms were already shown identical on
// S1/S2) over frontier-scale deployments, maintenance sharded across the
// machine unless the caller pinned a RunParallelism.
func frontierSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	if len(o.Systems) == 0 {
		o.Systems = []string{SystemREFER}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1} // one seed: points are single giant runs
	}
	if o.Warmup == 0 {
		o.Warmup = 20 * time.Second
	}
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	if o.RunParallelism == 0 {
		o.RunParallelism = defaultParallelism()
	}
	o = o.withDefaults()
	fig, err := sweep(ctx, o, frontierXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario: scenario.Params{
				Seed:         seed,
				Sensors:      int(x),
				MaxSpeed:     1,
				ActuatorGrid: gridFor(x),
			},
		}
	}, pick)
	fig.XLabel = "sensors"
	return fig, err
}

// drainXs are the heavy-traffic frontier sizes of the S5 study: large
// enough that per-hop neighbor-cache rebuilds dominate the run, small
// enough to finish without the 100k point's hours.
var drainXs = []float64{20000, 50000}

// drainSweep runs the S5 grid: REFER alone over mobile heavy-traffic
// frontier deployments — the workload the DES batched drain accelerates.
// MaxSpeed 5 (the paper's cap) keeps neighbor caches churning so per-hop
// rebuilds dominate, and the dense burst traffic piles conflict-free radio
// completions into drainable windows. The plotted delivery ratio is
// byte-identical at any DrainParallelism (the knob is excluded from
// OptionsKey); whole-run wall-clock scaling across worker counts is
// measured by refer-bench's drain_parallel macro instead.
func drainSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	if len(o.Systems) == 0 {
		o.Systems = []string{SystemREFER}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1} // one seed: points are single giant runs
	}
	if o.Warmup == 0 {
		o.Warmup = 20 * time.Second
	}
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	if o.DrainParallelism == 0 {
		o.DrainParallelism = defaultParallelism()
	}
	o = o.withDefaults()
	fig, err := sweep(ctx, o, drainXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			// A burst every second from 64 sources — an order of magnitude
			// above the paper's offered load — so forwarding, not protocol
			// upkeep, is the run's dominant cost.
			Sources:       64,
			BurstInterval: time.Second,
			Scenario: scenario.Params{
				Seed:         seed,
				Sensors:      int(x),
				MaxSpeed:     5,
				ActuatorGrid: gridFor(x),
			},
		}
	}, pick)
	fig.XLabel = "sensors"
	return fig, err
}

// FigS1 builds the growth-study delivery-ratio figure.
func FigS1(o Options) (Figure, error) { return buildByID(context.Background(), "S1", o) }

// FigS2 builds the growth-study mean-delay figure.
func FigS2(o Options) (Figure, error) { return buildByID(context.Background(), "S2", o) }

// FigS3 builds the growth-study maintenance-cost figure.
func FigS3(o Options) (Figure, error) { return buildByID(context.Background(), "S3", o) }

// FigS4 builds the growth-frontier delivery figure (20k–100k sensors).
func FigS4(o Options) (Figure, error) { return buildByID(context.Background(), "S4", o) }

// FigS5 builds the heavy-traffic frontier delivery figure (batched-drain
// workload).
func FigS5(o Options) (Figure, error) { return buildByID(context.Background(), "S5", o) }

func growthDelivery(ctx context.Context, o Options) (Figure, error) {
	fig, err := growthSweep(ctx, o, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.YLabel = "delivery ratio"
	return fig, err
}

func growthDelay(ctx context.Context, o Options) (Figure, error) {
	fig, err := growthSweep(ctx, o, func(r Result) float64 { return r.MeanDelay.Seconds() * 1000 })
	fig.YLabel = "delay (ms)"
	return fig, err
}

func growthMaintainCost(ctx context.Context, o Options) (Figure, error) {
	fig, err := growthSweep(ctx, o, func(r Result) float64 { return float64(r.Stats.MaintainChecks) })
	fig.YLabel = "cell predicate evaluations"
	return fig, err
}

func frontierDelivery(ctx context.Context, o Options) (Figure, error) {
	fig, err := frontierSweep(ctx, o, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.YLabel = "delivery ratio"
	return fig, err
}

func drainDelivery(ctx context.Context, o Options) (Figure, error) {
	fig, err := drainSweep(ctx, o, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.YLabel = "delivery ratio"
	return fig, err
}
