package experiment

import (
	"strings"
	"testing"

	"refer/internal/metrics"
)

func testFigure() Figure {
	return Figure{
		ID: "4", Title: "t", XLabel: "speed", YLabel: "pkt/s",
		Series: []Series{
			{System: "REFER", Points: []Point{
				{X: 0.5, Y: metrics.Summarize([]float64{3, 3})},
				{X: 1.0, Y: metrics.Summarize([]float64{2, 4})},
			}},
			{System: "DaTree", Points: []Point{
				{X: 0.5, Y: metrics.Summarize([]float64{2, 2})},
				{X: 1.0, Y: metrics.Summarize([]float64{1, 1})},
			}},
		},
	}
}

func TestFigureTable(t *testing.T) {
	table := testFigure().Table()
	for _, want := range []string{"Figure 4", "REFER", "DaTree", "0.5", "3.000"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	empty := Figure{ID: "9"}
	if got := empty.Table(); !strings.Contains(got, "Figure 9") {
		t.Fatalf("empty table: %q", got)
	}
}

func TestFigureCSV(t *testing.T) {
	csv := testFigure().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "speed,REFER mean,REFER ci95,DaTree mean,DaTree ci95" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.5,3,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"has,comma", `"has,comma"`},
		{`has"quote`, `"has""quote"`},
		{"has\nnewline", "\"has\nnewline\""},
	}
	for _, tt := range tests {
		if got := csvEscape(tt.in); got != tt.want {
			t.Errorf("csvEscape(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Seeds) != 5 || len(o.Systems) != 4 || o.Sensors != 200 {
		t.Fatalf("defaults: %+v", o)
	}
}
