package experiment

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestGoldenFigureCSV regenerates every committed figure CSV with the CI
// quick-pass options (1 seed, 100 s warmup, 300 s window — exactly what
// `refer-bench -seeds 1 -extras -csv` runs) and byte-compares against
// testdata/figures/. Under the default paper cost model the energy redesign
// must not move a single byte; the L-family baselines pin the radio-model
// lifetime curves the same way. The full pass takes several minutes, so it
// is gated behind REFER_GOLDEN_CSV=1; CI's scale-regression job performs
// the same comparison on every push.
func TestGoldenFigureCSV(t *testing.T) {
	if os.Getenv("REFER_GOLDEN_CSV") == "" {
		t.Skip("set REFER_GOLDEN_CSV=1 to regenerate and compare every committed figure CSV")
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "figures", "fig*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed figure CSVs found")
	}
	opts := Options{
		Seeds:    []int64{1},
		Warmup:   100 * time.Second,
		Duration: 300 * time.Second,
	}
	for _, path := range files {
		id := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "fig"), ".csv")
		spec, ok := FigureByID(id)
		if !ok {
			t.Errorf("%s: no registered figure %q", filepath.Base(path), id)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fig, err := spec.Build(context.Background(), opts)
		if err != nil {
			t.Errorf("fig %s: %v", id, err)
			continue
		}
		if got := fig.CSV(); got != string(want) {
			t.Errorf("fig %s diverged from committed baseline (%d vs %d bytes)",
				id, len(got), len(want))
		}
	}
}
