package experiment

import (
	"context"
	"time"

	"refer/internal/chaos"
	"refer/internal/scenario"
)

// The R figure family evaluates the self-healing recovery subsystem
// (internal/recovery, DESIGN.md §12) under actuator-kill campaigns: the A3
// churn workload plus an escalating set of *permanent* actuator kills —
// structural damage only the recovery protocols can repair. The deployment
// uses a 3×3 actuator lattice (eight cells, nine actuators) so killed
// corners have surviving peers to promote and neighboring cells to merge
// into; the paper's five-actuator layout leaves re-election no slack.

// recoveryXs are the swept churn rates; each point also staggers
// 1 + int(x*10) permanent actuator kills through the first minutes of the
// run, so fault intensity grows along the axis on both tiers at once.
var recoveryXs = churnXs

// recoveryCampaign is the shared fault schedule of the R family: the A3
// churn window plus permanent kills of actuators 1, 2, ... (index 0 — the
// lattice corner — is spared so the deployment never loses its first cell's
// whole corner set at once), staggered 10 s apart from t=20 s.
func recoveryCampaign(x float64, seed int64) *chaos.Schedule {
	s := &chaos.Schedule{
		Seed: seed,
		Events: []chaos.Event{{
			Kind:     chaos.Churn,
			Rate:     x,
			Duration: chaos.Duration(24 * time.Hour),
			Downtime: chaos.Duration(30 * time.Second),
		}},
	}
	kills := 1 + int(x*10)
	for i := 0; i < kills; i++ {
		s.Events = append(s.Events, chaos.Event{
			Kind: chaos.ActuatorKill,
			At:   chaos.Duration(time.Duration(20+10*i) * time.Second),
			Node: 1 + i, // Duration 0: permanent
		})
	}
	return s
}

// recoveryConfig is the per-run config of the R family: the lattice
// deployment under the campaign for fault intensity x. The 3×3 lattice
// field (600 m side, eight cells) covers roughly double the paper's
// four-cell region, so the sweep doubles Options.Sensors to keep per-cell
// sensor density — and with it embedding feasibility — at paper level,
// flooring at 400: below that the corner-to-corner paths of the embedding
// cannot find connected sensor chains and Build fails, so quick passes
// with small Sensors overrides (the parallelism-invariance suites run at
// 140) still get a constructible deployment. The default (2 × 200 = 400)
// sits exactly at the floor, leaving the committed R CSVs unchanged.
func recoveryConfig(o Options) func(x float64, seed int64) RunConfig {
	sensors := 2 * o.Sensors
	if sensors < 400 {
		sensors = 400
	}
	return func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario: scenario.Params{Seed: seed, Sensors: sensors, MaxSpeed: 1, ActuatorGrid: 3},
			Chaos:    recoveryCampaign(x, seed),
		}
	}
}

// FigR1 builds figure R1: delivery ratio vs fault intensity for REFER with
// recovery enabled, REFER without, and the three baselines.
func FigR1(o Options) (Figure, error) { return buildByID(context.Background(), "R1", o) }

// FigR2 builds figure R2: mean detection→repair latency vs fault intensity
// for REFER with recovery enabled.
func FigR2(o Options) (Figure, error) { return buildByID(context.Background(), "R2", o) }

func recoveryDelivery(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	// REFER/recovery leads the series list so the with/without contrast
	// reads straight off adjacent CSV columns.
	o.Systems = []string{SystemREFERRecovery, SystemREFER, SystemDaTree, SystemDDEAR, SystemKautzOverlay}
	fig, err := sweep(ctx, o, recoveryXs, recoveryConfig(o), func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.XLabel = "fault intensity (churn rate, crashes/s; +1+10x permanent actuator kills)"
	fig.YLabel = "delivery ratio"
	return fig, err
}

func recoveryLatency(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFERRecovery}
	fig, err := sweep(ctx, o, recoveryXs, recoveryConfig(o), func(r Result) float64 {
		return r.Stats.Recovery.MeanLatency().Seconds() * 1000
	})
	fig.XLabel = "fault intensity (churn rate, crashes/s; +1+10x permanent actuator kills)"
	fig.YLabel = "mean repair latency (ms)"
	return fig, err
}
