package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"refer/internal/scenario"
)

// TestRunParallelismInvariance pins the intra-run sharding contract
// (shard.go): a run is byte-identical — Result, energy ledgers, every
// deterministic RunStats counter — at every RunParallelism setting. Only
// StripWallClock's host fields (wall clock plus the shard bookkeeping) may
// differ. Run under -race -count=2 by CI's determinism job.
func TestRunParallelismInvariance(t *testing.T) {
	base := RunConfig{
		Scenario: scenario.Params{Seed: 3, Sensors: 300, MaxSpeed: 2},
		Warmup:   2 * time.Second,
		Duration: 8 * time.Second,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.Stats.StripWallClock()
	ref.Stats = RunStats{}
	for _, rp := range []int{1, 4, 8} {
		cfg := base
		cfg.RunParallelism = rp
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("RunParallelism %d: %v", rp, err)
		}
		if rp > 1 && res.Stats.ShardRounds == 0 {
			t.Fatalf("RunParallelism %d: sharded path never ran", rp)
		}
		gotStats := res.Stats.StripWallClock()
		res.Stats = RunStats{}
		if res != ref {
			t.Fatalf("RunParallelism %d: Result diverged:\n%+v\nvs sequential\n%+v", rp, res, ref)
		}
		if gotStats != refStats {
			t.Fatalf("RunParallelism %d: stats diverged:\n%+v\nvs sequential\n%+v", rp, gotStats, refStats)
		}
	}
}

// TestRunParallelismFigureInvariance pins figure-level byte identity: a
// representative paper figure and a shrunken growth point produce identical
// CSVs whether runs shard or not.
func TestRunParallelismFigureInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are not -short tests")
	}
	base := Options{
		Seeds:            []int64{1, 2},
		Warmup:           2 * time.Second,
		Duration:         5 * time.Second,
		Sensors:          140,
		PacketsPerSource: 2,
	}
	for _, id := range []string{"4", "S1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec, ok := FigureByID(id)
			if !ok {
				t.Fatalf("unknown figure %q", id)
			}
			seq, par := base, base
			if id == "S1" { // shrink the growth grid to test scale
				seq.Sensors, par.Sensors = 0, 0
				seq.Seeds, par.Seeds = []int64{1}, []int64{1}
			}
			seq.RunParallelism = 1
			par.RunParallelism = 4
			f1, err := spec.Build(context.Background(), seq)
			if err != nil {
				t.Fatalf("run-parallelism 1: %v", err)
			}
			f4, err := spec.Build(context.Background(), par)
			if err != nil {
				t.Fatalf("run-parallelism 4: %v", err)
			}
			if f1.CSV() != f4.CSV() {
				t.Errorf("figure %s CSV differs between run-parallelism 1 and 4:\n%s\nvs\n%s",
					id, f1.CSV(), f4.CSV())
			}
		})
	}
}

// TestParallelismValidation pins the edge validation: out-of-range
// parallelism knobs are config errors, not silent GOMAXPROCS fallbacks.
func TestParallelismValidation(t *testing.T) {
	quick := Options{Seeds: []int64{1}, Warmup: time.Second, Duration: time.Second,
		Sensors: 120, Systems: []string{SystemREFER}}

	for _, tc := range []struct {
		name string
		o    Options
		want string
	}{
		{"negative-parallelism", func() Options { o := quick; o.Parallelism = -1; return o }(), "Options.Parallelism"},
		{"absurd-parallelism", func() Options { o := quick; o.Parallelism = MaxParallelism + 1; return o }(), "Options.Parallelism"},
		{"negative-run-parallelism", func() Options { o := quick; o.RunParallelism = -3; return o }(), "Options.RunParallelism"},
		{"absurd-run-parallelism", func() Options { o := quick; o.RunParallelism = 1 << 20; return o }(), "Options.RunParallelism"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Fig4(tc.o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %s", err, tc.want)
			}
		})
	}

	for _, tc := range []struct {
		name string
		rp   int
	}{
		{"negative", -1},
		{"absurd", MaxParallelism + 1},
	} {
		t.Run("run-config-"+tc.name, func(t *testing.T) {
			_, err := Run(RunConfig{RunParallelism: tc.rp,
				Warmup: time.Second, Duration: time.Second})
			if err == nil || !strings.Contains(err.Error(), "RunConfig.RunParallelism") {
				t.Fatalf("err = %v, want RunConfig.RunParallelism range error", err)
			}
		})
	}

	// In-range values at the boundary are accepted.
	if err := validParallelism("x", MaxParallelism); err != nil {
		t.Fatalf("MaxParallelism rejected: %v", err)
	}
	if err := validParallelism("x", 0); err != nil {
		t.Fatalf("0 rejected: %v", err)
	}
}

// TestConfigKeyExcludesRunParallelism pins the cache contract: sharded and
// sequential submissions of one config content-address identically.
func TestConfigKeyExcludesRunParallelism(t *testing.T) {
	base := RunConfig{Warmup: time.Second, Duration: time.Second}
	k0, err := ConfigKey(base)
	if err != nil {
		t.Fatal(err)
	}
	shard := base
	shard.RunParallelism = 8
	k8, err := ConfigKey(shard)
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k8 {
		t.Fatalf("ConfigKey differs across RunParallelism: %s vs %s", k0, k8)
	}
}
