package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"refer/internal/core"
	"refer/internal/metrics"
	"refer/internal/scenario"
	"refer/internal/trace"
)

// sparseXs sweeps sensor density downward; the paper's conclusion lists
// sparse WSANs as future work ("we will also investigate the performance
// of REFER in a sparse WSAN").
var sparseXs = []float64{60, 100, 140, 200}

// ExtSparse studies the systems in increasingly sparse deployments: QoS
// throughput vs sensor population at the default mobility. REFER's
// embedding needs roughly a dozen viable sensors per cell (Prop. 3.2's
// density requirement); when a deployment is too sparse to form the cells,
// the system scores zero for that run — the density threshold is the
// finding, not an error.
func ExtSparse(o Options) (Figure, error) {
	return buildByID(context.Background(), "E1", o)
}

func extSparse(ctx context.Context, o Options) (Figure, error) {
	fig, err := sparseSweep(ctx, o, func(r Result) float64 { return r.Throughput })
	fig.XLabel, fig.YLabel = "sensors", "throughput (pkt/s)"
	return fig, err
}

// ExtSparseDeliveryRatio is the same sweep, measured as the fraction of
// created packets that reach an actuator at all (no deadline).
func ExtSparseDeliveryRatio(o Options) (Figure, error) {
	return buildByID(context.Background(), "E2", o)
}

func extSparseDeliveryRatio(ctx context.Context, o Options) (Figure, error) {
	fig, err := sparseSweep(ctx, o, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.XLabel, fig.YLabel = "sensors", "delivery ratio"
	return fig, err
}

// degreeXs sweeps the faulty-node count for the degree study.
var degreeXs = []float64{2, 6, 10, 14, 18}

// ExtDegree studies K(d,3) cells with d beyond the paper's 2 — its other
// stated future work. K(3,3) gives every pair three disjoint paths instead
// of two, so the failover survives heavier fault loads, at the price of a
// larger embedding (33 overlay sensors per cell) and more maintenance.
// The deployment uses 400 sensors so both variants can form cells.
func ExtDegree(o Options) (Figure, error) {
	return buildByID(context.Background(), "E3", o)
}

func extDegree(ctx context.Context, o Options) (Figure, error) {
	o = o.withDefaults()
	o.Systems = []string{SystemREFER, SystemREFERK33}
	fig, err := sweep(ctx, o, degreeXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario:   scenario.Params{Seed: seed, Sensors: 400, MaxSpeed: 1},
			FaultCount: int(x),
		}
	}, func(r Result) float64 { return r.Throughput })
	fig.XLabel, fig.YLabel = "faulty nodes", "throughput (pkt/s)"
	return fig, err
}

// sparseSweep is like sweep but records a zero sample when a system cannot
// construct its topology on a deployment (too sparse to operate). It runs
// sequentially — construction failures are part of the measurement, so the
// sweep never stops early on them — but honors cancellation and reports
// progress like sweep.
func sparseSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	o = o.withDefaults()
	start := time.Now()
	total := len(o.Systems) * len(sparseXs) * len(o.Seeds)
	done := 0
	var stats SweepStats
	var fig Figure
	for _, sys := range o.Systems {
		series := Series{System: sys, Points: make([]Point, 0, len(sparseXs))}
		for _, x := range sparseXs {
			samples := make([]float64, 0, len(o.Seeds))
			for _, seed := range o.Seeds {
				if err := ctx.Err(); err != nil {
					return Figure{}, err
				}
				cfg := RunConfig{
					System:   sys,
					Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5},
					Warmup:   o.Warmup,
					Duration: o.Duration,
				}
				if o.PacketsPerSource > 0 {
					cfg.PacketsPerSource = o.PacketsPerSource
				}
				if o.TraceSample > 0 {
					cfg.Trace = trace.NewRecorder(o.TraceSample)
				}
				res, err := RunContext(ctx, cfg)
				done++
				switch {
				case err == nil:
					samples = append(samples, pick(res))
					stats.accumulate(res.Stats)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					return Figure{}, err
				case strings.Contains(err.Error(), "building"):
					samples = append(samples, 0) // cannot operate this sparse
					err = nil
				default:
					return Figure{}, fmt.Errorf("experiment: %s seed=%d x=%g: %w", sys, seed, x, err)
				}
				if o.Progress != nil {
					o.Progress(ProgressEvent{
						FigureID: o.figureID,
						Done:     done,
						Total:    total,
						System:   sys,
						Seed:     seed,
						X:        x,
						Err:      err,
						Elapsed:  time.Since(start),
					})
				}
			}
			series.Points = append(series.Points, Point{X: x, Y: metrics.Summarize(samples)})
		}
		fig.Series = append(fig.Series, series)
	}
	stats.finish(start)
	fig.Stats = stats
	return fig, nil
}

// InterCellResult summarizes the E4 inter-cell routing study: REFER's DHT
// tier carrying packets between cells (Section III-B-3 describes the
// mechanism; the paper's evaluation only exercises intra-cell traffic).
type InterCellResult struct {
	// Attempts and Delivered count cross-cell SendTo packets.
	Attempts, Delivered int
	// MeanDelay is the mean end-to-end latency of delivered packets.
	MeanDelay time.Duration
	// MeanCellHops is the mean number of cells a packet crossed.
	MeanCellHops float64
}

// ExtInterCell measures REFER's inter-cell routing: from every cell's
// farthest overlay sensor to an overlay node of every other cell, repeated
// per seed. Returns aggregate delivery and latency statistics.
func ExtInterCell(o Options) (InterCellResult, error) {
	o = o.withDefaults()
	var agg InterCellResult
	var totalDelay time.Duration
	var totalCellHops int
	for _, seed := range o.Seeds {
		w := scenario.Build(scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1})
		sys := core.New(w, core.DefaultConfig())
		if err := sys.Build(); err != nil {
			return InterCellResult{}, fmt.Errorf("experiment: inter-cell study: %w", err)
		}
		// Let construction airtime drain.
		w.Sched.RunUntil(10 * time.Second)
		cells := sys.Cells()
		for _, from := range cells {
			for _, to := range cells {
				if from.CID == to.CID {
					continue
				}
				src, okSrc := from.Node("021")
				dst, okDst := to.Node("010")
				if !okSrc || !okDst {
					continue
				}
				agg.Attempts++
				start := w.Now()
				route, _ := sys.DHTRoute(from.CID, to.CID)
				sys.SendTo(src, core.Address{CID: to.CID, KID: "010"}, func(ok bool) {
					if !ok {
						return
					}
					agg.Delivered++
					totalDelay += w.Now() - start
					totalCellHops += len(route) - 1
				})
				w.Sched.RunUntil(w.Now() + 5*time.Second)
				_ = dst
			}
		}
	}
	if agg.Delivered > 0 {
		agg.MeanDelay = totalDelay / time.Duration(agg.Delivered)
		agg.MeanCellHops = float64(totalCellHops) / float64(agg.Delivered)
	}
	return agg, nil
}
