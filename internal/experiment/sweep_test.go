package experiment

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"refer/internal/scenario"
)

// stubSweepRun substitutes run execution for the duration of a test; the
// stub sees the exact per-job RunConfig the sweep built.
func stubSweepRun(t *testing.T, fn func(ctx context.Context, cfg RunConfig) (Result, error)) {
	t.Helper()
	orig := sweepRun
	sweepRun = fn
	t.Cleanup(func() { sweepRun = orig })
}

// TestSweepAbortClampsTotal pins the early-stop contract: when a run fails,
// the sweep stops scheduling, the remaining events carry Aborted, and the
// final event reports Done == Total (clamped to the runs actually started)
// instead of leaving Done < Total forever.
func TestSweepAbortClampsTotal(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	stubSweepRun(t, func(ctx context.Context, cfg RunConfig) (Result, error) {
		if calls.Add(1) == 3 {
			return Result{}, boom
		}
		return Result{System: cfg.System}, nil
	})

	var events []ProgressEvent
	o := Options{
		Seeds:       []int64{1, 2, 3, 4, 5},
		Systems:     []string{SystemREFER, SystemDaTree},
		Parallelism: 1, // deterministic scheduling order
		Progress:    func(ev ProgressEvent) { events = append(events, ev) },
	}
	_, err := sweep(context.Background(), o, []float64{1, 2}, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed}}
	}, func(r Result) float64 { return 1 })
	if !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want %v", err, boom)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if !last.Aborted {
		t.Fatalf("final event not marked aborted: %+v", last)
	}
	if last.Done != last.Total {
		t.Fatalf("final event Done=%d Total=%d, want equal after abort", last.Done, last.Total)
	}
	if last.Total >= 20 {
		t.Fatalf("final Total=%d not clamped below the 20-job grid", last.Total)
	}
	// Events before the failure report the full grid and are not aborted.
	if events[0].Aborted || events[0].Total != 20 {
		t.Fatalf("first event: %+v, want Total=20, not aborted", events[0])
	}
}

// TestSweepCancelBeforeStartEmitsAbort pins the zero-run abort path: a sweep
// whose context is already cancelled still emits one terminal event.
func TestSweepCancelBeforeStartEmitsAbort(t *testing.T) {
	stubSweepRun(t, func(ctx context.Context, cfg RunConfig) (Result, error) {
		t.Error("run executed under cancelled context")
		return Result{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events []ProgressEvent
	o := Options{
		Seeds:    []int64{1},
		Systems:  []string{SystemREFER},
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	}
	_, err := sweep(ctx, o, []float64{1}, func(x float64, seed int64) RunConfig {
		return RunConfig{}
	}, func(r Result) float64 { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
	if len(events) != 1 || !events[0].Aborted || events[0].Done != 0 || events[0].Total != 0 {
		t.Fatalf("events = %+v, want one terminal aborted event with Done == Total == 0", events)
	}
}

// TestSweepBlockingProgressCallback pins the serialization fix: a progress
// callback that blocks must not stall the workers — previously the callback
// ran under the sweep mutex, so one blocked callback froze every worker's
// stats accumulation (and a callback waiting on sweep output deadlocked).
// All runs must complete while the very first callback is still blocked.
func TestSweepBlockingProgressCallback(t *testing.T) {
	const jobs = 8
	var completed atomic.Int64
	allDone := make(chan struct{})
	stubSweepRun(t, func(ctx context.Context, cfg RunConfig) (Result, error) {
		if completed.Add(1) == jobs {
			close(allDone)
		}
		return Result{}, nil
	})

	release := make(chan struct{})
	var events []ProgressEvent
	o := Options{
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Systems:     []string{SystemREFER},
		Parallelism: 4,
		Progress: func(ev ProgressEvent) {
			if len(events) == 0 {
				<-release // first delivery blocks until the test releases it
			}
			events = append(events, ev)
		},
	}
	sweepDone := make(chan error, 1)
	go func() {
		_, err := sweep(context.Background(), o, []float64{1}, func(x float64, seed int64) RunConfig {
			return RunConfig{}
		}, func(r Result) float64 { return 1 })
		sweepDone <- err
	}()

	// Every run finishes even though no progress event has been delivered.
	select {
	case <-allDone:
	case <-time.After(30 * time.Second):
		t.Fatal("workers stalled behind the blocked progress callback")
	}
	// The sweep drains pending events before returning, so it must still be
	// in flight while the first callback blocks.
	select {
	case err := <-sweepDone:
		t.Fatalf("sweep returned before progress drained (err=%v)", err)
	default:
	}
	close(release)
	if err := <-sweepDone; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(events) != jobs {
		t.Fatalf("delivered %d events, want %d", len(events), jobs)
	}
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Fatalf("event %d has Done=%d: deliveries out of completion order: %+v", i, ev.Done, events)
		}
		if ev.Total != jobs || ev.Aborted {
			t.Fatalf("event %d unexpected: %+v", i, ev)
		}
	}
}

// TestWithDefaultsAppliedOnce pins the defaults-idempotence guard: a second
// application is a no-op, so a default that becomes non-idempotent (e.g.
// derived seeds) cannot diverge between the figure builders (which apply
// defaults early) and sweep (which re-guards for direct callers).
func TestWithDefaultsAppliedOnce(t *testing.T) {
	once := Options{}.withDefaults()
	twice := once.withDefaults()
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("withDefaults not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	// The guard short-circuits entirely: the slices must be the very same
	// backing arrays, not re-derived copies.
	if &once.Seeds[0] != &twice.Seeds[0] || &once.Systems[0] != &twice.Systems[0] {
		t.Fatal("second withDefaults re-derived the seed/system slices")
	}
	if !once.defaulted {
		t.Fatal("withDefaults did not mark the options as defaulted")
	}
}
