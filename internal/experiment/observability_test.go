package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"refer/internal/scenario"
	"refer/internal/trace"
)

// traceCfg is a run whose measurement window covers every packet: warmup is
// a token 1 ms (zero would trigger the 100 s default) and the window ends
// after the last burst's packets have either arrived or been dropped, so
// the collector and the tracer see the exact same packet population.
func traceCfg(system string, seed int64) RunConfig {
	return RunConfig{
		System:     system,
		Scenario:   scenario.Params{Seed: seed, Sensors: 150, MaxSpeed: 1},
		Warmup:     time.Millisecond,
		Duration:   95 * time.Second,
		FaultCount: 8,
	}
}

// TestTraceMatchesCollector reconciles the two independent packet ledgers:
// the metrics collector (driving the figures) and the trace recorder
// (driving observability) must agree packet for packet on the systems that
// record traces.
func TestTraceMatchesCollector(t *testing.T) {
	for _, sys := range []string{SystemREFER, SystemKautzOverlay} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			t.Parallel()
			cfg := traceCfg(sys, 7)
			cfg.Trace = trace.NewRecorder(1)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg.Trace.Counts()
			if c.Injected == 0 {
				t.Fatal("no packets traced")
			}
			if int(c.Injected) != res.Created {
				t.Fatalf("trace injected %d != collector created %d", c.Injected, res.Created)
			}
			if int(c.Delivered) != res.Delivered {
				t.Fatalf("trace delivered %d != collector delivered %d", c.Delivered, res.Delivered)
			}
			if int(c.Dropped) != res.Dropped {
				t.Fatalf("trace dropped %d != collector dropped %d", c.Dropped, res.Dropped)
			}
			if c.Injected != c.Delivered+c.Dropped {
				t.Fatalf("unbalanced ledger: injected %d, delivered %d + dropped %d",
					c.Injected, c.Delivered, c.Dropped)
			}
			if res.Stats.Trace != c {
				t.Fatalf("Result.Stats.Trace %+v != recorder counts %+v", res.Stats.Trace, c)
			}
			// sampleEvery=1 stores every packet's lifecycle; each starts
			// with an Inject event and ends with Deliver or Drop.
			events := cfg.Trace.Events()
			injects, finals := 0, 0
			for _, ev := range events {
				switch ev.Kind {
				case trace.Inject:
					injects++
				case trace.Deliver, trace.Drop:
					finals++
				}
			}
			if uint64(injects) != c.Injected || uint64(finals) != c.Injected {
				t.Fatalf("event stream: %d injects, %d finals, want %d each",
					injects, finals, c.Injected)
			}
			if c.RadioSends == 0 || c.Hops == 0 {
				t.Fatalf("no radio/hop activity recorded: %+v", c)
			}
		})
	}
}

// TestTraceSamplingKeepsLedgerExact checks a sampled recorder stores fewer
// events but identical counts.
func TestTraceSamplingKeepsLedgerExact(t *testing.T) {
	exact := traceCfg(SystemREFER, 7)
	exact.Trace = trace.NewRecorder(1)
	if _, err := Run(exact); err != nil {
		t.Fatal(err)
	}
	sampled := traceCfg(SystemREFER, 7)
	sampled.Trace = trace.NewRecorder(10)
	if _, err := Run(sampled); err != nil {
		t.Fatal(err)
	}
	if exact.Trace.Counts() != sampled.Trace.Counts() {
		t.Fatalf("sampling changed counts:\nexact   %+v\nsampled %+v",
			exact.Trace.Counts(), sampled.Trace.Counts())
	}
	if le, ls := len(exact.Trace.Events()), len(sampled.Trace.Events()); ls == 0 || ls >= le {
		t.Fatalf("sampled events %d, exact %d — sampling had no effect", ls, le)
	}
}

// TestRunStatsPopulated checks the stats block carries the run's DES and
// protocol counters.
func TestRunStatsPopulated(t *testing.T) {
	res, err := Run(quickCfg(SystemREFER, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.DESEvents == 0 || st.WallClock <= 0 || st.EventsPerSec <= 0 {
		t.Fatalf("host/DES stats empty: %+v", st)
	}
	if st.SimTime != 20*time.Second+60*time.Second+2*time.Second {
		t.Fatalf("SimTime = %v", st.SimTime)
	}
	if st.RouteTableHits == 0 {
		t.Fatalf("REFER run recorded no route-table hits: %+v", st)
	}
	if st.CommEnergy != res.CommEnergy || st.ConstructionEnergy != res.ConstructionEnergy {
		t.Fatalf("stats energy diverges from result: %+v vs %+v", st, res)
	}
	if st.Trace != (trace.Counts{}) {
		t.Fatalf("untraced run has trace counts: %+v", st.Trace)
	}
}

// TestRunContextPreCancelled returns immediately with ctx.Err().
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, quickCfg(SystemREFER, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelsMidRun aborts a long simulation promptly once the
// deadline passes: the DES loop checks ctx every batch.
func TestRunContextCancelsMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	cfg := RunConfig{
		System:   SystemREFER,
		Scenario: scenario.Params{Seed: 1, Sensors: 300, MaxSpeed: 2},
		Warmup:   100 * time.Second,
		Duration: 5000 * time.Second,
	}
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: the run would take far longer uncancelled; the check
	// only needs to prove the loop noticed the deadline between batches.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestSweepProgressCoversAllRuns checks the callback fires once per run
// with consistent bookkeeping and the owning figure's registry ID.
func TestSweepProgressCoversAllRuns(t *testing.T) {
	var events []ProgressEvent
	o := Options{
		Seeds:       []int64{1, 2},
		Warmup:      15 * time.Second,
		Duration:    30 * time.Second,
		Systems:     []string{SystemREFER},
		Sensors:     120,
		TraceSample: 50,
		Progress:    func(ev ProgressEvent) { events = append(events, ev) },
	}
	fig, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	total := len(o.Systems) * 5 * len(o.Seeds) // faultXs has 5 positions
	if len(events) != total {
		t.Fatalf("progress events = %d, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.FigureID != "7" {
			t.Fatalf("event %d FigureID = %q", i, ev.FigureID)
		}
		if ev.Done != i+1 || ev.Total != total {
			t.Fatalf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if ev.Err != nil {
			t.Fatalf("event %d unexpected error: %v", i, ev.Err)
		}
		if ev.System != SystemREFER {
			t.Fatalf("event %d system = %q", i, ev.System)
		}
	}
	if fig.Stats.Runs != total {
		t.Fatalf("SweepStats.Runs = %d, want %d", fig.Stats.Runs, total)
	}
	if fig.Stats.DESEvents == 0 || fig.Stats.WallClock <= 0 {
		t.Fatalf("sweep stats empty: %+v", fig.Stats)
	}
	if fig.Stats.Trace.Injected == 0 {
		t.Fatalf("TraceSample did not aggregate trace counts: %+v", fig.Stats.Trace)
	}
}

// TestSweepErrorIncludesRunConfig checks a failing run's system, seed and
// sweep position survive into the aggregated error.
func TestSweepErrorIncludesRunConfig(t *testing.T) {
	o := Options{
		Seeds:    []int64{9},
		Warmup:   10 * time.Second,
		Duration: 10 * time.Second,
		Systems:  []string{"not-a-system"},
	}
	_, err := Fig4(o)
	if err == nil {
		t.Fatal("sweep swallowed the error")
	}
	msg := err.Error()
	for _, want := range []string{"not-a-system", "seed=9", "x="} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

// TestSweepCancelledReturnsCtxErr cancels a sweep up front: no runs
// execute, the context error is reported, and the only progress event is
// the terminal abort marker (Aborted, Done == Total == 0).
func TestSweepCancelledReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var events []ProgressEvent
	o := Options{
		Seeds:    []int64{1},
		Warmup:   10 * time.Second,
		Duration: 10 * time.Second,
		Systems:  []string{SystemREFER},
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	}
	spec, ok := FigureByID("4")
	if !ok {
		t.Fatal("figure 4 not registered")
	}
	if _, err := spec.Build(ctx, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, ev := range events {
		if ev.System != "" || ev.Done != 0 {
			t.Fatalf("run executed after cancellation: %+v", ev)
		}
	}
	if len(events) != 1 || !events[0].Aborted {
		t.Fatalf("events = %+v, want exactly the terminal abort marker", events)
	}
}

// TestRegistryContents pins the registry: stable IDs, unique, correctly
// classified, and resolvable via FigureByID.
func TestRegistryContents(t *testing.T) {
	specs := Figures()
	wantKinds := map[string]FigureKind{
		"4": KindPaper, "5": KindPaper, "6": KindPaper, "7": KindPaper,
		"8": KindPaper, "9": KindPaper, "10": KindPaper, "11": KindPaper,
		"A1": KindAblation, "A2": KindAblation, "A3": KindAblation,
		"E1": KindExtension, "E2": KindExtension, "E3": KindExtension,
		"L1": KindExtension, "L2": KindExtension, "L3": KindExtension,
		"S1": KindScale, "S2": KindScale, "S3": KindScale, "S4": KindScale,
		"S5": KindScale,
		"R1": KindRecovery, "R2": KindRecovery,
	}
	if len(specs) != len(wantKinds) {
		t.Fatalf("registry has %d entries, want %d", len(specs), len(wantKinds))
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec.ID] {
			t.Fatalf("duplicate figure ID %q", spec.ID)
		}
		seen[spec.ID] = true
		kind, ok := wantKinds[spec.ID]
		if !ok {
			t.Fatalf("unexpected figure %q", spec.ID)
		}
		if spec.Kind != kind {
			t.Fatalf("figure %q kind = %v, want %v", spec.ID, spec.Kind, kind)
		}
		if spec.Title == "" || spec.Build == nil {
			t.Fatalf("figure %q incomplete: %+v", spec.ID, spec)
		}
		byID, ok := FigureByID(spec.ID)
		if !ok || byID.ID != spec.ID {
			t.Fatalf("FigureByID(%q) failed", spec.ID)
		}
	}
	if _, ok := FigureByID("999"); ok {
		t.Fatal("FigureByID invented a figure")
	}
	if KindPaper.String() != "paper" || KindAblation.String() != "ablation" ||
		KindExtension.String() != "extension" || KindScale.String() != "scale" {
		t.Fatal("FigureKind.String")
	}
}

// TestRegistryStampsFigure checks the registry wrapper stamps ID and Title
// onto the built figure.
func TestRegistryStampsFigure(t *testing.T) {
	spec, _ := FigureByID("A1")
	fig, err := spec.Build(context.Background(), Options{
		Seeds:    []int64{1},
		Warmup:   15 * time.Second,
		Duration: 30 * time.Second,
		Sensors:  120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "A1" || fig.Title != spec.Title {
		t.Fatalf("figure not stamped: ID=%q Title=%q", fig.ID, fig.Title)
	}
}
