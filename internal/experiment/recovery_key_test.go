package experiment

import (
	"testing"
	"time"

	"refer/internal/recovery"
	"refer/internal/scenario"
)

// TestConfigKeyRecoveryStability pins the append-only canonicalization
// contract for the recovery subsystem: a zero Recovery spec encodes to
// nothing, so every content address computed before the recovery change —
// the constants of TestConfigKeyEnergyStability, verified byte-identical at
// the commit preceding the energy API and again here — is unchanged.
func TestConfigKeyRecoveryStability(t *testing.T) {
	k, err := ConfigKey(RunConfig{Scenario: scenario.Params{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if k != legacyRunKeySeed7 {
		t.Fatalf("zero-Recovery run key moved:\n got %s\nwant %s", k, legacyRunKeySeed7)
	}
	k, err = ConfigKey(RunConfig{
		Scenario:   scenario.Params{Seed: 7, Sensors: 150, MaxSpeed: 2.5},
		Warmup:     100 * time.Second,
		Duration:   300 * time.Second,
		FaultCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if k != legacyRunKeyReplay {
		t.Fatalf("zero-Recovery replay-config key moved:\n got %s\nwant %s", k, legacyRunKeyReplay)
	}

	ko, err := OptionsKey("4", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ko != legacyOptionsKey4 {
		t.Fatalf("zero-Recovery options key moved:\n got %s\nwant %s", ko, legacyOptionsKey4)
	}
}

// TestConfigKeyRecoveryPerturbation checks every non-zero recovery spec
// lands in its own key, distinct from the legacy key and from each other,
// and that malformed specs are rejected instead of keyed.
func TestConfigKeyRecoveryPerturbation(t *testing.T) {
	keys := map[string]string{"legacy": legacyRunKeySeed7}
	for name, spec := range map[string]recovery.Spec{
		"enabled":        {Enabled: true},
		"short-grace":    {Enabled: true, GraceS: 1},
		"slow-detection": {Enabled: true, CheckIntervalS: 30},
		"tuned-disabled": {GraceS: 1}, // non-zero even with Enabled false
	} {
		k, err := ConfigKey(RunConfig{Scenario: scenario.Params{Seed: 7}, Recovery: spec})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for other, ko := range keys {
			if k == ko {
				t.Errorf("recovery spec %q collides with %q", name, other)
			}
		}
		keys[name] = k
	}

	if _, err := ConfigKey(RunConfig{
		Scenario: scenario.Params{Seed: 7},
		Recovery: recovery.Spec{Enabled: true, GraceS: -1},
	}); err == nil {
		t.Error("invalid recovery spec produced a key")
	}

	ko, err := OptionsKey("4", Options{Recovery: recovery.Spec{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if ko == legacyOptionsKey4 {
		t.Error("Options.Recovery not part of the options key")
	}
}
