package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"refer/internal/chaos"
	"refer/internal/energy"
	"refer/internal/metrics"
	"refer/internal/recovery"
	"refer/internal/scenario"
	"refer/internal/trace"
)

// Options scales the figure sweeps. The zero value reproduces the paper's
// full parameters (1000 s runs); tests and quick benches shrink them.
type Options struct {
	// Seeds are the independent repetitions behind each point's 95 % CI.
	Seeds []int64
	// Warmup and Duration override the run windows when non-zero.
	Warmup   time.Duration
	Duration time.Duration
	// Sensors overrides the default 200-sensor population for the
	// mobility/fault figures when non-zero.
	Sensors int
	// Systems restricts the comparison; empty means all four.
	Systems []string
	// PacketsPerSource overrides the burst size when non-zero.
	PacketsPerSource int
	// Parallelism bounds concurrent simulation runs (0 = GOMAXPROCS).
	// Values outside [0, MaxParallelism] are a config error.
	Parallelism int
	// RunParallelism shards the bulk maintenance phases inside each REFER
	// run across this many worker goroutines (RunConfig.RunParallelism).
	// Orthogonal to Parallelism: one saturates cores across runs, the other
	// within a run — the latter is what lets a single giant run use the
	// machine. Results are byte-identical at every setting, so the knob is
	// excluded from OptionsKey exactly like Parallelism. Values outside
	// [0, MaxParallelism] are a config error.
	RunParallelism int
	// DrainParallelism sets the DES batched-drain worker count inside each
	// run (RunConfig.DrainParallelism): the third parallelism layer, below
	// Parallelism (across runs) and RunParallelism (maintenance shards
	// within a run) — it overlaps the event queue's own conflict-free work.
	// Results are byte-identical at every setting, so the knob is excluded
	// from OptionsKey exactly like the other two. Values outside
	// [0, MaxParallelism] are a config error.
	DrainParallelism int
	// Progress, when non-nil, receives one event after every completed
	// simulation run of a sweep. Calls are serialized (never concurrent)
	// and delivered in completion order on a dedicated goroutine, so a
	// slow — even blocking — callback never stalls the sweep workers. The
	// sweep drains all pending events before returning.
	Progress func(ProgressEvent)
	// TraceSample, when > 0, attaches a packet-trace recorder to every run
	// of the sweep, storing every TraceSample-th packet's event stream.
	// Trace counters (which are always exact) aggregate into the figure's
	// SweepStats. Zero disables tracing entirely.
	TraceSample int
	// Chaos, when non-nil, attaches the fault schedule to every run of the
	// sweep that does not already carry its own (figures like A3 build
	// per-point schedules). Applied-fault counters aggregate into the
	// figure's SweepStats.
	Chaos *chaos.Schedule
	// Energy, when non-zero, applies the cost-model spec to every run of
	// the sweep that does not already carry its own (the lifetime figures
	// default to the radio model). The zero value keeps the paper's flat
	// constants, leaving every pre-existing figure CSV byte-identical.
	Energy energy.Spec
	// Recovery, when non-zero, applies the self-healing recovery spec to
	// every run of the sweep that does not already carry its own. The zero
	// value attaches nothing (SystemREFERRecovery still self-enables its
	// defaults), leaving every pre-existing figure CSV byte-identical.
	Recovery recovery.Spec

	// figureID labels progress events with the owning registry entry; set
	// by the registry wrapper, empty for direct sweep use.
	figureID string
	// defaulted marks Options that already passed withDefaults, making a
	// second application a no-op — defaults are derived exactly once, so a
	// future non-idempotent default (e.g. per-sweep derived seeds) cannot
	// silently diverge between the figure builders (which need the
	// defaults early) and sweep (which guards direct callers).
	defaulted bool
}

// ProgressEvent reports one finished simulation run of a sweep.
type ProgressEvent struct {
	// FigureID is the registry ID of the figure being built ("" when the
	// sweep was invoked outside the registry).
	FigureID string
	// Done runs out of Total have finished (including this one).
	Done, Total int
	// System, Seed and X identify the run within the sweep grid.
	System string
	Seed   int64
	X      float64
	// Err is the run's error, nil on success.
	Err error
	// Elapsed is the wall time since the sweep started.
	Elapsed time.Duration
	// Aborted marks events emitted after the sweep stopped scheduling new
	// runs (a run failed or the context was cancelled). On aborted events
	// Total is clamped to the number of runs actually started, so the
	// final event of an aborted sweep reports Done == Total — a consumer
	// polling progress can tell "aborted" (Aborted set, counts equal)
	// from "still in flight" (counts short, Aborted clear) instead of
	// seeing Done < Total forever.
	Aborted bool
}

// SweepStats aggregates the per-run observability blocks of a figure's
// sweep. Host-timing fields depend on machine load; everything else is
// deterministic per Options.
type SweepStats struct {
	// Runs is the number of simulation runs that finished (successfully).
	Runs int `json:"runs"`
	// WallClock is the sweep's host time end to end; RunWallClock is the
	// sum of the individual runs' wall clocks (> WallClock when parallel).
	WallClock    time.Duration `json:"wall_clock_ns"`
	RunWallClock time.Duration `json:"run_wall_clock_ns"`
	// DESEvents totals scheduler events across runs; EventsPerSec is that
	// total over WallClock.
	DESEvents    uint64  `json:"des_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Protocol counters summed across runs.
	RouteTableHits   uint64 `json:"route_table_hits"`
	RouteTableMisses uint64 `json:"route_table_misses"`
	FailoverSwitches uint64 `json:"failover_switches"`
	// Trace sums the runs' trace counters; zero unless TraceSample > 0.
	Trace trace.Counts `json:"trace"`
	// Chaos sums the runs' applied-fault counters; zero unless a schedule
	// was attached.
	Chaos chaos.Stats `json:"chaos"`
	// ShardRounds sums the runs' sharded maintenance rounds and the three
	// phase timers their cumulative host nanoseconds (zero unless
	// RunParallelism > 1). Host-execution detail like the wall-clock pair:
	// cached-figure comparisons zero them alongside WallClock.
	ShardRounds       uint64 `json:"shard_rounds"`
	MembershipPhaseNs int64  `json:"membership_phase_ns"`
	CellPhaseNs       int64  `json:"cell_phase_ns"`
	MergeNs           int64  `json:"merge_ns"`
	// Batched-drain totals summed across runs (zero unless
	// DrainParallelism > 1). Host-execution detail like the shard
	// counters: cached-figure comparisons zero them alongside WallClock.
	DrainBatches       uint64 `json:"drain_batches"`
	DrainBatchedEvents uint64 `json:"drain_batched_events"`
	DrainSerialEvents  uint64 `json:"drain_serial_events"`
	DrainReexecs       uint64 `json:"drain_reexecs"`
	DrainPrepNs        int64  `json:"drain_prep_ns"`
	DrainWarms         uint64 `json:"drain_warms"`
	DrainWarmHits      uint64 `json:"drain_warm_hits"`
	// Recovery sums the runs' self-healing counters; zero unless a recovery
	// manager was attached. Deterministic per Options (virtual-time
	// latencies), unlike the shard counters above.
	Recovery recovery.Stats `json:"recovery"`
}

// accumulate folds one run's stats into the sweep totals.
func (s *SweepStats) accumulate(r RunStats) {
	s.Runs++
	s.RunWallClock += r.WallClock
	s.DESEvents += r.DESEvents
	s.RouteTableHits += uint64(r.RouteTableHits)
	s.RouteTableMisses += uint64(r.RouteTableMisses)
	s.FailoverSwitches += uint64(r.FailoverSwitches)
	s.Trace.Add(r.Trace)
	s.Chaos.Add(r.Chaos)
	s.ShardRounds += uint64(r.ShardRounds)
	s.MembershipPhaseNs += r.MembershipPhaseNs
	s.CellPhaseNs += r.CellPhaseNs
	s.MergeNs += r.MergeNs
	s.DrainBatches += r.DrainBatches
	s.DrainBatchedEvents += r.DrainBatchedEvents
	s.DrainSerialEvents += r.DrainSerialEvents
	s.DrainReexecs += r.DrainReexecs
	s.DrainPrepNs += r.DrainPrepNs
	s.DrainWarms += r.DrainWarms
	s.DrainWarmHits += r.DrainWarmHits
	s.Recovery.Add(r.Recovery)
}

// finish stamps the end-to-end timing fields.
func (s *SweepStats) finish(start time.Time) {
	s.WallClock = time.Since(start)
	if secs := s.WallClock.Seconds(); secs > 0 {
		s.EventsPerSec = float64(s.DESEvents) / secs
	}
}

func (o Options) withDefaults() Options {
	if o.defaulted {
		return o
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if len(o.Systems) == 0 {
		o.Systems = AllSystems()
	}
	if o.Sensors == 0 {
		o.Sensors = 200
	}
	o.defaulted = true
	return o
}

// Point is one x-position of a figure series.
type Point struct {
	X float64         `json:"x"`
	Y metrics.Summary `json:"y"`
}

// Series is one system's curve.
type Series struct {
	System string  `json:"system"`
	Points []Point `json:"points"`
}

// Figure is a reproduced evaluation figure: per-system series over a sweep.
type Figure struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	XLabel string     `json:"x_label"`
	YLabel string     `json:"y_label"`
	Series []Series   `json:"series"`
	Stats  SweepStats `json:"stats"`
}

// progressPump serializes Options.Progress callbacks on a dedicated
// goroutine. Workers enqueue events (under the sweep mutex, preserving
// completion order) and never block on the callback, so a slow or blocking
// callback cannot stall the other workers' stats accumulation — and a
// callback that itself waits on sweep output can no longer deadlock the
// sweep. close drains the queue before returning, so every event is
// delivered before sweep returns.
type progressPump struct {
	fn     func(ProgressEvent)
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []ProgressEvent
	closed bool
	done   chan struct{}
}

func newProgressPump(fn func(ProgressEvent)) *progressPump {
	p := &progressPump{fn: fn, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	if fn == nil {
		close(p.done)
		return p
	}
	go p.loop()
	return p
}

// emit enqueues one event; it never blocks on the callback.
func (p *progressPump) emit(ev ProgressEvent) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.queue = append(p.queue, ev)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *progressPump) loop() {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		ev := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.fn(ev) // no locks held: the callback may block or query freely
	}
}

// close waits until every enqueued event has been delivered.
func (p *progressPump) close() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Signal()
	<-p.done
}

// sweepRun executes one simulation of a sweep; indirected so tests can
// substitute instant or failing runs.
var sweepRun = RunContext

// sweep runs the cross product systems × xs × seeds and reduces each
// (system, x) cell to a summary of the metric selected by pick. Runs
// execute in parallel; a failed run or a cancelled context stops further
// jobs from being scheduled, and every run error — each wrapped with the
// failing run's system, seed and x — is aggregated with errors.Join.
func sweep(ctx context.Context, o Options, xs []float64, configure func(x float64, seed int64) RunConfig, pick func(Result) float64) (Figure, error) {
	if err := validParallelism("Options.Parallelism", o.Parallelism); err != nil {
		return Figure{}, err
	}
	if err := validParallelism("Options.RunParallelism", o.RunParallelism); err != nil {
		return Figure{}, err
	}
	if err := validParallelism("Options.DrainParallelism", o.DrainParallelism); err != nil {
		return Figure{}, err
	}
	o = o.withDefaults()
	type cell struct {
		sys string
		x   int
	}
	type job struct {
		cfg  RunConfig
		cell cell
		x    float64
	}
	var jobs []job
	for _, sys := range o.Systems {
		for xi, x := range xs {
			for _, seed := range o.Seeds {
				cfg := configure(x, seed)
				cfg.System = sys
				if o.Warmup > 0 {
					cfg.Warmup = o.Warmup
				}
				if o.Duration > 0 {
					cfg.Duration = o.Duration
				}
				if o.PacketsPerSource > 0 {
					cfg.PacketsPerSource = o.PacketsPerSource
				}
				if cfg.Chaos == nil {
					cfg.Chaos = o.Chaos
				}
				if cfg.Energy.IsZero() {
					cfg.Energy = o.Energy
				}
				if cfg.Recovery.IsZero() {
					cfg.Recovery = o.Recovery
				}
				if cfg.RunParallelism == 0 {
					cfg.RunParallelism = o.RunParallelism
				}
				if cfg.DrainParallelism == 0 {
					cfg.DrainParallelism = o.DrainParallelism
				}
				jobs = append(jobs, job{cfg: cfg, cell: cell{sys: sys, x: xi}, x: x})
			}
		}
	}

	parallelism := o.Parallelism
	if parallelism <= 0 {
		parallelism = defaultParallelism()
	}
	start := time.Now()
	var (
		mu        sync.Mutex
		samples   = make(map[cell][]float64)
		errs      []error
		failed    bool
		done      int
		scheduled int
		stats     SweepStats
		wg        sync.WaitGroup
		sem       = make(chan struct{}, parallelism)
	)
	pump := newProgressPump(o.Progress)
	total := len(jobs)
	for _, j := range jobs {
		j := j
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		mu.Lock()
		if failed || ctx.Err() != nil {
			mu.Unlock()
			wg.Done()
			<-sem
			break
		}
		scheduled++
		mu.Unlock()
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := j.cfg
			if o.TraceSample > 0 {
				cfg.Trace = trace.NewRecorder(o.TraceSample)
			}
			var res Result
			var err error
			// The figure label attributes this worker's CPU samples to the
			// sweep it serves ("sweep" for direct callers outside the
			// registry); the in-run shard workers add cell-shard on top.
			figLabel := o.figureID
			if figLabel == "" {
				figLabel = "sweep"
			}
			pprof.Do(ctx, pprof.Labels("figure", figLabel), func(ctx context.Context) {
				res, err = sweepRun(ctx, cfg)
			})
			mu.Lock()
			done++
			if err != nil {
				failed = true
				errs = append(errs, fmt.Errorf("experiment: %s seed=%d x=%g: %w",
					j.cfg.System, j.cfg.Scenario.Seed, j.x, err))
			} else {
				samples[j.cell] = append(samples[j.cell], pick(res))
				stats.accumulate(res.Stats)
			}
			aborted := failed || ctx.Err() != nil
			tot := total
			if aborted {
				tot = scheduled // no further runs will start
			}
			pump.emit(ProgressEvent{
				FigureID: o.figureID,
				Done:     done,
				Total:    tot,
				System:   j.cfg.System,
				Seed:     j.cfg.Scenario.Seed,
				X:        j.x,
				Err:      err,
				Elapsed:  time.Since(start),
				Aborted:  aborted,
			})
			mu.Unlock()
		}()
	}
	wg.Wait()
	// A sweep aborted before any run started would otherwise emit nothing;
	// send one terminal event so consumers still see Aborted, Done == Total.
	mu.Lock()
	if (failed || ctx.Err() != nil) && done == 0 {
		pump.emit(ProgressEvent{
			FigureID: o.figureID,
			Aborted:  true,
			Err:      ctx.Err(),
			Elapsed:  time.Since(start),
		})
	}
	mu.Unlock()
	pump.close()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return Figure{}, errors.Join(errs...)
	}

	var fig Figure
	for _, sys := range o.Systems {
		series := Series{System: sys, Points: make([]Point, 0, len(xs))}
		for xi, x := range xs {
			vals := samples[cell{sys: sys, x: xi}]
			sort.Float64s(vals)
			series.Points = append(series.Points, Point{X: x, Y: metrics.Summarize(vals)})
		}
		fig.Series = append(fig.Series, series)
	}
	stats.finish(start)
	fig.Stats = stats
	return fig, nil
}

func defaultParallelism() int {
	n := numCPU()
	if n < 1 {
		return 1
	}
	return n
}

// mobilityXs are the paper's mobility sweep positions: node speed drawn
// from [0, x] m/s for x = 1..5, plotted at the mean speed x/2.
var mobilityXs = []float64{0.5, 1.0, 1.5, 2.0, 2.5}

// faultXs are the paper's faulty-node counts 2x, x ∈ [1,5].
var faultXs = []float64{2, 4, 6, 8, 10}

// scaleXs are the paper's network sizes (number of sensors).
var scaleXs = []float64{100, 200, 300, 400}

// mobilitySweep runs the Figure 4/5 grid: speed drawn from [0, 2x] m/s.
func mobilitySweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(ctx, o, mobilityXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 2 * x}}
	}, pick)
	fig.XLabel = "mean speed (m/s)"
	return fig, err
}

// faultSweep runs the Figure 6/7 grid: x faulty sensors at 1 m/s.
func faultSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(ctx, o, faultXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario:   scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1},
			FaultCount: int(x),
		}
	}, pick)
	fig.XLabel = "faulty nodes"
	return fig, err
}

// scaleSweep runs the Figure 8–11 grid: network size at 1.5 m/s.
func scaleSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	fig, err := sweep(ctx, o, scaleXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5}}
	}, pick)
	fig.XLabel = "sensors"
	return fig, err
}

// AllFigures regenerates every paper evaluation figure (4–11).
func AllFigures(o Options) ([]Figure, error) {
	return AllFiguresContext(context.Background(), o)
}

// AllFiguresContext regenerates every paper figure in registry order,
// stopping at the first failed or cancelled sweep.
func AllFiguresContext(ctx context.Context, o Options) ([]Figure, error) {
	var figs []Figure
	for _, spec := range Figures() {
		if spec.Kind != KindPaper {
			continue
		}
		fig, err := spec.Build(ctx, o)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Table renders the figure as an aligned text table (one row per x value,
// one column per system, mean ± 95 % CI).
func (f Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s — %s [%s]\n", f.ID, f.Title, f.YLabel)
	fmt.Fprintf(&sb, "%-18s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-22s", s.System)
	}
	sb.WriteString("\n")
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-18.4g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, "%-22s", s.Points[i].Y.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the figure as comma-separated values: a header row
// (x label, then "<system> mean","<system> ci95" pairs) and one row per
// sweep position. Suitable for direct plotting.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		fmt.Fprintf(&sb, ",%s,%s", csvEscape(s.System+" mean"), csvEscape(s.System+" ci95"))
	}
	sb.WriteString("\n")
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, ",%g,%g", s.Points[i].Y.Mean, s.Points[i].Y.CI95)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// SeriesFor returns the series of the named system, if present.
func (f Figure) SeriesFor(system string) (Series, bool) {
	for _, s := range f.Series {
		if s.System == system {
			return s, true
		}
	}
	return Series{}, false
}

// Means returns a system's point means in x order.
func (s Series) Means() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y.Mean
	}
	return out
}

// numCPU is indirected for tests.
var numCPU = runtimeNumCPU

func runtimeNumCPU() int { return runtime.NumCPU() }
