package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"refer/internal/metrics"
	"refer/internal/scenario"
)

// Options scales the figure sweeps. The zero value reproduces the paper's
// full parameters (1000 s runs); tests and quick benches shrink them.
type Options struct {
	// Seeds are the independent repetitions behind each point's 95 % CI.
	Seeds []int64
	// Warmup and Duration override the run windows when non-zero.
	Warmup   time.Duration
	Duration time.Duration
	// Sensors overrides the default 200-sensor population for the
	// mobility/fault figures when non-zero.
	Sensors int
	// Systems restricts the comparison; empty means all four.
	Systems []string
	// PacketsPerSource overrides the burst size when non-zero.
	PacketsPerSource int
	// Parallelism bounds concurrent simulation runs (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if len(o.Systems) == 0 {
		o.Systems = AllSystems()
	}
	if o.Sensors == 0 {
		o.Sensors = 200
	}
	return o
}

// Point is one x-position of a figure series.
type Point struct {
	X float64
	Y metrics.Summary
}

// Series is one system's curve.
type Series struct {
	System string
	Points []Point
}

// Figure is a reproduced evaluation figure: per-system series over a sweep.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// sweep runs the cross product systems × xs × seeds and reduces each
// (system, x) cell to a summary of the metric selected by pick.
func sweep(o Options, xs []float64, configure func(x float64, seed int64) RunConfig, pick func(Result) float64) (Figure, error) {
	o = o.withDefaults()
	type cell struct {
		sys string
		x   int
	}
	type job struct {
		cfg  RunConfig
		cell cell
	}
	var jobs []job
	for _, sys := range o.Systems {
		for xi, x := range xs {
			for _, seed := range o.Seeds {
				cfg := configure(x, seed)
				cfg.System = sys
				if o.Warmup > 0 {
					cfg.Warmup = o.Warmup
				}
				if o.Duration > 0 {
					cfg.Duration = o.Duration
				}
				if o.PacketsPerSource > 0 {
					cfg.PacketsPerSource = o.PacketsPerSource
				}
				jobs = append(jobs, job{cfg: cfg, cell: cell{sys: sys, x: xi}})
			}
		}
	}

	parallelism := o.Parallelism
	if parallelism <= 0 {
		parallelism = defaultParallelism()
	}
	var (
		mu       sync.Mutex
		samples  = make(map[cell][]float64)
		firstErr error
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallelism)
	)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := Run(j.cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			samples[j.cell] = append(samples[j.cell], pick(res))
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Figure{}, firstErr
	}

	var fig Figure
	for _, sys := range o.Systems {
		series := Series{System: sys, Points: make([]Point, 0, len(xs))}
		for xi, x := range xs {
			vals := samples[cell{sys: sys, x: xi}]
			sort.Float64s(vals)
			series.Points = append(series.Points, Point{X: x, Y: metrics.Summarize(vals)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

func defaultParallelism() int {
	n := numCPU()
	if n < 1 {
		return 1
	}
	return n
}

// mobilityXs are the paper's mobility sweep positions: node speed drawn
// from [0, x] m/s for x = 1..5, plotted at the mean speed x/2.
var mobilityXs = []float64{0.5, 1.0, 1.5, 2.0, 2.5}

// faultXs are the paper's faulty-node counts 2x, x ∈ [1,5].
var faultXs = []float64{2, 4, 6, 8, 10}

// scaleXs are the paper's network sizes (number of sensors).
var scaleXs = []float64{100, 200, 300, 400}

// Fig4 reproduces Figure 4: QoS throughput vs node mobility.
func Fig4(o Options) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(o, mobilityXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 2 * x}}
	}, func(r Result) float64 { return r.Throughput })
	fig.ID, fig.Title = "4", "QoS throughput vs node mobility"
	fig.XLabel, fig.YLabel = "mean speed (m/s)", "throughput (pkt/s)"
	return fig, err
}

// Fig5 reproduces Figure 5: communication energy vs node mobility.
func Fig5(o Options) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(o, mobilityXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 2 * x}}
	}, func(r Result) float64 { return r.CommEnergy })
	fig.ID, fig.Title = "5", "Energy consumed in communication vs node mobility"
	fig.XLabel, fig.YLabel = "mean speed (m/s)", "energy (J)"
	return fig, err
}

// Fig6 reproduces Figure 6: transmission delay vs number of faulty nodes.
func Fig6(o Options) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(o, faultXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario:   scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1},
			FaultCount: int(x),
		}
	}, func(r Result) float64 { return r.MeanQoSDelay.Seconds() * 1000 })
	fig.ID, fig.Title = "6", "Transmission delay vs number of faulty nodes"
	fig.XLabel, fig.YLabel = "faulty nodes", "delay (ms)"
	return fig, err
}

// Fig7 reproduces Figure 7: QoS throughput vs number of faulty nodes.
func Fig7(o Options) (Figure, error) {
	o = o.withDefaults()
	fig, err := sweep(o, faultXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario:   scenario.Params{Seed: seed, Sensors: o.Sensors, MaxSpeed: 1},
			FaultCount: int(x),
		}
	}, func(r Result) float64 { return r.Throughput })
	fig.ID, fig.Title = "7", "QoS throughput vs number of faulty nodes"
	fig.XLabel, fig.YLabel = "faulty nodes", "throughput (pkt/s)"
	return fig, err
}

// Fig8 reproduces Figure 8: transmission delay vs network size.
func Fig8(o Options) (Figure, error) {
	fig, err := sweep(o, scaleXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5}}
	}, func(r Result) float64 { return r.MeanQoSDelay.Seconds() * 1000 })
	fig.ID, fig.Title = "8", "Transmission delay vs network size"
	fig.XLabel, fig.YLabel = "sensors", "delay (ms)"
	return fig, err
}

// Fig9 reproduces Figure 9: communication energy vs network size.
func Fig9(o Options) (Figure, error) {
	fig, err := sweep(o, scaleXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5}}
	}, func(r Result) float64 { return r.CommEnergy })
	fig.ID, fig.Title = "9", "Energy consumed in communication vs network size"
	fig.XLabel, fig.YLabel = "sensors", "energy (J)"
	return fig, err
}

// Fig10 reproduces Figure 10: topology-construction energy vs network size.
func Fig10(o Options) (Figure, error) {
	fig, err := sweep(o, scaleXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5}}
	}, func(r Result) float64 { return r.ConstructionEnergy })
	fig.ID, fig.Title = "10", "Energy consumed in topology construction vs network size"
	fig.XLabel, fig.YLabel = "sensors", "energy (J)"
	return fig, err
}

// Fig11 reproduces Figure 11: total (construction + communication) energy
// vs network size.
func Fig11(o Options) (Figure, error) {
	fig, err := sweep(o, scaleXs, func(x float64, seed int64) RunConfig {
		return RunConfig{Scenario: scenario.Params{Seed: seed, Sensors: int(x), MaxSpeed: 1.5}}
	}, func(r Result) float64 { return r.TotalEnergy() })
	fig.ID, fig.Title = "11", "Total energy consumption vs network size"
	fig.XLabel, fig.YLabel = "sensors", "energy (J)"
	return fig, err
}

// AllFigures regenerates every evaluation figure.
func AllFigures(o Options) ([]Figure, error) {
	builders := []func(Options) (Figure, error){
		Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11,
	}
	figs := make([]Figure, 0, len(builders))
	for _, b := range builders {
		fig, err := b(o)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Table renders the figure as an aligned text table (one row per x value,
// one column per system, mean ± 95 % CI).
func (f Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s — %s [%s]\n", f.ID, f.Title, f.YLabel)
	fmt.Fprintf(&sb, "%-18s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-22s", s.System)
	}
	sb.WriteString("\n")
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-18.4g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, "%-22s", s.Points[i].Y.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the figure as comma-separated values: a header row
// (x label, then "<system> mean","<system> ci95" pairs) and one row per
// sweep position. Suitable for direct plotting.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		fmt.Fprintf(&sb, ",%s,%s", csvEscape(s.System+" mean"), csvEscape(s.System+" ci95"))
	}
	sb.WriteString("\n")
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, ",%g,%g", s.Points[i].Y.Mean, s.Points[i].Y.CI95)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// SeriesFor returns the series of the named system, if present.
func (f Figure) SeriesFor(system string) (Series, bool) {
	for _, s := range f.Series {
		if s.System == system {
			return s, true
		}
	}
	return Series{}, false
}

// Means returns a system's point means in x order.
func (s Series) Means() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y.Mean
	}
	return out
}

// numCPU is indirected for tests.
var numCPU = runtimeNumCPU

func runtimeNumCPU() int { return runtime.NumCPU() }
