package experiment

import (
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/scenario"
)

// The energy redesign must not move any existing content address: cached
// results and the refer-simd dedup map are keyed by these hashes, so a
// silently changed key would orphan every cache entry written before the
// change. The hex constants below were computed at the commit immediately
// preceding the energy API (verified byte-identical there) and pin the
// append-only canonicalization contract: a zero Energy spec encodes to
// nothing.
const (
	legacyRunKeySeed7  = "c7166834bd149d3e3badeda0be7d9ee46efab6c8c351c3934626b22e133c2ca8"
	legacyOptionsKey4  = "ea5bccb2e83c9037d2080f49e052571056f758903df20d106ee9193ffc6cd158"
	legacyRunKeyReplay = "9a113080d0fa30d883a3ab9c11023aaa3d1cebd8883d1d8365912cbcc9184e37"
)

func TestConfigKeyEnergyStability(t *testing.T) {
	k, err := ConfigKey(RunConfig{Scenario: scenario.Params{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if k != legacyRunKeySeed7 {
		t.Fatalf("zero-Energy run key moved:\n got %s\nwant %s", k, legacyRunKeySeed7)
	}
	k, err = ConfigKey(RunConfig{
		Scenario:   scenario.Params{Seed: 7, Sensors: 150, MaxSpeed: 2.5},
		Warmup:     100 * time.Second,
		Duration:   300 * time.Second,
		FaultCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if k != legacyRunKeyReplay {
		t.Fatalf("zero-Energy replay-config key moved:\n got %s\nwant %s", k, legacyRunKeyReplay)
	}

	ko, err := OptionsKey("4", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ko != legacyOptionsKey4 {
		t.Fatalf("zero-Energy options key moved:\n got %s\nwant %s", ko, legacyOptionsKey4)
	}
}

// TestConfigKeyEnergyPerturbation checks every energy selection lands in its
// own key: the three models differ from the legacy key and from each other,
// and parameter overrides within a model perturb the key too.
func TestConfigKeyEnergyPerturbation(t *testing.T) {
	keys := map[string]string{"legacy": legacyRunKeySeed7}
	for name, spec := range map[string]energy.Spec{
		"paper":        {Model: energy.ModelPaper},
		"radio":        {Model: energy.ModelRadio},
		"radio-tuned":  {Model: energy.ModelRadio, EElec: 100e-9},
		"harvesting":   {Model: energy.ModelHarvesting},
		"harvest-slow": {Model: energy.ModelHarvesting, PeriodS: 60},
		"big-packets":  {PacketBits: 16384},
	} {
		k, err := ConfigKey(RunConfig{Scenario: scenario.Params{Seed: 7}, Energy: spec})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for other, ko := range keys {
			if k == ko {
				t.Errorf("energy spec %q collides with %q", name, other)
			}
		}
		keys[name] = k
	}

	if _, err := ConfigKey(RunConfig{Scenario: scenario.Params{Seed: 7}, Energy: energy.Spec{Model: "nope"}}); err == nil {
		t.Error("invalid energy spec produced a key")
	}
	// A custom in-process cost model has no canonical form; keying it would
	// collide with the default-model entry for the same scenario.
	if _, err := ConfigKey(RunConfig{
		Scenario: scenario.Params{Seed: 7, Energy: energy.DefaultRadioModel()},
	}); err == nil {
		t.Error("custom Scenario.Energy produced a key")
	}

	ko, err := OptionsKey("4", Options{Energy: energy.Spec{Model: energy.ModelRadio}})
	if err != nil {
		t.Fatal(err)
	}
	if ko == legacyOptionsKey4 {
		t.Error("Options.Energy not part of the options key")
	}
}
