package experiment

import (
	"context"
	"sync"
)

// RunHandle is an in-flight simulation started with StartRun: a cancellable
// run whose progress can be observed while it executes and whose Result is
// collected when it completes. It is the serving layer's unit of work —
// refer-simd holds one handle per running submission.
type RunHandle struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	progress RunProgress
	result   Result
	err      error
}

// StartRun launches cfg on its own goroutine and returns immediately with a
// handle. onProgress, when non-nil, is invoked serially from the run's
// goroutine after every executed DES batch (thousands of times per second
// of wall clock for a busy run — throttle in the callback if relaying).
// Cancel aborts the run promptly; Result then returns ctx.Err().
func StartRun(ctx context.Context, cfg RunConfig, onProgress func(RunProgress)) *RunHandle {
	ctx, cancel := context.WithCancel(ctx)
	h := &RunHandle{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		res, err := runObserved(ctx, cfg, func(p RunProgress) {
			h.mu.Lock()
			h.progress = p
			h.mu.Unlock()
			if onProgress != nil {
				onProgress(p)
			}
		})
		h.mu.Lock()
		h.result, h.err = res, err
		h.mu.Unlock()
		close(h.done)
	}()
	return h
}

// Cancel aborts the run; the in-flight simulation stops within one DES
// batch. Safe to call repeatedly and after completion.
func (h *RunHandle) Cancel() { h.cancel() }

// Done returns a channel closed when the run has finished (successfully,
// with an error, or cancelled).
func (h *RunHandle) Done() <-chan struct{} { return h.done }

// Progress returns the latest observed progress snapshot.
func (h *RunHandle) Progress() RunProgress {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.progress
}

// Result blocks until the run finishes and returns its measurements; a
// cancelled run returns the context's error.
func (h *RunHandle) Result() (Result, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.result, h.err
}
