package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"refer/internal/scenario"
)

// TestDrainParallelismInvariance pins the batched-drain contract at the
// experiment level: a run is byte-identical — Result, energy ledgers, every
// deterministic RunStats counter — at every DrainParallelism setting. Only
// StripWallClock's host fields (wall clock, shard and drain bookkeeping)
// may differ. Run under -race -count=2 by CI's determinism job.
func TestDrainParallelismInvariance(t *testing.T) {
	base := RunConfig{
		Scenario:   scenario.Params{Seed: 3, Sensors: 300, MaxSpeed: 2},
		Warmup:     2 * time.Second,
		Duration:   8 * time.Second,
		FaultCount: 5,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.Stats.StripWallClock()
	ref.Stats = RunStats{}
	for _, dp := range []int{1, 2, 8} {
		cfg := base
		cfg.DrainParallelism = dp
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("DrainParallelism %d: %v", dp, err)
		}
		if dp <= 1 && res.Stats.DrainBatches != 0 {
			t.Fatalf("DrainParallelism %d: serial path reported %d batches", dp, res.Stats.DrainBatches)
		}
		gotStats := res.Stats.StripWallClock()
		res.Stats = RunStats{}
		if res != ref {
			t.Fatalf("DrainParallelism %d: Result diverged:\n%+v\nvs serial\n%+v", dp, res, ref)
		}
		if gotStats != refStats {
			t.Fatalf("DrainParallelism %d: stats diverged:\n%+v\nvs serial\n%+v", dp, gotStats, refStats)
		}
	}
}

// TestDrainBatchedWorkloadInvariance drives a scenario that actually
// batches — a dense mobile deployment whose field spans several claim tiles
// with heavy burst traffic, the S5 shape shrunk to test size — and pins
// both byte identity against the serial run and that the parallel machinery
// genuinely engaged (batches formed, warms consumed).
func TestDrainBatchedWorkloadInvariance(t *testing.T) {
	base := RunConfig{
		Scenario:      scenario.Params{Seed: 7, Sensors: 2500, MaxSpeed: 5, ActuatorGrid: 6},
		Warmup:        2 * time.Second,
		Duration:      4 * time.Second,
		Sources:       32,
		BurstInterval: 500 * time.Millisecond,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.Stats.StripWallClock()
	ref.Stats = RunStats{}
	cfg := base
	cfg.DrainParallelism = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DrainBatches == 0 || res.Stats.DrainBatchedEvents == 0 {
		t.Fatalf("parallel machinery never engaged: %+v", res.Stats)
	}
	if res.Stats.DrainWarmHits == 0 {
		t.Fatal("no warmed neighbor cache was consumed at commit time")
	}
	gotStats := res.Stats.StripWallClock()
	res.Stats = RunStats{}
	if res != ref {
		t.Fatalf("Result diverged:\n%+v\nvs serial\n%+v", res, ref)
	}
	if gotStats != refStats {
		t.Fatalf("stats diverged:\n%+v\nvs serial\n%+v", gotStats, refStats)
	}
}

// TestDrainFigureInvariance pins figure-level byte identity: a
// representative paper figure and a shrunken growth point produce identical
// CSVs at drain parallelism 1 and 4.
func TestDrainFigureInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are not -short tests")
	}
	base := Options{
		Seeds:            []int64{1, 2},
		Warmup:           2 * time.Second,
		Duration:         5 * time.Second,
		Sensors:          140,
		PacketsPerSource: 2,
	}
	for _, id := range []string{"4", "S1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec, ok := FigureByID(id)
			if !ok {
				t.Fatalf("unknown figure %q", id)
			}
			ser, par := base, base
			if id == "S1" { // shrink the growth grid to test scale
				ser.Sensors, par.Sensors = 0, 0
				ser.Seeds, par.Seeds = []int64{1}, []int64{1}
			}
			ser.DrainParallelism = 1
			par.DrainParallelism = 4
			f1, err := spec.Build(context.Background(), ser)
			if err != nil {
				t.Fatalf("drain-parallelism 1: %v", err)
			}
			f4, err := spec.Build(context.Background(), par)
			if err != nil {
				t.Fatalf("drain-parallelism 4: %v", err)
			}
			if f1.CSV() != f4.CSV() {
				t.Errorf("figure %s CSV differs between drain-parallelism 1 and 4:\n%s\nvs\n%s",
					id, f1.CSV(), f4.CSV())
			}
		})
	}
}

// TestDrainParallelismValidation pins the edge validation for the drain
// knob on both the run config and the sweep options.
func TestDrainParallelismValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		dp   int
	}{
		{"negative", -1},
		{"absurd", MaxParallelism + 1},
	} {
		t.Run("run-config-"+tc.name, func(t *testing.T) {
			_, err := Run(RunConfig{DrainParallelism: tc.dp,
				Warmup: time.Second, Duration: time.Second})
			if err == nil || !strings.Contains(err.Error(), "RunConfig.DrainParallelism") {
				t.Fatalf("err = %v, want RunConfig.DrainParallelism range error", err)
			}
		})
		t.Run("options-"+tc.name, func(t *testing.T) {
			o := Options{Seeds: []int64{1}, Warmup: time.Second, Duration: time.Second,
				Sensors: 120, Systems: []string{SystemREFER}, DrainParallelism: tc.dp}
			_, err := Fig4(o)
			if err == nil || !strings.Contains(err.Error(), "Options.DrainParallelism") {
				t.Fatalf("err = %v, want Options.DrainParallelism range error", err)
			}
		})
	}
}

// TestConfigKeyExcludesDrainParallelism pins the cache contract: batched
// and serial drain submissions of one config content-address identically.
func TestConfigKeyExcludesDrainParallelism(t *testing.T) {
	base := RunConfig{Warmup: time.Second, Duration: time.Second}
	k0, err := ConfigKey(base)
	if err != nil {
		t.Fatal(err)
	}
	drained := base
	drained.DrainParallelism = 8
	k8, err := ConfigKey(drained)
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k8 {
		t.Fatalf("ConfigKey differs across DrainParallelism: %s vs %s", k0, k8)
	}
}
