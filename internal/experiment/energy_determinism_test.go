package experiment

import (
	"testing"
	"time"

	"refer/internal/energy"
)

// TestReplayHarvestingSleep pins replay determinism for the busiest energy
// configuration: battery-constrained sensors priced by the radio model
// under the harvesting wrapper, so depletion, revival, harvest credits and
// staggered sleep windows all fire inside the run. Run under -race -count=2
// in CI like the other Replay tests.
func TestReplayHarvestingSleep(t *testing.T) {
	cfg := replayConfig(SystemREFER)
	cfg.Scenario.SensorBattery = 0.05
	cfg.Energy = energy.Spec{Model: energy.ModelHarvesting}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	r1.Stats = r1.Stats.StripWallClock()
	r2.Stats = r2.Stats.StripWallClock()
	if r1 != r2 {
		t.Fatalf("harvesting replay diverged:\n first = %+v\nsecond = %+v", r1, r2)
	}
	if r1.Stats.EnergyHarvested == 0 {
		t.Fatal("degenerate run: nothing harvested")
	}
	if r1.Stats.NodeDeaths == 0 || r1.Stats.NodeRevivals == 0 {
		t.Fatalf("degenerate run: deaths=%d revivals=%d, want both > 0",
			r1.Stats.NodeDeaths, r1.Stats.NodeRevivals)
	}
	if r1.Created == 0 {
		t.Fatal("degenerate run: no packets created")
	}
}

// TestRadioModelRunMatchesFlatTopology checks the energy model is a pure
// pricing layer when batteries are unconstrained: the same seeded run under
// the radio model delivers exactly the packets the flat model does — only
// the Joules move.
func TestRadioModelRunMatchesFlatTopology(t *testing.T) {
	cfg := replayConfig(SystemREFER)
	flat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Energy = energy.Spec{Model: energy.ModelRadio}
	radio, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if radio.Delivered != flat.Delivered || radio.Created != flat.Created ||
		radio.MeanDelay != flat.MeanDelay {
		t.Fatalf("radio pricing changed behavior:\n flat = %+v\nradio = %+v", flat, radio)
	}
	if radio.CommEnergy == flat.CommEnergy || radio.CommEnergy <= 0 {
		t.Fatalf("radio pricing did not move the ledger: flat %v, radio %v",
			flat.CommEnergy, radio.CommEnergy)
	}
}

// TestLifetimeFigureQuick smoke-tests the L-family sweep end to end at tiny
// scale: every system produces a curve, deaths happen at the starved end,
// and censoring keeps undying points at the window length.
func TestLifetimeFigureQuick(t *testing.T) {
	fig, err := FigL1(Options{
		Seeds:    []int64{1},
		Warmup:   20 * time.Second,
		Duration: 60 * time.Second,
		Sensors:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(AllSystems()) {
		t.Fatalf("%d series, want %d", len(fig.Series), len(AllSystems()))
	}
	window := (20 + 60 + 2) * time.Second // warmup + duration + drain
	for _, s := range fig.Series {
		if len(s.Points) != len(lifetimeXs) {
			t.Fatalf("%s: %d points, want %d", s.System, len(s.Points), len(lifetimeXs))
		}
		for _, p := range s.Points {
			if p.Y.Mean < 0 || p.Y.Mean > window.Seconds() {
				t.Fatalf("%s: first-death %v s outside [0, %v]", s.System, p.Y.Mean, window.Seconds())
			}
		}
	}
}
