package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"refer/internal/chaos"
	"refer/internal/scenario"
	"refer/internal/trace"
)

// TestConfigKeyCanonicalization pins the content-address contract: spelling
// out the defaults hashes identically to omitting them, and every
// outcome-relevant field perturbs the key.
func TestConfigKeyCanonicalization(t *testing.T) {
	base := RunConfig{Scenario: scenario.Params{Seed: 7}}
	explicit := RunConfig{
		System: SystemREFER,
		Scenario: scenario.Params{
			Seed: 7, Sensors: 200, Side: 500, SensorRange: 100,
			ActuatorRange: 250, AnchorRadius: 140,
		},
		Warmup:           100 * time.Second,
		Duration:         1000 * time.Second,
		BurstInterval:    10 * time.Second,
		Sources:          5,
		PacketsPerSource: 6,
		PacketSpacing:    20 * time.Millisecond,
		FaultRotation:    10 * time.Second,
		QoSDeadline:      600 * time.Millisecond,
	}
	k1, err := ConfigKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ConfigKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("defaulted and explicit configs hash differently:\n%s\n%s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex SHA-256", k1)
	}

	perturb := map[string]RunConfig{
		"seed":    {Scenario: scenario.Params{Seed: 8}},
		"system":  {System: SystemDaTree, Scenario: scenario.Params{Seed: 7}},
		"sensors": {Scenario: scenario.Params{Seed: 7, Sensors: 100}},
		"faults":  {Scenario: scenario.Params{Seed: 7}, FaultCount: 4},
		"window":  {Scenario: scenario.Params{Seed: 7}, Duration: 500 * time.Second},
		"trace":   {Scenario: scenario.Params{Seed: 7}, Trace: trace.NewRecorder(1)},
		"chaos": {Scenario: scenario.Params{Seed: 7}, Chaos: &chaos.Schedule{
			Seed:   1,
			Events: []chaos.Event{{Kind: chaos.Crash, At: chaos.Duration(time.Second)}},
		}},
	}
	for name, cfg := range perturb {
		k, err := ConfigKey(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("perturbing %s did not change the key", name)
		}
	}
}

func TestConfigKeyRejectsUnknownSystem(t *testing.T) {
	if _, err := ConfigKey(RunConfig{System: "not-a-system"}); err == nil {
		t.Fatal("no error for unknown system")
	}
}

func TestOptionsKey(t *testing.T) {
	k1, err := OptionsKey("4", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults spelled out → same key; Parallelism and Progress excluded.
	k2, err := OptionsKey("4", Options{
		Seeds:       []int64{1, 2, 3, 4, 5},
		Sensors:     200,
		Systems:     AllSystems(),
		Parallelism: 7,
		Progress:    func(ProgressEvent) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("defaulted and explicit options hash differently")
	}
	k3, err := OptionsKey("5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("figure ID not part of the key")
	}
	k4, err := OptionsKey("4", Options{Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("seed set not part of the key")
	}
	if _, err := OptionsKey("nope", Options{}); err == nil {
		t.Fatal("no error for unknown figure")
	}
}

// TestKnownSystems pins the system registry helpers against NewSystem.
func TestKnownSystems(t *testing.T) {
	names := KnownSystems()
	if len(names) == 0 {
		t.Fatal("no known systems")
	}
	for _, name := range names {
		if !KnownSystem(name) {
			t.Errorf("KnownSystem(%q) = false", name)
		}
		w := scenario.Build(scenario.Params{Seed: 1, Sensors: 10})
		if _, err := NewSystem(name, w); err != nil {
			t.Errorf("NewSystem(%q): %v", name, err)
		}
	}
	if KnownSystem("not-a-system") {
		t.Error(`KnownSystem("not-a-system") = true`)
	}
	for _, name := range AllSystems() {
		if !KnownSystem(name) {
			t.Errorf("evaluated system %q missing from registry", name)
		}
	}
}

// TestStartRunHandle exercises the run-handle plumbing: progress snapshots
// advance, the result matches a plain RunContext of the same config, and
// cancellation aborts promptly with the context error.
func TestStartRunHandle(t *testing.T) {
	cfg := RunConfig{
		Scenario: scenario.Params{Seed: 1, Sensors: 120},
		Warmup:   5 * time.Second,
		Duration: 10 * time.Second,
	}
	var snaps []RunProgress
	h := StartRun(context.Background(), cfg, func(p RunProgress) { snaps = append(snaps, p) })
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	last := snaps[len(snaps)-1]
	if last.SimTime <= 0 || last.DESEvents == 0 || last.SimEnd != 17*time.Second {
		t.Fatalf("final snapshot: %+v", last)
	}
	if f := last.Fraction(); f <= 0 || f > 1 {
		t.Fatalf("fraction = %v", f)
	}
	if got := h.Progress(); got != last {
		t.Fatalf("Progress() = %+v, want last snapshot %+v", got, last)
	}
	// Replay determinism: the handle's result matches a direct run.
	direct, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats = res.Stats.StripWallClock()
	direct.Stats = direct.Stats.StripWallClock()
	if res != direct {
		t.Fatalf("handle result diverged from direct run:\n%+v\n%+v", res, direct)
	}
}

func TestStartRunCancel(t *testing.T) {
	cfg := RunConfig{
		Scenario: scenario.Params{Seed: 1, Sensors: 200},
		Warmup:   500 * time.Second,
		Duration: 5000 * time.Second,
	}
	started := make(chan struct{})
	var once bool
	h := StartRun(context.Background(), cfg, func(RunProgress) {
		if !once {
			once = true
			close(started)
		}
	})
	<-started
	h.Cancel()
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not finish")
	}
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
