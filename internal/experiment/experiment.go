// Package experiment reproduces the paper's evaluation (Section IV): it
// builds the four systems on identical deployments, drives the traffic
// pattern (every 10 s, 5 random sources send a data burst to their nearby
// actuators), rotates faulty-node sets, applies the 0.6 s QoS deadline, and
// regenerates each of Figures 4–11 as a table of mean ± 95 % CI series.
package experiment

import (
	"context"
	"fmt"
	"sort"

	"time"

	"refer/internal/chaos"
	"refer/internal/core"
	"refer/internal/datree"
	"refer/internal/ddear"
	"refer/internal/energy"
	"refer/internal/kautzoverlay"
	"refer/internal/metrics"
	"refer/internal/recovery"
	"refer/internal/scenario"
	"refer/internal/trace"
	"refer/internal/world"
)

// System is the contract every evaluated WSAN system implements.
type System interface {
	// Name returns the display name.
	Name() string
	// Build constructs the system's topology on its world, charging the
	// construction energy ledger.
	Build() error
	// Inject routes one sensed-data packet from src to a nearby actuator;
	// done fires exactly once with the outcome.
	Inject(src world.NodeID, done func(ok bool))
}

// System names accepted by NewSystem.
const (
	SystemREFER        = "REFER"
	SystemDaTree       = "DaTree"
	SystemDDEAR        = "D-DEAR"
	SystemKautzOverlay = "Kautz-overlay"

	// Ablated REFER variants (see the ablation study in EXPERIMENTS.md).
	SystemREFERNoFailover    = "REFER/no-failover"
	SystemREFERNoMaintenance = "REFER/no-maintenance"
	// SystemREFERDirectRoutes recomputes every Theorem 3.8 route set from
	// the IDs instead of serving it from the shared precomputed route
	// table. Routing behavior is identical to SystemREFER; benchmark knob
	// for quantifying the table's end-to-end saving.
	SystemREFERDirectRoutes = "REFER/direct-routes"
	// SystemREFERLinearScan reverts every cell lookup to the pre-index
	// linear scans (core.Config.DisableCellIndex): the ablation arm of the
	// scale study. Results are identical to SystemREFER; only the
	// maintenance work counters and wall clock differ.
	SystemREFERLinearScan = "REFER/linear-scan"

	// SystemREFERK33 uses K(3,3) cells (d = 3: three disjoint paths per
	// pair) via the generalized embedding — the paper's future work.
	// Needs roughly 300+ sensors for the 33 overlay sensors per cell.
	SystemREFERK33 = "REFER/K(3,3)"

	// SystemREFERRecovery is REFER with the self-healing actuator-recovery
	// protocols attached (internal/recovery + core/recover.go): corner
	// re-election, cell merge and CAN zone takeover. Selecting this system
	// with a zero RunConfig.Recovery enables recovery at its defaults; an
	// explicit spec overrides them. The plain SystemREFER never attaches
	// recovery unless RunConfig.Recovery explicitly enables it.
	SystemREFERRecovery = "REFER/recovery"
)

// AllSystems lists the four evaluated systems in the paper's order.
func AllSystems() []string {
	return []string{SystemREFER, SystemDaTree, SystemDDEAR, SystemKautzOverlay}
}

// systemBuilders maps every accepted system name to its constructor; the
// single source of truth behind NewSystem and KnownSystem.
var systemBuilders = map[string]func(w *world.World) System{
	SystemREFER: func(w *world.World) System { return core.New(w, core.DefaultConfig()) },
	SystemREFERNoFailover: func(w *world.World) System {
		cfg := core.DefaultConfig()
		cfg.DisableFailover = true
		return core.New(w, cfg)
	},
	SystemREFERNoMaintenance: func(w *world.World) System {
		cfg := core.DefaultConfig()
		cfg.DisableMaintenance = true
		return core.New(w, cfg)
	},
	SystemREFERDirectRoutes: func(w *world.World) System {
		cfg := core.DefaultConfig()
		cfg.DisableRouteTable = true
		return core.New(w, cfg)
	},
	SystemREFERLinearScan: func(w *world.World) System {
		cfg := core.DefaultConfig()
		cfg.DisableCellIndex = true
		return core.New(w, cfg)
	},
	SystemREFERK33: func(w *world.World) System {
		cfg := core.DefaultConfig()
		cfg.Degree = 3
		return core.New(w, cfg)
	},
	// The recovery variant builds a stock REFER system; the recovery manager
	// itself is attached by runObserved after Build (it needs the run's
	// effective spec, not just the system name).
	SystemREFERRecovery: func(w *world.World) System { return core.New(w, core.DefaultConfig()) },
	SystemDaTree:        func(w *world.World) System { return datree.New(w, datree.DefaultConfig()) },
	SystemDDEAR:         func(w *world.World) System { return ddear.New(w, ddear.DefaultConfig()) },
	SystemKautzOverlay:  func(w *world.World) System { return kautzoverlay.New(w, kautzoverlay.DefaultConfig()) },
}

// NewSystem constructs the named (unbuilt) system on w.
func NewSystem(name string, w *world.World) (System, error) {
	build, ok := systemBuilders[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown system %q", name)
	}
	return build(w), nil
}

// KnownSystem reports whether name is accepted by NewSystem — every
// evaluated system, ablated variant and extension. Serving layers use it to
// validate submissions before committing a queue slot.
func KnownSystem(name string) bool {
	_, ok := systemBuilders[name]
	return ok
}

// KnownSystems lists every name accepted by NewSystem in sorted order.
func KnownSystems() []string {
	names := make([]string, 0, len(systemBuilders))
	for name := range systemBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunConfig describes one simulation run.
type RunConfig struct {
	// System selects the protocol under test (see NewSystem).
	System string
	// Scenario is the deployment.
	Scenario scenario.Params
	// Warmup precedes the measurement window (paper: 100 s).
	Warmup time.Duration
	// Duration is the measurement window length (paper: 1000 s).
	Duration time.Duration
	// BurstInterval separates traffic bursts (paper: 10 s).
	BurstInterval time.Duration
	// Sources is the number of random source sensors per burst (paper: 5).
	Sources int
	// PacketsPerSource is the burst size in packets per source — the
	// scaled stand-in for the paper's 1 Mbps data stream (see DESIGN.md).
	PacketsPerSource int
	// PacketSpacing separates a burst's packets at the source.
	PacketSpacing time.Duration
	// FaultCount sensors are failed at any time, re-drawn every
	// FaultRotation with the previous set recovered (paper Section IV-B).
	FaultCount    int
	FaultRotation time.Duration
	// QoSDeadline is the real-time cutoff (paper: 0.6 s).
	QoSDeadline time.Duration
	// Trace, when non-nil, attaches a packet-trace recorder to the run's
	// world: the traced systems (REFER and the Kautz overlay) record every
	// packet's lifecycle (inject → hop → failover-switch → drop/deliver)
	// and the world feeds radio counters. The recorder must be private to
	// this run — it is unsynchronized by design. Nil (the default) leaves
	// the forwarding hot path untouched.
	Trace *trace.Recorder
	// Chaos, when non-nil, compiles the fault schedule onto the run's event
	// queue (see internal/chaos). The injector draws from its own seeded
	// stream, so a nil schedule leaves the run byte-identical to builds
	// without the subsystem. Applied-fault counters land in Stats.Chaos.
	Chaos *chaos.Schedule
	// Energy selects the per-packet cost model (see energy.Spec): the
	// paper's flat constants (the zero value, default), the first-order
	// distance-dependent radio model, or a harvesting wrapper with
	// duty-cycled sleep. The zero value canonicalizes to nothing, so
	// pre-existing ConfigKeys are unchanged. Ignored when
	// Scenario.Energy carries an explicit model.
	Energy energy.Spec
	// RunParallelism shards the per-round bulk maintenance phases of a
	// single REFER run across this many worker goroutines
	// (core.Config.RunParallelism); 0 or 1 keeps the sequential path and
	// non-REFER systems ignore it. Results are byte-identical at every
	// setting, so — exactly like the sweep-level Options.Parallelism — the
	// knob is excluded from ConfigKey. Values outside [0, MaxParallelism]
	// are a config error.
	RunParallelism int
	// DrainParallelism sets the DES batched-drain worker count for the run
	// (world.SetDrainParallelism): conflict-free radio completions are
	// batched and their neighbor caches warmed in parallel, while every
	// decision still commits serially in canonical order. 0 or 1 keeps the
	// classic serial drain. Results are byte-identical at every setting, so
	// — exactly like RunParallelism — the knob is excluded from ConfigKey.
	// Values outside [0, MaxParallelism] are a config error.
	DrainParallelism int
	// Recovery configures the self-healing actuator-recovery protocols
	// (see recovery.Spec): corner re-election, cell merge and CAN zone
	// takeover, driven by a periodic detection sweep on the DES. The zero
	// value attaches nothing — zero extra events, zero RNG draws, and it
	// canonicalizes to nothing so pre-existing ConfigKeys are unchanged.
	// A zero spec on SystemREFERRecovery enables recovery at its defaults.
	// Only REFER variants honor the spec; other systems ignore it (but it
	// still keys the config — a run that requested recovery is a different
	// experiment even where the knob is inert).
	Recovery recovery.Spec
}

// withDefaults fills zero fields with the paper's parameters.
func (c RunConfig) withDefaults() RunConfig {
	if c.System == "" {
		c.System = SystemREFER
	}
	if c.Warmup == 0 {
		c.Warmup = 100 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 1000 * time.Second
	}
	if c.BurstInterval == 0 {
		c.BurstInterval = 10 * time.Second
	}
	if c.Sources == 0 {
		c.Sources = 5
	}
	if c.PacketsPerSource == 0 {
		c.PacketsPerSource = 6
	}
	if c.PacketSpacing == 0 {
		c.PacketSpacing = 20 * time.Millisecond
	}
	if c.FaultRotation == 0 {
		c.FaultRotation = 10 * time.Second
	}
	if c.QoSDeadline == 0 {
		c.QoSDeadline = metrics.DefaultQoSDeadline
	}
	return c
}

// Result holds one run's measurements.
type Result struct {
	System string
	// Throughput is QoS-guaranteed packets per second.
	Throughput float64
	// MeanQoSDelay is the mean latency of QoS-guaranteed deliveries.
	MeanQoSDelay time.Duration
	// MeanDelay is the mean latency over all deliveries.
	MeanDelay time.Duration
	// CommEnergy and ConstructionEnergy are the two ledgers in Joules.
	CommEnergy         float64
	ConstructionEnergy float64
	// Packet counters within the measurement window.
	Created, Delivered, QoS, Dropped int
	// Stats is the run's observability block: host timing, DES and
	// protocol counters, and (when tracing was on) trace event counts.
	Stats RunStats
}

// TotalEnergy returns construction plus communication energy.
func (r Result) TotalEnergy() float64 { return r.CommEnergy + r.ConstructionEnergy }

// RunStats is the per-run observability block: how the simulation ran, as
// opposed to what it measured. Every field except the host-timing pair
// (WallClock, EventsPerSec) is deterministic per seed; replay comparisons
// strip those two with StripWallClock.
type RunStats struct {
	// WallClock is the host time the run took; EventsPerSec is the DES
	// event rate over it. Both vary between replays of the same seed.
	WallClock    time.Duration `json:"wall_clock_ns"`
	EventsPerSec float64       `json:"events_per_sec"`
	// SimTime is the final virtual clock (warmup + duration + grace).
	SimTime time.Duration `json:"sim_time_ns"`
	// DESEvents is the number of discrete events the scheduler executed.
	DESEvents uint64 `json:"des_events"`
	// RouteTableHits and RouteTableMisses count forwarding decisions whose
	// Theorem 3.8 route set was served from the precomputed route table vs
	// computed directly (REFER and Kautz-overlay runs; zero otherwise).
	RouteTableHits   int `json:"route_table_hits"`
	RouteTableMisses int `json:"route_table_misses"`
	// FailoverSwitches counts Theorem 3.8 alternate-path decisions.
	FailoverSwitches int `json:"failover_switches"`
	// GridRebuilds counts full spatial-index rebuilds; NeighborRebuilds and
	// NeighborHits count per-node neighborhood recomputations vs queries
	// served from the epoch cache. All three are deterministic per seed and
	// tell a perf reader how hard the world's spatial layer worked.
	GridRebuilds     uint64 `json:"grid_rebuilds"`
	NeighborRebuilds uint64 `json:"neighbor_rebuilds"`
	NeighborHits     uint64 `json:"neighbor_hits"`
	// CommEnergy and ConstructionEnergy repeat the Result ledgers (Joules)
	// so the stats block is self-contained for machine consumers.
	CommEnergy         float64 `json:"comm_energy_j"`
	ConstructionEnergy float64 `json:"construction_energy_j"`
	// Trace holds the exact packet-lifecycle and radio counters when a
	// recorder was attached; zero otherwise.
	Trace trace.Counts `json:"trace"`
	// Chaos holds the applied-fault counters when a chaos schedule was
	// attached; zero otherwise.
	Chaos chaos.Stats `json:"chaos"`
	// FaultInjections/FaultRecoveries count node down/up transitions from
	// every source (RunConfig.FaultCount rotation and chaos schedules);
	// LostSends counts unicasts dropped by the link-loss hook and
	// EnergyDrained sums brownout Joules.
	FaultInjections uint64  `json:"fault_injections"`
	FaultRecoveries uint64  `json:"fault_recoveries"`
	LostSends       uint64  `json:"lost_sends"`
	EnergyDrained   float64 `json:"energy_drained_j"`
	// Lifetime markers under battery-constrained scenarios: FirstNodeDeath
	// and HalfNodesDead latch the virtual times the first constrained node
	// depleted and at which half of them were dead at once (-1 = never —
	// the paper's evaluation runs unconstrained, so both are -1 there).
	// NodeDeaths counts depletion transitions, NodeRevivals
	// harvesting-driven recoveries, and EnergyHarvested sums the banked
	// harvesting income in Joules.
	FirstNodeDeath  time.Duration `json:"first_node_death_ns"`
	HalfNodesDead   time.Duration `json:"half_nodes_dead_ns"`
	NodeDeaths      uint64        `json:"node_deaths"`
	NodeRevivals    uint64        `json:"node_revivals"`
	EnergyHarvested float64       `json:"energy_harvested_j"`
	// MaintainChecks counts cell containment/distance predicate evaluations
	// spent homing sensors (REFER runs; zero otherwise) — the membership
	// maintenance cost the scale figure plots. Rehomes counts sensors whose
	// cell actually changed. Both are deterministic per seed, but
	// MaintainChecks intentionally differs between the indexed and
	// linear-scan REFER variants — replay comparisons across those two
	// variants should strip it alongside the wall-clock fields.
	MaintainChecks int `json:"maintain_checks"`
	Rehomes        int `json:"rehomes"`
	// ShardRounds counts maintenance rounds that ran the sharded path
	// (RunConfig.RunParallelism > 1; zero for sequential or non-REFER runs),
	// and the three phase timers accumulate host nanoseconds per sharded
	// phase: parallel membership re-homing, parallel per-cell precompute,
	// serial deterministic merge. The timers are host-execution detail like
	// WallClock, and ShardRounds intentionally differs across RunParallelism
	// settings of the same config, so StripWallClock zeroes all four —
	// replay comparisons across shard counts stay bitwise.
	ShardRounds       int   `json:"shard_rounds"`
	MembershipPhaseNs int64 `json:"membership_phase_ns"`
	CellPhaseNs       int64 `json:"cell_phase_ns"`
	MergeNs           int64 `json:"merge_ns"`
	// Batched-drain observability (RunConfig.DrainParallelism > 1; all zero
	// on the serial path): batches formed, events committed through them vs
	// serial-stepped, prepares re-executed after a read-set invalidation,
	// host nanoseconds spent in parallel prepare phases, and the neighbor
	// cache warms performed/consumed. Like ShardRounds these intentionally
	// differ across DrainParallelism settings of the same config, so
	// StripWallClock zeroes all seven and replay comparisons across drain
	// settings stay bitwise.
	DrainBatches       uint64 `json:"drain_batches"`
	DrainBatchedEvents uint64 `json:"drain_batched_events"`
	DrainSerialEvents  uint64 `json:"drain_serial_events"`
	DrainReexecs       uint64 `json:"drain_reexecs"`
	DrainPrepNs        int64  `json:"drain_prep_ns"`
	DrainWarms         uint64 `json:"drain_warms"`
	DrainWarmHits      uint64 `json:"drain_warm_hits"`
	// Recovery holds the self-healing counters when a recovery manager was
	// attached (detection sweeps, re-elections, merges, takeovers and the
	// accumulated virtual detection→repair latency); zero otherwise. All
	// fields are deterministic per seed — latency is virtual time — so
	// StripWallClock leaves them alone and replay comparisons include them.
	Recovery recovery.Stats `json:"recovery"`
}

// StripWallClock returns the stats with the host-timing and host-execution
// fields zeroed — everything left is a deterministic function of the
// RunConfig (independent even of RunParallelism), so replay tests can
// compare Results for bitwise equality.
func (s RunStats) StripWallClock() RunStats {
	s.WallClock = 0
	s.EventsPerSec = 0
	s.ShardRounds = 0
	s.MembershipPhaseNs = 0
	s.CellPhaseNs = 0
	s.MergeNs = 0
	s.DrainBatches = 0
	s.DrainBatchedEvents = 0
	s.DrainSerialEvents = 0
	s.DrainReexecs = 0
	s.DrainPrepNs = 0
	s.DrainWarms = 0
	s.DrainWarmHits = 0
	return s
}

// Run executes one simulation and returns its measurements.
func Run(cfg RunConfig) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// desBatch is how many DES events RunContext executes between context
// checks. Large enough that the per-batch overhead is noise, small enough
// that cancellation lands within microseconds of host time.
const desBatch = 8192

// MaxParallelism bounds every parallelism knob (Options.Parallelism,
// Options.RunParallelism, RunConfig.RunParallelism and the simd wire
// fields): values above it are configuration mistakes, not machines, and
// are rejected at the edge instead of silently spawning that many
// goroutines or falling back to GOMAXPROCS.
const MaxParallelism = 1024

// validParallelism rejects out-of-range parallelism knob values with a
// uniform error naming the offending knob.
func validParallelism(name string, v int) error {
	if v < 0 || v > MaxParallelism {
		return fmt.Errorf("experiment: %s must be in [0, %d], got %d", name, MaxParallelism, v)
	}
	return nil
}

// RunContext is Run with cancellation: the DES drive loop executes events
// in batches and checks ctx between batches, so a cancelled or expired
// context aborts the run promptly with ctx.Err().
func RunContext(ctx context.Context, cfg RunConfig) (Result, error) {
	return runObserved(ctx, cfg, nil)
}

// RunProgress snapshots an in-flight run's virtual-clock advance; observers
// receive one after every executed DES batch (see StartRun).
type RunProgress struct {
	// SimTime is the run's virtual clock; SimEnd is the clock value at
	// which the run completes (warmup + duration + drain grace).
	SimTime time.Duration `json:"sim_time_ns"`
	SimEnd  time.Duration `json:"sim_end_ns"`
	// DESEvents is the number of events executed so far.
	DESEvents uint64 `json:"des_events"`
}

// Fraction returns the run's virtual-clock completion in [0, 1].
func (p RunProgress) Fraction() float64 {
	if p.SimEnd <= 0 {
		return 0
	}
	f := float64(p.SimTime) / float64(p.SimEnd)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// runObserved is RunContext with an optional per-batch progress observer,
// invoked serially from the run's goroutine after every DES batch.
func runObserved(ctx context.Context, cfg RunConfig, observe func(RunProgress)) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := validParallelism("RunConfig.RunParallelism", cfg.RunParallelism); err != nil {
		return Result{}, err
	}
	if err := validParallelism("RunConfig.DrainParallelism", cfg.DrainParallelism); err != nil {
		return Result{}, err
	}
	start := time.Now()
	cfg = cfg.withDefaults()
	model, err := cfg.Energy.Build()
	if err != nil {
		return Result{}, err
	}
	if model != nil && cfg.Scenario.Energy == nil {
		cfg.Scenario.Energy = model
		if cfg.Scenario.PacketBits <= 0 {
			cfg.Scenario.PacketBits = cfg.Energy.PacketBits
		}
	}
	w := scenario.Build(cfg.Scenario)
	w.SetTracer(cfg.Trace)
	sys, err := NewSystem(cfg.System, w)
	if err != nil {
		return Result{}, err
	}
	if cs, ok := sys.(*core.System); ok {
		cs.SetRunParallelism(cfg.RunParallelism)
	}
	if err := sys.Build(); err != nil {
		return Result{}, fmt.Errorf("experiment: building %s: %w", cfg.System, err)
	}
	// Self-healing recovery: SystemREFERRecovery with a zero spec runs the
	// defaults; any REFER variant honors an explicitly enabled spec. A zero
	// spec elsewhere attaches nothing — no events, no RNG draws — so those
	// runs replay byte-identically to builds without the subsystem.
	recSpec := cfg.Recovery
	if recSpec.IsZero() && cfg.System == SystemREFERRecovery {
		recSpec = recovery.Spec{Enabled: true}
	}
	if err := recSpec.Validate(); err != nil {
		return Result{}, err
	}
	var recMgr *recovery.Manager
	if recSpec.Enabled {
		if cs, ok := sys.(*core.System); ok {
			recMgr, err = recovery.Attach(w, cs, recSpec)
			if err != nil {
				return Result{}, err
			}
		}
	}
	var injector *chaos.Injector
	if cfg.Chaos != nil {
		injector, err = chaos.Attach(w, cfg.Chaos)
		if err != nil {
			return Result{}, err
		}
	}

	collector := metrics.NewCollector(cfg.Warmup, cfg.Warmup+cfg.Duration, cfg.QoSDeadline)
	end := cfg.Warmup + cfg.Duration

	sensors := scenario.SensorIDs(w)
	if len(sensors) == 0 {
		return Result{}, fmt.Errorf("experiment: no sensors")
	}

	// Traffic: every BurstInterval, Sources random alive sensors each emit
	// PacketsPerSource packets toward their nearby actuator.
	var burst func()
	burst = func() {
		now := w.Now()
		if now > end {
			return
		}
		for i := 0; i < cfg.Sources; i++ {
			src := sensors[w.Rand().Intn(len(sensors))]
			if !w.Node(src).Alive() {
				continue
			}
			for p := 0; p < cfg.PacketsPerSource; p++ {
				delay := time.Duration(p) * cfg.PacketSpacing
				src := src
				// AfterNode declares the injection single-node so the
				// batched drain can pre-warm the source's neighborhood;
				// the injection itself still commits serially.
				if _, err := w.AfterNode(delay, src, func() {
					created := w.Now()
					collector.Created(created)
					sys.Inject(src, func(ok bool) {
						if ok {
							collector.Delivered(created, w.Now())
						} else {
							collector.Dropped(created)
						}
					})
				}); err != nil {
					panic(err)
				}
			}
		}
		if _, err := w.Sched.After(cfg.BurstInterval, burst); err != nil {
			panic(err)
		}
	}
	if _, err := w.Sched.After(cfg.BurstInterval, burst); err != nil {
		return Result{}, err
	}

	// Fault injection: rotate the faulty sensor set.
	if cfg.FaultCount > 0 {
		var current []world.NodeID
		var rotate func()
		rotate = func() {
			if w.Now() > end {
				return
			}
			for _, id := range current {
				w.SetFailed(id, false)
			}
			current = current[:0]
			for len(current) < cfg.FaultCount && len(current) < len(sensors) {
				id := sensors[w.Rand().Intn(len(sensors))]
				already := false
				for _, c := range current {
					if c == id {
						already = true
						break
					}
				}
				if !already {
					current = append(current, id)
					w.SetFailed(id, true)
				}
			}
			if _, err := w.Sched.After(cfg.FaultRotation, rotate); err != nil {
				panic(err)
			}
		}
		if _, err := w.Sched.After(cfg.FaultRotation, rotate); err != nil {
			return Result{}, err
		}
	}

	// Enable the batched drain last, after every AddNode (the scenario
	// build and the overlay construction above): a later AddNode would
	// invalidate the claim-tile geometry and silently turn tagging off.
	w.SetDrainParallelism(cfg.DrainParallelism)

	// Grace period lets in-flight packets from the window's tail arrive.
	// Batched so cancellation is honored mid-simulation.
	simEnd := end + 2*time.Second
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		more := w.Sched.RunUntilLimit(simEnd, desBatch)
		if observe != nil {
			observe(RunProgress{SimTime: w.Now(), SimEnd: simEnd, DESEvents: w.Sched.Fired()})
		}
		if !more {
			break
		}
	}

	ws := w.Stats()
	stats := RunStats{
		WallClock:          time.Since(start),
		SimTime:            w.Now(),
		DESEvents:          w.Sched.Fired(),
		GridRebuilds:       ws.GridRebuilds,
		NeighborRebuilds:   ws.NeighborRebuilds,
		NeighborHits:       ws.NeighborHits,
		CommEnergy:         w.TotalEnergy(energy.Communication),
		ConstructionEnergy: w.TotalEnergy(energy.Construction),
		Trace:              cfg.Trace.Counts(),
		Chaos:              injector.Stats(),
		FaultInjections:    ws.FaultInjections,
		FaultRecoveries:    ws.FaultRecoveries,
		LostSends:          ws.LostSends,
		EnergyDrained:      ws.EnergyDrained,
		FirstNodeDeath:     ws.FirstDeathAt,
		HalfNodesDead:      ws.HalfDeadAt,
		NodeDeaths:         ws.NodeDeaths,
		NodeRevivals:       ws.NodeRevivals,
		EnergyHarvested:    ws.EnergyHarvested,
	}
	if secs := stats.WallClock.Seconds(); secs > 0 {
		stats.EventsPerSec = float64(stats.DESEvents) / secs
	}
	ds := w.Sched.DrainStats()
	stats.DrainBatches = ds.Batches
	stats.DrainBatchedEvents = ds.BatchedEvents
	stats.DrainSerialEvents = ds.SerialEvents
	stats.DrainReexecs = ds.Reexecs
	stats.DrainPrepNs = ds.PrepNs
	stats.DrainWarms = ws.DrainWarms
	stats.DrainWarmHits = ws.DrainWarmHits
	if recMgr != nil {
		stats.Recovery = recMgr.Stats()
	}
	switch impl := sys.(type) {
	case *core.System:
		st := impl.Stats()
		stats.RouteTableHits = st.RouteCacheHits
		stats.RouteTableMisses = st.RouteCacheMisses
		stats.FailoverSwitches = st.FailoverSwitches
		stats.MaintainChecks = st.MaintainChecks
		stats.Rehomes = st.Rehomes
		stats.ShardRounds = st.ShardRounds
		stats.MembershipPhaseNs = st.MembershipPhaseNs
		stats.CellPhaseNs = st.CellPhaseNs
		stats.MergeNs = st.MergeNs
	case *kautzoverlay.System:
		st := impl.Stats()
		stats.RouteTableHits = st.RouteCacheHits
		stats.RouteTableMisses = st.RouteCacheMisses
		stats.FailoverSwitches = st.FailoverSwitches
	}

	created, delivered, qos, dropped := collector.Counts()
	return Result{
		System:             cfg.System,
		Throughput:         collector.Throughput(),
		MeanQoSDelay:       collector.MeanQoSDelay(),
		MeanDelay:          collector.MeanDelay(),
		CommEnergy:         stats.CommEnergy,
		ConstructionEnergy: stats.ConstructionEnergy,
		Created:            created,
		Delivered:          delivered,
		QoS:                qos,
		Dropped:            dropped,
		Stats:              stats,
	}, nil
}
