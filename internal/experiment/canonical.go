package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"refer/internal/chaos"
	"refer/internal/energy"
	"refer/internal/recovery"
	"refer/internal/scenario"
)

// Config canonicalization: two RunConfigs that describe the same simulation
// — whether a field was spelled out or left to default — hash to the same
// key, and the replay-determinism guarantee (same canonical config + seed →
// byte-identical Result modulo host timing) makes that key safe to use as a
// content address for cached results. refer-simd's result cache is keyed on
// exactly this.

// canonicalRun is the serialized form ConfigKey hashes: every field of
// RunConfig that influences the simulation outcome, fully defaulted. Field
// order is fixed by the struct definition, so the JSON encoding is
// deterministic. The Trace recorder pointer is reduced to its presence —
// attaching a recorder changes Stats.Trace counts in the Result, so traced
// and untraced runs must not share a cache entry. RunParallelism and
// DrainParallelism are deliberately excluded, exactly like the sweep-level
// Parallelism in canonicalFigure: results are byte-identical modulo
// StripWallClock at any shard count (pinned by TestRunParallelismInvariance)
// and any drain worker count (pinned by TestDrainParallelismInvariance), so
// sharded, batched-drain and sequential runs of one config all share a
// cache entry.
type canonicalRun struct {
	System           string          `json:"system"`
	Scenario         scenario.Params `json:"scenario"`
	Warmup           time.Duration   `json:"warmup_ns"`
	Duration         time.Duration   `json:"duration_ns"`
	BurstInterval    time.Duration   `json:"burst_interval_ns"`
	Sources          int             `json:"sources"`
	PacketsPerSource int             `json:"packets_per_source"`
	PacketSpacing    time.Duration   `json:"packet_spacing_ns"`
	FaultCount       int             `json:"fault_count"`
	FaultRotation    time.Duration   `json:"fault_rotation_ns"`
	QoSDeadline      time.Duration   `json:"qos_deadline_ns"`
	Traced           bool            `json:"traced"`
	Chaos            *chaos.Schedule `json:"chaos,omitempty"`
	// Energy is appended after the pre-existing fields and omitted when the
	// run uses the default model, so every config written before the energy
	// redesign keeps its key (pinned by TestConfigKeyEnergyStability).
	Energy *energy.Spec `json:"energy,omitempty"`
	// Recovery follows the same append-only rule: omitted for the zero spec,
	// so every config written before the recovery subsystem keeps its key
	// (pinned by TestConfigKeyRecoveryStability).
	Recovery *recovery.Spec `json:"recovery,omitempty"`
}

// ConfigKey returns the content address of a run: the hex SHA-256 of the
// canonicalized (fully defaulted) config, seed included. Identical
// submissions — byte-for-byte or merely semantically, with defaults spelled
// out versus omitted — map to the same key.
func ConfigKey(cfg RunConfig) (string, error) {
	cfg = cfg.withDefaults()
	if !KnownSystem(cfg.System) {
		return "", fmt.Errorf("experiment: unknown system %q", cfg.System)
	}
	if cfg.Scenario.Energy != nil {
		// An arbitrary CostModel value has no canonical serialization, so a
		// key would collide across different models. Describe the model with
		// RunConfig.Energy (an energy.Spec) instead.
		return "", fmt.Errorf("experiment: Scenario.Energy carries a custom cost model with no canonical form; use RunConfig.Energy")
	}
	if err := cfg.Energy.Validate(); err != nil {
		return "", err
	}
	c := canonicalRun{
		System:           cfg.System,
		Scenario:         cfg.Scenario.Defaults(),
		Warmup:           cfg.Warmup,
		Duration:         cfg.Duration,
		BurstInterval:    cfg.BurstInterval,
		Sources:          cfg.Sources,
		PacketsPerSource: cfg.PacketsPerSource,
		PacketSpacing:    cfg.PacketSpacing,
		FaultCount:       cfg.FaultCount,
		FaultRotation:    cfg.FaultRotation,
		QoSDeadline:      cfg.QoSDeadline,
		Traced:           cfg.Trace != nil,
		Chaos:            cfg.Chaos,
	}
	if !cfg.Energy.IsZero() {
		spec := cfg.Energy
		c.Energy = &spec
	}
	if !cfg.Recovery.IsZero() {
		if err := cfg.Recovery.Validate(); err != nil {
			return "", err
		}
		spec := cfg.Recovery
		c.Recovery = &spec
	}
	return hashJSON(c)
}

// canonicalFigure is the serialized form OptionsKey hashes. Parallelism,
// RunParallelism, DrainParallelism and Progress are deliberately excluded:
// figure output is byte-identical at any sweep worker count (pinned by
// TestParallelismInvariance), any in-run shard count (pinned by
// TestRunParallelismInvariance) and any DES drain worker count (pinned by
// TestDrainFigureInvariance), and a progress callback observes a build
// without changing it.
type canonicalFigure struct {
	Figure           string          `json:"figure"`
	Seeds            []int64         `json:"seeds"`
	Warmup           time.Duration   `json:"warmup_ns"`
	Duration         time.Duration   `json:"duration_ns"`
	Sensors          int             `json:"sensors"`
	Systems          []string        `json:"systems"`
	PacketsPerSource int             `json:"packets_per_source"`
	TraceSample      int             `json:"trace_sample"`
	Chaos            *chaos.Schedule `json:"chaos,omitempty"`
	Energy           *energy.Spec    `json:"energy,omitempty"`
	Recovery         *recovery.Spec  `json:"recovery,omitempty"`
}

// OptionsKey returns the content address of a figure build: the hex SHA-256
// of the registry ID plus the canonicalized sweep options.
func OptionsKey(figureID string, o Options) (string, error) {
	if _, ok := FigureByID(figureID); !ok {
		return "", fmt.Errorf("experiment: unknown figure %q", figureID)
	}
	o = o.withDefaults()
	c := canonicalFigure{
		Figure:           figureID,
		Seeds:            o.Seeds,
		Warmup:           o.Warmup,
		Duration:         o.Duration,
		Sensors:          o.Sensors,
		Systems:          o.Systems,
		PacketsPerSource: o.PacketsPerSource,
		TraceSample:      o.TraceSample,
		Chaos:            o.Chaos,
	}
	if !o.Energy.IsZero() {
		if err := o.Energy.Validate(); err != nil {
			return "", err
		}
		spec := o.Energy
		c.Energy = &spec
	}
	if !o.Recovery.IsZero() {
		if err := o.Recovery.Validate(); err != nil {
			return "", err
		}
		spec := o.Recovery
		c.Recovery = &spec
	}
	return hashJSON(c)
}

func hashJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("experiment: canonicalizing config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
