package experiment

import (
	"context"

	"refer/internal/energy"
	"refer/internal/scenario"
)

// The network-lifetime study (Figures L1–L3) is what the pluggable energy
// layer buys: it constrains every sensor to a battery budget, prices
// packets with the distance-dependent first-order radio model (the
// default; -energy selects others, including the harvesting wrapper), and
// sweeps the budget to compare how long each system keeps the network
// alive. L1 plots the time to the first node death, L2 the time until
// half the constrained nodes are dead at once, and L3 the delivery ratio
// achieved over the network's lifetime — the flood-happy baselines drain
// shared relays far sooner than REFER's unicast Kautz routing. Deaths that
// never happen inside the simulated window are censored at the window end,
// so an undying configuration reports the full simulated time.

// lifetimeXs are the swept per-sensor battery budgets in Joules. Sized for
// the radio model's millijoule-scale packets: at the low end the
// flood-happy systems lose their first node during topology construction,
// while at the high end every system keeps half the network alive through
// a quick pass (REFER stops dying at all from 0.2 J).
var lifetimeXs = []float64{0.05, 0.1, 0.2, 0.4, 0.8}

// lifetimeSweep runs the L1–L3 grid: the four systems at 1 m/s with the
// sensor battery budget on the x axis. The cost model defaults to the
// first-order radio model; Options.Energy (the -energy flag) overrides it.
func lifetimeSweep(ctx context.Context, o Options, pick func(Result) float64) (Figure, error) {
	if o.Energy.IsZero() {
		o.Energy = energy.Spec{Model: energy.ModelRadio}
	}
	o = o.withDefaults()
	fig, err := sweep(ctx, o, lifetimeXs, func(x float64, seed int64) RunConfig {
		return RunConfig{
			Scenario: scenario.Params{
				Seed:          seed,
				Sensors:       o.Sensors,
				MaxSpeed:      1,
				SensorBattery: x,
			},
		}
	}, pick)
	fig.XLabel = "sensor battery (J)"
	return fig, err
}

// censored maps a lifetime marker to seconds, censoring "never" (-1) at
// the end of the simulated window.
func censored(r Result, marker int64) float64 {
	if marker < 0 {
		return r.Stats.SimTime.Seconds()
	}
	// marker is a time.Duration in nanoseconds.
	return float64(marker) / 1e9
}

// FigL1 builds the lifetime figure: time to first node death vs battery.
func FigL1(o Options) (Figure, error) { return buildByID(context.Background(), "L1", o) }

// FigL2 builds the lifetime figure: time to half nodes dead vs battery.
func FigL2(o Options) (Figure, error) { return buildByID(context.Background(), "L2", o) }

// FigL3 builds the lifetime figure: delivery ratio over the network's
// lifetime vs battery.
func FigL3(o Options) (Figure, error) { return buildByID(context.Background(), "L3", o) }

func lifetimeFirstDeath(ctx context.Context, o Options) (Figure, error) {
	fig, err := lifetimeSweep(ctx, o, func(r Result) float64 {
		return censored(r, int64(r.Stats.FirstNodeDeath))
	})
	fig.YLabel = "first node death (s)"
	return fig, err
}

func lifetimeHalfDead(ctx context.Context, o Options) (Figure, error) {
	fig, err := lifetimeSweep(ctx, o, func(r Result) float64 {
		return censored(r, int64(r.Stats.HalfNodesDead))
	})
	fig.YLabel = "half nodes dead (s)"
	return fig, err
}

func lifetimeDelivery(ctx context.Context, o Options) (Figure, error) {
	fig, err := lifetimeSweep(ctx, o, func(r Result) float64 {
		if r.Created == 0 {
			return 0
		}
		return float64(r.Delivered) / float64(r.Created)
	})
	fig.YLabel = "delivery ratio"
	return fig, err
}
