package metrics

import (
	"math"
	"testing"
	"time"
)

func TestCollectorWindow(t *testing.T) {
	c := NewCollector(100*time.Second, 1000*time.Second, 0)
	if c.Created(50 * time.Second) {
		t.Error("warm-up packet counted")
	}
	if !c.Created(100 * time.Second) {
		t.Error("window-start packet not counted")
	}
	if !c.Created(500 * time.Second) {
		t.Error("mid-window packet not counted")
	}
	created, _, _, _ := c.Counts()
	if created != 2 {
		t.Fatalf("created = %d, want 2", created)
	}
	// Deliveries of warm-up packets are ignored too.
	c.Delivered(50*time.Second, 51*time.Second)
	_, delivered, _, _ := c.Counts()
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
}

func TestCollectorQoSDeadline(t *testing.T) {
	c := NewCollector(0, 100*time.Second, 0) // default 0.6 s deadline
	c.Created(10 * time.Second)
	c.Delivered(10*time.Second, 10*time.Second+500*time.Millisecond) // QoS
	c.Created(20 * time.Second)
	c.Delivered(20*time.Second, 20*time.Second+700*time.Millisecond) // late
	_, delivered, qos, _ := c.Counts()
	if delivered != 2 || qos != 1 {
		t.Fatalf("delivered=%d qos=%d, want 2,1", delivered, qos)
	}
	if got := c.MeanQoSDelay(); got != 500*time.Millisecond {
		t.Errorf("MeanQoSDelay = %v", got)
	}
	if got := c.MeanDelay(); got != 600*time.Millisecond {
		t.Errorf("MeanDelay = %v", got)
	}
	if got := c.DeliveryRatio(); got != 1.0 {
		t.Errorf("DeliveryRatio = %f", got)
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector(0, 10*time.Second, 0)
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		c.Created(at)
		c.Delivered(at, at+10*time.Millisecond)
	}
	if got := c.Throughput(); got != 5.0 {
		t.Fatalf("Throughput = %f, want 5 pkt/s", got)
	}
}

func TestCollectorDropped(t *testing.T) {
	c := NewCollector(0, 10*time.Second, 0)
	c.Created(time.Second)
	c.Dropped(time.Second)
	c.Dropped(20 * time.Second) // out of window
	_, _, _, dropped := c.Counts()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(0, 0, 0)
	if c.Throughput() != 0 || c.MeanQoSDelay() != 0 || c.MeanDelay() != 0 || c.DeliveryRatio() != 0 {
		t.Fatal("empty collector should report zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 12, 8, 10, 10})
	if s.Mean != 10 {
		t.Errorf("Mean = %f, want 10", s.Mean)
	}
	// stddev = sqrt(8/4) = sqrt(2); CI = 1.96·sqrt(2)/sqrt(5).
	want := 1.96 * math.Sqrt2 / math.Sqrt(5)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Errorf("CI95 = %f, want %f", s.CI95, want)
	}
	if s.Median() != 10 {
		t.Errorf("Median = %f", s.Median())
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.Mean != 0 || s.CI95 != 0 || s.Median() != 0 {
		t.Error("empty summary should be zero")
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.CI95 != 0 {
		t.Errorf("single sample: %+v", s)
	}
	if s.Median() != 42 {
		t.Errorf("Median = %f", s.Median())
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median() != 2.5 {
		t.Errorf("even median = %f, want 2.5", even.Median())
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 1, 1})
	if got := s.String(); got != "1.000 ± 0.000" {
		t.Errorf("String = %q", got)
	}
}

func TestSummarizeDoesNotAliasInput(t *testing.T) {
	in := []float64{5, 6}
	s := Summarize(in)
	in[0] = 100
	if s.Samples[0] != 5 {
		t.Error("Summarize aliases its input")
	}
}
