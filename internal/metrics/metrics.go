// Package metrics implements the evaluation's three measurements —
// QoS-guaranteed throughput, transmission delay and energy — plus the 95 %
// confidence intervals the paper reports ("All experimental results report
// 95% confidence intervals").
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultQoSDeadline is the paper's real-time cutoff: only packets arriving
// within 0.6 s count toward throughput.
const DefaultQoSDeadline = 600 * time.Millisecond

// Collector accumulates per-packet statistics for one simulation run.
// Only packets created inside the measurement window (after warm-up) are
// counted. The zero value is not ready; use NewCollector.
type Collector struct {
	deadline    time.Duration
	windowStart time.Duration
	windowEnd   time.Duration

	created   int
	delivered int
	qos       int
	dropped   int
	qosDelay  time.Duration
	allDelay  time.Duration
}

// NewCollector creates a collector measuring packets created within
// [windowStart, windowEnd] against the given QoS deadline (0 means
// DefaultQoSDeadline).
func NewCollector(windowStart, windowEnd, deadline time.Duration) *Collector {
	if deadline <= 0 {
		deadline = DefaultQoSDeadline
	}
	return &Collector{
		deadline:    deadline,
		windowStart: windowStart,
		windowEnd:   windowEnd,
	}
}

// InWindow reports whether a packet created at t is measured.
func (c *Collector) InWindow(t time.Duration) bool {
	return t >= c.windowStart && t <= c.windowEnd
}

// Created records a packet created at time t. It returns true when the
// packet falls inside the measurement window; callers may skip Delivered
// bookkeeping otherwise (Delivered tolerates either way).
func (c *Collector) Created(t time.Duration) bool {
	if !c.InWindow(t) {
		return false
	}
	c.created++
	return true
}

// Delivered records the delivery of a packet created at createdAt and
// arriving at arrivedAt.
func (c *Collector) Delivered(createdAt, arrivedAt time.Duration) {
	if !c.InWindow(createdAt) {
		return
	}
	delay := arrivedAt - createdAt
	c.delivered++
	c.allDelay += delay
	if delay <= c.deadline {
		c.qos++
		c.qosDelay += delay
	}
}

// Dropped records a packet created at createdAt that was abandoned.
func (c *Collector) Dropped(createdAt time.Duration) {
	if !c.InWindow(createdAt) {
		return
	}
	c.dropped++
}

// Counts returns counts of packets created / delivered / QoS-delivered /
// dropped within the window.
func (c *Collector) Counts() (created, delivered, qos, dropped int) {
	return c.created, c.delivered, c.qos, c.dropped
}

// Throughput returns QoS-guaranteed packets per second over the window.
func (c *Collector) Throughput() float64 {
	dur := (c.windowEnd - c.windowStart).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(c.qos) / dur
}

// MeanQoSDelay returns the average latency of QoS-guaranteed deliveries
// ("the average latency for the transmission of QoS-guaranteed data").
func (c *Collector) MeanQoSDelay() time.Duration {
	if c.qos == 0 {
		return 0
	}
	return c.qosDelay / time.Duration(c.qos)
}

// MeanDelay returns the average latency over all deliveries.
func (c *Collector) MeanDelay() time.Duration {
	if c.delivered == 0 {
		return 0
	}
	return c.allDelay / time.Duration(c.delivered)
}

// DeliveryRatio returns delivered / created.
func (c *Collector) DeliveryRatio() float64 {
	if c.created == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.created)
}

// Summary is a set of independent samples of one metric (one per seed) with
// its mean and 95 % confidence half-width.
type Summary struct {
	Samples []float64 `json:"samples"`
	Mean    float64   `json:"mean"`
	CI95    float64   `json:"ci95"`
}

// Summarize computes the mean and 95 % confidence interval half-width of
// the samples using the normal approximation (the paper's convention).
func Summarize(samples []float64) Summary {
	s := Summary{Samples: append([]float64(nil), samples...)}
	n := float64(len(samples))
	if n == 0 {
		return s
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	s.Mean = sum / n
	if len(samples) < 2 {
		return s
	}
	varSum := 0.0
	for _, v := range samples {
		d := v - s.Mean
		varSum += d * d
	}
	stddev := math.Sqrt(varSum / (n - 1))
	s.CI95 = 1.96 * stddev / math.Sqrt(n)
	return s
}

// String implements fmt.Stringer as "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95)
}

// Median returns the sample median (robustness check alongside the mean).
func (s Summary) Median() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
