package scenario

import (
	"testing"
	"time"

	"refer/internal/world"
)

func TestBuildDefaults(t *testing.T) {
	w := Build(Params{Seed: 1})
	if got := w.Len(); got != 205 {
		t.Fatalf("Len = %d, want 205 (5 actuators + 200 sensors)", got)
	}
	actuators, sensors := 0, 0
	for _, n := range w.Nodes() {
		switch n.Kind {
		case world.Actuator:
			actuators++
			if n.Range != 250 {
				t.Errorf("actuator range = %f", n.Range)
			}
		case world.Sensor:
			sensors++
			if n.Range != 100 {
				t.Errorf("sensor range = %f", n.Range)
			}
		}
	}
	if actuators != 5 || sensors != 200 {
		t.Fatalf("actuators=%d sensors=%d", actuators, sensors)
	}
}

func TestActuatorLayoutGeometry(t *testing.T) {
	layout := ActuatorLayout(500)
	if len(layout) != 5 {
		t.Fatalf("layout = %v", layout)
	}
	center := layout[4]
	if center.X != 250 || center.Y != 250 {
		t.Fatalf("center = %v", center)
	}
	// Every corner must be within actuator radio range (250) of the center
	// and of its ring neighbors, so triangulation succeeds.
	for i := 0; i < 4; i++ {
		if d := layout[i].Dist(center); d > 250 {
			t.Errorf("corner %d to center: %f m", i, d)
		}
		if d := layout[i].Dist(layout[(i+1)%4]); d > 250 {
			t.Errorf("corner %d to corner %d: %f m", i, (i+1)%4, d)
		}
	}
}

func TestSensorsDeployedNearActuators(t *testing.T) {
	w := Build(Params{Seed: 2})
	layout := ActuatorLayout(500)
	for _, id := range SensorIDs(w) {
		p := w.Position(id)
		near := false
		for _, a := range layout {
			if p.Dist(a) <= 141 {
				near = true
				break
			}
		}
		if !near {
			t.Fatalf("sensor %d at %v is not near any actuator", id, p)
		}
	}
}

func TestMobileSensorsStayInSensedRegion(t *testing.T) {
	w := Build(Params{Seed: 3, Sensors: 50, MaxSpeed: 5})
	region := SensedRegion(500)
	w.Sched.RunUntil(400 * time.Second)
	for _, id := range SensorIDs(w) {
		p := w.Position(id)
		// Initial placement may exceed the patrol region slightly; after
		// long mobility the node must be inside or heading inside: allow
		// the anchor-radius margin.
		if p.X < region.Min.X-141 || p.X > region.Max.X+141 ||
			p.Y < region.Min.Y-141 || p.Y > region.Max.Y+141 {
			t.Fatalf("sensor %d wandered to %v", id, p)
		}
	}
}

func TestDeterministicDeployment(t *testing.T) {
	w1 := Build(Params{Seed: 4, Sensors: 100, MaxSpeed: 2})
	w2 := Build(Params{Seed: 4, Sensors: 100, MaxSpeed: 2})
	w1.Sched.RunUntil(100 * time.Second)
	w2.Sched.RunUntil(100 * time.Second)
	for i := 0; i < w1.Len(); i++ {
		if w1.Position(world.NodeID(i)) != w2.Position(world.NodeID(i)) {
			t.Fatalf("node %d diverged", i)
		}
	}
}

func TestSeedChangesDeployment(t *testing.T) {
	w1 := Build(Params{Seed: 5, Sensors: 100})
	w2 := Build(Params{Seed: 6, Sensors: 100})
	same := 0
	for _, id := range SensorIDs(w1) {
		if w1.Position(id) == w2.Position(id) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("%d sensor positions identical across seeds", same)
	}
}

func TestSensorBatteryApplied(t *testing.T) {
	w := Build(Params{Seed: 7, Sensors: 10, SensorBattery: 50})
	id := SensorIDs(w)[0]
	if w.Node(id).Meter.Remaining() != 50 {
		t.Fatalf("battery = %f", w.Node(id).Meter.Remaining())
	}
}
