// Package scenario constructs the evaluation's deployment (Section IV):
// five actuators in a 500 m × 500 m field whose triangulation yields four
// REFER cells, and N sensors i.i.d. deployed around the actuators, moving
// by random waypoint. All systems under comparison are built on worlds from
// this package so the comparison is apples-to-apples.
package scenario

import (
	"math/rand"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/mobility"
	"refer/internal/world"
)

// Params configures a deployment.
type Params struct {
	// Seed drives deployment and all in-world randomness.
	Seed int64
	// Sensors is the sensor population (paper default 200).
	Sensors int
	// MaxSpeed is the random-waypoint speed cap in m/s (speed is uniform in
	// [0, MaxSpeed]; the paper sweeps the cap from 1 to 5).
	MaxSpeed float64
	// Side is the square field's side length in meters (default 500).
	Side float64
	// SensorRange and ActuatorRange are the radio ranges in meters
	// (defaults 100 and 250, Section IV).
	SensorRange   float64
	ActuatorRange float64
	// AnchorRadius is how far around its anchor actuator each sensor is
	// deployed ("i.i.d distributed around the actuators"); default 140 m.
	AnchorRadius float64
	// SensorBattery is the per-sensor energy budget (<= 0: unconstrained,
	// the evaluation's setting — energy is a metric, not a constraint).
	SensorBattery float64
	// HopJitter overrides the world's MAC jitter when > 0.
	HopJitter time.Duration
	// ActuatorGrid, when >= 2, replaces the paper's five-actuator layout
	// with an n×n actuator lattice at GridSpacing intervals — the many-cell
	// deployment of the scale study. Triangulating the lattice yields
	// 2(n-1)² cells; the default spacing keeps every triangle edge (the
	// 212 m diagonal included) within the 250 m actuator radio range. Zero
	// keeps the paper layout.
	ActuatorGrid int
	// GridSpacing is the lattice pitch in meters (default 150; only used
	// when ActuatorGrid >= 2).
	GridSpacing float64
	// Energy overrides the world's per-packet cost model when non-nil; nil
	// keeps the world default (the paper's flat constants). Excluded from
	// serialization: runs driven through experiment.RunConfig describe
	// models with the canonical energy.Spec instead, so the pre-existing
	// canonical config encoding is unchanged.
	Energy energy.CostModel `json:"-"`
	// PacketBits overrides the charged packet size when > 0 (same
	// serialization caveat as Energy).
	PacketBits int `json:"-"`
}

// Defaults fills zero fields with the paper's values.
func (p Params) Defaults() Params {
	if p.Sensors == 0 {
		p.Sensors = 200
	}
	if p.GridSpacing == 0 {
		p.GridSpacing = 150
	}
	if p.Side == 0 {
		if p.ActuatorGrid >= 2 {
			// Lattice extent plus a 150 m border on each side.
			p.Side = float64(p.ActuatorGrid-1)*p.GridSpacing + 300
		} else {
			p.Side = 500
		}
	}
	if p.SensorRange == 0 {
		p.SensorRange = 100
	}
	if p.ActuatorRange == 0 {
		p.ActuatorRange = 250
	}
	if p.AnchorRadius == 0 {
		p.AnchorRadius = 140
	}
	return p
}

// ActuatorLayout returns the five actuator positions for a field of the
// given side: four at the inner corners plus one center, the layout whose
// triangulation produces the paper's four cells while keeping every
// triangle edge within actuator radio range.
func ActuatorLayout(side float64) []geo.Point {
	inset := side * 0.3
	return []geo.Point{
		{X: inset, Y: inset},
		{X: side - inset, Y: inset},
		{X: side - inset, Y: side - inset},
		{X: inset, Y: side - inset},
		{X: side / 2, Y: side / 2},
	}
}

// GridLayout returns the n×n actuator lattice for the scale scenario,
// centered in a field of the given side, in row-major order.
func GridLayout(n int, spacing, side float64) []geo.Point {
	inset := (side - float64(n-1)*spacing) / 2
	out := make([]geo.Point, 0, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			out = append(out, geo.Point{
				X: inset + float64(col)*spacing,
				Y: inset + float64(row)*spacing,
			})
		}
	}
	return out
}

// Build creates the world: actuators (static, mains-powered) then sensors
// (random-waypoint movers anchored near random actuators).
func Build(p Params) *world.World {
	p = p.Defaults()
	cfg := world.DefaultConfig()
	cfg.Region = geo.Square(p.Side)
	cfg.Seed = p.Seed
	if p.HopJitter > 0 {
		cfg.HopJitter = p.HopJitter
	}
	if p.Energy != nil {
		cfg.Energy = p.Energy
	}
	if p.PacketBits > 0 {
		cfg.PacketBits = p.PacketBits
	}
	w := world.New(cfg)
	layout := ActuatorLayout(p.Side)
	if p.ActuatorGrid >= 2 {
		layout = GridLayout(p.ActuatorGrid, p.GridSpacing, p.Side)
	}
	for _, pos := range layout {
		w.AddNode(world.Actuator, mobility.Static{P: pos}, p.ActuatorRange, 0)
	}
	// Sensors patrol the sensed region — the area the cells cover plus a
	// margin — rather than the whole field, mirroring the paper's premise
	// that the Kautz cells "seamlessly cover the sensed region".
	patrol := SensedRegion(p.Side)
	if p.ActuatorGrid >= 2 {
		// Lattice bounding box plus the same 50 m margin.
		lo, hi := layout[0], layout[len(layout)-1]
		patrol = geo.Rect{
			Min: geo.Point{X: lo.X - 50, Y: lo.Y - 50},
			Max: geo.Point{X: hi.X + 50, Y: hi.Y + 50},
		}
	}
	// Deployment RNG is separate from the world RNG so protocol randomness
	// does not perturb node placement across configurations.
	rng := rand.New(rand.NewSource(p.Seed + 1))
	// Motion seeds come from a third stream so placement draws do not
	// depend on how many movers precede a sensor.
	motionSeeds := rand.New(rand.NewSource(p.Seed + 2))
	for i := 0; i < p.Sensors; i++ {
		anchor := layout[rng.Intn(len(layout))]
		pos := cfg.Region.RandomPointNear(rng, anchor, p.AnchorRadius)
		var mob mobility.Model
		if p.MaxSpeed > 0 {
			// Each mover owns an RNG stream (seeded from the deployment
			// RNG): waypoint itineraries extend lazily on position sampling,
			// so a shared stream would make every node's motion depend on
			// the order the simulator happens to sample positions in —
			// including map-iteration order — and break seeded replay.
			mob = mobility.NewWaypoint(patrol, pos, p.MaxSpeed,
				rand.New(rand.NewSource(motionSeeds.Int63())))
		} else {
			mob = mobility.Static{P: pos}
		}
		w.AddNode(world.Sensor, mob, p.SensorRange, p.SensorBattery)
	}
	return w
}

// SensedRegion returns the patrol area of the sensors: the cell-covered
// square expanded by a 50 m margin.
func SensedRegion(side float64) geo.Rect {
	inset := side*0.3 - 50
	if inset < 0 {
		inset = 0
	}
	return geo.Rect{
		Min: geo.Point{X: inset, Y: inset},
		Max: geo.Point{X: side - inset, Y: side - inset},
	}
}

// SensorIDs returns the IDs of all sensors in a world built by Build.
func SensorIDs(w *world.World) []world.NodeID {
	var out []world.NodeID
	for _, n := range w.Nodes() {
		if n.Kind == world.Sensor {
			out = append(out, n.ID)
		}
	}
	return out
}
