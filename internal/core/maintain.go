package core

import (
	"refer/internal/energy"
	"refer/internal/kautz"
	"refer/internal/world"
)

// lowBatteryFraction is the battery threshold below which a Kautz sensor
// hands its role to a candidate (Section III-B-4: "its own battery power is
// below a threshold").
const lowBatteryFraction = 0.15

// scheduleMaintenance starts the periodic awake/wait/sleep maintenance tick.
// The tick is deliberately scheduled untagged (Sched.After, not AfterNode):
// one maintenance pass reads and mutates cell state across the whole overlay,
// so its conflict domain is global and it must never join a parallel drain
// batch — the batched drain serial-steps untagged events (see des/drain.go).
func (s *System) scheduleMaintenance() {
	var tick func()
	tick = func() {
		if !s.maintenanceOn {
			return
		}
		s.maintainOnce()
		if _, err := s.w.Sched.After(s.cfg.ProbeInterval, tick); err != nil {
			// Scheduling after "now" can only fail on a programming error.
			panic(err)
		}
	}
	s.maintenanceOn = true
	if _, err := s.w.Sched.After(s.cfg.ProbeInterval, tick); err != nil {
		panic(err)
	}
}

// StopMaintenance halts the periodic maintenance tick (used by callers that
// drain the event queue to completion).
func (s *System) StopMaintenance() { s.maintenanceOn = false }

// MaintainOnce runs one maintenance round synchronously — the hook the
// maintain_once benchmark and the scale tests drive directly (the scheduled
// tick calls the same routine every ProbeInterval).
func (s *System) MaintainOnce() { s.maintainOnce() }

// maintainOnce performs one maintenance round: refresh cell membership
// under mobility, then every cell checks its Kautz sensors and replaces
// degraded ones with wait-state candidates.
func (s *System) maintainOnce() {
	if s.cfg.RunParallelism > 1 && len(s.cells) > 0 {
		// Sharded round (shard.go): same decisions, same order, same bytes.
		s.maintainParallel()
		return
	}
	s.refreshMembership()
	for _, c := range s.cells {
		if c.retired {
			continue // dissolved by a recovery merge; nothing to maintain
		}
		// One sleeping sensor per cell wakes and probes per round — the
		// cheap keepalive that lets candidates learn the overlay around
		// them (Section III-B-4).
		if prober := s.pickProber(c); prober != world.NoNode {
			s.w.Broadcast(prober, energy.Communication, nil)
		}
		// Deterministic KID order, served from the cell's cache.
		for _, kid := range c.sortedKIDs() {
			id := c.NodeByKID[kid]
			if c.IsActuatorKID(kid) {
				continue // corners are actuators; sensors cannot replace them
			}
			if !s.degraded(c, id) {
				delete(s.degradedAt, id)
				continue
			}
			// Two-phase replacement: detection takes a probe round (signal
			// strength / battery reports are only observed at probe time),
			// so a node degraded in this round is replaced in the next.
			// Until then the Theorem 3.8 failover carries the traffic.
			since, seen := s.degradedAt[id]
			if !seen {
				s.degradedAt[id] = s.w.Now()
				continue
			}
			if s.w.Now()-since < s.cfg.ProbeInterval {
				continue
			}
			delete(s.degradedAt, id)
			s.replace(c, kid, id)
		}
	}
}

// refreshMembership re-homes plain sensors to the cell whose triangle they
// currently occupy: mobility carries sleep-state sensors across cells, and
// the candidate pools must track that. Overlay members keep their cell
// until replaced.
//
// Cell ownership is a pure function of position (triangles are fixed at
// build time), so the indexed path is incremental two ways: a fully static
// world (the world's speed bound is zero) skips the loop outright, and a
// sensor whose position equals the one it was last homed at skips its
// lookup. Both skips are exact — recomputation could not change the answer
// — and the linear-scan ablation takes neither, reproducing the pre-index
// per-round cost.
func (s *System) refreshMembership() {
	if s.cellIndex != nil && s.w.MaxSpeed() == 0 && len(s.homeValid) >= s.w.Len() {
		return
	}
	for _, n := range s.w.Nodes() {
		if n.Kind != world.Sensor {
			continue
		}
		cur := s.sensorCell[n.ID]
		if cur != nil {
			if _, overlay := cur.kidOfNode[n.ID]; overlay {
				continue
			}
		}
		p := s.w.Position(n.ID)
		if s.cellIndex != nil {
			if int(n.ID) < len(s.homeValid) && s.homeValid[n.ID] && s.homePos[n.ID] == p {
				continue
			}
			s.notePosition(n.ID, p)
		}
		owner := s.homeCell(p)
		if owner == cur {
			continue
		}
		s.stats.Rehomes++
		if cur != nil {
			delete(cur.members, n.ID)
			delete(s.sensorCell, n.ID)
		}
		if owner != nil {
			owner.members[n.ID] = true
			s.sensorCell[n.ID] = owner
		}
	}
}

// pickProber returns an alive sleep-state sensor of the cell (round-robin
// by node ID through the world RNG for determinism).
func (s *System) pickProber(c *Cell) world.NodeID {
	pool := s.candidatePool(c)
	if len(pool) == 0 {
		return world.NoNode
	}
	return pool[s.w.Rand().Intn(len(pool))]
}

// degraded reports whether a Kautz sensor should hand over its role: dead,
// battery below threshold, or drifted out of its cell (mobility).
func (s *System) degraded(c *Cell, id world.NodeID) bool {
	n := s.w.Node(id)
	if !n.Alive() {
		return true
	}
	if n.Meter.Fraction() < lowBatteryFraction {
		return true
	}
	return !c.contains(s.w.Position(id), s.cfg.CellMargin)
}

// replace hands a KID from old to the best candidate. The candidate must be
// radio-connected to as many of the KID's overlay partners as possible;
// battery breaks ties (the paper selects candidates that "can build
// connections with the neighboring Kautz nodes").
func (s *System) replace(c *Cell, kid kautz.ID, old world.NodeID) {
	partners := s.overlayPartners(c, kid)
	best := world.NoNode
	bestConn, bestScore := -1, -1.0
	for _, cand := range s.candidatePool(c) {
		conn := 0
		p := s.w.Position(cand)
		for _, partner := range partners {
			if p.Dist(s.w.Position(partner)) <= s.sensorRange(cand, partner) {
				conn++
			}
		}
		score := s.w.Node(cand).Meter.Fraction()
		if conn > bestConn || (conn == bestConn && score > bestScore) {
			best, bestConn, bestScore = cand, conn, score
		}
	}
	if best == world.NoNode || bestConn < 1 {
		// No viable candidate this round; the KID keeps its (degraded)
		// holder and routing works around it via Theorem 3.8 failover.
		return
	}
	// Protocol cost: the candidate's probe was already paid; the handover
	// costs a notification from the old node (if it is still alive) or
	// from a partner that detected the failure.
	notifier := old
	if !s.w.Node(old).Alive() {
		notifier = partners[0]
	}
	s.w.Send(notifier, best, energy.Communication, nil)

	delete(c.kidOfNode, old)
	c.members[old] = true // the demoted node returns to the sleep pool
	delete(c.members, best)
	c.NodeByKID[kid] = best
	c.kidOfNode[best] = kid
	// Keep the member→cell map in step: sensors hold at most one KID, so the
	// demoted node leaves the map and its successor takes its place.
	delete(s.memberCell, old)
	s.memberCell[best] = c
	s.stats.Replacements++
}

// overlayPartners returns the nodes currently holding the KID's overlay
// neighbors (successors and predecessors in the Kautz graph).
func (s *System) overlayPartners(c *Cell, kid kautz.ID) []world.NodeID {
	var out []world.NodeID
	seen := make(map[world.NodeID]bool, 2*s.cfg.Degree)
	add := func(k kautz.ID) {
		if id, ok := c.NodeByKID[k]; ok && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, k := range s.graph.Successors(kid) {
		add(k)
	}
	for _, k := range s.graph.Predecessors(kid) {
		add(k)
	}
	return out
}
