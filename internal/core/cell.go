package core

import (
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/world"
)

// Cell is one REFER cell: a triangle of actuators with an embedded K(2,3)
// Kautz graph (Section III-B).
type Cell struct {
	// CID is the cell identifier; its DHT coordinate is Centroid.
	CID int
	// Centroid is the triangle centroid (the cell's CAN coordinate).
	Centroid geo.Point
	// Corners are the three actuator node IDs.
	Corners [3]world.NodeID
	// Vertices are the corner positions at construction time.
	Vertices [3]geo.Point

	// NodeByKID maps every Kautz ID of the cell graph to the node currently
	// holding it. Entries change as maintenance replaces nodes.
	NodeByKID map[kautz.ID]world.NodeID
	kidOfNode map[world.NodeID]kautz.ID

	// members are the plain (non-overlay) sensors associated with the cell:
	// the sleep/wait population that candidates are drawn from.
	members map[world.NodeID]bool
}

// KIDOf returns the node's Kautz ID within this cell.
func (c *Cell) KIDOf(id world.NodeID) (kautz.ID, bool) {
	kid, ok := c.kidOfNode[id]
	return kid, ok
}

// Node returns the node holding a KID.
func (c *Cell) Node(kid kautz.ID) (world.NodeID, bool) {
	id, ok := c.NodeByKID[kid]
	return id, ok
}

// IsActuatorKID reports whether kid is one of the three corner KIDs.
func (c *Cell) IsActuatorKID(kid kautz.ID) bool {
	for _, corner := range c.Corners {
		if c.kidOfNode[corner] == kid {
			return true
		}
	}
	return false
}

// Members returns the plain-sensor population of the cell (the candidate
// pool), alive or not, excluding overlay members.
func (c *Cell) Members() []world.NodeID {
	out := make([]world.NodeID, 0, len(c.members))
	for id := range c.members {
		if _, overlay := c.kidOfNode[id]; !overlay {
			out = append(out, id)
		}
	}
	return out
}

// contains reports whether p lies within the cell triangle expanded by
// margin meters (a point within margin of the triangle counts).
func (c *Cell) contains(p geo.Point, margin float64) bool {
	a, b, d := c.Vertices[0], c.Vertices[1], c.Vertices[2]
	if pointInTriangle(p, a, b, d) {
		return true
	}
	return margin > 0 && c.distance(p) <= margin
}

// distance returns how far p lies outside the cell triangle (0 if inside).
func (c *Cell) distance(p geo.Point) float64 {
	a, b, d := c.Vertices[0], c.Vertices[1], c.Vertices[2]
	if pointInTriangle(p, a, b, d) {
		return 0
	}
	dist := distToSegment(p, a, b)
	if e := distToSegment(p, b, d); e < dist {
		dist = e
	}
	if e := distToSegment(p, d, a); e < dist {
		dist = e
	}
	return dist
}

func pointInTriangle(p, a, b, c geo.Point) bool {
	d1 := signedArea(a, b, p)
	d2 := signedArea(b, c, p)
	d3 := signedArea(c, a, p)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

func signedArea(a, b, c geo.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func distToSegment(p, a, b geo.Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	proj := a.Add(ab.X*t, ab.Y*t)
	return p.Dist(proj)
}

// pathKIDs returns the two sensor KIDs on the Kautz path from corner KID x
// to its successor corner rotateLeft(x): shift(x, x2) and then shift(·, x3).
// For x = 201 this yields 010, 101 (the paper's Section III-B-2 example).
func pathKIDs(x kautz.ID) (s1, s2 kautz.ID) {
	s1 = x.MustShift(x.At(1))
	s2 = s1.MustShift(x.At(2))
	return s1, s2
}

// rotateLeft returns the left rotation of a KID (the successor actuator's
// KID in the corner cycle: 012 → 120 → 201 → 012).
func rotateLeft(x kautz.ID) kautz.ID {
	return x.MustShift(x.First())
}
