package core

import (
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/world"
)

// Cell is one REFER cell: a triangle of actuators with an embedded K(2,3)
// Kautz graph (Section III-B).
type Cell struct {
	// CID is the cell identifier; its DHT coordinate is Centroid.
	CID int
	// Centroid is the triangle centroid (the cell's CAN coordinate).
	Centroid geo.Point
	// Corners are the three actuator node IDs.
	Corners [3]world.NodeID
	// Vertices are the corner positions at construction time.
	Vertices [3]geo.Point

	// NodeByKID maps every Kautz ID of the cell graph to the node currently
	// holding it. Entries change as maintenance replaces nodes.
	NodeByKID map[kautz.ID]world.NodeID
	kidOfNode map[world.NodeID]kautz.ID

	// members are the plain (non-overlay) sensors associated with the cell:
	// the sleep/wait population that candidates are drawn from.
	members map[world.NodeID]bool

	// kidOrder caches the cell's KIDs in ascending order so each maintenance
	// round iterates deterministically without rebuilding and re-sorting the
	// slice. KIDs are only ever added (during Build); replacement reassigns
	// a KID's holder but never the KID set, so the cache is valid exactly
	// when its length matches NodeByKID. Cell merge empties the KID set and
	// must nil the cache explicitly (recover.go).
	kidOrder []kautz.ID

	// retired marks a cell dissolved by a recovery merge: it stays in
	// s.cells (iteration order is part of the determinism contract) but its
	// overlay state is empty and absorbedBy points at the cell that
	// inherited its members and CAN zone (see recover.go). Retirement is
	// permanent, so absorber chains never cycle.
	retired    bool
	absorbedBy *Cell
}

// sortedKIDs returns the cell's KIDs in ascending order, served from the
// cache once the embedding is complete. The rebuild uses an insertion sort
// into the retained buffer so steady-state maintenance stays allocation-free.
func (c *Cell) sortedKIDs() []kautz.ID {
	if len(c.kidOrder) != len(c.NodeByKID) {
		c.kidOrder = c.kidOrder[:0]
		for kid := range c.NodeByKID {
			c.kidOrder = append(c.kidOrder, kid)
		}
		for i := 1; i < len(c.kidOrder); i++ {
			for j := i; j > 0 && c.kidOrder[j] < c.kidOrder[j-1]; j-- {
				c.kidOrder[j], c.kidOrder[j-1] = c.kidOrder[j-1], c.kidOrder[j]
			}
		}
	}
	return c.kidOrder
}

// KIDOf returns the node's Kautz ID within this cell.
func (c *Cell) KIDOf(id world.NodeID) (kautz.ID, bool) {
	kid, ok := c.kidOfNode[id]
	return kid, ok
}

// Node returns the node holding a KID.
func (c *Cell) Node(kid kautz.ID) (world.NodeID, bool) {
	id, ok := c.NodeByKID[kid]
	return id, ok
}

// IsActuatorKID reports whether kid is one of the three corner KIDs.
func (c *Cell) IsActuatorKID(kid kautz.ID) bool {
	for _, corner := range c.Corners {
		if c.kidOfNode[corner] == kid {
			return true
		}
	}
	return false
}

// Members returns the plain-sensor population of the cell (the candidate
// pool), alive or not, excluding overlay members.
func (c *Cell) Members() []world.NodeID {
	out := make([]world.NodeID, 0, len(c.members))
	for id := range c.members {
		if _, overlay := c.kidOfNode[id]; !overlay {
			out = append(out, id)
		}
	}
	return out
}

// contains reports whether p lies within the cell triangle expanded by
// margin meters (a point within margin of the triangle counts).
func (c *Cell) contains(p geo.Point, margin float64) bool {
	a, b, d := c.Vertices[0], c.Vertices[1], c.Vertices[2]
	if geo.PointInTriangle(p, a, b, d) {
		return true
	}
	return margin > 0 && c.distance(p) <= margin
}

// distance returns how far p lies outside the cell triangle (0 if inside).
func (c *Cell) distance(p geo.Point) float64 {
	return geo.DistToTriangle(p, c.Vertices[0], c.Vertices[1], c.Vertices[2])
}

// pathKIDs returns the two sensor KIDs on the Kautz path from corner KID x
// to its successor corner rotateLeft(x): shift(x, x2) and then shift(·, x3).
// For x = 201 this yields 010, 101 (the paper's Section III-B-2 example).
func pathKIDs(x kautz.ID) (s1, s2 kautz.ID) {
	s1 = x.MustShift(x.At(1))
	s2 = s1.MustShift(x.At(2))
	return s1, s2
}

// rotateLeft returns the left rotation of a KID (the successor actuator's
// KID in the corner cycle: 012 → 120 → 201 → 012).
func rotateLeft(x kautz.ID) kautz.ID {
	return x.MustShift(x.First())
}
