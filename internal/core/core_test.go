package core

import (
	"math/rand"
	"testing"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/mobility"
	"refer/internal/trace"
	"refer/internal/world"
)

// actuatorLayout is the canonical 5-actuator layout that triangulates into
// the paper's 4 cells: four corners plus a center.
var actuatorLayout = []geo.Point{
	{X: 150, Y: 150},
	{X: 350, Y: 150},
	{X: 350, Y: 350},
	{X: 150, Y: 350},
	{X: 250, Y: 250},
}

// buildWorld creates the default scenario: 5 static actuators (range 250 m)
// and n sensors (range 100 m) deployed around random actuators, moving at
// up to maxSpeed m/s.
func buildWorld(t *testing.T, seed int64, n int, maxSpeed float64) *world.World {
	t.Helper()
	w := world.New(world.Config{Region: geo.Square(500), Seed: seed})
	for _, p := range actuatorLayout {
		w.AddNode(world.Actuator, mobility.Static{P: p}, 250, 0)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		anchor := actuatorLayout[rng.Intn(len(actuatorLayout))]
		p := w.Config().Region.RandomPointNear(rng, anchor, 140)
		if maxSpeed > 0 {
			w.AddNode(world.Sensor, mobility.NewWaypoint(w.Config().Region, p, maxSpeed, rng), 100, 0)
		} else {
			w.AddNode(world.Sensor, mobility.Static{P: p}, 100, 0)
		}
	}
	return w
}

// buildSystem builds REFER on a fresh default world.
func buildSystem(t *testing.T, seed int64, n int, maxSpeed float64) (*world.World, *System) {
	t.Helper()
	w := buildWorld(t, seed, n, maxSpeed)
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w, s
}

func TestBuildCreatesFourCompleteCells(t *testing.T) {
	_, s := buildSystem(t, 1, 200, 0)
	if got := len(s.Cells()); got != 4 {
		t.Fatalf("cells = %d, want 4", got)
	}
	for _, c := range s.Cells() {
		if got := len(c.NodeByKID); got != 12 {
			t.Fatalf("cell %d has %d overlay members, want 12 (K(2,3))", c.CID, got)
		}
		// The three corners are actuators holding the rotation KIDs.
		kids := map[kautz.ID]bool{}
		for _, corner := range c.Corners {
			kid, ok := c.KIDOf(corner)
			if !ok {
				t.Fatalf("cell %d corner %d has no KID", c.CID, corner)
			}
			kids[kid] = true
		}
		for _, want := range []kautz.ID{"012", "120", "201"} {
			if !kids[want] {
				t.Fatalf("cell %d corner KIDs = %v, missing %s", c.CID, kids, want)
			}
		}
		// Every overlay sensor is inside the (expanded) cell.
		for kid, id := range c.NodeByKID {
			if c.IsActuatorKID(kid) {
				continue
			}
			n := s.w.Node(id)
			if n.Kind != world.Sensor {
				t.Fatalf("cell %d KID %s held by non-sensor %d", c.CID, kid, id)
			}
		}
	}
}

func TestBuildChainAdjacency(t *testing.T) {
	// The embedding protocol selects sensors along radio-connected chains:
	// each corner-to-successor path and the sensor-sensor path must be
	// physically connected hop by hop.
	w, s := buildSystem(t, 2, 200, 0)
	for _, c := range s.Cells() {
		for _, x := range []kautz.ID{"012", "120", "201"} {
			s1, s2 := pathKIDs(x)
			chain := []kautz.ID{x, s1, s2, rotateLeft(x)}
			for i := 0; i+1 < len(chain); i++ {
				a, b := c.NodeByKID[chain[i]], c.NodeByKID[chain[i+1]]
				if d := w.Distance(a, b); d > 100 {
					t.Errorf("cell %d chain %s→%s: nodes %d,%d are %.0f m apart (>100)",
						c.CID, chain[i], chain[i+1], a, b, d)
				}
			}
		}
	}
}

func TestBuildChargesConstructionEnergy(t *testing.T) {
	w, _ := buildSystem(t, 3, 200, 0)
	if got := w.TotalEnergy(energy.Construction); got <= 0 {
		t.Fatal("construction energy not charged")
	}
	if got := w.TotalEnergy(energy.Communication); got != 0 {
		t.Fatalf("communication energy = %f during construction, want 0", got)
	}
}

func TestBuildValidation(t *testing.T) {
	w := buildWorld(t, 4, 50, 0)
	s := New(w, Config{Degree: 3, Diameter: 3})
	if err := s.Build(); err == nil {
		t.Error("degree 3 embedding should be rejected")
	}
	s = New(w, Config{Degree: 2, Diameter: 4})
	if err := s.Build(); err == nil {
		t.Error("diameter 4 embedding should be rejected")
	}
	// Too few actuators.
	w2 := world.New(world.Config{Region: geo.Square(500), Seed: 1})
	w2.AddNode(world.Actuator, mobility.Static{P: geo.Point{X: 100, Y: 100}}, 250, 0)
	w2.AddNode(world.Actuator, mobility.Static{P: geo.Point{X: 200, Y: 100}}, 250, 0)
	s2 := New(w2, DefaultConfig())
	if err := s2.Build(); err == nil {
		t.Error("2 actuators should be rejected")
	}
	// Double build.
	_, s3 := buildSystem(t, 5, 200, 0)
	if err := s3.Build(); err == nil {
		t.Error("second Build should fail")
	}
}

func TestAddressOf(t *testing.T) {
	_, s := buildSystem(t, 6, 200, 0)
	c := s.Cells()[0]
	corner := c.Corners[0]
	addr, ok := s.AddressOf(corner)
	if !ok {
		t.Fatal("corner has no address")
	}
	if addr.CID != c.CID {
		t.Fatalf("corner address = %v, want CID %d", addr, c.CID)
	}
	if addr.String() == "" {
		t.Error("empty address string")
	}
	// A plain sensor has no address.
	for _, n := range s.w.Nodes() {
		if n.Kind != world.Sensor {
			continue
		}
		if _, isMember := s.sensorCell[n.ID]; !isMember {
			if _, ok := s.AddressOf(n.ID); ok {
				t.Fatalf("unaffiliated sensor %d has an address", n.ID)
			}
			break
		}
	}
}

func TestInjectDeliversToActuator(t *testing.T) {
	w, s := buildSystem(t, 7, 200, 0)
	s.StopMaintenance()
	delivered := 0
	attempts := 0
	for _, n := range w.Nodes() {
		if n.Kind != world.Sensor || attempts >= 40 {
			continue
		}
		attempts++
		s.Inject(n.ID, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.Run()
	if delivered < attempts*8/10 {
		t.Fatalf("delivered %d of %d injected packets", delivered, attempts)
	}
}

func TestInjectFromOverlayMemberIsFast(t *testing.T) {
	w, s := buildSystem(t, 8, 200, 0)
	s.StopMaintenance()
	w.Sched.Run() // drain construction airtime before measuring
	started := w.Now()
	c := s.Cells()[0]
	// Pick the overlay sensor holding KID 021 (farthest class from corners).
	src := c.NodeByKID["021"]
	var deliveredAt time.Duration
	ok := false
	s.Inject(src, func(o bool) { ok, deliveredAt = o, w.Now() })
	w.Sched.Run()
	if !ok {
		t.Fatal("not delivered")
	}
	// Intra-cell paths are at most k=3 overlay hops (each ≤ 2 radio hops):
	// delivery should be well within the QoS deadline.
	if deliveredAt-started > 100*time.Millisecond {
		t.Fatalf("delivery took %v", deliveredAt-started)
	}
}

func TestRoutingFailoverOnFault(t *testing.T) {
	w, s := buildSystem(t, 9, 200, 0)
	s.StopMaintenance()
	c := s.Cells()[0]
	// Source 021 routes toward its nearest corner; fail one mid-path sensor
	// and verify delivery still succeeds via a disjoint path.
	src := c.NodeByKID["021"]
	corners, _ := s.cornersByKautzDistance(c, "021")
	dstKID := corners[0]
	routes, err := kautz.Routes(2, "021", dstKID)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the shortest path's first intermediate (if it is a sensor).
	shortest := routes[0]
	victimKID := shortest.Path[1]
	if c.IsActuatorKID(victimKID) {
		t.Skip("shortest path starts at an actuator; scenario not applicable")
	}
	w.SetFailed(c.NodeByKID[victimKID], true)
	ok := false
	s.Inject(src, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("packet not delivered despite d-1 disjoint alternatives")
	}
	if s.Stats().FailoverSwitches == 0 {
		t.Fatal("no failover recorded")
	}
}

func TestRoutingAllPathsDeadDrops(t *testing.T) {
	w, s := buildSystem(t, 10, 200, 0)
	s.StopMaintenance()
	c := s.Cells()[0]
	src := c.NodeByKID["021"]
	// Kill every overlay sensor except the source: no route survives.
	for kid, id := range c.NodeByKID {
		if kid == "021" || c.IsActuatorKID(kid) {
			continue
		}
		w.SetFailed(id, true)
	}
	var got *bool
	s.Inject(src, func(o bool) { got = &o })
	w.Sched.Run()
	if got == nil {
		t.Fatal("done callback never fired")
	}
	// 021's successors are 210/212 (sensors, dead); its corners are not
	// direct successors, so the packet must be dropped.
	if *got {
		t.Log("delivered via relay fallback — acceptable if a relay path existed")
	} else if s.Stats().Drops == 0 {
		t.Fatal("drop not recorded")
	}
}

func TestSendToSameCell(t *testing.T) {
	w, s := buildSystem(t, 11, 200, 0)
	s.StopMaintenance()
	c := s.Cells()[0]
	src := c.NodeByKID["101"]
	ok := false
	s.SendTo(src, Address{CID: c.CID, KID: "201"}, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("intra-cell SendTo failed")
	}
}

func TestSendToOtherCell(t *testing.T) {
	w, s := buildSystem(t, 12, 200, 0)
	s.StopMaintenance()
	if len(s.Cells()) < 2 {
		t.Skip("need 2+ cells")
	}
	src := s.Cells()[0].NodeByKID["010"]
	dst := s.Cells()[len(s.Cells())-1]
	ok := false
	s.SendTo(src, Address{CID: dst.CID, KID: "212"}, func(o bool) { ok = o })
	w.Sched.Run()
	if !ok {
		t.Fatal("inter-cell SendTo failed")
	}
	if s.Stats().InterCell == 0 {
		t.Fatal("inter-cell counter not incremented")
	}
}

func TestSendToInvalidDestination(t *testing.T) {
	w, s := buildSystem(t, 13, 200, 0)
	s.StopMaintenance()
	src := s.Cells()[0].NodeByKID["010"]
	var ok *bool
	s.SendTo(src, Address{CID: 999, KID: "212"}, func(o bool) { ok = &o })
	w.Sched.Run()
	if ok == nil || *ok {
		t.Fatal("SendTo to unknown cell should fail")
	}
}

func TestInjectFromFailedSource(t *testing.T) {
	w, s := buildSystem(t, 14, 200, 0)
	s.StopMaintenance()
	src := s.Cells()[0].NodeByKID["010"]
	w.SetFailed(src, true)
	var ok *bool
	s.Inject(src, func(o bool) { ok = &o })
	w.Sched.Run()
	if ok == nil || *ok {
		t.Fatal("inject from failed source should fail")
	}
}

func TestMaintenanceReplacesFailedNode(t *testing.T) {
	w, s := buildSystem(t, 15, 200, 0)
	c := s.Cells()[0]
	victimKID := kautz.ID("210")
	victim := c.NodeByKID[victimKID]
	w.SetFailed(victim, true)
	w.Sched.RunUntil(30 * time.Second) // several maintenance rounds
	replacement := c.NodeByKID[victimKID]
	if replacement == victim {
		t.Fatal("failed overlay node was never replaced")
	}
	if !w.Node(replacement).Alive() {
		t.Fatal("replacement is not alive")
	}
	if s.Stats().Replacements == 0 {
		t.Fatal("replacement not counted")
	}
	// The demoted node returns to the sleep pool.
	if _, stillMember := c.kidOfNode[victim]; stillMember {
		t.Fatal("victim still in overlay")
	}
}

func TestMaintenanceKeepsDeliveryUnderMobility(t *testing.T) {
	// With mobile sensors and maintenance on, injection keeps succeeding
	// over time because degraded overlay nodes are replaced.
	w := buildWorld(t, 16, 250, 1.5)
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	delivered, attempts := 0, 0
	var injectRound func()
	injectRound = func() {
		if w.Now() > 280*time.Second {
			return
		}
		for _, c := range s.Cells() {
			src := c.NodeByKID["021"]
			if src == world.NoNode || !w.Node(src).Alive() {
				continue
			}
			attempts++
			s.Inject(src, func(ok bool) {
				if ok {
					delivered++
				}
			})
		}
		if _, err := w.Sched.After(10*time.Second, injectRound); err != nil {
			t.Errorf("schedule: %v", err)
		}
	}
	injectRound()
	w.Sched.RunUntil(300 * time.Second)
	if attempts == 0 {
		t.Fatal("no injection attempts")
	}
	if delivered < attempts*7/10 {
		t.Fatalf("delivered %d/%d under mobility with maintenance", delivered, attempts)
	}
}

func TestDeterministicBuild(t *testing.T) {
	_, s1 := buildSystem(t, 17, 200, 0)
	_, s2 := buildSystem(t, 17, 200, 0)
	for i := range s1.Cells() {
		c1, c2 := s1.Cells()[i], s2.Cells()[i]
		if c1.CID != c2.CID || len(c1.NodeByKID) != len(c2.NodeByKID) {
			t.Fatalf("cells differ at %d", i)
		}
		for kid, id := range c1.NodeByKID {
			if c2.NodeByKID[kid] != id {
				t.Fatalf("cell %d KID %s: %d vs %d", c1.CID, kid, id, c2.NodeByKID[kid])
			}
		}
	}
}

func TestCellMembersExcludesOverlay(t *testing.T) {
	_, s := buildSystem(t, 18, 200, 0)
	c := s.Cells()[0]
	for _, m := range c.Members() {
		if _, overlay := c.kidOfNode[m]; overlay {
			t.Fatalf("Members() returned overlay node %d", m)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	_, s := buildSystem(t, 19, 200, 0)
	st := s.Stats()
	if st.Drops != 0 || st.Replacements != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
}

func TestDisableFailoverDropsOnFirstFailure(t *testing.T) {
	w := buildWorld(t, 20, 200, 0)
	cfg := DefaultConfig()
	cfg.DisableFailover = true
	s := New(w, cfg)
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	s.StopMaintenance()
	c := s.Cells()[0]
	src := c.NodeByKID["021"]
	// Fail the greedy shortest successor toward the first-choice corner.
	corners, _ := s.cornersByKautzDistance(c, "021")
	dstKID := corners[0]
	routes, err := kautz.Routes(2, "021", dstKID)
	if err != nil {
		t.Fatal(err)
	}
	victimKID := routes[0].Path[1]
	if c.IsActuatorKID(victimKID) {
		t.Skip("successor is an actuator")
	}
	w.SetFailed(c.NodeByKID[victimKID], true)
	var got *bool
	s.Inject(src, func(ok bool) { got = &ok })
	w.Sched.Run()
	if got == nil {
		t.Fatal("no outcome")
	}
	if *got {
		t.Fatal("ablated router should drop when the greedy successor fails")
	}
	// The full router delivers the same packet (fresh world, same seed).
	w2 := buildWorld(t, 20, 200, 0)
	s2 := New(w2, DefaultConfig())
	if err := s2.Build(); err != nil {
		t.Fatal(err)
	}
	s2.StopMaintenance()
	w2.SetFailed(s2.Cells()[0].NodeByKID[victimKID], true)
	delivered := false
	s2.Inject(s2.Cells()[0].NodeByKID["021"], func(ok bool) { delivered = ok })
	w2.Sched.Run()
	if !delivered {
		t.Fatal("full router should deliver via a disjoint path")
	}
}

func TestDisableMaintenanceLeavesFailuresUnrepaired(t *testing.T) {
	w := buildWorld(t, 21, 200, 0)
	cfg := DefaultConfig()
	cfg.DisableMaintenance = true
	s := New(w, cfg)
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	c := s.Cells()[0]
	victim := c.NodeByKID["210"]
	w.SetFailed(victim, true)
	w.Sched.RunUntil(60 * time.Second)
	if c.NodeByKID["210"] != victim {
		t.Fatal("maintenance ran despite being disabled")
	}
	if s.Stats().Replacements != 0 {
		t.Fatal("replacements counted with maintenance disabled")
	}
}

func TestTwoPhaseReplacementDelay(t *testing.T) {
	// A freshly failed overlay sensor survives the first probe round
	// (detection) and is replaced on the second — the window where the
	// Theorem 3.8 failover carries the traffic.
	w, s := buildSystem(t, 22, 200, 0)
	c := s.Cells()[0]
	victim := c.NodeByKID["210"]
	w.SetFailed(victim, true)
	interval := DefaultConfig().ProbeInterval
	// After one probe round the node is detected but not yet replaced.
	w.Sched.RunUntil(interval + interval/2)
	if c.NodeByKID["210"] != victim {
		t.Fatal("replaced too early (within one probe round)")
	}
	// After the second round it must be replaced.
	w.Sched.RunUntil(3 * interval)
	if c.NodeByKID["210"] == victim {
		t.Fatal("not replaced after two probe rounds")
	}
}

func TestGeneralEmbeddingK33(t *testing.T) {
	w := buildWorld(t, 23, 350, 0)
	cfg := DefaultConfig()
	cfg.Degree = 3
	s := New(w, cfg)
	if err := s.Build(); err != nil {
		t.Fatalf("K(3,3) Build: %v", err)
	}
	s.StopMaintenance()
	if got := len(s.Cells()); got != 4 {
		t.Fatalf("cells = %d", got)
	}
	for _, c := range s.Cells() {
		if got := len(c.NodeByKID); got != 36 {
			t.Fatalf("cell %d has %d members, want 36 (K(3,3))", c.CID, got)
		}
		// Corners still hold the rotation KIDs.
		for _, want := range []kautz.ID{"012", "120", "201"} {
			id, ok := c.Node(want)
			if !ok || s.w.Node(id).Kind != world.Actuator {
				t.Fatalf("cell %d corner %s not an actuator", c.CID, want)
			}
		}
	}
	// Every overlay member can reach an actuator through the d=3 router.
	delivered, attempts := 0, 0
	for _, c := range s.Cells() {
		for kid, id := range c.NodeByKID {
			if c.IsActuatorKID(kid) {
				continue
			}
			attempts++
			s.Inject(id, func(ok bool) {
				if ok {
					delivered++
				}
			})
		}
	}
	w.Sched.Run()
	if delivered < attempts*9/10 {
		t.Fatalf("delivered %d/%d from K(3,3) overlay members", delivered, attempts)
	}
}

func TestGeneralEmbeddingRejectsBadDegrees(t *testing.T) {
	w := buildWorld(t, 24, 100, 0)
	for _, d := range []int{0, 1, 10} {
		cfg := DefaultConfig()
		cfg.Degree = d
		if cfg.Degree == 0 {
			continue // New() coerces 0 to the default
		}
		s := New(w, cfg)
		if err := s.Build(); err == nil {
			t.Errorf("degree %d accepted", d)
		}
	}
}

func TestGeneralEmbeddingSparseFails(t *testing.T) {
	// 100 sensors cannot host 33 overlay sensors per cell.
	w := buildWorld(t, 25, 100, 0)
	cfg := DefaultConfig()
	cfg.Degree = 3
	s := New(w, cfg)
	if err := s.Build(); err == nil {
		t.Fatal("K(3,3) on 100 sensors should fail to embed")
	}
}

// failoverCell hand-builds a one-relay routing scenario: the source holds
// KID 021, its two Kautz successors 210/212 sit physically out of range (so
// a transmission to them fails over the radio unless they are failed
// locally first), and corner 120 is the destination. It returns the system,
// the source node and the successor holders keyed by KID.
func failoverCell(t *testing.T) (*world.World, *System, *Cell, world.NodeID, map[kautz.ID]world.NodeID) {
	t.Helper()
	w := world.New(world.Config{Region: geo.Square(500), Seed: 1})
	src := w.AddNode(world.Sensor, mobility.Static{P: geo.Point{X: 100, Y: 100}}, 100, 0)
	n210 := w.AddNode(world.Sensor, mobility.Static{P: geo.Point{X: 480, Y: 480}}, 100, 0)
	n212 := w.AddNode(world.Sensor, mobility.Static{P: geo.Point{X: 420, Y: 480}}, 100, 0)
	dst := w.AddNode(world.Actuator, mobility.Static{P: geo.Point{X: 100, Y: 480}}, 250, 0)
	s := New(w, DefaultConfig())
	g, err := kautz.New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.graph = g
	c := &Cell{
		NodeByKID: map[kautz.ID]world.NodeID{
			"021": src.ID, "210": n210.ID, "212": n212.ID, "120": dst.ID,
		},
		kidOfNode: map[world.NodeID]kautz.ID{
			src.ID: "021", n210.ID: "210", n212.ID: "212", dst.ID: "120",
		},
		members: map[world.NodeID]bool{},
	}
	succs := map[kautz.ID]world.NodeID{"210": n210.ID, "212": n212.ID}
	return w, s, c, src.ID, succs
}

// TestFailoverSwitchInvariant checks the FailoverSwitches accounting
// invariant: every switch to an alternate disjoint path is counted exactly
// once — whether the abandoned successor was known dead locally or failed
// during transmission — and abandoning the last path (a drop, not a switch)
// is never counted. Routes from 021 to 120 rank 212 first (the greedy
// shortest path), then 210, so each sub-case pins down one failure mode per
// rank position.
func TestFailoverSwitchInvariant(t *testing.T) {
	cases := []struct {
		name string
		fail []kautz.ID // successors to fail locally before routing
	}{
		// Both transmissions fail over the radio: one switch (to the second
		// path), then the last path is abandoned without a count.
		{name: "both-transmission-failures", fail: nil},
		// First-ranked successor dead locally (free switch), second fails
		// during transmission with no alternate left.
		{name: "first-locally-dead", fail: []kautz.ID{"212"}},
		// First fails during transmission (one switch), second dead locally
		// with no alternate left.
		{name: "second-locally-dead", fail: []kautz.ID{"210"}},
		// Both dead locally: the single switch is the local one.
		{name: "both-locally-dead", fail: []kautz.ID{"210", "212"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, s, c, src, succs := failoverCell(t)
			for _, kid := range tc.fail {
				w.SetFailed(succs[kid], true)
			}
			var got *bool
			s.routeIntraCell(c, src, "120", s.cfg.HopBudget, trace.Packet{}, func(ok bool) { got = &ok })
			w.Sched.Run()
			if got == nil {
				t.Fatal("done callback never fired")
			}
			if *got {
				t.Fatal("delivery impossible in this scenario")
			}
			if n := s.Stats().FailoverSwitches; n != 1 {
				t.Fatalf("FailoverSwitches = %d, want exactly 1 (one switch to the alternate path)", n)
			}
		})
	}
}

// TestFailoverDisabledCountsNoSwitches checks the ablated router records no
// failover switches at all.
func TestFailoverDisabledCountsNoSwitches(t *testing.T) {
	w, s, c, src, succs := failoverCell(t)
	s.cfg.DisableFailover = true
	w.SetFailed(succs["212"], true)
	var got *bool
	s.routeIntraCell(c, src, "120", s.cfg.HopBudget, trace.Packet{}, func(ok bool) { got = &ok })
	w.Sched.Run()
	if got == nil || *got {
		t.Fatal("expected a drop")
	}
	if n := s.Stats().FailoverSwitches; n != 0 {
		t.Fatalf("FailoverSwitches = %d with failover disabled, want 0", n)
	}
}

// TestEntryPointTieBreak checks the deterministic tie-break: two overlay
// members equidistant from a plain sensor must resolve to the smaller node
// ID, not to map iteration order.
func TestEntryPointTieBreak(t *testing.T) {
	_, s := buildSystem(t, 21, 200, 0)
	sensors := 0
	for _, n := range s.w.Nodes() {
		if n.Kind == world.Sensor {
			sensors++
		}
	}
	// entryPoint must be a pure function of world state: repeated calls
	// (each re-iterating the cell maps) agree for every source.
	for _, n := range s.w.Nodes() {
		first, firstCell := s.entryPoint(n.ID)
		for i := 0; i < 10; i++ {
			again, againCell := s.entryPoint(n.ID)
			if again != first || againCell != firstCell {
				t.Fatalf("entryPoint(%d) unstable: %d vs %d", n.ID, first, again)
			}
		}
	}
	if sensors == 0 {
		t.Fatal("no sensors in scenario")
	}
}
