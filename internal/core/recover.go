package core

import (
	"time"

	"refer/internal/energy"
	"refer/internal/kautz"
	"refer/internal/recovery"
	"refer/internal/world"
)

// This file implements recovery.Repairer for REFER: the self-healing
// protocols that repair permanent actuator failures (ROADMAP item 4,
// DESIGN.md §12). Theorem 3.8 failover and topology maintenance tolerate
// sensor churn, but a dead cell *corner* is structural damage neither can
// touch — sensors cannot replace actuators. Three escalating repairs:
//
//  1. Corner re-election: promote the best surviving actuator to the vacant
//     corner slot, rebinding the corner's KID. The cell geometry (triangle,
//     centroid, CAN coordinate) stays fixed — only the KID's holder changes,
//     exactly like a maintenance replacement at the actuator tier.
//  2. Cell merge: with no eligible successor, the cell retires in place and
//     an absorbing neighbor inherits its population. Retired cells stay in
//     s.cells (iteration order is part of the determinism contract) with
//     cleared overlay state.
//  3. CAN zone takeover: the retired cell's zone remaps onto its absorber so
//     hashed lookups and inter-cell routes keep resolving.
//
// Determinism rules: candidate ranking is an order-independent minimum over
// s.actuators with a smaller-NodeID tie-break (the property test permutes
// discovery order); absorber selection iterates s.cells in order; map
// iterations inside a merge perform only per-key-independent mutations. A
// sweep draws nothing from the world RNG; its only radio cost is one
// announcement broadcast per completed repair.

// RecoverSweep implements recovery.Repairer: one detection/repair pass over
// the active cells. A corner observed dead for at least grace is repaired;
// grace 0 repairs on first observation. Returns the actions applied, in
// cell order (re-elections per corner slot, then merge + takeover).
func (s *System) RecoverSweep(grace time.Duration) []recovery.Action {
	if !s.built {
		return nil
	}
	if s.cornerDownAt == nil {
		s.cornerDownAt = make(map[world.NodeID]time.Duration)
	}
	var actions []recovery.Action
	now := s.w.Now()
	for _, c := range s.cells {
		if c.retired {
			continue
		}
		merged := false
		for slot := 0; slot < 3 && !merged; slot++ {
			id := c.Corners[slot]
			if s.w.Node(id).Alive() {
				delete(s.cornerDownAt, id)
				continue
			}
			downAt, seen := s.cornerDownAt[id]
			if !seen {
				downAt = now
				s.cornerDownAt[id] = now
			}
			if now-downAt < grace {
				continue
			}
			if a, ok := s.reelectCorner(c, slot, downAt); ok {
				actions = append(actions, a)
				continue
			}
			// No eligible successor: retire the whole cell. The merge may
			// fail too (no active absorber this sweep) — then the cell stays
			// broken and the sweep retries; Theorem 3.8 corner fallback
			// carries what traffic it can meanwhile.
			ms := s.mergeCell(c, downAt)
			actions = append(actions, ms...)
			merged = len(ms) > 0
		}
	}
	return actions
}

// reelectCorner promotes the best surviving actuator into corner slot of c:
// alive, not already an overlay member of c, and within its own radio range
// of the vacant corner's build-time vertex (so it can serve the corner's
// geometric area). Nearest to the vertex wins; ties break on the smaller
// NodeID — an order-independent minimum, so permuting candidate discovery
// cannot change the winner.
func (s *System) reelectCorner(c *Cell, slot int, detectedAt time.Duration) (recovery.Action, bool) {
	old := c.Corners[slot]
	vertex := c.Vertices[slot]
	best := world.NoNode
	bestDist := 0.0
	for _, cand := range s.actuators {
		if !s.w.Node(cand).Alive() {
			continue
		}
		if _, holds := c.kidOfNode[cand]; holds {
			continue // already corners this cell (actuators hold only corner KIDs)
		}
		d := s.w.Position(cand).Dist(vertex)
		if d > s.w.Node(cand).Range {
			continue
		}
		if best == world.NoNode || d < bestDist || (d == bestDist && cand < best) {
			best, bestDist = cand, d
		}
	}
	if best == world.NoNode {
		return recovery.Action{}, false
	}
	// Rebind the corner's KID to the winner. The KID set is unchanged, so
	// the cell's kidOrder cache stays valid.
	kid := c.kidOfNode[old]
	delete(c.kidOfNode, old)
	c.Corners[slot] = best
	c.NodeByKID[kid] = best
	c.kidOfNode[best] = kid
	delete(s.cornerDownAt, best) // alive by construction; drop any stale record
	s.rebindMemberCell(old)
	s.rebindMemberCell(best)
	// Announcement cost: the promoted actuator broadcasts its new address to
	// the cell (mains-powered, and alive by construction).
	s.w.Broadcast(best, energy.Communication, nil)
	return recovery.Action{
		Kind: recovery.Reelect, CID: c.CID, Corner: slot, NewCorner: best,
		DetectedAt: detectedAt, RepairedAt: s.w.Now(),
	}, true
}

// mergeCell retires c in place and moves its population into an absorbing
// neighbor, then remaps c's CAN zone onto the absorber. Returns the merge
// and takeover actions, or nil when no active absorber exists this sweep.
// Every map iteration below performs only mutations independent across
// keys, so Go's randomized map order cannot perturb the outcome.
func (s *System) mergeCell(c *Cell, detectedAt time.Duration) []recovery.Action {
	absorber := s.selectAbsorber(c)
	if absorber == nil {
		return nil
	}
	// Demote c's overlay sensors into the absorber's sleep pool: they hold
	// no KID anywhere afterwards, so they leave memberCell and any pending
	// degradation record.
	for id := range c.kidOfNode {
		if s.w.Node(id).Kind != world.Sensor {
			continue
		}
		delete(s.memberCell, id)
		delete(s.degradedAt, id)
		absorber.members[id] = true
		s.sensorCell[id] = absorber
	}
	// Plain members follow.
	for id := range c.members {
		delete(s.degradedAt, id)
		absorber.members[id] = true
		s.sensorCell[id] = absorber
	}
	corners := c.Corners
	// Retire in place: c stays in s.cells (iteration order) with cleared
	// overlay state; kidOrder is invalidated explicitly because its cache
	// test assumes KIDs are only ever added.
	c.NodeByKID = make(map[kautz.ID]world.NodeID)
	c.kidOfNode = make(map[world.NodeID]kautz.ID)
	c.members = make(map[world.NodeID]bool)
	c.kidOrder = nil
	c.retired = true
	c.absorbedBy = absorber
	for _, corner := range corners {
		s.rebindMemberCell(corner)
	}
	// CAN zone takeover: hashed lookups and inter-cell routes addressing c
	// resolve to the absorber from now on (route remapping in route.go).
	if s.dht.takenOver == nil {
		s.dht.takenOver = make(map[int]int)
	}
	s.dht.takenOver[c.CID] = absorber.CID
	// Announcement cost: the absorber's first alive corner broadcasts the
	// takeover (it has one by selection).
	for _, corner := range absorber.Corners {
		if s.w.Node(corner).Alive() {
			s.w.Broadcast(corner, energy.Communication, nil)
			break
		}
	}
	now := s.w.Now()
	return []recovery.Action{
		{Kind: recovery.Merge, CID: c.CID, AbsorberCID: absorber.CID,
			DetectedAt: detectedAt, RepairedAt: now},
		{Kind: recovery.Takeover, CID: c.CID, AbsorberCID: absorber.CID,
			DetectedAt: detectedAt, RepairedAt: now},
	}
}

// selectAbsorber picks the active cell that inherits c's population:
// CAN-adjacent cells first (members stay near their new overlay), then the
// most alive corners, then the nearest centroid, then the smallest CID
// (s.cells order keeps the whole ranking deterministic). A cell with no
// alive corner cannot absorb — it is itself waiting for repair.
func (s *System) selectAbsorber(c *Cell) *Cell {
	var best *Cell
	bestAdj := false
	bestAlive := -1
	bestDist := 0.0
	for _, cand := range s.cells {
		if cand == c || cand.retired {
			continue
		}
		alive := 0
		for _, corner := range cand.Corners {
			if s.w.Node(corner).Alive() {
				alive++
			}
		}
		if alive == 0 {
			continue
		}
		adj := cellsAdjacent(s.w, c, cand)
		d := c.Centroid.Dist(cand.Centroid)
		better := false
		switch {
		case best == nil:
			better = true
		case adj != bestAdj:
			better = adj
		case alive != bestAlive:
			better = alive > bestAlive
		case d != bestDist:
			better = d < bestDist
		}
		if better {
			best, bestAdj, bestAlive, bestDist = cand, adj, alive, d
		}
	}
	return best
}

// rebindMemberCell recomputes a node's memberCell entry after a repair moved
// overlay roles around: the first active cell (s.cells order) whose overlay
// the node serves, or no entry at all — the same first-cell tie-break the
// entry-selection scan uses.
func (s *System) rebindMemberCell(id world.NodeID) {
	for _, c := range s.cells {
		if c.retired {
			continue
		}
		if _, ok := c.kidOfNode[id]; ok {
			s.memberCell[id] = c
			return
		}
	}
	delete(s.memberCell, id)
}

// activeCell resolves a cell through the merge chain: retired cells forward
// to their absorber. Chains terminate because an absorber is active when
// recorded and retirement is permanent, so no cycle can form.
func (s *System) activeCell(c *Cell) *Cell {
	for c != nil && c.retired {
		c = c.absorbedBy
	}
	return c
}

// Retired reports whether the cell was retired by a merge, and which cell
// absorbed it.
func (c *Cell) Retired() (*Cell, bool) { return c.absorbedBy, c.retired }
