package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"refer/internal/recovery"
	"refer/internal/scenario"
	"refer/internal/world"
)

// buildLattice builds REFER on the 3×3 actuator lattice (eight cells, nine
// actuators) — the recovery suite's deployment: killed corners have
// surviving peers to promote and neighbor cells to merge into.
func buildLattice(t testing.TB, seed int64) (*world.World, *System) {
	t.Helper()
	w := scenario.Build(scenario.Params{Seed: seed, Sensors: 400, MaxSpeed: 1, ActuatorGrid: 3})
	s := New(w, DefaultConfig())
	if err := s.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w, s
}

// overlayDigest summarizes the recovery-relevant state of every cell into a
// canonical string, so replays can be compared byte-for-byte.
func overlayDigest(s *System) string {
	var b strings.Builder
	for _, c := range s.cells {
		absorber := -1
		if c.absorbedBy != nil {
			absorber = c.absorbedBy.CID
		}
		fmt.Fprintf(&b, "cell %d retired=%t absorber=%d corners=%v overlay=%d members=%d\n",
			c.CID, c.retired, absorber, c.Corners, len(c.NodeByKID), len(c.members))
	}
	if s.dht != nil {
		cids := make([]int, 0, len(s.dht.takenOver))
		for cid := range s.dht.takenOver {
			cids = append(cids, cid)
		}
		sort.Ints(cids)
		for _, cid := range cids {
			fmt.Fprintf(&b, "takeover %d->%d\n", cid, s.dht.takenOver[cid])
		}
	}
	return b.String()
}

// FuzzRecoverySchedule drives arbitrary interleavings of actuator kills,
// revivals, virtual-time advances (which run maintenance rounds) and
// recovery sweeps, asserting the structural invariants after every single
// step. Any sequence that corrupts the overlay, the membership maps or the
// CAN takeover chains — or that fails to terminate — is a bug.
func FuzzRecoverySchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 4, 8, 3, 3, 3})           // pile kills onto one cell, then sweep
	f.Add([]byte{0, 2, 1, 2, 0, 2, 3, 1, 3})  // kill/advance/revive churn
	f.Add([]byte{0, 4, 8, 12, 16, 20, 24, 3}) // near-total actuator loss
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		w, s := buildLattice(t, 5)
		check := func(step int, op string) {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d (%s): %v", step, op, err)
			}
		}
		check(-1, "build")
		for i, b := range ops {
			arg := int(b) / 4
			switch b % 4 {
			case 0: // kill an actuator (idempotent on the dead)
				id := s.actuators[arg%len(s.actuators)]
				w.SetFailed(id, true)
				check(i, fmt.Sprintf("kill %d", id))
			case 1: // revive an actuator
				id := s.actuators[arg%len(s.actuators)]
				w.SetFailed(id, false)
				check(i, fmt.Sprintf("revive %d", id))
			case 2: // advance virtual time (maintenance rounds run)
				w.Sched.RunUntil(w.Now() + 3*time.Second)
				check(i, "advance")
			case 3: // recovery sweep; grace varies with the operand
				grace := time.Duration(arg%3) * 5 * time.Second
				for _, a := range s.RecoverSweep(grace) {
					check(i, fmt.Sprintf("sweep action %s cell %d", a.Kind, a.CID))
				}
				check(i, "sweep")
			}
		}
	})
}

// TestReelectionPermutationInvariant is the determinism property of corner
// re-election: the winner is an order-independent minimum (distance, then
// NodeID), so permuting the candidate discovery order — here the actuator
// roster the sweep scans — must elect the same actuator every time.
func TestReelectionPermutationInvariant(t *testing.T) {
	var base []recovery.Action
	for trial := 0; trial < 8; trial++ {
		w, s := buildLattice(t, 5)
		// Permute the discovery order (trial 0 keeps the build order).
		rng := rand.New(rand.NewSource(int64(trial)))
		if trial > 0 {
			rng.Shuffle(len(s.actuators), func(i, j int) {
				s.actuators[i], s.actuators[j] = s.actuators[j], s.actuators[i]
			})
		}
		// Kill one corner of every cell, then repair them all in one sweep.
		for _, c := range s.cells {
			w.SetFailed(c.Corners[0], true)
		}
		actions := s.RecoverSweep(0)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(actions) == 0 {
			t.Fatalf("trial %d: no repairs", trial)
		}
		if trial == 0 {
			base = actions
			continue
		}
		if !reflect.DeepEqual(actions, base) {
			t.Fatalf("trial %d: actions diverged under permuted discovery:\n got %+v\nwant %+v",
				trial, actions, base)
		}
	}
}

// TestRecoverySimultaneousCornerKills kills two corners of the same cell at
// the same virtual instant: the sweep must repair both slots (or escalate to
// a merge) without ever presenting an inconsistent overlay, and the whole
// episode must replay byte-identically.
func TestRecoverySimultaneousCornerKills(t *testing.T) {
	episode := func() ([]recovery.Action, string) {
		w, s := buildLattice(t, 11)
		c := s.cells[0]
		w.SetFailed(c.Corners[0], true)
		w.SetFailed(c.Corners[1], true)
		actions := s.RecoverSweep(0)
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if len(actions) == 0 {
			t.Fatal("double corner kill repaired nothing")
		}
		// Both vacant slots must be addressed: two re-elections for this
		// cell, or a merge retiring it.
		var reelects int
		var merged bool
		for _, a := range actions {
			if a.CID != c.CID {
				continue
			}
			switch a.Kind {
			case recovery.Reelect:
				reelects++
			case recovery.Merge:
				merged = true
			}
		}
		if reelects != 2 && !merged {
			t.Fatalf("cell %d: %d re-elections and no merge after double kill: %+v",
				c.CID, reelects, actions)
		}
		return actions, overlayDigest(s)
	}
	a1, d1 := episode()
	a2, d2 := episode()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("replay diverged:\n got %+v\nwant %+v", a2, a1)
	}
	if d1 != d2 {
		t.Fatalf("overlay digest diverged:\n%s\nvs\n%s", d2, d1)
	}
}

// TestRecoveryKillMergedCellCorner retires a cell through a concentrated
// kill burst, then kills one of the retired cell's remaining historical
// corners: the sweep must skip the retired cell entirely (no repair is ever
// addressed to it again), repair the active cells that actuator cornered,
// and replay byte-identically.
func TestRecoveryKillMergedCellCorner(t *testing.T) {
	episode := func() ([]recovery.Action, string) {
		w, s := buildLattice(t, 11)
		// The concentrated burst of the conformance kill-merge campaign:
		// enough adjacent dead corners that some cell finds no successor.
		for _, i := range []int{1, 2, 4, 5} {
			w.SetFailed(s.actuators[i], true)
		}
		first := s.RecoverSweep(0)
		var retired *Cell
		for _, a := range first {
			if a.Kind == recovery.Merge {
				retired = s.cellByCID[a.CID]
			}
		}
		if retired == nil {
			t.Fatalf("burst produced no merge: %+v", first)
		}
		// Kill a still-alive historical corner of the retired cell.
		victim := world.NoNode
		for _, corner := range retired.Corners {
			if w.Node(corner).Alive() {
				victim = corner
				break
			}
		}
		if victim == world.NoNode {
			t.Skip("no alive historical corner to kill")
		}
		w.SetFailed(victim, true)
		second := s.RecoverSweep(0)
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, a := range second {
			if a.CID == retired.CID {
				t.Fatalf("sweep repaired retired cell %d: %+v", retired.CID, a)
			}
		}
		return append(first, second...), overlayDigest(s)
	}
	a1, d1 := episode()
	a2, d2 := episode()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("replay diverged:\n got %+v\nwant %+v", a2, a1)
	}
	if d1 != d2 {
		t.Fatalf("overlay digest diverged:\n%s\nvs\n%s", d2, d1)
	}
}
