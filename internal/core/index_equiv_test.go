package core

import (
	"testing"
	"time"

	"refer/internal/scenario"
	"refer/internal/world"
)

// Equivalence suite for the cell index: REFER built with the spatial index
// must be state-identical to REFER built with DisableCellIndex on the same
// seeded world, through construction, mobility, maintenance and churn. The
// only permitted divergence is the MaintainChecks work counter (the index's
// whole point is doing fewer predicate evaluations).

// buildPair builds the indexed and linear-scan systems on two identically
// seeded worlds (systems share nothing; the worlds evolve in lockstep
// because every draw and event is replayed from the same seed).
func buildPair(t *testing.T, p scenario.Params) (wi, wl *world.World, si, sl *System) {
	t.Helper()
	wi, wl = scenario.Build(p), scenario.Build(p)
	cfgIdx := DefaultConfig()
	cfgIdx.DisableMaintenance = true // rounds driven manually below
	cfgLin := cfgIdx
	cfgLin.DisableCellIndex = true
	si, sl = New(wi, cfgIdx), New(wl, cfgLin)
	if err := si.Build(); err != nil {
		t.Fatalf("indexed Build: %v", err)
	}
	if err := sl.Build(); err != nil {
		t.Fatalf("linear Build: %v", err)
	}
	return wi, wl, si, sl
}

// requireSameState compares every piece of membership state the index
// touches: cell populations, KID assignments, sensor homes, and the
// member→cell map against the linear system's equivalent lookups.
func requireSameState(t *testing.T, si, sl *System) {
	t.Helper()
	if len(si.cells) != len(sl.cells) {
		t.Fatalf("cells: %d vs %d", len(si.cells), len(sl.cells))
	}
	for i, ci := range si.cells {
		cl := sl.cells[i]
		if ci.CID != cl.CID {
			t.Fatalf("cell %d CID %d vs %d", i, ci.CID, cl.CID)
		}
		if len(ci.NodeByKID) != len(cl.NodeByKID) {
			t.Fatalf("cell %d overlay size %d vs %d", i, len(ci.NodeByKID), len(cl.NodeByKID))
		}
		for kid, id := range ci.NodeByKID {
			if cl.NodeByKID[kid] != id {
				t.Fatalf("cell %d KID %s: node %d vs %d", i, kid, id, cl.NodeByKID[kid])
			}
		}
		if len(ci.members) != len(cl.members) {
			t.Fatalf("cell %d members %d vs %d", i, len(ci.members), len(cl.members))
		}
		for id := range ci.members {
			if !cl.members[id] {
				t.Fatalf("cell %d member %d missing from linear system", i, id)
			}
		}
	}
	if len(si.sensorCell) != len(sl.sensorCell) {
		t.Fatalf("sensorCell size %d vs %d", len(si.sensorCell), len(sl.sensorCell))
	}
	for id, ci := range si.sensorCell {
		cl, ok := sl.sensorCell[id]
		if !ok || ci.CID != cl.CID {
			t.Fatalf("sensor %d homed to CID %d, linear disagrees (%v)", id, ci.CID, cl)
		}
	}
	stI, stL := si.Stats(), sl.Stats()
	stI.MaintainChecks, stL.MaintainChecks = 0, 0
	if stI != stL {
		t.Fatalf("stats diverged:\nindexed: %+v\nlinear:  %+v", stI, stL)
	}
}

// requireSameEntry compares entryPoint for every node of the pair.
func requireSameEntry(t *testing.T, wi *world.World, si, sl *System) {
	t.Helper()
	for _, n := range wi.Nodes() {
		ni, ci := si.entryPoint(n.ID)
		nl, cl := sl.entryPoint(n.ID)
		if ni != nl {
			t.Fatalf("entryPoint(%d): node %d vs %d", n.ID, ni, nl)
		}
		if (ci == nil) != (cl == nil) || (ci != nil && ci.CID != cl.CID) {
			t.Fatalf("entryPoint(%d): cell %v vs %v", n.ID, ci, cl)
		}
	}
}

// step advances both worlds' virtual clocks by d through a no-op event.
func step(t *testing.T, wi, wl *world.World, d time.Duration) {
	t.Helper()
	for _, w := range []*world.World{wi, wl} {
		if _, err := w.Sched.After(d, func() {}); err != nil {
			t.Fatal(err)
		}
		w.Sched.Step()
	}
}

func TestIndexedEquivalenceUnderMobilityAndChurn(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    scenario.Params
	}{
		{"paper-4cell", scenario.Params{Seed: 3, Sensors: 250, MaxSpeed: 2}},
		{"lattice-18cell", scenario.Params{Seed: 5, Sensors: 900, MaxSpeed: 2, ActuatorGrid: 4}},
		{"static", scenario.Params{Seed: 7, Sensors: 250}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wi, wl, si, sl := buildPair(t, tc.p)
			requireSameState(t, si, sl)
			requireSameEntry(t, wi, si, sl)
			sensors := scenario.SensorIDs(wi)
			for round := 0; round < 12; round++ {
				step(t, wi, wl, 5*time.Second)
				// Churn: fail a rotating slice of sensors, recover the
				// previous slice — identical on both worlds.
				lo := (round * 13) % len(sensors)
				for i := lo; i < lo+9 && i < len(sensors); i++ {
					wi.SetFailed(sensors[i], round%2 == 0)
					wl.SetFailed(sensors[i], round%2 == 0)
				}
				si.MaintainOnce()
				sl.MaintainOnce()
				requireSameState(t, si, sl)
				requireSameEntry(t, wi, si, sl)
			}
			if si.Stats().Rehomes != sl.Stats().Rehomes {
				t.Fatalf("Rehomes %d vs %d", si.Stats().Rehomes, sl.Stats().Rehomes)
			}
			if tc.p.MaxSpeed > 0 && si.Stats().MaintainChecks >= sl.Stats().MaintainChecks {
				t.Fatalf("index did not reduce work: %d vs %d checks",
					si.Stats().MaintainChecks, sl.Stats().MaintainChecks)
			}
		})
	}
}

// TestMaintainOnceAllocationFree pins the steady-state maintenance round on
// a static deployment to zero heap allocations: the sorted-KID cache, the
// pooled candidate buffer, and the static-world membership short-circuit
// together leave nothing to allocate.
func TestMaintainOnceAllocationFree(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 1, Sensors: 300})
	cfg := DefaultConfig()
	cfg.DisableMaintenance = true
	s := New(w, cfg)
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	// Steady state: per-node neighbor-cache buffers are allocated once per
	// process on first query (the random prober draw touches arbitrary
	// sensors), so warm every node's buffer before measuring.
	for _, n := range w.Nodes() {
		w.AliveNeighbors(nil, n.ID)
	}
	for i := 0; i < 4; i++ {
		s.MaintainOnce() // warm the KID and candidate-pool caches
	}
	if avg := testing.AllocsPerRun(50, s.MaintainOnce); avg != 0 {
		t.Fatalf("MaintainOnce allocates %.1f per round, want 0", avg)
	}
}
