package core

import (
	"fmt"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/world"
)

// embedCellGeneral embeds a K(d,3) graph with d > 2 into a cell — the
// paper's stated future work ("we will also investigate ... the Kautz
// graph K(d,k) with various d and k values"). The three corner KIDs stay
// the rotations of 012 (valid in any alphabet with d ≥ 2), and the
// remaining (d+1)d² − 3 KIDs are assigned by a greedy wavefront that
// generalizes the paper's path-query idea:
//
//  1. repeatedly pick the unassigned KID with the most already-assigned
//     overlay partners (successors + predecessors) — the KID whose radio
//     constraints are best known;
//  2. assign it the candidate sensor that reaches the most of those
//     partners' nodes, breaking ties by residual battery and then by
//     physical tightness (the paper's accumulated-energy rule);
//  3. charge the probe/notify messages the selection costs.
//
// Like the TTL-2 path queries of the K(2,3) protocol, the wavefront keeps
// overlay neighbors physically close, but it cannot always make every arc
// a single radio hop in a d > 2 cell (there are more arcs than geometry
// allows); the router's relay fallback covers the rest.
func (s *System) embedCellGeneral(c *Cell) error {
	unassigned := make([]kautz.ID, 0, s.graph.N()-3)
	for _, kid := range s.graph.Nodes() {
		if _, taken := c.NodeByKID[kid]; !taken {
			unassigned = append(unassigned, kid)
		}
	}
	// One probe query per corner bootstraps the wavefront (the analogue of
	// the actuator path queries).
	for _, corner := range c.Corners {
		s.w.Flood(corner, 2, energy.Construction, func(at world.NodeID, hops int, path []world.NodeID) bool {
			return c.members[at]
		}, nil)
	}
	for len(unassigned) > 0 {
		kid, idx := s.nextWavefrontKID(c, unassigned)
		cand, err := s.selectWavefrontSensor(c, kid)
		if err != nil {
			return fmt.Errorf("KID %s: %w", kid, err)
		}
		s.assignKID(c, cand, kid)
		// Selection cost: the assigning neighbor notifies the candidate.
		partners := s.overlayPartners(c, kid)
		notifier := partners[0]
		for _, p := range partners[1:] {
			if s.w.Position(p).Dist(s.w.Position(cand)) < s.w.Position(notifier).Dist(s.w.Position(cand)) {
				notifier = p
			}
		}
		s.w.Send(notifier, cand, energy.Construction, nil)
		unassigned = append(unassigned[:idx], unassigned[idx+1:]...)
	}
	if len(c.NodeByKID) != s.graph.N() {
		return fmt.Errorf("incomplete embedding: %d of %d KIDs", len(c.NodeByKID), s.graph.N())
	}
	return nil
}

// nextWavefrontKID returns the unassigned KID with the most assigned
// overlay partners (ties by KID order for determinism) and its index.
func (s *System) nextWavefrontKID(c *Cell, unassigned []kautz.ID) (kautz.ID, int) {
	best, bestIdx, bestConn := unassigned[0], 0, -1
	for i, kid := range unassigned {
		conn := len(s.overlayPartners(c, kid))
		if conn > bestConn || (conn == bestConn && kid < best) {
			best, bestIdx, bestConn = kid, i, conn
		}
	}
	return best, bestIdx
}

// selectWavefrontSensor picks the cell sensor for a KID: reach the most
// assigned partners, then highest battery, then smallest total distance to
// the partners.
func (s *System) selectWavefrontSensor(c *Cell, kid kautz.ID) (world.NodeID, error) {
	partners := s.overlayPartners(c, kid)
	if len(partners) == 0 {
		return world.NoNode, fmt.Errorf("no assigned overlay partner")
	}
	positions := make([]geo.Point, len(partners))
	for i, p := range partners {
		positions[i] = s.w.Position(p)
	}
	pool := s.candidatePool(c) // already ID-sorted
	best := world.NoNode
	bestConn, bestScore, bestTight := 0, -1.0, 0.0
	for _, cand := range pool {
		p := s.w.Position(cand)
		conn, tight := 0, 0.0
		for i, partner := range partners {
			d := p.Dist(positions[i])
			tight += d
			if d <= s.sensorRange(cand, partner) {
				conn++
			}
		}
		if conn == 0 {
			continue
		}
		score := s.w.Node(cand).Meter.Fraction()
		better := conn > bestConn ||
			(conn == bestConn && score > bestScore) ||
			(conn == bestConn && score == bestScore && tight < bestTight)
		if better {
			best, bestConn, bestScore, bestTight = cand, conn, score, tight
		}
	}
	if best == world.NoNode {
		return world.NoNode, fmt.Errorf("no sensor reaches any assigned partner (cell too sparse for K(%d,3))", s.cfg.Degree)
	}
	return best, nil
}
