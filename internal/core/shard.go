package core

// Intra-run parallelism for the per-round bulk maintenance phases
// (DESIGN.md §11). One maintenance round runs inside a single DES event, so
// the only state changes during it are the round's own; that lets the two
// embarrassingly-parallel bulk phases — per-sensor membership re-homing and
// the per-cell candidate-pool/containment precompute — fan out across a
// worker pool while every side effect stays serial:
//
//	phase 1 (parallel)  each shard re-homes a contiguous NodeID range into
//	                    private re-home decisions; merge applies them in
//	                    NodeID order.
//	phase 2 (parallel)  each shard precomputes, for a contiguous cell range,
//	                    the sorted candidate pool and the pure geometric
//	                    containment bit of every overlay sensor.
//	merge   (serial)    the sequential per-cell loop, verbatim, consuming
//	                    the precomputed pools (guarded by the world's
//	                    liveness generation) and containment bits. All RNG
//	                    draws, energy charges, replacements and map
//	                    mutations happen here, in the sequential order.
//
// No shard ever mutates the world, an energy.Meter, or the cell maps; shards
// only read the snapshot the round started from and write private scratch.
// That makes the output byte-identical to the sequential path at every
// RunParallelism setting — the replay-determinism contract extends to shards
// (pinned by TestMaintainShardEquivalence and TestRunParallelismInvariance).

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/world"
)

// rehome is one shard-computed membership decision: sensor id moves to the
// cell at cells[owner] (owner < 0: no owning cell). The previous cell is
// re-read at merge time — nothing rewrites it between decision and merge.
type rehome struct {
	id    world.NodeID
	owner int32
}

// shardPlan is the reusable worker-pool state of a sharded system: one
// private cursor, scratch buffer set and pprof-labeled context per worker,
// plus per-cell precompute storage. Built lazily on the first parallel round
// and reused every round after, so steady-state rounds allocate only the
// worker goroutines themselves.
type shardPlan struct {
	workers int
	// ctxs carry the per-worker pprof labels (cell-shard=<i>), precomputed
	// so labeling a round's goroutines allocates nothing.
	ctxs []context.Context
	// cursors are the workers' private TriIndex query handles (nil slots
	// under DisableCellIndex).
	cursors []*geo.TriCursor
	// rehomes collects phase-1 decisions per worker, in NodeID order within
	// each worker and across workers (contiguous ranges).
	rehomes [][]rehome
	// pool and geoOK are phase-2 outputs indexed by cell position in
	// s.cells: the cell's sorted candidate pool and, aligned with
	// sortedKIDs, whether each KID's holder is geometrically inside the
	// cell (actuator slots hold true and are never position-read).
	pool  [][]world.NodeID
	geoOK [][]bool
}

// plan returns the worker plan, building it on first use. The worker count
// is clamped to the cell count — more workers than cells cannot help phase 2
// and keeps phase 1 ranges sane.
func (s *System) plan() *shardPlan {
	if s.shards != nil {
		return s.shards
	}
	n := s.cfg.RunParallelism
	if n > len(s.cells) {
		n = len(s.cells)
	}
	if n < 1 {
		n = 1
	}
	p := &shardPlan{
		workers: n,
		ctxs:    make([]context.Context, n),
		cursors: make([]*geo.TriCursor, n),
		rehomes: make([][]rehome, n),
		pool:    make([][]world.NodeID, len(s.cells)),
		geoOK:   make([][]bool, len(s.cells)),
	}
	for i := 0; i < n; i++ {
		p.ctxs[i] = pprof.WithLabels(context.Background(),
			pprof.Labels("cell-shard", strconv.Itoa(i)))
		if s.cellIndex != nil {
			p.cursors[i] = s.cellIndex.Cursor()
		}
	}
	s.shards = p
	return p
}

// shardRange returns worker i's half-open slice [lo, hi) of n items split
// into p.workers contiguous ranges.
func (p *shardPlan) shardRange(i, n int) (lo, hi int) {
	per := (n + p.workers - 1) / p.workers
	lo = i * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// run fans fn out across the plan's workers (each labeled for pprof) and
// waits for all of them — the barrier between phases.
func (p *shardPlan) run(fn func(worker int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go func(i int) {
			defer wg.Done()
			pprof.SetGoroutineLabels(p.ctxs[i])
			fn(i)
		}(i)
	}
	wg.Wait()
}

// maintainParallel is maintainOnce with the bulk phases sharded. The caller
// guarantees RunParallelism > 1 and at least one cell.
func (s *System) maintainParallel() {
	p := s.plan()
	t0 := time.Now()
	s.refreshMembershipSharded(p)
	t1 := time.Now()
	// Snapshot the liveness generation before precomputing pools: any charge
	// applied during the serial merge that flips a node's Alive() bumps the
	// generation and invalidates every not-yet-consumed pool (the sequential
	// path would have seen the flip). Membership and the precompute phases
	// themselves never charge, so the snapshot is stable across both.
	aliveGen := s.w.AliveGen()
	p.run(func(worker int) {
		lo, hi := p.shardRange(worker, len(s.cells))
		for ci := lo; ci < hi; ci++ {
			s.precomputeCell(p, ci)
		}
	})
	t2 := time.Now()
	s.mergeCells(p, aliveGen)
	t3 := time.Now()
	s.stats.ShardRounds++
	s.stats.MembershipPhaseNs += t1.Sub(t0).Nanoseconds()
	s.stats.CellPhaseNs += t2.Sub(t1).Nanoseconds()
	s.stats.MergeNs += t3.Sub(t2).Nanoseconds()
}

// refreshMembershipSharded is refreshMembership with the per-sensor loop
// partitioned across workers. Each sensor's decision depends only on state
// no other sensor's decision writes — sensorCell/kidOfNode are read-only
// during the loop, the position memo slots are per-sensor, and cell
// ownership is a pure function of position over triangles fixed at build
// time — so contiguous NodeID ranges shard cleanly and the merge applies
// the map mutations in NodeID order, reproducing the sequential loop
// exactly. Falls back to the sequential loop under DisableCellIndex, whose
// linear scans count work into the stats directly.
func (s *System) refreshMembershipSharded(p *shardPlan) {
	if s.cellIndex == nil {
		s.refreshMembership()
		return
	}
	if s.w.MaxSpeed() == 0 && len(s.homeValid) >= s.w.Len() {
		return
	}
	// Pre-grow the position memo so shards write disjoint slots without
	// touching the slice headers. Sequentially the memo grows only up to the
	// highest sensor ID homed; covering every node instead can only turn
	// later rounds' "grow then home" into "memo invalid, home" — the same
	// decisions — and arms the static-world short-circuit above no earlier
	// than a full sequential pass would produce identical outcomes anyway.
	for len(s.homePos) < s.w.Len() {
		s.homePos = append(s.homePos, geo.Point{})
		s.homeValid = append(s.homeValid, false)
	}
	nodes := s.w.Nodes()
	p.run(func(worker int) {
		lo, hi := p.shardRange(worker, len(nodes))
		out := p.rehomes[worker][:0]
		cur := p.cursors[worker]
		for _, n := range nodes[lo:hi] {
			if n.Kind != world.Sensor {
				continue
			}
			if c := s.sensorCell[n.ID]; c != nil {
				if _, overlay := c.kidOfNode[n.ID]; overlay {
					continue
				}
			}
			// Position reads are node-exclusive here: overlay sensors were
			// skipped above and every other node appears in exactly one range.
			pos := s.w.Position(n.ID)
			if s.homeValid[n.ID] && s.homePos[n.ID] == pos {
				continue
			}
			s.homePos[n.ID] = pos
			s.homeValid[n.ID] = true
			owner := int32(-1)
			if ti := cur.Containing(pos); ti >= 0 {
				owner = int32(ti)
			} else if ti := cur.NearestWithin(pos, s.cfg.CellMargin); ti >= 0 {
				owner = int32(ti)
			}
			if owner >= 0 {
				// Resolve cells retired by a recovery merge to their absorber
				// (CID == index in s.cells), exactly as the sequential
				// homeCell does; shards only read the chain, never write it.
				owner = int32(s.activeCell(s.cells[owner]).CID)
			}
			if int(owner) < 0 && s.sensorCell[n.ID] == nil {
				continue // no cell before, none now: nothing to merge
			}
			if owner >= 0 && s.cells[owner] == s.sensorCell[n.ID] {
				continue
			}
			out = append(out, rehome{id: n.ID, owner: owner})
		}
		p.rehomes[worker] = out
	})
	// Merge in NodeID order (workers hold contiguous ascending ranges).
	for w := 0; w < p.workers; w++ {
		for _, r := range p.rehomes[w] {
			s.stats.Rehomes++
			if cur := s.sensorCell[r.id]; cur != nil {
				delete(cur.members, r.id)
				delete(s.sensorCell, r.id)
			}
			if r.owner >= 0 {
				owner := s.cells[r.owner]
				owner.members[r.id] = true
				s.sensorCell[r.id] = owner
			}
		}
		s.shardChecks += p.cursors[w].TakeChecks()
	}
}

// precomputeCell computes cell ci's candidate pool and the pure geometric
// half of every overlay member's degradation check into the plan's scratch.
// Pure reads only: member and KID maps are not mutated until the merge, and
// each overlay sensor belongs to exactly one cell, so its position read is
// exclusive to this cell's worker (actuator corners are never position-read).
func (s *System) precomputeCell(p *shardPlan, ci int) {
	c := s.cells[ci]
	if c.retired {
		// Dissolved by a recovery merge: empty scratch, skipped at merge.
		p.pool[ci] = p.pool[ci][:0]
		p.geoOK[ci] = p.geoOK[ci][:0]
		return
	}
	// The pool replicates candidatePool: alive, unassigned members sorted by
	// ID. Map iteration order varies, the insertion-sorted result does not.
	pool := p.pool[ci][:0]
	for id := range c.members {
		if _, taken := c.kidOfNode[id]; taken {
			continue
		}
		if !s.w.Node(id).Alive() {
			continue
		}
		pool = append(pool, id)
		for j := len(pool) - 1; j > 0 && pool[j] < pool[j-1]; j-- {
			pool[j], pool[j-1] = pool[j-1], pool[j]
		}
	}
	p.pool[ci] = pool

	kids := c.sortedKIDs() // cache build is exclusive: one worker per cell
	geoOK := p.geoOK[ci][:0]
	for _, kid := range kids {
		ok := true
		if !c.IsActuatorKID(kid) {
			ok = c.contains(s.w.Position(c.NodeByKID[kid]), s.cfg.CellMargin)
		}
		geoOK = append(geoOK, ok)
	}
	p.geoOK[ci] = geoOK
}

// mergeCells is the sequential per-cell maintenance loop consuming the
// phase-2 precompute. Containment bits are pure functions of positions
// frozen for the round, so they are always valid; candidate pools are valid
// only while no liveness transition has occurred since the snapshot — a
// Broadcast or handover charge in an earlier cell's turn can deplete a node,
// exactly as the sequential interleaving would observe — so each cell
// re-checks the generation and falls back to the live scan when it moved.
func (s *System) mergeCells(p *shardPlan, aliveGen uint64) {
	for ci, c := range s.cells {
		if c.retired {
			continue // matches the sequential loop's retired-cell skip
		}
		pool := p.pool[ci]
		if s.w.AliveGen() != aliveGen {
			pool = s.candidatePool(c)
		}
		if len(pool) > 0 {
			prober := pool[s.w.Rand().Intn(len(pool))]
			s.w.Broadcast(prober, energy.Communication, nil)
		}
		for ki, kid := range c.sortedKIDs() {
			id := c.NodeByKID[kid]
			if c.IsActuatorKID(kid) {
				continue
			}
			// degraded(), split: the liveness and battery terms re-read live
			// state (same-round charges must be observed, as sequentially);
			// the geometric term comes from the precompute.
			n := s.w.Node(id)
			deg := !n.Alive() || n.Meter.Fraction() < lowBatteryFraction || !p.geoOK[ci][ki]
			if !deg {
				delete(s.degradedAt, id)
				continue
			}
			since, seen := s.degradedAt[id]
			if !seen {
				s.degradedAt[id] = s.w.Now()
				continue
			}
			if s.w.Now()-since < s.cfg.ProbeInterval {
				continue
			}
			delete(s.degradedAt, id)
			s.replace(c, kid, id)
		}
	}
}
