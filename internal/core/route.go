package core

import (
	"refer/internal/energy"
	"refer/internal/kautz"
	"refer/internal/trace"
	"refer/internal/world"
)

// Inject routes one sensed-data packet from src to its nearby actuator —
// the evaluation's traffic pattern. done fires exactly once: at the
// actuator's reception time with ok=true, or when the packet is abandoned.
func (s *System) Inject(src world.NodeID, done func(ok bool)) {
	p := s.w.Tracer().PacketInject(s.w.Now(), int32(src))
	finish := func(ok bool) {
		if ok {
			p.Deliver(s.w.Now())
		} else {
			p.Drop(s.w.Now())
			s.stats.Drops++
		}
		if done != nil {
			done(ok)
		}
	}
	if !s.built || !s.w.Node(src).Alive() {
		finish(false)
		return
	}
	entry, cell := s.entryPoint(src)
	if entry == world.NoNode {
		finish(false)
		return
	}
	deliver := func() {
		s.routeToCorners(cell, entry, s.cfg.HopBudget, p, finish)
	}
	if entry == src {
		deliver()
		return
	}
	// One attachment hop from the plain sensor to the overlay member.
	s.w.Send(src, entry, energy.Communication, func(o world.Outcome) {
		if o != world.Delivered {
			finish(false)
			return
		}
		p.Hop(s.w.Now(), int32(src), int32(entry), 0)
		deliver()
	})
}

// routeToCorners routes a packet to any of the cell's actuators (the data
// is for "a nearby actuator", so all three corners are valid sinks). Every
// relay makes a purely local choice: corners ordered by Kautz distance from
// its own KID, each tried through its Theorem 3.8 disjoint paths.
func (s *System) routeToCorners(c *Cell, at world.NodeID, budget int, p trace.Packet, done func(ok bool)) {
	atKID, ok := c.kidOfNode[at]
	if !ok {
		done(false)
		return
	}
	if c.IsActuatorKID(atKID) {
		done(true)
		return
	}
	if budget <= 0 {
		done(false)
		return
	}
	corners, nc := s.cornersByKautzDistance(c, atKID)
	s.tryCorners(c, at, corners, nc, 0, budget, p, done)
}

// cornersByKautzDistance returns the alive corner KIDs ordered by Kautz
// distance from fromKID (ties by KID), as a by-value array plus count: the
// ranking happens at every relay of every packet, and an array passed by
// value keeps each relay's ranking private to its in-flight continuation
// without allocating.
func (s *System) cornersByKautzDistance(c *Cell, fromKID kautz.ID) ([3]kautz.ID, int) {
	var corners [3]kautz.ID
	n := 0
	for _, corner := range c.Corners {
		if s.w.Node(corner).Alive() {
			corners[n] = c.kidOfNode[corner]
			n++
		}
	}
	// Insertion sort on ≤ 3 entries; the comparator is total (ties by KID),
	// so the order matches the previous sort.Slice exactly.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			dp, dj := kautz.Distance(fromKID, corners[j-1]), kautz.Distance(fromKID, corners[j])
			if dp < dj || (dp == dj && corners[j-1] < corners[j]) {
				break
			}
			corners[j-1], corners[j] = corners[j], corners[j-1]
		}
	}
	return corners, n
}

// tryCorners attempts the ranked corners; for each corner the Theorem 3.8
// successor list is tried in order, and a successful hop re-enters
// routeToCorners at the next relay.
func (s *System) tryCorners(c *Cell, at world.NodeID, corners [3]kautz.ID, nc, ci, budget int, p trace.Packet, done func(ok bool)) {
	if ci >= nc {
		done(false)
		return
	}
	atKID := c.kidOfNode[at]
	routes, err := s.routesFor(atKID, corners[ci])
	if err != nil {
		s.tryCorners(c, at, corners, nc, ci+1, budget, p, done)
		return
	}
	s.shuffleEqualLength(routes)
	var try func(idx int)
	try = func(idx int) {
		if idx >= len(routes) || (s.cfg.DisableFailover && idx > 0) {
			if s.cfg.DisableFailover {
				// Ablated router: no Theorem 3.8 alternatives, no corner
				// fallback — the greedy shortest successor or nothing.
				done(false)
				return
			}
			// All disjoint paths toward this corner failed here; fall back
			// to the next corner (still a purely local decision).
			s.tryCorners(c, at, corners, nc, ci+1, budget, p, done)
			return
		}
		next, ok := c.NodeByKID[routes[idx].Successor]
		if !ok || !s.w.Node(next).Alive() {
			s.countFailoverSwitch(p, at, routes, idx)
			try(idx + 1)
			return
		}
		s.sendOverlayLink(c, at, next, func(delivered bool) {
			if delivered {
				p.Hop(s.w.Now(), int32(at), int32(next), int8(routes[idx].Class))
				s.routeToCorners(c, next, budget-1, p, done)
				return
			}
			s.countFailoverSwitch(p, at, routes, idx)
			try(idx + 1)
		})
	}
	try(0)
}

// routesFor returns the Theorem 3.8 route set for the ordered pair, served
// from the shared precomputed table (copy-on-read, so callers may permute
// the slice) with a fallback to the direct computation when the table is
// disabled or does not cover the pair.
func (s *System) routesFor(u, v kautz.ID) ([]kautz.Route, error) {
	if s.routes != nil {
		if routes, ok := s.routes.Routes(u, v); ok {
			s.stats.RouteCacheHits++
			return routes, nil
		}
	}
	s.stats.RouteCacheMisses++
	return kautz.Routes(s.cfg.Degree, u, v)
}

// countFailoverSwitch records one Theorem 3.8 failover decision: the relay
// at abandons routes[idx] and moves to routes[idx+1]. A switch is counted
// exactly once per abandoned path — whether the failure was known locally
// (successor dead or unassigned) or discovered by a failed transmission —
// and only when an alternate disjoint path actually remains to switch to.
// The decision is also emitted as a trace event when the run is traced.
func (s *System) countFailoverSwitch(p trace.Packet, at world.NodeID, routes []kautz.Route, idx int) {
	if !s.cfg.DisableFailover && idx+1 < len(routes) {
		s.stats.FailoverSwitches++
		p.FailoverSwitch(s.w.Now(), int32(at), int8(routes[idx].Class))
	}
}

// SendTo routes a packet from src to an arbitrary REFER address, using the
// DHT tier when the destination lies in another cell. done fires once.
func (s *System) SendTo(src world.NodeID, dst Address, done func(ok bool)) {
	p := s.w.Tracer().PacketInject(s.w.Now(), int32(src))
	finish := func(ok bool) {
		if ok {
			p.Deliver(s.w.Now())
		} else {
			p.Drop(s.w.Now())
			s.stats.Drops++
		}
		if done != nil {
			done(ok)
		}
	}
	if !s.built || !s.w.Node(src).Alive() {
		finish(false)
		return
	}
	dstCell, ok := s.cellByCID[dst.CID]
	if !ok {
		finish(false)
		return
	}
	if _, ok := dstCell.NodeByKID[dst.KID]; !ok {
		finish(false)
		return
	}
	entry, cell := s.entryPoint(src)
	if entry == world.NoNode {
		finish(false)
		return
	}
	route := func(from world.NodeID) {
		if cell.CID == dst.CID {
			s.routeIntraCell(cell, from, dst.KID, s.cfg.HopBudget, p, finish)
			return
		}
		// Inter-cell: intra-cell to the Kautz-nearest corner actuator,
		// CAN-route across cells, then intra-cell to the destination KID.
		s.stats.InterCell++
		exitKID := s.nearestCornerByKautz(cell, cell.kidOfNode[from])
		s.routeIntraCell(cell, from, exitKID, s.cfg.HopBudget, p, func(ok bool) {
			if !ok {
				finish(false)
				return
			}
			exit := cell.NodeByKID[exitKID]
			s.routeInterCell(cell, exit, dstCell, p, func(ok bool, entryActuator world.NodeID) {
				if !ok {
					finish(false)
					return
				}
				s.routeIntraCell(dstCell, entryActuator, dst.KID, s.cfg.HopBudget, p, finish)
			})
		})
	}
	if entry == src {
		route(src)
		return
	}
	s.w.Send(src, entry, energy.Communication, func(o world.Outcome) {
		if o != world.Delivered {
			finish(false)
			return
		}
		p.Hop(s.w.Now(), int32(src), int32(entry), 0)
		route(entry)
	})
}

// entryPoint returns the overlay node a packet from src enters the overlay
// at, and that node's cell. If src is itself an overlay member it is its
// own entry. Otherwise the nearest alive overlay member within radio range
// is chosen.
func (s *System) entryPoint(src world.NodeID) (world.NodeID, *Cell) {
	if s.cfg.DisableCellIndex {
		return s.entryPointScan(src)
	}
	// memberCell maps every overlay member — actuator or sensor — to its
	// first cell in s.cells order, so both "src is already a member" branches
	// of the scan collapse into one map hit.
	if c := s.memberCell[src]; c != nil {
		return src, c
	}
	// Plain sensor: attach to the nearest alive overlay member in range.
	// Candidates come from the world's cached alive-neighbor set — the
	// packet's own radio neighborhood — instead of a scan over every overlay
	// member of every cell. Ties on distance break on the smaller node ID; a
	// member sitting in several cells (a shared-corner actuator) resolves to
	// its first cell in s.cells order, both exactly as the old full scan did.
	best := world.NoNode
	var bestCell *Cell
	bestDist := 0.0
	p := s.w.Position(src)
	for _, id := range s.w.AliveNeighbors(nil, src) {
		d := p.Dist(s.w.Position(id))
		if best != world.NoNode && (d > bestDist || (d == bestDist && id > best)) {
			continue
		}
		cell := s.memberCell[id]
		if cell == nil {
			continue // in range and alive, but not an overlay member
		}
		best, bestCell, bestDist = id, cell, d
	}
	return best, bestCell
}

// entryPointScan is entryPoint's pre-index form, kept verbatim for the
// DisableCellIndex ablation: per-candidate linear scans over s.cells.
func (s *System) entryPointScan(src world.NodeID) (world.NodeID, *Cell) {
	if c, ok := s.sensorCell[src]; ok {
		if _, isMember := c.kidOfNode[src]; isMember {
			return src, c
		}
	}
	// Actuators are always overlay members of some cell.
	for _, c := range s.cells {
		if _, ok := c.kidOfNode[src]; ok {
			return src, c
		}
	}
	best := world.NoNode
	var bestCell *Cell
	bestDist := 0.0
	p := s.w.Position(src)
	for _, id := range s.w.AliveNeighbors(nil, src) {
		d := p.Dist(s.w.Position(id))
		if best != world.NoNode && (d > bestDist || (d == bestDist && id > best)) {
			continue
		}
		var cell *Cell
		for _, c := range s.cells {
			if _, ok := c.kidOfNode[id]; ok {
				cell = c
				break
			}
		}
		if cell == nil {
			continue
		}
		best, bestCell, bestDist = id, cell, d
	}
	return best, bestCell
}

// nearestCornerKID returns the KID of the cell actuator physically nearest
// to the node ("its nearby actuator").
func (s *System) nearestCornerKID(c *Cell, near world.NodeID) kautz.ID {
	p := s.w.Position(near)
	best := c.kidOfNode[c.Corners[0]]
	bestDist := p.Dist(s.w.Position(c.Corners[0]))
	for _, corner := range c.Corners[1:] {
		if d := p.Dist(s.w.Position(corner)); d < bestDist {
			best, bestDist = c.kidOfNode[corner], d
		}
	}
	return best
}

// nearestCornerByKautz returns the corner KID with the smallest Kautz
// distance from fromKID (the cheapest overlay exit).
func (s *System) nearestCornerByKautz(c *Cell, fromKID kautz.ID) kautz.ID {
	best := c.kidOfNode[c.Corners[0]]
	bestDist := kautz.Distance(fromKID, best)
	for _, corner := range c.Corners[1:] {
		kid := c.kidOfNode[corner]
		if d := kautz.Distance(fromKID, kid); d < bestDist {
			best, bestDist = kid, d
		}
	}
	return best
}

// routeIntraCell is the REFER intra-cell routing protocol (Section
// III-C-2): greedy shortest Kautz forwarding with Theorem 3.8 failover.
// Every relay recomputes the ranked successor list from IDs alone; on a
// failed transmission it falls through to the next-shortest disjoint path
// without notifying the source.
func (s *System) routeIntraCell(c *Cell, at world.NodeID, dstKID kautz.ID, budget int, p trace.Packet, done func(ok bool)) {
	atKID, ok := c.kidOfNode[at]
	if !ok {
		done(false)
		return
	}
	if atKID == dstKID {
		done(true)
		return
	}
	if budget <= 0 {
		done(false)
		return
	}
	routes, err := s.routesFor(atKID, dstKID)
	if err != nil {
		done(false)
		return
	}
	// Randomize among equal-length routes (the paper's tie-break rule).
	s.shuffleEqualLength(routes)
	s.tryRoutes(c, at, dstKID, routes, 0, budget, p, done)
}

// shuffleEqualLength randomly permutes runs of routes with equal concrete
// path length, preserving the ascending length order.
func (s *System) shuffleEqualLength(routes []kautz.Route) {
	i := 0
	for i < len(routes) {
		j := i + 1
		for j < len(routes) && routes[j].Len() == routes[i].Len() {
			j++
		}
		if j-i > 1 {
			s.w.Rand().Shuffle(j-i, func(a, b int) {
				routes[i+a], routes[i+b] = routes[i+b], routes[i+a]
			})
		}
		i = j
	}
}

// tryRoutes attempts the ranked successors in order.
func (s *System) tryRoutes(c *Cell, at world.NodeID, dstKID kautz.ID, routes []kautz.Route, idx, budget int, p trace.Packet, done func(ok bool)) {
	if idx >= len(routes) || (s.cfg.DisableFailover && idx > 0) {
		done(false) // all (permitted) disjoint paths failed
		return
	}
	succKID := routes[idx].Successor
	next, ok := c.NodeByKID[succKID]
	if !ok || !s.w.Node(next).Alive() {
		// Locally known failure (maintenance removed the node): switch to
		// the next disjoint path immediately, no radio cost.
		s.countFailoverSwitch(p, at, routes, idx)
		s.tryRoutes(c, at, dstKID, routes, idx+1, budget, p, done)
		return
	}
	s.sendOverlayLink(c, at, next, func(delivered bool) {
		if delivered {
			p.Hop(s.w.Now(), int32(at), int32(next), int8(routes[idx].Class))
			s.routeIntraCell(c, next, dstKID, budget-1, p, done)
			return
		}
		s.countFailoverSwitch(p, at, routes, idx)
		s.tryRoutes(c, at, dstKID, routes, idx+1, budget, p, done)
	})
}

// sendOverlayLink transmits between two overlay neighbors: directly when in
// range, otherwise over a one-relay physical path chosen for lowest delay
// ("either a multi-hop path or direct path", Section III-C-2).
func (s *System) sendOverlayLink(c *Cell, from, to world.NodeID, done func(delivered bool)) {
	if s.w.Distance(from, to) <= s.sensorRange(from, to) {
		s.w.Send(from, to, energy.Communication, func(o world.Outcome) {
			done(o == world.Delivered)
		})
		return
	}
	relay := s.bestRelay(c, from, to)
	if relay == world.NoNode {
		// Link is physically broken; report failure after the MAC timeout
		// the sender pays trying.
		s.w.Send(from, to, energy.Communication, func(o world.Outcome) {
			done(o == world.Delivered)
		})
		return
	}
	s.w.Send(from, relay, energy.Communication, func(o world.Outcome) {
		if o != world.Delivered {
			done(false)
			return
		}
		s.w.Send(relay, to, energy.Communication, func(o world.Outcome) {
			done(o == world.Delivered)
		})
	})
}

// bestRelay picks an alive cell node in range of both endpoints, minimizing
// the two-hop distance. Candidates come from map iteration, so equal
// distances break on the smaller node ID to keep seeded replay exact.
func (s *System) bestRelay(c *Cell, from, to world.NodeID) world.NodeID {
	pf, pt := s.w.Position(from), s.w.Position(to)
	best := world.NoNode
	bestDist := 0.0
	consider := func(id world.NodeID) {
		if id == from || id == to || !s.w.Node(id).Alive() {
			return
		}
		p := s.w.Position(id)
		if p.Dist(pf) > s.sensorRange(from, id) || p.Dist(pt) > s.sensorRange(id, to) {
			return
		}
		d := p.Dist(pf) + p.Dist(pt)
		if best == world.NoNode || d < bestDist || (d == bestDist && id < best) {
			best, bestDist = id, d
		}
	}
	for id := range c.kidOfNode {
		consider(id)
	}
	for id := range c.members {
		consider(id)
	}
	return best
}

// routeInterCell forwards a packet between cells along the CAN route
// (Section III-B-3): each hop is an actuator-to-actuator transmission
// toward the neighbor cell whose CID is closest to the destination.
// done receives the actuator the packet arrived at inside dstCell.
func (s *System) routeInterCell(fromCell *Cell, at world.NodeID, dstCell *Cell, p trace.Packet, done func(ok bool, entry world.NodeID)) {
	cidRoute, _ := s.dht.table.Route(fromCell.CID, dstCell.CID)
	if cidRoute == nil {
		done(false, world.NoNode)
		return
	}
	// Intermediate hops may name cells retired by a recovery merge; the zone
	// takeovers resolve them to their absorbers (endpoints are active cells
	// and resolve to themselves).
	cidRoute = s.remapCIDRoute(cidRoute)
	s.hopCells(at, cidRoute, 0, p, done)
}

// hopCells walks the CID route, hopping actuators between consecutive cells.
func (s *System) hopCells(at world.NodeID, cidRoute []int, idx int, p trace.Packet, done func(ok bool, entry world.NodeID)) {
	if idx == len(cidRoute)-1 {
		done(true, at)
		return
	}
	nextCell := s.cellByCID[cidRoute[idx+1]]
	// If the current actuator also sits in the next cell, no radio hop is
	// needed (shared-corner adjacency).
	if _, ok := nextCell.kidOfNode[at]; ok {
		s.hopCells(at, cidRoute, idx+1, p, done)
		return
	}
	// Otherwise transmit to the nearest alive corner of the next cell.
	target := world.NoNode
	bestDist := 0.0
	pos := s.w.Position(at)
	for _, corner := range nextCell.Corners {
		if !s.w.Node(corner).Alive() {
			continue
		}
		d := pos.Dist(s.w.Position(corner))
		if target == world.NoNode || d < bestDist {
			target, bestDist = corner, d
		}
	}
	if target == world.NoNode {
		done(false, world.NoNode)
		return
	}
	s.w.Send(at, target, energy.Communication, func(o world.Outcome) {
		if o != world.Delivered {
			done(false, world.NoNode)
			return
		}
		p.Hop(s.w.Now(), int32(at), int32(target), 0)
		s.hopCells(target, cidRoute, idx+1, p, done)
	})
}
