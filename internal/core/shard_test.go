package core

import (
	"testing"
	"time"

	"refer/internal/scenario"
	"refer/internal/world"
)

// Equivalence suite for the sharded maintenance path (shard.go): REFER with
// RunParallelism > 1 must be state-identical to the sequential path on the
// same seeded world, through construction, mobility, maintenance and churn —
// including the RNG stream, energy charges, and every stats counter except
// the shard bookkeeping itself (ShardRounds and the phase timers, which by
// construction only the sharded system accumulates).

// buildShardPair builds a sequential and a sharded system on two identically
// seeded worlds.
func buildShardPair(t *testing.T, p scenario.Params, workers int) (ws, wp *world.World, seq, par *System) {
	t.Helper()
	ws, wp = scenario.Build(p), scenario.Build(p)
	cfgSeq := DefaultConfig()
	cfgSeq.DisableMaintenance = true // rounds driven manually below
	cfgPar := cfgSeq
	cfgPar.RunParallelism = workers
	seq, par = New(ws, cfgSeq), New(wp, cfgPar)
	if err := seq.Build(); err != nil {
		t.Fatalf("sequential Build: %v", err)
	}
	if err := par.Build(); err != nil {
		t.Fatalf("sharded Build: %v", err)
	}
	return ws, wp, seq, par
}

// requireShardStateEqual compares all membership and overlay state plus the
// stats, zeroing only the shard-bookkeeping fields that are sharded-only by
// definition. MaintainChecks is NOT zeroed: the shard cursors must count
// exactly the work the sequential index counts.
func requireShardStateEqual(t *testing.T, seq, par *System) {
	t.Helper()
	if len(seq.cells) != len(par.cells) {
		t.Fatalf("cells: %d vs %d", len(seq.cells), len(par.cells))
	}
	for i, cs := range seq.cells {
		cp := par.cells[i]
		if len(cs.NodeByKID) != len(cp.NodeByKID) {
			t.Fatalf("cell %d overlay size %d vs %d", i, len(cs.NodeByKID), len(cp.NodeByKID))
		}
		for kid, id := range cs.NodeByKID {
			if cp.NodeByKID[kid] != id {
				t.Fatalf("cell %d KID %s: node %d vs %d", i, kid, id, cp.NodeByKID[kid])
			}
		}
		if len(cs.members) != len(cp.members) {
			t.Fatalf("cell %d members %d vs %d", i, len(cs.members), len(cp.members))
		}
		for id := range cs.members {
			if !cp.members[id] {
				t.Fatalf("cell %d member %d missing from sharded system", i, id)
			}
		}
	}
	if len(seq.sensorCell) != len(par.sensorCell) {
		t.Fatalf("sensorCell size %d vs %d", len(seq.sensorCell), len(par.sensorCell))
	}
	for id, cs := range seq.sensorCell {
		cp, ok := par.sensorCell[id]
		if !ok || cs.CID != cp.CID {
			t.Fatalf("sensor %d homed to CID %d, sharded disagrees (%v)", id, cs.CID, cp)
		}
	}
	if len(seq.degradedAt) != len(par.degradedAt) {
		t.Fatalf("degradedAt size %d vs %d", len(seq.degradedAt), len(par.degradedAt))
	}
	for id, at := range seq.degradedAt {
		if par.degradedAt[id] != at {
			t.Fatalf("degradedAt[%d]: %v vs %v", id, at, par.degradedAt[id])
		}
	}
	stS, stP := seq.Stats(), par.Stats()
	stP.ShardRounds = 0
	stP.MembershipPhaseNs, stP.CellPhaseNs, stP.MergeNs = 0, 0, 0
	if stS != stP {
		t.Fatalf("stats diverged:\nsequential: %+v\nsharded:    %+v", stS, stP)
	}
}

// requireSameEnergy compares every node's remaining battery bit for bit —
// the strongest observable of "same charges in the same order".
func requireSameEnergy(t *testing.T, ws, wp *world.World) {
	t.Helper()
	for _, n := range ws.Nodes() {
		fs := ws.Node(n.ID).Meter.Fraction()
		fp := wp.Node(n.ID).Meter.Fraction()
		if fs != fp {
			t.Fatalf("node %d battery %v vs %v", n.ID, fs, fp)
		}
	}
}

func TestMaintainShardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		p       scenario.Params
		workers int
	}{
		{"paper-4cell-w4", scenario.Params{Seed: 3, Sensors: 250, MaxSpeed: 2}, 4},
		{"lattice-18cell-w4", scenario.Params{Seed: 5, Sensors: 900, MaxSpeed: 2, ActuatorGrid: 4}, 4},
		{"lattice-18cell-w8", scenario.Params{Seed: 5, Sensors: 900, MaxSpeed: 2, ActuatorGrid: 4}, 8},
		{"static-w4", scenario.Params{Seed: 7, Sensors: 250}, 4},
		{"oversubscribed-w64", scenario.Params{Seed: 9, Sensors: 400, MaxSpeed: 1}, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws, wp, seq, par := buildShardPair(t, tc.p, tc.workers)
			requireShardStateEqual(t, seq, par)
			sensors := scenario.SensorIDs(ws)
			for round := 0; round < 12; round++ {
				step(t, ws, wp, 5*time.Second)
				// Churn: fail a rotating slice of sensors, recover the
				// previous slice — identical on both worlds. Depletion-driven
				// aliveGen bumps mid-merge come from the Broadcast/Send
				// charges themselves.
				lo := (round * 13) % len(sensors)
				for i := lo; i < lo+9 && i < len(sensors); i++ {
					ws.SetFailed(sensors[i], round%2 == 0)
					wp.SetFailed(sensors[i], round%2 == 0)
				}
				seq.MaintainOnce()
				par.MaintainOnce()
				requireShardStateEqual(t, seq, par)
				requireSameEnergy(t, ws, wp)
			}
			if got := par.Stats().ShardRounds; got != 12 {
				t.Fatalf("ShardRounds = %d, want 12", got)
			}
		})
	}
}

// TestMaintainShardEquivalenceLinearScan pins the DisableCellIndex fallback:
// with no index there are no concurrent-safe cursors, so the sharded system
// must route membership through the sequential linear scan and still match.
func TestMaintainShardEquivalenceLinearScan(t *testing.T) {
	p := scenario.Params{Seed: 11, Sensors: 300, MaxSpeed: 2}
	ws, wp := scenario.Build(p), scenario.Build(p)
	cfgSeq := DefaultConfig()
	cfgSeq.DisableMaintenance = true
	cfgSeq.DisableCellIndex = true
	cfgPar := cfgSeq
	cfgPar.RunParallelism = 4
	seq, par := New(ws, cfgSeq), New(wp, cfgPar)
	if err := seq.Build(); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		step(t, ws, wp, 5*time.Second)
		seq.MaintainOnce()
		par.MaintainOnce()
		requireShardStateEqual(t, seq, par)
		requireSameEnergy(t, ws, wp)
	}
}

// TestSetRunParallelismMidRun flips the shard count between rounds — the
// plan must rebuild and the trajectory must stay on the sequential one.
func TestSetRunParallelismMidRun(t *testing.T) {
	p := scenario.Params{Seed: 13, Sensors: 400, MaxSpeed: 2}
	ws, wp, seq, par := buildShardPair(t, p, 2)
	for round := 0; round < 9; round++ {
		step(t, ws, wp, 5*time.Second)
		par.SetRunParallelism([]int{2, 0, 8}[round%3])
		seq.MaintainOnce()
		par.MaintainOnce()
		requireShardStateEqual(t, seq, par)
		requireSameEnergy(t, ws, wp)
	}
	if par.Stats().ShardRounds != 6 { // the 0-parallelism rounds ran sequentially
		t.Fatalf("ShardRounds = %d, want 6", par.Stats().ShardRounds)
	}
}

// TestMaintainShardedAllocs pins the steady-state sharded round's allocation
// budget. The scratch (plan, cursors, rehome and pool buffers, pprof label
// contexts) is all reused; what remains is spawning the phase goroutines
// themselves, so the budget is a small per-round constant instead of the
// sequential path's zero — and must not scale with sensors or rounds.
func TestMaintainShardedAllocs(t *testing.T) {
	w := scenario.Build(scenario.Params{Seed: 1, Sensors: 300})
	cfg := DefaultConfig()
	cfg.DisableMaintenance = true
	cfg.RunParallelism = 4
	s := New(w, cfg)
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	for _, n := range w.Nodes() {
		w.AliveNeighbors(nil, n.ID)
	}
	for i := 0; i < 4; i++ {
		s.MaintainOnce() // warm plan, KID and pool caches
	}
	// 2 fan-outs × 4 workers ≈ 8 goroutine spawns plus waitgroup/closure
	// overhead; 24 leaves headroom without masking a per-sensor regression.
	if avg := testing.AllocsPerRun(50, s.MaintainOnce); avg > 24 {
		t.Fatalf("sharded MaintainOnce allocates %.1f per round, want <= 24", avg)
	}
}
