package core

import (
	"fmt"

	"refer/internal/kautz"
	"refer/internal/world"
)

// CheckInvariants audits the structural invariants of the built REFER
// network and returns the first violation, or nil. It is the conformance
// harness's probe point (see internal/chaos): called after every injected
// fault and at run end, it must hold no matter how the world is tortured,
// so every check below is something maintenance and routing guarantee
// unconditionally — not a property that only holds in fault-free runs.
//
//  1. Cell bijection: NodeByKID and kidOfNode are exact inverses, KIDs are
//     valid K(d,k) nodes, and no KID or node appears twice in a cell.
//  2. Corners: each of the three corner actuators holds a KID, and (per
//     the bijection) no sensor holds a corner's KID.
//  3. Membership: an overlay sensor is registered in sensorCell for
//     exactly the cell whose overlay it serves; a sensor never serves two
//     cells' overlays.
//  4. Theorem 3.8 soundness: for every ordered pair of the cell graph the
//     route set actually served to relays (precomputed table or direct
//     computation) passes kautz.VerifyRoutes — so every failover switch,
//     which by construction moves to the next route of this set, lands on
//     a valid disjoint-path successor.
//  5. Recovery: a cell retired by a merge holds no overlay state at all and
//     its absorber chain resolves to an active cell; every CAN zone
//     takeover maps a retired cell to a chain ending in an active one. The
//     conformance harness probes this (with 1–4) after every individual
//     recovery action, not just at end of run.
//
// Overlay-link serviceability is deliberately not a hard invariant: the
// embedding tolerates physically broken arcs by design (sendOverlayLink
// falls back to a relay, Theorem 3.8 failover routes around the rest), so
// a blackout can legitimately leave arcs unserviceable until maintenance
// replaces their endpoints. OverlayAudit quantifies that instead.
func (s *System) CheckInvariants() error {
	if !s.built {
		return nil
	}
	holders := make(map[world.NodeID]*Cell)
	for _, c := range s.cells {
		if c.retired {
			if len(c.NodeByKID) != 0 || len(c.kidOfNode) != 0 || len(c.members) != 0 {
				return fmt.Errorf("core: retired cell %d still holds overlay state", c.CID)
			}
			if a := s.activeCell(c); a == nil || a.retired {
				return fmt.Errorf("core: retired cell %d has no active absorber", c.CID)
			}
			continue
		}
		if len(c.NodeByKID) != len(c.kidOfNode) {
			return fmt.Errorf("core: cell %d: %d KIDs but %d holders", c.CID, len(c.NodeByKID), len(c.kidOfNode))
		}
		for kid, id := range c.NodeByKID {
			if !kid.Valid(s.cfg.Degree, s.cfg.Diameter) {
				return fmt.Errorf("core: cell %d: KID %s invalid for K(%d,%d)", c.CID, kid, s.cfg.Degree, s.cfg.Diameter)
			}
			if got, ok := c.kidOfNode[id]; !ok || got != kid {
				return fmt.Errorf("core: cell %d: NodeByKID[%s]=%d but kidOfNode[%d]=%s", c.CID, kid, id, id, got)
			}
		}
		for id, kid := range c.kidOfNode {
			if got, ok := c.NodeByKID[kid]; !ok || got != id {
				return fmt.Errorf("core: cell %d: kidOfNode[%d]=%s but NodeByKID[%s]=%d", c.CID, id, kid, kid, got)
			}
		}
		for _, corner := range c.Corners {
			if _, ok := c.kidOfNode[corner]; !ok {
				return fmt.Errorf("core: cell %d: corner actuator %d holds no KID", c.CID, corner)
			}
			if s.w.Node(corner).Kind != world.Actuator {
				return fmt.Errorf("core: cell %d: corner %d is not an actuator", c.CID, corner)
			}
		}
		for id := range c.kidOfNode {
			if s.w.Node(id).Kind != world.Sensor {
				continue
			}
			if other, taken := holders[id]; taken {
				return fmt.Errorf("core: sensor %d serves the overlays of cells %d and %d", id, other.CID, c.CID)
			}
			holders[id] = c
			if sc, ok := s.sensorCell[id]; !ok || sc != c {
				return fmt.Errorf("core: overlay sensor %d of cell %d not registered in sensorCell", id, c.CID)
			}
		}
	}
	if s.dht != nil {
		for cid := range s.dht.takenOver {
			c, ok := s.cellByCID[cid]
			if !ok || !c.retired {
				return fmt.Errorf("core: CAN takeover recorded for non-retired cell %d", cid)
			}
			target, ok := s.cellByCID[s.dht.resolve(cid)]
			if !ok || target.retired {
				return fmt.Errorf("core: CAN takeover of cell %d resolves to a retired zone", cid)
			}
		}
	}
	return s.checkRouteSoundness()
}

// checkRouteSoundness verifies the exact route sets relays forward and
// fail over through — the precomputed table when enabled, the direct
// computation otherwise — for every ordered pair of the cell graph.
func (s *System) checkRouteSoundness() error {
	nodes := s.graph.Nodes()
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			var (
				routes []kautz.Route
				err    error
			)
			if s.routes != nil {
				if tabled, ok := s.routes.Routes(u, v); ok {
					routes = tabled
				}
			}
			if routes == nil {
				routes, err = kautz.Routes(s.cfg.Degree, u, v)
				if err != nil {
					return fmt.Errorf("core: route set %s→%s: %w", u, v, err)
				}
			}
			if err := kautz.VerifyRoutes(s.cfg.Degree, u, v, routes); err != nil {
				return fmt.Errorf("core: failover soundness: %w", err)
			}
		}
	}
	return nil
}

// OverlayAudit reports the cells' overlay-arc health at the current
// virtual time: arcs counts every arc of every cell graph whose endpoint
// KIDs are both held by alive, non-degraded nodes, and unserviceable
// counts those with neither a direct radio link nor a one-relay physical
// path (mirroring sendOverlayLink). Unserviceable arcs are routed around
// by Theorem 3.8 failover and healed by maintenance; the audit makes the
// decay visible to tests and chaos tooling without hard-failing on it.
func (s *System) OverlayAudit() (arcs, unserviceable int) {
	if !s.built {
		return 0, 0
	}
	for _, c := range s.cells {
		for kid, from := range c.NodeByKID {
			if !s.w.Node(from).Alive() || s.degraded(c, from) {
				continue
			}
			for _, succ := range s.graph.Successors(kid) {
				to, ok := c.NodeByKID[succ]
				if !ok || !s.w.Node(to).Alive() || s.degraded(c, to) {
					continue
				}
				arcs++
				if s.w.Distance(from, to) <= s.sensorRange(from, to) {
					continue
				}
				if s.bestRelay(c, from, to) == world.NoNode {
					unserviceable++
				}
			}
		}
	}
	return arcs, unserviceable
}
