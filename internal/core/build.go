package core

import (
	"fmt"
	"sort"

	"refer/internal/can"
	"refer/internal/chash"
	"refer/internal/energy"
	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/world"
)

// cornerBase is the canonical corner KID; its rotations 012 → 120 → 201 are
// the three actuator KIDs of every cell (Section III-B-1).
var cornerBase = kautz.ID("012")

// Build runs the Kautz graph embedding protocol: actuator ID assignment,
// sensor ID assignment per cell, the CAN upper tier, and the maintenance
// schedule. All message costs are charged to the construction ledger.
func (s *System) Build() error {
	if s.built {
		return fmt.Errorf("core: system already built")
	}
	if s.cfg.Degree < 2 || s.cfg.Degree > kautz.MaxDegree || s.cfg.Diameter != 3 {
		return fmt.Errorf("core: the embedding protocol implements K(d,3) cells with d >= 2; got K(%d,%d)",
			s.cfg.Degree, s.cfg.Diameter)
	}
	g, err := kautz.New(s.cfg.Degree, s.cfg.Diameter)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.graph = g
	// Share the process-wide precomputed route table for the cell graph; a
	// K(d,3) cell is small enough that every (u, v) route set is tabulated
	// once per process instead of on every forwarding decision.
	if !s.cfg.DisableRouteTable {
		table, err := kautz.TableFor(s.cfg.Degree, s.cfg.Diameter)
		if err != nil {
			return fmt.Errorf("core: route table: %w", err)
		}
		s.routes = table
	}

	for _, n := range s.w.Nodes() {
		if n.Kind == world.Actuator {
			s.actuators = append(s.actuators, n.ID)
		}
	}
	if len(s.actuators) < 3 {
		return fmt.Errorf("core: need at least 3 actuators, have %d", len(s.actuators))
	}

	// --- Actuator ID assignment (Section III-B-1) ---
	// Neighbor exchange: every actuator broadcasts its presence and hash
	// "to all nodes in the cells" — a two-hop flood, since one sensor-range
	// hop does not cover a cell.
	for _, a := range s.actuators {
		s.w.Flood(a, 2, energy.Construction, nil, nil)
	}
	// The minimum-hash actuator becomes the starting server.
	keys := make([]string, len(s.actuators))
	for i, a := range s.actuators {
		keys[i] = fmt.Sprintf("actuator-%d", a)
	}
	leaderKey, err := chash.MinKey(keys)
	if err != nil {
		return fmt.Errorf("core: leader election: %w", err)
	}
	var leader world.NodeID
	for i, k := range keys {
		if k == leaderKey {
			leader = s.actuators[i]
		}
	}

	// The starting server partitions the actuator topology into triangles.
	positions := make([]geo.Point, len(s.actuators))
	for i, a := range s.actuators {
		positions[i] = s.w.Position(a)
	}
	adjacency := s.actuatorAdjacency(positions)
	triangles, err := geo.Triangulate(positions, adjacency)
	if err != nil {
		return fmt.Errorf("core: cell partition: %w", err)
	}

	// Sequential vertex coloring over triangle edges → corner KIDs. The
	// color is global per actuator, so an actuator keeps the same KID in
	// every cell it belongs to (reduces system complexity, Section III-B).
	colors := s.colorActuators(triangles)

	// Materialize cells, fixing per-cell color clashes if the greedy
	// coloring needed more than three colors (documented deviation).
	for idx, tri := range triangles {
		cell, err := s.newCell(idx, tri, positions, colors)
		if err != nil {
			return fmt.Errorf("core: cell %d: %w", idx, err)
		}
		s.cells = append(s.cells, cell)
		s.cellByCID[cell.CID] = cell
	}
	// The cell spatial index: triangles are fixed for the system's lifetime,
	// so it is built once here and every position→cell lookup (sensor homing,
	// DHT adjacency) runs against it instead of scanning s.cells.
	if !s.cfg.DisableCellIndex {
		tris := make([][3]geo.Point, len(s.cells))
		for i, c := range s.cells {
			tris[i] = c.Vertices
		}
		s.cellIndex = geo.NewTriIndex(tris)
	}
	// Corner actuators enter the member→cell map in s.cells order, so an
	// actuator shared by several cells resolves to its first cell — the
	// tie-break the entry-selection scan used.
	for _, c := range s.cells {
		for _, corner := range c.Corners {
			if _, ok := s.memberCell[corner]; !ok {
				s.memberCell[corner] = c
			}
		}
	}

	// The starting server notifies every actuator of its ID along a DFS of
	// the actuator topology: one unicast per tree edge.
	s.notifyActuators(leader, adjacency)

	// --- Sensor ID assignment (Section III-B-2) ---
	s.assignCellSensors()
	for _, c := range s.cells {
		var err error
		if s.cfg.Degree == 2 {
			err = s.embedCell(c) // the paper's exact K(2,3) protocol
		} else {
			err = s.embedCellGeneral(c) // generalized K(d,3), paper's future work
		}
		if err != nil {
			return fmt.Errorf("core: embedding cell %d: %w", c.CID, err)
		}
	}

	// --- DHT upper tier (Section III-B-3) ---
	if err := s.buildDHT(); err != nil {
		return fmt.Errorf("core: DHT tier: %w", err)
	}

	// --- Topology maintenance (Section III-B-4) ---
	if !s.cfg.DisableMaintenance {
		s.scheduleMaintenance()
	}

	s.built = true
	return nil
}

// actuatorAdjacency derives the actuator communication graph: indices i, j
// are adjacent when within both transmission ranges.
func (s *System) actuatorAdjacency(positions []geo.Point) [][]int {
	adj := make([][]int, len(s.actuators))
	for i := range s.actuators {
		ri := s.w.Node(s.actuators[i]).Range
		for j := range s.actuators {
			if i == j {
				continue
			}
			rj := s.w.Node(s.actuators[j]).Range
			d := positions[i].Dist(positions[j])
			if d <= ri && d <= rj {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// colorActuators greedily colors actuators so that triangle corners get
// distinct colors; color c maps to the c-th rotation of 012.
func (s *System) colorActuators(triangles []geo.Triangle) []int {
	n := len(s.actuators)
	conflicts := make([]map[int]bool, n)
	for i := range conflicts {
		conflicts[i] = make(map[int]bool)
	}
	for _, t := range triangles {
		vs := t.Vertices()
		for _, a := range vs {
			for _, b := range vs {
				if a != b {
					conflicts[a][b] = true
				}
			}
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	// Sequential vertex coloring in index order: smallest color not used by
	// an already-colored conflicting neighbor.
	for i := 0; i < n; i++ {
		used := make(map[int]bool)
		for nb := range conflicts[i] {
			if colors[nb] >= 0 {
				used[colors[nb]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[i] = c
	}
	return colors
}

// cornerKIDForColor returns the corner KID for a color 0..2.
func cornerKIDForColor(c int) kautz.ID {
	kid := cornerBase
	for i := 0; i < c; i++ {
		kid = rotateLeft(kid)
	}
	return kid
}

// newCell creates a cell for a triangle and assigns its corner KIDs.
func (s *System) newCell(idx int, tri geo.Triangle, positions []geo.Point, colors []int) (*Cell, error) {
	vs := tri.Vertices()
	cell := &Cell{
		CID:       idx,
		Centroid:  tri.Centroid(positions),
		NodeByKID: make(map[kautz.ID]world.NodeID, s.graph.N()),
		kidOfNode: make(map[world.NodeID]kautz.ID, s.graph.N()),
		members:   make(map[world.NodeID]bool),
	}
	for i, v := range vs {
		cell.Corners[i] = s.actuators[v]
		cell.Vertices[i] = positions[v]
	}
	// Assign corner KIDs from global colors; clashes (colors >= 3 or
	// duplicates within the triangle) fall back to the free rotations.
	taken := make(map[kautz.ID]bool, 3)
	pending := make([]int, 0, 3)
	for i, v := range vs {
		if colors[v] < 3 {
			kid := cornerKIDForColor(colors[v])
			if !taken[kid] {
				taken[kid] = true
				cell.NodeByKID[kid] = s.actuators[v]
				cell.kidOfNode[s.actuators[v]] = kid
				continue
			}
		}
		pending = append(pending, i)
	}
	for _, i := range pending {
		assigned := false
		for c := 0; c < 3; c++ {
			kid := cornerKIDForColor(c)
			if !taken[kid] {
				taken[kid] = true
				cell.NodeByKID[kid] = s.actuators[vs[i]]
				cell.kidOfNode[s.actuators[vs[i]]] = kid
				assigned = true
				break
			}
		}
		if !assigned {
			return nil, fmt.Errorf("could not assign corner KIDs")
		}
	}
	return cell, nil
}

// notifyActuators charges the DFS ID-notification messages from the leader.
func (s *System) notifyActuators(leader world.NodeID, adjacency [][]int) {
	index := make(map[world.NodeID]int, len(s.actuators))
	for i, a := range s.actuators {
		index[a] = i
	}
	visited := make(map[int]bool, len(s.actuators))
	var dfs func(i int)
	dfs = func(i int) {
		visited[i] = true
		for _, j := range adjacency[i] {
			if !visited[j] {
				s.w.Send(s.actuators[i], s.actuators[j], energy.Construction, nil)
				dfs(j)
			}
		}
	}
	dfs(index[leader])
}

// assignCellSensors associates every sensor with a cell: the triangle that
// strictly contains it (triangle interiors partition the covered area), or
// else the nearest cell within CellMargin. Sensors outside every cell stay
// unaffiliated; they can still source data through any nearby overlay node.
func (s *System) assignCellSensors() {
	for _, n := range s.w.Nodes() {
		if n.Kind != world.Sensor {
			continue
		}
		p := s.w.Position(n.ID)
		if s.cellIndex != nil {
			s.notePosition(n.ID, p)
		}
		owner := s.homeCell(p)
		if owner != nil {
			owner.members[n.ID] = true
			s.sensorCell[n.ID] = owner
		}
	}
}

// homeCell returns the cell a sensor at p belongs to: the first cell (in
// s.cells order) whose triangle contains p, else the nearest cell within
// CellMargin, else nil. The indexed and linear paths give byte-identical
// answers (TriIndex preserves the scans' first-hit and last-equal-distance
// tie-breaks); the linear path remains as the DisableCellIndex ablation and
// the property-test reference. Both paths decide ownership over the full
// fixed triangle set — including cells since retired by a recovery merge —
// and then resolve the owner through the absorber chain, so the indexed,
// linear and sharded paths keep agreeing after merges.
func (s *System) homeCell(p geo.Point) *Cell {
	if s.cellIndex != nil {
		if ti := s.cellIndex.Containing(p); ti >= 0 {
			return s.activeCell(s.cells[ti])
		}
		if ti := s.cellIndex.NearestWithin(p, s.cfg.CellMargin); ti >= 0 {
			return s.activeCell(s.cells[ti])
		}
		return nil
	}
	for _, c := range s.cells {
		s.stats.MaintainChecks++
		if c.contains(p, 0) {
			return s.activeCell(c)
		}
	}
	var owner *Cell
	bestDist := s.cfg.CellMargin
	for _, c := range s.cells {
		s.stats.MaintainChecks++
		if d := c.distance(p); d <= bestDist {
			owner, bestDist = c, d
		}
	}
	return s.activeCell(owner)
}

// notePosition memoizes the position a sensor was last homed at (growing
// the memo to cover the world's node count on first use).
func (s *System) notePosition(id world.NodeID, p geo.Point) {
	for len(s.homePos) <= int(id) {
		s.homePos = append(s.homePos, geo.Point{})
		s.homeValid = append(s.homeValid, false)
	}
	s.homePos[id] = p
	s.homeValid[id] = true
}

// embedCell selects sensors for the nine non-corner KIDs of a cell
// (Section III-B-2): three TTL-2 path queries between successive corner
// actuators, one sensor-to-sensor path query, and one final common-neighbor
// assignment. Path queries are real floods (energy!); path selection picks
// the highest accumulated battery, with physical tightness as tie-break.
func (s *System) embedCell(c *Cell) error {
	// Corner KIDs in KID order so the protocol is deterministic.
	cornerKIDs := []kautz.ID{cornerBase, rotateLeft(cornerBase), rotateLeft(rotateLeft(cornerBase))}

	// Step 1: actuator-to-successor paths.
	for _, x := range cornerKIDs {
		from := c.NodeByKID[x]
		to := c.NodeByKID[rotateLeft(x)]
		s1KID, s2KID := pathKIDs(x)
		a, b, err := s.selectPathSensors(c, from, to)
		if err != nil {
			return fmt.Errorf("path %s→%s: %w", x, rotateLeft(x), err)
		}
		s.assignKID(c, a, s1KID)
		s.assignKID(c, b, s2KID)
		// ID notification to the two selected sensors.
		s.w.Send(to, b, energy.Construction, nil)
		s.w.Send(to, a, energy.Construction, nil)
	}

	// Step 2: the sensor-to-sensor path. S_i is the successor of the
	// smallest corner KID, S_j the predecessor of the largest corner KID.
	smallest, largest := cornerKIDs[0], cornerKIDs[0]
	for _, kid := range cornerKIDs[1:] {
		if kid < smallest {
			smallest = kid
		}
		if kid > largest {
			largest = kid
		}
	}
	si, _ := pathKIDs(smallest)
	var sj kautz.ID
	for _, x := range cornerKIDs {
		if rotateLeft(x) == largest {
			_, sj = pathKIDs(x)
		}
	}
	siNode, sjNode := c.NodeByKID[si], c.NodeByKID[sj]
	mid1 := si.MustShift(sj.At(0))
	mid2 := mid1.MustShift(sj.At(1))
	a, b, err := s.selectPathSensors(c, siNode, sjNode)
	if err != nil {
		return fmt.Errorf("sensor path %s→%s: %w", si, sj, err)
	}
	s.assignKID(c, a, mid1)
	s.assignKID(c, b, mid2)
	s.w.Send(sjNode, a, energy.Construction, nil)
	s.w.Send(sjNode, b, energy.Construction, nil)

	// Step 3: the last KID goes to the best common neighbor of the two
	// just-selected sensors — or, in sparse cells without one, to the
	// sensor best connected to the KID's overlay partners (the same rule
	// maintenance uses for candidates).
	var lastKID kautz.ID
	for _, kid := range s.graph.Nodes() {
		if _, taken := c.NodeByKID[kid]; !taken {
			lastKID = kid
			break
		}
	}
	if lastKID == "" {
		return fmt.Errorf("no remaining KID for the final assignment")
	}
	last, err := s.selectCommonNeighbor(c, a, b)
	if err != nil {
		last, err = s.selectBestConnected(c, lastKID)
	}
	if err != nil {
		return fmt.Errorf("final KID %s: %w", lastKID, err)
	}
	s.assignKID(c, last, lastKID)
	s.w.Broadcast(a, energy.Construction, nil) // common-neighbor probe
	s.w.Send(a, last, energy.Construction, nil)

	// Sanity: the embedding must be complete.
	if len(c.NodeByKID) != s.graph.N() {
		return fmt.Errorf("incomplete embedding: %d of %d KIDs", len(c.NodeByKID), s.graph.N())
	}
	return nil
}

// assignKID records a sensor's KID in its cell and registers the sensor as
// an overlay member for entry selection (a sensor serves at most one cell's
// overlay, so first registration wins — matching the cells-order scan).
func (s *System) assignKID(c *Cell, id world.NodeID, kid kautz.ID) {
	c.NodeByKID[kid] = id
	c.kidOfNode[id] = kid
	if _, ok := s.memberCell[id]; !ok {
		s.memberCell[id] = c
	}
}

// sensorRange returns the link range for sensor-involving links: overlay
// neighbors must be mutually reachable, so the (smaller) sensor range
// governs.
func (s *System) sensorRange(ids ...world.NodeID) float64 {
	r := s.w.Node(ids[0]).Range
	for _, id := range ids[1:] {
		if rr := s.w.Node(id).Range; rr < r {
			r = rr
		}
	}
	return r
}

// selectPathSensors runs a TTL-2 path query from from toward to (paying the
// flood) and picks the two intermediate sensors with the highest
// accumulated energy whose chain from→a→b→to is bidirectionally connected.
func (s *System) selectPathSensors(c *Cell, from, to world.NodeID) (a, b world.NodeID, err error) {
	// The path query flood: TTL 2, restricted to the cell's sensors.
	s.w.Flood(from, 2, energy.Construction, func(at world.NodeID, hops int, path []world.NodeID) bool {
		return c.members[at] // only cell sensors relay the query
	}, nil)

	candidates := s.candidatePool(c)
	bestScore, bestTight := -1.0, 0.0
	a, b = world.NoNode, world.NoNode
	pTo := s.w.Position(to)
	pFrom := s.w.Position(from)
	for _, x := range candidates {
		px := s.w.Position(x)
		if px.Dist(pFrom) > s.sensorRange(from, x) {
			continue
		}
		for _, y := range candidates {
			if x == y {
				continue
			}
			py := s.w.Position(y)
			if px.Dist(py) > s.sensorRange(x, y) {
				continue
			}
			if py.Dist(pTo) > s.sensorRange(y, to) {
				continue
			}
			score := s.w.Node(x).Meter.Fraction() + s.w.Node(y).Meter.Fraction()
			tight := pFrom.Dist(px) + px.Dist(py) + py.Dist(pTo)
			if score > bestScore || (score == bestScore && tight < bestTight) {
				bestScore, bestTight = score, tight
				a, b = x, y
			}
		}
	}
	if a == world.NoNode {
		return world.NoNode, world.NoNode, fmt.Errorf("no connected sensor pair between %d and %d", from, to)
	}
	return a, b, nil
}

// selectCommonNeighbor picks the highest-battery unassigned cell sensor in
// range of both x and y.
func (s *System) selectCommonNeighbor(c *Cell, x, y world.NodeID) (world.NodeID, error) {
	best := world.NoNode
	bestScore := -1.0
	px, py := s.w.Position(x), s.w.Position(y)
	for _, cand := range s.candidatePool(c) {
		p := s.w.Position(cand)
		if p.Dist(px) > s.sensorRange(x, cand) || p.Dist(py) > s.sensorRange(y, cand) {
			continue
		}
		if score := s.w.Node(cand).Meter.Fraction(); score > bestScore {
			best, bestScore = cand, score
		}
	}
	if best == world.NoNode {
		return world.NoNode, fmt.Errorf("no common neighbor of %d and %d", x, y)
	}
	return best, nil
}

// selectBestConnected picks the alive unassigned cell sensor with radio
// links to the most overlay partners of kid (at least one required);
// battery breaks ties.
func (s *System) selectBestConnected(c *Cell, kid kautz.ID) (world.NodeID, error) {
	partners := s.overlayPartners(c, kid)
	best := world.NoNode
	bestConn, bestScore := 0, -1.0
	for _, cand := range s.candidatePool(c) {
		p := s.w.Position(cand)
		conn := 0
		for _, partner := range partners {
			if p.Dist(s.w.Position(partner)) <= s.sensorRange(cand, partner) {
				conn++
			}
		}
		if conn == 0 {
			continue
		}
		score := s.w.Node(cand).Meter.Fraction()
		if conn > bestConn || (conn == bestConn && score > bestScore) {
			best, bestConn, bestScore = cand, conn, score
		}
	}
	if best == world.NoNode {
		return world.NoNode, fmt.Errorf("no sensor connects to any overlay partner of %s", kid)
	}
	return best, nil
}

// candidatePool returns the alive, unassigned sensors of a cell sorted by
// ID (deterministic iteration). The returned slice is the system's reused
// buffer: it is only borrowed, valid until the next candidatePool call, and
// sorted by insertion into the retained storage so the per-round maintenance
// path allocates nothing at steady state.
func (s *System) candidatePool(c *Cell) []world.NodeID {
	pool := s.poolBuf[:0]
	for id := range c.members {
		if _, taken := c.kidOfNode[id]; taken {
			continue
		}
		if !s.w.Node(id).Alive() {
			continue
		}
		pool = append(pool, id)
		for j := len(pool) - 1; j > 0 && pool[j] < pool[j-1]; j-- {
			pool[j], pool[j-1] = pool[j-1], pool[j]
		}
	}
	s.poolBuf = pool
	return pool
}

// buildDHT assembles the CAN tier: one zone per cell, zones adjacent when
// their triangles share an actuator or their nearest actuators are in
// radio range.
func (s *System) buildDHT() error {
	zones := make([]can.Zone, 0, len(s.cells))
	for _, c := range s.cells {
		zones = append(zones, can.Zone{CID: c.CID, Coord: c.Centroid})
	}
	var adjacency map[int][]int
	if s.cellIndex != nil {
		adjacency = s.cellAdjacencyIndexed()
	} else {
		adjacency = make(map[int][]int, len(s.cells))
		for i, a := range s.cells {
			for j, b := range s.cells {
				if i == j {
					continue
				}
				if cellsAdjacent(s.w, a, b) {
					adjacency[a.CID] = append(adjacency[a.CID], b.CID)
				}
			}
		}
	}
	table, err := can.New(zones, adjacency)
	if err != nil {
		return err
	}
	s.dht = &dhtTier{table: table}
	return nil
}

// cellAdjacencyIndexed derives the same cell adjacency as the O(cells²)
// cellsAdjacent pair loop, but from the actuator side: two cells are
// adjacent exactly when some corner pair is the same actuator or a pair in
// mutual radio range, so it suffices to enumerate qualifying actuator pairs
// — found through a spatial grid over actuator positions instead of cell
// pairs — and connect the cells cornered on them. Pairs reached through
// several corner combinations are deduplicated (the pair loop emitted each
// ordered cell pair at most once).
func (s *System) cellAdjacencyIndexed() map[int][]int {
	// cellsOf[i] lists the cells cornered on actuator index i, in cell order.
	positions := make([]geo.Point, len(s.actuators))
	actIndex := make(map[world.NodeID]int, len(s.actuators))
	for i, a := range s.actuators {
		positions[i] = s.w.Position(a)
		actIndex[a] = i
	}
	cellsOf := make([][]*Cell, len(s.actuators))
	for _, c := range s.cells {
		for _, corner := range c.Corners {
			i := actIndex[corner]
			cellsOf[i] = append(cellsOf[i], c)
		}
	}

	adjSet := make([]map[int]bool, len(s.cells))
	connect := func(a, b *Cell) {
		if a.CID == b.CID {
			return
		}
		if adjSet[a.CID] == nil {
			adjSet[a.CID] = make(map[int]bool, 8)
		}
		if adjSet[b.CID] == nil {
			adjSet[b.CID] = make(map[int]bool, 8)
		}
		adjSet[a.CID][b.CID] = true
		adjSet[b.CID][a.CID] = true
	}

	// Shared corner: every pair of cells on the same actuator is adjacent.
	for i := range cellsOf {
		for x, a := range cellsOf[i] {
			for _, b := range cellsOf[i][x+1:] {
				connect(a, b)
			}
		}
	}

	// Mutual radio range: candidate partners come from a grid query with the
	// querying actuator's own range; the exact mutual check matches the
	// cellsAdjacent predicate bit for bit.
	region := geo.Rect{Min: positions[0], Max: positions[0]}
	maxRange := 0.0
	for i, p := range positions {
		if p.X < region.Min.X {
			region.Min.X = p.X
		}
		if p.Y < region.Min.Y {
			region.Min.Y = p.Y
		}
		if p.X > region.Max.X {
			region.Max.X = p.X
		}
		if p.Y > region.Max.Y {
			region.Max.Y = p.Y
		}
		if r := s.w.Node(s.actuators[i]).Range; r > maxRange {
			maxRange = r
		}
	}
	grid := geo.NewGrid(region, maxRange/2+1)
	for i, p := range positions {
		grid.Insert(i, p)
	}
	var nearby []int
	for i, p := range positions {
		ri := s.w.Node(s.actuators[i]).Range
		nearby = grid.Within(nearby[:0], p, ri, i)
		for _, j := range nearby {
			if j <= i {
				continue // each unordered actuator pair handled once
			}
			d := positions[i].Dist(positions[j])
			rj := s.w.Node(s.actuators[j]).Range
			if d > ri || d > rj {
				continue
			}
			for _, a := range cellsOf[i] {
				for _, b := range cellsOf[j] {
					connect(a, b)
				}
			}
		}
	}

	adjacency := make(map[int][]int, len(s.cells))
	for cid, set := range adjSet {
		if len(set) == 0 {
			continue
		}
		nbs := make([]int, 0, len(set))
		for nb := range set {
			nbs = append(nbs, nb)
		}
		sort.Ints(nbs)
		adjacency[cid] = nbs
	}
	return adjacency
}

// cellsAdjacent reports whether two cells share an actuator or have a pair
// of actuators in mutual radio range.
func cellsAdjacent(w *world.World, a, b *Cell) bool {
	for _, ca := range a.Corners {
		for _, cb := range b.Corners {
			if ca == cb {
				return true
			}
			d := w.Position(ca).Dist(w.Position(cb))
			if d <= w.Node(ca).Range && d <= w.Node(cb).Range {
				return true
			}
		}
	}
	return false
}

// dhtTier is the CAN state plus helpers bound to the system.
type dhtTier struct {
	table *can.Table
	// takenOver records the CAN zone takeovers of recovery merges: the CID
	// of a retired cell maps to the CID of its absorber at merge time. The
	// CAN table itself is immutable; lookups resolve through this layer.
	// Nil until the first merge, so recovery-disabled runs never touch it.
	takenOver map[int]int
}

// resolve follows the takeover chain from cid to the active cell currently
// answering for it. Chains are finite: a takeover target was active when
// recorded and retirement is permanent, so no cycle can form.
func (d *dhtTier) resolve(cid int) int {
	for {
		next, ok := d.takenOver[cid]
		if !ok {
			return cid
		}
		cid = next
	}
}

// remapCIDRoute resolves every hop of a CAN route through the zone
// takeovers and collapses the consecutive duplicates the resolution
// creates, so inter-cell forwarding only ever visits active cells. Without
// takeovers the route is returned untouched (the recovery-disabled path
// allocates nothing here).
func (s *System) remapCIDRoute(route []int) []int {
	if len(s.dht.takenOver) == 0 {
		return route
	}
	out := make([]int, 0, len(route))
	for _, cid := range route {
		cid = s.dht.resolve(cid)
		if n := len(out); n > 0 && out[n-1] == cid {
			continue
		}
		out = append(out, cid)
	}
	return out
}
