// Package core implements REFER — the Kautz-based REal-time, Fault-tolerant
// and EneRgy-efficient WSAN of the paper (Section III).
//
// A REFER network is organized in three layers:
//
//  1. Cells. The actuator layer is partitioned into triangles; each triangle
//     is a cell hosting an embedded Kautz graph K(2,3) whose three "corner"
//     vertices (KIDs 012, 120, 201) are the cell's actuators and whose nine
//     remaining vertices are selected sensors. Overlay neighbors are radio
//     neighbors — the topology-consistency property that separates REFER
//     from application-layer Kautz overlays.
//  2. DHT tier. Actuators form a CAN keyed by cell IDs (centroids), used for
//     inter-cell routing.
//  3. Routing. Intra-cell forwarding uses the greedy shortest Kautz protocol
//     with Theorem 3.8 failover: on a failed successor the relay ranks the
//     remaining disjoint paths by length — computed from IDs alone — and
//     retries, with no flooding and no notification to the source.
//
// Topology maintenance keeps the embedding alive under mobility and battery
// drain with the awake/wait/sleep replacement scheme of Section III-B-4.
package core

import (
	"fmt"
	"time"

	"refer/internal/geo"
	"refer/internal/kautz"
	"refer/internal/world"
)

// Config parameterizes a REFER deployment.
type Config struct {
	// Degree is the Kautz degree d. d = 2 uses the paper's exact K(2,3)
	// embedding protocol; d > 2 uses the generalized wavefront embedding
	// (embed_general.go) and needs a denser deployment.
	Degree int
	// Diameter is the Kautz diameter k; must be 3 (K(d,3) cells, three
	// actuator corners per cell).
	Diameter int
	// ProbeInterval is the topology-maintenance period: how often Kautz
	// sensors probe their overlay links and hand over to candidates.
	ProbeInterval time.Duration
	// CellMargin expands each triangle when deciding which sensors belong
	// to a cell, so border sensors participate (meters).
	CellMargin float64
	// HopBudget bounds the number of overlay hops a packet may take before
	// being dropped (loop protection); 0 means 3k+4.
	HopBudget int
	// DisableFailover turns off the Theorem 3.8 alternate-path failover:
	// a relay only ever tries the greedy shortest successor and drops the
	// packet when it fails. Ablation knob for quantifying the theorem's
	// contribution.
	DisableFailover bool
	// DisableMaintenance turns off the awake/wait/sleep replacement scheme
	// (Section III-B-4). Ablation knob: under mobility the embedding then
	// decays and routing must work around dead or displaced overlay nodes.
	DisableMaintenance bool
	// DisableRouteTable turns off the process-wide precomputed Theorem 3.8
	// route table and recomputes every route set from the IDs on each
	// forwarding decision. Benchmark/ablation knob for quantifying the
	// table's saving; routing behavior is identical either way.
	DisableRouteTable bool
	// RunParallelism shards the per-round bulk maintenance phases —
	// membership re-homing and the per-cell candidate-pool/geometry
	// precompute — across this many worker goroutines inside a single run
	// (see shard.go). 0 or 1 keeps the sequential path. Results are
	// byte-identical at every setting: shards only compute decisions into
	// private scratch; all side effects (RNG draws, energy charges, map
	// mutations) are applied serially in the sequential order. Negative
	// values are treated as 0 — callers validate at their own edges.
	RunParallelism int
	// DisableCellIndex reverts every cell lookup to the pre-index linear
	// scans — O(sensors × cells) membership re-homing each probe round,
	// per-candidate cell scans in entry selection, and the O(cells²)
	// DHT-adjacency pair loop — and turns off the incremental position memo
	// that skips unmoved sensors. Benchmark/ablation knob for the scale
	// study: results are identical either way (the index preserves the
	// scans' first-cell and smaller-ID tie-breaks exactly); only the work
	// per maintenance round changes.
	DisableCellIndex bool
}

// DefaultConfig returns the paper's cell configuration.
func DefaultConfig() Config {
	return Config{
		Degree:        2,
		Diameter:      3,
		ProbeInterval: 5 * time.Second,
		CellMargin:    40,
	}
}

// Address is a REFER node address (CID, KID) as defined in Section III-B.
type Address struct {
	CID int
	KID kautz.ID
}

// String implements fmt.Stringer, e.g. "(5,201)".
func (a Address) String() string { return fmt.Sprintf("(%d,%s)", a.CID, a.KID) }

// System is a built REFER network over a world.
type System struct {
	w   *world.World
	cfg Config

	graph     *kautz.Graph
	routes    *kautz.RouteTable // shared precomputed Theorem 3.8 routes; nil = compute directly
	cells     []*Cell
	cellByCID map[int]*Cell
	dht       *dhtTier

	// membership: a sensor belongs to at most one cell; an actuator may sit
	// in several cells (keeping the same KID in each whenever the coloring
	// permits, Section III-B).
	sensorCell map[world.NodeID]*Cell
	actuators  []world.NodeID

	// cellIndex locates cells by position (nil under DisableCellIndex);
	// memberCell maps every overlay member to its first cell in s.cells
	// order, replacing the per-candidate cell scans of entry selection.
	cellIndex  *geo.TriIndex
	memberCell map[world.NodeID]*Cell
	// homePos/homeValid memoize each sensor's position at its last homing
	// decision: cell triangles are fixed at build time, so ownership is a
	// pure function of position and an unmoved sensor can skip re-homing
	// exactly. Indexed by NodeID; unused under DisableCellIndex.
	homePos   []geo.Point
	homeValid []bool
	// poolBuf is the reused candidatePool buffer (single-threaded runs; the
	// returned slice is borrowed until the next candidatePool call).
	poolBuf []world.NodeID

	built         bool
	maintenanceOn bool
	degradedAt    map[world.NodeID]time.Duration
	// cornerDownAt records when a recovery sweep first observed a corner
	// actuator dead (virtual time), keyed by the actuator; repairs trigger
	// once an entry ages past the grace window (recover.go). Lazily
	// allocated on the first sweep so recovery-disabled runs never touch it.
	cornerDownAt map[world.NodeID]time.Duration
	stats        Stats

	// shards is the lazily-built worker plan for RunParallelism > 1 (nil
	// until the first parallel maintenance round); shardChecks accumulates
	// the cell-index predicate evaluations counted by the shards' private
	// cursors, folded into MaintainChecks by Stats.
	shards      *shardPlan
	shardChecks uint64
}

// Stats counts protocol activity for analysis and tests.
type Stats struct {
	// FailoverSwitches counts Theorem 3.8 alternate-successor decisions.
	FailoverSwitches int
	// Replacements counts maintenance node replacements.
	Replacements int
	// Drops counts packets abandoned after exhausting all alternatives.
	Drops int
	// InterCell counts packets that crossed cells via the DHT tier.
	InterCell int
	// RouteCacheHits and RouteCacheMisses count forwarding decisions whose
	// Theorem 3.8 route set was served from the precomputed route table vs
	// computed directly from the IDs.
	RouteCacheHits   int
	RouteCacheMisses int
	// MaintainChecks counts cell containment/distance predicate evaluations
	// spent homing sensors (construction assignment plus every maintenance
	// round) — the membership-maintenance cost the cell index attacks. The
	// counter is deterministic per seed, so the scale figure can plot it.
	MaintainChecks int
	// Rehomes counts sensors whose cell actually changed during maintenance.
	Rehomes int
	// ShardRounds counts maintenance rounds that ran the sharded path
	// (RunParallelism > 1). The phase timers below are cumulative host
	// nanoseconds per phase: the parallel membership phase, the parallel
	// per-cell precompute, and the serial deterministic merge. The timers
	// vary between replays (host timing); ShardRounds is deterministic per
	// config but intentionally differs across RunParallelism settings, so
	// replay comparisons across shard counts strip all four alongside the
	// wall-clock fields.
	ShardRounds       int
	MembershipPhaseNs int64
	CellPhaseNs       int64
	MergeNs           int64
}

// New creates an unbuilt REFER system on w.
func New(w *world.World, cfg Config) *System {
	if cfg.Degree == 0 {
		cfg.Degree = 2
	}
	if cfg.Diameter == 0 {
		cfg.Diameter = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultConfig().ProbeInterval
	}
	if cfg.CellMargin <= 0 {
		cfg.CellMargin = DefaultConfig().CellMargin
	}
	if cfg.HopBudget <= 0 {
		cfg.HopBudget = 3*cfg.Diameter + 4
	}
	if cfg.RunParallelism < 0 {
		cfg.RunParallelism = 0
	}
	return &System{
		w:          w,
		cfg:        cfg,
		cellByCID:  make(map[int]*Cell),
		sensorCell: make(map[world.NodeID]*Cell),
		memberCell: make(map[world.NodeID]*Cell),
		degradedAt: make(map[world.NodeID]time.Duration),
	}
}

// Name implements the System interface.
func (s *System) Name() string { return "REFER" }

// Stats returns a snapshot of the protocol counters. The homing predicate
// evaluations the cell index performed internally are folded into
// MaintainChecks here, so the counter is comparable across the indexed and
// linear-scan configurations without the indexed hot path touching stats.
func (s *System) Stats() Stats {
	st := s.stats
	if s.cellIndex != nil {
		st.MaintainChecks += int(s.cellIndex.Checks())
	}
	// Shard cursors count the same queries the index would have counted
	// sequentially; each sensor is homed exactly once per round either way,
	// so the folded total is identical at every RunParallelism setting.
	st.MaintainChecks += int(s.shardChecks)
	return st
}

// SetRunParallelism overrides Config.RunParallelism (values < 2 select the
// sequential path). Safe before Build or between maintenance rounds; the
// worker plan is (re)built lazily on the next sharded round. Results are
// byte-identical at every setting.
func (s *System) SetRunParallelism(n int) {
	if n < 0 {
		n = 0
	}
	if n != s.cfg.RunParallelism {
		s.cfg.RunParallelism = n
		s.shards = nil
	}
}

// Cells returns the built cells.
func (s *System) Cells() []*Cell { return s.cells }

// Graph returns the Kautz template graph K(d,k).
func (s *System) Graph() *kautz.Graph { return s.graph }

// AddressOf returns the address of a node within its (first) cell, if the
// node is an overlay member.
func (s *System) AddressOf(id world.NodeID) (Address, bool) {
	if c, ok := s.sensorCell[id]; ok {
		if kid, ok := c.kidOfNode[id]; ok {
			return Address{CID: c.CID, KID: kid}, true
		}
		return Address{}, false
	}
	for _, c := range s.cells {
		if kid, ok := c.kidOfNode[id]; ok {
			return Address{CID: c.CID, KID: kid}, true
		}
	}
	return Address{}, false
}

// DHTRoute returns the CAN-tier CID route between two cells and whether
// pure greedy forwarding sufficed (false also covers unbuilt systems or a
// disconnected pair, in which case the route is nil). Endpoints and hops
// belonging to cells retired by a recovery merge resolve to their absorbers
// (the CAN zone takeover), so routes only ever name active cells.
func (s *System) DHTRoute(fromCID, toCID int) ([]int, bool) {
	if s.dht == nil {
		return nil, false
	}
	route, greedy := s.dht.table.Route(s.dht.resolve(fromCID), s.dht.resolve(toCID))
	if route == nil {
		return nil, greedy
	}
	return s.remapCIDRoute(route), greedy
}
