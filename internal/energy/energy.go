// Package energy models per-node battery accounting for the WSAN
// simulator behind a pluggable cost-model interface. The paper charges
// 2 J per transmitted packet and 0.75 J per received packet (LinkQuest
// UWM1000 figures) — that is PaperModel, the default — while RadioModel
// prices packets with the first-order distance-dependent radio model and
// HarvestingModel adds ambient income and duty-cycled sleep on top of
// either. Energy is reported split into a topology-construction ledger and
// a communication ledger; both splits are first-class here.
package energy

import (
	"fmt"
)

// Paper defaults (Joules per packet), Section IV. Consumed only by
// PaperModel; all charging goes through the CostModel interface.
const (
	DefaultTxCost = 2.0
	DefaultRxCost = 0.75
)

// Ledger classifies what an energy expenditure was for.
type Ledger int

const (
	// Construction covers topology construction: embedding, ID assignment,
	// cluster/tree formation, overlay path building.
	Construction Ledger = iota + 1
	// Communication covers data forwarding and topology maintenance.
	Communication
)

// String implements fmt.Stringer.
func (l Ledger) String() string {
	switch l {
	case Construction:
		return "construction"
	case Communication:
		return "communication"
	default:
		return fmt.Sprintf("Ledger(%d)", int(l))
	}
}

// Meter tracks one node's battery. The zero value is unusable; create
// meters through NewMeter so the initial budget is recorded. Meter is not
// safe for concurrent use: each simulation run owns its meters and charges
// them from its single event loop, and analysis tooling reads them only
// after the run completes. Charging is on the per-packet hot path, so the
// accessors are plain field reads.
//
// A constrained meter never overdraws: the charge that would cross zero is
// clipped to the Joules actually left, with the shortfall tracked in
// Clipped so packet-count reconciliation stays exact
// (construction + comm + clipped == Σ packet prices for flat models).
type Meter struct {
	model        CostModel
	initial      float64
	spent        float64
	construction float64
	comm         float64
	drained      float64
	harvested    float64
	clipped      float64
	txPackets    int64
	rxPackets    int64
}

// NewMeter creates a meter with the given battery budget in Joules. A
// budget <= 0 means an unconstrained supply (mains-powered actuators). A
// nil model means the paper's flat constants.
func NewMeter(model CostModel, budget float64) *Meter {
	if model == nil {
		model = DefaultModel()
	}
	return &Meter{model: model, initial: budget}
}

// ChargeTx records the cost of transmitting bits over dist meters against
// the ledger.
func (m *Meter) ChargeTx(l Ledger, bits int, dist float64) {
	m.charge(m.model.TxCost(bits, dist), l)
	m.txPackets++
}

// ChargeRx records the cost of receiving bits against the ledger.
func (m *Meter) ChargeRx(l Ledger, bits int, dist float64) {
	m.charge(m.model.RxCost(bits, dist), l)
	m.rxPackets++
}

func (m *Meter) charge(cost float64, l Ledger) {
	if m.initial > 0 {
		if left := m.initial + m.harvested - m.spent; cost > left {
			if left < 0 {
				left = 0
			}
			m.clipped += cost - left
			cost = left
		}
	}
	m.spent += cost
	switch l {
	case Construction:
		m.construction += cost
	default:
		m.comm += cost
	}
}

// Harvest banks income Joules into a constrained battery. Credit is capped
// at the battery's capacity (a full battery banks nothing), so Remaining
// never exceeds Budget and harvested never exceeds spent. Unconstrained
// meters ignore income. Returns the Joules actually banked.
func (m *Meter) Harvest(joules float64) float64 {
	if m.initial <= 0 || joules <= 0 {
		return 0
	}
	if room := m.spent - m.harvested; joules > room {
		joules = room
	}
	if joules <= 0 {
		return 0
	}
	m.harvested += joules
	return joules
}

// Harvested returns the Joules banked via Harvest.
func (m *Meter) Harvested() float64 { return m.harvested }

// Clipped returns the Joules of charge demand that an empty battery could
// not supply (the shortfall of clipped charges).
func (m *Meter) Clipped() float64 { return m.clipped }

// Drain removes joules from the battery outside the packet cost model —
// fault-injection brownouts, leakage, self-discharge. The amount lands in
// its own ledger (see Drained) so exact accounting stays checkable:
// spent == construction + comm + drained at all times. Draining an
// unconstrained meter (budget <= 0) is a no-op. Returns the Joules
// actually drained, clamped to what the battery has left.
func (m *Meter) Drain(joules float64) float64 {
	if m.initial <= 0 || joules <= 0 {
		return 0
	}
	if left := m.initial + m.harvested - m.spent; joules > left {
		joules = left
	}
	if joules <= 0 {
		return 0
	}
	m.spent += joules
	m.drained += joules
	return joules
}

// Drained returns the Joules removed via Drain, outside both packet
// ledgers.
func (m *Meter) Drained() float64 { return m.drained }

// Budget returns the initial battery budget in Joules (<= 0 means
// unconstrained).
func (m *Meter) Budget() float64 { return m.initial }

// Spent returns the total Joules consumed.
func (m *Meter) Spent() float64 { return m.spent }

// SpentOn returns the Joules consumed against one ledger.
func (m *Meter) SpentOn(l Ledger) float64 {
	if l == Construction {
		return m.construction
	}
	return m.comm
}

// Remaining returns the battery left (consumption net of harvesting), or
// +Inf-like large budget semantics: for unconstrained meters (budget <= 0)
// it always returns 1.
func (m *Meter) Remaining() float64 {
	if m.initial <= 0 {
		return 1
	}
	r := m.initial + m.harvested - m.spent
	if r < 0 {
		return 0
	}
	return r
}

// Fraction returns the remaining battery as a fraction of the initial
// budget in [0, 1]; unconstrained meters report 1.
func (m *Meter) Fraction() float64 {
	if m.initial <= 0 {
		return 1
	}
	f := (m.initial + m.harvested - m.spent) / m.initial
	if f < 0 {
		return 0
	}
	return f
}

// Depleted reports whether a constrained battery has run out. Harvesting
// can clear depletion again; the world folds both transitions into its
// alive bookkeeping.
func (m *Meter) Depleted() bool {
	return m.initial > 0 && m.spent-m.harvested >= m.initial
}

// Packets returns the transmit and receive packet counts.
func (m *Meter) Packets() (tx, rx int64) { return m.txPackets, m.rxPackets }
