// Package energy models per-node battery accounting for the WSAN
// simulator. The paper charges 2 J per transmitted packet and 0.75 J per
// received packet (LinkQuest UWM1000 figures) and reports energy split into
// a topology-construction ledger and a communication ledger; both splits
// are first-class here.
package energy

import (
	"fmt"
)

// Paper defaults (Joules per packet), Section IV.
const (
	DefaultTxCost = 2.0
	DefaultRxCost = 0.75
)

// Ledger classifies what an energy expenditure was for.
type Ledger int

const (
	// Construction covers topology construction: embedding, ID assignment,
	// cluster/tree formation, overlay path building.
	Construction Ledger = iota + 1
	// Communication covers data forwarding and topology maintenance.
	Communication
)

// String implements fmt.Stringer.
func (l Ledger) String() string {
	switch l {
	case Construction:
		return "construction"
	case Communication:
		return "communication"
	default:
		return fmt.Sprintf("Ledger(%d)", int(l))
	}
}

// Model holds the per-packet radio costs.
type Model struct {
	TxCost float64 // Joules per transmitted packet
	RxCost float64 // Joules per received packet
}

// DefaultModel returns the paper's cost model.
func DefaultModel() Model {
	return Model{TxCost: DefaultTxCost, RxCost: DefaultRxCost}
}

// Meter tracks one node's battery. The zero value is unusable; create
// meters through NewMeter so the initial budget is recorded. Meter is not
// safe for concurrent use: each simulation run owns its meters and charges
// them from its single event loop, and analysis tooling reads them only
// after the run completes. Charging is on the per-packet hot path, so the
// accessors are plain field reads.
type Meter struct {
	model        Model
	initial      float64
	spent        float64
	construction float64
	comm         float64
	drained      float64
	txPackets    int64
	rxPackets    int64
}

// NewMeter creates a meter with the given battery budget in Joules. A
// budget <= 0 means an unconstrained supply (mains-powered actuators).
func NewMeter(model Model, budget float64) *Meter {
	return &Meter{model: model, initial: budget}
}

// ChargeTx records the cost of transmitting one packet against the ledger.
func (m *Meter) ChargeTx(l Ledger) {
	m.charge(m.model.TxCost, l)
	m.txPackets++
}

// ChargeRx records the cost of receiving one packet against the ledger.
func (m *Meter) ChargeRx(l Ledger) {
	m.charge(m.model.RxCost, l)
	m.rxPackets++
}

func (m *Meter) charge(cost float64, l Ledger) {
	m.spent += cost
	switch l {
	case Construction:
		m.construction += cost
	default:
		m.comm += cost
	}
}

// Drain removes joules from the battery outside the packet cost model —
// fault-injection brownouts, leakage, self-discharge. The amount lands in
// its own ledger (see Drained) so exact accounting stays checkable:
// spent == construction + comm + drained at all times. Draining an
// unconstrained meter (budget <= 0) is a no-op. Returns the Joules
// actually drained, clamped to what the battery has left.
func (m *Meter) Drain(joules float64) float64 {
	if m.initial <= 0 || joules <= 0 {
		return 0
	}
	if left := m.initial - m.spent; joules > left {
		joules = left
	}
	if joules <= 0 {
		return 0
	}
	m.spent += joules
	m.drained += joules
	return joules
}

// Drained returns the Joules removed via Drain, outside both packet
// ledgers.
func (m *Meter) Drained() float64 { return m.drained }

// Budget returns the initial battery budget in Joules (<= 0 means
// unconstrained).
func (m *Meter) Budget() float64 { return m.initial }

// Spent returns the total Joules consumed.
func (m *Meter) Spent() float64 { return m.spent }

// SpentOn returns the Joules consumed against one ledger.
func (m *Meter) SpentOn(l Ledger) float64 {
	if l == Construction {
		return m.construction
	}
	return m.comm
}

// Remaining returns the battery left, or +Inf-like large budget semantics:
// for unconstrained meters (budget <= 0) it always returns 1.
func (m *Meter) Remaining() float64 {
	if m.initial <= 0 {
		return 1
	}
	r := m.initial - m.spent
	if r < 0 {
		return 0
	}
	return r
}

// Fraction returns the remaining battery as a fraction of the initial
// budget in [0, 1]; unconstrained meters report 1.
func (m *Meter) Fraction() float64 {
	if m.initial <= 0 {
		return 1
	}
	f := (m.initial - m.spent) / m.initial
	if f < 0 {
		return 0
	}
	return f
}

// Depleted reports whether a constrained battery has run out.
func (m *Meter) Depleted() bool { return m.initial > 0 && m.spent >= m.initial }

// Packets returns the transmit and receive packet counts.
func (m *Meter) Packets() (tx, rx int64) { return m.txPackets, m.rxPackets }
