package energy

import (
	"fmt"
	"math"
	"time"
)

// CostModel prices one packet's radio work. Implementations must be pure
// functions of their configuration: charging is on the per-packet hot path
// and replay determinism requires the same (bits, dist) to always cost the
// same Joules. dist is the link distance in meters at transmission time;
// models that do not care about distance (the paper's flat constants)
// simply ignore it.
type CostModel interface {
	// TxCost returns the Joules to transmit bits over dist meters.
	TxCost(bits int, dist float64) float64
	// RxCost returns the Joules to receive bits sent over dist meters.
	RxCost(bits int, dist float64) float64
}

// FlatModel is implemented by cost models whose per-packet prices do not
// depend on link distance. The invariant harness uses it to reconcile
// packet counters against Joules exactly; distance-dependent models cannot
// offer that check.
type FlatModel interface {
	// FlatCosts returns the fixed per-packet Tx and Rx prices for the given
	// packet size, with ok=false when the model is distance-dependent.
	FlatCosts(bits int) (tx, rx float64, ok bool)
}

// DefaultPacketBits is the packet size the world charges for when none is
// configured: 8192 bits ≈ 1 KB, matching the default 2 ms hop delay at
// 802.11 data rates.
const DefaultPacketBits = 8192

// PaperModel is the paper's flat per-packet cost model (Section IV,
// LinkQuest UWM1000): every transmission costs TxJ and every reception RxJ,
// regardless of packet size or link distance.
type PaperModel struct {
	TxJ float64 // Joules per transmitted packet
	RxJ float64 // Joules per received packet
}

// DefaultModel returns the paper's cost model (2 J / 0.75 J per packet).
func DefaultModel() PaperModel {
	return PaperModel{TxJ: DefaultTxCost, RxJ: DefaultRxCost}
}

// TxCost implements CostModel.
func (m PaperModel) TxCost(bits int, dist float64) float64 { return m.TxJ }

// RxCost implements CostModel.
func (m PaperModel) RxCost(bits int, dist float64) float64 { return m.RxJ }

// FlatCosts implements FlatModel.
func (m PaperModel) FlatCosts(bits int) (tx, rx float64, ok bool) {
	return m.TxJ, m.RxJ, true
}

// First-order radio model defaults (LEACH): electronics energy per bit,
// free-space and multipath amplifier coefficients. The crossover distance
// d₀ = sqrt(EFs/EMp) ≈ 87.7 m sits below the 100 m default sensor range,
// so both propagation regimes are exercised.
const (
	DefaultEElec = 50e-9      // J/bit — Tx/Rx electronics
	DefaultEFs   = 10e-12     // J/bit/m² — free-space amplifier (d < d₀)
	DefaultEMp   = 0.0013e-12 // J/bit/m⁴ — multipath amplifier (d ≥ d₀)
)

// RadioModel is the first-order radio energy model (LEACH/HEACT):
//
//	Tx(bits, d) = EElec·bits + EFs·bits·d²   for d < d₀
//	Tx(bits, d) = EElec·bits + EMp·bits·d⁴   for d ≥ d₀
//	Rx(bits)    = EElec·bits
//
// with d₀ = sqrt(EFs/EMp). The amplifier term is continuous at d₀ by
// construction. The zero value prices everything at 0; use
// DefaultRadioModel for the standard constants.
type RadioModel struct {
	EElec float64 // J/bit — transceiver electronics
	EFs   float64 // J/bit/m² — free-space amplifier coefficient
	EMp   float64 // J/bit/m⁴ — multipath amplifier coefficient
}

// DefaultRadioModel returns the standard LEACH first-order constants.
func DefaultRadioModel() RadioModel {
	return RadioModel{EElec: DefaultEElec, EFs: DefaultEFs, EMp: DefaultEMp}
}

// D0 returns the crossover distance sqrt(EFs/EMp) between the free-space
// and multipath regimes (+Inf when EMp is 0 — free-space applies always).
func (m RadioModel) D0() float64 {
	if m.EMp <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(m.EFs / m.EMp)
}

// TxCost implements CostModel.
func (m RadioModel) TxCost(bits int, dist float64) float64 {
	b := float64(bits)
	e := m.EElec * b
	if m.EMp > 0 && dist*dist >= m.EFs/m.EMp {
		d2 := dist * dist
		return e + m.EMp*b*d2*d2
	}
	return e + m.EFs*b*dist*dist
}

// RxCost implements CostModel.
func (m RadioModel) RxCost(bits int, dist float64) float64 {
	return m.EElec * float64(bits)
}

// Harvesting defaults, following the EH-Network exemplar: ambient income
// arrives continuously, is banked at a charge efficiency, and nodes
// duty-cycle to stretch it.
const (
	DefaultHarvestRate      = 1e-3 // W — ambient income before conversion loss
	DefaultChargeEfficiency = 0.75 // fraction of income actually banked
	DefaultSleepFraction    = 0.2  // fraction of each period spent asleep
)

// DefaultHarvestPeriod is the DES scheduling period for harvest credits and
// sleep windows.
const DefaultHarvestPeriod = 10 * time.Second

// HarvestingModel decorates a base cost model with energy-harvesting
// income and duty-cycled sleep. Packet prices delegate to Base (nil means
// the paper's flat constants); the harvesting side is interpreted by the
// world, which schedules a periodic DES cycle that banks
// ChargeEfficiency × HarvestRate × Period Joules into every constrained
// meter (capped at battery capacity) and puts each constrained node to
// sleep for SleepFraction of every period, staggered by node ID so the
// network never sleeps all at once.
type HarvestingModel struct {
	Base CostModel // per-packet prices; nil means DefaultModel()

	HarvestRate      float64       // W of ambient income; <= 0 means DefaultHarvestRate
	ChargeEfficiency float64       // banked fraction in (0, 1]; <= 0 means DefaultChargeEfficiency
	SleepFraction    float64       // sleep share of each period; 0 means DefaultSleepFraction, negative disables sleep
	Period           time.Duration // harvest/sleep cycle length; <= 0 means DefaultHarvestPeriod
}

// TxCost implements CostModel by delegating to Base.
func (h HarvestingModel) TxCost(bits int, dist float64) float64 {
	if h.Base != nil {
		return h.Base.TxCost(bits, dist)
	}
	return DefaultTxCost
}

// RxCost implements CostModel by delegating to Base.
func (h HarvestingModel) RxCost(bits int, dist float64) float64 {
	if h.Base != nil {
		return h.Base.RxCost(bits, dist)
	}
	return DefaultRxCost
}

// FlatCosts implements FlatModel by delegating to Base.
func (h HarvestingModel) FlatCosts(bits int) (tx, rx float64, ok bool) {
	if h.Base == nil {
		return DefaultTxCost, DefaultRxCost, true
	}
	if fm, is := h.Base.(FlatModel); is {
		return fm.FlatCosts(bits)
	}
	return 0, 0, false
}

// EffectivePeriod returns Period with the default applied.
func (h HarvestingModel) EffectivePeriod() time.Duration {
	if h.Period <= 0 {
		return DefaultHarvestPeriod
	}
	return h.Period
}

// IncomePerPeriod returns the Joules banked into a constrained meter per
// cycle: ChargeEfficiency × HarvestRate × EffectivePeriod.
func (h HarvestingModel) IncomePerPeriod() float64 {
	rate := h.HarvestRate
	if rate <= 0 {
		rate = DefaultHarvestRate
	}
	eff := h.ChargeEfficiency
	if eff <= 0 {
		eff = DefaultChargeEfficiency
	}
	if eff > 1 {
		eff = 1
	}
	return eff * rate * h.EffectivePeriod().Seconds()
}

// EffectiveSleepFraction returns the sleep share of each period in [0, 1):
// zero SleepFraction means the default, a negative value disables sleep.
func (h HarvestingModel) EffectiveSleepFraction() float64 {
	f := h.SleepFraction
	if f == 0 {
		f = DefaultSleepFraction
	}
	if f < 0 {
		return 0
	}
	if f >= 1 {
		f = 0.99
	}
	return f
}

// Spec model names.
const (
	ModelPaper      = "paper"
	ModelRadio      = "radio"
	ModelHarvesting = "harvesting"
)

// Spec is the serializable description of a cost model, the form carried
// by experiment.RunConfig and the refer-simd wire API. The zero value means
// "use the default PaperModel" and canonicalizes to nothing, so
// configurations written before the energy redesign keep their content
// address. All fields are optional; zero means the model's default.
type Spec struct {
	// Model selects the implementation: "paper" (default), "radio" or
	// "harvesting".
	Model string `json:"model,omitempty"`

	// PacketBits overrides the packet size the world charges for
	// (default DefaultPacketBits).
	PacketBits int `json:"packet_bits,omitempty"`

	// Paper-model prices (Joules per packet).
	TxJ float64 `json:"tx_j,omitempty"`
	RxJ float64 `json:"rx_j,omitempty"`

	// Radio-model coefficients.
	EElec float64 `json:"e_elec,omitempty"` // J/bit
	EFs   float64 `json:"e_fs,omitempty"`   // J/bit/m²
	EMp   float64 `json:"e_mp,omitempty"`   // J/bit/m⁴

	// Harvesting parameters. Base names the wrapped price model ("paper" or
	// "radio", default "radio") and reuses the price fields above.
	Base             string  `json:"base,omitempty"`
	HarvestRate      float64 `json:"harvest_rate_w,omitempty"`
	ChargeEfficiency float64 `json:"charge_efficiency,omitempty"`
	SleepFraction    float64 `json:"sleep_fraction,omitempty"`
	PeriodS          float64 `json:"period_s,omitempty"`
}

// IsZero reports whether the spec is the all-default zero value.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate checks the spec without building it.
func (s Spec) Validate() error {
	switch s.Model {
	case "", ModelPaper, ModelRadio, ModelHarvesting:
	default:
		return fmt.Errorf("energy: unknown model %q (want %q, %q or %q)",
			s.Model, ModelPaper, ModelRadio, ModelHarvesting)
	}
	switch s.Base {
	case "", ModelPaper, ModelRadio:
	default:
		return fmt.Errorf("energy: unknown harvesting base %q (want %q or %q)",
			s.Base, ModelPaper, ModelRadio)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"tx_j", s.TxJ}, {"rx_j", s.RxJ},
		{"e_elec", s.EElec}, {"e_fs", s.EFs}, {"e_mp", s.EMp},
		{"harvest_rate_w", s.HarvestRate}, {"period_s", s.PeriodS},
	} {
		if f.v < 0 {
			return fmt.Errorf("energy: %s must be >= 0, got %g", f.name, f.v)
		}
	}
	if s.PacketBits < 0 {
		return fmt.Errorf("energy: packet_bits must be >= 0, got %d", s.PacketBits)
	}
	if s.ChargeEfficiency < 0 || s.ChargeEfficiency > 1 {
		return fmt.Errorf("energy: charge_efficiency must be in [0, 1], got %g", s.ChargeEfficiency)
	}
	if s.SleepFraction < 0 || s.SleepFraction >= 1 {
		return fmt.Errorf("energy: sleep_fraction must be in [0, 1), got %g", s.SleepFraction)
	}
	return nil
}

// paper builds the flat price model the spec describes.
func (s Spec) paper() PaperModel {
	m := DefaultModel()
	if s.TxJ > 0 {
		m.TxJ = s.TxJ
	}
	if s.RxJ > 0 {
		m.RxJ = s.RxJ
	}
	return m
}

// radio builds the first-order radio model the spec describes.
func (s Spec) radio() RadioModel {
	m := DefaultRadioModel()
	if s.EElec > 0 {
		m.EElec = s.EElec
	}
	if s.EFs > 0 {
		m.EFs = s.EFs
	}
	if s.EMp > 0 {
		m.EMp = s.EMp
	}
	return m
}

// Build constructs the cost model the spec describes. The zero spec builds
// (nil, nil): callers keep whatever default they already have.
func (s Spec) Build() (CostModel, error) {
	if s.IsZero() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Model {
	case "", ModelPaper:
		return s.paper(), nil
	case ModelRadio:
		return s.radio(), nil
	case ModelHarvesting:
		var base CostModel
		if s.Base == ModelPaper {
			base = s.paper()
		} else {
			base = s.radio()
		}
		return HarvestingModel{
			Base:             base,
			HarvestRate:      s.HarvestRate,
			ChargeEfficiency: s.ChargeEfficiency,
			SleepFraction:    s.SleepFraction,
			Period:           time.Duration(s.PeriodS * float64(time.Second)),
		}, nil
	default:
		return nil, fmt.Errorf("energy: unknown model %q", s.Model)
	}
}
