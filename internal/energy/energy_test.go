package energy

import (
	"math"
	"testing"
)

func TestDefaultModelMatchesPaper(t *testing.T) {
	m := DefaultModel()
	if got := m.TxCost(DefaultPacketBits, 100); got != 2.0 {
		t.Errorf("TxCost = %f, want 2.0 (paper Section IV)", got)
	}
	if got := m.RxCost(DefaultPacketBits, 100); got != 0.75 {
		t.Errorf("RxCost = %f, want 0.75 (paper Section IV)", got)
	}
}

func TestMeterLedgers(t *testing.T) {
	m := NewMeter(DefaultModel(), 100)
	m.ChargeTx(Construction, DefaultPacketBits, 0)
	m.ChargeRx(Construction, DefaultPacketBits, 0)
	m.ChargeTx(Communication, DefaultPacketBits, 0)
	m.ChargeTx(Communication, DefaultPacketBits, 0)
	m.ChargeRx(Communication, DefaultPacketBits, 0)

	if got, want := m.SpentOn(Construction), 2.75; got != want {
		t.Errorf("construction = %f, want %f", got, want)
	}
	if got, want := m.SpentOn(Communication), 4.75; got != want {
		t.Errorf("communication = %f, want %f", got, want)
	}
	if got, want := m.Spent(), 7.5; got != want {
		t.Errorf("total = %f, want %f", got, want)
	}
	tx, rx := m.Packets()
	if tx != 3 || rx != 2 {
		t.Errorf("packets = (%d,%d), want (3,2)", tx, rx)
	}
}

func TestMeterRemainingAndDepletion(t *testing.T) {
	m := NewMeter(DefaultModel(), 5)
	if m.Depleted() {
		t.Fatal("fresh meter depleted")
	}
	if got := m.Remaining(); got != 5 {
		t.Fatalf("Remaining = %f, want 5", got)
	}
	m.ChargeTx(Communication, DefaultPacketBits, 0) // 2 J
	m.ChargeTx(Communication, DefaultPacketBits, 0) // 2 J
	if got := m.Remaining(); got != 1 {
		t.Fatalf("Remaining = %f, want 1", got)
	}
	if got := m.Fraction(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Fraction = %f, want 0.2", got)
	}
	m.ChargeTx(Communication, DefaultPacketBits, 0) // overdraft
	if !m.Depleted() {
		t.Fatal("meter should be depleted")
	}
	if got := m.Remaining(); got != 0 {
		t.Fatalf("Remaining clamped = %f, want 0", got)
	}
	if got := m.Fraction(); got != 0 {
		t.Fatalf("Fraction clamped = %f, want 0", got)
	}
}

func TestMeterUnconstrained(t *testing.T) {
	m := NewMeter(DefaultModel(), 0) // actuator: mains powered
	for i := 0; i < 1000; i++ {
		m.ChargeTx(Communication, DefaultPacketBits, 0)
	}
	if m.Depleted() {
		t.Fatal("unconstrained meter depleted")
	}
	if m.Remaining() != 1 || m.Fraction() != 1 {
		t.Fatal("unconstrained meter should report full charge")
	}
	if got := m.Spent(); got != 2000 {
		t.Fatalf("Spent = %f, want 2000 (spend still tracked)", got)
	}
}

// TestMeterExactAccounting charges a meter the way a simulation run does —
// sequentially, from a single owner — and requires the ledgers to reprice
// exactly from the packet counts. (Meter is documented as not safe for
// concurrent use: runs own their meters and charge them from the single DES
// event loop, keeping the per-packet hot path free of synchronization. The
// chaos harness re-checks this same identity after every fault event.)
func TestMeterExactAccounting(t *testing.T) {
	m := NewMeter(DefaultModel(), 0)
	for i := 0; i < 8000; i++ {
		m.ChargeTx(Communication, DefaultPacketBits, 0)
		m.ChargeRx(Construction, DefaultPacketBits, 0)
	}
	tx, rx := m.Packets()
	if tx != 8000 || rx != 8000 {
		t.Fatalf("packets = (%d,%d), want (8000,8000)", tx, rx)
	}
	want := 8000*2.0 + 8000*0.75
	if got := m.Spent(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Spent = %f, want %f", got, want)
	}
	if got := m.SpentOn(Communication) + m.SpentOn(Construction) + m.Drained(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("ledgers sum to %f, want %f", got, want)
	}
}

func TestLedgerString(t *testing.T) {
	tests := []struct {
		l    Ledger
		want string
	}{
		{Construction, "construction"},
		{Communication, "communication"},
		{Ledger(42), "Ledger(42)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}
