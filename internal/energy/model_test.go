package energy

import (
	"math"
	"testing"
	"time"
)

func TestRadioD0(t *testing.T) {
	m := DefaultRadioModel()
	d0 := m.D0()
	if want := math.Sqrt(DefaultEFs / DefaultEMp); d0 != want {
		t.Fatalf("D0 = %v, want sqrt(EFs/EMp) = %v", d0, want)
	}
	// The crossover must sit inside the default 100 m sensor range so real
	// deployments exercise both propagation regimes.
	if d0 <= 0 || d0 >= 100 {
		t.Fatalf("D0 = %v m, want inside (0, 100)", d0)
	}
	if got := (RadioModel{EElec: DefaultEElec, EFs: DefaultEFs}).D0(); !math.IsInf(got, 1) {
		t.Fatalf("D0 with EMp=0 = %v, want +Inf", got)
	}
}

// TestRadioContinuityAtD0 pins the regime handoff: the free-space and
// multipath amplifier terms agree at d₀ by construction, and stepping one
// ulp across the crossover moves the price by at most a few ulps.
func TestRadioContinuityAtD0(t *testing.T) {
	m := DefaultRadioModel()
	d0 := m.D0()
	b := float64(DefaultPacketBits)
	free := m.EElec*b + m.EFs*b*d0*d0
	multi := m.EElec*b + m.EMp*b*d0*d0*d0*d0
	if rel := math.Abs(free-multi) / free; rel > 1e-12 {
		t.Fatalf("amplifier terms disagree at d0: free %v vs multipath %v (rel %v)", free, multi, rel)
	}
	below := m.TxCost(DefaultPacketBits, math.Nextafter(d0, 0))
	at := m.TxCost(DefaultPacketBits, d0)
	above := m.TxCost(DefaultPacketBits, math.Nextafter(d0, math.Inf(1)))
	if rel := math.Abs(below-at) / at; rel > 1e-12 {
		t.Fatalf("price jumps entering d0: %v -> %v (rel %v)", below, at, rel)
	}
	if rel := math.Abs(above-at) / at; rel > 1e-12 {
		t.Fatalf("price jumps leaving d0: %v -> %v (rel %v)", at, above, rel)
	}
}

// TestRadioMonotonicity checks the model's two growth axes across both
// regimes: transmit price never decreases with distance, strictly grows
// with packet size, and receive price ignores distance entirely.
func TestRadioMonotonicity(t *testing.T) {
	m := DefaultRadioModel()
	prev := -1.0
	for d := 0.0; d <= 150; d += 0.5 {
		tx := m.TxCost(DefaultPacketBits, d)
		if tx < prev {
			t.Fatalf("TxCost decreased: %v m prices %v after %v", d, tx, prev)
		}
		if tx < m.EElec*float64(DefaultPacketBits) {
			t.Fatalf("TxCost below electronics floor at %v m: %v", d, tx)
		}
		prev = tx
		if rx := m.RxCost(DefaultPacketBits, d); rx != m.RxCost(DefaultPacketBits, 0) {
			t.Fatalf("RxCost depends on distance at %v m", d)
		}
	}
	for _, d := range []float64{0, 50, 87, 100, 150} {
		small, large := m.TxCost(1024, d), m.TxCost(8192, d)
		if small >= large {
			t.Fatalf("TxCost not increasing in bits at %v m: %v vs %v", d, small, large)
		}
		if m.RxCost(1024, d) >= m.RxCost(8192, d) {
			t.Fatalf("RxCost not increasing in bits at %v m", d)
		}
	}
}

func TestHarvestingDefaults(t *testing.T) {
	var h HarvestingModel
	if got := h.EffectivePeriod(); got != DefaultHarvestPeriod {
		t.Errorf("EffectivePeriod = %v, want %v", got, DefaultHarvestPeriod)
	}
	if got, want := h.IncomePerPeriod(), DefaultChargeEfficiency*DefaultHarvestRate*DefaultHarvestPeriod.Seconds(); got != want {
		t.Errorf("IncomePerPeriod = %v, want %v", got, want)
	}
	if got := h.EffectiveSleepFraction(); got != DefaultSleepFraction {
		t.Errorf("EffectiveSleepFraction = %v, want %v", got, DefaultSleepFraction)
	}
	// Negative disables sleep; values at or above 1 clamp below 1.
	if got := (HarvestingModel{SleepFraction: -1}).EffectiveSleepFraction(); got != 0 {
		t.Errorf("negative SleepFraction → %v, want 0", got)
	}
	if got := (HarvestingModel{SleepFraction: 2}).EffectiveSleepFraction(); got < DefaultSleepFraction || got >= 1 {
		t.Errorf("oversized SleepFraction → %v, want in [%v, 1)", got, DefaultSleepFraction)
	}
	// A nil Base prices like the paper's constants.
	if tx := h.TxCost(DefaultPacketBits, 80); tx != DefaultTxCost {
		t.Errorf("nil-base TxCost = %v, want %v", tx, DefaultTxCost)
	}
	if rx := h.RxCost(DefaultPacketBits, 80); rx != DefaultRxCost {
		t.Errorf("nil-base RxCost = %v, want %v", rx, DefaultRxCost)
	}
	if tx, rx, ok := h.FlatCosts(DefaultPacketBits); !ok || tx != DefaultTxCost || rx != DefaultRxCost {
		t.Errorf("nil-base FlatCosts = %v, %v, %v", tx, rx, ok)
	}
	// A distance-dependent base disables flat reconciliation.
	if _, _, ok := (HarvestingModel{Base: DefaultRadioModel()}).FlatCosts(DefaultPacketBits); ok {
		t.Error("radio-based harvesting model claims flat costs")
	}
}

func TestSpecBuild(t *testing.T) {
	if m, err := (Spec{}).Build(); err != nil || m != nil {
		t.Fatalf("zero spec built %v, %v; want nil, nil", m, err)
	}
	m, err := Spec{Model: ModelPaper, TxJ: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pm, ok := m.(PaperModel); !ok || pm.TxJ != 3 || pm.RxJ != DefaultRxCost {
		t.Fatalf("paper spec built %#v", m)
	}
	m, err = Spec{Model: ModelRadio}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rm, ok := m.(RadioModel); !ok || rm != DefaultRadioModel() {
		t.Fatalf("radio spec built %#v", m)
	}
	m, err = Spec{Model: ModelHarvesting, Base: ModelPaper, PeriodS: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hm, ok := m.(HarvestingModel)
	if !ok || hm.Period != 5*time.Second {
		t.Fatalf("harvesting spec built %#v", m)
	}
	if _, isPaper := hm.Base.(PaperModel); !isPaper {
		t.Fatalf("harvesting base = %#v, want PaperModel", hm.Base)
	}
	// Harvesting defaults to the radio base: flat pricing would make the
	// wrapper pointless for lifetime studies.
	m, err = Spec{Model: ModelHarvesting}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, isRadio := m.(HarvestingModel).Base.(RadioModel); !isRadio {
		t.Fatalf("default harvesting base = %#v, want RadioModel", m.(HarvestingModel).Base)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Model: "nuclear"},
		{Model: ModelHarvesting, Base: "harvesting"},
		{TxJ: -1},
		{EElec: -1},
		{PacketBits: -1},
		{Model: ModelHarvesting, ChargeEfficiency: 1.5},
		{Model: ModelHarvesting, SleepFraction: 1},
		{Model: ModelHarvesting, HarvestRate: -0.1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("Build(%+v) accepted an invalid spec", s)
		}
	}
	good := []Spec{
		{},
		{Model: ModelPaper},
		{Model: ModelRadio, EMp: 1e-15},
		{Model: ModelHarvesting, Base: ModelRadio, SleepFraction: 0.5},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", s, err)
		}
	}
}

// TestMeterChargeAllocs guards the per-packet hot path: charging a meter
// must not allocate under any built-in model. The refer-bench meter_charge
// micro tracks the same property in the perf trajectory.
func TestMeterChargeAllocs(t *testing.T) {
	models := map[string]CostModel{
		"paper":               DefaultModel(),
		"radio":               DefaultRadioModel(),
		"harvesting":          HarvestingModel{Base: DefaultRadioModel()},
		"harvesting-nil-base": HarvestingModel{},
	}
	for name, model := range models {
		m := NewMeter(model, 1e9)
		avg := testing.AllocsPerRun(1000, func() {
			m.ChargeTx(Communication, DefaultPacketBits, 93)
			m.ChargeRx(Communication, DefaultPacketBits, 42)
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per Tx+Rx charge, want 0", name, avg)
		}
	}
}
