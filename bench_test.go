package refer

import (
	"testing"
	"time"

	"refer/internal/des"
	"refer/internal/energy"
	"refer/internal/experiment"
	"refer/internal/kautz"
	"refer/internal/world"
)

// quickOpts shrinks a figure sweep to one seed and short windows so the
// bench suite regenerates every figure's structure in seconds. Paper-scale
// numbers come from `refer-bench -full` (see EXPERIMENTS.md).
func quickOpts() Options {
	return Options{
		Seeds:    []int64{1},
		Warmup:   100 * time.Second,
		Duration: 150 * time.Second,
		Sensors:  150,
	}
}

func benchFigure(b *testing.B, build func(Options) (Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := build(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---- One benchmark per evaluation figure (Section IV) ----

// BenchmarkFig4MobilityThroughput regenerates Figure 4: QoS throughput vs
// node mobility for all four systems.
func BenchmarkFig4MobilityThroughput(b *testing.B) { benchFigure(b, Fig4) }

// BenchmarkFig5MobilityEnergy regenerates Figure 5: communication energy vs
// node mobility.
func BenchmarkFig5MobilityEnergy(b *testing.B) { benchFigure(b, Fig5) }

// BenchmarkFig6FaultDelay regenerates Figure 6: transmission delay vs
// number of faulty nodes.
func BenchmarkFig6FaultDelay(b *testing.B) { benchFigure(b, Fig6) }

// BenchmarkFig7FaultThroughput regenerates Figure 7: QoS throughput vs
// number of faulty nodes.
func BenchmarkFig7FaultThroughput(b *testing.B) { benchFigure(b, Fig7) }

// BenchmarkFig8ScaleDelay regenerates Figure 8: transmission delay vs
// network size.
func BenchmarkFig8ScaleDelay(b *testing.B) { benchFigure(b, Fig8) }

// BenchmarkFig9ScaleEnergy regenerates Figure 9: communication energy vs
// network size.
func BenchmarkFig9ScaleEnergy(b *testing.B) { benchFigure(b, Fig9) }

// BenchmarkFig10ConstructionEnergy regenerates Figure 10: topology
// construction energy vs network size.
func BenchmarkFig10ConstructionEnergy(b *testing.B) { benchFigure(b, Fig10) }

// BenchmarkFig11TotalEnergy regenerates Figure 11: total energy vs network
// size.
func BenchmarkFig11TotalEnergy(b *testing.B) { benchFigure(b, Fig11) }

// ---- Ablation benches (design-choice studies from DESIGN.md) ----

// BenchmarkAblationFailover compares REFER with and without the Theorem 3.8
// alternate-path failover under faults.
func BenchmarkAblationFailover(b *testing.B) {
	benchFigure(b, experiment.AblationFailover)
}

// BenchmarkAblationMaintenance compares REFER with and without the
// awake/wait/sleep maintenance under mobility.
func BenchmarkAblationMaintenance(b *testing.B) {
	benchFigure(b, experiment.AblationMaintenance)
}

// ---- Single-system end-to-end runs ----

func benchRun(b *testing.B, system string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			System:   system,
			Scenario: ScenarioParams{Seed: int64(i + 1), Sensors: 200, MaxSpeed: 3},
			Warmup:   100 * time.Second,
			Duration: 200 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered == 0 {
			b.Fatal("no deliveries")
		}
	}
}

// BenchmarkRunREFER simulates 300 s of the default scenario under REFER.
func BenchmarkRunREFER(b *testing.B) { benchRun(b, SystemREFER) }

// BenchmarkRunDaTree simulates 300 s of the default scenario under DaTree.
func BenchmarkRunDaTree(b *testing.B) { benchRun(b, SystemDaTree) }

// BenchmarkRunDDEAR simulates 300 s of the default scenario under D-DEAR.
func BenchmarkRunDDEAR(b *testing.B) { benchRun(b, SystemDDEAR) }

// BenchmarkRunKautzOverlay simulates 300 s under the Kautz overlay.
func BenchmarkRunKautzOverlay(b *testing.B) { benchRun(b, SystemKautzOverlay) }

// ---- Microbenchmarks of the primitives ----

// BenchmarkKautzRoutesK23 measures the per-forwarding-decision cost of the
// Theorem 3.8 route computation in the paper's cell graph K(2,3).
func BenchmarkKautzRoutesK23(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kautz.Routes(2, "021", "201"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKautzRoutesK44 measures the same on the paper's Figure 2 graph.
func BenchmarkKautzRoutesK44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kautz.Routes(4, "0123", "2301"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutesDirect measures the Theorem 3.8 route-set computation the
// forwarding hot path used before the precomputed table: script building,
// window walks and the length sort, on every call.
func BenchmarkRoutesDirect(b *testing.B) {
	g, err := kautz.New(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	nodes := g.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := nodes[i%len(nodes)]
		v := nodes[(i+5)%len(nodes)]
		if u == v {
			v = nodes[(i+6)%len(nodes)]
		}
		if _, err := kautz.Routes(2, u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutesTable measures the same lookups served by the shared
// precomputed RouteTable (copy-on-read slice header copy per call).
func BenchmarkRoutesTable(b *testing.B) {
	table, err := kautz.TableFor(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kautz.New(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	nodes := g.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := nodes[i%len(nodes)]
		v := nodes[(i+5)%len(nodes)]
		if u == v {
			v = nodes[(i+6)%len(nodes)]
		}
		if _, ok := table.Routes(u, v); !ok {
			b.Fatalf("table miss for %s -> %s", u, v)
		}
	}
}

// ---- End-to-end route-table delta (Fig. 4 under both route sources) ----

// benchFig4RouteSource regenerates Figure 4 restricted to one REFER variant,
// so `go test -bench 'Fig4Route'` reports the end-to-end saving of the
// precomputed route table against recomputing routes on every decision.
func benchFig4RouteSource(b *testing.B, system string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := quickOpts()
		opts.Systems = []string{system}
		fig, err := Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig4RouteTable runs the Figure 4 sweep with the precomputed
// route table (the default REFER configuration).
func BenchmarkFig4RouteTable(b *testing.B) {
	benchFig4RouteSource(b, SystemREFER)
}

// BenchmarkFig4RouteDirect runs the same sweep recomputing every route set
// from the IDs (the REFER/direct-routes ablation).
func BenchmarkFig4RouteDirect(b *testing.B) {
	benchFig4RouteSource(b, experiment.SystemREFERDirectRoutes)
}

// BenchmarkGreedyNext measures one greedy shortest-protocol hop decision.
func BenchmarkGreedyNext(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kautz.GreedyNext("12345", "34501"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphEnumerationK44 measures enumerating K(4,4) (320 nodes).
func BenchmarkGraphEnumerationK44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := kautz.New(4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHamiltonianCycleK25 measures the line-digraph Eulerian
// construction on K(2,5) (48 nodes).
func BenchmarkHamiltonianCycleK25(b *testing.B) {
	g, err := kautz.New(2, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.HamiltonianCycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinVertexCutK23 measures the Menger max-flow check used by the
// Lemma 3.1 tests.
func BenchmarkMinVertexCutK23(b *testing.B) {
	g, err := kautz.New(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.MinVertexCut("012", "201"); got != 2 {
			b.Fatalf("cut = %d", got)
		}
	}
}

// BenchmarkWorldSend measures one radio transmission through the simulator
// (scheduling, carrier sense, energy accounting).
func BenchmarkWorldSend(b *testing.B) {
	w := BuildWorld(ScenarioParams{Seed: 1, Sensors: 200})
	sensors := SensorIDs(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Send(sensors[i%100], sensors[(i+1)%100], energy.Communication, nil)
		if i%64 == 0 {
			w.Sched.Run()
		}
	}
}

// BenchmarkWorldFlood measures one TTL-4 flood over the default deployment.
func BenchmarkWorldFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := BuildWorld(ScenarioParams{Seed: int64(i), Sensors: 200})
		src := SensorIDs(w)[0]
		b.StartTimer()
		w.Flood(src, 4, energy.Communication, nil, nil)
		w.Sched.Run()
	}
}

// BenchmarkREFERBuild measures the full Kautz graph embedding protocol.
func BenchmarkREFERBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := BuildWorld(ScenarioParams{Seed: int64(i + 1), Sensors: 200})
		b.StartTimer()
		sys := NewREFER(w)
		if err := sys.Build(); err != nil {
			b.Fatal(err)
		}
		sys.StopMaintenance()
		w.Sched.Run()
	}
}

// benchREFERInject measures one end-to-end REFER delivery including all
// simulator work, optionally with a packet-trace recorder attached.
func benchREFERInject(b *testing.B, tracer *TraceRecorder) {
	b.Helper()
	w := BuildWorld(ScenarioParams{Seed: 1, Sensors: 200})
	w.SetTracer(tracer)
	sys := NewREFER(w)
	if err := sys.Build(); err != nil {
		b.Fatal(err)
	}
	sys.StopMaintenance()
	w.Sched.Run()
	srcs := make([]world.NodeID, 0, 4)
	for _, c := range sys.Cells() {
		srcs = append(srcs, c.NodeByKID["021"])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delivered := false
		sys.Inject(srcs[i%len(srcs)], func(ok bool) { delivered = ok })
		w.Sched.Run()
		if !delivered {
			b.Fatal("drop")
		}
	}
}

// BenchmarkREFERInject is the forwarding hot path with tracing disabled —
// the guard that the observability layer stays off this path (compare
// against BenchmarkREFERInjectTraced).
func BenchmarkREFERInject(b *testing.B) { benchREFERInject(b, nil) }

// BenchmarkREFERInjectTraced is the same delivery recording every packet's
// full event stream; the delta against BenchmarkREFERInject is the cost of
// opting in at sample rate 1.
func BenchmarkREFERInjectTraced(b *testing.B) { benchREFERInject(b, NewTraceRecorder(1)) }

// ---- Simulation hot-path microbenchmarks (allocation-free by contract) ----

// neighborTicker builds a mobile world and returns a step function that
// advances the virtual clock by one nanosecond (through a pooled DES event)
// and queries the neighbor sets of a rotating node — forcing the epoch
// cache to recompute from the spatial index on every step, exactly like the
// forwarding hot path does between events.
func neighborTicker(tb testing.TB, params ScenarioParams) func() {
	tb.Helper()
	w := BuildWorld(params)
	ids := SensorIDs(w)
	i := 0
	query := func() {
		id := ids[i%len(ids)]
		i++
		w.Neighbors(nil, id)
		w.AliveNeighbors(nil, id)
	}
	tick := func() {
		if _, err := w.Sched.After(time.Nanosecond, query); err != nil {
			tb.Fatal(err)
		}
		w.Sched.Step()
	}
	// Warm every node's cache, the reusable grid, and the event pool to
	// steady state so the measured loop sees no growth allocations.
	for k := 0; k < 4*len(ids); k++ {
		tick()
	}
	return tick
}

// BenchmarkNeighbors measures one clock-advancing neighbor-set query on the
// default mobile deployment — the dominating per-event cost of the radio
// model (carrier sense + broadcast targets).
func BenchmarkNeighbors(b *testing.B) {
	tick := neighborTicker(b, ScenarioParams{Seed: 1, Sensors: 200, MaxSpeed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
}

// TestNeighborsStayAllocFree pins BenchmarkNeighbors' steady state at zero
// allocations per step, so a regression fails tests rather than silently
// shifting the benchmark.
func TestNeighborsStayAllocFree(t *testing.T) {
	tick := neighborTicker(t, ScenarioParams{Seed: 1, Sensors: 200, MaxSpeed: 3})
	if avg := testing.AllocsPerRun(200, tick); avg != 0 {
		t.Fatalf("neighbor query allocated %.1f times per step, want 0", avg)
	}
}

// desChurn exercises one schedule/schedule/cancel/fire cycle — the event
// lifecycle of a protocol timer — against a scheduler whose event pool has
// reached steady state.
func desChurn(tb testing.TB) func() {
	tb.Helper()
	s := &des.Scheduler{}
	fn := func() {}
	churn := func() {
		h, err := s.After(time.Microsecond, fn)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := s.After(2*time.Microsecond, fn); err != nil {
			tb.Fatal(err)
		}
		h.Cancel()
		s.Step()
	}
	for k := 0; k < 64; k++ {
		churn()
	}
	return churn
}

// BenchmarkDESChurn measures the pooled 4-ary-heap scheduler on the
// schedule-heavy churn pattern protocol timers produce.
func BenchmarkDESChurn(b *testing.B) {
	churn := desChurn(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn()
	}
}

// TestDESChurnStaysAllocFree pins BenchmarkDESChurn's steady state at zero
// allocations per cycle.
func TestDESChurnStaysAllocFree(t *testing.T) {
	churn := desChurn(t)
	if avg := testing.AllocsPerRun(500, churn); avg != 0 {
		t.Fatalf("DES churn allocated %.1f times per cycle, want 0", avg)
	}
}
