package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunQuick smoke-tests the example end to end in -quick mode.
func TestRunQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(true, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "built 4 cells") {
		t.Fatalf("unexpected cell count:\n%s", out)
	}
	if !strings.Contains(out, "reached an actuator") {
		t.Fatalf("no delivery reported:\n%s", out)
	}
}
