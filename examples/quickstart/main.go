// Quickstart: build a REFER network on the paper's default deployment,
// inject a few sensed events, and print what happened.
//
// -quick runs a smaller deployment; the CI smoke test uses it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"refer"
)

func main() {
	quick := flag.Bool("quick", false, "smaller deployment for smoke testing")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, out io.Writer) error {
	// The paper's Section IV deployment: 5 actuators whose triangulation
	// yields 4 Kautz cells, plus 200 sensors deployed around them.
	sensors := 200
	if quick {
		sensors = 150
	}
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 42, Sensors: sensors})

	sys := refer.NewREFER(w)
	if err := sys.Build(); err != nil {
		return fmt.Errorf("building REFER: %w", err)
	}
	fmt.Fprintf(out, "built %d cells over %d nodes\n", len(sys.Cells()), w.Len())
	for _, c := range sys.Cells() {
		fmt.Fprintf(out, "  cell %d: centroid %v, corners %v\n", c.CID, c.Centroid, c.Corners)
	}

	// Inject one event from every cell's "021" overlay sensor and let the
	// Theorem 3.8 router carry it to a corner actuator. Events fire at
	// t = 2 s, once the embedding protocol's path-query airtime has
	// drained.
	delivered := 0
	if _, err := w.Sched.After(2*time.Second, func() {
		for _, c := range sys.Cells() {
			c := c
			src := c.NodeByKID["021"]
			createdAt := w.Now()
			sys.Inject(src, func(ok bool) {
				if ok {
					delivered++
					fmt.Fprintf(out, "  event from node %d (cell %d) reached an actuator after %v\n",
						src, c.CID, w.Now()-createdAt)
				}
			})
		}
	}); err != nil {
		return err
	}
	w.Sched.RunUntil(5 * time.Second)
	fmt.Fprintf(out, "%d/%d events delivered; stats: %+v\n", delivered, len(sys.Cells()), sys.Stats())
	if delivered == 0 {
		return fmt.Errorf("no event reached an actuator")
	}
	return nil
}
