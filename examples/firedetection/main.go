// Firedetection models the paper's motivating application: smoke detectors
// (sensors) densely deployed in a building report fire events to sprinklers
// (actuators). The demo starts a fire that spreads across the field, burns
// out detectors (node failures), and shows REFER's Theorem 3.8 failover
// keeping event delivery alive while detectors keep dying.
package main

import (
	"fmt"
	"log"
	"time"

	"refer"
)

const (
	fireStart  = 10 * time.Second
	spreadStep = 20 * time.Second // the fire radius grows every step
	spreadRate = 30.0             // meters per step
	runFor     = 300 * time.Second
)

func main() {
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 7, Sensors: 200})
	sys := refer.NewREFER(w)
	if err := sys.Build(); err != nil {
		log.Fatalf("building REFER: %v", err)
	}

	// The fire ignites at the center of cell 0.
	origin := sys.Cells()[0].Centroid
	radius := 0.0
	burned := make(map[refer.NodeID]bool)

	delivered, dropped := 0, 0

	// Every detector near the fire front raises an alarm; detectors inside
	// the front burn out and fail.
	var spread func()
	spread = func() {
		if w.Now() > runFor {
			return
		}
		radius += spreadRate
		alarms := 0
		for _, id := range refer.SensorIDs(w) {
			d := w.Position(id).Dist(origin)
			switch {
			case d < radius && !burned[id]:
				burned[id] = true
				w.SetFailed(id, true) // the detector is destroyed
			case d < radius+60 && !burned[id]:
				alarms++
				sys.Inject(id, func(ok bool) {
					if ok {
						delivered++
					} else {
						dropped++
					}
				})
			}
		}
		fmt.Printf("t=%4v fire radius %3.0f m, %3d detectors burned, %2d alarms raised\n",
			w.Now().Round(time.Second), radius, len(burned), alarms)
		if _, err := w.Sched.After(spreadStep, spread); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := w.Sched.After(fireStart, spread); err != nil {
		log.Fatal(err)
	}

	w.Sched.RunUntil(runFor + 5*time.Second)

	st := sys.Stats()
	fmt.Printf("\nalarms delivered to sprinklers: %d (dropped %d)\n", delivered, dropped)
	fmt.Printf("Theorem 3.8 failovers: %d, maintenance replacements: %d\n",
		st.FailoverSwitches, st.Replacements)
	if delivered == 0 {
		log.Fatal("no alarm reached an actuator — the sprinklers never fired")
	}
}
