// Firedetection models the paper's motivating application: smoke detectors
// (sensors) densely deployed in a building report fire events to sprinklers
// (actuators). The demo starts a fire that spreads across the field, burns
// out detectors (node failures), and shows REFER's Theorem 3.8 failover
// keeping event delivery alive while detectors keep dying.
//
// -quick runs a shorter fire on a smaller deployment; the CI smoke test
// uses it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"refer"
)

const (
	fireStart  = 10 * time.Second
	spreadStep = 20 * time.Second // the fire radius grows every step
	spreadRate = 30.0             // meters per step
)

func main() {
	quick := flag.Bool("quick", false, "shorter fire on a smaller deployment for smoke testing")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, out io.Writer) error {
	sensors, runFor := 200, 300*time.Second
	if quick {
		sensors, runFor = 150, 120*time.Second
	}
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 7, Sensors: sensors})
	sys := refer.NewREFER(w)
	if err := sys.Build(); err != nil {
		return fmt.Errorf("building REFER: %w", err)
	}

	// The fire ignites at the center of cell 0.
	origin := sys.Cells()[0].Centroid
	radius := 0.0
	burned := make(map[refer.NodeID]bool)

	delivered, dropped := 0, 0

	// Every detector near the fire front raises an alarm; detectors inside
	// the front burn out and fail.
	var scheduleErr error
	var spread func()
	spread = func() {
		if w.Now() > runFor {
			return
		}
		radius += spreadRate
		alarms := 0
		for _, id := range refer.SensorIDs(w) {
			d := w.Position(id).Dist(origin)
			switch {
			case d < radius && !burned[id]:
				burned[id] = true
				w.SetFailed(id, true) // the detector is destroyed
			case d < radius+60 && !burned[id]:
				alarms++
				sys.Inject(id, func(ok bool) {
					if ok {
						delivered++
					} else {
						dropped++
					}
				})
			}
		}
		fmt.Fprintf(out, "t=%4v fire radius %3.0f m, %3d detectors burned, %2d alarms raised\n",
			w.Now().Round(time.Second), radius, len(burned), alarms)
		if _, err := w.Sched.After(spreadStep, spread); err != nil {
			scheduleErr = err
		}
	}
	if _, err := w.Sched.After(fireStart, spread); err != nil {
		return err
	}

	w.Sched.RunUntil(runFor + 5*time.Second)
	if scheduleErr != nil {
		return scheduleErr
	}

	st := sys.Stats()
	fmt.Fprintf(out, "\nalarms delivered to sprinklers: %d (dropped %d)\n", delivered, dropped)
	fmt.Fprintf(out, "Theorem 3.8 failovers: %d, maintenance replacements: %d\n",
		st.FailoverSwitches, st.Replacements)
	if delivered == 0 {
		return fmt.Errorf("no alarm reached an actuator — the sprinklers never fired")
	}
	return nil
}
