package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunQuick smoke-tests the fire scenario end to end in -quick mode:
// the fire must burn detectors and the sprinklers must still fire.
func TestRunQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(true, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "detectors burned") {
		t.Fatalf("fire never spread:\n%s", out)
	}
	if !strings.Contains(out, "alarms delivered to sprinklers") {
		t.Fatalf("no delivery summary:\n%s", out)
	}
}
