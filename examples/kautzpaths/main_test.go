package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunQuick smoke-tests the worked examples in -quick mode.
func TestRunQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(true, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"greedy shortest", "Figure 2(a)", "failover at 0123"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFull covers the K(4,4) enumeration cross-check as well.
func TestRunFull(t *testing.T) {
	var buf bytes.Buffer
	if err := run(false, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "verified against the enumerated K(4,4) arc set") {
		t.Fatalf("cross-check not reported:\n%s", buf.String())
	}
}
