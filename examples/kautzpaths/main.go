// Kautzpaths walks through the paper's worked examples of the Kautz routing
// theory (Section III-C): the greedy shortest protocol, the four disjoint
// paths of Figure 2(a), and how a relay fails over when nodes die — all
// computed purely from node IDs.
package main

import (
	"fmt"
	"log"

	"refer"
)

func main() {
	// --- The greedy shortest protocol (Section III-C-1) ---
	u := mustID("12345")
	v := mustID("34501")
	fmt.Printf("greedy shortest %s → %s (distance %d):\n  %s", u, v, refer.KautzDistance(u, v), u)
	for cur := u; cur != v; {
		next, err := refer.GreedyNext(cur, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" → %s", next)
		cur = next
	}
	fmt.Println()

	// --- Figure 2(a): the four disjoint paths of K(4,4) ---
	fmt.Println("\nFigure 2(a): 0123 → 2301 in K(4,4)")
	routes, err := refer.Routes(4, "0123", "2301")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range routes {
		fmt.Printf("  %-8s out-digit %d, length %d: %v\n", r.Class, r.OutDigit, r.Len(), r.Path)
	}

	// --- Failover: what a relay does when its best successor dies ---
	fmt.Println("\nfailover at 0123 if 1230 (shortest) is down:")
	for _, r := range routes {
		if r.Successor == "1230" {
			continue // skip the dead successor
		}
		fmt.Printf("  next candidate %s (length %d)\n", r.Successor, r.Len())
		break
	}

	// --- Theorem 3.8 is ID-only: no graph state was consulted above. ---
	// Verify against the enumerated graph anyway:
	g, err := refer.NewGraph(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range routes {
		for i := 0; i+1 < len(r.Path); i++ {
			if !g.HasArc(r.Path[i], r.Path[i+1]) {
				log.Fatalf("path %v uses a non-arc", r.Path)
			}
		}
	}
	fmt.Println("\nall paths verified against the enumerated K(4,4) arc set")
}

func mustID(s string) refer.ID {
	id, err := refer.ParseID(s)
	if err != nil {
		log.Fatal(err)
	}
	return id
}
