// Kautzpaths walks through the paper's worked examples of the Kautz routing
// theory (Section III-C): the greedy shortest protocol, the four disjoint
// paths of Figure 2(a), and how a relay fails over when nodes die — all
// computed purely from node IDs.
//
// -quick skips the K(4,4) graph enumeration cross-check; the CI smoke test
// uses it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"refer"
)

func main() {
	quick := flag.Bool("quick", false, "skip the graph-enumeration cross-check")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, out io.Writer) error {
	// --- The greedy shortest protocol (Section III-C-1) ---
	u, err := refer.ParseID("12345")
	if err != nil {
		return err
	}
	v, err := refer.ParseID("34501")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "greedy shortest %s → %s (distance %d):\n  %s", u, v, refer.KautzDistance(u, v), u)
	for cur := u; cur != v; {
		next, err := refer.GreedyNext(cur, v)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, " → %s", next)
		cur = next
	}
	fmt.Fprintln(out)

	// --- Figure 2(a): the four disjoint paths of K(4,4) ---
	fmt.Fprintln(out, "\nFigure 2(a): 0123 → 2301 in K(4,4)")
	routes, err := refer.Routes(4, "0123", "2301")
	if err != nil {
		return err
	}
	for _, r := range routes {
		fmt.Fprintf(out, "  %-8s out-digit %d, length %d: %v\n", r.Class, r.OutDigit, r.Len(), r.Path)
	}

	// --- Failover: what a relay does when its best successor dies ---
	fmt.Fprintln(out, "\nfailover at 0123 if 1230 (shortest) is down:")
	for _, r := range routes {
		if r.Successor == "1230" {
			continue // skip the dead successor
		}
		fmt.Fprintf(out, "  next candidate %s (length %d)\n", r.Successor, r.Len())
		break
	}

	// --- Theorem 3.8 is ID-only: no graph state was consulted above. ---
	// Verify against the enumerated graph anyway (skipped with -quick: the
	// enumeration dwarfs everything else here).
	if quick {
		return nil
	}
	g, err := refer.NewGraph(4, 4)
	if err != nil {
		return err
	}
	for _, r := range routes {
		for i := 0; i+1 < len(r.Path); i++ {
			if !g.HasArc(r.Path[i], r.Path[i+1]) {
				return fmt.Errorf("path %v uses a non-arc", r.Path)
			}
		}
	}
	fmt.Fprintln(out, "\nall paths verified against the enumerated K(4,4) arc set")
	return nil
}
