// Battlefield models the paper's second motivating application: mobile
// sensors densely deployed in a field report detected intruders to nearby
// actuators that intercept them. The demo compares REFER against the
// DaTree baseline under increasing node mobility — a miniature of the
// paper's Figure 4 — using the public API only.
package main

import (
	"fmt"
	"log"
	"time"

	"refer"
)

func main() {
	fmt.Println("intruder reports delivered within the 0.6 s deadline (pkt/s):")
	fmt.Printf("%-12s %-10s %-10s\n", "mean speed", "REFER", "DaTree")
	for _, maxSpeed := range []float64{1, 3, 5} {
		row := make(map[string]float64, 2)
		for _, system := range []string{refer.SystemREFER, refer.SystemDaTree} {
			res, err := refer.Run(refer.RunConfig{
				System:   system,
				Scenario: refer.ScenarioParams{Seed: 11, Sensors: 200, MaxSpeed: maxSpeed},
				Warmup:   50 * time.Second,
				Duration: 200 * time.Second,
			})
			if err != nil {
				log.Fatalf("%s at speed %v: %v", system, maxSpeed, err)
			}
			row[system] = res.Throughput
		}
		fmt.Printf("%-12.1f %-10.2f %-10.2f\n", maxSpeed/2, row[refer.SystemREFER], row[refer.SystemDaTree])
	}
	fmt.Println("\nhigher mobility barely affects REFER (topology-consistent cells +")
	fmt.Println("ID-only failover) while the tree baseline pays broadcast repairs.")
}
