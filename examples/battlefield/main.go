// Battlefield models the paper's second motivating application: mobile
// sensors densely deployed in a field report detected intruders to nearby
// actuators that intercept them. The demo compares REFER against the
// DaTree baseline under increasing node mobility — a miniature of the
// paper's Figure 4 — using the public API only.
//
// -quick runs one mobility point with shorter windows; the CI smoke test
// uses it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"refer"
)

func main() {
	quick := flag.Bool("quick", false, "one mobility point with short windows for smoke testing")
	flag.Parse()
	if err := run(*quick, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool, out io.Writer) error {
	speeds := []float64{1, 3, 5}
	sensors := 200
	warmup, duration := 50*time.Second, 200*time.Second
	if quick {
		speeds = []float64{3}
		sensors = 150
		warmup, duration = 20*time.Second, 60*time.Second
	}
	fmt.Fprintln(out, "intruder reports delivered within the 0.6 s deadline (pkt/s):")
	fmt.Fprintf(out, "%-12s %-10s %-10s\n", "mean speed", "REFER", "DaTree")
	for _, maxSpeed := range speeds {
		row := make(map[string]float64, 2)
		for _, system := range []string{refer.SystemREFER, refer.SystemDaTree} {
			res, err := refer.Run(refer.RunConfig{
				System:   system,
				Scenario: refer.ScenarioParams{Seed: 11, Sensors: sensors, MaxSpeed: maxSpeed},
				Warmup:   warmup,
				Duration: duration,
			})
			if err != nil {
				return fmt.Errorf("%s at speed %v: %w", system, maxSpeed, err)
			}
			row[system] = res.Throughput
		}
		fmt.Fprintf(out, "%-12.1f %-10.2f %-10.2f\n", maxSpeed/2, row[refer.SystemREFER], row[refer.SystemDaTree])
	}
	fmt.Fprintln(out, "\nhigher mobility barely affects REFER (topology-consistent cells +")
	fmt.Fprintln(out, "ID-only failover) while the tree baseline pays broadcast repairs.")
	return nil
}
