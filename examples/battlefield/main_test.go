package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunQuick smoke-tests the REFER-vs-DaTree comparison in -quick mode.
func TestRunQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(true, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REFER") || !strings.Contains(out, "DaTree") {
		t.Fatalf("comparison table missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("no data rows:\n%s", out)
	}
}
