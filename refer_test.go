package refer

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the facade end-to-end the way the
// README's quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	w := BuildWorld(ScenarioParams{Seed: 1, Sensors: 200})
	sys := NewREFER(w)
	if err := sys.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	delivered := 0
	for _, src := range SensorIDs(w)[:10] {
		sys.Inject(src, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	w.Sched.RunUntil(10 * time.Second)
	if delivered < 8 {
		t.Fatalf("delivered %d/10", delivered)
	}
}

func TestPublicAPIKautzTheory(t *testing.T) {
	g, err := NewGraph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("K(2,3) N = %d", g.N())
	}
	u, err := ParseID("012")
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseID("201")
	if err != nil {
		t.Fatal(err)
	}
	routes, err := Routes(2, u, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(routes))
	}
	if routes[0].Class != ClassShortest {
		t.Fatalf("first route class = %v", routes[0].Class)
	}
	if routes[0].Len() != KautzDistance(u, v) {
		t.Fatalf("shortest len %d != distance %d", routes[0].Len(), KautzDistance(u, v))
	}
	next, err := GreedyNext(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if next != routes[0].Path[1] {
		t.Fatalf("GreedyNext %s != shortest path hop %s", next, routes[0].Path[1])
	}
}

func TestPublicAPIAllSystemsRun(t *testing.T) {
	for _, name := range AllSystems() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(RunConfig{
				System:   name,
				Scenario: ScenarioParams{Seed: 2, Sensors: 150, MaxSpeed: 1},
				Warmup:   20 * time.Second,
				Duration: 60 * time.Second,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Created == 0 {
				t.Fatal("no traffic generated")
			}
			if res.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
			if res.CommEnergy <= 0 || res.ConstructionEnergy <= 0 {
				t.Fatalf("energy not recorded: %+v", res)
			}
			if res.TotalEnergy() != res.CommEnergy+res.ConstructionEnergy {
				t.Fatal("TotalEnergy mismatch")
			}
		})
	}
}

func TestPublicAPIUnknownSystem(t *testing.T) {
	w := BuildWorld(ScenarioParams{Seed: 3, Sensors: 10})
	if _, err := NewSystem("nope", w); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestPublicAPIFigureSmoke(t *testing.T) {
	// A tiny Fig4 run through the facade: single seed, short window, two
	// systems, two mobility points would still sweep all five — so use the
	// smallest meaningful configuration and only sanity-check structure.
	fig, err := Fig4(Options{
		Seeds:    []int64{1},
		Warmup:   10 * time.Second,
		Duration: 40 * time.Second,
		Systems:  []string{SystemREFER, SystemDaTree},
		Sensors:  120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4" || len(fig.Series) != 2 {
		t.Fatalf("figure = %+v", fig)
	}
	for _, s := range fig.Series {
		if len(s.Points) != 5 {
			t.Fatalf("series %s has %d points", s.System, len(s.Points))
		}
	}
	if fig.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestPublicAPIREFERAddressing(t *testing.T) {
	w := BuildWorld(ScenarioParams{Seed: 4, Sensors: 200})
	sys := NewREFER(w)
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	cells := sys.Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	addr, ok := sys.AddressOf(cells[0].Corners[0])
	if !ok {
		t.Fatal("corner has no address")
	}
	var delivered *bool
	src := cells[0].NodeByKID["010"]
	sys.SendTo(src, Address{CID: addr.CID, KID: addr.KID}, func(ok bool) { delivered = &ok })
	sys.StopMaintenance()
	w.Sched.Run()
	if delivered == nil || !*delivered {
		t.Fatal("SendTo through the facade failed")
	}
}
