// Command refer-simd serves the REFER simulation stack as a long-lived
// HTTP/JSON daemon: clients submit run configurations (or registered figure
// builds), poll or stream status, fetch results and cancel runs. See
// EXPERIMENTS.md for the API schema and DESIGN.md §9 for the architecture.
//
// Usage:
//
//	refer-simd [-addr :8080] [-workers N] [-queue N] [-cache N]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests drain, queued and running simulations are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"refer/internal/simd"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulation executions (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "pending-run queue depth; a full queue rejects with 429")
		cache   = flag.Int("cache", 512, "content-addressed result cache entries")
		retain  = flag.Int("retain", 16384, "terminal run records kept for status queries")
		figPar  = flag.Int("figure-parallel", 1, "default sweep parallelism for figure builds")
		quiet   = flag.Bool("quiet", false, "suppress per-run log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "refer-simd: ", log.LstdFlags)
	srvLog := logger
	if *quiet {
		srvLog = nil
	}
	core := simd.New(simd.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		RetainRuns:        *retain,
		FigureParallelism: *figPar,
		Log:               srvLog,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: core}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	logger.Printf("listening on %s (%d workers, queue %d, cache %d)",
		*addr, effWorkers, *queue, *cache)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	core.Close()
	logger.Printf("bye")
}
