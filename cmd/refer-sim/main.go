// Command refer-sim runs one WSAN simulation and prints its measurements.
//
// Usage:
//
//	refer-sim -system REFER -sensors 200 -speed 3 -faults 0 -duration 1000s
//
// The defaults reproduce one cell of the paper's default scenario
// (Section IV): 5 actuators and 200 sensors on a 500 m × 500 m field,
// bursty traffic to nearby actuators, 0.6 s QoS deadline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"refer"
)

func main() {
	var (
		system   = flag.String("system", refer.SystemREFER, "system under test: REFER, DaTree, D-DEAR or Kautz-overlay")
		sensors  = flag.Int("sensors", 200, "sensor population")
		speed    = flag.Float64("speed", 3, "max node speed in m/s (uniform in [0,speed])")
		faults   = flag.Int("faults", 0, "faulty sensors at any time (rotated every 10 s)")
		seed     = flag.Int64("seed", 1, "random seed")
		warmup   = flag.Duration("warmup", 100*time.Second, "warm-up before measurement")
		duration = flag.Duration("duration", 1000*time.Second, "measurement window")
	)
	flag.Parse()

	res, err := refer.Run(refer.RunConfig{
		System:     *system,
		Scenario:   refer.ScenarioParams{Seed: *seed, Sensors: *sensors, MaxSpeed: *speed},
		Warmup:     *warmup,
		Duration:   *duration,
		FaultCount: *faults,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "refer-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("system                 %s\n", res.System)
	fmt.Printf("QoS throughput         %.3f pkt/s\n", res.Throughput)
	fmt.Printf("mean QoS delay         %v\n", res.MeanQoSDelay.Round(100*time.Microsecond))
	fmt.Printf("mean delay (all)       %v\n", res.MeanDelay.Round(100*time.Microsecond))
	fmt.Printf("communication energy   %.0f J\n", res.CommEnergy)
	fmt.Printf("construction energy    %.0f J\n", res.ConstructionEnergy)
	fmt.Printf("packets                created %d, delivered %d, QoS %d, dropped %d\n",
		res.Created, res.Delivered, res.QoS, res.Dropped)
}
