// Command kautz-explore prints the Theorem 3.8 routing structure between
// two nodes of a Kautz graph: the d disjoint paths, their classes, nominal
// and concrete lengths — the computation a REFER relay performs on every
// forwarding decision.
//
// Usage:
//
//	kautz-explore -d 4 -u 0123 -v 2301      # the paper's Figure 2(a)
//	kautz-explore -d 2 -k 3                 # enumerate K(2,3) and its arcs
package main

import (
	"flag"
	"fmt"
	"os"

	"refer"
)

func main() {
	var (
		d = flag.Int("d", 4, "Kautz degree")
		k = flag.Int("k", 0, "diameter (only for graph enumeration; inferred from -u otherwise)")
		u = flag.String("u", "", "source Kautz ID")
		v = flag.String("v", "", "destination Kautz ID")
	)
	flag.Parse()

	if *u == "" || *v == "" {
		kk := *k
		if kk == 0 {
			kk = 3
		}
		g, err := refer.NewGraph(*d, kk)
		if err != nil {
			fail(err)
		}
		fmt.Printf("K(%d,%d): %d nodes, diameter %d\n", *d, kk, g.N(), g.Diameter())
		for _, node := range g.Nodes() {
			fmt.Printf("  %s → %v\n", node, g.Successors(node))
		}
		return
	}

	src, err := refer.ParseID(*u)
	if err != nil {
		fail(err)
	}
	dst, err := refer.ParseID(*v)
	if err != nil {
		fail(err)
	}
	routes, err := refer.Routes(*d, src, dst)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s → %s in K(%d,%d): distance %d, %d disjoint paths\n",
		src, dst, *d, len(src), refer.KautzDistance(src, dst), len(routes))
	for i, r := range routes {
		fmt.Printf("%d. via %s  [%s, out-digit %d, nominal %d, actual %d]\n   %v\n",
			i+1, r.Successor, r.Class, r.OutDigit, r.NominalLen, r.Len(), r.Path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kautz-explore:", err)
	os.Exit(1)
}
