package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"refer"
	"refer/internal/des"
	"refer/internal/energy"
	"refer/internal/kautz"
	"refer/internal/recovery"
	"refer/internal/simd"
	"refer/internal/world"
)

// The -bench mode is the repo's perf trajectory: a fixed micro+macro suite
// whose results are appended to the tree as BENCH_<n>.json files, one per
// measurement session, so optimization work leaves a comparable record
// (schema documented in EXPERIMENTS.md). The suite is deliberately small —
// eight microbenchmarks over the simulation hot paths plus six macros (the
// Figure 4 sweep, the network-growth study, a refer-simd serving-load storm,
// the sharded-maintenance shard-count sweep, the batched-drain worker-count
// sweep, and the recovery-campaign sweep) — so CI can afford to run it on
// every change.

// benchSchema names the BENCH file layout; bump on incompatible change.
const benchSchema = "refer-bench/1"

// benchMicro is one testing.Benchmark result.
type benchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchMacro is one end-to-end sweep result. Extra carries
// macro-specific gauges (e.g. simd_load's cache hit rate).
type benchMacro struct {
	Name         string             `json:"name"`
	WallSeconds  float64            `json:"wall_seconds"`
	Runs         int                `json:"runs"`
	EventsPerSec float64            `json:"events_per_sec"`
	Extra        map[string]float64 `json:"extra,omitempty"`
}

// benchReport is the BENCH_<n>.json document.
type benchReport struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_utc"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Parallelism is the effective sweep concurrency the macros ran at
	// (the -parallel flag, defaulted to GOMAXPROCS).
	Parallelism int                `json:"parallelism"`
	Micro       []benchMicro       `json:"micro"`
	Macro       []benchMacro       `json:"macro"`
	Baseline    map[string]float64 `json:"baseline,omitempty"`
	Notes       string             `json:"notes,omitempty"`
}

func microResult(name string, r testing.BenchmarkResult) benchMicro {
	return benchMicro{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// benchRouteTable measures one precomputed Theorem 3.8 route-set lookup.
func benchRouteTable() (benchMicro, error) {
	table, err := kautz.TableFor(2, 3)
	if err != nil {
		return benchMicro{}, err
	}
	g, err := kautz.New(2, 3)
	if err != nil {
		return benchMicro{}, err
	}
	nodes := g.Nodes()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u := nodes[i%len(nodes)]
			v := nodes[(i+5)%len(nodes)]
			if u == v {
				v = nodes[(i+6)%len(nodes)]
			}
			if _, ok := table.Routes(u, v); !ok {
				b.Fatalf("table miss %s -> %s", u, v)
			}
		}
	})
	return microResult("route_table_lookup", r), nil
}

// benchNeighbors measures one clock-advancing neighbor-set query on the
// default mobile deployment — the per-event cost of the radio model. Each
// step moves the virtual clock one nanosecond through a pooled DES event so
// the epoch cache must recompute from the spatial index, exactly like the
// forwarding hot path between events.
func benchNeighbors() benchMicro {
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 1, Sensors: 200, MaxSpeed: 3})
	ids := refer.SensorIDs(w)
	i := 0
	query := func() {
		id := ids[i%len(ids)]
		i++
		w.Neighbors(nil, id)
		w.AliveNeighbors(nil, id)
	}
	tick := func() {
		if _, err := w.Sched.After(time.Nanosecond, query); err != nil {
			panic(err)
		}
		w.Sched.Step()
	}
	for k := 0; k < 4*len(ids); k++ {
		tick() // reach allocation steady state before measuring
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			tick()
		}
	})
	return microResult("neighbors_query", r)
}

// benchDESChurn measures one schedule/schedule/cancel/fire cycle on the
// pooled 4-ary-heap scheduler — the event lifecycle of a protocol timer.
func benchDESChurn() benchMicro {
	s := &des.Scheduler{}
	fn := func() {}
	churn := func() {
		h, err := s.After(time.Microsecond, fn)
		if err != nil {
			panic(err)
		}
		if _, err := s.After(2*time.Microsecond, fn); err != nil {
			panic(err)
		}
		h.Cancel()
		s.Step()
	}
	for k := 0; k < 64; k++ {
		churn()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			churn()
		}
	})
	return microResult("des_churn", r)
}

// benchMaintain measures one topology-maintenance round over a 5,000-sensor,
// 98-cell lattice deployment (the scale study's mid-size point), advancing
// the virtual clock one ProbeInterval between rounds so mobility actually
// re-homes sensors. linear=true runs the pre-index scans (DisableCellIndex);
// the two entries' ratio is the cell index's per-round saving.
func benchMaintain(linear bool) (benchMicro, error) {
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 1, Sensors: 5000, MaxSpeed: 1, ActuatorGrid: 8})
	cfg := refer.REFERConfig{DisableMaintenance: true, DisableCellIndex: linear}
	sys := refer.NewREFERWithConfig(w, cfg)
	if err := sys.Build(); err != nil {
		return benchMicro{}, err
	}
	round := func() {
		if _, err := w.Sched.After(5*time.Second, func() {}); err != nil {
			panic(err)
		}
		w.Sched.Step()
		sys.MaintainOnce()
	}
	for k := 0; k < 8; k++ {
		round() // reach steady state before measuring
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			round()
		}
	})
	name := "maintain_once"
	if linear {
		name = "maintain_once_linear"
	}
	return microResult(name, r), nil
}

// benchDrainOnce measures one tagged schedule/fire cycle on the serial
// drain path (drain parallelism 1) — the overhead AtTagged adds to the
// classic event lifecycle when batching is off. Producers tag their radio
// events unconditionally, so this path must stay allocation-free; the suite
// fails rather than record a regression of that contract
// (TestDrainSerialZeroAlloc pins the same property).
func benchDrainOnce() (benchMicro, error) {
	s := &des.Scheduler{}
	s.SetDrainParallelism(1)
	fn := func() {}
	prep := func(int, time.Duration, des.Claims, int32, int32) {}
	claims := des.Claims{1, 2}
	churn := func() {
		at := s.Now() + time.Microsecond
		if _, err := s.AtTagged(at, claims, prep, 7, -1, fn); err != nil {
			panic(err)
		}
		s.RunUntil(at)
	}
	for k := 0; k < 64; k++ {
		churn()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			churn()
		}
	})
	m := microResult("drain_once", r)
	if m.AllocsPerOp != 0 {
		return benchMicro{}, fmt.Errorf("drain_once: serial drain path allocates (%d allocs/op, %d B/op); the zero-alloc contract is broken", m.AllocsPerOp, m.BytesPerOp)
	}
	return m, nil
}

// benchMeterCharge measures one Tx+Rx charge pair on a battery-constrained
// energy meter priced by the distance-dependent radio model — the per-packet
// cost of the pluggable energy layer, which sits on the radio hot path and
// must stay allocation-free.
func benchMeterCharge() benchMicro {
	m := energy.NewMeter(energy.DefaultRadioModel(), 1e9)
	dists := [...]float64{12, 45, 87, 95, 100}
	i := 0
	charge := func() {
		d := dists[i%len(dists)]
		i++
		m.ChargeTx(energy.Communication, energy.DefaultPacketBits, d)
		m.ChargeRx(energy.Communication, energy.DefaultPacketBits, d)
	}
	for k := 0; k < 64; k++ {
		charge()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			charge()
		}
	})
	return microResult("meter_charge", r)
}

// benchRecoverOnce measures one detect→re-elect repair cycle on the 3×3
// recovery lattice: kill the current holder of a Kautz corner, run a grace-0
// recovery sweep (which scans every cell, confirms the failure and promotes
// the best surviving actuator), then revive the previous holder so the next
// iteration ping-pongs the corner back. The number is the full cost of one
// self-healing round — the price a deployment pays per permanent actuator
// loss, excluding the detection wait (virtual time is free in the DES).
func benchRecoverOnce() (benchMicro, error) {
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 1, Sensors: 400, MaxSpeed: 1, ActuatorGrid: 3})
	sys := refer.NewREFERWithConfig(w, refer.REFERConfig{DisableMaintenance: true})
	if err := sys.Build(); err != nil {
		return benchMicro{}, err
	}
	// Find a corner actuator: kill candidates in ID order until a sweep
	// repairs something, seeding the ping-pong with the promoted successor.
	victim := world.NoNode
	for _, n := range w.Nodes() {
		if n.Kind != world.Actuator {
			continue
		}
		w.SetFailed(n.ID, true)
		actions := sys.RecoverSweep(0)
		w.SetFailed(n.ID, false)
		if len(actions) > 0 && actions[0].Kind == recovery.Reelect {
			victim = actions[0].NewCorner
			break
		}
	}
	if victim == world.NoNode {
		return benchMicro{}, fmt.Errorf("recover_once: no repairable corner on the lattice")
	}
	cycle := func() {
		w.SetFailed(victim, true)
		actions := sys.RecoverSweep(0)
		w.SetFailed(victim, false)
		next := world.NoNode
		for _, a := range actions {
			if a.Kind == recovery.Reelect {
				next = a.NewCorner
				break
			}
		}
		if next == world.NoNode {
			panic(fmt.Sprintf("recover_once: sweep did not re-elect after killing %d: %+v", victim, actions))
		}
		victim = next
	}
	for k := 0; k < 8; k++ {
		cycle() // reach steady state before measuring
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			cycle()
		}
	})
	return microResult("recover_once", r), nil
}

// benchFig4Quick runs the Figure 4 mobility sweep at quick scale (one seed,
// short windows) and reports its wall time — the suite's end-to-end number.
func benchFig4Quick(parallelism int) (benchMacro, error) {
	fig, err := refer.Fig4(refer.Options{
		Seeds:       []int64{1},
		Warmup:      100 * time.Second,
		Duration:    150 * time.Second,
		Sensors:     150,
		Parallelism: parallelism,
	})
	if err != nil {
		return benchMacro{}, err
	}
	return benchMacro{
		Name:         "fig4_quick",
		WallSeconds:  fig.Stats.WallClock.Seconds(),
		Runs:         fig.Stats.Runs,
		EventsPerSec: fig.Stats.EventsPerSec,
	}, nil
}

// benchScaleQuick runs the network-growth delivery sweep (Figure S1: REFER
// vs its linear-scan ablation at 1,000–10,000 sensors) at quick scale. The
// 10,000-node points are the suite's largest end-to-end runs.
func benchScaleQuick(parallelism int) (benchMacro, error) {
	fig, err := refer.FigS1(refer.Options{
		Seeds:       []int64{1},
		Warmup:      5 * time.Second,
		Duration:    20 * time.Second,
		Parallelism: parallelism,
	})
	if err != nil {
		return benchMacro{}, err
	}
	return benchMacro{
		Name:         "scale_quick",
		WallSeconds:  fig.Stats.WallClock.Seconds(),
		Runs:         fig.Stats.Runs,
		EventsPerSec: fig.Stats.EventsPerSec,
	}, nil
}

// benchSimdLoad boots an in-process refer-simd server and storms it over
// real HTTP: simdSubmissions short-run submissions across simdDistinct
// distinct configs from simdClients concurrent clients. Exactly one
// simulation executes per distinct config; every other submission is served
// by the in-flight dedup or the result cache, so the macro measures the
// serving layer (queueing, canonicalization, caching), not the simulator.
// Extra gauges record the cache behavior alongside the throughput numbers.
func benchSimdLoad(parallelism int) (benchMacro, error) {
	const (
		simdDistinct    = 16
		simdSubmissions = 1200
		simdClients     = 48
	)
	srv := simd.New(simd.Config{Workers: parallelism, QueueDepth: 256})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	transport := &http.Transport{MaxIdleConnsPerHost: simdClients}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	// The same cheap-but-buildable config shape the simd tests use: sparse
	// deployments can fail REFER core embedding, 140 sensors builds for
	// every seed in 1..16.
	body := func(seed int) []byte {
		return []byte(fmt.Sprintf(
			`{"seed":%d,"sensors":140,"warmup_s":1,"duration_s":3,"sources":2,"packets_per_source":2}`,
			seed))
	}

	start := time.Now()
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	sem := make(chan struct{}, simdClients)
	for i := 0; i < simdSubmissions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := client.Post(ts.URL+"/runs", "application/json",
				bytes.NewReader(body(1+i%simdDistinct)))
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errOnce.Do(func() {
					firstErr = fmt.Errorf("simd_load: submission %d: HTTP %d", i, resp.StatusCode)
				})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return benchMacro{}, firstErr
	}
	// Drain: dedup guarantees exactly one execution per distinct config.
	for {
		m := srv.MetricsSnapshot()
		if m.Failed > 0 {
			return benchMacro{}, fmt.Errorf("simd_load: %d runs failed", m.Failed)
		}
		if m.Completed == simdDistinct {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wall := time.Since(start).Seconds()
	m := srv.MetricsSnapshot()
	eps := 0.0
	if wall > 0 {
		eps = float64(m.DESEvents) / wall
	}
	return benchMacro{
		Name:         "simd_load",
		WallSeconds:  wall,
		Runs:         int(m.Completed),
		EventsPerSec: eps,
		Extra: map[string]float64{
			"submissions":    simdSubmissions,
			"cache_hit_rate": m.CacheHitRate,
			"cache_hits":     float64(m.CacheHits),
			"deduped":        float64(m.Deduped),
			"rejected":       float64(m.Rejected),
		},
	}, nil
}

// benchMaintainParallel times one maintenance round (membership re-homing +
// per-cell upkeep) over the 10,000-sensor scale point at shard counts 1, 4
// and 8 — the intra-run sharding of shard.go. The decisions are byte-
// identical at every shard count (TestRunParallelismInvariance pins that);
// this macro records what the sharding buys in wall time. Speedups are
// relative to the 1-shard round and only materialize on multi-core hosts,
// so read them against the report's cpus field.
func benchMaintainParallel() (benchMacro, error) {
	w := refer.BuildWorld(refer.ScenarioParams{Seed: 1, Sensors: 10000, MaxSpeed: 1, ActuatorGrid: 11})
	sys := refer.NewREFERWithConfig(w, refer.REFERConfig{DisableMaintenance: true})
	if err := sys.Build(); err != nil {
		return benchMacro{}, err
	}
	round := func() {
		if _, err := w.Sched.After(5*time.Second, func() {}); err != nil {
			panic(err)
		}
		w.Sched.Step()
		sys.MaintainOnce()
	}
	for k := 0; k < 8; k++ {
		round() // reach steady state before measuring
	}
	start := time.Now()
	extra := map[string]float64{"sensors": 10000}
	rounds := 0
	nsPerRound := map[int]float64{}
	for _, shards := range []int{1, 4, 8} {
		sys.SetRunParallelism(shards)
		round() // let the new shard plan's scratch reach steady state
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				round()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		nsPerRound[shards] = ns
		extra[fmt.Sprintf("ns_per_round_shards_%d", shards)] = ns
		rounds += r.N
	}
	for _, shards := range []int{4, 8} {
		if ns := nsPerRound[shards]; ns > 0 {
			extra[fmt.Sprintf("speedup_shards_%d", shards)] = nsPerRound[1] / ns
		}
	}
	return benchMacro{
		Name:        "maintain_parallel",
		WallSeconds: time.Since(start).Seconds(),
		Runs:        rounds,
		Extra:       extra,
	}, nil
}

// benchDrainParallel runs the S5 heavy-traffic frontier point (20,000
// mobile sensors, dense per-second bursts from 64 sources) at DES drain
// worker counts 1, 2, 4 and 8 — the intra-run event batching of
// internal/des/drain.go. Results are byte-identical at every worker count
// (asserted here after stripping host timing, and pinned by
// TestDrainParallelismInvariance); the macro records what the parallel
// prepares buy in whole-run wall time. The batch warms only the
// neighbor-cache share of each event (the serial commit keeps RNG, energy
// and radio mutation), so speedups are bounded well below the worker count
// — see DESIGN.md §13 for the Amdahl accounting — and only materialize on
// multi-core hosts; read them against the report's cpus field.
func benchDrainParallel() (benchMacro, error) {
	base := refer.RunConfig{
		Sources:       64,
		BurstInterval: time.Second,
		Warmup:        5 * time.Second,
		Duration:      20 * time.Second,
		Scenario: refer.ScenarioParams{
			Seed:         1,
			Sensors:      20000,
			MaxSpeed:     5,
			ActuatorGrid: 15,
		},
	}
	// Prime process-level caches (the shared Theorem 3.8 route table) with a
	// short run so the first timed setting is not charged for their build.
	prime := base
	prime.Warmup, prime.Duration = time.Second, 2*time.Second
	if _, err := refer.Run(prime); err != nil {
		return benchMacro{}, err
	}
	start := time.Now()
	extra := map[string]float64{"sensors": float64(base.Scenario.Sensors)}
	wallBy := map[int]float64{}
	var canonical []byte
	var eps float64
	runs := 0
	for _, dp := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.DrainParallelism = dp
		t0 := time.Now()
		res, err := refer.Run(cfg)
		if err != nil {
			return benchMacro{}, err
		}
		wall := time.Since(t0).Seconds()
		wallBy[dp] = wall
		extra[fmt.Sprintf("wall_seconds_drain_%d", dp)] = wall
		runs++
		if dp == 1 {
			eps = res.Stats.EventsPerSec
		}
		res.Stats = res.Stats.StripWallClock()
		data, err := json.Marshal(res)
		if err != nil {
			return benchMacro{}, err
		}
		if canonical == nil {
			canonical = data
		} else if !bytes.Equal(canonical, data) {
			return benchMacro{}, fmt.Errorf("drain_parallel: results at %d drain workers diverge from the serial run; the byte-identity contract is broken", dp)
		}
	}
	for _, dp := range []int{2, 4, 8} {
		if w := wallBy[dp]; w > 0 {
			extra[fmt.Sprintf("speedup_drain_%d", dp)] = wallBy[1] / w
		}
	}
	return benchMacro{
		Name:         "drain_parallel",
		WallSeconds:  time.Since(start).Seconds(),
		Runs:         runs,
		EventsPerSec: eps,
		Extra:        extra,
	}, nil
}

// benchRecoveryCampaign runs the R1 delivery sweep at quick scale: five
// systems across four fault intensities of churn plus permanent actuator
// kills, REFER's runs carrying the full detection/repair loop. The Extra
// gauges record the self-healing work the campaign triggered (all virtual-
// time deterministic), so the trajectory shows repair cost and repair volume
// side by side.
func benchRecoveryCampaign(parallelism int) (benchMacro, error) {
	fig, err := refer.FigR1(refer.Options{
		Seeds:       []int64{1},
		Warmup:      100 * time.Second,
		Duration:    300 * time.Second,
		Parallelism: parallelism,
	})
	if err != nil {
		return benchMacro{}, err
	}
	rec := fig.Stats.Recovery
	return benchMacro{
		Name:         "recovery_campaign",
		WallSeconds:  fig.Stats.WallClock.Seconds(),
		Runs:         fig.Stats.Runs,
		EventsPerSec: fig.Stats.EventsPerSec,
		Extra: map[string]float64{
			"reelections":           float64(rec.Reelections),
			"merges":                float64(rec.Merges),
			"takeovers":             float64(rec.Takeovers),
			"mean_repair_latency_s": rec.MeanLatency().Seconds(),
		},
	}, nil
}

// nextBenchPath returns the first unused BENCH_<n>.json name in dir.
func nextBenchPath(dir string) string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("%s/BENCH_%d.json", dir, n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// runBenchSuite executes the fixed suite and writes the next BENCH_<n>.json
// in the current directory, returning the path written. parallelism bounds
// the macro sweeps' concurrency (<=0 selects GOMAXPROCS) and is recorded in
// the report so trajectory comparisons are like-for-like.
func runBenchSuite(quiet bool, parallelism int) (string, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		Schema:      benchSchema,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Parallelism: parallelism,
	}
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	progress("bench: route_table_lookup...\n")
	rt, err := benchRouteTable()
	if err != nil {
		return "", err
	}
	report.Micro = append(report.Micro, rt)
	progress("bench: neighbors_query...\n")
	report.Micro = append(report.Micro, benchNeighbors())
	progress("bench: des_churn...\n")
	report.Micro = append(report.Micro, benchDESChurn())
	progress("bench: maintain_once...\n")
	mi, err := benchMaintain(false)
	if err != nil {
		return "", err
	}
	report.Micro = append(report.Micro, mi)
	progress("bench: maintain_once_linear...\n")
	ml, err := benchMaintain(true)
	if err != nil {
		return "", err
	}
	report.Micro = append(report.Micro, ml)
	progress("bench: drain_once...\n")
	do, err := benchDrainOnce()
	if err != nil {
		return "", err
	}
	report.Micro = append(report.Micro, do)
	progress("bench: meter_charge...\n")
	report.Micro = append(report.Micro, benchMeterCharge())
	progress("bench: recover_once...\n")
	ro, err := benchRecoverOnce()
	if err != nil {
		return "", err
	}
	report.Micro = append(report.Micro, ro)
	progress("bench: fig4_quick...\n")
	fig4, err := benchFig4Quick(parallelism)
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, fig4)
	progress("bench: scale_quick...\n")
	sq, err := benchScaleQuick(parallelism)
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, sq)
	progress("bench: simd_load...\n")
	sl, err := benchSimdLoad(parallelism)
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, sl)
	progress("bench: maintain_parallel...\n")
	mp, err := benchMaintainParallel()
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, mp)
	progress("bench: drain_parallel...\n")
	dp, err := benchDrainParallel()
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, dp)
	progress("bench: recovery_campaign...\n")
	rc, err := benchRecoveryCampaign(parallelism)
	if err != nil {
		return "", err
	}
	report.Macro = append(report.Macro, rc)

	path := nextBenchPath(".")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	for _, m := range report.Micro {
		progress("bench: %-20s %12.1f ns/op  %3d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	for _, m := range report.Macro {
		progress("bench: %-20s %11.2f s    %d runs  %.0f events/s\n", m.Name, m.WallSeconds, m.Runs, m.EventsPerSec)
	}
	return path, nil
}
