// Command refer-bench regenerates the paper's evaluation figures (4–11) as
// text tables: each cell is mean ± 95 % CI over the seed set.
//
// Usage:
//
//	refer-bench                 # quick pass: 3 seeds, 300 s windows
//	refer-bench -full           # paper-scale: 5 seeds, 1000 s windows
//	refer-bench -fig 4 -fig 5   # only selected figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"refer"
	"refer/internal/experiment"
	"refer/internal/kautz"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var (
		full   = flag.Bool("full", false, "paper-scale runs (5 seeds, 1000 s windows)")
		seeds  = flag.Int("seeds", 0, "override the number of seeds")
		extras = flag.Bool("extras", false, "also run the ablation (A1, A2) and extension (E1–E3) studies")
		csvDir = flag.String("csv", "", "also write each figure as <dir>/fig<ID>.csv")
		figs   figList
	)
	flag.Var(&figs, "fig", "figure to regenerate (repeatable; default all)")
	flag.Parse()

	opts := refer.Options{
		Seeds:    []int64{1, 2, 3},
		Warmup:   100 * time.Second,
		Duration: 300 * time.Second,
	}
	if *full {
		opts.Seeds = []int64{1, 2, 3, 4, 5}
		opts.Duration = 1000 * time.Second
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for i := 1; i <= *seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(i))
		}
	}

	builders := map[string]func(refer.Options) (refer.Figure, error){
		"4": refer.Fig4, "5": refer.Fig5, "6": refer.Fig6, "7": refer.Fig7,
		"8": refer.Fig8, "9": refer.Fig9, "10": refer.Fig10, "11": refer.Fig11,
	}
	order := []string{"4", "5", "6", "7", "8", "9", "10", "11"}
	if *extras {
		builders["A1"] = experiment.AblationFailover
		builders["A2"] = experiment.AblationMaintenance
		builders["E1"] = experiment.ExtSparse
		builders["E2"] = experiment.ExtSparseDeliveryRatio
		builders["E3"] = experiment.ExtDegree
		order = append(order, "A1", "A2", "E1", "E2", "E3")
	}
	want := map[string]bool{}
	for _, f := range figs {
		if _, ok := builders[f]; !ok {
			fmt.Fprintf(os.Stderr, "refer-bench: unknown figure %q\n", f)
			os.Exit(2)
		}
		want[f] = true
	}
	start := time.Now()
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		fig, err := builders[id](opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "refer-bench:", err)
			os.Exit(1)
		}
		fmt.Println(fig.Table())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+id+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "refer-bench:", err)
				os.Exit(1)
			}
		}
	}
	// Route-table effectiveness: every forwarding decision either hit the
	// shared precomputed Theorem 3.8 table or recomputed routes directly.
	if counters := kautz.AllTableCounters(); len(counters) > 0 {
		fmt.Println("route-table cache:")
		for _, c := range counters {
			fmt.Println("  " + c.String())
		}
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Second))
}
