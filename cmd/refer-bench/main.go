// Command refer-bench regenerates the paper's evaluation figures (4–11) as
// text tables: each cell is mean ± 95 % CI over the seed set.
//
// Usage:
//
//	refer-bench                 # quick pass: 3 seeds, 300 s windows
//	refer-bench -full           # paper-scale: 5 seeds, 1000 s windows
//	refer-bench -fig 4 -fig 5   # only selected figures
//	refer-bench -json           # machine-readable output on stdout
//	refer-bench -trace 100      # packet tracing, sampling every 100th packet
//	refer-bench -chaos f.json   # attach a fault-injection schedule to every run
//	refer-bench -energy radio   # price packets with the first-order radio model
//	refer-bench -recovery       # enable self-healing recovery on every REFER run
//	refer-bench -parallel 4     # bound sweep concurrency (figure output is identical)
//	refer-bench -run-parallel 4 # shard each run's maintenance rounds across cores
//	refer-bench -drain-parallel 4 # batch the DES drain's event prepares across cores
//	refer-bench -bench          # fixed perf suite → BENCH_<n>.json (see EXPERIMENTS.md)
//
// A live progress line is written to stderr while sweeps run (suppress with
// -quiet); Ctrl-C cancels the remaining runs cleanly. -cpuprofile and
// -memprofile write pprof profiles of the whole invocation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"refer"
	"refer/internal/kautz"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refer-bench:", err)
	os.Exit(1)
}

func main() {
	var (
		bench         = flag.Bool("bench", false, "run the fixed perf suite and write the next BENCH_<n>.json instead of regenerating figures")
		full          = flag.Bool("full", false, "paper-scale runs (5 seeds, 1000 s windows)")
		seeds         = flag.Int("seeds", 0, "override the number of seeds")
		extras        = flag.Bool("extras", false, "also run the ablation (A1, A2) and extension (E1–E3) studies")
		csvDir        = flag.String("csv", "", "also write each figure as <dir>/fig<ID>.csv")
		jsonOut       = flag.Bool("json", false, "emit the figures as JSON on stdout instead of text tables")
		traceN        = flag.Int("trace", 0, "attach packet tracing to every run, keeping every Nth packet's event stream (0 = off)")
		chaosPath     = flag.String("chaos", "", "attach the fault-injection schedule in this JSON file to every run (see EXPERIMENTS.md)")
		energyName    = flag.String("energy", "", "per-packet cost model for every run: paper, radio or harvesting (default: each figure's own default — paper constants, except the L* lifetime figures which default to radio)")
		recoveryOn    = flag.Bool("recovery", false, "enable the self-healing recovery protocols (corner re-election, cell merge, CAN takeover) on every REFER run")
		parallel      = flag.Int("parallel", 0, "concurrent simulation runs per sweep (0 = GOMAXPROCS); figure output is identical at any setting")
		runParallel   = flag.Int("run-parallel", 0, "shards per maintenance round inside each run (0 = sequential); figure output is identical at any setting")
		drainParallel = flag.Int("drain-parallel", 0, "DES drain workers inside each run (0/1 = serial); figure output is identical at any setting")
		quiet         = flag.Bool("quiet", false, "suppress the live progress line on stderr")
		warmup        = flag.Duration("warmup", 0, "override the warmup window (e.g. 5s; mainly for quick -fig S* passes)")
		duration      = flag.Duration("duration", 0, "override the measurement window (e.g. 20s)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		figs          figList
	)
	flag.Var(&figs, "fig", "figure to regenerate by registry ID (repeatable; default all)")
	flag.Parse()

	// Parallelism knobs are validated here at the edge (and again by the
	// experiment layer) so a typo'd flag is a clear config error up front,
	// not a silent GOMAXPROCS fallback three sweeps in.
	if *parallel < 0 || *parallel > refer.MaxParallelism {
		fatal(fmt.Errorf("-parallel must be in [0, %d], got %d", refer.MaxParallelism, *parallel))
	}
	if *runParallel < 0 || *runParallel > refer.MaxParallelism {
		fatal(fmt.Errorf("-run-parallel must be in [0, %d], got %d", refer.MaxParallelism, *runParallel))
	}
	if *drainParallel < 0 || *drainParallel > refer.MaxParallelism {
		fatal(fmt.Errorf("-drain-parallel must be in [0, %d], got %d", refer.MaxParallelism, *drainParallel))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bench {
		path, err := runBenchSuite(*quiet, *parallel)
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
		return
	}

	opts := refer.Options{
		Seeds:            []int64{1, 2, 3},
		Warmup:           100 * time.Second,
		Duration:         300 * time.Second,
		TraceSample:      *traceN,
		Parallelism:      *parallel,
		RunParallelism:   *runParallel,
		DrainParallelism: *drainParallel,
	}
	if *full {
		opts.Seeds = []int64{1, 2, 3, 4, 5}
		opts.Duration = 1000 * time.Second
	}
	if *chaosPath != "" {
		sched, err := refer.LoadChaosSchedule(*chaosPath)
		if err != nil {
			fatal(err)
		}
		opts.Chaos = sched
	}
	if *energyName != "" {
		opts.Energy = refer.EnergySpec{Model: *energyName}
		if err := opts.Energy.Validate(); err != nil {
			fatal(err)
		}
	}
	if *recoveryOn {
		opts.Recovery = refer.RecoverySpec{Enabled: true}
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for i := 1; i <= *seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(i))
		}
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if !*quiet {
		opts.Progress = func(ev refer.ProgressEvent) {
			state := ""
			if ev.Aborted {
				// The sweep stopped scheduling; Total is clamped to the runs
				// actually started, so Done/Total still converges.
				state = " aborting"
			}
			fmt.Fprintf(os.Stderr, "\rfig %-3s %3d/%-3d runs  %8s%s ",
				ev.FigureID, ev.Done, ev.Total, ev.Elapsed.Round(100*time.Millisecond), state)
		}
	}

	// Select figures from the registry: the paper set by default, every
	// kind except the network-growth and recovery studies with -extras (the
	// 10,000-node scale points dwarf everything else, and the recovery
	// campaigns have their own CI job; ask for S*/R* explicitly with -fig),
	// or exactly the ones named with -fig.
	var selected []refer.FigureSpec
	if len(figs) > 0 {
		for _, id := range figs {
			spec, ok := refer.FigureByID(id)
			if !ok {
				var known []string
				for _, s := range refer.Figures() {
					known = append(known, s.ID)
				}
				fmt.Fprintf(os.Stderr, "refer-bench: unknown figure %q (known: %s)\n",
					id, strings.Join(known, ", "))
				os.Exit(2)
			}
			selected = append(selected, spec)
		}
	} else {
		for _, spec := range refer.Figures() {
			if spec.Kind == refer.KindPaper || (*extras && spec.Kind != refer.KindScale && spec.Kind != refer.KindRecovery) {
				selected = append(selected, spec)
			}
		}
	}

	start := time.Now()
	var results []refer.Figure
	for _, spec := range selected {
		fig, err := spec.Build(ctx, opts)
		if err != nil {
			if !*quiet {
				fmt.Fprintln(os.Stderr)
			}
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\rfig %-3s %d runs in %v (%.0f events/s)%s\n",
				spec.ID, fig.Stats.Runs, fig.Stats.WallClock.Round(time.Millisecond),
				fig.Stats.EventsPerSec, strings.Repeat(" ", 12))
		}
		results = append(results, fig)
		if !*jsonOut {
			fmt.Println(fig.Table())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "fig"+spec.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *jsonOut {
		out := struct {
			Figures  []refer.Figure `json:"figures"`
			WallTime time.Duration  `json:"wall_time_ns"`
		}{Figures: results, WallTime: time.Since(start)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	}

	// Route-table effectiveness: every forwarding decision either hit the
	// shared precomputed Theorem 3.8 table or recomputed routes directly.
	// Diagnostics go to stderr so -json keeps stdout parseable.
	diag := os.Stdout
	if *jsonOut {
		diag = os.Stderr
	}
	if counters := kautz.AllTableCounters(); len(counters) > 0 {
		fmt.Fprintln(diag, "route-table cache:")
		for _, c := range counters {
			fmt.Fprintln(diag, "  "+c.String())
		}
	}
	fmt.Fprintf(diag, "total wall time: %v\n", time.Since(start).Round(time.Second))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}
