// Command refer-viz renders a built REFER network as an SVG — the
// repository's analogue of the paper's Figure 1: cells, actuators, the
// embedded Kautz sensors with their KIDs, overlay arcs, and the sleeping
// sensor population.
//
// Usage:
//
//	refer-viz -o network.svg -sensors 200 -seed 42
//	refer-viz -o later.svg -at 300s -speed 3    # after 300 s of mobility
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"refer"
	"refer/internal/core"
	"refer/internal/scenario"
	"refer/internal/viz"
)

func main() {
	var (
		out     = flag.String("o", "refer.svg", "output SVG path")
		sensors = flag.Int("sensors", 200, "sensor population")
		seed    = flag.Int64("seed", 42, "random seed")
		speed   = flag.Float64("speed", 0, "max node speed in m/s")
		at      = flag.Duration("at", 0, "advance the simulation before rendering")
		width   = flag.Float64("width", 900, "image width in pixels")
	)
	flag.Parse()

	w := refer.BuildWorld(scenario.Params{Seed: *seed, Sensors: *sensors, MaxSpeed: *speed})
	sys := core.New(w, core.DefaultConfig())
	if err := sys.Build(); err != nil {
		fmt.Fprintln(os.Stderr, "refer-viz:", err)
		os.Exit(1)
	}
	if *at > 0 {
		w.Sched.RunUntil(*at)
	}
	svg := viz.SVG(w, sys, *width)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "refer-viz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cells, %d nodes, t=%v)\n", *out, len(sys.Cells()), w.Len(), w.Now().Round(time.Second))
}
