module refer

go 1.22
